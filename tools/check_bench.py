#!/usr/bin/env python3
"""Gate benchmark regressions against a committed baseline.

Compares a fresh benchmark run to one of the BENCH_*.json baselines at the
repo root and fails (exit 1) when throughput regressed by more than the
threshold on the geometric mean across all benchmarks the two files share.
Per-benchmark swings are expected on shared CI runners; the geomean over
the suite is the stable signal.

Supported file shapes (auto-detected):
  * google-benchmark JSON (--benchmark_format=json / --benchmark_out):
      {"benchmarks": [{"name": ..., "items_per_second": ...}, ...]}
  * treeagg-bench-throughput-v1 (BENCH_throughput.json): the committed
      numbers live in "optimized_items_per_second" per benchmark.
  * treeagg-bench-net-v1 (old BENCH_net.json): "requests_per_sec" per
      policy row, keyed by "policy".
  * treeagg-bench-net-v2 (BENCH_net.json / bench_net_throughput --out):
      "requests_per_sec" per run row, keyed by the stable "name" series
      (e.g. "RWW/batch", "big-subtree/batch").
  * treeagg-bench-query-v1 (BENCH_query.json / bench_query_throughput
      --out): "serves_per_sec" per run row, keyed by "name" (e.g.
      "mechanism/probes", "snapshot/driver").
  * treeagg-bench-place-v1 (BENCH_place.json / bench_placement --out):
      placement efficiency — requests served per trace-scored
      cross-daemon message (requests / cross_messages) per run row,
      keyed by "name" ("rr", "subtree", "traffic", "live"). Wall-clock
      req/s is too noisy to gate here; message cost is the paper's
      metric and is deterministic given the harvested trace.
  * treeagg-bench-fault-v1/v2 (BENCH_fault.json / bench_fault --out):
      "requests_per_sec" per corruption-rate row in "drop_runs", keyed
      "drop@{rate}". The crash row and the v2 "geo_runs" rows are not
      throughput-gated (their wall time is dominated by injected faults),
      but every row's "converged" flag is checked.
  For the net, query, and place shapes, rows failing their consistency
  check in the CURRENT run (causal_ok/valid = false) fail the gate
  outright (the wire or the read path changed the algorithm); for the
  fault shape the same applies to any non-converged row.

Two modes:

  Single (the original): one current file against one committed baseline,
  gated on the plain geomean of per-series ratios.

  Interleaved A/B: N baseline files and N current files, recorded in
  ALTERNATING order on the same runner (baseline rep 1, candidate rep 1,
  baseline rep 2, ...). Files are paired by repetition index; each shared
  series takes the MEDIAN of its per-rep ratios (robust to one noisy rep),
  and the gate is the geomean of those medians. Pairing cancels
  runner-speed drift, which is what lets the floor tighten from 25% to
  10%.

usage:
  check_bench.py --current RUN.json --baseline BENCH_x.json \
      [--threshold 0.25] [--label NAME]
  check_bench.py --ab-baseline B1.json B2.json ... \
      --ab-current C1.json C2.json ... \
      [--threshold 0.10] [--label NAME] [--table-out TABLE.md]
"""

import argparse
import json
import math
import statistics
import sys


def load_throughputs(path):
    """Returns ({series_name: throughput}, [failed_consistency_names])."""
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if schema.startswith("treeagg-bench-throughput"):
        return (
            {b["benchmark"]: b["optimized_items_per_second"]
             for b in doc["benchmarks"]},
            [],
        )
    if schema.startswith("treeagg-bench-net"):
        # v2 rows carry a stable "name" series key; v1 rows are keyed by
        # policy alone.
        key = "name" if schema.startswith("treeagg-bench-net-v2") else "policy"
        series = {r[key]: r["requests_per_sec"] for r in doc["runs"]}
        failed = [r[key] for r in doc["runs"]
                  if not r.get("causal_ok", True)]
        return series, failed
    if schema.startswith("treeagg-bench-query"):
        series = {r["name"]: r["serves_per_sec"] for r in doc["runs"]}
        failed = [r["name"] for r in doc["runs"] if not r.get("valid", True)]
        return series, failed
    if schema.startswith("treeagg-bench-place"):
        requests = doc["requests"]
        series = {r["name"]: requests / max(1, r["cross_messages"])
                  for r in doc["runs"]}
        failed = [r["name"] for r in doc["runs"]
                  if not r.get("causal_ok", True)]
        return series, failed
    if schema.startswith("treeagg-bench-fault"):
        # v1: drop_runs + crash_run; v2 adds geo_runs. Only the corruption
        # sweep is throughput-gated — crash and geo wall time is mostly the
        # injected fault itself — but a diverged row anywhere is fatal.
        series = {f"drop@{r['corrupt_rate']}": r["requests_per_sec"]
                  for r in doc["drop_runs"]}
        failed = [f"drop@{r['corrupt_rate']}" for r in doc["drop_runs"]
                  if not r.get("converged", True)]
        crash = doc.get("crash_run", {})
        if not crash.get("converged", True):
            failed.append("crash")
        failed += [f"geo/{r['profile']}" for r in doc.get("geo_runs", [])
                   if not r.get("converged", True)]
        return series, failed
    if "benchmarks" in doc:  # google-benchmark output
        series = {}
        for b in doc["benchmarks"]:
            # Skip _mean/_stddev aggregate rows from --benchmark_repetitions.
            if b.get("run_type", "iteration") != "iteration":
                continue
            if "items_per_second" in b:
                series[b["name"]] = b["items_per_second"]
        return series, []
    raise ValueError(f"{path}: unrecognized benchmark file shape")


def run_ab(args):
    """Interleaved A/B gate: rep-paired ratios, median per series, geomean
    across series."""
    if len(args.ab_baseline) != len(args.ab_current):
        print(f"[{args.label}] FAIL: {len(args.ab_baseline)} baseline reps "
              f"vs {len(args.ab_current)} current reps — pairing needs "
              f"equal counts")
        return 1

    reps = []  # [(rep_index, baseline_series, current_series)]
    for i, (bpath, cpath) in enumerate(
            zip(args.ab_baseline, args.ab_current), start=1):
        baseline, bfailed = load_throughputs(bpath)
        current, cfailed = load_throughputs(cpath)
        # A consistency failure in EITHER build is fatal: the candidate may
        # have broken the algorithm, or the A/B harness itself is sick.
        for which, failed in (("baseline", bfailed), ("current", cfailed)):
            if failed:
                print(f"[{args.label}] FAIL: consistency check failed in "
                      f"{which} rep {i} for: {', '.join(failed)}")
                return 1
        reps.append((i, baseline, current))

    shared = None
    for _, baseline, current in reps:
        names = set(baseline) & set(current)
        shared = names if shared is None else shared & names
    shared = sorted(shared or [])
    if not shared:
        print(f"[{args.label}] FAIL: no series common to every rep pair")
        return 1

    width = max(len(n) for n in shared)
    rep_ids = [i for i, _, _ in reps]
    table = []  # markdown rows for --table-out
    header = (["series"] + [f"rep{i}" for i in rep_ids] + ["median"])
    table.append("| " + " | ".join(header) + " |")
    table.append("|" + "|".join("---" for _ in header) + "|")

    log_sum = 0.0
    for name in shared:
        ratios = [current[name] / baseline[name]
                  for _, baseline, current in reps]
        med = statistics.median(ratios)
        log_sum += math.log(med)
        cells = " ".join(f"{r:5.3f}" for r in ratios)
        print(f"[{args.label}] {name:<{width}}  reps [{cells}]  "
              f"median {med:5.3f}")
        table.append("| " + " | ".join(
            [name] + [f"{r:.3f}" for r in ratios] + [f"{med:.3f}"]) + " |")

    geomean = math.exp(log_sum / len(shared))
    floor = 1.0 - args.threshold
    verdict = "OK" if geomean >= floor else "FAIL"
    summary = (f"geomean of per-series median ratios {geomean:.3f} over "
               f"{len(shared)} series x {len(reps)} rep pairs "
               f"(floor {floor:.2f}): {verdict}")
    print(f"[{args.label}] {summary}")
    table.append("")
    table.append(f"**{args.label}**: {summary}")

    if args.table_out:
        with open(args.table_out, "a") as f:
            f.write("\n".join(table) + "\n\n")

    if geomean < floor:
        print(f"[{args.label}] throughput regressed by more than "
              f"{args.threshold:.0%} on the paired geomean")
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current",
                        help="JSON from the benchmark run under test")
    parser.add_argument("--baseline",
                        help="committed BENCH_*.json to compare against")
    parser.add_argument("--ab-baseline", nargs="+", default=None,
                        help="baseline-build rep files, in recording order")
    parser.add_argument("--ab-current", nargs="+", default=None,
                        help="candidate-build rep files, in recording order")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated geomean regression (default 0.25)")
    parser.add_argument("--label", default="bench",
                        help="name for this comparison in the output")
    parser.add_argument("--table-out", default=None,
                        help="append the A/B per-rep markdown table here")
    args = parser.parse_args()

    if (args.ab_baseline is None) != (args.ab_current is None):
        parser.error("--ab-baseline and --ab-current must be given together")
    if args.ab_baseline is not None:
        return run_ab(args)
    if not args.current or not args.baseline:
        parser.error("either --current/--baseline or "
                     "--ab-baseline/--ab-current is required")

    current, failed = load_throughputs(args.current)
    baseline, _ = load_throughputs(args.baseline)

    if failed:
        print(f"[{args.label}] FAIL: consistency check failed in current "
              f"run for: {', '.join(failed)}")
        return 1

    shared = sorted(set(current) & set(baseline))
    if not shared:
        print(f"[{args.label}] FAIL: no common benchmarks between "
              f"{args.current} and {args.baseline}")
        print(f"  current:  {sorted(current)}")
        print(f"  baseline: {sorted(baseline)}")
        return 1

    width = max(len(n) for n in shared)
    log_sum = 0.0
    for name in shared:
        ratio = current[name] / baseline[name]
        log_sum += math.log(ratio)
        print(f"[{args.label}] {name:<{width}}  "
              f"baseline {baseline[name]:>14.1f}/s  "
              f"current {current[name]:>14.1f}/s  "
              f"ratio {ratio:5.3f}")
    geomean = math.exp(log_sum / len(shared))
    floor = 1.0 - args.threshold
    verdict = "OK" if geomean >= floor else "FAIL"
    print(f"[{args.label}] geomean ratio {geomean:.3f} over {len(shared)} "
          f"benchmarks (floor {floor:.2f}): {verdict}")
    if geomean < floor:
        print(f"[{args.label}] throughput regressed by more than "
              f"{args.threshold:.0%} on the geometric mean")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
