# Empty dependencies file for concurrent_audit.
# This may be replaced when dependencies are built.
