file(REMOVE_RECURSE
  "CMakeFiles/concurrent_audit.dir/concurrent_audit.cpp.o"
  "CMakeFiles/concurrent_audit.dir/concurrent_audit.cpp.o.d"
  "concurrent_audit"
  "concurrent_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
