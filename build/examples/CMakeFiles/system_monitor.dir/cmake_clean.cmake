file(REMOVE_RECURSE
  "CMakeFiles/system_monitor.dir/system_monitor.cpp.o"
  "CMakeFiles/system_monitor.dir/system_monitor.cpp.o.d"
  "system_monitor"
  "system_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
