file(REMOVE_RECURSE
  "CMakeFiles/adversary.dir/adversary.cpp.o"
  "CMakeFiles/adversary.dir/adversary.cpp.o.d"
  "adversary"
  "adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
