
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/adversary.cpp" "examples/CMakeFiles/adversary.dir/adversary.cpp.o" "gcc" "examples/CMakeFiles/adversary.dir/adversary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdims/CMakeFiles/treeagg_sdims.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/treeagg_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/treeagg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/treeagg_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/treeagg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/treeagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/treeagg_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/treeagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/treeagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treeagg_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
