# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_network "/root/repo/build/examples/sensor_network")
set_tests_properties(example_sensor_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary "/root/repo/build/examples/adversary")
set_tests_properties(example_adversary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_concurrent_audit "/root/repo/build/examples/concurrent_audit")
set_tests_properties(example_concurrent_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_system_monitor "/root/repo/build/examples/system_monitor")
set_tests_properties(example_system_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
