file(REMOVE_RECURSE
  "CMakeFiles/composites_test.dir/sim/composites_test.cc.o"
  "CMakeFiles/composites_test.dir/sim/composites_test.cc.o.d"
  "composites_test"
  "composites_test.pdb"
  "composites_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composites_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
