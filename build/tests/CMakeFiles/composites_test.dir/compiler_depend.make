# Empty compiler generated dependencies file for composites_test.
# This may be replaced when dependencies are built.
