file(REMOVE_RECURSE
  "CMakeFiles/lease_graph_test.dir/tree/lease_graph_test.cc.o"
  "CMakeFiles/lease_graph_test.dir/tree/lease_graph_test.cc.o.d"
  "lease_graph_test"
  "lease_graph_test.pdb"
  "lease_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
