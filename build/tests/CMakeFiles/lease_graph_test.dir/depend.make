# Empty dependencies file for lease_graph_test.
# This may be replaced when dependencies are built.
