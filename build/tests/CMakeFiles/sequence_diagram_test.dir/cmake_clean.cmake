file(REMOVE_RECURSE
  "CMakeFiles/sequence_diagram_test.dir/analysis/sequence_diagram_test.cc.o"
  "CMakeFiles/sequence_diagram_test.dir/analysis/sequence_diagram_test.cc.o.d"
  "sequence_diagram_test"
  "sequence_diagram_test.pdb"
  "sequence_diagram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_diagram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
