# Empty compiler generated dependencies file for golden_gen.
# This may be replaced when dependencies are built.
