file(REMOVE_RECURSE
  "CMakeFiles/golden_gen.dir/tools/golden_gen.cc.o"
  "CMakeFiles/golden_gen.dir/tools/golden_gen.cc.o.d"
  "golden_gen"
  "golden_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
