# Empty dependencies file for lease_node_unit_test.
# This may be replaced when dependencies are built.
