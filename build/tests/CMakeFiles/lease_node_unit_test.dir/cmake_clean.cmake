file(REMOVE_RECURSE
  "CMakeFiles/lease_node_unit_test.dir/core/lease_node_unit_test.cc.o"
  "CMakeFiles/lease_node_unit_test.dir/core/lease_node_unit_test.cc.o.d"
  "lease_node_unit_test"
  "lease_node_unit_test.pdb"
  "lease_node_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_node_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
