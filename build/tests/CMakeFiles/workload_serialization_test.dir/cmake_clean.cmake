file(REMOVE_RECURSE
  "CMakeFiles/workload_serialization_test.dir/workload/serialization_test.cc.o"
  "CMakeFiles/workload_serialization_test.dir/workload/serialization_test.cc.o.d"
  "workload_serialization_test"
  "workload_serialization_test.pdb"
  "workload_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
