# Empty dependencies file for workload_serialization_test.
# This may be replaced when dependencies are built.
