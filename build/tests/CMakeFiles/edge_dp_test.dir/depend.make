# Empty dependencies file for edge_dp_test.
# This may be replaced when dependencies are built.
