file(REMOVE_RECURSE
  "CMakeFiles/edge_dp_test.dir/offline/edge_dp_test.cc.o"
  "CMakeFiles/edge_dp_test.dir/offline/edge_dp_test.cc.o.d"
  "edge_dp_test"
  "edge_dp_test.pdb"
  "edge_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
