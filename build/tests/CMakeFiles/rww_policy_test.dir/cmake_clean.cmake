file(REMOVE_RECURSE
  "CMakeFiles/rww_policy_test.dir/core/rww_policy_test.cc.o"
  "CMakeFiles/rww_policy_test.dir/core/rww_policy_test.cc.o.d"
  "rww_policy_test"
  "rww_policy_test.pdb"
  "rww_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rww_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
