# Empty dependencies file for rww_policy_test.
# This may be replaced when dependencies are built.
