# Empty dependencies file for transition_system_test.
# This may be replaced when dependencies are built.
