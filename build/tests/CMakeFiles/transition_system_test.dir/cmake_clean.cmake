file(REMOVE_RECURSE
  "CMakeFiles/transition_system_test.dir/lp/transition_system_test.cc.o"
  "CMakeFiles/transition_system_test.dir/lp/transition_system_test.cc.o.d"
  "transition_system_test"
  "transition_system_test.pdb"
  "transition_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
