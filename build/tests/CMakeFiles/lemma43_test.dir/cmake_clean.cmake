file(REMOVE_RECURSE
  "CMakeFiles/lemma43_test.dir/integration/lemma43_test.cc.o"
  "CMakeFiles/lemma43_test.dir/integration/lemma43_test.cc.o.d"
  "lemma43_test"
  "lemma43_test.pdb"
  "lemma43_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma43_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
