# Empty dependencies file for lemma43_test.
# This may be replaced when dependencies are built.
