# Empty compiler generated dependencies file for sequential_properties_test.
# This may be replaced when dependencies are built.
