file(REMOVE_RECURSE
  "CMakeFiles/sequential_properties_test.dir/integration/sequential_properties_test.cc.o"
  "CMakeFiles/sequential_properties_test.dir/integration/sequential_properties_test.cc.o.d"
  "sequential_properties_test"
  "sequential_properties_test.pdb"
  "sequential_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
