file(REMOVE_RECURSE
  "CMakeFiles/potential_test.dir/lp/potential_test.cc.o"
  "CMakeFiles/potential_test.dir/lp/potential_test.cc.o.d"
  "potential_test"
  "potential_test.pdb"
  "potential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
