# Empty dependencies file for potential_test.
# This may be replaced when dependencies are built.
