file(REMOVE_RECURSE
  "CMakeFiles/causal_checker_test.dir/consistency/causal_checker_test.cc.o"
  "CMakeFiles/causal_checker_test.dir/consistency/causal_checker_test.cc.o.d"
  "causal_checker_test"
  "causal_checker_test.pdb"
  "causal_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
