# Empty dependencies file for aggregate_op_test.
# This may be replaced when dependencies are built.
