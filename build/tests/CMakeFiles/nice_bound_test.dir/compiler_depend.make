# Empty compiler generated dependencies file for nice_bound_test.
# This may be replaced when dependencies are built.
