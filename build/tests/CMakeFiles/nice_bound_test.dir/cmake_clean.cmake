file(REMOVE_RECURSE
  "CMakeFiles/nice_bound_test.dir/offline/nice_bound_test.cc.o"
  "CMakeFiles/nice_bound_test.dir/offline/nice_bound_test.cc.o.d"
  "nice_bound_test"
  "nice_bound_test.pdb"
  "nice_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nice_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
