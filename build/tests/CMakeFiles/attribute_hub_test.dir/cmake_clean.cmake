file(REMOVE_RECURSE
  "CMakeFiles/attribute_hub_test.dir/sim/attribute_hub_test.cc.o"
  "CMakeFiles/attribute_hub_test.dir/sim/attribute_hub_test.cc.o.d"
  "attribute_hub_test"
  "attribute_hub_test.pdb"
  "attribute_hub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_hub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
