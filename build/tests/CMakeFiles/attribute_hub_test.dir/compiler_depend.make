# Empty compiler generated dependencies file for attribute_hub_test.
# This may be replaced when dependencies are built.
