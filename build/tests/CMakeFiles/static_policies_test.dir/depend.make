# Empty dependencies file for static_policies_test.
# This may be replaced when dependencies are built.
