file(REMOVE_RECURSE
  "CMakeFiles/static_policies_test.dir/core/static_policies_test.cc.o"
  "CMakeFiles/static_policies_test.dir/core/static_policies_test.cc.o.d"
  "static_policies_test"
  "static_policies_test.pdb"
  "static_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
