file(REMOVE_RECURSE
  "CMakeFiles/sdims_test.dir/sdims/sdims_test.cc.o"
  "CMakeFiles/sdims_test.dir/sdims/sdims_test.cc.o.d"
  "sdims_test"
  "sdims_test.pdb"
  "sdims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
