# Empty compiler generated dependencies file for sdims_test.
# This may be replaced when dependencies are built.
