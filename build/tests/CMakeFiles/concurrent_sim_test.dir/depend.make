# Empty dependencies file for concurrent_sim_test.
# This may be replaced when dependencies are built.
