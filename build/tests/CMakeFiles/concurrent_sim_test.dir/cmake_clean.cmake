file(REMOVE_RECURSE
  "CMakeFiles/concurrent_sim_test.dir/sim/concurrent_sim_test.cc.o"
  "CMakeFiles/concurrent_sim_test.dir/sim/concurrent_sim_test.cc.o.d"
  "concurrent_sim_test"
  "concurrent_sim_test.pdb"
  "concurrent_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
