file(REMOVE_RECURSE
  "CMakeFiles/lemma_invariants_test.dir/integration/lemma_invariants_test.cc.o"
  "CMakeFiles/lemma_invariants_test.dir/integration/lemma_invariants_test.cc.o.d"
  "lemma_invariants_test"
  "lemma_invariants_test.pdb"
  "lemma_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
