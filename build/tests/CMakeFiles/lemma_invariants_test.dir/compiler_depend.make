# Empty compiler generated dependencies file for lemma_invariants_test.
# This may be replaced when dependencies are built.
