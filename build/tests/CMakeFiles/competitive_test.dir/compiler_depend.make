# Empty compiler generated dependencies file for competitive_test.
# This may be replaced when dependencies are built.
