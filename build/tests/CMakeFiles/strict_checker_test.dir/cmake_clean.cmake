file(REMOVE_RECURSE
  "CMakeFiles/strict_checker_test.dir/consistency/strict_checker_test.cc.o"
  "CMakeFiles/strict_checker_test.dir/consistency/strict_checker_test.cc.o.d"
  "strict_checker_test"
  "strict_checker_test.pdb"
  "strict_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strict_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
