# Empty compiler generated dependencies file for strict_checker_test.
# This may be replaced when dependencies are built.
