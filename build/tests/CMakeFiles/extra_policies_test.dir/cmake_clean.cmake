file(REMOVE_RECURSE
  "CMakeFiles/extra_policies_test.dir/core/extra_policies_test.cc.o"
  "CMakeFiles/extra_policies_test.dir/core/extra_policies_test.cc.o.d"
  "extra_policies_test"
  "extra_policies_test.pdb"
  "extra_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
