# Empty compiler generated dependencies file for extra_policies_test.
# This may be replaced when dependencies are built.
