# Empty compiler generated dependencies file for treeagg_sdims.
# This may be replaced when dependencies are built.
