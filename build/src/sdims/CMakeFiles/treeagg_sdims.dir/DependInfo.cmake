
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdims/sdims_system.cc" "src/sdims/CMakeFiles/treeagg_sdims.dir/sdims_system.cc.o" "gcc" "src/sdims/CMakeFiles/treeagg_sdims.dir/sdims_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/treeagg_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/treeagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/treeagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/treeagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/treeagg_consistency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
