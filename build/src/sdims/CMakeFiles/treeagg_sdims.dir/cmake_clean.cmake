file(REMOVE_RECURSE
  "CMakeFiles/treeagg_sdims.dir/sdims_system.cc.o"
  "CMakeFiles/treeagg_sdims.dir/sdims_system.cc.o.d"
  "libtreeagg_sdims.a"
  "libtreeagg_sdims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_sdims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
