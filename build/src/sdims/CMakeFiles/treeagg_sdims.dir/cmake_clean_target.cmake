file(REMOVE_RECURSE
  "libtreeagg_sdims.a"
)
