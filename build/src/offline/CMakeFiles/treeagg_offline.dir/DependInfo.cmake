
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/edge_dp.cc" "src/offline/CMakeFiles/treeagg_offline.dir/edge_dp.cc.o" "gcc" "src/offline/CMakeFiles/treeagg_offline.dir/edge_dp.cc.o.d"
  "/root/repo/src/offline/nice_bound.cc" "src/offline/CMakeFiles/treeagg_offline.dir/nice_bound.cc.o" "gcc" "src/offline/CMakeFiles/treeagg_offline.dir/nice_bound.cc.o.d"
  "/root/repo/src/offline/projection.cc" "src/offline/CMakeFiles/treeagg_offline.dir/projection.cc.o" "gcc" "src/offline/CMakeFiles/treeagg_offline.dir/projection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/treeagg_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/treeagg_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
