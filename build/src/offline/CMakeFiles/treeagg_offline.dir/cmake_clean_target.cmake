file(REMOVE_RECURSE
  "libtreeagg_offline.a"
)
