# Empty dependencies file for treeagg_offline.
# This may be replaced when dependencies are built.
