file(REMOVE_RECURSE
  "CMakeFiles/treeagg_offline.dir/edge_dp.cc.o"
  "CMakeFiles/treeagg_offline.dir/edge_dp.cc.o.d"
  "CMakeFiles/treeagg_offline.dir/nice_bound.cc.o"
  "CMakeFiles/treeagg_offline.dir/nice_bound.cc.o.d"
  "CMakeFiles/treeagg_offline.dir/projection.cc.o"
  "CMakeFiles/treeagg_offline.dir/projection.cc.o.d"
  "libtreeagg_offline.a"
  "libtreeagg_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
