# Empty dependencies file for treeagg_consistency.
# This may be replaced when dependencies are built.
