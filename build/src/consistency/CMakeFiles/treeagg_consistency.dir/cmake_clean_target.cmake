file(REMOVE_RECURSE
  "libtreeagg_consistency.a"
)
