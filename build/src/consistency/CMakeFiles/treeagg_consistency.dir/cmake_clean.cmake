file(REMOVE_RECURSE
  "CMakeFiles/treeagg_consistency.dir/causal_checker.cc.o"
  "CMakeFiles/treeagg_consistency.dir/causal_checker.cc.o.d"
  "CMakeFiles/treeagg_consistency.dir/history.cc.o"
  "CMakeFiles/treeagg_consistency.dir/history.cc.o.d"
  "CMakeFiles/treeagg_consistency.dir/strict_checker.cc.o"
  "CMakeFiles/treeagg_consistency.dir/strict_checker.cc.o.d"
  "libtreeagg_consistency.a"
  "libtreeagg_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
