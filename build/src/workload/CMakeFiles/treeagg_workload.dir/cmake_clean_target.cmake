file(REMOVE_RECURSE
  "libtreeagg_workload.a"
)
