# Empty dependencies file for treeagg_workload.
# This may be replaced when dependencies are built.
