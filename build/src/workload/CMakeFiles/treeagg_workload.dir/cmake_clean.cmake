file(REMOVE_RECURSE
  "CMakeFiles/treeagg_workload.dir/generators.cc.o"
  "CMakeFiles/treeagg_workload.dir/generators.cc.o.d"
  "CMakeFiles/treeagg_workload.dir/request.cc.o"
  "CMakeFiles/treeagg_workload.dir/request.cc.o.d"
  "CMakeFiles/treeagg_workload.dir/serialization.cc.o"
  "CMakeFiles/treeagg_workload.dir/serialization.cc.o.d"
  "libtreeagg_workload.a"
  "libtreeagg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
