# Empty dependencies file for treeagg_lp.
# This may be replaced when dependencies are built.
