file(REMOVE_RECURSE
  "libtreeagg_lp.a"
)
