file(REMOVE_RECURSE
  "CMakeFiles/treeagg_lp.dir/potential.cc.o"
  "CMakeFiles/treeagg_lp.dir/potential.cc.o.d"
  "CMakeFiles/treeagg_lp.dir/simplex.cc.o"
  "CMakeFiles/treeagg_lp.dir/simplex.cc.o.d"
  "CMakeFiles/treeagg_lp.dir/transition_system.cc.o"
  "CMakeFiles/treeagg_lp.dir/transition_system.cc.o.d"
  "libtreeagg_lp.a"
  "libtreeagg_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
