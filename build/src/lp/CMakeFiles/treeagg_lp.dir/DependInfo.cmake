
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/potential.cc" "src/lp/CMakeFiles/treeagg_lp.dir/potential.cc.o" "gcc" "src/lp/CMakeFiles/treeagg_lp.dir/potential.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "src/lp/CMakeFiles/treeagg_lp.dir/simplex.cc.o" "gcc" "src/lp/CMakeFiles/treeagg_lp.dir/simplex.cc.o.d"
  "/root/repo/src/lp/transition_system.cc" "src/lp/CMakeFiles/treeagg_lp.dir/transition_system.cc.o" "gcc" "src/lp/CMakeFiles/treeagg_lp.dir/transition_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/offline/CMakeFiles/treeagg_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/treeagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treeagg_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
