# Empty dependencies file for treeagg_core.
# This may be replaced when dependencies are built.
