file(REMOVE_RECURSE
  "CMakeFiles/treeagg_core.dir/aggregate_op.cc.o"
  "CMakeFiles/treeagg_core.dir/aggregate_op.cc.o.d"
  "CMakeFiles/treeagg_core.dir/extra_policies.cc.o"
  "CMakeFiles/treeagg_core.dir/extra_policies.cc.o.d"
  "CMakeFiles/treeagg_core.dir/lease_node.cc.o"
  "CMakeFiles/treeagg_core.dir/lease_node.cc.o.d"
  "CMakeFiles/treeagg_core.dir/message.cc.o"
  "CMakeFiles/treeagg_core.dir/message.cc.o.d"
  "CMakeFiles/treeagg_core.dir/policies.cc.o"
  "CMakeFiles/treeagg_core.dir/policies.cc.o.d"
  "libtreeagg_core.a"
  "libtreeagg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
