
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate_op.cc" "src/core/CMakeFiles/treeagg_core.dir/aggregate_op.cc.o" "gcc" "src/core/CMakeFiles/treeagg_core.dir/aggregate_op.cc.o.d"
  "/root/repo/src/core/extra_policies.cc" "src/core/CMakeFiles/treeagg_core.dir/extra_policies.cc.o" "gcc" "src/core/CMakeFiles/treeagg_core.dir/extra_policies.cc.o.d"
  "/root/repo/src/core/lease_node.cc" "src/core/CMakeFiles/treeagg_core.dir/lease_node.cc.o" "gcc" "src/core/CMakeFiles/treeagg_core.dir/lease_node.cc.o.d"
  "/root/repo/src/core/message.cc" "src/core/CMakeFiles/treeagg_core.dir/message.cc.o" "gcc" "src/core/CMakeFiles/treeagg_core.dir/message.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/treeagg_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/treeagg_core.dir/policies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/treeagg_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/treeagg_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
