file(REMOVE_RECURSE
  "libtreeagg_core.a"
)
