file(REMOVE_RECURSE
  "libtreeagg_analysis.a"
)
