file(REMOVE_RECURSE
  "CMakeFiles/treeagg_analysis.dir/competitive.cc.o"
  "CMakeFiles/treeagg_analysis.dir/competitive.cc.o.d"
  "CMakeFiles/treeagg_analysis.dir/sequence_diagram.cc.o"
  "CMakeFiles/treeagg_analysis.dir/sequence_diagram.cc.o.d"
  "CMakeFiles/treeagg_analysis.dir/stats.cc.o"
  "CMakeFiles/treeagg_analysis.dir/stats.cc.o.d"
  "CMakeFiles/treeagg_analysis.dir/table.cc.o"
  "CMakeFiles/treeagg_analysis.dir/table.cc.o.d"
  "libtreeagg_analysis.a"
  "libtreeagg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
