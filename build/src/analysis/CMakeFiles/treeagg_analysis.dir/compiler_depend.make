# Empty compiler generated dependencies file for treeagg_analysis.
# This may be replaced when dependencies are built.
