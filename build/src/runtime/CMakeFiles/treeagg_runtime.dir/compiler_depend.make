# Empty compiler generated dependencies file for treeagg_runtime.
# This may be replaced when dependencies are built.
