file(REMOVE_RECURSE
  "libtreeagg_runtime.a"
)
