file(REMOVE_RECURSE
  "CMakeFiles/treeagg_runtime.dir/actor_runtime.cc.o"
  "CMakeFiles/treeagg_runtime.dir/actor_runtime.cc.o.d"
  "libtreeagg_runtime.a"
  "libtreeagg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
