
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attribute_hub.cc" "src/sim/CMakeFiles/treeagg_sim.dir/attribute_hub.cc.o" "gcc" "src/sim/CMakeFiles/treeagg_sim.dir/attribute_hub.cc.o.d"
  "/root/repo/src/sim/composites.cc" "src/sim/CMakeFiles/treeagg_sim.dir/composites.cc.o" "gcc" "src/sim/CMakeFiles/treeagg_sim.dir/composites.cc.o.d"
  "/root/repo/src/sim/concurrent.cc" "src/sim/CMakeFiles/treeagg_sim.dir/concurrent.cc.o" "gcc" "src/sim/CMakeFiles/treeagg_sim.dir/concurrent.cc.o.d"
  "/root/repo/src/sim/explorer.cc" "src/sim/CMakeFiles/treeagg_sim.dir/explorer.cc.o" "gcc" "src/sim/CMakeFiles/treeagg_sim.dir/explorer.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/treeagg_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/treeagg_sim.dir/system.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/treeagg_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/treeagg_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/treeagg_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/treeagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/treeagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/treeagg_consistency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
