file(REMOVE_RECURSE
  "libtreeagg_sim.a"
)
