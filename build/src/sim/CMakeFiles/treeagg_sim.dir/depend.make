# Empty dependencies file for treeagg_sim.
# This may be replaced when dependencies are built.
