file(REMOVE_RECURSE
  "CMakeFiles/treeagg_sim.dir/attribute_hub.cc.o"
  "CMakeFiles/treeagg_sim.dir/attribute_hub.cc.o.d"
  "CMakeFiles/treeagg_sim.dir/composites.cc.o"
  "CMakeFiles/treeagg_sim.dir/composites.cc.o.d"
  "CMakeFiles/treeagg_sim.dir/concurrent.cc.o"
  "CMakeFiles/treeagg_sim.dir/concurrent.cc.o.d"
  "CMakeFiles/treeagg_sim.dir/explorer.cc.o"
  "CMakeFiles/treeagg_sim.dir/explorer.cc.o.d"
  "CMakeFiles/treeagg_sim.dir/system.cc.o"
  "CMakeFiles/treeagg_sim.dir/system.cc.o.d"
  "CMakeFiles/treeagg_sim.dir/trace.cc.o"
  "CMakeFiles/treeagg_sim.dir/trace.cc.o.d"
  "libtreeagg_sim.a"
  "libtreeagg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
