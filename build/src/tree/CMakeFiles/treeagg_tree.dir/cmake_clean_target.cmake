file(REMOVE_RECURSE
  "libtreeagg_tree.a"
)
