file(REMOVE_RECURSE
  "CMakeFiles/treeagg_tree.dir/dot_export.cc.o"
  "CMakeFiles/treeagg_tree.dir/dot_export.cc.o.d"
  "CMakeFiles/treeagg_tree.dir/generators.cc.o"
  "CMakeFiles/treeagg_tree.dir/generators.cc.o.d"
  "CMakeFiles/treeagg_tree.dir/lease_graph.cc.o"
  "CMakeFiles/treeagg_tree.dir/lease_graph.cc.o.d"
  "CMakeFiles/treeagg_tree.dir/serialization.cc.o"
  "CMakeFiles/treeagg_tree.dir/serialization.cc.o.d"
  "CMakeFiles/treeagg_tree.dir/topology.cc.o"
  "CMakeFiles/treeagg_tree.dir/topology.cc.o.d"
  "libtreeagg_tree.a"
  "libtreeagg_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
