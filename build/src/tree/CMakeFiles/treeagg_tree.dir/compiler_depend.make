# Empty compiler generated dependencies file for treeagg_tree.
# This may be replaced when dependencies are built.
