
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/dot_export.cc" "src/tree/CMakeFiles/treeagg_tree.dir/dot_export.cc.o" "gcc" "src/tree/CMakeFiles/treeagg_tree.dir/dot_export.cc.o.d"
  "/root/repo/src/tree/generators.cc" "src/tree/CMakeFiles/treeagg_tree.dir/generators.cc.o" "gcc" "src/tree/CMakeFiles/treeagg_tree.dir/generators.cc.o.d"
  "/root/repo/src/tree/lease_graph.cc" "src/tree/CMakeFiles/treeagg_tree.dir/lease_graph.cc.o" "gcc" "src/tree/CMakeFiles/treeagg_tree.dir/lease_graph.cc.o.d"
  "/root/repo/src/tree/serialization.cc" "src/tree/CMakeFiles/treeagg_tree.dir/serialization.cc.o" "gcc" "src/tree/CMakeFiles/treeagg_tree.dir/serialization.cc.o.d"
  "/root/repo/src/tree/topology.cc" "src/tree/CMakeFiles/treeagg_tree.dir/topology.cc.o" "gcc" "src/tree/CMakeFiles/treeagg_tree.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
