file(REMOVE_RECURSE
  "CMakeFiles/treeagg_cli.dir/treeagg_cli.cc.o"
  "CMakeFiles/treeagg_cli.dir/treeagg_cli.cc.o.d"
  "treeagg_cli"
  "treeagg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeagg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
