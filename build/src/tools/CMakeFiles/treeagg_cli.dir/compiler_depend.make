# Empty compiler generated dependencies file for treeagg_cli.
# This may be replaced when dependencies are built.
