file(REMOVE_RECURSE
  "CMakeFiles/bench_causal_concurrent.dir/bench_causal_concurrent.cpp.o"
  "CMakeFiles/bench_causal_concurrent.dir/bench_causal_concurrent.cpp.o.d"
  "bench_causal_concurrent"
  "bench_causal_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_causal_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
