# Empty dependencies file for bench_causal_concurrent.
# This may be replaced when dependencies are built.
