file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_competitive.dir/bench_thm1_competitive.cpp.o"
  "CMakeFiles/bench_thm1_competitive.dir/bench_thm1_competitive.cpp.o.d"
  "bench_thm1_competitive"
  "bench_thm1_competitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_competitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
