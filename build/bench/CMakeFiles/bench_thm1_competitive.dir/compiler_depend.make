# Empty compiler generated dependencies file for bench_thm1_competitive.
# This may be replaced when dependencies are built.
