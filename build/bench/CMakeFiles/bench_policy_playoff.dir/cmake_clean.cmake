file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_playoff.dir/bench_policy_playoff.cpp.o"
  "CMakeFiles/bench_policy_playoff.dir/bench_policy_playoff.cpp.o.d"
  "bench_policy_playoff"
  "bench_policy_playoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_playoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
