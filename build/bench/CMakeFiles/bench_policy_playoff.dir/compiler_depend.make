# Empty compiler generated dependencies file for bench_policy_playoff.
# This may be replaced when dependencies are built.
