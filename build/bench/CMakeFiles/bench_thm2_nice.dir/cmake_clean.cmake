file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_nice.dir/bench_thm2_nice.cpp.o"
  "CMakeFiles/bench_thm2_nice.dir/bench_thm2_nice.cpp.o.d"
  "bench_thm2_nice"
  "bench_thm2_nice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_nice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
