# Empty dependencies file for bench_fig4_state_machine.
# This may be replaced when dependencies are built.
