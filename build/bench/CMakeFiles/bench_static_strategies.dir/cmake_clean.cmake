file(REMOVE_RECURSE
  "CMakeFiles/bench_static_strategies.dir/bench_static_strategies.cpp.o"
  "CMakeFiles/bench_static_strategies.dir/bench_static_strategies.cpp.o.d"
  "bench_static_strategies"
  "bench_static_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
