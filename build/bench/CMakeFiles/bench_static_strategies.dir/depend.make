# Empty dependencies file for bench_static_strategies.
# This may be replaced when dependencies are built.
