# Empty compiler generated dependencies file for bench_ablation_b.
# This may be replaced when dependencies are built.
