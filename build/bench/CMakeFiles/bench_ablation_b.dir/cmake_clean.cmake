file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_b.dir/bench_ablation_b.cpp.o"
  "CMakeFiles/bench_ablation_b.dir/bench_ablation_b.cpp.o.d"
  "bench_ablation_b"
  "bench_ablation_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
