file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_scaling.dir/bench_tree_scaling.cpp.o"
  "CMakeFiles/bench_tree_scaling.dir/bench_tree_scaling.cpp.o.d"
  "bench_tree_scaling"
  "bench_tree_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
