# Empty dependencies file for bench_tree_scaling.
# This may be replaced when dependencies are built.
