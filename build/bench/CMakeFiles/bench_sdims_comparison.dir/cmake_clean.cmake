file(REMOVE_RECURSE
  "CMakeFiles/bench_sdims_comparison.dir/bench_sdims_comparison.cpp.o"
  "CMakeFiles/bench_sdims_comparison.dir/bench_sdims_comparison.cpp.o.d"
  "bench_sdims_comparison"
  "bench_sdims_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdims_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
