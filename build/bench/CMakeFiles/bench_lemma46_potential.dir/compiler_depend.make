# Empty compiler generated dependencies file for bench_lemma46_potential.
# This may be replaced when dependencies are built.
