file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma46_potential.dir/bench_lemma46_potential.cpp.o"
  "CMakeFiles/bench_lemma46_potential.dir/bench_lemma46_potential.cpp.o.d"
  "bench_lemma46_potential"
  "bench_lemma46_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma46_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
