# Empty dependencies file for bench_fig5_lp.
# This may be replaced when dependencies are built.
