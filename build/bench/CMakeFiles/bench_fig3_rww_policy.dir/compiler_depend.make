# Empty compiler generated dependencies file for bench_fig3_rww_policy.
# This may be replaced when dependencies are built.
