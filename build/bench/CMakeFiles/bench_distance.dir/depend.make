# Empty dependencies file for bench_distance.
# This may be replaced when dependencies are built.
