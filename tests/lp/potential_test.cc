#include "lp/potential.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace treeagg {
namespace {

TEST(PotentialTest, PaperCertificateValid) {
  std::string error;
  EXPECT_TRUE(VerifyCertificate(PaperLpSolution(), &error)) << error;
}

TEST(PotentialTest, RejectsWrongArity) {
  std::string error;
  EXPECT_FALSE(VerifyCertificate({1.0, 2.0}, &error));
}

TEST(PotentialTest, RejectsNonzeroInitialPotential) {
  auto cert = PaperLpSolution();
  cert[0] = 1.0;  // Phi(0,0) must be 0
  std::string error;
  EXPECT_FALSE(VerifyCertificate(cert, &error));
  EXPECT_NE(error.find("Phi(0,0)"), std::string::npos);
}

TEST(PotentialTest, RejectsTooSmallC) {
  auto cert = PaperLpSolution();
  cert.back() = 2.0;  // c = 2 < 5/2 cannot certify
  std::string error;
  EXPECT_FALSE(VerifyCertificate(cert, &error));
  EXPECT_NE(error.find("violated"), std::string::npos);
}

TEST(PotentialTest, RejectsBrokenPhi) {
  auto cert = PaperLpSolution();
  cert[static_cast<std::size_t>(PhiIndex(1, 2))] = 3.0;  // was 1/2
  std::string error;
  EXPECT_FALSE(VerifyCertificate(cert, &error));
}

TEST(PotentialTest, ReplayAdversarialSequence) {
  EdgeSequence seq;
  for (int i = 0; i < 100; ++i) {
    seq.push_back(EdgeReq::kR);
    seq.push_back(EdgeReq::kW);
    seq.push_back(EdgeReq::kW);
  }
  const OptimalPlan plan = OptimalEdgePlan(seq);
  std::int64_t rww = 0, opt = 0;
  std::string error;
  EXPECT_TRUE(ReplayAmortized(seq, plan, PaperLpSolution(), &rww, &opt,
                              &error))
      << error;
  EXPECT_EQ(rww, 500);  // 5 per period
  EXPECT_EQ(opt, 200);  // 2 per period
}

TEST(PotentialTest, ReplayRandomSequences) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    EdgeSequence seq;
    const int len = static_cast<int>(rng.NextInt(0, 200));
    for (int i = 0; i < len; ++i) {
      seq.push_back(rng.NextBool(0.5) ? EdgeReq::kW : EdgeReq::kR);
    }
    const OptimalPlan plan = OptimalEdgePlan(seq);
    std::int64_t rww = 0, opt = 0;
    std::string error;
    ASSERT_TRUE(ReplayAmortized(seq, plan, PaperLpSolution(), &rww, &opt,
                                &error))
        << "trial " << trial << ": " << error;
    ASSERT_EQ(opt, OptimalEdgeCost(seq));
    ASSERT_EQ(rww, RwwEdgeCost(seq));
    ASSERT_LE(2 * rww, 5 * opt);
  }
}

TEST(OptimalPlanTest, CostMatchesDp) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    EdgeSequence seq;
    const int len = static_cast<int>(rng.NextInt(0, 30));
    for (int i = 0; i < len; ++i) {
      seq.push_back(rng.NextBool(0.4) ? EdgeReq::kW : EdgeReq::kR);
    }
    const OptimalPlan plan = OptimalEdgePlan(seq);
    ASSERT_EQ(plan.cost, OptimalEdgeCost(seq));
    ASSERT_EQ(plan.state_after.size(), seq.size());
    ASSERT_EQ(plan.noop_release.size(), seq.size());
  }
}

TEST(OptimalPlanTest, PlanTransitionsAreLegal) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    EdgeSequence seq;
    const int len = static_cast<int>(rng.NextInt(1, 40));
    for (int i = 0; i < len; ++i) {
      seq.push_back(rng.NextBool(0.6) ? EdgeReq::kW : EdgeReq::kR);
    }
    const OptimalPlan plan = OptimalEdgePlan(seq);
    int state = 0;
    std::int64_t cost = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const int mid = plan.state_after[i];
      if (seq[i] == EdgeReq::kR) {
        cost += (state == 0) ? 2 : 0;
        if (state == 1) {
          ASSERT_EQ(mid, 1);  // cannot drop a lease on a read
        }
      } else {
        if (state == 0) {
          ASSERT_EQ(mid, 0);  // cannot acquire a lease on a write
        } else {
          cost += (mid == 1) ? 1 : 2;
        }
      }
      state = mid;
      if (plan.noop_release[i]) {
        ASSERT_EQ(mid, 1);  // can only release a held lease
        cost += 1;
        state = 0;
      }
    }
    ASSERT_EQ(cost, plan.cost) << "trial " << trial;
  }
}

TEST(OptimalPlanTest, EmptySequence) {
  const OptimalPlan plan = OptimalEdgePlan({});
  EXPECT_EQ(plan.cost, 0);
  EXPECT_TRUE(plan.state_after.empty());
}

}  // namespace
}  // namespace treeagg
