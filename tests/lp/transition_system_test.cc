#include "lp/transition_system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

namespace treeagg {
namespace {

std::tuple<int, int, char, int, int, int, int> Key(const Transition& t) {
  return {t.from_x, t.from_y, t.request, t.to_x, t.to_y, t.rww_cost,
          t.opt_cost};
}

TEST(TransitionSystemTest, RwwMovesMatchFigure2) {
  EXPECT_EQ(RwwMove(0, 'R'), (std::pair{2, 2}));
  EXPECT_EQ(RwwMove(1, 'R'), (std::pair{2, 0}));
  EXPECT_EQ(RwwMove(2, 'R'), (std::pair{2, 0}));
  EXPECT_EQ(RwwMove(0, 'W'), (std::pair{0, 0}));
  EXPECT_EQ(RwwMove(1, 'W'), (std::pair{0, 2}));
  EXPECT_EQ(RwwMove(2, 'W'), (std::pair{1, 1}));
  EXPECT_EQ(RwwMove(2, 'N'), (std::pair{2, 0}));
}

TEST(TransitionSystemTest, OptMovesMatchFigure2) {
  EXPECT_EQ(OptMoves(0, 'R').size(), 2u);
  EXPECT_EQ(OptMoves(1, 'R'), (std::vector<std::pair<int, int>>{{1, 0}}));
  EXPECT_EQ(OptMoves(1, 'W').size(), 2u);
  EXPECT_EQ(OptMoves(0, 'N'), (std::vector<std::pair<int, int>>{{0, 0}}));
  EXPECT_EQ(OptMoves(1, 'N').size(), 2u);
}

TEST(TransitionSystemTest, JointSystemHas27Transitions) {
  const auto transitions = BuildJointTransitions();
  EXPECT_EQ(transitions.size(), 27u);
  std::size_t trivial = 0;
  for (const Transition& t : transitions) {
    if (t.trivial()) ++trivial;
  }
  EXPECT_EQ(trivial, 6u);  // the self-loops Figure 5 omits
}

TEST(TransitionSystemTest, NontrivialTransitionsEqualFigure5) {
  // The generated system, minus trivial self-loops, must be exactly the 21
  // inequalities printed in Figure 5 of the paper.
  std::set<std::tuple<int, int, char, int, int, int, int>> generated;
  for (const Transition& t : BuildJointTransitions()) {
    if (!t.trivial()) generated.insert(Key(t));
  }
  std::set<std::tuple<int, int, char, int, int, int, int>> paper;
  for (const Transition& t : Figure5Transitions()) paper.insert(Key(t));
  EXPECT_EQ(generated, paper);
}

TEST(TransitionSystemTest, InequalityFormatting) {
  const Transition t{0, 0, 'R', 0, 2, 2, 2};
  EXPECT_EQ(t.ToInequality(), "Phi(0,2) - Phi(0,0) + 2 <= 2c");
  const Transition n{1, 0, 'N', 0, 0, 0, 1};
  EXPECT_EQ(n.ToInequality(), "Phi(0,0) - Phi(1,0) <= c");
}

TEST(TransitionSystemTest, LpOptimumIsFiveHalves) {
  const LpProblem lp = BuildCompetitiveLp(BuildJointTransitions());
  const LpSolution sol = SolveLp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value, 2.5, 1e-7);
}

TEST(TransitionSystemTest, Figure5LpOptimumIsFiveHalves) {
  const LpProblem lp = BuildCompetitiveLp(Figure5Transitions());
  const LpSolution sol = SolveLp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value, 2.5, 1e-7);
}

TEST(TransitionSystemTest, PaperSolutionIsFeasible) {
  const LpProblem lp = BuildCompetitiveLp(BuildJointTransitions());
  EXPECT_TRUE(IsFeasible(lp, PaperLpSolution(), 1e-9));
}

TEST(TransitionSystemTest, PaperSolutionIsTightSomewhere) {
  // c cannot be reduced below 5/2: verify 5/2 - epsilon is infeasible by
  // re-solving with the extra constraint c <= 5/2 - 0.01.
  LpProblem lp = BuildCompetitiveLp(BuildJointTransitions());
  std::vector<double> row(kNumLpVars, 0.0);
  row[kNumLpVars - 1] = 1.0;
  lp.AddRow(std::move(row), 2.5 - 0.01);
  const LpSolution sol = SolveLp(lp);
  EXPECT_EQ(sol.status, LpSolution::Status::kInfeasible);
}

TEST(TransitionSystemTest, PhiIndexLayout) {
  EXPECT_EQ(PhiIndex(0, 0), 0);
  EXPECT_EQ(PhiIndex(0, 2), 2);
  EXPECT_EQ(PhiIndex(1, 0), 3);
  EXPECT_EQ(PhiIndex(1, 2), 5);
}

}  // namespace
}  // namespace treeagg
