// The LP relaxation of per-node MLAP batching: every integral plan is
// LP-feasible, so the chain LP <= DP <= brute force pins both the
// relaxation and the DP from opposite sides.
#include "lp/mlap_lp.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "offline/mlap_dp.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(MlapLpTest, EmptyAndSingletonBaseCases) {
  EXPECT_EQ(MlapBatchLpLowerBound({}, 10.0, 1.0), 0.0);
  // One request forces x >= 1 at its arrival: the LP value is exactly the
  // service cost.
  EXPECT_NEAR(MlapBatchLpLowerBound({3}, 10.0, 1.0), 10.0, 1e-9);
}

TEST(MlapLpTest, LowerBoundsTheDpWhichLowerBoundsBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t k = 1 + rng.NextBounded(7);
    std::vector<std::int64_t> arrivals;
    std::int64_t t = 0;
    for (std::size_t i = 0; i < k; ++i) {
      t += static_cast<std::int64_t>(rng.NextBounded(6));
      arrivals.push_back(t);
    }
    const double service = 1.0 + static_cast<double>(rng.NextBounded(12));
    const double delay =
        0.5 * (1.0 + static_cast<double>(rng.NextBounded(4)));
    const double lp = MlapBatchLpLowerBound(arrivals, service, delay);
    const double dp = OfflineBatchOpt(arrivals, service, delay);
    const double brute = OfflineBatchOptBruteForce(arrivals, service, delay);
    EXPECT_LE(lp, dp + 1e-7) << "trial " << trial;
    EXPECT_NEAR(dp, brute, 1e-9) << "trial " << trial;
    EXPECT_GT(lp, 0.0) << "trial " << trial;
  }
}

// Distinct arrivals far apart force singleton batches; there the LP is
// tight (serving each request at its arrival is optimal and integral).
TEST(MlapLpTest, TightWhenBatchingNeverPays) {
  const std::vector<std::int64_t> arrivals = {0, 100, 200};
  const double dp = OfflineBatchOpt(arrivals, 2.0, 1.0);
  EXPECT_EQ(dp, 6.0);
  EXPECT_NEAR(MlapBatchLpLowerBound(arrivals, 2.0, 1.0), dp, 1e-7);
}

TEST(MlapLpTest, TreeSumLowerBoundsTheDecoupledOptimum) {
  const Tree t = MakeKary(7, 2);
  const TimedWorkload timed = MakeTimedWorkload("onoff", t, 60, 13);
  const MlapParams params = ParseMlapSpec("mlap");
  const double lp = MlapLpLowerBound(t, timed.sigma, params, &timed.ticks);
  const MlapOfflineResult opt =
      OfflineMlapOptimum(t, timed.sigma, params, &timed.ticks);
  EXPECT_GT(lp, 0.0);
  EXPECT_LE(lp, opt.cost + 1e-7);
}

TEST(MlapLpTest, ValidatesTickCount) {
  const Tree t = MakePath(2);
  const RequestSequence sigma = {Request::Combine(1)};
  const std::vector<std::int64_t> wrong = {0, 1};
  EXPECT_THROW(MlapLpLowerBound(t, sigma, ParseMlapSpec("mlap"), &wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace treeagg
