#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace treeagg {
namespace {

TEST(SimplexTest, TrivialUnconstrainedMinimumAtZero) {
  LpProblem lp;
  lp.objective = {1.0, 1.0};
  const LpSolution sol = SolveLp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value, 0.0, 1e-9);
}

TEST(SimplexTest, SimpleBoundedMinimization) {
  // min x0 s.t. -x0 <= -3  (x0 >= 3)
  LpProblem lp;
  lp.objective = {1.0};
  lp.AddRow({-1.0}, -3.0);
  const LpSolution sol = SolveLp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value, 3.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
}

TEST(SimplexTest, TwoVariableClassic) {
  // min -x - 2y s.t. x + y <= 4, x <= 2  (opt at x=2? y=2: value -6; or
  // x=0, y=4: value -8 — the optimum).
  LpProblem lp;
  lp.objective = {-1.0, -2.0};
  lp.AddRow({1.0, 1.0}, 4.0);
  lp.AddRow({1.0, 0.0}, 2.0);
  const LpSolution sol = SolveLp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value, -8.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 4.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x <= 1 and -x <= -2 (x >= 2): infeasible.
  LpProblem lp;
  lp.objective = {1.0};
  lp.AddRow({1.0}, 1.0);
  lp.AddRow({-1.0}, -2.0);
  const LpSolution sol = SolveLp(lp);
  EXPECT_EQ(sol.status, LpSolution::Status::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // min -x, x unconstrained above.
  LpProblem lp;
  lp.objective = {-1.0};
  lp.AddRow({0.0}, 5.0);  // vacuous row
  const LpSolution sol = SolveLp(lp);
  EXPECT_EQ(sol.status, LpSolution::Status::kUnbounded);
}

TEST(SimplexTest, EqualityViaTwoInequalities) {
  // min x + y s.t. x + y = 5 (as <= and >=), y <= 2.
  LpProblem lp;
  lp.objective = {1.0, 1.0};
  lp.AddRow({1.0, 1.0}, 5.0);
  lp.AddRow({-1.0, -1.0}, -5.0);
  lp.AddRow({0.0, 1.0}, 2.0);
  const LpSolution sol = SolveLp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value, 5.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (degeneracy);
  // Bland's rule must not cycle.
  LpProblem lp;
  lp.objective = {1.0, 1.0, 1.0};
  lp.AddRow({-1.0, -1.0, 0.0}, -2.0);
  lp.AddRow({-1.0, -1.0, 0.0}, -2.0);
  lp.AddRow({0.0, -1.0, -1.0}, -2.0);
  lp.AddRow({-1.0, 0.0, -1.0}, -2.0);
  const LpSolution sol = SolveLp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value, 3.0, 1e-7);
}

TEST(SimplexTest, FeasibilityHelper) {
  LpProblem lp;
  lp.objective = {1.0, 1.0};
  lp.AddRow({1.0, 1.0}, 4.0);
  EXPECT_TRUE(IsFeasible(lp, {1.0, 1.0}));
  EXPECT_FALSE(IsFeasible(lp, {3.0, 2.0}));
  EXPECT_FALSE(IsFeasible(lp, {-0.5, 0.0}));  // x >= 0 violated
  EXPECT_FALSE(IsFeasible(lp, {1.0}));        // wrong arity
}

TEST(SimplexTest, SolutionIsFeasibleForItsOwnProblem) {
  LpProblem lp;
  lp.objective = {2.0, 3.0, 1.0};
  lp.AddRow({-1.0, -2.0, 0.0}, -4.0);
  lp.AddRow({0.0, -1.0, -3.0}, -6.0);
  lp.AddRow({1.0, 1.0, 1.0}, 10.0);
  const LpSolution sol = SolveLp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_TRUE(IsFeasible(lp, sol.x, 1e-7));
}

}  // namespace
}  // namespace treeagg
