// Cross-backend chaos equivalence: one FaultSchedule spec names one
// experiment on both backends — simulated ticks on the DES, injection
// indices on the TCP cluster. Under the convergence-safe fault subset both
// backends must converge, and because writes to a node are applied in
// injection order on either backend, the final per-node values — and so
// the post-heal probe answers — must be identical across backends.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate_op.h"
#include "core/policies.h"
#include "fault/convergence.h"
#include "fault/schedule.h"
#include "net/chaos.h"
#include "sim/chaos.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

struct BackendOutcome {
  ConvergenceReport report;
  Real ground_truth = 0;
  std::vector<Real> probe_values;  // by node id
};

BackendOutcome RunSim(const Tree& tree, const RequestSequence& sigma,
                      const FaultSchedule& schedule) {
  ChaosSimulator::Options options;
  options.seed = 33;
  options.min_delay = 1;
  options.max_delay = 3;
  ChaosSimulator sim(tree, RwwFactory(), schedule, options);
  Rng gaps(34);
  const std::vector<ReqId> probes =
      sim.RunWithFinalProbes(ScheduleWithGaps(sigma, 3, gaps));
  ConvergenceOptions copts;
  copts.fault_windows = schedule.Windows();
  BackendOutcome out;
  out.report = CheckConvergence(sim.history(), sim.GhostStates(), sim.op(),
                                tree.size(), probes, copts);
  out.ground_truth = GroundTruth(sim.history(), sim.op(), tree.size());
  for (const ReqId id : probes) {
    out.probe_values.push_back(sim.history().record(id).retval);
  }
  return out;
}

BackendOutcome RunNet(const Tree& tree, const RequestSequence& sigma,
                      const FaultSchedule& schedule, int daemons,
                      const std::string& placement) {
  ChaosNetOptions options;
  options.cluster.daemons = daemons;
  options.cluster.placement = placement;
  const ChaosNetResult result =
      RunChaosNetWorkload(ParentVector(tree), sigma, schedule, options);
  ConvergenceOptions copts;
  copts.fault_windows = result.fault_windows;
  // Crash re-injection is at-least-once (see ConvergenceOptions). The
  // crash workload here is write-once, so re-executed writes are ghost-
  // idempotent, but in-flight combines at kill time are not.
  copts.require_full_causal = result.reinjected == 0;
  BackendOutcome out;
  out.report = CheckConvergence(result.history, result.ghosts, SumOp(),
                                tree.size(), result.final_probe_ids, copts);
  out.ground_truth = GroundTruth(result.history, SumOp(), tree.size());
  for (const ReqId id : result.final_probe_ids) {
    out.probe_values.push_back(result.history.record(id).retval);
  }
  return out;
}

void ExpectEquivalent(const BackendOutcome& sim, const BackendOutcome& net) {
  EXPECT_TRUE(sim.report.ok) << "sim: " << sim.report.message;
  EXPECT_TRUE(net.report.ok) << "net: " << net.report.message;
  EXPECT_EQ(sim.ground_truth, net.ground_truth);
  ASSERT_EQ(sim.probe_values.size(), net.probe_values.size());
  for (std::size_t i = 0; i < sim.probe_values.size(); ++i) {
    EXPECT_EQ(sim.probe_values[i], net.probe_values[i]) << "node " << i;
  }
}

TEST(ChaosEquivalenceTest, FaultFreeBackendsAgree) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 80, /*seed=*/21);
  const FaultSchedule schedule;  // empty
  ExpectEquivalent(RunSim(tree, sigma, schedule),
                   RunNet(tree, sigma, schedule, /*daemons=*/3, "rr"));
}

// Acceptance criterion: the same spec string drives drops and a partition
// on both backends, and the post-heal aggregates are identical.
TEST(ChaosEquivalenceTest, DropAndCutBackendsAgree) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 80, /*seed=*/23);
  const FaultSchedule schedule =
      FaultSchedule::Parse("seed=17;drop(0.15)@10..60;cut(0-1)@20..50");
  ExpectEquivalent(RunSim(tree, sigma, schedule),
                   RunNet(tree, sigma, schedule, /*daemons=*/3, "rr"));
}

// Crashes defer requests (to the node on sim, to the daemon on net), so
// per-node write order is only backend-independent when each node is
// written at most once — which is exactly the workload used here.
TEST(ChaosEquivalenceTest, CrashBackendsAgreeOnWriteOnceWorkload) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  RequestSequence sigma;
  for (NodeId u = 0; u < tree.size(); ++u) {
    sigma.push_back(Request::Write(u, static_cast<Real>(u + 1)));
    sigma.push_back(Request::Combine(tree.size() - 1 - u));
  }
  const FaultSchedule schedule = FaultSchedule::Parse("seed=5;crash(6)@8..20");
  ExpectEquivalent(RunSim(tree, sigma, schedule),
                   RunNet(tree, sigma, schedule, /*daemons=*/3, "block"));
}

}  // namespace
}  // namespace treeagg
