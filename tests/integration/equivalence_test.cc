// Cross-backend equivalence: the sequential simulator, the actor runtime,
// and the networked backend run the same (tree, workload, policy) triple
// under sequential injection and must agree on per-request combine
// answers, the final aggregate, and both consistency-checker verdicts
// (Lemma 3.12: lease-based algorithms are strictly consistent on
// sequential executions). The networked runs use LocalCluster — real
// loopback TCP with OS-assigned ephemeral ports.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/equivalence.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

struct Triple {
  std::string shape;
  NodeId n;
  std::string workload;
  std::string policy;
  std::string op;
  int daemons;
  std::string placement;
};

EquivalenceSpec MakeSpec(const Triple& t, std::uint64_t seed) {
  const Tree tree = MakeShape(t.shape, t.n, seed);
  EquivalenceSpec spec;
  spec.tree_parent = ParentVector(tree);
  spec.sigma = MakeWorkload(t.workload, tree, /*length=*/40, seed + 7);
  spec.policy = t.policy;
  spec.op = t.op;
  spec.net_daemons = t.daemons;
  spec.placement = t.placement;
  return spec;
}

void ExpectEquivalentSpec(EquivalenceSpec spec, const Triple& t) {
  SCOPED_TRACE(t.shape + "/" + std::to_string(t.n) + "/" + t.workload + "/" +
               t.policy + "/" + t.op + "/d" + std::to_string(t.daemons) + "/" +
               t.placement);
  const EquivalenceReport report = CheckBackendEquivalence(spec);
  EXPECT_TRUE(report.ok) << report.message;
  ASSERT_EQ(report.runs.size(), 3u);
  for (const BackendRun& run : report.runs) {
    EXPECT_TRUE(run.strict_ok) << run.backend << ": " << run.message;
    EXPECT_TRUE(run.causal_ok) << run.backend << ": " << run.message;
  }
}

void ExpectEquivalent(const Triple& t, std::uint64_t seed) {
  ExpectEquivalentSpec(MakeSpec(t, seed), t);
}

// Same triple with the scaled transport turned on: kBatch coalescing
// (small size cap so batches actually split, a real linger window) and
// two reactors per daemon. The wire layer must change NOTHING the
// harness observes — answers, final aggregates, checker verdicts.
void ExpectEquivalentBatched(const Triple& t, std::uint64_t seed) {
  EquivalenceSpec spec = MakeSpec(t, seed);
  spec.net_batch_bytes = 512;
  spec.net_batch_flush_us = 100;
  spec.net_reactors = 2;
  ExpectEquivalentSpec(spec, t);
}

// The acceptance set: >= 6 distinct triples spanning shapes, workloads,
// policies, ops, daemon counts, and placements.
TEST(BackendEquivalence, KaryMixedRww) {
  ExpectEquivalent({"kary2", 15, "mixed50", "RWW", "sum", 2, "block"}, 1);
}

TEST(BackendEquivalence, PathReadHeavyPushAll) {
  ExpectEquivalent({"path", 9, "readheavy", "push-all", "sum", 2, "rr"}, 2);
}

TEST(BackendEquivalence, StarWriteHeavyPullAll) {
  ExpectEquivalent({"star", 12, "writeheavy", "pull-all", "sum", 3, "block"},
                   3);
}

TEST(BackendEquivalence, Kary4HotspotRwwMax) {
  ExpectEquivalent({"kary4", 13, "hotspot", "RWW", "max", 2, "rr"}, 4);
}

TEST(BackendEquivalence, RandomMixedLeaseMin) {
  ExpectEquivalent({"random", 10, "mixed25", "RWW", "min", 4, "rr"}, 5);
}

TEST(BackendEquivalence, PathRoundRobinPushAllSingleDaemon) {
  ExpectEquivalent({"path", 7, "roundrobin", "push-all", "sum", 1, "block"},
                   6);
}

TEST(BackendEquivalence, KaryMixed75PullAllFourDaemons) {
  ExpectEquivalent({"kary2", 15, "mixed75", "pull-all", "sum", 4, "block"}, 7);
}

// The 7 acceptance triples again, with frame batching and multi-reactor
// daemons enabled in the net backend (PR 6 tentpole): results must be
// identical to the plain-transport runs above by transitivity through
// the sim reference.
TEST(BackendEquivalenceBatched, KaryMixedRww) {
  ExpectEquivalentBatched({"kary2", 15, "mixed50", "RWW", "sum", 2, "block"},
                          1);
}

TEST(BackendEquivalenceBatched, PathReadHeavyPushAll) {
  ExpectEquivalentBatched({"path", 9, "readheavy", "push-all", "sum", 2, "rr"},
                          2);
}

TEST(BackendEquivalenceBatched, StarWriteHeavyPullAll) {
  ExpectEquivalentBatched(
      {"star", 12, "writeheavy", "pull-all", "sum", 3, "block"}, 3);
}

TEST(BackendEquivalenceBatched, Kary4HotspotRwwMax) {
  ExpectEquivalentBatched({"kary4", 13, "hotspot", "RWW", "max", 2, "rr"}, 4);
}

TEST(BackendEquivalenceBatched, RandomMixedLeaseMin) {
  ExpectEquivalentBatched({"random", 10, "mixed25", "RWW", "min", 4, "rr"}, 5);
}

TEST(BackendEquivalenceBatched, PathRoundRobinPushAllSingleDaemon) {
  ExpectEquivalentBatched(
      {"path", 7, "roundrobin", "push-all", "sum", 1, "block"}, 6);
}

TEST(BackendEquivalenceBatched, KaryMixed75PullAllFourDaemons) {
  // Subtree placement in the batched pass: DFS-contiguous blocks are the
  // default large-tree mode, so the equivalence matrix must cover it.
  ExpectEquivalentBatched(
      {"kary2", 15, "mixed75", "pull-all", "sum", 4, "subtree"}, 7);
}

// MLAP is a sequence transform in front of the RWW mechanism, applied once
// inside the harness (WithFinalCombine): all three backends execute the
// same batched sequence and must stay bit-identical — the 7-triple
// equivalence contract extends to the delay-and-batch policy family.
TEST(BackendEquivalenceMlap, KaryBurstyDelayRule) {
  ExpectEquivalent({"kary2", 15, "onoff", "mlap(1)", "sum", 2, "block"}, 11);
}

TEST(BackendEquivalenceMlap, PathParetoDeadlineRule) {
  ExpectEquivalent({"path", 9, "pareto", "mlap-d(0.5)", "sum", 2, "rr"}, 12);
}

TEST(BackendEquivalenceMlap, StarMixedDelayRuleMax) {
  ExpectEquivalent({"star", 12, "mixed50", "mlap(2)", "max", 3, "block"}, 13);
}

TEST(BackendEquivalenceMlap, BatchedTransportKaryBurstyDelayRule) {
  ExpectEquivalentBatched({"kary2", 15, "onoff", "mlap", "sum", 2, "block"},
                          14);
}

TEST(BackendEquivalence, ReportNamesDivergingBackendOnPolicyMismatch) {
  // Not an equivalence failure of the system — a sanity check that the
  // harness itself detects divergence. Different ops produce different
  // answers, so diffing a sum run against a max run must fail.
  const Tree tree = MakeShape("kary2", 7, 9);
  EquivalenceSpec spec;
  spec.tree_parent = ParentVector(tree);
  spec.sigma = MakeWorkload("mixed50", tree, 20, 10);
  spec.policy = "RWW";
  spec.op = "sum";
  const BackendRun sum_run = RunSimBackend(spec);
  spec.op = "max";
  const BackendRun max_run = RunSimBackend(spec);
  // With >= 2 writes of distinct values, sum and max answers diverge.
  EXPECT_NE(sum_run.final_value, max_run.final_value);
}

}  // namespace
}  // namespace treeagg
