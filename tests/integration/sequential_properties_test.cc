// Property-style sweeps over (tree shape x policy x workload):
//   * strict consistency (Lemma 3.12 — property of EVERY lease policy);
//   * quiescent-state lemmas 3.1, 3.2, 3.4 after every request;
//   * per-edge cost partition (Lemma 3.9);
//   * RWW's 5/2 bound against the per-edge offline optimum (Theorem 1).
#include <gtest/gtest.h>

#include "analysis/competitive.h"
#include "consistency/strict_checker.h"
#include "core/policies.h"
#include "sim/system.h"
#include "test_util.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

struct Param {
  const char* shape;
  const char* policy;
  const char* workload;
};

class SequentialSweep : public ::testing::TestWithParam<Param> {};

PolicyFactory FactoryByName(const std::string& name) {
  for (NamedPolicy& p : StandardPolicies()) {
    if (p.name == name) return p.factory;
  }
  throw std::invalid_argument("unknown policy " + name);
}

TEST_P(SequentialSweep, StrictConsistencyAndQuiescentInvariants) {
  const Param param = GetParam();
  Tree t = MakeShape(param.shape, 12, 7);
  AggregationSystem sys(t, FactoryByName(param.policy));
  const RequestSequence sigma = MakeWorkload(param.workload, t, 200, 555);
  std::vector<Real> truth(static_cast<std::size_t>(t.size()),
                          SumOp().identity);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      sys.Combine(r.node);
    } else {
      sys.Write(r.node, r.arg);
      truth[static_cast<std::size_t>(r.node)] = r.arg;
    }
    ExpectQuiescentInvariants(sys, truth);
    if (::testing::Test::HasFailure()) break;
  }
  EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok);
}

std::vector<Param> MakeSweep() {
  std::vector<Param> params;
  const char* shapes[] = {"path", "star", "kary2", "random"};
  const char* policies[] = {"RWW",        "lease(1,1)", "lease(1,3)",
                            "lease(2,2)", "push-all",   "pull-all"};
  const char* workloads[] = {"mixed50", "readheavy", "writeheavy"};
  for (const char* s : shapes) {
    for (const char* p : policies) {
      for (const char* w : workloads) {
        params.push_back({s, p, w});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SequentialSweep, ::testing::ValuesIn(MakeSweep()),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::string(info.param.shape) + "_" +
                         info.param.policy + "_" + info.param.workload;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Operator sweep: strict consistency and the quiescent value invariants
// are operator-generic; run the full pipeline under min/max/or as well.
class OperatorSweep
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(OperatorSweep, StrictConsistencyUnderEveryOperator) {
  const auto [op_name, policy_name] = GetParam();
  const AggregateOp& op = OpByName(op_name);
  Tree t = MakeShape("random", 10, 31);
  AggregationSystem::Options options;
  options.op = &op;
  AggregationSystem sys(t, FactoryByName(policy_name), options);
  RequestSequence sigma = MakeWorkload("mixed50", t, 200, 77);
  if (std::string(op_name) == "or") {
    // Keep arguments in the operator's domain {0, 1}.
    for (Request& r : sigma) {
      if (r.op == ReqType::kWrite) r.arg = (r.arg > 50.0) ? 1.0 : 0.0;
    }
  }
  std::vector<Real> truth(static_cast<std::size_t>(t.size()), op.identity);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      sys.Combine(r.node);
    } else {
      sys.Write(r.node, r.arg);
      truth[static_cast<std::size_t>(r.node)] = r.arg;
    }
  }
  ExpectQuiescentInvariants(sys, truth);
  EXPECT_TRUE(CheckStrictConsistency(sys.history(), op, t.size()).ok);
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndPolicies, OperatorSweep,
    ::testing::Combine(::testing::Values("sum", "min", "max", "or"),
                       ::testing::Values("RWW", "lease(1,1)", "push-all",
                                         "pull-all")),
    [](const ::testing::TestParamInfo<std::tuple<const char*, const char*>>&
           info) {
      std::string name = std::string(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Theorem 1 sweep: RWW within 5/2 of the per-edge offline optimum on every
// shape x workload pairing, totals and per-edge.
class Theorem1Sweep
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(Theorem1Sweep, RwwWithinFiveHalves) {
  const auto [shape, workload] = GetParam();
  Tree t = MakeShape(shape, 20, 12);
  const RequestSequence sigma = MakeWorkload(workload, t, 600, 34);
  const CompetitiveReport report =
      RunCompetitive(t, RwwFactory(), "RWW", sigma);
  EXPECT_TRUE(report.strict_ok) << report.strict_error;
  EXPECT_TRUE(report.partition_ok);
  EXPECT_LE(report.RatioVsLeaseOpt(), 2.5 + 1e-12);
  EXPECT_LE(report.WorstEdgeRatio(), 2.5 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndWorkloads, Theorem1Sweep,
    ::testing::Combine(
        ::testing::Values("path", "star", "kary2", "kary4", "caterpillar",
                          "broom", "random", "pref"),
        ::testing::Values("mixed25", "mixed50", "mixed75", "bursty",
                          "hotspot", "readheavy", "writeheavy",
                          "roundrobin")),
    [](const ::testing::TestParamInfo<std::tuple<const char*, const char*>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

}  // namespace
}  // namespace treeagg
