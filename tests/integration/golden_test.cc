// Golden regression tests: total message counts for fixed
// (tree, workload, policy, seed) configurations, pinned against the
// extensively verified current implementation. Any behavioural drift in
// the mechanism, the policies, the workload generators, or the PRNG shows
// up here first, with an exact diff.
//
// If a change intentionally alters protocol behaviour, re-derive the
// constants by running the listed configuration and update them in the
// same commit that explains why.
#include <gtest/gtest.h>

#include "core/extra_policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

struct GoldenCase {
  const char* shape;
  NodeId n;
  const char* workload;
  std::size_t len;
  const char* policy;
  std::int64_t expected_total;
};

std::int64_t Measure(const GoldenCase& c) {
  Tree t = MakeShape(c.shape, c.n, /*seed=*/1000);
  const RequestSequence sigma = MakeWorkload(c.workload, t, c.len, 2000);
  AggregationSystem sys(t, PolicyBySpec(c.policy));
  sys.Execute(sigma);
  return sys.trace().TotalMessages();
}

class GoldenSweep : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenSweep, TotalMessagesPinned) {
  const GoldenCase c = GetParam();
  EXPECT_EQ(Measure(c), c.expected_total)
      << c.shape << "/" << c.workload << "/" << c.policy;
}

// GOLDEN_VALUES_BEGIN (regenerate with `./build/tests/golden_gen`)
INSTANTIATE_TEST_SUITE_P(
    Pinned, GoldenSweep,
    ::testing::Values(
        GoldenCase{"path", 16, "mixed50", 400, "RWW", 3343},
        GoldenCase{"path", 16, "mixed50", 400, "pull-all", 6000},
        GoldenCase{"path", 16, "mixed50", 400, "push-all", 3029},
        GoldenCase{"star", 16, "bursty", 400, "RWW", 690},
        GoldenCase{"kary2", 31, "hotspot", 400, "RWW", 2587},
        GoldenCase{"kary2", 31, "hotspot", 400, "lease(1,3)", 2367},
        GoldenCase{"random", 24, "readheavy", 400, "RWW", 726},
        GoldenCase{"random", 24, "writeheavy", 400, "RWW", 1021},
        GoldenCase{"pref", 24, "roundrobin", 400, "ewma", 1370},
        GoldenCase{"broom", 20, "mixed25", 400, "timer(16)", 1856}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = std::string(info.param.shape) + "_" +
                         info.param.workload + "_" + info.param.policy;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });
// GOLDEN_VALUES_END

}  // namespace
}  // namespace treeagg
