// Concurrent stress sweep: heavy overlap, many seeds, every policy and
// several topologies — all executions must complete and be causally
// consistent (Theorem 4), under both delay regimes.
#include <gtest/gtest.h>

#include <tuple>

#include "consistency/causal_checker.h"
#include "core/extra_policies.h"
#include "sim/concurrent.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

using StressParam = std::tuple<const char*, int, int>;  // shape, policy, seed

class ConcurrentStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(ConcurrentStress, CausallyConsistent) {
  const auto [shape, policy_index, seed] = GetParam();
  const auto policies = AllPolicies();
  const NamedPolicy& policy =
      policies[static_cast<std::size_t>(policy_index)];
  Tree t = MakeShape(shape, 11, 5);
  ConcurrentSimulator::Options options;
  options.min_delay = 1;
  options.max_delay = 15;
  options.seed = static_cast<std::uint64_t>(seed) * 7919 + 13;
  ConcurrentSimulator sim(t, policy.factory, options);
  Rng rng(options.seed + 1);
  const RequestSequence sigma =
      MakeWorkload("mixed50", t, 250, options.seed + 2);
  sim.Run(ScheduleWithGaps(sigma, 2, rng));
  ASSERT_TRUE(sim.history().AllCompleted())
      << shape << "/" << policy.name << "/" << seed;
  const CheckResult r = CheckCausalConsistency(sim.history(),
                                               sim.GhostStates(), SumOp(),
                                               t.size());
  EXPECT_TRUE(r.ok) << shape << "/" << policy.name << "/" << seed << ": "
                    << r.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcurrentStress,
    ::testing::Combine(::testing::Values("path", "star", "kary2", "random"),
                       ::testing::Range(0, 9), ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return std::string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ConcurrentStressExtremes, EveryNodeCombinesSimultaneously) {
  Tree t = MakeKary(21, 4);
  ConcurrentSimulator::Options options;
  options.min_delay = 1;
  options.max_delay = 5;
  options.seed = 3;
  ConcurrentSimulator sim(t, RwwFactory(), options);
  std::vector<ScheduledRequest> schedule;
  for (NodeId u = 0; u < t.size(); ++u) {
    schedule.push_back({0, Request::Combine(u)});
  }
  sim.Run(schedule);
  ASSERT_TRUE(sim.history().AllCompleted());
  // All combines see the initial all-identity state.
  for (const RequestRecord& r : sim.history().records()) {
    EXPECT_EQ(r.retval, 0.0);
  }
}

TEST(ConcurrentStressExtremes, WriteStormThenReadStorm) {
  Tree t = MakePath(9);
  ConcurrentSimulator::Options options;
  options.min_delay = 1;
  options.max_delay = 9;
  options.seed = 4;
  ConcurrentSimulator sim(t, RwwFactory(), options);
  std::vector<ScheduledRequest> schedule;
  for (int i = 0; i < 200; ++i) {
    schedule.push_back(
        {i / 10, Request::Write(static_cast<NodeId>(i % 9), i)});
  }
  for (int i = 0; i < 100; ++i) {
    schedule.push_back({20 + i / 10,
                        Request::Combine(static_cast<NodeId>(i % 9))});
  }
  sim.Run(schedule);
  ASSERT_TRUE(sim.history().AllCompleted());
  const CheckResult r = CheckCausalConsistency(sim.history(),
                                               sim.GhostStates(), SumOp(),
                                               t.size());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ConcurrentStressExtremes, TwoNodeContention) {
  // The tightest tree: both nodes issue interleaved reads and writes.
  Tree t({0, 0});
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    ConcurrentSimulator::Options options;
    options.min_delay = 1;
    options.max_delay = 6;
    options.seed = seed;
    ConcurrentSimulator sim(t, RwwFactory(), options);
    std::vector<ScheduledRequest> schedule;
    Rng rng(seed);
    for (int i = 0; i < 150; ++i) {
      const NodeId node = static_cast<NodeId>(i % 2);
      schedule.push_back({i / 3, rng.NextBool(0.5)
                                     ? Request::Write(node, i)
                                     : Request::Combine(node)});
    }
    sim.Run(schedule);
    ASSERT_TRUE(sim.history().AllCompleted()) << "seed " << seed;
    const CheckResult r = CheckCausalConsistency(
        sim.history(), sim.GhostStates(), SumOp(), t.size());
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.message;
  }
}

}  // namespace
}  // namespace treeagg
