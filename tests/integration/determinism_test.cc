// Determinism regression tests: the sequential driver must produce
// BIT-IDENTICAL message traces to the seed implementation.
//
// The hot-path optimizations (small-buffer release sets, the ring-buffer
// message queue, CSR adjacency, flat-table trace accounting) are required
// to be pure performance changes: same messages, same fields, same order.
// Each golden below pins (total message count, order-sensitive FNV-1a
// fingerprint of the full message log) for a (tree, workload, policy,
// seed) cell, generated from the pre-optimization implementation.
//
// If one of these fails, an "optimization" changed protocol behaviour —
// that is a bug in the optimization, not a constant to refresh. Only an
// intentional protocol change may regenerate these values (run the listed
// configuration with keep_message_log and TraceHash()), and the commit
// must say why.
#include <gtest/gtest.h>

#include "core/extra_policies.h"
#include "sim/system.h"
#include "sim/trace.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

struct DetCase {
  const char* shape;
  NodeId n;
  const char* workload;
  std::size_t len;
  const char* policy;
  std::int64_t expected_total;
  std::uint64_t expected_hash;
};

class DeterminismSweep : public ::testing::TestWithParam<DetCase> {};

TEST_P(DeterminismSweep, TraceBitIdenticalToSeed) {
  const DetCase c = GetParam();
  Tree t = MakeShape(c.shape, c.n, /*seed=*/1000);
  const RequestSequence sigma = MakeWorkload(c.workload, t, c.len, 2000);
  AggregationSystem::Options options;
  options.keep_message_log = true;
  AggregationSystem sys(t, PolicyBySpec(c.policy), options);
  sys.Execute(sigma);
  EXPECT_EQ(sys.trace().TotalMessages(), c.expected_total)
      << c.shape << "/" << c.workload << "/" << c.policy;
  EXPECT_EQ(TraceHash(sys.trace().log()), c.expected_hash)
      << c.shape << "/" << c.workload << "/" << c.policy;
}

// The count must also be independent of instrumentation: logging and
// per-edge accounting observe the run, they must never perturb it.
TEST_P(DeterminismSweep, CountInvariantUnderInstrumentationFlags) {
  const DetCase c = GetParam();
  Tree t = MakeShape(c.shape, c.n, /*seed=*/1000);
  const RequestSequence sigma = MakeWorkload(c.workload, t, c.len, 2000);
  AggregationSystem::Options bare;
  bare.edge_accounting = false;
  AggregationSystem sys(t, PolicyBySpec(c.policy), bare);
  sys.Execute(sigma);
  EXPECT_EQ(sys.trace().TotalMessages(), c.expected_total);
}

// Generated against the seed implementation (commit 43fafd1); see the
// header comment before touching these.
INSTANTIATE_TEST_SUITE_P(
    SeedPinned, DeterminismSweep,
    ::testing::Values(
        DetCase{"path", 16, "mixed50", 400, "RWW", 3343,
                0x1ea38345ce8f60c4ull},
        DetCase{"star", 16, "bursty", 400, "RWW", 690,
                0xffdc6bbc26f3e774ull},
        DetCase{"kary2", 31, "hotspot", 400, "lease(1,3)", 2367,
                0xb0e54c26053e392aull},
        DetCase{"kary4", 64, "mixed25", 400, "RWW", 2788,
                0xc22f383db8bba9c0ull},
        DetCase{"random", 24, "writeheavy", 400, "push-all", 3347,
                0xd1913ab8b9a729f9ull},
        DetCase{"pref", 24, "roundrobin", 300, "ewma", 1013,
                0xfbddfa979535c51full},
        DetCase{"broom", 20, "readheavy", 400, "pull-all", 14364,
                0x9323886b8688cb92ull},
        DetCase{"caterpillar", 24, "mixed75", 400, "timer(8)", 2929,
                0xbff18c3142dee76aull}),
    [](const ::testing::TestParamInfo<DetCase>& info) {
      std::string name = std::string(info.param.shape) + "_" +
                         info.param.workload + "_" + info.param.policy;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace treeagg
