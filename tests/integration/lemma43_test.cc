// Systematic verification of Lemma 4.3 (with Lemma 4.1), sweeping tree
// shapes and all (reader, writer) placements:
//
//  (1) after a combine at r, EVERY node x != r has granted the lease
//      toward r: x.granted[UParent(x, r)];
//  (2) one write anywhere leaves every lease in place (RWW's budget is 2);
//  (3) a second consecutive write at w breaks exactly the leases whose
//      sigma(x, p) contains the writes — the edges whose x-side contains
//      w — and leaves every other lease untouched.
#include <gtest/gtest.h>

#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

class Lemma43Sweep : public ::testing::TestWithParam<const char*> {};

TEST_P(Lemma43Sweep, LeaseLifecycleMatchesLemma) {
  Tree t = MakeShape(GetParam(), 9, 3);
  for (NodeId reader = 0; reader < t.size(); ++reader) {
    for (NodeId writer = 0; writer < t.size(); ++writer) {
      if (writer == reader) continue;
      AggregationSystem sys(t, RwwFactory());
      sys.Combine(reader);
      // (1) Every lease toward the reader is set.
      for (NodeId x = 0; x < t.size(); ++x) {
        if (x == reader) continue;
        const NodeId p = t.UParent(x, reader);
        ASSERT_TRUE(sys.node(x).granted(p))
            << GetParam() << " r=" << reader << ": lease " << x << "->"
            << p << " missing after combine";
      }
      // (2) One write: everything survives.
      sys.Write(writer, 1.0);
      for (NodeId x = 0; x < t.size(); ++x) {
        if (x == reader) continue;
        const NodeId p = t.UParent(x, reader);
        ASSERT_TRUE(sys.node(x).granted(p))
            << GetParam() << " r=" << reader << " w=" << writer
            << ": lease " << x << "->" << p << " broke after ONE write";
      }
      // (3) Second consecutive write: exactly the leases whose sigma
      // contains the writes break.
      sys.Write(writer, 2.0);
      for (NodeId x = 0; x < t.size(); ++x) {
        if (x == reader) continue;
        const NodeId p = t.UParent(x, reader);
        const bool writes_in_sigma = t.InSubtree(writer, x, p);
        ASSERT_EQ(sys.node(x).granted(p), !writes_in_sigma)
            << GetParam() << " r=" << reader << " w=" << writer
            << ": lease " << x << "->" << p
            << (writes_in_sigma ? " should have broken" : " should survive");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Lemma43Sweep,
                         ::testing::Values("path", "star", "kary2",
                                           "caterpillar", "random"));

}  // namespace
}  // namespace treeagg
