// Differential tests: independent implementations of the same quantity
// must agree.
//
//   * The real protocol's measured per-edge costs vs the analytic Figure 2
//     cost models (RwwEdgeCost / AbEdgeCost) — Lemma 4.5 made executable,
//     for the whole lease(1, b) family.
//   * The sequential driver vs the concurrent simulator with huge request
//     gaps: a concurrent execution that happens to be sequential must
//     produce the exact same messages.
//   * The concurrent simulator under per-hop delay 1 vs larger random
//     delays: message COUNTS may differ (different interleavings), but
//     both must remain causally consistent — covered elsewhere; here we
//     pin the deterministic-replay property instead.
#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "core/extra_policies.h"
#include "offline/edge_dp.h"
#include "offline/projection.h"
#include "sim/concurrent.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

class LeaseFamilyDifferential : public ::testing::TestWithParam<int> {};

TEST_P(LeaseFamilyDifferential, MeasuredEdgeCostsMatchAnalyticModel) {
  const int b = GetParam();
  for (const std::uint64_t seed : {1ull, 7ull}) {
    Tree t = MakeShape("random", 10, seed);
    const RequestSequence sigma = MakeWorkload("mixed50", t, 400, seed + 50);
    AggregationSystem sys(t, AbFactory(1, b));
    sys.Execute(sigma);
    for (const Edge& e : t.OrderedEdges()) {
      const EdgeSequence projected = ProjectSequence(sigma, t, e.u, e.v);
      ASSERT_EQ(sys.trace().EdgeCost(e.u, e.v).total(),
                AbEdgeCost(projected, 1, b))
          << "b=" << b << " edge (" << e.u << "," << e.v << ") seed "
          << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WriteBudgets, LeaseFamilyDifferential,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(LeaseFamilyDifferentialTwoNode, GeneralAMatchesAnalyticModel) {
  // For a > 1 the distributed (a, b)-policy matches the paper's definition
  // exactly on two-node trees (where all sigma(u, v) activity is directly
  // observable); verify against the analytic model for several (a, b).
  Tree t({0, 0});
  for (const int a : {1, 2, 3}) {
    for (const int b : {1, 2, 4}) {
      for (const std::uint64_t seed : {3ull, 8ull}) {
        const RequestSequence sigma = MakeWorkload("mixed50", t, 500, seed);
        AggregationSystem sys(t, AbFactory(a, b));
        sys.Execute(sigma);
        for (const Edge& e : t.OrderedEdges()) {
          const EdgeSequence projected = ProjectSequence(sigma, t, e.u, e.v);
          ASSERT_EQ(sys.trace().EdgeCost(e.u, e.v).total(),
                    AbEdgeCost(projected, a, b))
              << "(" << a << "," << b << ") edge (" << e.u << "," << e.v
              << ") seed " << seed;
        }
      }
    }
  }
}

TEST(BackendDifferential, ConcurrentWithHugeGapsEqualsSequential) {
  for (const std::uint64_t seed : {2ull, 5ull, 9ull}) {
    Tree t = MakeShape("kary2", 15, seed);
    const RequestSequence sigma = MakeWorkload("mixed50", t, 300, seed);

    AggregationSystem seq(t, RwwFactory());
    seq.Execute(sigma);

    ConcurrentSimulator::Options options;
    options.min_delay = 1;
    options.max_delay = 3;
    options.ghost_logging = false;
    options.seed = seed;
    ConcurrentSimulator conc(t, RwwFactory(), options);
    std::vector<ScheduledRequest> schedule;
    std::int64_t time = 0;
    for (const Request& r : sigma) {
      schedule.push_back({time, r});
      time += 10000;  // quiescence guaranteed between requests
    }
    conc.Run(schedule);

    ASSERT_EQ(seq.trace().TotalMessages(), conc.trace().TotalMessages())
        << "seed " << seed;
    // Per-edge and per-type costs must match too.
    for (const Edge& e : t.OrderedEdges()) {
      const MessageCounts a = seq.trace().EdgeCost(e.u, e.v);
      const MessageCounts b = conc.trace().EdgeCost(e.u, e.v);
      ASSERT_EQ(a.probes, b.probes);
      ASSERT_EQ(a.responses, b.responses);
      ASSERT_EQ(a.updates, b.updates);
      ASSERT_EQ(a.releases, b.releases);
    }
    // And the returned combine values.
    ASSERT_EQ(seq.history().size(), conc.history().size());
    for (std::size_t i = 0; i < seq.history().size(); ++i) {
      const RequestRecord& a = seq.history().records()[i];
      const RequestRecord& b = conc.history().records()[i];
      ASSERT_EQ(a.op, b.op);
      if (a.op == ReqType::kCombine) {
        ASSERT_EQ(a.retval, b.retval);
      }
    }
  }
}

TEST(BackendDifferential, EagerBreakStaysConsistentOnAllBackends) {
  // The pathological policy exercises empty release sets and noop releases
  // (Figure 2's true/N/false row); both consistency notions must hold.
  Tree t = MakeKary(10, 3);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 300, 3);
  {
    AggregationSystem sys(t, EagerBreakFactory());
    sys.Execute(sigma);
    EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok);
  }
  {
    ConcurrentSimulator::Options options;
    options.min_delay = 1;
    options.max_delay = 15;
    options.seed = 21;
    ConcurrentSimulator sim(t, EagerBreakFactory(), options);
    Rng rng(8);
    sim.Run(ScheduleWithGaps(sigma, 2, rng));
    ASSERT_TRUE(sim.history().AllCompleted());
    const CheckResult r = CheckCausalConsistency(
        sim.history(), sim.GhostStates(), SumOp(), t.size());
    EXPECT_TRUE(r.ok) << r.message;
  }
}

TEST(BackendDifferential, ConcurrentReplayIsDeterministic) {
  Tree t = MakeShape("pref", 20, 4);
  const RequestSequence sigma = MakeWorkload("hotspot", t, 400, 6);
  const auto fingerprint = [&]() {
    ConcurrentSimulator::Options options;
    options.min_delay = 1;
    options.max_delay = 12;
    options.seed = 1234;
    ConcurrentSimulator sim(t, RwwFactory(), options);
    Rng rng(55);
    sim.Run(ScheduleWithGaps(sigma, 3, rng));
    std::int64_t acc = sim.trace().TotalMessages();
    for (const RequestRecord& r : sim.history().records()) {
      acc = acc * 31 + r.completed_at;
    }
    return acc;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

}  // namespace
}  // namespace treeagg
