// Integration tests that check the paper's message-count lemmas request by
// request against the lease graph G(Q) captured in the preceding quiescent
// state:
//   Lemma 3.3 — a combine at u sends exactly |A| probes and |A| responses
//               (A = probe set of u in G(Q)) and no updates or releases;
//   Lemma 3.5 — a write at u sends exactly |A| updates (A = nodes reachable
//               from u in G(Q)) and no probes or responses.
#include <gtest/gtest.h>

#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "tree/lease_graph.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

struct SweepParam {
  const char* shape;
  const char* workload;
  const char* policy;
};

class LemmaSweep : public ::testing::TestWithParam<SweepParam> {};

PolicyFactory FactoryByName(const std::string& name) {
  for (NamedPolicy& p : StandardPolicies()) {
    if (p.name == name) return p.factory;
  }
  throw std::invalid_argument("unknown policy " + name);
}

TEST_P(LemmaSweep, PerRequestMessageCounts) {
  const SweepParam param = GetParam();
  Tree t = MakeShape(param.shape, 14, 2024);
  AggregationSystem sys(t, FactoryByName(param.policy));
  const RequestSequence sigma = MakeWorkload(param.workload, t, 250, 99);
  for (const Request& r : sigma) {
    const LeaseGraph g = sys.CurrentLeaseGraph();
    const MessageCounts before = sys.trace().totals();
    if (r.op == ReqType::kCombine) {
      const std::size_t expected = g.ProbeSetFor(r.node).size();
      sys.Combine(r.node);
      const MessageCounts after = sys.trace().totals();
      ASSERT_EQ(after.probes - before.probes,
                static_cast<std::int64_t>(expected))
          << "Lemma 3.3 probes at " << r;
      ASSERT_EQ(after.responses - before.responses,
                static_cast<std::int64_t>(expected))
          << "Lemma 3.3 responses at " << r;
      ASSERT_EQ(after.updates, before.updates) << "Lemma 3.3 at " << r;
      ASSERT_EQ(after.releases, before.releases) << "Lemma 3.3 at " << r;
    } else {
      const std::size_t expected = g.ReachableFrom(r.node).size();
      sys.Write(r.node, r.arg);
      const MessageCounts after = sys.trace().totals();
      ASSERT_EQ(after.updates - before.updates,
                static_cast<std::int64_t>(expected))
          << "Lemma 3.5 updates at " << r;
      ASSERT_EQ(after.probes, before.probes) << "Lemma 3.5 at " << r;
      ASSERT_EQ(after.responses, before.responses) << "Lemma 3.5 at " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesWorkloadsPolicies, LemmaSweep,
    ::testing::Values(SweepParam{"path", "mixed50", "RWW"},
                      SweepParam{"star", "mixed50", "RWW"},
                      SweepParam{"kary2", "mixed25", "RWW"},
                      SweepParam{"kary4", "mixed75", "RWW"},
                      SweepParam{"random", "bursty", "RWW"},
                      SweepParam{"caterpillar", "hotspot", "RWW"},
                      SweepParam{"broom", "roundrobin", "RWW"},
                      SweepParam{"pref", "writeheavy", "RWW"},
                      SweepParam{"path", "mixed50", "lease(1,1)"},
                      SweepParam{"star", "mixed50", "lease(1,3)"},
                      SweepParam{"kary2", "mixed50", "push-all"},
                      SweepParam{"random", "mixed50", "pull-all"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = std::string(info.param.shape) + "_" +
                         info.param.workload + "_" + info.param.policy;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace treeagg
