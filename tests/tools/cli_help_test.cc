// --help routing: help requested by the user goes to STDOUT and exits 0
// (so `treeagg_cli sweep --help | less` works); usage printed because of a
// bad invocation stays on STDERR with a non-zero exit.
#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace treeagg {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // whichever stream the command string captures
};

// Runs `treeagg_cli <args>` through the shell. Callers append stream
// redirections to `args` to capture exactly one of stdout/stderr.
RunResult RunCli(const std::string& args) {
  const std::string cmd = std::string(TREEAGG_CLI_PATH) + " " + args;
  RunResult result;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 1024> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

TEST(CliHelpTest, TopLevelHelpGoesToStdout) {
  const RunResult out = RunCli("--help 2>/dev/null");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.output.find("usage"), std::string::npos);

  const RunResult err = RunCli("--help 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 0);
  EXPECT_EQ(err.output, "") << "help leaked onto stderr";
}

TEST(CliHelpTest, SubcommandHelpGoesToStdout) {
  for (const char* sub : {"serve", "drive", "chaos", "sweep", "query"}) {
    const RunResult out = RunCli(std::string(sub) + " --help 2>/dev/null");
    EXPECT_EQ(out.exit_code, 0) << sub;
    EXPECT_NE(out.output.find("usage"), std::string::npos) << sub;
    EXPECT_NE(out.output.find(sub), std::string::npos) << sub;

    const RunResult err =
        RunCli(std::string(sub) + " --help 2>&1 1>/dev/null");
    EXPECT_EQ(err.exit_code, 0) << sub;
    EXPECT_EQ(err.output, "") << sub << " help leaked onto stderr";
  }
}

TEST(CliHelpTest, RunModeHelpGoesToStdout) {
  const RunResult out = RunCli("run --help 2>/dev/null");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.output.find("usage"), std::string::npos);
  const RunResult err = RunCli("run --help 2>&1 1>/dev/null");
  EXPECT_EQ(err.output, "");
}

TEST(CliHelpTest, BadInvocationUsageStaysOnStderr) {
  const RunResult err = RunCli("sweep --bogus 2>&1 1>/dev/null");
  EXPECT_NE(err.exit_code, 0);
  EXPECT_NE(err.output.find("usage"), std::string::npos);

  const RunResult out = RunCli("sweep --bogus 2>/dev/null");
  EXPECT_NE(out.exit_code, 0);
  EXPECT_EQ(out.output, "") << "error usage leaked onto stdout";
}

// An unknown chaos preset must fail fast (non-zero exit, nothing on
// stdout) with a stderr message that names the valid presets — not fall
// through to the generic top-level error handler.
TEST(CliHelpTest, UnknownChaosPresetListsValidPresetsOnStderr) {
  const RunResult err = RunCli("chaos --schedule nonesuch 2>&1 1>/dev/null");
  EXPECT_NE(err.exit_code, 0);
  EXPECT_NE(err.output.find("valid presets:"), std::string::npos);
  for (const char* preset :
       {"drops", "partition", "crash", "chaos", "pairkill", "gray", "asym",
        "geo2", "geo3"}) {
    EXPECT_NE(err.output.find(preset), std::string::npos)
        << preset << " missing from the preset list";
  }

  const RunResult out = RunCli("chaos --schedule nonesuch 2>/dev/null");
  EXPECT_NE(out.exit_code, 0);
  EXPECT_EQ(out.output, "") << "preset error leaked onto stdout";
}

// An unknown --policy mirrors the chaos-preset behavior: exit 2, nothing
// on stdout, and a stderr message that names every valid policy spec.
TEST(CliHelpTest, UnknownPolicyListsValidPoliciesOnStderr) {
  const RunResult err = RunCli("--policy nonesuch --n 4 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("bad --policy 'nonesuch'"), std::string::npos);
  EXPECT_NE(err.output.find("valid policies:"), std::string::npos);
  for (const char* policy :
       {"RWW", "lease(a,b)", "push-all", "pull-all", "timer(k)", "prob(p)",
        "ewma", "mlap", "mlap-d"}) {
    EXPECT_NE(err.output.find(policy), std::string::npos)
        << policy << " missing from the policy list";
  }

  const RunResult out = RunCli("--policy nonesuch --n 4 2>/dev/null");
  EXPECT_EQ(out.exit_code, 2);
  EXPECT_EQ(out.output, "") << "policy error leaked onto stdout";
}

// Subcommands route through the same validator: sweep and chaos reject an
// unknown policy with the same exit code and message shape.
TEST(CliHelpTest, SubcommandsRejectUnknownPolicyTheSameWay) {
  for (const char* invocation :
       {"sweep --policies nonesuch", "chaos --policy nonesuch --n 4"}) {
    const RunResult err =
        RunCli(std::string(invocation) + " 2>&1 1>/dev/null");
    EXPECT_EQ(err.exit_code, 2) << invocation;
    EXPECT_NE(err.output.find("valid policies:"), std::string::npos)
        << invocation;
  }
}

// A bad parameter inside a recognized mlap spec fails the same gate.
TEST(CliHelpTest, NonPositiveMlapDelayCostIsRejectedUpFront) {
  const RunResult err = RunCli("--policy 'mlap(0)' --n 4 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("bad --policy"), std::string::npos);
}

}  // namespace
}  // namespace treeagg
