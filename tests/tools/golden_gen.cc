#include <iostream>
#include "core/extra_policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"
using namespace treeagg;
int main() {
  struct C { const char* shape; NodeId n; const char* wl; std::size_t len; const char* pol; };
  C cases[] = {
    {"path", 16, "mixed50", 400, "RWW"},
    {"path", 16, "mixed50", 400, "pull-all"},
    {"path", 16, "mixed50", 400, "push-all"},
    {"star", 16, "bursty", 400, "RWW"},
    {"kary2", 31, "hotspot", 400, "RWW"},
    {"kary2", 31, "hotspot", 400, "lease(1,3)"},
    {"random", 24, "readheavy", 400, "RWW"},
    {"random", 24, "writeheavy", 400, "RWW"},
    {"pref", 24, "roundrobin", 400, "ewma"},
    {"broom", 20, "mixed25", 400, "timer(16)"},
  };
  for (auto& c : cases) {
    Tree t = MakeShape(c.shape, c.n, 1000);
    auto sigma = MakeWorkload(c.wl, t, c.len, 2000);
    AggregationSystem sys(t, PolicyBySpec(c.pol));
    sys.Execute(sigma);
    std::cout << "GoldenCase{\"" << c.shape << "\", " << c.n << ", \"" << c.wl
              << "\", " << c.len << ", \"" << c.pol << "\", "
              << sys.trace().TotalMessages() << "},\n";
  }
}
