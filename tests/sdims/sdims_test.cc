#include "sdims/sdims_system.h"

#include <gtest/gtest.h>

#include "consistency/strict_checker.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(SdimsTest, StrategyNames) {
  EXPECT_STREQ(ToString(SdimsStrategy::kUpdateNone), "update-none");
  EXPECT_STREQ(ToString(SdimsStrategy::kUpdateUp), "update-up");
  EXPECT_STREQ(ToString(SdimsStrategy::kUpdateAll), "update-all");
}

class SdimsStrategyTest
    : public ::testing::TestWithParam<SdimsStrategy> {};

TEST_P(SdimsStrategyTest, CombineReturnsGlobalAggregate) {
  Tree t = MakeKary(10, 3);
  SdimsSystem sys(t, GetParam());
  sys.Write(3, 5.0);
  sys.Write(9, 2.5);
  EXPECT_EQ(sys.Combine(0), 7.5);
  EXPECT_EQ(sys.Combine(7), 7.5);
  sys.Write(3, 1.0);  // overwrite
  EXPECT_EQ(sys.Combine(9), 3.5);
}

TEST_P(SdimsStrategyTest, StrictlyConsistentOnRandomWorkloads) {
  Tree t = MakeShape("random", 12, 5);
  SdimsSystem sys(t, GetParam());
  sys.Execute(MakeWorkload("mixed50", t, 300, 6));
  EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok)
      << ToString(GetParam());
}

TEST_P(SdimsStrategyTest, MinOperatorWorks) {
  Tree t = MakePath(5);
  SdimsSystem::Options options;
  options.op = &MinOp();
  SdimsSystem sys(t, GetParam(), options);
  sys.Write(1, 4.0);
  sys.Write(4, -2.0);
  EXPECT_EQ(sys.Combine(2), -2.0);
}

TEST_P(SdimsStrategyTest, NonZeroRootWorks) {
  Tree t = MakePath(5);
  SdimsSystem::Options options;
  options.root = 2;
  SdimsSystem sys(t, GetParam(), options);
  sys.Write(0, 1.0);
  sys.Write(4, 2.0);
  EXPECT_EQ(sys.Combine(3), 3.0);
  EXPECT_EQ(sys.Combine(2), 3.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SdimsStrategyTest,
                         ::testing::Values(SdimsStrategy::kUpdateNone,
                                           SdimsStrategy::kUpdateUp,
                                           SdimsStrategy::kUpdateAll),
                         [](const auto& info) {
                           std::string name = ToString(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Exact message-cost characterizations per strategy ------------------

TEST(SdimsCostTest, UpdateNoneWriteIsFreeReadPaysTreePlusPath) {
  Tree t = MakeKary(7, 2);  // depths: root 0; 1,2 -> 1; 3..6 -> 2
  SdimsSystem sys(t, SdimsStrategy::kUpdateNone);
  sys.Write(5, 1.0);
  EXPECT_EQ(sys.trace().TotalMessages(), 0);
  sys.Combine(0);  // reader at root: collect = 2 * 6 edges
  EXPECT_EQ(sys.trace().TotalMessages(), 12);
  sys.Combine(5);  // depth 2: + 2*2 routing + 12 collect
  EXPECT_EQ(sys.trace().TotalMessages(), 12 + 16);
}

TEST(SdimsCostTest, UpdateUpWritePaysDepthReadPaysPath) {
  Tree t = MakeKary(7, 2);
  SdimsSystem sys(t, SdimsStrategy::kUpdateUp);
  sys.Write(5, 1.0);  // depth 2
  EXPECT_EQ(sys.trace().TotalMessages(), 2);
  sys.Write(0, 2.0);  // root write: free
  EXPECT_EQ(sys.trace().TotalMessages(), 2);
  sys.Combine(0);  // root read: free
  EXPECT_EQ(sys.trace().TotalMessages(), 2);
  sys.Combine(6);  // depth 2: up + down
  EXPECT_EQ(sys.trace().TotalMessages(), 6);
}

TEST(SdimsCostTest, UpdateAllWritePaysDepthPlusBroadcastReadFree) {
  Tree t = MakeKary(7, 2);
  SdimsSystem sys(t, SdimsStrategy::kUpdateAll);
  sys.Write(5, 1.0);  // depth 2 up + 6 broadcast
  EXPECT_EQ(sys.trace().TotalMessages(), 8);
  for (NodeId u = 0; u < t.size(); ++u) sys.Combine(u);
  EXPECT_EQ(sys.trace().TotalMessages(), 8);  // reads all free
}

TEST(SdimsCostTest, UpdateNoneCachesGoStale) {
  Tree t = MakePath(3);
  SdimsSystem sys(t, SdimsStrategy::kUpdateNone);
  sys.Write(2, 9.0);
  // Cached subtree aggregate at the root is stale until a read collects.
  EXPECT_EQ(sys.SubtreeAggregate(0), 0.0);
  EXPECT_EQ(sys.Combine(0), 9.0);
  EXPECT_EQ(sys.SubtreeAggregate(0), 9.0);
}

}  // namespace
}  // namespace treeagg
