#include "offline/nice_bound.h"

#include <gtest/gtest.h>

#include "offline/edge_dp.h"
#include "offline/projection.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(NiceBoundTest, NoEpochsWithoutChurn) {
  EXPECT_EQ(EpochCount({}), 0);
  EXPECT_EQ(EpochCount(ParseEdgeSequence("RRRR")), 0);
  EXPECT_EQ(EpochCount(ParseEdgeSequence("WWWW")), 0);
}

TEST(NiceBoundTest, OneEpochPerWriteReadTransition) {
  EXPECT_EQ(EpochCount(ParseEdgeSequence("WR")), 1);
  EXPECT_EQ(EpochCount(ParseEdgeSequence("WWWR")), 1);
  EXPECT_EQ(EpochCount(ParseEdgeSequence("WRWR")), 2);
  EXPECT_EQ(EpochCount(ParseEdgeSequence("WRRRWR")), 2);
  EXPECT_EQ(EpochCount(ParseEdgeSequence("RWRWRW")), 2);  // trailing W open
}

TEST(NiceBoundTest, RwwWithinFivePerEpochPlusSetup) {
  // Lemma 4.3 / Theorem 2: RWW pays at most 5 messages per completed
  // epoch, plus at most 5 for the trailing incomplete epoch (e.g. "RWW"
  // alone costs 2 + 1 + 2 with zero completed epochs). Exhaustive check.
  for (int len = 1; len <= 14; ++len) {
    for (int mask = 0; mask < (1 << len); ++mask) {
      EdgeSequence seq;
      for (int i = 0; i < len; ++i) {
        seq.push_back((mask >> i) & 1 ? EdgeReq::kW : EdgeReq::kR);
      }
      const std::int64_t epochs = EpochCount(seq);
      const std::int64_t rww = RwwEdgeCost(seq);
      ASSERT_LE(rww, 5 * epochs + 5) << "len=" << len << " mask=" << mask;
    }
  }
}

TEST(NiceBoundTest, TreeLevelBoundSumsOverOrderedPairs) {
  Tree t = MakePath(3);
  RequestSequence sigma = {
      Request::Write(0, 1), Request::Combine(2),  // epoch for (0,1) and (1,2)
      Request::Write(2, 5), Request::Combine(0),  // epoch for (2,1) and (1,0)
  };
  EXPECT_EQ(NiceAlgorithmLowerBound(sigma, t), 4);
}

TEST(NiceBoundTest, ReadOnlyWorkloadHasZeroBound) {
  Tree t = MakeStar(6);
  RequestSequence sigma;
  for (int i = 0; i < 20; ++i) sigma.push_back(Request::Combine(i % 6));
  EXPECT_EQ(NiceAlgorithmLowerBound(sigma, t), 0);
}

}  // namespace
}  // namespace treeagg
