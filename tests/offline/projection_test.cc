#include "offline/projection.h"

#include <gtest/gtest.h>

#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(ProjectionTest, ParseAndRoundTrip) {
  const EdgeSequence seq = ParseEdgeSequence("RwWr");
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0], EdgeReq::kR);
  EXPECT_EQ(seq[1], EdgeReq::kW);
  EXPECT_EQ(seq[2], EdgeReq::kW);
  EXPECT_EQ(seq[3], EdgeReq::kR);
  EXPECT_THROW(ParseEdgeSequence("RX"), std::invalid_argument);
}

TEST(ProjectionTest, TwoNodeTree) {
  Tree t({0, 0});
  const RequestSequence sigma = {
      Request::Combine(1),  // in subtree(1, 0): R for (0, 1)
      Request::Write(0, 1),  // in subtree(0, 1): W for (0, 1)
      Request::Combine(0),  // R for (1, 0)
      Request::Write(1, 2),  // W for (1, 0)
  };
  EXPECT_EQ(ProjectSequence(sigma, t, 0, 1), ParseEdgeSequence("RW"));
  EXPECT_EQ(ProjectSequence(sigma, t, 1, 0), ParseEdgeSequence("RW"));
}

TEST(ProjectionTest, PathMiddleEdge) {
  Tree t = MakePath(4);  // 0-1-2-3; edge (1, 2)
  const RequestSequence sigma = {
      Request::Write(0, 1),   // u-side write
      Request::Write(1, 1),   // u-side write
      Request::Combine(3),    // v-side combine
      Request::Write(2, 1),   // v-side write: only in sigma(2, 1)
      Request::Combine(0),    // u-side combine: only in sigma(2, 1)
  };
  EXPECT_EQ(ProjectSequence(sigma, t, 1, 2), ParseEdgeSequence("WWR"));
  EXPECT_EQ(ProjectSequence(sigma, t, 2, 1), ParseEdgeSequence("WR"));
}

TEST(ProjectionTest, EveryRequestAppearsInExactlyDPlusProjections) {
  // A write at node x appears in sigma(u, v) iff x is on u's side: over all
  // 2(n-1) ordered pairs, that's exactly n-1 appearances (one per
  // undirected edge). Same for combines.
  Rng rng(5);
  Tree t = MakeRandomTree(12, rng);
  const RequestSequence sigma = {Request::Write(4, 1), Request::Combine(7)};
  std::size_t write_hits = 0, combine_hits = 0;
  for (const Edge& e : t.OrderedEdges()) {
    const EdgeSequence p = ProjectSequence(sigma, t, e.u, e.v);
    for (const EdgeReq r : p) {
      (r == EdgeReq::kW ? write_hits : combine_hits) += 1;
    }
  }
  EXPECT_EQ(write_hits, static_cast<std::size_t>(t.size() - 1));
  EXPECT_EQ(combine_hits, static_cast<std::size_t>(t.size() - 1));
}

TEST(ProjectionTest, PreservesRelativeOrder) {
  Tree t = MakePath(2);
  RequestSequence sigma;
  for (int i = 0; i < 6; ++i) {
    sigma.push_back(i % 2 == 0 ? Request::Combine(1) : Request::Write(0, i));
  }
  EXPECT_EQ(ProjectSequence(sigma, t, 0, 1), ParseEdgeSequence("RWRWRW"));
}

}  // namespace
}  // namespace treeagg
