#include "offline/edge_dp.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "offline/projection.h"

namespace treeagg {
namespace {

TEST(EdgeDpTest, EmptySequenceCostsNothing) {
  EXPECT_EQ(OptimalEdgeCost({}), 0);
  EXPECT_EQ(RwwEdgeCost({}), 0);
}

TEST(EdgeDpTest, SingleRead) {
  EXPECT_EQ(OptimalEdgeCost(ParseEdgeSequence("R")), 2);
  EXPECT_EQ(RwwEdgeCost(ParseEdgeSequence("R")), 2);
}

TEST(EdgeDpTest, AllWritesAreFree) {
  EXPECT_EQ(OptimalEdgeCost(ParseEdgeSequence("WWWWWW")), 0);
  EXPECT_EQ(RwwEdgeCost(ParseEdgeSequence("WWWWWW")), 0);
}

TEST(EdgeDpTest, RepeatedReadsCostOnceWithLease) {
  EXPECT_EQ(OptimalEdgeCost(ParseEdgeSequence("RRRRR")), 2);
  EXPECT_EQ(RwwEdgeCost(ParseEdgeSequence("RRRRR")), 2);
}

TEST(EdgeDpTest, ReadWriteReadAlternation) {
  // OPT: set lease (2), then each W costs 1, each R free: RWRWR = 2+1+1 = 4.
  // Alternative never-lease: 2+0+2+0+2 = 6.
  EXPECT_EQ(OptimalEdgeCost(ParseEdgeSequence("RWRWR")), 4);
  EXPECT_EQ(RwwEdgeCost(ParseEdgeSequence("RWRWR")), 4);
}

TEST(EdgeDpTest, RwwPaysFivePerAdversarialPeriod) {
  // R W W repeated: RWW pays 2 + 1 + 2 per period; OPT pays 2.
  const EdgeSequence period = ParseEdgeSequence("RWW");
  EdgeSequence seq;
  for (int i = 0; i < 10; ++i) {
    seq.insert(seq.end(), period.begin(), period.end());
  }
  EXPECT_EQ(RwwEdgeCost(seq), 50);
  EXPECT_EQ(OptimalEdgeCost(seq), 20);
}

TEST(EdgeDpTest, ReadThenManyWritesCostsOnlyTheRead) {
  // OPT answers the read (2) without taking the lease; writes are free.
  EXPECT_EQ(OptimalEdgeCost(ParseEdgeSequence("RWWWWWWWW")), 2);
}

TEST(EdgeDpTest, OptUsesVoluntaryReleaseWhenCheaper) {
  // RWRWR then a write burst: holding the lease through the alternation
  // (2 + 1 + 1 = 4 through the last R) and then releasing voluntarily (1)
  // beats both never-leasing (2 * 3 = 6) and holding through the burst
  // (4 + 6 = 10).
  EXPECT_EQ(OptimalEdgeCost(ParseEdgeSequence("RWRWRWWWWWW")), 5);
}

TEST(EdgeDpTest, DpMatchesBruteForceExhaustively) {
  // All sequences up to length 10.
  for (int len = 0; len <= 10; ++len) {
    for (int mask = 0; mask < (1 << len); ++mask) {
      EdgeSequence seq;
      for (int i = 0; i < len; ++i) {
        seq.push_back((mask >> i) & 1 ? EdgeReq::kW : EdgeReq::kR);
      }
      ASSERT_EQ(OptimalEdgeCost(seq), OptimalEdgeCostBruteForce(seq))
          << "len=" << len << " mask=" << mask;
    }
  }
}

TEST(EdgeDpTest, RwwNeverBeatsOptAndStaysWithinFactor) {
  // Per-transition potential argument: RWW <= (5/2) OPT on every sequence
  // (no additive slack; Phi(initial) = 0). Exhaustive up to length 12.
  for (int len = 1; len <= 12; ++len) {
    for (int mask = 0; mask < (1 << len); ++mask) {
      EdgeSequence seq;
      for (int i = 0; i < len; ++i) {
        seq.push_back((mask >> i) & 1 ? EdgeReq::kW : EdgeReq::kR);
      }
      const std::int64_t opt = OptimalEdgeCost(seq);
      const std::int64_t rww = RwwEdgeCost(seq);
      ASSERT_GE(rww, opt);
      ASSERT_LE(2 * rww, 5 * opt) << "len=" << len << " mask=" << mask;
    }
  }
}

TEST(EdgeDpTest, AbMatchesRwwAt12) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    EdgeSequence seq;
    const int len = static_cast<int>(rng.NextInt(0, 40));
    for (int i = 0; i < len; ++i) {
      seq.push_back(rng.NextBool(0.5) ? EdgeReq::kW : EdgeReq::kR);
    }
    ASSERT_EQ(AbEdgeCost(seq, 1, 2), RwwEdgeCost(seq));
  }
}

TEST(EdgeDpTest, AbEdgeCostExamples) {
  // (2, 1): two reads to set, first write breaks.
  EXPECT_EQ(AbEdgeCost(ParseEdgeSequence("RR"), 2, 1), 4);
  EXPECT_EQ(AbEdgeCost(ParseEdgeSequence("RRR"), 2, 1), 4);  // 3rd read free
  EXPECT_EQ(AbEdgeCost(ParseEdgeSequence("RRW"), 2, 1), 6);  // update+release
  // (1, 1): lease set on first read, broken by next write.
  EXPECT_EQ(AbEdgeCost(ParseEdgeSequence("RWRW"), 1, 1), 8);
}

TEST(EdgeDpTest, OptimalCostIsMonotoneUnderPrefixExtension) {
  // Appending a request never reduces the optimum (more work to serve).
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    EdgeSequence seq;
    std::int64_t prev = 0;
    for (int i = 0; i < 30; ++i) {
      seq.push_back(rng.NextBool(0.5) ? EdgeReq::kW : EdgeReq::kR);
      const std::int64_t cost = OptimalEdgeCost(seq);
      ASSERT_GE(cost, prev) << "trial " << trial << " step " << i;
      prev = cost;
    }
  }
}

TEST(EdgeDpTest, OptimalCostIsSubadditiveUnderConcatenation) {
  // OPT(A.B) <= OPT(A) + OPT(B) + 1: the concatenated optimum can always
  // run A's plan, voluntarily release (at most 1), then run B's plan.
  Rng rng(32);
  for (int trial = 0; trial < 100; ++trial) {
    EdgeSequence a, b;
    for (int i = 0; i < 15; ++i) {
      a.push_back(rng.NextBool(0.5) ? EdgeReq::kW : EdgeReq::kR);
      b.push_back(rng.NextBool(0.5) ? EdgeReq::kW : EdgeReq::kR);
    }
    EdgeSequence ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    ASSERT_LE(OptimalEdgeCost(ab),
              OptimalEdgeCost(a) + OptimalEdgeCost(b) + 1);
    // And concatenation can only help versus serving both independently
    // from scratch... is false in general; but it can never beat the
    // pieces by more than the one free lease it may inherit (worth <= 2).
    ASSERT_GE(OptimalEdgeCost(ab) + 2,
              OptimalEdgeCost(a) + OptimalEdgeCost(b));
  }
}

TEST(EdgeDpTest, LowerBoundAccumulatesOverEdges) {
  // Sanity on a 2-node tree via the tree-level wrapper.
  Tree t({0, 0});
  RequestSequence sigma;
  for (int i = 0; i < 5; ++i) {
    sigma.push_back(Request::Combine(1));
    sigma.push_back(Request::Write(0, i));
    sigma.push_back(Request::Write(0, i));
  }
  // Direction (0, 1): RWW-pattern sequence; direction (1, 0): combines at 1
  // are reads for (1,0)? No: writes at 0 project to (0,1) only, combines at
  // 1 project to (0,1) only. The reverse direction sees the complementary
  // projection: writes at 0 are in subtree(0,1) so not in sigma(1,0);
  // combines at 1 are in subtree(1,0) so not in sigma(1,0) either.
  EXPECT_EQ(OptimalLeaseBasedLowerBound(sigma, t),
            OptimalEdgeCost(ProjectSequence(sigma, t, 0, 1)));
}

}  // namespace
}  // namespace treeagg
