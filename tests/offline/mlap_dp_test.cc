// Offline MLAP pricing: the per-node batching DP against the exhaustive
// partition search, and the online plan priced against the offline
// optimum (delay-variant online cost can never beat the per-node optimum
// it plays against).
#include "offline/mlap_dp.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(OfflineBatchOptTest, EmptyAndSingletonBaseCases) {
  std::int64_t services = -1;
  EXPECT_EQ(OfflineBatchOpt({}, 10.0, 1.0, &services), 0.0);
  EXPECT_EQ(services, 0);
  // One request: one batch served at its arrival, no delay.
  EXPECT_EQ(OfflineBatchOpt({5}, 10.0, 1.0, &services), 10.0);
  EXPECT_EQ(services, 1);
}

TEST(OfflineBatchOptTest, HandComputedInstance) {
  // Arrivals {0, 1, 9}, C = 4, delay cost 1. One batch at 9 costs
  // 4 + (9 + 8 + 0) = 21; {0,1} at 1 plus {9} costs 4 + 1 + 4 = 9;
  // three singleton batches cost 12. Optimum is 9 with two services.
  std::int64_t services = 0;
  EXPECT_EQ(OfflineBatchOpt({0, 1, 9}, 4.0, 1.0, &services), 9.0);
  EXPECT_EQ(services, 2);
  // With a huge service cost the single batch wins: 100 + 17.
  EXPECT_EQ(OfflineBatchOpt({0, 1, 9}, 100.0, 1.0, &services), 117.0);
  EXPECT_EQ(services, 1);
}

TEST(OfflineBatchOptTest, RejectsDecreasingArrivals) {
  EXPECT_THROW(OfflineBatchOpt({3, 1}, 1.0, 1.0), std::invalid_argument);
}

TEST(OfflineBatchOptTest, BruteForceRefusesLargeInstances) {
  const std::vector<std::int64_t> big(21, 0);
  EXPECT_THROW(OfflineBatchOptBruteForce(big, 1.0, 1.0),
               std::invalid_argument);
}

TEST(OfflineBatchOptTest, DpMatchesBruteForceOnRandomInstances) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t k = 1 + rng.NextBounded(10);
    std::vector<std::int64_t> arrivals;
    std::int64_t t = 0;
    for (std::size_t i = 0; i < k; ++i) {
      t += static_cast<std::int64_t>(rng.NextBounded(8));
      arrivals.push_back(t);
    }
    const double service = 1.0 + static_cast<double>(rng.NextBounded(20));
    const double delay =
        0.25 * (1.0 + static_cast<double>(rng.NextBounded(8)));
    EXPECT_NEAR(OfflineBatchOpt(arrivals, service, delay),
                OfflineBatchOptBruteForce(arrivals, service, delay), 1e-9)
        << "trial " << trial;
  }
}

TEST(OfflineMlapOptimumTest, SumsPerNodeOptimaAndIgnoresWrites) {
  const Tree t = MakePath(3);  // C = {2, 4, 6}
  // Node 1: combines at ticks 0 and 1 (one batch: 4 + 1 = 5, vs 8 for
  // two). Node 2: one combine (cost 6). The write adds nothing.
  const RequestSequence sigma = {Request::Combine(1), Request::Combine(1),
                                 Request::Write(2, 1.0),
                                 Request::Combine(2)};
  const std::vector<std::int64_t> ticks = {0, 1, 2, 3};
  const MlapOfflineResult r =
      OfflineMlapOptimum(t, sigma, ParseMlapSpec("mlap"), &ticks);
  EXPECT_EQ(r.cost, 5.0 + 6.0);
  EXPECT_EQ(r.services, 2);
}

TEST(OfflineMlapOptimumTest, ValidatesTickCount) {
  const Tree t = MakePath(2);
  const RequestSequence sigma = {Request::Combine(1)};
  const std::vector<std::int64_t> wrong = {0, 1};
  EXPECT_THROW(OfflineMlapOptimum(t, sigma, ParseMlapSpec("mlap"), &wrong),
               std::invalid_argument);
}

// The delay-variant online automaton plays the same per-node objective the
// DP optimizes, so online >= offline on every instance: ratio >= 1.
TEST(MlapPricingTest, DelayVariantRatioIsAtLeastOne) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Tree t = MakeKary(15, 2);
    const TimedWorkload timed = MakeTimedWorkload("onoff", t, 300, seed);
    const MlapParams params = ParseMlapSpec("mlap");
    const MlapPlan plan =
        BuildMlapPlan(t, timed.sigma, params, &timed.ticks);
    const MlapPricing pricing =
        PriceMlapPlan(t, timed.sigma, params, plan, &timed.ticks);
    EXPECT_NEAR(pricing.online_cost, plan.modeled_total_cost, 1e-9);
    EXPECT_GT(pricing.offline_opt, 0.0) << seed;
    EXPECT_GE(pricing.ratio, 1.0 - 1e-9) << seed;
    EXPECT_GT(pricing.offline_services, 0) << seed;
  }
}

TEST(MlapPricingTest, EmptyInstancePricesAtRatioOne) {
  const Tree t = MakePath(2);
  const RequestSequence sigma = {Request::Write(1, 1.0)};
  const MlapParams params = ParseMlapSpec("mlap");
  const MlapPlan plan = BuildMlapPlan(t, sigma, params);
  const MlapPricing pricing = PriceMlapPlan(t, sigma, params, plan);
  EXPECT_EQ(pricing.offline_opt, 0.0);
  EXPECT_EQ(pricing.ratio, 1.0);
}

}  // namespace
}  // namespace treeagg
