#include "consistency/causal_checker.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "sim/concurrent.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

// Sequential executions are causally consistent a fortiori; the checker
// must accept any sequential lease-based run.
TEST(CausalCheckerTest, AcceptsSequentialExecution) {
  Tree t = MakeKary(7, 2);
  AggregationSystem::Options options;
  options.ghost_logging = true;
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Execute(MakeWorkload("mixed50", t, 120, 17));
  const CheckResult r = CheckCausalConsistency(sys.history(),
                                               sys.GhostStates(), SumOp(),
                                               t.size());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(CausalCheckerTest, AcceptsConcurrentExecution) {
  Tree t = MakePath(5);
  ConcurrentSimulator::Options options;
  options.min_delay = 1;
  options.max_delay = 7;
  options.seed = 3;
  ConcurrentSimulator sim(t, RwwFactory(), options);
  Rng rng(9);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 150, 21);
  sim.Run(ScheduleWithGaps(sigma, 3, rng));
  ASSERT_TRUE(sim.history().AllCompleted());
  const CheckResult r = CheckCausalConsistency(sim.history(),
                                               sim.GhostStates(), SumOp(),
                                               t.size());
  EXPECT_TRUE(r.ok) << r.message;
}

// Failure injection: corrupt a combine's return value; compatibility must
// catch it.
TEST(CausalCheckerTest, DetectsIncompatibleCombineValue) {
  Tree t = MakePath(3);
  AggregationSystem::Options options;
  options.ghost_logging = true;
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Write(0, 5.0);
  sys.Combine(2);

  History h;  // rebuild with a corrupted retval
  for (const RequestRecord& r : sys.history().records()) {
    if (r.op == ReqType::kWrite) {
      const ReqId id = h.BeginWrite(r.node, r.arg, r.initiated_at);
      h.CompleteWrite(id, r.completed_at);
    } else {
      const ReqId id = h.BeginCombine(r.node, r.initiated_at);
      h.CompleteCombine(id, r.retval + 1.0, r.gather, r.log_prefix,
                        r.completed_at);
    }
  }
  const CheckResult r = CheckCausalConsistency(h, sys.GhostStates(), SumOp(),
                                               t.size());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("incompatible"), std::string::npos);
}

// Failure injection: a gather claiming to have read a write that its node's
// log prefix cannot contain violates the serialization check.
TEST(CausalCheckerTest, DetectsFutureRead) {
  History h;
  std::int64_t t = 0;
  const ReqId w = h.BeginWrite(0, 3.0, t++);
  h.CompleteWrite(w, t++);
  const ReqId c = h.BeginCombine(1, t++);
  // Combine claims to return the write but with log_prefix 0 (placing the
  // gather before any write in node 1's log).
  h.CompleteCombine(c, 3.0, {{0, w}}, 0, t++);
  std::vector<NodeGhostState> ghosts(2);
  ghosts[0].node = 0;
  ghosts[0].write_log = {{w, 0}};
  ghosts[1].node = 1;
  ghosts[1].write_log = {{w, 0}};
  const CheckResult r = CheckCausalConsistency(h, ghosts, SumOp(), 2);
  EXPECT_FALSE(r.ok);
}

// Failure injection: two nodes observing two writes of one writer in
// opposite orders cannot both serialize program order.
TEST(CausalCheckerTest, DetectsProgramOrderInversion) {
  History h;
  std::int64_t t = 0;
  const ReqId w1 = h.BeginWrite(0, 1.0, t++);
  h.CompleteWrite(w1, t++);
  const ReqId w2 = h.BeginWrite(0, 2.0, t++);
  h.CompleteWrite(w2, t++);
  std::vector<NodeGhostState> ghosts(2);
  ghosts[0].node = 0;
  ghosts[0].write_log = {{w1, 0}, {w2, 0}};
  ghosts[1].node = 1;
  ghosts[1].write_log = {{w2, 0}, {w1, 0}};  // inverted arrival order
  const CheckResult r = CheckCausalConsistency(h, ghosts, SumOp(), 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("causal order"), std::string::npos);
}

TEST(CausalCheckerTest, RejectsIncompleteHistory) {
  History h;
  h.BeginCombine(0, 0);
  const CheckResult r = CheckCausalConsistency(h, {NodeGhostState{0, {}}},
                                               SumOp(), 1);
  EXPECT_FALSE(r.ok);
}

// Property sweep: every lease policy is causally consistent under
// concurrency (Theorem 4 is policy-independent).
class CausalPolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(CausalPolicySweep, AllPoliciesCausallyConsistent) {
  const auto policies = StandardPolicies();
  const NamedPolicy& policy =
      policies[static_cast<std::size_t>(GetParam())];
  Tree t = MakeKary(9, 2);
  ConcurrentSimulator::Options options;
  options.min_delay = 1;
  options.max_delay = 9;
  options.seed = 100 + static_cast<std::uint64_t>(GetParam());
  ConcurrentSimulator sim(t, policy.factory, options);
  Rng rng(options.seed);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 200, options.seed);
  sim.Run(ScheduleWithGaps(sigma, 2, rng));
  ASSERT_TRUE(sim.history().AllCompleted()) << policy.name;
  const CheckResult r = CheckCausalConsistency(sim.history(),
                                               sim.GhostStates(), SumOp(),
                                               t.size());
  EXPECT_TRUE(r.ok) << policy.name << ": " << r.message;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CausalPolicySweep,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace treeagg
