// Checker behavior on histories with a crash gap: a node that crashes and
// restarts leaves a window with no operations of its own, while operations
// at other nodes keep completing (or span the window entirely). The
// consistency checkers must not report false violations for operations
// that ran clear of the window — and restricting a history to the
// outside-window operations (fault/convergence.h) must turn a true
// in-window violation into a clean verdict without masking anything else.
#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "consistency/strict_checker.h"
#include "core/aggregate_op.h"
#include "core/policies.h"
#include "fault/convergence.h"
#include "fault/schedule.h"
#include "sim/chaos.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

using Window = std::pair<std::int64_t, std::int64_t>;

// A sequential history around a crash window [100, 200) on node 2:
// operations before, none at node 2 during, operations after. The combine
// issued DURING the window returns a stale aggregate (it cannot see the
// crashed node's last write) — a true violation the strict checker must
// flag on the full history but NOT on the outside-window restriction.
History SequentialCrashGapHistory(ReqId* in_window_combine) {
  History h;
  ReqId w0 = h.BeginWrite(0, 10, 1);
  h.CompleteWrite(w0, 2);
  ReqId w2 = h.BeginWrite(2, 7, 3);
  h.CompleteWrite(w2, 4);
  ReqId c0 = h.BeginCombine(1, 5);
  h.CompleteCombine(c0, 17, {{0, w0}, {2, w2}}, 0, 6);  // correct: 10 + 7

  // Crash window: node 2 is down. A combine elsewhere misses node 2's
  // value entirely (stale aggregate 10 instead of 17).
  ReqId c_in = h.BeginCombine(0, 120);
  h.CompleteCombine(c_in, 10, {{0, w0}}, 0, 130);
  *in_window_combine = c_in;

  // After restart, node 2's durable state is back.
  ReqId w0b = h.BeginWrite(0, 20, 210);
  h.CompleteWrite(w0b, 211);
  ReqId c1 = h.BeginCombine(2, 220);
  h.CompleteCombine(c1, 27, {{0, w0b}, {2, w2}}, 0, 221);  // correct: 20 + 7
  return h;
}

TEST(CrashGapTest, StrictCheckerFlagsInWindowStaleness) {
  ReqId c_in = kNoRequest;
  const History h = SequentialCrashGapHistory(&c_in);
  const CheckResult full = CheckStrictConsistency(h, SumOp(), 3);
  EXPECT_FALSE(full.ok);
}

TEST(CrashGapTest, StrictCheckerPassesOutsideTheWindow) {
  ReqId c_in = kNoRequest;
  const History h = SequentialCrashGapHistory(&c_in);
  std::size_t dropped = 0;
  const History outside =
      FilterHistoryOutsideWindows(h, {Window{100, 200}}, &dropped);
  EXPECT_EQ(dropped, 1u);  // exactly the in-window combine
  const CheckResult r = CheckStrictConsistency(outside, SumOp(), 3);
  EXPECT_TRUE(r.ok) << r.message
                    << " (operations spanning the crash window must not "
                       "produce false violations)";
}

// The causal checker on a REAL crash-restart execution: a ChaosSimulator
// run with a crash window completes every operation (durable-state
// recovery), and neither the full history nor the outside-window
// restriction may report a violation.
TEST(CrashGapTest, CausalCheckerHasNoFalseViolationsAcrossCrash) {
  Tree t = MakeKary(15, 2);
  FaultSchedule faults;
  faults.WithSeed(19).Crash(3, 50, 400);
  ChaosSimulator::Options options;
  options.seed = 23;
  options.min_delay = 1;
  options.max_delay = 5;
  ChaosSimulator sim(t, RwwFactory(), faults, options);
  Rng gaps(24);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 500, 25);
  sim.RunWithFinalProbes(ScheduleWithGaps(sigma, 2, gaps));
  ASSERT_TRUE(sim.history().AllCompleted());

  const std::vector<NodeGhostState> ghosts = sim.GhostStates();
  const CheckResult full =
      CheckCausalConsistency(sim.history(), ghosts, sim.op(), t.size());
  EXPECT_TRUE(full.ok) << full.message;

  std::size_t dropped = 0;
  std::vector<NodeGhostState> remapped = ghosts;
  const History outside = FilterHistoryOutsideWindows(
      sim.history(), faults.Windows(), &dropped, &remapped);
  const CheckResult restricted =
      CheckCausalConsistency(outside, remapped, sim.op(), t.size());
  EXPECT_TRUE(restricted.ok) << restricted.message;
  // The window is long enough that the restriction is not vacuous.
  EXPECT_GT(dropped, 0u);
}

}  // namespace
}  // namespace treeagg
