#include "consistency/strict_checker.h"

#include <gtest/gtest.h>

namespace treeagg {
namespace {

History MakeSimpleHistory() {
  History h;
  std::int64_t t = 0;
  const ReqId w0 = h.BeginWrite(0, 5.0, t++);
  h.CompleteWrite(w0, t++);
  const ReqId c0 = h.BeginCombine(1, t++);
  h.CompleteCombine(c0, 5.0, {}, 0, t++);
  const ReqId w1 = h.BeginWrite(2, 2.0, t++);
  h.CompleteWrite(w1, t++);
  const ReqId c1 = h.BeginCombine(0, t++);
  h.CompleteCombine(c1, 7.0, {}, 0, t++);
  return h;
}

TEST(StrictCheckerTest, AcceptsCorrectHistory) {
  const History h = MakeSimpleHistory();
  EXPECT_TRUE(CheckStrictConsistency(h, SumOp(), 3).ok);
}

TEST(StrictCheckerTest, RejectsWrongCombineValue) {
  History h;
  std::int64_t t = 0;
  const ReqId w0 = h.BeginWrite(0, 5.0, t++);
  h.CompleteWrite(w0, t++);
  const ReqId c0 = h.BeginCombine(1, t++);
  h.CompleteCombine(c0, 4.0, {}, 0, t++);  // should be 5.0
  const CheckResult r = CheckStrictConsistency(h, SumOp(), 3);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("combine"), std::string::npos);
}

TEST(StrictCheckerTest, RejectsStaleRead) {
  History h;
  std::int64_t t = 0;
  ReqId w = h.BeginWrite(0, 1.0, t++);
  h.CompleteWrite(w, t++);
  w = h.BeginWrite(0, 9.0, t++);  // overwrite
  h.CompleteWrite(w, t++);
  const ReqId c = h.BeginCombine(1, t++);
  h.CompleteCombine(c, 1.0, {}, 0, t++);  // stale: pre-overwrite value
  EXPECT_FALSE(CheckStrictConsistency(h, SumOp(), 2).ok);
}

TEST(StrictCheckerTest, RejectsIncompleteHistory) {
  History h;
  h.BeginCombine(0, 0);
  EXPECT_FALSE(CheckStrictConsistency(h, SumOp(), 1).ok);
}

TEST(StrictCheckerTest, MinOperatorWithNoWritesExpectsIdentity) {
  History h;
  const ReqId c = h.BeginCombine(0, 0);
  h.CompleteCombine(c, MinOp().identity, {}, 0, 1);
  EXPECT_TRUE(CheckStrictConsistency(h, MinOp(), 2).ok);
}

TEST(StrictCheckerTest, MinOperatorRejectsWrongIdentityHandling) {
  History h;
  const ReqId c = h.BeginCombine(0, 0);
  h.CompleteCombine(c, 0.0, {}, 0, 1);  // 0 != +inf
  EXPECT_FALSE(CheckStrictConsistency(h, MinOp(), 2).ok);
}

TEST(StrictCheckerTest, ToleratesTinyFloatingPointError) {
  History h;
  std::int64_t t = 0;
  const ReqId w = h.BeginWrite(0, 0.1, t++);
  h.CompleteWrite(w, t++);
  const ReqId c = h.BeginCombine(0, t++);
  h.CompleteCombine(c, 0.1 + 1e-13, {}, 0, t++);
  EXPECT_TRUE(CheckStrictConsistency(h, SumOp(), 1).ok);
}

TEST(HistoryTest, NodeIndexCountsPerNodeCompletions) {
  const History h = MakeSimpleHistory();
  EXPECT_EQ(h.record(0).node_index, 0);  // first at node 0
  EXPECT_EQ(h.record(3).node_index, 1);  // second at node 0
  EXPECT_EQ(h.record(1).node_index, 0);  // first at node 1
  EXPECT_TRUE(h.AllCompleted());
}

TEST(HistoryTest, ClearResets) {
  History h = MakeSimpleHistory();
  h.Clear();
  EXPECT_EQ(h.size(), 0u);
  const ReqId id = h.BeginWrite(5, 1.0, 0);
  EXPECT_EQ(id, 0);
}

}  // namespace
}  // namespace treeagg
