// Placement-optimizer unit tests: determinism, capacity handling, the
// degenerate shapes (single daemon, more daemons than nodes), and the
// treeagg-traffic-v1 codec. Everything here is pure computation — no
// sockets, so the suite shares the parallel test lane.
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"
#include "net/cluster.h"
#include "place/placement.h"
#include "place/traffic.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(static_cast<std::size_t>(tree.size()));
  for (NodeId u = 1; u < tree.size(); ++u) {
    parent[static_cast<std::size_t>(u)] = tree.RootedParent(u);
  }
  return parent;
}

// Weights that make one subtree hot: every edge on the path from `hot` to
// the root carries `weight`, everything else 1.
std::vector<std::uint64_t> HotPathWeights(const std::vector<NodeId>& parent,
                                          NodeId hot, std::uint64_t weight) {
  std::vector<std::uint64_t> w(parent.size(), 1);
  w[0] = 0;
  for (NodeId u = hot; u != 0; u = parent[static_cast<std::size_t>(u)]) {
    w[static_cast<std::size_t>(u)] = weight;
  }
  return w;
}

std::vector<int> LoadPerDaemon(const std::vector<int>& node_daemon,
                               int daemons) {
  std::vector<int> load(static_cast<std::size_t>(daemons), 0);
  for (const int d : node_daemon) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, daemons);
    ++load[static_cast<std::size_t>(d)];
  }
  return load;
}

TEST(CrossWeightTest, CountsOnlyCrossDaemonEdges) {
  // 0 has children 1 and 2; 3 hangs under 1.
  const std::vector<NodeId> parent = {0, 0, 0, 1};
  const std::vector<std::uint64_t> weight = {0, 10, 20, 30};
  // 0,1 together; 2,3 elsewhere: edges (0,2) and (1,3) cross.
  const std::vector<int> assignment = {0, 0, 1, 1};
  EXPECT_EQ(place::CrossWeight(parent, weight, assignment), 50u);
  EXPECT_EQ(place::CrossEdges(parent, assignment), 2);
  // Everything on one daemon: nothing crosses.
  const std::vector<int> together = {0, 0, 0, 0};
  EXPECT_EQ(place::CrossWeight(parent, weight, together), 0u);
  EXPECT_EQ(place::CrossEdges(parent, together), 0);
}

TEST(OptimizePlacementTest, DeterministicAcrossCalls) {
  const Tree tree = MakeShape("random", 200, /*seed=*/17);
  const std::vector<NodeId> parent = ParentVector(tree);
  const std::vector<std::uint64_t> weight = HotPathWeights(parent, 150, 900);
  const place::PlacementPlan a = place::OptimizePlacement(parent, weight, 4);
  const place::PlacementPlan b = place::OptimizePlacement(parent, weight, 4);
  EXPECT_EQ(a.node_daemon, b.node_daemon);
  EXPECT_EQ(a.cross_weight, b.cross_weight);
  EXPECT_EQ(a.cross_edges, b.cross_edges);
}

TEST(OptimizePlacementTest, ReportedScoreMatchesRecount) {
  const Tree tree = MakeShape("kary2", 127, /*seed=*/3);
  const std::vector<NodeId> parent = ParentVector(tree);
  const std::vector<std::uint64_t> weight = HotPathWeights(parent, 100, 500);
  const place::PlacementPlan plan =
      place::OptimizePlacement(parent, weight, 3);
  EXPECT_EQ(plan.cross_weight,
            place::CrossWeight(parent, weight, plan.node_daemon));
  EXPECT_EQ(plan.cross_edges, place::CrossEdges(parent, plan.node_daemon));
}

TEST(OptimizePlacementTest, SingleDaemonHostsEverythingFree) {
  const Tree tree = MakeShape("kary2", 31, /*seed=*/1);
  const std::vector<NodeId> parent = ParentVector(tree);
  const std::vector<std::uint64_t> weight(parent.size(), 7);
  const place::PlacementPlan plan =
      place::OptimizePlacement(parent, weight, 1);
  for (const int d : plan.node_daemon) EXPECT_EQ(d, 0);
  EXPECT_EQ(plan.cross_weight, 0u);
  EXPECT_EQ(plan.cross_edges, 0);
}

TEST(OptimizePlacementTest, MoreDaemonsThanNodesLeavesDaemonsEmpty) {
  // 3 nodes on 8 daemons. The default capacity (ceil(n/d) plus slack = 2)
  // still balances, so some edge must cross; with capacity >= n the whole
  // tree fits on one daemon for free.
  const std::vector<NodeId> parent = {0, 0, 1};
  const std::vector<std::uint64_t> weight = {0, 5, 5};
  const place::PlacementPlan balanced =
      place::OptimizePlacement(parent, weight, 8);
  ASSERT_EQ(balanced.node_daemon.size(), 3u);
  LoadPerDaemon(balanced.node_daemon, 8);  // range check
  EXPECT_EQ(balanced.cross_weight, 5u);
  const place::PlacementPlan roomy =
      place::OptimizePlacement(parent, weight, 8, /*capacity=*/3);
  EXPECT_EQ(roomy.cross_weight, 0u);
}

TEST(OptimizePlacementTest, RespectsExplicitCapacity) {
  const Tree tree = MakeShape("random", 60, /*seed=*/5);
  const std::vector<NodeId> parent = ParentVector(tree);
  const std::vector<std::uint64_t> weight = HotPathWeights(parent, 40, 100);
  const place::PlacementPlan plan =
      place::OptimizePlacement(parent, weight, 4, /*capacity=*/20);
  for (const int load : LoadPerDaemon(plan.node_daemon, 4)) {
    EXPECT_LE(load, 20);
  }
}

TEST(OptimizePlacementTest, InfeasibleCapacityThrows) {
  const std::vector<NodeId> parent = {0, 0, 1, 1, 2};
  const std::vector<std::uint64_t> weight(5, 1);
  // 2 daemons x capacity 2 < 5 nodes.
  EXPECT_THROW(place::OptimizePlacement(parent, weight, 2, /*capacity=*/2),
               std::invalid_argument);
}

TEST(OptimizePlacementTest, RejectsMalformedInputs) {
  const std::vector<NodeId> parent = {0, 0, 1};
  const std::vector<std::uint64_t> weight = {0, 1, 1};
  EXPECT_THROW(place::OptimizePlacement({}, {}, 2), std::invalid_argument);
  EXPECT_THROW(place::OptimizePlacement(parent, weight, 0),
               std::invalid_argument);
  EXPECT_THROW(place::OptimizePlacement(parent, {0, 1}, 2),
               std::invalid_argument);
  // parent[u] must precede u.
  EXPECT_THROW(place::OptimizePlacement({0, 2, 1}, weight, 2),
               std::invalid_argument);
}

TEST(OptimizePlacementTest, AcceptsBothRootConventions) {
  // The net stack writes parent[0] = 0; offline tools use kInvalidNode.
  // Entry 0 is ignored either way.
  std::vector<NodeId> parent = {0, 0, 1};
  const std::vector<std::uint64_t> weight = {0, 1, 1};
  const place::PlacementPlan a = place::OptimizePlacement(parent, weight, 2);
  parent[0] = kInvalidNode;
  const place::PlacementPlan b = place::OptimizePlacement(parent, weight, 2);
  EXPECT_EQ(a.node_daemon, b.node_daemon);
}

TEST(OptimizePlacementTest, BeatsRoundRobinOnSkewedTraffic) {
  // A hot subtree under round-robin pays on nearly every hot edge; the
  // optimizer should keep the hot path on one daemon.
  const Tree tree = MakeShape("kary2", 255, /*seed=*/1);
  const std::vector<NodeId> parent = ParentVector(tree);
  const std::vector<std::uint64_t> weight = HotPathWeights(parent, 200, 1000);
  const int daemons = 4;
  const place::PlacementPlan plan =
      place::OptimizePlacement(parent, weight, daemons);
  const std::uint64_t rr = place::CrossWeight(
      parent, weight, AssignNodes(parent, daemons, "rr"));
  EXPECT_LT(plan.cross_weight * 2, rr)
      << "optimized " << plan.cross_weight << " vs rr " << rr;
}

TEST(OptimizePlacementTest, NoWorseThanStaticSubtreeOnSkewedTraffic) {
  const Tree tree = MakeShape("kary2", 255, /*seed=*/1);
  const std::vector<NodeId> parent = ParentVector(tree);
  const std::vector<std::uint64_t> weight = HotPathWeights(parent, 200, 1000);
  const int daemons = 4;
  const place::PlacementPlan plan =
      place::OptimizePlacement(parent, weight, daemons);
  const std::uint64_t subtree = place::CrossWeight(
      parent, weight, AssignNodes(parent, daemons, "subtree"));
  EXPECT_LE(plan.cross_weight, subtree);
}

// --- treeagg-traffic-v1 codec -------------------------------------------

TEST(TrafficCodecTest, RoundTripsSparseVector) {
  std::vector<std::uint64_t> edges(100, 0);
  edges[1] = 42;
  edges[37] = 7;
  edges[99] = 123456789;
  std::stringstream text;
  place::WriteTraffic(text, edges);
  EXPECT_EQ(place::ReadTraffic(text), edges);
}

TEST(TrafficCodecTest, RoundTripsEmptyTraffic) {
  std::vector<std::uint64_t> edges(5, 0);
  std::stringstream text;
  place::WriteTraffic(text, edges);
  EXPECT_EQ(place::ReadTraffic(text), edges);
}

TEST(TrafficCodecTest, RejectsMissingHeader) {
  std::stringstream in("nodes 4\nedge 1 10\n");
  EXPECT_THROW(place::ReadTraffic(in), std::invalid_argument);
}

TEST(TrafficCodecTest, RejectsEdgeOutOfRange) {
  std::stringstream in("treeagg-traffic-v1\nnodes 4\nedge 4 10\n");
  EXPECT_THROW(place::ReadTraffic(in), std::invalid_argument);
}

TEST(TrafficCodecTest, RejectsRootEdge) {
  // Node 0 has no parent edge; a count for it is malformed.
  std::stringstream in("treeagg-traffic-v1\nnodes 4\nedge 0 10\n");
  EXPECT_THROW(place::ReadTraffic(in), std::invalid_argument);
}

}  // namespace
}  // namespace treeagg
