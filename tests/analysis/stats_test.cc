#include "analysis/stats.h"

#include <gtest/gtest.h>

namespace treeagg {
namespace {

TEST(SummarizeTest, EmptyInputYieldsZeros) {
  const SummaryStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(SummarizeTest, SingleSample) {
  const SummaryStats s = Summarize({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.p99, 7.0);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.max, 7.0);
}

TEST(SummarizeTest, KnownDistribution) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const SummaryStats s = Summarize(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
}

TEST(SummarizeTest, PercentilesAreMonotone) {
  std::vector<double> samples;
  for (int i = 0; i < 37; ++i) samples.push_back(static_cast<double>(i * i));
  const SummaryStats s = Summarize(samples);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(SummarizeTest, UnsortedInputHandled) {
  const SummaryStats s = Summarize({5.0, 1.0, 3.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.p50, 3.0);
  EXPECT_EQ(s.max, 5.0);
}

TEST(LatencyTest, ExtractsCombineLatencies) {
  History h;
  const ReqId w = h.BeginWrite(0, 1.0, 10);
  h.CompleteWrite(w, 10);
  const ReqId c1 = h.BeginCombine(1, 20);
  h.CompleteCombine(c1, 1.0, {}, 0, 25);  // latency 5
  const ReqId c2 = h.BeginCombine(1, 30);
  h.CompleteCombine(c2, 1.0, {}, 0, 45);  // latency 15
  const LatencyReport report = LatencyFromHistory(h);
  EXPECT_EQ(report.writes, 1u);
  EXPECT_EQ(report.combines, 2u);
  EXPECT_EQ(report.combine_latency.count, 2u);
  EXPECT_NEAR(report.combine_latency.mean, 10.0, 1e-9);
  EXPECT_EQ(report.combine_latency.max, 15.0);
}

TEST(LatencyTest, IncompleteCombinesExcludedFromSamples) {
  History h;
  h.BeginCombine(0, 5);  // never completes
  const LatencyReport report = LatencyFromHistory(h);
  EXPECT_EQ(report.combines, 1u);
  EXPECT_EQ(report.combine_latency.count, 0u);
}

}  // namespace
}  // namespace treeagg
