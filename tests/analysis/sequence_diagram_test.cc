#include "analysis/sequence_diagram.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

Message Make(MsgType type, NodeId from, NodeId to) {
  Message m;
  m.type = type;
  m.from = from;
  m.to = to;
  return m;
}

TEST(SequenceDiagramTest, HeaderListsNodes) {
  const std::string s = RenderSequenceDiagram({}, 3);
  EXPECT_NE(s.find("node:"), std::string::npos);
  EXPECT_NE(s.find("0"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(SequenceDiagramTest, RightwardArrow) {
  const std::string s =
      RenderSequenceDiagram({Make(MsgType::kProbe, 0, 2)}, 3);
  // Sender o, 9-dash shaft (two 5-wide lanes minus the endpoints),
  // receiver >.
  EXPECT_NE(s.find("probe"), std::string::npos);
  EXPECT_NE(s.find("o--------->"), std::string::npos);
}

TEST(SequenceDiagramTest, LeftwardArrow) {
  const std::string s =
      RenderSequenceDiagram({Make(MsgType::kResponse, 2, 0)}, 3);
  EXPECT_NE(s.find("<---------o"), std::string::npos);
}

TEST(SequenceDiagramTest, BystanderLanesShowPipes) {
  const std::string s =
      RenderSequenceDiagram({Make(MsgType::kUpdate, 1, 2)}, 4);
  // Node 0 and node 3 are bystanders.
  const std::size_t row = s.find("update");
  ASSERT_NE(row, std::string::npos);
  const std::string line = s.substr(row, s.find('\n', row) - row);
  EXPECT_EQ(line.find('|'), 9u);          // node 0 lane
  EXPECT_NE(line.find("o"), std::string::npos);
}

TEST(SequenceDiagramTest, RangeSelectsSubset) {
  const std::vector<Message> log = {Make(MsgType::kProbe, 0, 1),
                                    Make(MsgType::kRelease, 1, 0)};
  const std::string s = RenderSequenceDiagram(log, 2, 1, 2);
  EXPECT_EQ(s.find("probe"), std::string::npos);
  EXPECT_NE(s.find("release"), std::string::npos);
}

TEST(SequenceDiagramTest, RendersRealProtocolRun) {
  Tree t = MakePath(3);
  AggregationSystem::Options options;
  options.keep_message_log = true;
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Combine(0);
  const std::string s =
      RenderSequenceDiagram(sys.trace().log(), t.size());
  // Two probes out, two responses back.
  std::size_t probes = 0, responses = 0;
  for (std::size_t pos = 0; (pos = s.find("probe", pos)) != std::string::npos;
       ++pos) {
    ++probes;
  }
  for (std::size_t pos = 0;
       (pos = s.find("response", pos)) != std::string::npos; ++pos) {
    ++responses;
  }
  EXPECT_EQ(probes, 2u);
  EXPECT_EQ(responses, 2u);
}

}  // namespace
}  // namespace treeagg
