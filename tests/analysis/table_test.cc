#include "analysis/table.h"

#include <gtest/gtest.h>

namespace treeagg {
namespace {

TEST(TableTest, FormatsAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(TableTest, SeparatorsPresent) {
  TextTable table({"h"});
  table.AddRow({"x"});
  const std::string s = table.ToString();
  // Three separator lines: top, under header, bottom.
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = s.find("+---", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Fmt(2.5), "2.50");
  EXPECT_EQ(Fmt(2.5, 0), "2");  // rounds-to-even is fine ("2")
  EXPECT_EQ(Fmt(1.0 / 3.0, 4), "0.3333");
}

}  // namespace
}  // namespace treeagg
