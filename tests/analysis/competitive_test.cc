#include "analysis/competitive.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(CompetitiveTest, ReportFieldsConsistent) {
  Tree t = MakeKary(7, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 200, 3);
  const CompetitiveReport report =
      RunCompetitive(t, RwwFactory(), "RWW", sigma);
  EXPECT_TRUE(report.strict_ok) << report.strict_error;
  EXPECT_TRUE(report.partition_ok);
  EXPECT_EQ(report.edges.size(), 2u * static_cast<std::size_t>(t.size() - 1));
  std::int64_t sum = 0;
  for (const EdgeReport& e : report.edges) sum += e.online_cost;
  EXPECT_EQ(sum, report.online_total);
}

TEST(CompetitiveTest, RwwWithinFiveHalvesOfLeaseOpt) {
  // Theorem 1, empirically: on every tree/workload pairing, RWW's total and
  // per-edge costs stay within 5/2 of the per-edge offline optimum.
  for (const std::string shape : {"path", "star", "kary2", "random"}) {
    Tree t = MakeShape(shape, 16, 5);
    for (const std::string wl : {"mixed25", "mixed50", "mixed75", "bursty"}) {
      const RequestSequence sigma = MakeWorkload(wl, t, 400, 7);
      const CompetitiveReport report =
          RunCompetitive(t, RwwFactory(), "RWW", sigma);
      EXPECT_TRUE(report.strict_ok) << shape << "/" << wl;
      EXPECT_LE(report.RatioVsLeaseOpt(), 2.5 + 1e-12) << shape << "/" << wl;
      EXPECT_LE(report.WorstEdgeRatio(), 2.5 + 1e-12) << shape << "/" << wl;
      for (const EdgeReport& e : report.edges) {
        // RWW is silent whenever OPT is (no additive term, Lemma 4.6).
        if (e.opt_cost == 0) {
          EXPECT_EQ(e.online_cost, 0);
        }
      }
    }
  }
}

TEST(CompetitiveTest, AdversarialSequenceApproachesFiveHalves) {
  Tree t({0, 0});
  const RequestSequence sigma = MakeAdversarial(1, 0, 1, 2, 200);
  const CompetitiveReport report =
      RunCompetitive(t, RwwFactory(), "RWW", sigma);
  EXPECT_NEAR(report.RatioVsLeaseOpt(), 2.5, 0.02);
}

TEST(CompetitiveTest, RwwWithinFiveOfNiceBoundAsymptotically) {
  // Theorem 2, empirically, on a churny workload where the additive
  // lease-set-up term washes out.
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 3000, 9);
  const CompetitiveReport report =
      RunCompetitive(t, RwwFactory(), "RWW", sigma);
  ASSERT_GT(report.nice_bound_total, 0);
  EXPECT_LE(report.RatioVsNiceBound(), 5.0 + 0.5);
}

TEST(CompetitiveTest, EmptySequenceGivesZeroEverything) {
  Tree t = MakePath(4);
  const CompetitiveReport report = RunCompetitive(t, RwwFactory(), "RWW", {});
  EXPECT_EQ(report.online_total, 0);
  EXPECT_EQ(report.lease_opt_total, 0);
  EXPECT_EQ(report.RatioVsLeaseOpt(), 0.0);
  EXPECT_EQ(report.WorstEdgeRatio(), 0.0);
}

TEST(CompetitiveTest, PushAllCanExceedFiveHalvesOnWriteHeavy) {
  // The static strategy is NOT competitive: write floods make it
  // arbitrarily worse than the offline optimum.
  Tree t = MakeKary(15, 2);
  RequestSequence sigma;
  for (NodeId u = 0; u < t.size(); ++u) sigma.push_back(Request::Combine(u));
  for (int i = 0; i < 500; ++i) {
    sigma.push_back(Request::Write(static_cast<NodeId>(i % t.size()), i));
  }
  const CompetitiveReport report =
      RunCompetitive(t, PushAllFactory(), "push-all", sigma);
  EXPECT_GT(report.RatioVsLeaseOpt(), 2.5);
}

}  // namespace
}  // namespace treeagg
