// History -> Chrome trace-event export: span/instant shapes, the
// incomplete-request sliver, fault windows, and well-formed JSON output.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/trace_export.h"
#include "consistency/history.h"
#include "obs/trace_event.h"

namespace treeagg {
namespace {

History MakeHistory() {
  History h;
  const ReqId w = h.BeginWrite(/*node=*/2, /*arg=*/5.0, /*at=*/10);
  h.CompleteWrite(w, /*at=*/14);
  const ReqId c = h.BeginCombine(/*node=*/0, /*at=*/20);
  h.CompleteCombine(c, /*retval=*/5.0, /*gather=*/{}, /*log_prefix=*/0,
                    /*at=*/33);
  h.BeginWrite(/*node=*/1, /*arg=*/7.0, /*at=*/40);  // never completes
  return h;
}

TEST(TraceExportTest, EmitsOneSpanPerRequestPlusFaultMarkers) {
  const History h = MakeHistory();
  TraceExportOptions options;
  options.process_name = "unit";
  options.pid = 7;
  options.fault_windows = {{5, 15}};
  obs::TraceEventSink sink;
  ExportHistoryTrace(h, options, &sink);
  // 1 process-name metadata + 3 request spans + 1 fault-window span
  // + 2 fault instants.
  EXPECT_EQ(sink.size(), 7u);

  std::ostringstream out;
  sink.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\""), std::string::npos);       // process name
  EXPECT_NE(json.find("\"write\""), std::string::npos);
  EXPECT_NE(json.find("\"combine\""), std::string::npos);
  EXPECT_NE(json.find("\"fault window\""), std::string::npos);
  EXPECT_NE(json.find("\"fault begin\""), std::string::npos);
  EXPECT_NE(json.find("\"fault end\""), std::string::npos);
  // Spans are ph "X", instants ph "i", metadata ph "M".
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  // The dangling write renders a completed=0 sliver, not a crash.
  EXPECT_NE(json.find("\"completed\":0"), std::string::npos);
  // Balanced brackets — cheap structural sanity for hand-built JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExportTest, SameTickCompletionGetsVisibleSliver) {
  History h;
  const ReqId w = h.BeginWrite(0, 1.0, /*at=*/5);
  h.CompleteWrite(w, /*at=*/5);
  obs::TraceEventSink sink;
  ExportHistoryTrace(h, {}, &sink);
  std::ostringstream out;
  sink.WriteJson(out);
  // Zero-duration spans vanish from some trace viewers; the exporter
  // promises at least 1us.
  EXPECT_NE(out.str().find("\"dur\":1"), std::string::npos);
}

TEST(TraceExportTest, WriteFileRoundTripsAndFailsOnBadPath) {
  const History h = MakeHistory();
  const std::string path = ::testing::TempDir() + "/trace_export_test.json";
  ASSERT_TRUE(WriteHistoryTraceFile(path, h));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());

  EXPECT_FALSE(WriteHistoryTraceFile("/nonexistent-dir/x/y.json", h));
}

}  // namespace
}  // namespace treeagg
