#include "runtime/actor_runtime.h"

#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "consistency/strict_checker.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(ActorRuntimeTest, SingleWriteAndCombine) {
  Tree t = MakePath(3);
  ActorRuntime rt(t, RwwFactory());
  rt.Start();
  rt.InjectWrite(0, 5.0);
  const ReqId c = rt.InjectCombine(2);
  rt.DrainAndStop();
  ASSERT_TRUE(rt.history().AllCompleted());
  // Concurrent semantics: the combine may or may not see the write; its
  // value must match its own gather set, which the causal checker verifies.
  const Real v = rt.history().record(c).retval;
  EXPECT_TRUE(v == 0.0 || v == 5.0);
  const CheckResult r = CheckCausalConsistency(rt.history(), rt.GhostStates(),
                                               SumOp(), t.size());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ActorRuntimeTest, SequentialInjectionIsStrictlyConsistent) {
  // If the driver waits for quiescence between requests the execution is
  // sequential; here requests pipeline, but injecting from one thread into
  // one node still totally orders them at that node.
  Tree t({0, 0});
  ActorRuntime rt(t, RwwFactory());
  rt.Start();
  for (int i = 1; i <= 20; ++i) rt.InjectWrite(0, i);
  rt.DrainAndStop();
  EXPECT_TRUE(rt.history().AllCompleted());
  EXPECT_EQ(rt.history().size(), 20u);
}

TEST(ActorRuntimeTest, ConcurrentMixedWorkloadIsCausallyConsistent) {
  Tree t = MakeKary(9, 2);
  ActorRuntime rt(t, RwwFactory());
  rt.Start();
  const RequestSequence sigma = MakeWorkload("mixed50", t, 400, 3);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      rt.InjectCombine(r.node);
    } else {
      rt.InjectWrite(r.node, r.arg);
    }
  }
  rt.DrainAndStop();
  ASSERT_TRUE(rt.history().AllCompleted());
  ASSERT_EQ(rt.history().size(), sigma.size());
  const CheckResult r = CheckCausalConsistency(rt.history(), rt.GhostStates(),
                                               SumOp(), t.size());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ActorRuntimeTest, AllPoliciesSurviveConcurrency) {
  for (const NamedPolicy& policy : StandardPolicies()) {
    Tree t = MakePath(5);
    ActorRuntime rt(t, policy.factory);
    rt.Start();
    const RequestSequence sigma = MakeWorkload("mixed50", t, 150, 5);
    for (const Request& r : sigma) {
      if (r.op == ReqType::kCombine) {
        rt.InjectCombine(r.node);
      } else {
        rt.InjectWrite(r.node, r.arg);
      }
    }
    rt.DrainAndStop();
    ASSERT_TRUE(rt.history().AllCompleted()) << policy.name;
    const CheckResult r = CheckCausalConsistency(
        rt.history(), rt.GhostStates(), SumOp(), t.size());
    EXPECT_TRUE(r.ok) << policy.name << ": " << r.message;
  }
}

TEST(ActorRuntimeTest, PerTypeAccountingMatchesTotal) {
  Tree t = MakePath(3);
  ActorRuntime rt(t, RwwFactory());
  rt.Start();
  rt.InjectCombine(0);
  rt.DrainAndStop();
  const MessageCounts totals = rt.MessageTotals();
  EXPECT_EQ(totals.total(), rt.MessagesSent());
  EXPECT_EQ(totals.probes, 2);
  EXPECT_EQ(totals.responses, 2);
  EXPECT_EQ(totals.updates, 0);
  // Per-edge classification works across the thread-safe snapshot too.
  EXPECT_EQ(rt.EdgeCost(1, 0).probes, 1);
  EXPECT_EQ(rt.EdgeCost(2, 1).responses, 1);
}

TEST(ActorRuntimeTest, MessageCounterMatchesGhostFreeRun) {
  Tree t = MakePath(2);
  ActorRuntime::Options options;
  options.ghost_logging = false;
  ActorRuntime rt(t, RwwFactory(), options);
  rt.Start();
  const ReqId c = rt.InjectCombine(0);
  rt.DrainAndStop();
  EXPECT_EQ(rt.MessagesSent(), 2);  // probe + response
  EXPECT_TRUE(rt.history().record(c).completed());
}

}  // namespace
}  // namespace treeagg
