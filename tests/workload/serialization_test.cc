#include "workload/serialization.h"

#include <gtest/gtest.h>

#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(WorkloadSerializationTest, ParsesBasicFormat) {
  const RequestSequence sigma = WorkloadFromString(
      "# a comment\n"
      "C 3\n"
      "W 1 2.5\n"
      "\n"
      "w 0 -7\n"
      "c 2\n");
  ASSERT_EQ(sigma.size(), 4u);
  EXPECT_EQ(sigma[0], Request::Combine(3));
  EXPECT_EQ(sigma[1], Request::Write(1, 2.5));
  EXPECT_EQ(sigma[2], Request::Write(0, -7.0));
  EXPECT_EQ(sigma[3], Request::Combine(2));
}

TEST(WorkloadSerializationTest, RoundTripsExactly) {
  Tree t = MakePath(8);
  const RequestSequence original = MakeWorkload("mixed50", t, 500, 42);
  const RequestSequence reparsed =
      WorkloadFromString(WorkloadToString(original));
  EXPECT_EQ(original, reparsed);  // bitwise value round-trip
}

TEST(WorkloadSerializationTest, RejectsMalformedLines) {
  EXPECT_THROW(WorkloadFromString("C"), std::invalid_argument);
  EXPECT_THROW(WorkloadFromString("W 1"), std::invalid_argument);
  EXPECT_THROW(WorkloadFromString("X 1 2"), std::invalid_argument);
  EXPECT_THROW(WorkloadFromString("C -1"), std::invalid_argument);
  EXPECT_THROW(WorkloadFromString("C 1 extra"), std::invalid_argument);
}

TEST(WorkloadSerializationTest, ErrorNamesLineNumber) {
  try {
    WorkloadFromString("C 1\nW oops\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(WorkloadSerializationTest, EmptyInputIsEmptySequence) {
  EXPECT_TRUE(WorkloadFromString("").empty());
  EXPECT_TRUE(WorkloadFromString("# only comments\n").empty());
}

TEST(WorkloadSerializationTest, UntimedReaderStaysStrictAboutTickSuffix) {
  // The v1 reader predates arrival ticks and must not silently drop them.
  EXPECT_THROW(WorkloadFromString("C 1 @ 5\n"), std::invalid_argument);
  EXPECT_THROW(WorkloadFromString("W 1 2.5 @ 5\n"), std::invalid_argument);
}

TEST(TimedSerializationTest, ParsesTickSuffixes) {
  const TimedWorkload w = TimedWorkloadFromString(
      "# timed\n"
      "C 3 @ 0\n"
      "W 1 2.5 @ 4\n"
      "c 2 @ 4\n");
  ASSERT_EQ(w.sigma.size(), 3u);
  EXPECT_EQ(w.sigma[0], Request::Combine(3));
  EXPECT_EQ(w.sigma[1], Request::Write(1, 2.5));
  EXPECT_EQ(w.sigma[2], Request::Combine(2));
  EXPECT_EQ(w.ticks, (std::vector<std::int64_t>{0, 4, 4}));
}

TEST(TimedSerializationTest, EveryV1FileIsAValidV2File) {
  // Untimed lines arrive one tick after the previous request, from 0.
  const TimedWorkload w = TimedWorkloadFromString(
      "C 3\n"
      "W 1 2.5\n"
      "C 2 @ 10\n"
      "W 0 -1\n");
  EXPECT_EQ(w.ticks, (std::vector<std::int64_t>{0, 1, 10, 11}));
}

TEST(TimedSerializationTest, RoundTripsGeneratedTimedWorkloads) {
  Tree t = MakeKary(15, 2);
  for (const char* name : {"onoff", "pareto"}) {
    const TimedWorkload original = MakeTimedWorkload(name, t, 400, 23);
    const TimedWorkload reparsed =
        TimedWorkloadFromString(TimedWorkloadToString(original));
    EXPECT_EQ(original.sigma, reparsed.sigma) << name;
    EXPECT_EQ(original.ticks, reparsed.ticks) << name;
  }
}

TEST(TimedSerializationTest, RejectsDecreasingTicksAndJunk) {
  EXPECT_THROW(TimedWorkloadFromString("C 1 @ 5\nC 1 @ 3\n"),
               std::invalid_argument);
  EXPECT_THROW(TimedWorkloadFromString("C 1 @\n"), std::invalid_argument);
  EXPECT_THROW(TimedWorkloadFromString("C 1 @ x\n"), std::invalid_argument);
  EXPECT_THROW(TimedWorkloadFromString("C 1 @ 5 extra\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace treeagg
