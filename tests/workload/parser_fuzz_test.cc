// Deterministic fuzzing of the text parsers: random byte soup and random
// near-miss inputs must never crash, hang, or silently mis-parse — they
// either produce a valid result or throw std::invalid_argument.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.h"
#include "tree/serialization.h"
#include "workload/serialization.h"

namespace treeagg {
namespace {

std::string RandomBytes(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.NextBounded(max_len + 1);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.NextInt(1, 126)));  // no NUL
  }
  return s;
}

std::string RandomNearMissWorkload(Rng& rng) {
  static const char* kTokens[] = {"C",  "W",   "c",  "w",  "X",  "0",
                                  "1",  "-1",  "2.5", "#", "\n", " ",
                                  "nan", "1e9", "..", "W 1"};
  std::string s;
  const int parts = static_cast<int>(rng.NextInt(0, 20));
  for (int i = 0; i < parts; ++i) {
    s += kTokens[rng.NextBounded(std::size(kTokens))];
    s += rng.NextBool(0.3) ? "\n" : " ";
  }
  return s;
}

TEST(ParserFuzzTest, WorkloadParserNeverCrashesOnByteSoup) {
  Rng rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string input = RandomBytes(rng, 120);
    try {
      const RequestSequence sigma = WorkloadFromString(input);
      // If it parsed, every request must be structurally sane.
      for (const Request& r : sigma) {
        ASSERT_GE(r.node, 0);
      }
    } catch (const std::invalid_argument&) {
      // Expected for malformed input.
    }
  }
}

TEST(ParserFuzzTest, WorkloadParserNearMisses) {
  Rng rng(202);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string input = RandomNearMissWorkload(rng);
    try {
      (void)WorkloadFromString(input);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(ParserFuzzTest, TreeParserNeverCrashesOnByteSoup) {
  Rng rng(303);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string input = RandomBytes(rng, 80);
    try {
      const Tree t = TreeFromString(input);
      ASSERT_GE(t.size(), 1);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(ParserFuzzTest, TreeParserRandomIntegerVectors) {
  // Random integer vectors: valid iff each parent[i] is in [0, i).
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input = "0";
    const int n = static_cast<int>(rng.NextInt(0, 12));
    bool valid = true;
    for (int i = 1; i <= n; ++i) {
      const long p = rng.NextInt(-2, i + 1);
      valid &= (p >= 0 && p < i);
      input += " " + std::to_string(p);
    }
    try {
      const Tree t = TreeFromString(input);
      ASSERT_TRUE(valid) << "accepted invalid vector: " << input;
      ASSERT_EQ(t.size(), n + 1);
    } catch (const std::invalid_argument&) {
      ASSERT_FALSE(valid) << "rejected valid vector: " << input;
    }
  }
}

TEST(ParserFuzzTest, RoundTripSurvivesFuzzeddValues) {
  // Workloads with extreme-but-finite values round-trip exactly.
  Rng rng(505);
  RequestSequence sigma;
  for (int i = 0; i < 200; ++i) {
    const double magnitude = std::pow(10.0, rng.NextInt(-300, 300));
    sigma.push_back(Request::Write(
        static_cast<NodeId>(rng.NextBounded(100)),
        (rng.NextBool(0.5) ? 1 : -1) * magnitude * rng.NextDouble()));
  }
  EXPECT_EQ(WorkloadFromString(WorkloadToString(sigma)), sigma);
}

}  // namespace
}  // namespace treeagg
