#include "workload/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(WorkloadTest, MixedRespectsLengthAndNodes) {
  Tree t = MakePath(8);
  Rng rng(1);
  MixedWorkloadConfig config;
  config.length = 500;
  RequestSequence sigma = MakeMixed(t, config, rng);
  EXPECT_EQ(sigma.size(), 500u);
  for (const Request& r : sigma) {
    EXPECT_GE(r.node, 0);
    EXPECT_LT(r.node, t.size());
  }
}

TEST(WorkloadTest, MixedWriteFractionApproximatelyHolds) {
  Tree t = MakePath(4);
  Rng rng(2);
  MixedWorkloadConfig config;
  config.length = 4000;
  config.write_fraction = 0.25;
  const RequestMix mix = CountMix(MakeMixed(t, config, rng));
  EXPECT_NEAR(static_cast<double>(mix.writes) / 4000.0, 0.25, 0.04);
}

TEST(WorkloadTest, ZipfSkewsTowardsLowIds) {
  Tree t = MakePath(16);
  Rng rng(3);
  MixedWorkloadConfig config;
  config.length = 4000;
  config.zipf_s = 1.2;
  RequestSequence sigma = MakeMixed(t, config, rng);
  std::size_t node0 = 0, node15 = 0;
  for (const Request& r : sigma) {
    if (r.node == 0) ++node0;
    if (r.node == 15) ++node15;
  }
  EXPECT_GT(node0, 4 * node15);
}

TEST(WorkloadTest, AdversarialPattern) {
  RequestSequence sigma = MakeAdversarial(1, 0, 2, 3, 4);
  EXPECT_EQ(sigma.size(), 20u);
  // Period: R R W W W.
  EXPECT_EQ(sigma[0], Request::Combine(1));
  EXPECT_EQ(sigma[1], Request::Combine(1));
  EXPECT_EQ(sigma[2].op, ReqType::kWrite);
  EXPECT_EQ(sigma[2].node, 0);
  EXPECT_EQ(sigma[4].op, ReqType::kWrite);
  EXPECT_EQ(sigma[5], Request::Combine(1));
}

TEST(WorkloadTest, PingPongPattern) {
  const RequestSequence sigma = MakePingPong(3, 0, 2, 2);
  ASSERT_EQ(sigma.size(), 6u);
  EXPECT_EQ(sigma[0].op, ReqType::kWrite);
  EXPECT_EQ(sigma[0].node, 0);
  EXPECT_EQ(sigma[1].op, ReqType::kWrite);
  EXPECT_EQ(sigma[2], Request::Combine(3));
  EXPECT_EQ(sigma[5], Request::Combine(3));
  // Write arguments are all distinct (monotone counter).
  EXPECT_NE(sigma[0].arg, sigma[1].arg);
}

TEST(WorkloadTest, RoundRobinAlternatesPhases) {
  Tree t = MakePath(3);
  RequestSequence sigma = MakeRoundRobin(t, 2);
  EXPECT_EQ(sigma.size(), 12u);
  EXPECT_EQ(sigma[0].op, ReqType::kWrite);
  EXPECT_EQ(sigma[3].op, ReqType::kCombine);
  EXPECT_EQ(sigma[6].op, ReqType::kWrite);
}

TEST(WorkloadTest, ReadHeavyAndWriteHeavySkews) {
  Tree t = MakePath(6);
  Rng rng1(5), rng2(5);
  const RequestMix rh = CountMix(MakeReadHeavy(t, 2000, rng1));
  const RequestMix wh = CountMix(MakeWriteHeavy(t, 2000, rng2));
  EXPECT_LT(rh.writes, 300u);
  EXPECT_GT(wh.writes, 1700u);
}

TEST(WorkloadTest, BurstyCoversRequestedLength) {
  Tree t = MakePath(6);
  Rng rng(7);
  RequestSequence sigma = MakeBursty(t, 777, 50, rng);
  EXPECT_EQ(sigma.size(), 777u);
}

TEST(WorkloadTest, HotspotConcentratesTraffic) {
  Tree t = MakePath(32);
  Rng rng(8);
  RequestSequence sigma = MakeHotspot(t, 4000, 2, 0.9, 0.5, rng);
  std::vector<std::size_t> counts(32, 0);
  for (const Request& r : sigma) ++counts[static_cast<std::size_t>(r.node)];
  std::sort(counts.begin(), counts.end(), std::greater<>());
  // Two hot nodes should absorb most of the traffic.
  EXPECT_GT(counts[0] + counts[1], 2800u);
}

TEST(WorkloadTest, NamedWorkloadsAllProduceRequests) {
  Tree t = MakeKary(16, 2);
  for (const std::string& name : AllWorkloadNames()) {
    RequestSequence sigma = MakeWorkload(name, t, 200, 11);
    EXPECT_FALSE(sigma.empty()) << name;
  }
}

TEST(WorkloadTest, UnknownWorkloadThrows) {
  Tree t = MakePath(4);
  EXPECT_THROW(MakeWorkload("nope", t, 10, 1), std::invalid_argument);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  Tree t = MakePath(8);
  RequestSequence a = MakeWorkload("mixed50", t, 300, 99);
  RequestSequence b = MakeWorkload("mixed50", t, 300, 99);
  EXPECT_EQ(a, b);
}

TEST(TimedWorkloadTest, NamedListIncludesTheTimedGenerators) {
  const auto names = AllWorkloadNames();
  for (const char* name : {"onoff", "pareto"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(TimedWorkloadTest, TicksAreNondecreasingAndSizedLikeSigma) {
  Tree t = MakeKary(15, 2);
  for (const std::string& name : AllWorkloadNames()) {
    const TimedWorkload timed = MakeTimedWorkload(name, t, 200, 21);
    EXPECT_EQ(timed.sigma.size(), timed.ticks.size()) << name;
    EXPECT_FALSE(timed.sigma.empty()) << name;
    for (std::size_t i = 1; i < timed.ticks.size(); ++i) {
      EXPECT_GE(timed.ticks[i], timed.ticks[i - 1]) << name << " @" << i;
    }
  }
}

TEST(TimedWorkloadTest, MakeWorkloadIsTheUntimedProjection) {
  Tree t = MakeKary(15, 2);
  for (const char* name : {"onoff", "pareto", "mixed50"}) {
    EXPECT_EQ(MakeWorkload(name, t, 150, 4),
              MakeTimedWorkload(name, t, 150, 4).sigma)
        << name;
  }
}

TEST(TimedWorkloadTest, DeterministicPerSeed) {
  Tree t = MakePath(12);
  for (const char* name : {"onoff", "pareto"}) {
    const TimedWorkload a = MakeTimedWorkload(name, t, 250, 77);
    const TimedWorkload b = MakeTimedWorkload(name, t, 250, 77);
    EXPECT_EQ(a.sigma, b.sigma) << name;
    EXPECT_EQ(a.ticks, b.ticks) << name;
    // Distinct seeds drift somewhere in the sequence.
    const TimedWorkload c = MakeTimedWorkload(name, t, 250, 78);
    EXPECT_TRUE(a.sigma != c.sigma || a.ticks != c.ticks) << name;
  }
}

TEST(TimedWorkloadTest, OnOffAlternatesBurstsAndGaps) {
  Tree t = MakePath(8);
  const TimedWorkload timed = MakeTimedWorkload("onoff", t, 300, 9);
  // Bursty arrivals: some consecutive ticks advance by the off-gap (a
  // jump), most advance within a burst (by one).
  std::size_t jumps = 0, steps = 0;
  for (std::size_t i = 1; i < timed.ticks.size(); ++i) {
    const std::int64_t d = timed.ticks[i] - timed.ticks[i - 1];
    if (d > 8) ++jumps;
    if (d <= 1) ++steps;
  }
  EXPECT_GT(jumps, 0u);
  EXPECT_GT(steps, jumps);
}

TEST(TimedWorkloadTest, ParetoGapsAreHeavyTailed) {
  Tree t = MakePath(8);
  const TimedWorkload timed = MakeTimedWorkload("pareto", t, 2000, 17);
  std::int64_t max_gap = 0;
  std::size_t zero_gaps = 0;
  for (std::size_t i = 1; i < timed.ticks.size(); ++i) {
    const std::int64_t d = timed.ticks[i] - timed.ticks[i - 1];
    max_gap = std::max(max_gap, d);
    if (d == 0) ++zero_gaps;
  }
  // Heavy tail: at least one large quiet period AND many back-to-back
  // arrivals in the same tick.
  EXPECT_GT(max_gap, 20);
  EXPECT_GT(zero_gaps, 100u);
}

}  // namespace
}  // namespace treeagg
