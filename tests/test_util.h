// Shared test helpers: quiescent-state invariant checks corresponding to
// the paper's lemmas, usable after any sequentially executed request.
#ifndef TREEAGG_TESTS_TEST_UTIL_H_
#define TREEAGG_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/system.h"
#include "tree/topology.h"

namespace treeagg {

// Lemma 3.1: u.taken[v] == v.granted[u] in every quiescent state.
inline void ExpectLemma31(const AggregationSystem& sys) {
  const Tree& tree = sys.tree();
  for (NodeId u = 0; u < tree.size(); ++u) {
    for (const NodeId v : tree.neighbors(u)) {
      EXPECT_EQ(sys.node(u).taken(v), sys.node(v).granted(u))
          << "Lemma 3.1 violated at edge (" << u << ", " << v << ")";
    }
  }
}

// Lemma 3.2: if u.granted[v] then u.taken[w] for every other neighbor w.
inline void ExpectLemma32(const AggregationSystem& sys) {
  const Tree& tree = sys.tree();
  for (NodeId u = 0; u < tree.size(); ++u) {
    for (const NodeId v : tree.neighbors(u)) {
      if (!sys.node(u).granted(v)) continue;
      for (const NodeId w : tree.neighbors(u)) {
        if (w == v) continue;
        EXPECT_TRUE(sys.node(u).taken(w))
            << "Lemma 3.2 violated at node " << u << ": granted[" << v
            << "] but not taken[" << w << "]";
      }
    }
  }
}

// Lemma 3.4: pndg and all snt sets are empty in every quiescent state.
inline void ExpectLemma34(const AggregationSystem& sys) {
  const Tree& tree = sys.tree();
  for (NodeId u = 0; u < tree.size(); ++u) {
    EXPECT_EQ(sys.node(u).PndgSize(), 0u)
        << "Lemma 3.4 violated: node " << u << " has pending requesters";
  }
}

// Invariants I1/I3 (Lemma 3.11), checked against ground truth: u.val equals
// the most recent write at u, and for every taken lease v -> u, u.aval[v]
// equals the aggregate over subtree(v, u) of the current per-node values.
inline void ExpectValueInvariants(const AggregationSystem& sys,
                                  const std::vector<Real>& truth) {
  const Tree& tree = sys.tree();
  const AggregateOp& op = sys.op();
  for (NodeId u = 0; u < tree.size(); ++u) {
    EXPECT_EQ(sys.node(u).val(), truth[static_cast<std::size_t>(u)])
        << "I1 violated at node " << u;
    for (const NodeId v : tree.neighbors(u)) {
      if (!sys.node(u).taken(v)) continue;
      Real expected = op.identity;
      for (NodeId w = 0; w < tree.size(); ++w) {
        if (tree.InSubtree(w, v, u)) {
          expected = op(expected, truth[static_cast<std::size_t>(w)]);
        }
      }
      const Real actual = sys.node(u).aval(v);
      if (actual == expected) continue;  // exact (covers +-inf identities)
      EXPECT_NEAR(actual, expected, 1e-9)
          << "I3 violated at node " << u << " for neighbor " << v;
    }
  }
}

// Runs all quiescent-state invariants.
inline void ExpectQuiescentInvariants(const AggregationSystem& sys,
                                      const std::vector<Real>& truth) {
  ASSERT_TRUE(sys.IsQuiescent());
  ExpectLemma31(sys);
  ExpectLemma32(sys);
  ExpectLemma34(sys);
  ExpectValueInvariants(sys, truth);
}

}  // namespace treeagg

#endif  // TREEAGG_TESTS_TEST_UTIL_H_
