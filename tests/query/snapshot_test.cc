// Snapshot-tier unit tests: seqlock slot semantics, the per-tree table,
// and the sim/runtime backends' QueryNode surfaces.
#include "query/snapshot.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/policies.h"
#include "runtime/actor_runtime.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

using query::QueryAnswer;
using query::SnapshotSlot;
using query::SnapshotTable;

TEST(SnapshotSlotTest, FreshSlotIsUnpublished) {
  SnapshotSlot slot;
  EXPECT_FALSE(slot.Published());
  QueryAnswer a;
  ASSERT_TRUE(slot.TryRead(&a));  // even seq: readable, epoch 0
  EXPECT_EQ(a.epoch, 0u);
  EXPECT_EQ(a.value, 0.0);
  EXPECT_EQ(a.log_prefix, -1);
}

TEST(SnapshotSlotTest, PublishBumpsEpochAndLandsAllFields) {
  SnapshotSlot slot;
  slot.Publish(3.5, 7);
  EXPECT_TRUE(slot.Published());
  const QueryAnswer a = slot.Read();
  EXPECT_EQ(a.epoch, 1u);
  EXPECT_EQ(a.value, 3.5);
  EXPECT_EQ(a.log_prefix, 7);
  slot.Publish(-2.0, 9);
  const QueryAnswer b = slot.Read();
  EXPECT_EQ(b.epoch, 2u);
  EXPECT_EQ(b.value, -2.0);
  EXPECT_EQ(b.log_prefix, 9);
}

TEST(SnapshotSlotTest, SlotIsExactlyOneCacheLine) {
  EXPECT_EQ(sizeof(SnapshotSlot), 64u);
  EXPECT_EQ(alignof(SnapshotSlot), 64u);
}

TEST(SnapshotTableTest, SlotsAreIndependentAndStable) {
  SnapshotTable table(4);
  EXPECT_EQ(table.size(), 4u);
  SnapshotSlot* s2 = table.slot(2);
  table.slot(1)->Publish(1.0, 0);
  table.slot(2)->Publish(2.0, 0);
  EXPECT_EQ(table.Read(0).epoch, 0u);
  EXPECT_EQ(table.Read(1).value, 1.0);
  EXPECT_EQ(table.Read(2).value, 2.0);
  EXPECT_EQ(table.slot(2), s2);  // never resized
}

TEST(SimQueryTierTest, DisabledByDefaultAndThrows) {
  Tree t = MakePath(3);
  AggregationSystem sys(t, RwwFactory());
  EXPECT_THROW(sys.QueryNode(0), std::logic_error);
}

TEST(SimQueryTierTest, AnswersTrackReadCachedAndCostNoMessages) {
  Tree t = MakeKary(7, 2);
  AggregationSystem::Options options;
  options.query_tier = true;
  options.ghost_logging = true;
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Write(5, 3.0);
  sys.Combine(2);
  const std::int64_t before = sys.trace().TotalMessages();
  const QueryAnswer a = sys.QueryNode(2);
  EXPECT_EQ(sys.trace().TotalMessages(), before);  // off-ledger
  EXPECT_EQ(a.value, sys.ReadCached(2));
  EXPECT_GE(a.epoch, 1u);
  // Same quiescent state, same slot: the answer is stable.
  EXPECT_EQ(sys.QueryNode(2), a);
  // A new write moves the node: the epoch must advance.
  sys.Write(5, 8.0);
  const QueryAnswer b = sys.QueryNode(2);
  EXPECT_GT(b.epoch, a.epoch);
  EXPECT_EQ(b.value, sys.ReadCached(2));
}

TEST(SimQueryTierTest, LogPrefixMatchesGhostLogLength) {
  Tree t = MakePath(4);
  AggregationSystem::Options options;
  options.query_tier = true;
  options.ghost_logging = true;
  AggregationSystem sys(t, RwwFactory(), options);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 60, 2);
  sys.Execute(sigma);
  const auto ghosts = sys.GhostStates();
  for (NodeId u = 0; u < t.size(); ++u) {
    const QueryAnswer a = sys.QueryNode(u);
    EXPECT_EQ(a.log_prefix,
              static_cast<std::int64_t>(
                  ghosts[static_cast<std::size_t>(u)].write_log.size()))
        << "node " << u;
  }
}

TEST(SimQueryTierTest, GhostLoggingOffPublishesMinusOnePrefix) {
  Tree t = MakePath(2);
  AggregationSystem::Options options;
  options.query_tier = true;  // ghost_logging stays false
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Write(1, 4.0);
  EXPECT_EQ(sys.QueryNode(1).log_prefix, -1);
}

TEST(RuntimeQueryTierTest, DisabledByDefaultAndThrows) {
  Tree t = MakePath(2);
  ActorRuntime rt(t, RwwFactory());
  rt.Start();
  EXPECT_THROW(rt.QueryNode(0), std::logic_error);
  rt.DrainAndStop();
}

TEST(RuntimeQueryTierTest, RejectsOutOfRangeNode) {
  Tree t = MakePath(2);
  ActorRuntime::Options options;
  options.query_tier = true;
  ActorRuntime rt(t, RwwFactory(), options);
  rt.Start();
  EXPECT_THROW(rt.QueryNode(2), std::out_of_range);
  rt.DrainAndStop();
}

TEST(RuntimeQueryTierTest, QueriesWhileWorkloadRuns) {
  Tree t = MakeKary(9, 2);
  ActorRuntime::Options options;
  options.query_tier = true;
  ActorRuntime rt(t, RwwFactory(), options);
  rt.Start();
  const RequestSequence sigma = MakeWorkload("mixed50", t, 300, 4);
  std::uint64_t last_epoch = 0;
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      rt.InjectCombine(r.node);
    } else {
      rt.InjectWrite(r.node, r.arg);
    }
    // Interleave snapshot reads with the running mechanism: epochs at a
    // fixed node never go backwards in one reader's order.
    const QueryAnswer a = rt.QueryNode(0);
    EXPECT_GE(a.epoch, last_epoch);
    last_epoch = a.epoch;
  }
  rt.DrainAndStop();
  ASSERT_TRUE(rt.history().AllCompleted());
}

}  // namespace
}  // namespace treeagg
