// Concurrency suite for the seqlock snapshot slots — the daemon's sharded
// serving shape: one writer per slot (the reactor owning the node's
// shard), N readers hammering it from other threads. Run under TSan this
// proves the slot protocol is race-free; run normally it proves no torn
// {epoch, value, log_prefix} triple is ever observable across epoch
// boundaries. Publishes are derived from the epoch (value = 3 * epoch,
// log_prefix = 2 * epoch), so any mix-and-match of fields from different
// publishes is detectable by pure arithmetic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "query/snapshot.h"

namespace treeagg::query {
namespace {

// What a publish of epoch e writes. Readers invert these to detect tears.
Real ValueFor(std::uint64_t epoch) { return static_cast<Real>(3 * epoch); }
std::int64_t PrefixFor(std::uint64_t epoch) {
  return static_cast<std::int64_t>(2 * epoch);
}

bool Consistent(const QueryAnswer& a) {
  if (a.epoch == 0) return a.value == 0 && a.log_prefix == -1;  // pre-publish
  return a.value == ValueFor(a.epoch) && a.log_prefix == PrefixFor(a.epoch);
}

TEST(SeqlockStressTest, OneWriterManyReadersNoTornReads) {
  constexpr int kReaders = 4;
  constexpr std::uint64_t kPublishes = 200000;
  SnapshotSlot slot;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> regressions{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryAnswer a = slot.Read();
        if (!Consistent(a)) torn.fetch_add(1, std::memory_order_relaxed);
        if (a.epoch < last_epoch) {
          regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = a.epoch;
      }
    });
  }

  for (std::uint64_t e = 1; e <= kPublishes; ++e) {
    slot.Publish(ValueFor(e), PrefixFor(e));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(regressions.load(), 0u);
  EXPECT_EQ(slot.Read().epoch, kPublishes);
}

TEST(SeqlockStressTest, ShardedTableWritersDoNotInterfere) {
  // One writer per slot, readers sweeping the whole table — the layout the
  // multi-reactor daemon serves from. alignas(64) keeps adjacent slots off
  // one cache line, so per-slot invariants hold under full contention.
  constexpr std::size_t kSlots = 4;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kPublishes = 50000;
  SnapshotTable table(kSlots);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> writers;
  for (std::size_t s = 0; s < kSlots; ++s) {
    writers.emplace_back([&, s] {
      SnapshotSlot* slot = table.slot(static_cast<NodeId>(s));
      for (std::uint64_t e = 1; e <= kPublishes; ++e) {
        slot->Publish(ValueFor(e), PrefixFor(e));
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::vector<std::uint64_t> last(kSlots, 0);
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::size_t s = 0; s < kSlots; ++s) {
          const QueryAnswer a = table.Read(static_cast<NodeId>(s));
          if (!Consistent(a) || a.epoch < last[s]) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
          last[s] = a.epoch;
        }
      }
    });
  }

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  for (std::size_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(table.Read(static_cast<NodeId>(s)).epoch, kPublishes);
  }
}

}  // namespace
}  // namespace treeagg::query
