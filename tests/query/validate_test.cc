// Offline validation of served snapshot answers: GatherAtPrefix
// reconstruction, the concurrency-safe ValidateQueryAnswers checks, and
// lifting serially-issued queries into a History for the causal checker.
#include "query/validate.h"

#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

using query::GatherAtPrefix;
using query::LiftQueriesIntoHistory;
using query::QueryAnswer;
using query::ServedQuery;
using query::ValidateQueryAnswers;

GhostLog MakeLog(std::initializer_list<std::pair<ReqId, NodeId>> entries) {
  GhostLog log;
  for (const auto& [id, node] : entries) log.push_back(GhostWrite{id, node});
  return log;
}

TEST(GatherAtPrefixTest, KeepsMostRecentWritePerNode) {
  const GhostLog log = MakeLog({{0, 1}, {1, 2}, {2, 1}, {3, 3}});
  const auto g = GatherAtPrefix(log, 3);
  // Prefix {w0@1, w1@2, w2@1}: node 1's latest is w2, node 2's is w1.
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g[0], (std::pair<NodeId, ReqId>{1, 2}));
  EXPECT_EQ(g[1], (std::pair<NodeId, ReqId>{2, 1}));
}

TEST(GatherAtPrefixTest, ClampsPrefixAndHandlesEmpty) {
  const GhostLog log = MakeLog({{0, 1}});
  EXPECT_TRUE(GatherAtPrefix(log, 0).empty());
  EXPECT_TRUE(GatherAtPrefix(log, -1).empty());
  EXPECT_EQ(GatherAtPrefix(log, 99).size(), 1u);  // clamped to log length
}

// A tiny hand-built run: two writes at node 0, harvested log at node 1
// saw both.
struct TinyRun {
  History history;
  std::vector<NodeGhostState> ghosts;
  ReqId w0, w1;

  TinyRun() {
    w0 = history.BeginWrite(0, 2.0, 0);
    history.CompleteWrite(w0, 1);
    w1 = history.BeginWrite(0, 5.0, 2);
    history.CompleteWrite(w1, 3);
    ghosts.resize(2);
    ghosts[0] = {0, MakeLog({{w0, 0}, {w1, 0}})};
    ghosts[1] = {1, MakeLog({{w0, 0}, {w1, 0}})};
  }
};

ServedQuery Served(NodeId node, std::uint64_t epoch, Real value,
                   std::int64_t prefix, std::int64_t serial) {
  return ServedQuery{node, QueryAnswer{epoch, value, prefix}, serial};
}

TEST(ValidateQueryAnswersTest, AcceptsCompatibleAnswers) {
  TinyRun run;
  const std::vector<ServedQuery> served = {
      Served(1, 1, 2.0, 1, 0),  // saw only w0: node 0 holds 2.0
      Served(1, 2, 5.0, 2, 1),  // saw both: w1 overwrote, node 0 holds 5.0
  };
  const CheckResult r =
      ValidateQueryAnswers(run.history, run.ghosts, served, SumOp());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ValidateQueryAnswersTest, RejectsValueIncompatibleWithPrefix) {
  TinyRun run;
  const std::vector<ServedQuery> served = {Served(1, 1, 3.25, 1, 0)};
  const CheckResult r =
      ValidateQueryAnswers(run.history, run.ghosts, served, SumOp());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("incompatible"), std::string::npos) << r.message;
}

TEST(ValidateQueryAnswersTest, RejectsEpochGoingBackwards) {
  TinyRun run;
  const std::vector<ServedQuery> served = {
      Served(1, 2, 5.0, 2, 0),
      Served(1, 1, 2.0, 1, 1),  // older epoch served later
  };
  const CheckResult r =
      ValidateQueryAnswers(run.history, run.ghosts, served, SumOp());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("back"), std::string::npos) << r.message;
}

TEST(ValidateQueryAnswersTest, RejectsTornEqualEpochAnswers) {
  TinyRun run;
  const std::vector<ServedQuery> served = {
      Served(1, 1, 2.0, 1, 0),
      Served(1, 1, 5.0, 2, 1),  // same epoch, different payload
  };
  const CheckResult r =
      ValidateQueryAnswers(run.history, run.ghosts, served, SumOp());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("torn"), std::string::npos) << r.message;
}

TEST(ValidateQueryAnswersTest, RejectsLogPrefixShrinkingAcrossEpochs) {
  TinyRun run;
  const std::vector<ServedQuery> served = {
      Served(1, 1, 5.0, 2, 0),
      Served(1, 2, 2.0, 1, 1),  // newer epoch, shorter log
  };
  const CheckResult r =
      ValidateQueryAnswers(run.history, run.ghosts, served, SumOp());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("backwards"), std::string::npos) << r.message;
}

TEST(ValidateQueryAnswersTest, RejectsPrefixBeyondHarvestedLog) {
  TinyRun run;
  const std::vector<ServedQuery> served = {Served(1, 1, 5.0, 5, 0)};
  const CheckResult r =
      ValidateQueryAnswers(run.history, run.ghosts, served, SumOp());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("exceeds"), std::string::npos) << r.message;
}

TEST(ValidateQueryAnswersTest, SkipsValueCheckWithoutGhostLogging) {
  TinyRun run;
  // log_prefix -1: only the per-epoch ordering checks apply, so an
  // arbitrary value passes.
  const std::vector<ServedQuery> served = {Served(1, 1, 123.0, -1, 0)};
  const CheckResult r =
      ValidateQueryAnswers(run.history, run.ghosts, served, SumOp());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ValidateQueryAnswersTest, EndToEndSequentialSimRun) {
  Tree t = MakeKary(15, 2);
  AggregationSystem::Options options;
  options.query_tier = true;
  options.ghost_logging = true;
  AggregationSystem sys(t, RwwFactory(), options);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 200, 9);
  std::vector<ServedQuery> served;
  std::int64_t serial = 0;
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      sys.Write(r.node, r.arg);
    } else {
      // Serve the combine from the snapshot tier instead of the mechanism.
      served.push_back(ServedQuery{r.node, sys.QueryNode(r.node), serial++});
    }
  }
  ASSERT_FALSE(served.empty());
  const CheckResult r =
      ValidateQueryAnswers(sys.history(), sys.GhostStates(), served, SumOp());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(LiftQueriesIntoHistoryTest, LiftedAnswersPassTheCausalChecker) {
  Tree t = MakeKary(9, 2);
  AggregationSystem::Options options;
  options.query_tier = true;
  options.ghost_logging = true;
  AggregationSystem sys(t, RwwFactory(), options);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 120, 11);
  std::vector<ServedQuery> served;
  std::int64_t serial = 0;
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      sys.Write(r.node, r.arg);
    } else {
      served.push_back(ServedQuery{r.node, sys.QueryNode(r.node), serial++});
    }
  }
  ASSERT_FALSE(served.empty());
  History history = sys.history();
  const auto ghosts = sys.GhostStates();
  LiftQueriesIntoHistory(&history, served, ghosts);
  EXPECT_EQ(history.size(), sys.history().size() + served.size());
  // The unmodified Section-5 causal checker vets the lifted reads exactly
  // as it vets mechanism combines.
  const CheckResult r =
      CheckCausalConsistency(history, ghosts, SumOp(), t.size());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(LiftQueriesIntoHistoryTest, CausalCheckerCatchesLiftedBogusAnswer) {
  Tree t = MakePath(3);
  AggregationSystem::Options options;
  options.query_tier = true;
  options.ghost_logging = true;
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Write(0, 2.0);
  ServedQuery bogus{1, sys.QueryNode(1), 0};
  bogus.answer.value += 1.0;  // corrupt the served value
  History history = sys.history();
  const auto ghosts = sys.GhostStates();
  LiftQueriesIntoHistory(&history, {bogus}, ghosts);
  const CheckResult r =
      CheckCausalConsistency(history, ghosts, SumOp(), t.size());
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace treeagg
