#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace treeagg {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    differs |= (a2.NextU64() != c.NextU64());
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BoolFrequencyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  Rng rng2(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.NextBool(0.0));
  }
}

}  // namespace
}  // namespace treeagg
