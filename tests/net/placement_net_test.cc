// Online re-placement over a live LocalCluster: traffic harvesting, node
// migration via the wire-v6 frames, and the invariants the subsystem
// promises — the Figure 2 message ledger and the served answers are
// bit-identical across a re-placement (the mechanism is placement-blind),
// a no-op re-placement sends no frame at all, and a rebalanced cluster
// survives kill/restart because the adopted map is durable.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "consistency/strict_checker.h"
#include "core/aggregate_op.h"
#include "net/cluster.h"
#include "net/local_cluster.h"
#include "place/placement.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(static_cast<std::size_t>(tree.size()));
  for (NodeId u = 1; u < tree.size(); ++u) {
    parent[static_cast<std::size_t>(u)] = tree.RootedParent(u);
  }
  return parent;
}

void ExpectSameAnswers(const NetRunResult& a, const NetRunResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const RequestRecord& ra = a.history.records()[i];
    const RequestRecord& rb = b.history.records()[i];
    EXPECT_EQ(ra.node, rb.node);
    EXPECT_EQ(ra.op, rb.op);
    EXPECT_EQ(ra.arg, rb.arg) << "request " << i;
    EXPECT_EQ(ra.retval, rb.retval) << "request " << i;
  }
}

void ExpectSameLedger(const NetRunResult& a, const NetRunResult& b) {
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.total_messages, b.total_messages);
  ExpectSameAnswers(a, b);
}

TEST(TrafficHarvestTest, CountsCrossAndLocalEdgeMessages) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 3;
  options.placement = "rr";
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 60, /*seed=*/7);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const std::vector<std::uint64_t> traffic = cluster.HarvestTraffic();
  ASSERT_EQ(traffic.size(), static_cast<std::size_t>(tree.size()));
  EXPECT_EQ(traffic[0], 0u);  // the root has no parent edge
  std::uint64_t total = 0;
  for (const std::uint64_t t : traffic) total += t;
  // Edge counters see every protocol message, local or cross-daemon, so
  // their sum is at least the cross-daemon total the driver observed.
  EXPECT_GT(total, 0u);
  EXPECT_GE(total, driver.TotalMessages());
  cluster.Stop();
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
}

TEST(RebalanceTest, NoOpReplacementSendsNothingAndPreservesTheLedger) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 60, /*seed=*/11);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";

  const NetRunResult plain =
      RunNetWorkload(ParentVector(tree), sigma, options, /*sequential=*/true);

  // Same run, but with an explicit no-op Rebalance in the middle: re-apply
  // the current map. Zero moves means zero frames — the ledger and every
  // served answer must be bit-identical to the undisturbed run.
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();
  NetRunResult noop;
  std::size_t done = 0;
  for (const Request& r : sigma) {
    const ReqId id = r.op == ReqType::kWrite
                         ? driver.InjectWrite(r.node, r.arg)
                         : driver.InjectCombine(r.node);
    driver.WaitCompleted(id);
    driver.WaitQuiescent();
    if (++done == sigma.size() / 2) {
      EXPECT_EQ(cluster.Rebalance(cluster.config().node_daemon), 0u);
    }
  }
  driver.WaitQuiescent();
  const NetDriver::HarvestResult harvest = driver.Harvest();
  noop.counts = harvest.counts;
  noop.total_messages = driver.TotalMessages();
  noop.history = driver.history();
  cluster.Stop();
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();

  ExpectSameLedger(plain, noop);
}

TEST(RebalanceTest, LiveReplacementServesIdenticalAnswers) {
  // The tentpole invariant: migrating nodes between daemons mid-run must
  // not change WHAT the mechanism computes, only WHERE nodes execute.
  // Sequential injection makes both runs deterministic, so every served
  // answer must match the undisturbed run exactly. The Figure 2 message
  // counts are NOT compared: RWW's lease timers (the paper's u.lt[v]) are
  // per-incarnation policy state, so a migrated node may release and
  // re-probe leases on a different cadence — exactly as after a crash
  // restart. Only the no-op re-placement promises a bit-identical ledger
  // (previous test).
  const Tree tree = MakeShape("kary2", 31, /*seed=*/1);
  const RequestSequence sigma =
      MakeWorkload("mixed50", tree, 120, /*seed=*/13);
  LocalCluster::Options options;
  options.daemons = 3;
  options.placement = "rr";

  const NetRunResult plain =
      RunNetWorkload(ParentVector(tree), sigma, options, /*sequential=*/true);
  const NetRunResult replaced =
      RunNetWorkload(ParentVector(tree), sigma, options, /*sequential=*/true,
                     ProbeVia::kMechanism, /*replace_after=*/sigma.size() / 2);

  EXPECT_GT(replaced.nodes_moved, 0u);
  ExpectSameAnswers(plain, replaced);

  const AggregateOp& op = OpByName("sum");
  const CheckResult strict =
      CheckStrictConsistency(replaced.history, op, tree.size());
  EXPECT_TRUE(strict.ok) << strict.message;
  const CheckResult causal = CheckCausalConsistency(
      replaced.history, replaced.ghosts, op, tree.size());
  EXPECT_TRUE(causal.ok) << causal.message;
}

TEST(RebalanceTest, OptimizedPlacementReducesCrossWeight) {
  // Pipelined skewed workload; the mid-run optimizer should find a strictly
  // cheaper placement than round-robin and report consistent scores.
  const Tree tree = MakeShape("kary2", 63, /*seed=*/1);
  const RequestSequence sigma =
      MakeWorkload("writeheavy", tree, 400, /*seed=*/3);
  LocalCluster::Options options;
  options.daemons = 4;
  options.placement = "rr";
  const NetRunResult result =
      RunNetWorkload(ParentVector(tree), sigma, options, /*sequential=*/false,
                     ProbeVia::kMechanism, /*replace_after=*/200);
  EXPECT_GT(result.nodes_moved, 0u);
  EXPECT_LT(result.cross_weight_after, result.cross_weight_before);
  EXPECT_TRUE(result.history.AllCompleted());
  const CheckResult causal = CheckCausalConsistency(
      result.history, result.ghosts, OpByName("sum"), tree.size());
  EXPECT_TRUE(causal.ok) << causal.message;
}

TEST(RebalanceTest, ExplicitAssignmentOptionSeedsTheCluster) {
  // An optimized plan handed to a fresh cluster via Options.assignment is
  // the offline half of the re-placement story.
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const std::vector<NodeId> parent = ParentVector(tree);
  std::vector<std::uint64_t> weight(parent.size(), 1);
  weight[0] = 0;
  const place::PlacementPlan plan =
      place::OptimizePlacement(parent, weight, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 60, /*seed=*/5);
  LocalCluster::Options options;
  options.daemons = 2;
  options.assignment = plan.node_daemon;
  const NetRunResult result =
      RunNetWorkload(parent, sigma, options, /*sequential=*/true);
  EXPECT_TRUE(result.history.AllCompleted());
  const CheckResult strict =
      CheckStrictConsistency(result.history, OpByName("sum"), tree.size());
  EXPECT_TRUE(strict.ok) << strict.message;
}

TEST(RebalanceTest, RejectsWrongSizeAssignment) {
  const Tree tree = MakeShape("path", 6, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 2;
  options.assignment = {0, 0, 1};  // tree has 6 nodes
  EXPECT_THROW(LocalCluster(ParentVector(tree), options),
               std::invalid_argument);
}

TEST(RebalanceTest, RebalancedClusterSurvivesKillRestart) {
  // After a migration the new map must be durable: a killed-and-restarted
  // daemon adopts the post-migration assignment from its restored state
  // instead of the boot-time config.
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const std::vector<NodeId> parent = ParentVector(tree);
  LocalCluster::Options options;
  options.daemons = 3;
  options.placement = "rr";
  LocalCluster cluster(parent, options);
  NetDriver& driver = cluster.driver();

  const RequestSequence sigma = MakeWorkload("mixed50", tree, 90, /*seed=*/9);
  std::size_t done = 0;
  for (const Request& r : sigma) {
    const ReqId id = r.op == ReqType::kWrite
                         ? driver.InjectWrite(r.node, r.arg)
                         : driver.InjectCombine(r.node);
    driver.WaitCompleted(id);
    driver.WaitQuiescent();
    ++done;
    if (done == 30) {
      const std::vector<std::uint64_t> traffic = cluster.HarvestTraffic();
      const place::PlacementPlan plan =
          place::OptimizePlacement(parent, traffic, options.daemons);
      cluster.Rebalance(plan.node_daemon);
    } else if (done == 60) {
      cluster.KillDaemon(1);
      cluster.RestartDaemon(1);
    }
  }
  driver.WaitQuiescent();
  const NetDriver::HarvestResult harvest = driver.Harvest();
  cluster.Stop();
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
  EXPECT_TRUE(driver.history().AllCompleted());
  const CheckResult causal = CheckCausalConsistency(
      driver.history(), harvest.ghosts, OpByName("sum"), tree.size());
  EXPECT_TRUE(causal.ok) << causal.message;
}

TEST(RebalanceTest, SnapshotQueriesStayCoherentAcrossMigration) {
  // The read tier rides the same slots the migration rebuilds: epochs must
  // stay monotone per connection and the served values must validate.
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const std::vector<NodeId> parent = ParentVector(tree);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";
  LocalCluster cluster(parent, options);
  NetDriver& driver = cluster.driver();

  driver.InjectWrite(3, 2.5);
  driver.InjectWrite(7, 1.5);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const query::QueryAnswer before = driver.QueryNode(3);
  EXPECT_EQ(before.value, 2.5);

  // Move everything to daemon 0, then everything to daemon 1.
  std::vector<int> all0(parent.size(), 0);
  std::vector<int> all1(parent.size(), 1);
  EXPECT_GT(cluster.Rebalance(all0), 0u);
  const query::QueryAnswer mid = driver.QueryNode(3);
  EXPECT_EQ(mid.value, 2.5);
  EXPECT_GT(cluster.Rebalance(all1), 0u);
  const query::QueryAnswer after = driver.QueryNode(3);
  EXPECT_EQ(after.value, 2.5);

  // The moved node keeps serving writes on its new daemon (a write
  // assigns the node's value).
  driver.InjectWrite(3, 1.0);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  EXPECT_EQ(driver.QueryNode(3).value, 1.0);
  cluster.Stop();
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
}

}  // namespace
}  // namespace treeagg
