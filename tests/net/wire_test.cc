// treeagg-wire-v5 codec tests: exhaustive encode -> decode round-trips
// over every frame type (including the ghost-log piggyback on protocol
// messages, the v4 kBatch coalescing frame, and the v5 kQuery/kQueryResp
// read-tier frames) and a malformed-frame corpus — truncations at every
// byte boundary, corrupted length prefixes, bad magic/version/type bytes,
// and internally inconsistent payloads — all of which must be rejected
// with a DecodeStatus, never a crash. The corpus is extended through the
// shared frame mutators of net/faulty_transport.h, so the bytes rejected
// here are byte-identical to what the live chaos injector puts on the
// wire. Back-compat sections pin the v2 through v4 dialects: older
// encodes still round-trip (ackless v2 hellos, no kPeerAck below v3, no
// kBatch below v4, no query frames below v5), a frame claiming a type
// newer than its version byte is rejected, and a live WireV4Interop fake
// peer verifies a v4 peer session of a real daemon never carries query
// frames. The whole file runs under ASan/UBSan and TSan in CI.
#include "net/wire.h"

#include <gtest/gtest.h>
#include <poll.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/daemon.h"
#include "net/faulty_transport.h"
#include "net/transport.h"

namespace treeagg {
namespace {

Message RichMessage() {
  Message m;
  m.type = MsgType::kRelease;
  m.from = 3;
  m.to = 7;
  m.x = -12.625;
  m.flag = true;
  m.id = 1234567890123ll;
  m.release_ids.push_back(5);
  m.release_ids.push_back(-1);
  m.release_ids.push_back(99);
  auto log = std::make_shared<GhostLog>();
  log->push_back({0, 2});
  log->push_back({41, 0});
  m.wlog = std::move(log);
  return m;
}

// One representative of every frame type, with every optional field
// exercised (non-empty gather, wlog piggyback, multi-node harvest).
std::vector<WireFrame> AllFrameTypes() {
  std::vector<WireFrame> frames;
  {
    WireFrame f;
    f.type = FrameType::kPeerHello;
    f.daemon_id = 3;
    f.resume = 41;  // session-resume count
    f.ack = 17;     // v3 piggybacked cumulative ack
    f.ack_valid = true;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kPeerAck;
    f.ack = 123456789ull;
    f.ack_valid = true;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kDriverHello;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kProtocol;
    f.msg = RichMessage();
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kProtocol;  // minimal message: no wlog, empty S
    f.msg.type = MsgType::kProbe;
    f.msg.from = 0;
    f.msg.to = 1;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kInjectWrite;
    f.req = 17;
    f.node = 4;
    f.arg = 2.5;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kInjectCombine;
    f.req = 18;
    f.node = 0;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kWriteDone;
    f.req = 17;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kCombineDone;
    f.req = 18;
    f.value = -7.75;
    f.gather = {{0, 3}, {2, 11}, {5, -1}};
    f.log_prefix = 6;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kStatusReq;
    f.status.probe = 42;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kStatusResp;
    f.status = {42, 1000, 998, 2};
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kHarvestReq;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kHarvestResp;
    NodeLogPayload a;
    a.node = 0;
    a.log = {{1, 0}, {3, 2}};
    NodeLogPayload b;
    b.node = 2;  // empty log
    f.harvest.logs = {a, b};
    f.harvest.counts = {10, 9, 4, 1};
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kShutdown;
    frames.push_back(f);
  }
  {
    WireFrame f;  // v4 coalescing frame: several messages, one wrapper
    f.type = FrameType::kBatch;
    f.batch.push_back(RichMessage());
    Message tiny;
    tiny.type = MsgType::kProbe;
    tiny.from = 1;
    tiny.to = 0;
    f.batch.push_back(tiny);
    f.batch.push_back(RichMessage());
    frames.push_back(f);
  }
  {
    WireFrame f;  // v5 read-tier request
    f.type = FrameType::kQuery;
    f.req = 21;
    f.node = 6;
    frames.push_back(f);
  }
  {
    WireFrame f;  // v5 read-tier answer
    f.type = FrameType::kQueryResp;
    f.req = 21;
    f.node = 6;
    f.epoch = 987654321012ull;
    f.value = -3.125;
    f.log_prefix = 42;
    frames.push_back(f);
  }
  {
    WireFrame f;  // v6 traffic harvest
    f.type = FrameType::kTrafficReq;
    f.req = 30;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kTrafficResp;
    f.req = 30;
    f.traffic = {{1, 1057}, {5, 12}, {99, 18446744073709551615ull}};
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kTrafficResp;  // idle daemon: no nonzero edges
    f.req = 31;
    frames.push_back(f);
  }
  {
    WireFrame f;  // v6 migration conversation
    f.type = FrameType::kMigrateOut;
    f.req = 32;
    f.node = 7;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kMigrateState;
    f.req = 32;
    f.node = 7;
    f.resume = 1;  // hosted flag
    f.epoch = 4242;
    f.blob = {0x01, 0x00, 0xFF, 0x7E, 0x00, 0x10};
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kMigrateState;  // retry after the commit: no state
    f.req = 33;
    f.node = 7;
    f.resume = 0;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kMigrateIn;
    f.req = 34;
    f.node = 7;
    f.epoch = 4242;
    f.blob = {0x01, 0x00, 0xFF};
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kMigrateCommit;
    f.req = 35;
    f.node = 7;
    f.daemon_id = 2;  // the new owner
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kMigrateDone;
    f.req = 35;
    frames.push_back(f);
  }
  {
    WireFrame f;
    f.type = FrameType::kPlacementUpdate;
    f.req = 36;
    f.moves = {{0, 0}, {7, 2}, {8, 1}};
    frames.push_back(f);
  }
  return frames;
}

// Frame types an endpoint speaking `version` may emit.
bool InDialect(FrameType t, std::uint8_t version) {
  if (static_cast<int>(t) >= static_cast<int>(FrameType::kTrafficReq)) {
    return version >= 6;
  }
  if (t == FrameType::kQuery || t == FrameType::kQueryResp) {
    return version >= 5;
  }
  if (t == FrameType::kBatch) return version >= 4;
  if (t == FrameType::kPeerAck) return version >= 3;
  return true;
}

TEST(WireCodec, RoundTripsEveryFrameType) {
  for (const WireFrame& frame : AllFrameTypes()) {
    SCOPED_TRACE(ToString(frame.type));
    const std::vector<std::uint8_t> bytes = EncodeFrame(frame);
    const DecodeResult r = DecodeFrame(bytes.data(), bytes.size());
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(r.consumed, bytes.size());
    EXPECT_TRUE(FramesEqual(r.frame, frame));
  }
}

TEST(WireCodec, RoundTripsThroughFrameReaderByteByByte) {
  // Concatenate all frames and feed one byte at a time: the incremental
  // reader must produce exactly the input sequence.
  const std::vector<WireFrame> frames = AllFrameTypes();
  std::vector<std::uint8_t> stream;
  for (const WireFrame& f : frames) AppendFrame(&stream, f);

  FrameReader reader;
  std::vector<WireFrame> decoded;
  WireFrame frame;
  for (const std::uint8_t byte : stream) {
    reader.Feed(&byte, 1);
    while (reader.Next(&frame) == DecodeStatus::kOk) {
      decoded.push_back(frame);
      frame = WireFrame{};
    }
  }
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(FramesEqual(decoded[i], frames[i]));
  }
  EXPECT_EQ(reader.BufferedBytes(), 0u);
}

TEST(WireCodec, TruncationAtEveryBoundaryIsNeedMoreNeverACrash) {
  for (const WireFrame& frame : AllFrameTypes()) {
    SCOPED_TRACE(ToString(frame.type));
    const std::vector<std::uint8_t> bytes = EncodeFrame(frame);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const DecodeResult r = DecodeFrame(bytes.data(), len);
      EXPECT_EQ(r.status, DecodeStatus::kNeedMore) << "prefix length " << len;
    }
  }
}

std::vector<std::uint8_t> ValidBytes() {
  WireFrame f;
  f.type = FrameType::kStatusReq;
  f.status.probe = 7;
  return EncodeFrame(f);
}

TEST(WireCodec, RejectsOversizedLengthPrefix) {
  std::vector<std::uint8_t> bytes = ValidBytes();
  const std::uint32_t huge = kMaxFrameLen + 1;
  bytes[0] = static_cast<std::uint8_t>(huge);
  bytes[1] = static_cast<std::uint8_t>(huge >> 8);
  bytes[2] = static_cast<std::uint8_t>(huge >> 16);
  bytes[3] = static_cast<std::uint8_t>(huge >> 24);
  // Rejected from the prefix alone — no waiting for a body that will
  // never arrive, no giant allocation.
  EXPECT_EQ(DecodeFrame(bytes.data(), 4).status, DecodeStatus::kBadLength);
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadLength);
}

TEST(WireCodec, RejectsUndersizedLengthPrefix) {
  std::vector<std::uint8_t> bytes = ValidBytes();
  bytes[0] = 2;  // body must cover at least magic + version + type
  bytes[1] = bytes[2] = bytes[3] = 0;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadLength);
}

TEST(WireCodec, RejectsBadMagicByte) {
  std::vector<std::uint8_t> bytes = ValidBytes();
  bytes[4] = 0x00;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadMagic);
  // Detected as soon as the magic byte is available.
  EXPECT_EQ(DecodeFrame(bytes.data(), 5).status, DecodeStatus::kBadMagic);
}

TEST(WireCodec, RejectsBadVersionByte) {
  std::vector<std::uint8_t> bytes = ValidBytes();
  bytes[5] = kWireVersion + 1;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadVersion);
  EXPECT_EQ(DecodeFrame(bytes.data(), 6).status, DecodeStatus::kBadVersion);
}

TEST(WireCodec, RejectsBadFrameType) {
  std::vector<std::uint8_t> bytes = ValidBytes();
  bytes[6] = static_cast<std::uint8_t>(FrameType::kPlacementUpdate) + 1;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadType);
}

// --- wire v2 back-compat ------------------------------------------------
// A v3 endpoint must keep decoding the v2 dialect (ackless hellos, no
// kPeerAck) and must encode it on demand — the daemon downgrades a peer
// connection to v2 when the peer's hello spoke v2.

TEST(WireV2Compat, V2EncodesRoundTripForEveryV2FrameType) {
  for (const WireFrame& frame : AllFrameTypes()) {
    if (!InDialect(frame.type, 2)) continue;  // v3+-only types
    SCOPED_TRACE(ToString(frame.type));
    const std::vector<std::uint8_t> bytes = EncodeFrame(frame, 2);
    EXPECT_EQ(bytes[5], 2u);  // version byte
    const DecodeResult r = DecodeFrame(bytes.data(), bytes.size());
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(r.consumed, bytes.size());
    // Everything except the v3-only ack fields survives.
    WireFrame expect = frame;
    expect.ack = 0;
    expect.ack_valid = false;
    EXPECT_TRUE(FramesEqual(r.frame, expect));
  }
}

TEST(WireV2Compat, V2HelloDecodesWithoutAck) {
  WireFrame hello;
  hello.type = FrameType::kPeerHello;
  hello.daemon_id = 1;
  hello.resume = 9;
  hello.ack = 999;  // dropped by the v2 encode
  hello.ack_valid = true;
  const std::vector<std::uint8_t> bytes = EncodeFrame(hello, 2);
  const DecodeResult r = DecodeFrame(bytes.data(), bytes.size());
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.frame.resume, 9u);
  EXPECT_FALSE(r.frame.ack_valid);
  EXPECT_EQ(r.frame.ack, 0u);
}

TEST(WireV2Compat, PeerAckInAV2FrameIsABadType) {
  // kPeerAck did not exist in v2; a v2 frame claiming it is malformed,
  // not a forward reference.
  WireFrame ack;
  ack.type = FrameType::kPeerAck;
  ack.ack = 5;
  ack.ack_valid = true;
  std::vector<std::uint8_t> bytes = EncodeFrame(ack);
  bytes[5] = 2;  // rewrite the version byte: v2 framing, v3-only type
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadType);
}

TEST(WireV2Compat, VersionOneIsRejectedNotGrandfathered) {
  std::vector<std::uint8_t> bytes = ValidBytes();
  bytes[5] = 1;  // below kWireMinVersion
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadVersion);
}

// --- wire v3 back-compat and the v4 kBatch frame ------------------------
// A v4 endpoint encodes each peer session at min(kWireVersion, peer hello
// version): v3 sessions keep acks but never see kBatch.

TEST(WireV3Compat, V3EncodesRoundTripForEveryV3FrameType) {
  for (const WireFrame& frame : AllFrameTypes()) {
    if (!InDialect(frame.type, 3)) continue;  // kBatch is v4-only
    SCOPED_TRACE(ToString(frame.type));
    const std::vector<std::uint8_t> bytes = EncodeFrame(frame, 3);
    EXPECT_EQ(bytes[5], 3u);  // version byte
    const DecodeResult r = DecodeFrame(bytes.data(), bytes.size());
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(r.consumed, bytes.size());
    EXPECT_EQ(r.frame.wire_version, 3u);
    EXPECT_TRUE(FramesEqual(r.frame, frame));
  }
}

TEST(WireV4Batch, DecoderExposesTheFrameVersionByte) {
  // Session dialect negotiation reads the hello's version off the decoded
  // frame; pin that the codec surfaces it for every dialect.
  WireFrame hello;
  hello.type = FrameType::kPeerHello;
  hello.daemon_id = 1;
  hello.resume = 3;
  hello.ack = 2;
  hello.ack_valid = true;
  for (const std::uint8_t v : {std::uint8_t{3}, kWireVersion}) {
    const std::vector<std::uint8_t> bytes = EncodeFrame(hello, v);
    const DecodeResult r = DecodeFrame(bytes.data(), bytes.size());
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(r.frame.wire_version, v);
  }
  const std::vector<std::uint8_t> v2 = EncodeFrame(hello, 2);
  const DecodeResult r2 = DecodeFrame(v2.data(), v2.size());
  ASSERT_EQ(r2.status, DecodeStatus::kOk);
  EXPECT_EQ(r2.frame.wire_version, 2u);
}

std::vector<std::uint8_t> ValidBatchBytes() {
  WireFrame f;
  f.type = FrameType::kBatch;
  f.batch.push_back(RichMessage());
  Message tiny;
  tiny.type = MsgType::kUpdate;
  tiny.from = 0;
  tiny.to = 1;
  tiny.x = 4.25;
  f.batch.push_back(tiny);
  return EncodeFrame(f);
}

TEST(WireV4Batch, BatchInAV3FrameIsABadType) {
  // kBatch did not exist below v4; an older frame claiming it is
  // malformed, not a forward reference.
  std::vector<std::uint8_t> bytes = ValidBatchBytes();
  for (const std::uint8_t v : {std::uint8_t{3}, std::uint8_t{2}}) {
    bytes[5] = v;  // rewrite the version byte: old framing, v4-only type
    EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
              DecodeStatus::kBadType);
  }
}

TEST(WireV4Batch, RejectsCountExceedingPayload) {
  // The element count (first payload field, bytes 7..10) corrupted to a
  // value the remaining bytes cannot hold: must fail cleanly, without a
  // count-driven allocation.
  std::vector<std::uint8_t> bytes = ValidBatchBytes();
  bytes[7] = 0xFF;
  bytes[8] = 0xFF;
  bytes[9] = 0xFF;
  bytes[10] = 0x7F;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireV4Batch, RejectsCountSmallerThanPayload) {
  // Fewer elements than the payload holds: the trailing message bytes are
  // inconsistent, not ignorable padding.
  std::vector<std::uint8_t> bytes = ValidBatchBytes();
  bytes[7] = 1;  // claim one message; two are encoded
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireV4Batch, RejectsTruncatedLastElement) {
  // Chop the last element's final byte and fix up the length prefix:
  // framing coherent, last message short.
  std::vector<std::uint8_t> bytes = ValidBatchBytes();
  bytes.pop_back();
  const std::uint32_t body_len = static_cast<std::uint32_t>(bytes.size()) - 4;
  bytes[0] = static_cast<std::uint8_t>(body_len);
  bytes[1] = static_cast<std::uint8_t>(body_len >> 8);
  bytes[2] = static_cast<std::uint8_t>(body_len >> 16);
  bytes[3] = static_cast<std::uint8_t>(body_len >> 24);
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireV4Batch, RejectsBadEnumInsideAnElement) {
  // Corrupt the second element's message-type byte (first byte after the
  // first encoded message): per-element validation must fire.
  WireFrame one;
  one.type = FrameType::kBatch;
  one.batch.push_back(RichMessage());
  const std::size_t first_len = EncodeFrame(one).size() - 11;  // element size
  std::vector<std::uint8_t> bytes = ValidBatchBytes();
  bytes[11 + first_len] = 17;  // not a MsgType
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireV4Batch, EmptyBatchRoundTrips) {
  // The transport never emits an empty batch, but the codec accepts one —
  // a zero count with no payload is internally consistent.
  WireFrame f;
  f.type = FrameType::kBatch;
  const std::vector<std::uint8_t> bytes = EncodeFrame(f);
  const DecodeResult r = DecodeFrame(bytes.data(), bytes.size());
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_TRUE(r.frame.batch.empty());
}

// --- wire v5 query frames -----------------------------------------------
// kQuery/kQueryResp are the v5 read-tier dialect: driver-or-client-facing
// only, never part of a peer session.

std::vector<std::uint8_t> ValidQueryBytes(FrameType type) {
  WireFrame f;
  f.type = type;
  f.req = 5;
  f.node = 3;
  if (type == FrameType::kQueryResp) {
    f.epoch = 77;
    f.value = 1.5;
    f.log_prefix = 9;
  }
  return EncodeFrame(f);
}

TEST(WireV5Query, QueryFramesBelowV5AreABadType) {
  // Query frames did not exist below v5; an older frame claiming type 14
  // or 15 is malformed, not a forward reference.
  for (const FrameType t : {FrameType::kQuery, FrameType::kQueryResp}) {
    std::vector<std::uint8_t> bytes = ValidQueryBytes(t);
    for (const std::uint8_t v :
         {std::uint8_t{4}, std::uint8_t{3}, std::uint8_t{2}}) {
      bytes[5] = v;  // rewrite the version byte: old framing, v5-only type
      EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
                DecodeStatus::kBadType)
          << ToString(t) << " at v" << int{v};
    }
  }
}

TEST(WireV5Query, TruncatedQueryFramesAreBadPayload) {
  // The shared chaos mutator over both query frame types: framing
  // coherent, payload short by 1..8 bytes.
  for (const FrameType t : {FrameType::kQuery, FrameType::kQueryResp}) {
    WireFrame f;
    f.type = t;
    f.req = 5;
    f.node = 3;
    f.epoch = 77;
    f.value = 1.5;
    f.log_prefix = 9;
    for (std::size_t cut = 1; cut <= 8; ++cut) {
      const std::vector<std::uint8_t> bytes = TruncatedFrame(f, cut);
      EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
                DecodeStatus::kBadPayload)
          << ToString(t) << " cut " << cut;
    }
  }
}

TEST(WireV5Query, OversizedQueryFramesAreBadLength) {
  for (const FrameType t : {FrameType::kQuery, FrameType::kQueryResp}) {
    WireFrame f;
    f.type = t;
    f.req = 5;
    f.node = 3;
    const std::vector<std::uint8_t> bytes = OversizedLengthFrame(f);
    EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
              DecodeStatus::kBadLength)
        << ToString(t);
  }
}

TEST(WireV5Query, QueryRespWithTrailingBytesIsBadPayload) {
  std::vector<std::uint8_t> bytes = ValidQueryBytes(FrameType::kQueryResp);
  bytes.push_back(0xAB);
  const std::uint32_t body_len = static_cast<std::uint32_t>(bytes.size()) - 4;
  bytes[0] = static_cast<std::uint8_t>(body_len);
  bytes[1] = static_cast<std::uint8_t>(body_len >> 8);
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

// --- wire v6 placement / migration frames --------------------------------
// The eight v6 types ride driver connections only; a sub-v6 frame claiming
// one of their type bytes is malformed, not a forward reference, which is
// what keeps per-session downgrade airtight.

TEST(WireV6Placement, V6TypesBelowV6AreABadType) {
  for (const WireFrame& frame : AllFrameTypes()) {
    if (InDialect(frame.type, 5)) continue;  // only the v6-only types
    std::vector<std::uint8_t> bytes = EncodeFrame(frame);
    for (const std::uint8_t v : {std::uint8_t{5}, std::uint8_t{4},
                                 std::uint8_t{3}, std::uint8_t{2}}) {
      bytes[5] = v;  // rewrite the version byte: old framing, v6-only type
      EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
                DecodeStatus::kBadType)
          << ToString(frame.type) << " at v" << int{v};
    }
  }
}

TEST(WireV6Placement, RejectsTrafficCountExceedingPayload) {
  WireFrame f;
  f.type = FrameType::kTrafficResp;
  f.req = 1;
  f.traffic = {{1, 5}, {2, 9}};
  std::vector<std::uint8_t> bytes = EncodeFrame(f);
  // The entry count is the first field after req: offset 7 + 8 = 15.
  bytes[15] = 0xFF;
  bytes[16] = 0xFF;
  bytes[17] = 0xFF;
  bytes[18] = 0x7F;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireV6Placement, RejectsMovesCountExceedingPayload) {
  WireFrame f;
  f.type = FrameType::kPlacementUpdate;
  f.req = 1;
  f.moves = {{0, 0}, {3, 1}};
  std::vector<std::uint8_t> bytes = EncodeFrame(f);
  bytes[15] = 0xFF;
  bytes[16] = 0xFF;
  bytes[17] = 0xFF;
  bytes[18] = 0x7F;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireV6Placement, RejectsBlobLengthExceedingPayload) {
  WireFrame f;
  f.type = FrameType::kMigrateIn;
  f.req = 1;
  f.node = 3;
  f.epoch = 9;
  f.blob = {0xAA, 0xBB, 0xCC};
  std::vector<std::uint8_t> bytes = EncodeFrame(f);
  // blob length sits after req(8) + node(4) + epoch(8): offset 7 + 20 = 27.
  bytes[27] = 0xFF;
  bytes[28] = 0xFF;
  bytes[29] = 0xFF;
  bytes[30] = 0x7F;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireV6Placement, MigrateStateRoundTripsAnEmptyBlob) {
  // The not-hosted retry answer carries resume=0 and no state bytes.
  WireFrame f;
  f.type = FrameType::kMigrateState;
  f.req = 8;
  f.node = 2;
  f.resume = 0;
  const std::vector<std::uint8_t> bytes = EncodeFrame(f);
  const DecodeResult r = DecodeFrame(bytes.data(), bytes.size());
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_TRUE(r.frame.blob.empty());
  EXPECT_EQ(r.frame.resume, 0u);
}

// --- WireV4Interop: raw-socket fake v4 peer against a live daemon -------
// The fake peer plays daemon 1 of a two-daemon cluster over a real TCP
// socket, answering the resume handshake with a v4 hello so the daemon
// downgrades the session. While a mechanism combine crosses the link and
// a read-tier client is served kQueryResp frames, every frame the v4
// session carries must be v4-dialect — query frames stay off peer
// sessions entirely.

// Polls conn until the next frame arrives (gtest-fails on timeout/EOF).
bool NextFrameBlocking(FrameConn* conn, WireFrame* frame,
                       std::int64_t timeout_ms = 10000) {
  const std::int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const DecodeStatus status = conn->NextFrame(frame);
    if (status == DecodeStatus::kOk) return true;
    if (status != DecodeStatus::kNeedMore) {
      ADD_FAILURE() << "decode failed: " << ToString(status);
      return false;
    }
    if (NowMs() >= deadline) {
      ADD_FAILURE() << "timed out waiting for a frame";
      return false;
    }
    pollfd pfd{conn->fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    if (!conn->ReadAvailable()) {
      ADD_FAILURE() << "connection dropped: " << conn->error();
      return false;
    }
  }
}

void FlushBlocking(FrameConn* conn) {
  while (conn->open() && conn->WantWrite()) {
    if (!conn->Flush()) return;
    if (conn->WantWrite()) {
      pollfd pfd{conn->fd(), POLLOUT, 0};
      ::poll(&pfd, 1, 10);
    }
  }
}

TEST(WireV4Interop, V4PeerSessionNeverSeesQueryFrames) {
  ClusterConfig config;
  config.tree_parent = {0, 0};  // node 1's parent is node 0
  config.node_daemon = {0, 1};  // the test plays daemon 1
  config.ghost_logging = true;
  TcpListener fake_listener = TcpListener::Bind("127.0.0.1", 0);
  config.daemons = {{"127.0.0.1", 0}, {"127.0.0.1", fake_listener.port()}};
  config.Validate();

  NodeDaemon daemon(0, config);
  daemon.Bind();
  daemon.SetResolvedPorts({daemon.BoundPort(), fake_listener.port()});
  std::thread run([&daemon] { daemon.Run(); });

  const TransportOptions transport;
  // Daemon 0 has the smaller id, so it initiates the peer connection.
  ScopedFd accepted;
  const std::int64_t accept_deadline = NowMs() + 10000;
  while (!accepted.valid() && NowMs() < accept_deadline) {
    pollfd pfd{fake_listener.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    accepted = fake_listener.Accept();
  }
  ASSERT_TRUE(accepted.valid()) << "daemon never connected to the fake peer";
  FrameConn peer(std::move(accepted), transport);

  // The initiating hello is sent before the daemon knows our dialect, so
  // it speaks the current version; everything after must be v4.
  WireFrame frame;
  ASSERT_TRUE(NextFrameBlocking(&peer, &frame));
  ASSERT_EQ(frame.type, FrameType::kPeerHello);
  EXPECT_EQ(frame.daemon_id, 0u);
  EXPECT_EQ(frame.wire_version, kWireVersion);

  peer.set_wire_version(4);  // our hello reply downgrades the session
  WireFrame hello;
  hello.type = FrameType::kPeerHello;
  hello.daemon_id = 1;
  hello.resume = 0;
  hello.ack = 0;
  hello.ack_valid = true;
  peer.SendFrame(hello);
  FlushBlocking(&peer);

  // Drive one write and one mechanism combine at node 0 over a raw driver
  // connection. The combine probes node 1 across the (now v4) session.
  std::string err;
  ScopedFd driver_fd = ConnectWithBackoff("127.0.0.1", daemon.BoundPort(),
                                          transport, &err);
  ASSERT_TRUE(driver_fd.valid()) << err;
  FrameConn driver(std::move(driver_fd), transport);
  WireFrame f;
  f.type = FrameType::kDriverHello;
  driver.SendFrame(f);
  f = WireFrame{};
  f.type = FrameType::kInjectWrite;
  f.req = 1;
  f.node = 0;
  f.arg = 2.5;
  driver.SendFrame(f);
  f = WireFrame{};
  f.type = FrameType::kInjectCombine;
  f.req = 2;
  f.node = 0;
  driver.SendFrame(f);
  FlushBlocking(&driver);

  // Every frame the peer session carries from here on must be v4-dialect.
  std::vector<WireFrame> peer_frames;
  bool saw_probe = false;
  while (!saw_probe) {
    ASSERT_TRUE(NextFrameBlocking(&peer, &frame)) << "no probe crossed";
    EXPECT_EQ(frame.wire_version, 4u) << ToString(frame.type);
    EXPECT_NE(frame.type, FrameType::kQuery);
    EXPECT_NE(frame.type, FrameType::kQueryResp);
    EXPECT_LE(static_cast<int>(frame.type),
              static_cast<int>(FrameType::kBatch));
    if (frame.type == FrameType::kProtocol &&
        frame.msg.type == MsgType::kProbe) {
      saw_probe = true;
      EXPECT_EQ(frame.msg.from, 0);
      EXPECT_EQ(frame.msg.to, 1);
    }
    peer_frames.push_back(frame);
    frame = WireFrame{};
  }

  // Answer the probe so the combine completes: node 1 contributes 0.
  WireFrame resp;
  resp.type = FrameType::kProtocol;
  resp.msg.type = MsgType::kResponse;
  resp.msg.from = 1;
  resp.msg.to = 0;
  resp.msg.x = 0.0;
  resp.msg.flag = true;
  peer.SendFrame(resp);
  FlushBlocking(&peer);

  // Drain the driver: the write and the combine (value = node 0's write).
  bool write_done = false, combine_done = false;
  while (!(write_done && combine_done)) {
    ASSERT_TRUE(NextFrameBlocking(&driver, &frame));
    if (frame.type == FrameType::kWriteDone && frame.req == 1) {
      write_done = true;
    } else if (frame.type == FrameType::kCombineDone && frame.req == 2) {
      combine_done = true;
      EXPECT_EQ(frame.value, 2.5);
    }
    frame = WireFrame{};
  }

  // A read-tier client is served concurrently with the live v4 session —
  // the kQueryResp rides the client connection, never the peer session.
  ScopedFd query_fd = ConnectWithBackoff("127.0.0.1", daemon.BoundPort(),
                                         transport, &err);
  ASSERT_TRUE(query_fd.valid()) << err;
  FrameConn query(std::move(query_fd), transport);
  f = WireFrame{};
  f.type = FrameType::kQuery;
  f.req = 1;
  f.node = 0;
  query.SendFrame(f);
  FlushBlocking(&query);
  ASSERT_TRUE(NextFrameBlocking(&query, &frame));
  EXPECT_EQ(frame.type, FrameType::kQueryResp);
  EXPECT_EQ(frame.node, 0);
  EXPECT_GE(frame.epoch, 1u);
  EXPECT_EQ(frame.value, 2.5);
  EXPECT_EQ(frame.log_prefix, 1);  // node 0's ghost log holds its write

  // Give the session a beat to flush anything else, then re-assert the
  // whole capture stayed query-free.
  const std::int64_t settle = NowMs() + 200;
  while (NowMs() < settle) {
    pollfd pfd{peer.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    if (!peer.ReadAvailable()) break;
    while (peer.NextFrame(&frame) == DecodeStatus::kOk) {
      peer_frames.push_back(frame);
      frame = WireFrame{};
    }
  }
  for (const WireFrame& pf : peer_frames) {
    EXPECT_NE(pf.type, FrameType::kQuery);
    EXPECT_NE(pf.type, FrameType::kQueryResp);
    EXPECT_EQ(pf.wire_version, 4u) << ToString(pf.type);
  }

  daemon.RequestStop();
  run.join();
  EXPECT_EQ(daemon.error(), "");
}

TEST(WireCodec, RejectsTrailingPayloadBytes) {
  // A frame whose body is longer than its payload needs is internally
  // inconsistent, not "extra room".
  std::vector<std::uint8_t> bytes = ValidBytes();
  bytes.push_back(0xFF);
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(bytes.size()) - 4;
  bytes[0] = static_cast<std::uint8_t>(body_len);
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireCodec, RejectsTruncatedPayloadWithConsistentLength) {
  // Chop the last payload byte and fix up the length prefix: framing is
  // coherent, the payload itself is short.
  std::vector<std::uint8_t> bytes = ValidBytes();
  bytes.pop_back();
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(bytes.size()) - 4;
  bytes[0] = static_cast<std::uint8_t>(body_len);
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireCodec, RejectsBadMessageEnums) {
  WireFrame f;
  f.type = FrameType::kProtocol;
  f.msg = RichMessage();
  std::vector<std::uint8_t> bytes = EncodeFrame(f);
  // Byte 7 is the message type (first payload byte).
  std::vector<std::uint8_t> bad_type = bytes;
  bad_type[7] = 17;
  EXPECT_EQ(DecodeFrame(bad_type.data(), bad_type.size()).status,
            DecodeStatus::kBadPayload);
  // Byte 7 + 1 + 4 + 4 + 8 = offset 24 is the lease flag; only 0/1 valid.
  std::vector<std::uint8_t> bad_flag = bytes;
  bad_flag[24] = 2;
  EXPECT_EQ(DecodeFrame(bad_flag.data(), bad_flag.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireCodec, RejectsCountExceedingPayload) {
  // Corrupt the release-id count of a protocol message to a value the
  // remaining bytes cannot hold: must fail cleanly, without attempting a
  // count-driven allocation.
  WireFrame f;
  f.type = FrameType::kProtocol;
  f.msg = RichMessage();
  std::vector<std::uint8_t> bytes = EncodeFrame(f);
  // Release count sits after type(1) + msgtype(1) + from(4) + to(4) +
  // x(8) + flag(1) + id(8) = offset 4 + 3 + 26 - 4 ... computed: payload
  // starts at 7; count at 7 + 1 + 4 + 4 + 8 + 1 + 8 = 33.
  bytes[33] = 0xFF;
  bytes[34] = 0xFF;
  bytes[35] = 0xFF;
  bytes[36] = 0x7F;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireCodec, FrameReaderPoisonsOnMalformedStream) {
  std::vector<std::uint8_t> bytes = ValidBytes();
  bytes[4] = 0x00;  // bad magic
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  WireFrame frame;
  EXPECT_EQ(reader.Next(&frame), DecodeStatus::kBadMagic);
  // Sticky: valid bytes after the poison are not resynchronized.
  const std::vector<std::uint8_t> good = ValidBytes();
  reader.Feed(good.data(), good.size());
  EXPECT_EQ(reader.Next(&frame), DecodeStatus::kBadMagic);
  // Reset clears the poison and the buffer.
  reader.Reset();
  EXPECT_EQ(reader.BufferedBytes(), 0u);
  reader.Feed(good.data(), good.size());
  EXPECT_EQ(reader.Next(&frame), DecodeStatus::kOk);
}

// --- shared-mutator corpus (net/faulty_transport.h) --------------------
// The same functions the chaos injector uses to damage live traffic are
// run over every frame type here: every mutation must be detected by the
// codec (that detectability is what the recovery path relies on).

TEST(WireMutators, TruncationDetectedForEveryFrameType) {
  for (const WireFrame& frame : AllFrameTypes()) {
    SCOPED_TRACE(ToString(frame.type));
    const std::size_t encoded = EncodeFrame(frame).size();
    for (std::size_t cut = 1; cut <= 8; ++cut) {
      const std::vector<std::uint8_t> bytes = TruncatedFrame(frame, cut);
      const DecodeResult r = DecodeFrame(bytes.data(), bytes.size());
      if (encoded > 7) {
        // At least one payload byte existed, so some payload byte is gone.
        EXPECT_EQ(r.status, DecodeStatus::kBadPayload) << "cut " << cut;
      } else {
        // Payload-free frames cannot lose payload; the mutator documents
        // that it keeps them valid.
        EXPECT_EQ(r.status, DecodeStatus::kOk);
      }
    }
  }
}

TEST(WireMutators, OversizedLengthDetectedForEveryFrameType) {
  for (const WireFrame& frame : AllFrameTypes()) {
    SCOPED_TRACE(ToString(frame.type));
    const std::vector<std::uint8_t> bytes = OversizedLengthFrame(frame);
    EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size()).status,
              DecodeStatus::kBadLength);
  }
}

TEST(WireMutators, DuplicatedFrameDecodesAsTwoCleanCopies) {
  // Duplication is NOT detectable at the codec layer — both copies decode
  // fine. Exactly-once is the session layer's job (the processed counter
  // in the kPeerHello resume handshake); this pins the codec-side fact.
  WireFrame f;
  f.type = FrameType::kInjectWrite;
  f.req = 9;
  f.node = 2;
  f.arg = 1.5;
  const std::vector<std::uint8_t> bytes = DuplicatedFrame(f);
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  WireFrame decoded;
  ASSERT_EQ(reader.Next(&decoded), DecodeStatus::kOk);
  EXPECT_TRUE(FramesEqual(decoded, f));
  decoded = WireFrame{};
  ASSERT_EQ(reader.Next(&decoded), DecodeStatus::kOk);
  EXPECT_TRUE(FramesEqual(decoded, f));
  EXPECT_EQ(reader.Next(&decoded), DecodeStatus::kNeedMore);
}

TEST(WireMutators, ReaderRecoversFromCorruptionAfterResetAndReplay) {
  // The live recovery sequence in miniature: a corrupted frame poisons the
  // reader, the link is torn down (Reset), and the clean copy replayed
  // from the session log decodes fine.
  WireFrame f;
  f.type = FrameType::kProtocol;
  f.msg = RichMessage();
  const std::vector<std::uint8_t> corrupted = TruncatedFrame(f, 3);
  FrameReader reader;
  reader.Feed(corrupted.data(), corrupted.size());
  WireFrame decoded;
  EXPECT_EQ(reader.Next(&decoded), DecodeStatus::kBadPayload);
  // Sticky until the reset that models the reconnect.
  const std::vector<std::uint8_t> clean = EncodeFrame(f);
  reader.Feed(clean.data(), clean.size());
  EXPECT_EQ(reader.Next(&decoded), DecodeStatus::kBadPayload);
  reader.Reset();
  reader.Feed(clean.data(), clean.size());
  ASSERT_EQ(reader.Next(&decoded), DecodeStatus::kOk);
  EXPECT_TRUE(FramesEqual(decoded, f));
}

TEST(WireCodec, DecodeNeverReadsPastLen) {
  // Random-ish corrupt buffers of every small length: decoding must
  // terminate with some status (sanitizers catch overreads).
  std::vector<std::uint8_t> junk;
  for (int i = 0; i < 64; ++i) {
    junk.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  }
  for (std::size_t len = 0; len <= junk.size(); ++len) {
    const DecodeResult r = DecodeFrame(junk.data(), len);
    (void)r;
  }
  SUCCEED();
}

}  // namespace
}  // namespace treeagg
