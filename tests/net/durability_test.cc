// treeagg-snap-v1 codec and file tests: byte-level round-trips of the
// durable daemon state (empty, fully populated, multi-session), clean
// rejection of every corruption class (wrong magic, truncation, flipped
// payload bytes, daemon-id mismatch), and the atomic-rename file contract
// (a crash mid-write leaves old-or-new, a stale .tmp is ignored). These
// are the invariants the real-process-death matrix in
// crash_restart_test.cc relies on.
#include "net/durability.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/message.h"
#include "net/wire.h"

namespace treeagg {
namespace {

// A scratch directory under the test's working directory, wiped per test.
class SnapDir {
 public:
  explicit SnapDir(const std::string& name)
      : dir_("durability_test_scratch/" + name) {
    RemoveSnapshot(dir_);  // clear leftovers from a previous run
  }
  ~SnapDir() {
    RemoveSnapshot(dir_);
    std::remove(dir_.c_str());
    std::remove("durability_test_scratch");
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

Message RichMessage() {
  Message m;
  m.type = MsgType::kRelease;
  m.from = 2;
  m.to = 5;
  m.x = -3.375;
  m.flag = true;
  m.id = 987654321ll;
  m.release_ids = {7, -1, 12};
  auto log = std::make_shared<GhostLog>();
  log->push_back({4, 1});
  log->push_back({9, 0});
  m.wlog = std::move(log);
  return m;
}

WireFrame LoggedFrame(NodeId to) {
  WireFrame f;
  f.type = FrameType::kProtocol;
  f.msg = RichMessage();
  f.msg.to = to;
  return f;
}

// A state exercising every field of the format: two hosted nodes with
// full neighbor/pending/ghost detail, two peer sessions with non-trivial
// logs and GC'd prefixes, and a non-empty local queue.
DaemonDurableState PopulatedState() {
  DaemonDurableState state;
  LeaseNode::DurableState n0;
  n0.val = 4.25;
  n0.upcntr = 11;
  LeaseNode::DurableState::NeighborState nb;
  nb.id = 1;
  nb.taken = true;
  nb.granted = false;
  nb.aval = -0.5;
  nb.uaw = {3, 5, 9};
  nb.snt_updates = {{2, 4}, {6, 8}};
  n0.neighbors.push_back(nb);
  nb.id = 2;
  nb.taken = false;
  nb.granted = true;
  nb.uaw.clear();
  nb.snt_updates.clear();
  n0.neighbors.push_back(nb);
  LeaseNode::DurableState::PendingState p;
  p.requester = 2;
  p.waiting = {1};
  n0.pndg = {p, LeaseNode::DurableState::PendingState{}};
  n0.local_tokens = {41, 42};
  n0.ghost_log = {{1, 0}, {7, 3}};
  state.nodes.emplace_back(0, std::move(n0));

  LeaseNode::DurableState n3;  // mostly-default second node
  n3.val = -2;
  n3.neighbors.resize(1);
  n3.neighbors[0].id = 0;
  n3.pndg.resize(1);
  state.nodes.emplace_back(3, std::move(n3));

  state.sent = 120;
  state.received = 118;
  state.counts = {30, 29, 40, 19};

  DaemonDurableState::SessionState s1;
  s1.peer = 1;
  s1.log = {LoggedFrame(4), LoggedFrame(6)};
  s1.log_base = 55;  // a GC'd prefix
  s1.processed = 77;
  state.sessions.push_back(std::move(s1));
  DaemonDurableState::SessionState s2;
  s2.peer = 2;  // empty log, nothing GC'd
  s2.processed = 3;
  state.sessions.push_back(std::move(s2));

  state.local_queue = {RichMessage()};
  state.local_queue[0].wlog.reset();  // also cover the no-wlog shape

  // The adopted assignment (v6 re-placement): node 3 has been migrated in.
  state.node_daemon = {1, 0, 2, 7};
  return state;
}

TEST(SnapshotCodec, RoundTripsEmptyState) {
  const DaemonDurableState empty;
  const std::vector<std::uint8_t> bytes = EncodeSnapshot(empty, 0);
  DaemonDurableState decoded;
  int daemon_id = -1;
  std::string error;
  ASSERT_TRUE(DecodeSnapshot(bytes.data(), bytes.size(), &decoded, &daemon_id,
                             &error))
      << error;
  EXPECT_EQ(daemon_id, 0);
  EXPECT_TRUE(DurableStatesEqual(decoded, empty));
}

TEST(SnapshotCodec, RoundTripsPopulatedState) {
  const DaemonDurableState state = PopulatedState();
  const std::vector<std::uint8_t> bytes = EncodeSnapshot(state, 7);
  DaemonDurableState decoded;
  int daemon_id = -1;
  std::string error;
  ASSERT_TRUE(DecodeSnapshot(bytes.data(), bytes.size(), &decoded, &daemon_id,
                             &error))
      << error;
  EXPECT_EQ(daemon_id, 7);
  EXPECT_TRUE(DurableStatesEqual(decoded, state));
  // Spot-check the deep fields the equality walks through.
  ASSERT_EQ(decoded.sessions.size(), 2u);
  EXPECT_EQ(decoded.sessions[0].log_base, 55u);
  ASSERT_EQ(decoded.sessions[0].log.size(), 2u);
  ASSERT_NE(decoded.sessions[0].log[1].msg.wlog, nullptr);
  EXPECT_EQ(decoded.sessions[0].log[1].msg.wlog->size(), 2u);
  EXPECT_EQ(decoded.nodes[0].second.neighbors[0].uaw,
            (std::vector<UpdateId>{3, 5, 9}));
}

TEST(SnapshotCodec, NodeDaemonMapRoundTripsAndLegacyDecodesEmpty) {
  // The node -> daemon assignment is a trailing-optional section: a state
  // carrying one round-trips it, and the empty map encodes to the legacy
  // shape so pre-migration snapshots keep loading.
  DaemonDurableState state = PopulatedState();
  ASSERT_FALSE(state.node_daemon.empty());
  const std::vector<std::uint8_t> bytes = EncodeSnapshot(state, 2);
  DaemonDurableState decoded;
  int daemon_id = -1;
  std::string error;
  ASSERT_TRUE(DecodeSnapshot(bytes.data(), bytes.size(), &decoded, &daemon_id,
                             &error))
      << error;
  EXPECT_EQ(decoded.node_daemon, state.node_daemon);

  // A differing map is a real difference.
  DaemonDurableState other = PopulatedState();
  other.node_daemon[2] = 5;
  EXPECT_FALSE(DurableStatesEqual(state, other));

  // No map at all still round-trips (the legacy encode).
  state.node_daemon.clear();
  const std::vector<std::uint8_t> legacy = EncodeSnapshot(state, 2);
  ASSERT_TRUE(DecodeSnapshot(legacy.data(), legacy.size(), &decoded,
                             &daemon_id, &error))
      << error;
  EXPECT_TRUE(decoded.node_daemon.empty());
}

TEST(SnapshotCodec, NodeStateBlobRoundTrips) {
  // The migration payload: one node's LeaseNode::DurableState through the
  // EncodeNodeStateBlob / DecodeNodeStateBlob wrappers (the kMigrateState
  // and kMigrateIn `blob` field).
  const DaemonDurableState state = PopulatedState();
  const LeaseNode::DurableState& node = state.nodes[0].second;
  const std::vector<std::uint8_t> blob = EncodeNodeStateBlob(node);
  LeaseNode::DurableState decoded;
  ASSERT_TRUE(DecodeNodeStateBlob(blob.data(), blob.size(), &decoded));
  EXPECT_EQ(decoded.val, node.val);
  EXPECT_EQ(decoded.upcntr, node.upcntr);
  ASSERT_EQ(decoded.neighbors.size(), node.neighbors.size());
  EXPECT_EQ(decoded.neighbors[0].uaw, node.neighbors[0].uaw);
  EXPECT_EQ(decoded.neighbors[0].snt_updates, node.neighbors[0].snt_updates);
  EXPECT_EQ(decoded.ghost_log, node.ghost_log);
  // Truncation fails cleanly, never crashes.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    LeaseNode::DurableState scratch;
    EXPECT_FALSE(DecodeNodeStateBlob(blob.data(), len, &scratch))
        << "prefix length " << len;
  }
}

TEST(SnapshotCodec, EqualityIsDeepNotPointerBased) {
  // Two encodes of the same state produce distinct wlog allocations; the
  // comparison must still see them as equal — and must catch a one-entry
  // difference buried three levels down.
  const DaemonDurableState a = PopulatedState();
  DaemonDurableState b = PopulatedState();
  EXPECT_TRUE(DurableStatesEqual(a, b));
  b.sessions[0].log[1].msg.wlog = std::make_shared<GhostLog>(
      GhostLog{{4, 1}, {9, 1}});  // node differs in the last entry
  EXPECT_FALSE(DurableStatesEqual(a, b));
}

TEST(SnapshotCodec, RejectsWrongMagic) {
  std::vector<std::uint8_t> bytes = EncodeSnapshot(PopulatedState(), 1);
  bytes[0] ^= 0xFF;
  DaemonDurableState decoded;
  int daemon_id = -1;
  std::string error;
  EXPECT_FALSE(DecodeSnapshot(bytes.data(), bytes.size(), &decoded, &daemon_id,
                              &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(SnapshotCodec, RejectsTruncationAtEveryBoundary) {
  const std::vector<std::uint8_t> bytes = EncodeSnapshot(PopulatedState(), 1);
  // Every strict prefix must fail cleanly — header cuts and payload cuts.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    DaemonDurableState decoded;
    int daemon_id = -1;
    std::string error;
    EXPECT_FALSE(DecodeSnapshot(bytes.data(), len, &decoded, &daemon_id,
                                &error))
        << "prefix length " << len;
  }
}

TEST(SnapshotCodec, RejectsFlippedPayloadByteViaChecksum) {
  const DaemonDurableState state = PopulatedState();
  const std::vector<std::uint8_t> clean = EncodeSnapshot(state, 1);
  const std::size_t header = 16 + 4 + 8 + 4;
  ASSERT_GT(clean.size(), header);
  for (const std::size_t at :
       {header, header + (clean.size() - header) / 2, clean.size() - 1}) {
    std::vector<std::uint8_t> bytes = clean;
    bytes[at] ^= 0x01;
    DaemonDurableState decoded;
    int daemon_id = -1;
    std::string error;
    EXPECT_FALSE(DecodeSnapshot(bytes.data(), bytes.size(), &decoded,
                                &daemon_id, &error))
        << "flip at " << at;
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  }
}

TEST(SnapshotCodec, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = EncodeSnapshot(DaemonDurableState{}, 1);
  bytes.push_back(0xAB);
  DaemonDurableState decoded;
  int daemon_id = -1;
  std::string error;
  EXPECT_FALSE(DecodeSnapshot(bytes.data(), bytes.size(), &decoded, &daemon_id,
                              &error));
}

TEST(SnapshotFiles, SaveThenLoadRoundTrips) {
  SnapDir dir("roundtrip");
  const DaemonDurableState state = PopulatedState();
  std::string error;
  ASSERT_TRUE(SaveSnapshot(dir.path(), state, 3, &error)) << error;
  DaemonDurableState loaded;
  ASSERT_EQ(LoadSnapshot(dir.path(), &loaded, 3, &error), SnapshotLoad::kOk)
      << error;
  EXPECT_TRUE(DurableStatesEqual(loaded, state));
}

TEST(SnapshotFiles, MissingSnapshotIsNotFoundNotError) {
  SnapDir dir("missing");
  DaemonDurableState loaded;
  std::string error;
  EXPECT_EQ(LoadSnapshot(dir.path(), &loaded, 0, &error),
            SnapshotLoad::kNotFound);
}

TEST(SnapshotFiles, DaemonIdMismatchIsAnError) {
  // Two daemons pointed at one directory must be caught, not silently
  // cross-restored.
  SnapDir dir("mismatch");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(dir.path(), DaemonDurableState{}, 1, &error));
  DaemonDurableState loaded;
  EXPECT_EQ(LoadSnapshot(dir.path(), &loaded, 2, &error), SnapshotLoad::kError);
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotFiles, CorruptedFileOnDiskIsAnError) {
  SnapDir dir("corrupt");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(dir.path(), PopulatedState(), 0, &error));
  // Flip one payload byte in place.
  std::fstream f(SnapshotPath(dir.path()),
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  f.seekp(size - 1);
  f.put(static_cast<char>(0xEE));
  f.close();
  DaemonDurableState loaded;
  EXPECT_EQ(LoadSnapshot(dir.path(), &loaded, 0, &error), SnapshotLoad::kError);
}

TEST(SnapshotFiles, SimulatedMidWriteCrashLeavesOldSnapshotIntact) {
  // Model a writer that died after creating the temp file but before the
  // rename: the .tmp (torn, half-written — here: garbage) must be ignored
  // by Load and silently replaced by the next Save.
  SnapDir dir("midwrite");
  DaemonDurableState old_state = PopulatedState();
  std::string error;
  ASSERT_TRUE(SaveSnapshot(dir.path(), old_state, 5, &error)) << error;
  {
    std::ofstream tmp(SnapshotTempPath(dir.path()), std::ios::binary);
    tmp << "half-written garbage from a crashed writer";
  }
  DaemonDurableState loaded;
  ASSERT_EQ(LoadSnapshot(dir.path(), &loaded, 5, &error), SnapshotLoad::kOk)
      << error;
  EXPECT_TRUE(DurableStatesEqual(loaded, old_state));
  // The next save overwrites the stale temp and the snapshot.
  DaemonDurableState new_state;
  new_state.sent = 1;
  ASSERT_TRUE(SaveSnapshot(dir.path(), new_state, 5, &error)) << error;
  ASSERT_EQ(LoadSnapshot(dir.path(), &loaded, 5, &error), SnapshotLoad::kOk);
  EXPECT_TRUE(DurableStatesEqual(loaded, new_state));
  EXPECT_FALSE(DurableStatesEqual(loaded, old_state));
}

TEST(SnapshotFiles, RemoveSnapshotForgetsEverything) {
  SnapDir dir("remove");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(dir.path(), PopulatedState(), 0, &error));
  RemoveSnapshot(dir.path());
  DaemonDurableState loaded;
  EXPECT_EQ(LoadSnapshot(dir.path(), &loaded, 0, &error),
            SnapshotLoad::kNotFound);
}

}  // namespace
}  // namespace treeagg
