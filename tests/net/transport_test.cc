// TCP transport tests: ephemeral-port listeners, framed exchange over
// loopback, write buffering, and connect backoff/timeout behavior. Every
// socket binds 127.0.0.1 with an OS-assigned port — no hardcoded port
// numbers, so suites can run concurrently under any sanitizer.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <poll.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "net/wire.h"

namespace treeagg {
namespace {

// Polls until `conn` has a complete frame, with a test-local deadline.
DecodeStatus AwaitFrame(FrameConn* conn, WireFrame* frame,
                        std::int64_t timeout_ms = 5000) {
  const std::int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const DecodeStatus status = conn->NextFrame(frame);
    if (status != DecodeStatus::kNeedMore) return status;
    if (NowMs() >= deadline) return DecodeStatus::kNeedMore;
    pollfd pfd{conn->fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    if (!conn->ReadAvailable() && conn->eof()) {
      return conn->NextFrame(frame);
    }
  }
}

TEST(TcpListener, BindsEphemeralPortAndReportsIt) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  EXPECT_TRUE(listener.valid());
  EXPECT_GT(listener.port(), 0);
  // A second listener gets a different port — nothing is hardcoded.
  TcpListener other = TcpListener::Bind("127.0.0.1", 0);
  EXPECT_NE(listener.port(), other.port());
}

TEST(TcpListener, AcceptWithoutPendingConnectionIsInvalid) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  EXPECT_FALSE(listener.Accept().valid());
}

TEST(TcpListener, RejectsUnparseableHost) {
  EXPECT_THROW(TcpListener::Bind("not-a-host", 0), std::runtime_error);
}

TEST(FrameConnTest, ExchangesFramesOverLoopback) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  TransportOptions options;
  std::string err;
  ScopedFd client_fd =
      ConnectWithBackoff("127.0.0.1", listener.port(), options, &err);
  ASSERT_TRUE(client_fd.valid()) << err;

  ScopedFd server_fd;
  const std::int64_t deadline = NowMs() + 5000;
  while (!server_fd.valid() && NowMs() < deadline) {
    server_fd = listener.Accept();
  }
  ASSERT_TRUE(server_fd.valid());

  FrameConn client(std::move(client_fd), options);
  FrameConn server(std::move(server_fd), options);

  WireFrame out;
  out.type = FrameType::kCombineDone;
  out.req = 9;
  out.value = 3.25;
  out.gather = {{0, 1}, {4, 7}};
  out.log_prefix = 2;
  client.SendFrame(out);
  ASSERT_TRUE(client.Flush());
  EXPECT_FALSE(client.WantWrite());

  WireFrame in;
  ASSERT_EQ(AwaitFrame(&server, &in), DecodeStatus::kOk);
  EXPECT_TRUE(FramesEqual(in, out));

  // And the other direction on the same connection.
  WireFrame reply;
  reply.type = FrameType::kShutdown;
  server.SendFrame(reply);
  ASSERT_TRUE(server.Flush());
  WireFrame got;
  ASSERT_EQ(AwaitFrame(&client, &got), DecodeStatus::kOk);
  EXPECT_EQ(got.type, FrameType::kShutdown);
}

TEST(FrameConnTest, PeerCloseSurfacesAsEof) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  TransportOptions options;
  std::string err;
  ScopedFd client_fd =
      ConnectWithBackoff("127.0.0.1", listener.port(), options, &err);
  ASSERT_TRUE(client_fd.valid()) << err;
  ScopedFd server_fd;
  const std::int64_t deadline = NowMs() + 5000;
  while (!server_fd.valid() && NowMs() < deadline) {
    server_fd = listener.Accept();
  }
  ASSERT_TRUE(server_fd.valid());

  FrameConn client(std::move(client_fd), options);
  client.Close();

  FrameConn server(std::move(server_fd), options);
  const std::int64_t eof_deadline = NowMs() + 5000;
  bool saw_eof = false;
  while (NowMs() < eof_deadline) {
    pollfd pfd{server.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    if (!server.ReadAvailable()) {
      saw_eof = server.eof();
      break;
    }
  }
  EXPECT_TRUE(saw_eof);
  EXPECT_TRUE(server.error().empty());
}

TEST(FrameConnTest, BackpressureCapFailsTheConnection) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  TransportOptions options;
  options.max_write_buffer = 256;  // tiny cap, immediately exceeded
  std::string err;
  ScopedFd client_fd =
      ConnectWithBackoff("127.0.0.1", listener.port(), options, &err);
  ASSERT_TRUE(client_fd.valid()) << err;
  FrameConn client(std::move(client_fd), options);
  WireFrame f;
  f.type = FrameType::kHarvestResp;
  for (int i = 0; i < 64; ++i) {
    NodeLogPayload nl;
    nl.node = i;
    nl.log.assign(16, GhostWrite{i, i});
    f.harvest.logs.push_back(std::move(nl));
  }
  // No Flush between sends: the unsent backlog crosses the cap.
  client.SendFrame(f);
  client.SendFrame(f);
  EXPECT_FALSE(client.open());
  EXPECT_FALSE(client.error().empty());
}

// Connected loopback FrameConn pair for the coalescer tests below.
struct ConnPair {
  TcpListener listener;
  std::unique_ptr<FrameConn> client;
  std::unique_ptr<FrameConn> server;
};

ConnPair MakePair(const TransportOptions& options) {
  ConnPair pair;
  pair.listener = TcpListener::Bind("127.0.0.1", 0);
  std::string err;
  ScopedFd client_fd =
      ConnectWithBackoff("127.0.0.1", pair.listener.port(), options, &err);
  EXPECT_TRUE(client_fd.valid()) << err;
  ScopedFd server_fd;
  const std::int64_t deadline = NowMs() + 5000;
  while (!server_fd.valid() && NowMs() < deadline) {
    server_fd = pair.listener.Accept();
  }
  EXPECT_TRUE(server_fd.valid());
  pair.client = std::make_unique<FrameConn>(std::move(client_fd), options);
  pair.server = std::make_unique<FrameConn>(std::move(server_fd), options);
  return pair;
}

Message ProbeMessage(NodeId from, NodeId to) {
  Message m;
  m.type = MsgType::kProbe;
  m.from = from;
  m.to = to;
  return m;
}

TEST(FrameConnBatching, CoalescesQueuedMessagesIntoOneBatchFrame) {
  TransportOptions options;
  options.batch_bytes = 4096;
  options.batch_flush_us = 0;  // flush at every socket flush
  ConnPair pair = MakePair(options);

  for (NodeId i = 0; i < 5; ++i) {
    pair.client->QueueMessage(ProbeMessage(i, i + 1));
  }
  EXPECT_TRUE(pair.client->HasQueuedBatch());
  ASSERT_TRUE(pair.client->Flush());
  EXPECT_FALSE(pair.client->HasQueuedBatch());

  WireFrame in;
  ASSERT_EQ(AwaitFrame(pair.server.get(), &in), DecodeStatus::kOk);
  ASSERT_EQ(in.type, FrameType::kBatch);
  ASSERT_EQ(in.batch.size(), 5u);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(in.batch[static_cast<std::size_t>(i)].from, i);
    EXPECT_EQ(in.batch[static_cast<std::size_t>(i)].to, i + 1);
  }
}

TEST(FrameConnBatching, SizeCapSplitsTheStreamIntoMultipleBatches) {
  TransportOptions options;
  options.batch_bytes = 80;  // a couple of encoded messages per batch
  options.batch_flush_us = 0;
  ConnPair pair = MakePair(options);

  const int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    pair.client->QueueMessage(ProbeMessage(1, 2));
  }
  pair.client->FlushBatchNow();
  ASSERT_TRUE(pair.client->Flush());

  int frames = 0;
  int messages = 0;
  WireFrame in;
  while (messages < kMessages &&
         AwaitFrame(pair.server.get(), &in) == DecodeStatus::kOk) {
    ASSERT_EQ(in.type, FrameType::kBatch);
    EXPECT_GE(in.batch.size(), 1u);
    ++frames;
    messages += static_cast<int>(in.batch.size());
  }
  EXPECT_EQ(messages, kMessages);
  // The cap forces a split (more than one frame), the coalescer still
  // beats one-frame-per-message.
  EXPECT_GT(frames, 1);
  EXPECT_LT(frames, kMessages);
}

TEST(FrameConnBatching, ControlFrameFlushesTheBatchFirst) {
  TransportOptions options;
  options.batch_bytes = 4096;
  options.batch_flush_us = 1000000;  // long linger: only FIFO forces out
  ConnPair pair = MakePair(options);

  pair.client->QueueMessage(ProbeMessage(3, 4));
  pair.client->QueueMessage(ProbeMessage(4, 5));
  WireFrame control;
  control.type = FrameType::kPeerAck;
  control.ack = 17;
  control.ack_valid = true;
  pair.client->SendFrame(control);  // must not overtake the two messages
  ASSERT_TRUE(pair.client->Flush());

  WireFrame first;
  ASSERT_EQ(AwaitFrame(pair.server.get(), &first), DecodeStatus::kOk);
  ASSERT_EQ(first.type, FrameType::kBatch);
  EXPECT_EQ(first.batch.size(), 2u);
  WireFrame second;
  ASSERT_EQ(AwaitFrame(pair.server.get(), &second), DecodeStatus::kOk);
  EXPECT_EQ(second.type, FrameType::kPeerAck);
  EXPECT_EQ(second.ack, 17u);
}

TEST(FrameConnBatching, DowngradedPeerGetsPlainProtocolFrames) {
  TransportOptions options;
  options.batch_bytes = 4096;
  options.batch_flush_us = 0;
  ConnPair pair = MakePair(options);

  // The session handshake downgraded this edge to a v3 dialect: batching
  // stays off no matter what the transport options say.
  pair.client->set_wire_version(3);
  pair.client->QueueMessage(ProbeMessage(6, 7));
  pair.client->QueueMessage(ProbeMessage(7, 8));
  EXPECT_FALSE(pair.client->HasQueuedBatch());
  ASSERT_TRUE(pair.client->Flush());

  for (int i = 0; i < 2; ++i) {
    WireFrame in;
    ASSERT_EQ(AwaitFrame(pair.server.get(), &in), DecodeStatus::kOk);
    EXPECT_EQ(in.type, FrameType::kProtocol);
  }
}

TEST(FrameConnBatching, LingerHoldsTheBatchUntilDeadlineOrForcedFlush) {
  TransportOptions options;
  options.batch_bytes = 4096;
  options.batch_flush_us = 60 * 1000 * 1000;  // a minute: never expires here
  ConnPair pair = MakePair(options);

  pair.client->QueueMessage(ProbeMessage(8, 9));
  EXPECT_TRUE(pair.client->HasQueuedBatch());
  const std::int64_t deadline = pair.client->BatchDeadlineUs();
  EXPECT_GT(deadline, NowUs());

  // A socket flush before the deadline leaves the batch pending...
  ASSERT_TRUE(pair.client->Flush());
  EXPECT_TRUE(pair.client->HasQueuedBatch());
  EXPECT_FALSE(pair.client->WantWrite());

  // ...and FlushBatchNow overrides the linger.
  pair.client->FlushBatchNow();
  EXPECT_FALSE(pair.client->HasQueuedBatch());
  ASSERT_TRUE(pair.client->Flush());
  WireFrame in;
  ASSERT_EQ(AwaitFrame(pair.server.get(), &in), DecodeStatus::kOk);
  ASSERT_EQ(in.type, FrameType::kBatch);
  EXPECT_EQ(in.batch.size(), 1u);
}

TEST(ConnectWithBackoff, FailsCleanlyWhenNothingListens) {
  // Bind-then-close gives a port that is (momentarily) guaranteed dead.
  std::uint16_t dead_port;
  {
    TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
    dead_port = listener.port();
  }
  TransportOptions options;
  options.connect_timeout_ms = 200;
  options.backoff_initial_ms = 10;
  std::string err;
  const std::int64_t start = NowMs();
  ScopedFd fd = ConnectWithBackoff("127.0.0.1", dead_port, options, &err);
  EXPECT_FALSE(fd.valid());
  EXPECT_FALSE(err.empty());
  // Bounded by the configured budget (plus scheduling slack).
  EXPECT_LT(NowMs() - start, 5000);
}

TEST(ConnectWithBackoff, RetriesUntilTheListenerAppears) {
  // Reserve a port, drop the listener, start connecting, then re-bind the
  // same port: the backoff loop must pick up the late listener.
  TcpListener first = TcpListener::Bind("127.0.0.1", 0);
  const std::uint16_t port = first.port();
  first.Close();

  TransportOptions options;
  options.connect_timeout_ms = 5000;
  options.backoff_initial_ms = 10;
  std::string err;
  std::thread rebind([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // SO_REUSEADDR makes the re-bind race-free on loopback.
    static TcpListener* late = nullptr;
    late = new TcpListener(TcpListener::Bind("127.0.0.1", port));
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    delete late;
  });
  ScopedFd fd = ConnectWithBackoff("127.0.0.1", port, options, &err);
  rebind.join();
  EXPECT_TRUE(fd.valid()) << err;
}

TEST(ConnectWithBackoff, RejectsUnparseableHost) {
  TransportOptions options;
  options.connect_timeout_ms = 100;
  std::string err;
  ScopedFd fd = ConnectWithBackoff("no such host", 1, options, &err);
  EXPECT_FALSE(fd.valid());
  EXPECT_NE(err.find("bad host"), std::string::npos);
}

}  // namespace
}  // namespace treeagg
