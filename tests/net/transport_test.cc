// TCP transport tests: ephemeral-port listeners, framed exchange over
// loopback, write buffering, and connect backoff/timeout behavior. Every
// socket binds 127.0.0.1 with an OS-assigned port — no hardcoded port
// numbers, so suites can run concurrently under any sanitizer.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <poll.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "net/wire.h"

namespace treeagg {
namespace {

// Polls until `conn` has a complete frame, with a test-local deadline.
DecodeStatus AwaitFrame(FrameConn* conn, WireFrame* frame,
                        std::int64_t timeout_ms = 5000) {
  const std::int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const DecodeStatus status = conn->NextFrame(frame);
    if (status != DecodeStatus::kNeedMore) return status;
    if (NowMs() >= deadline) return DecodeStatus::kNeedMore;
    pollfd pfd{conn->fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    if (!conn->ReadAvailable() && conn->eof()) {
      return conn->NextFrame(frame);
    }
  }
}

TEST(TcpListener, BindsEphemeralPortAndReportsIt) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  EXPECT_TRUE(listener.valid());
  EXPECT_GT(listener.port(), 0);
  // A second listener gets a different port — nothing is hardcoded.
  TcpListener other = TcpListener::Bind("127.0.0.1", 0);
  EXPECT_NE(listener.port(), other.port());
}

TEST(TcpListener, AcceptWithoutPendingConnectionIsInvalid) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  EXPECT_FALSE(listener.Accept().valid());
}

TEST(TcpListener, RejectsUnparseableHost) {
  EXPECT_THROW(TcpListener::Bind("not-a-host", 0), std::runtime_error);
}

TEST(FrameConnTest, ExchangesFramesOverLoopback) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  TransportOptions options;
  std::string err;
  ScopedFd client_fd =
      ConnectWithBackoff("127.0.0.1", listener.port(), options, &err);
  ASSERT_TRUE(client_fd.valid()) << err;

  ScopedFd server_fd;
  const std::int64_t deadline = NowMs() + 5000;
  while (!server_fd.valid() && NowMs() < deadline) {
    server_fd = listener.Accept();
  }
  ASSERT_TRUE(server_fd.valid());

  FrameConn client(std::move(client_fd), options);
  FrameConn server(std::move(server_fd), options);

  WireFrame out;
  out.type = FrameType::kCombineDone;
  out.req = 9;
  out.value = 3.25;
  out.gather = {{0, 1}, {4, 7}};
  out.log_prefix = 2;
  client.SendFrame(out);
  ASSERT_TRUE(client.Flush());
  EXPECT_FALSE(client.WantWrite());

  WireFrame in;
  ASSERT_EQ(AwaitFrame(&server, &in), DecodeStatus::kOk);
  EXPECT_TRUE(FramesEqual(in, out));

  // And the other direction on the same connection.
  WireFrame reply;
  reply.type = FrameType::kShutdown;
  server.SendFrame(reply);
  ASSERT_TRUE(server.Flush());
  WireFrame got;
  ASSERT_EQ(AwaitFrame(&client, &got), DecodeStatus::kOk);
  EXPECT_EQ(got.type, FrameType::kShutdown);
}

TEST(FrameConnTest, PeerCloseSurfacesAsEof) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  TransportOptions options;
  std::string err;
  ScopedFd client_fd =
      ConnectWithBackoff("127.0.0.1", listener.port(), options, &err);
  ASSERT_TRUE(client_fd.valid()) << err;
  ScopedFd server_fd;
  const std::int64_t deadline = NowMs() + 5000;
  while (!server_fd.valid() && NowMs() < deadline) {
    server_fd = listener.Accept();
  }
  ASSERT_TRUE(server_fd.valid());

  FrameConn client(std::move(client_fd), options);
  client.Close();

  FrameConn server(std::move(server_fd), options);
  const std::int64_t eof_deadline = NowMs() + 5000;
  bool saw_eof = false;
  while (NowMs() < eof_deadline) {
    pollfd pfd{server.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    if (!server.ReadAvailable()) {
      saw_eof = server.eof();
      break;
    }
  }
  EXPECT_TRUE(saw_eof);
  EXPECT_TRUE(server.error().empty());
}

TEST(FrameConnTest, BackpressureCapFailsTheConnection) {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
  TransportOptions options;
  options.max_write_buffer = 256;  // tiny cap, immediately exceeded
  std::string err;
  ScopedFd client_fd =
      ConnectWithBackoff("127.0.0.1", listener.port(), options, &err);
  ASSERT_TRUE(client_fd.valid()) << err;
  FrameConn client(std::move(client_fd), options);
  WireFrame f;
  f.type = FrameType::kHarvestResp;
  for (int i = 0; i < 64; ++i) {
    NodeLogPayload nl;
    nl.node = i;
    nl.log.assign(16, GhostWrite{i, i});
    f.harvest.logs.push_back(std::move(nl));
  }
  // No Flush between sends: the unsent backlog crosses the cap.
  client.SendFrame(f);
  client.SendFrame(f);
  EXPECT_FALSE(client.open());
  EXPECT_FALSE(client.error().empty());
}

TEST(ConnectWithBackoff, FailsCleanlyWhenNothingListens) {
  // Bind-then-close gives a port that is (momentarily) guaranteed dead.
  std::uint16_t dead_port;
  {
    TcpListener listener = TcpListener::Bind("127.0.0.1", 0);
    dead_port = listener.port();
  }
  TransportOptions options;
  options.connect_timeout_ms = 200;
  options.backoff_initial_ms = 10;
  std::string err;
  const std::int64_t start = NowMs();
  ScopedFd fd = ConnectWithBackoff("127.0.0.1", dead_port, options, &err);
  EXPECT_FALSE(fd.valid());
  EXPECT_FALSE(err.empty());
  // Bounded by the configured budget (plus scheduling slack).
  EXPECT_LT(NowMs() - start, 5000);
}

TEST(ConnectWithBackoff, RetriesUntilTheListenerAppears) {
  // Reserve a port, drop the listener, start connecting, then re-bind the
  // same port: the backoff loop must pick up the late listener.
  TcpListener first = TcpListener::Bind("127.0.0.1", 0);
  const std::uint16_t port = first.port();
  first.Close();

  TransportOptions options;
  options.connect_timeout_ms = 5000;
  options.backoff_initial_ms = 10;
  std::string err;
  std::thread rebind([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // SO_REUSEADDR makes the re-bind race-free on loopback.
    static TcpListener* late = nullptr;
    late = new TcpListener(TcpListener::Bind("127.0.0.1", port));
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    delete late;
  });
  ScopedFd fd = ConnectWithBackoff("127.0.0.1", port, options, &err);
  rebind.join();
  EXPECT_TRUE(fd.valid()) << err;
}

TEST(ConnectWithBackoff, RejectsUnparseableHost) {
  TransportOptions options;
  options.connect_timeout_ms = 100;
  std::string err;
  ScopedFd fd = ConnectWithBackoff("no such host", 1, options, &err);
  EXPECT_FALSE(fd.valid());
  EXPECT_NE(err.find("bad host"), std::string::npos);
}

}  // namespace
}  // namespace treeagg
