// Crash-restart and fault-recovery tests for the networked backend: real
// daemons on loopback TCP are killed, restarted from durable state,
// partitioned, and fed corrupted frames while a workload runs — and the
// ConvergenceChecker must still sign off on the result.
//
// The ProcessDeathMatrix suite goes beyond the in-process fail-stop model:
// each daemon is a real `treeagg_cli serve --state-dir` child process,
// SIGKILLed mid-workload and restarted from its disk snapshot. Nothing of
// the killed process survives except the snapshot file, so these tests are
// the ground truth for the durability layer's write-ahead persistence.
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate_op.h"
#include "core/message.h"
#include "fault/convergence.h"
#include "fault/schedule.h"
#include "net/chaos.h"
#include "net/cluster.h"
#include "net/daemon.h"
#include "net/driver.h"
#include "net/durability.h"
#include "net/faulty_transport.h"
#include "net/local_cluster.h"
#include "net/transport.h"
#include "net/wire.h"
#include "place/placement.h"
#include "query/validate.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

// Runs sigma under `schedule` on a LocalCluster and feeds the outcome to
// the ConvergenceChecker. Returns the chaos result for extra assertions.
ChaosNetResult RunAndCheck(const FaultSchedule& schedule, int daemons,
                           const std::string& placement,
                           std::size_t len = 60) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, len, /*seed=*/11);

  ChaosNetOptions options;
  options.cluster.daemons = daemons;
  options.cluster.placement = placement;
  const ChaosNetResult result =
      RunChaosNetWorkload(ParentVector(tree), sigma, schedule, options);

  ConvergenceOptions check;
  check.fault_windows = result.fault_windows;
  // Re-injection after a crash is at-least-once: a combine whose Done
  // frame died with the connection can execute twice, and the duplicate
  // ghost gather fails the full-history causal check even though every
  // final probe converges. The outside-window restriction is the sound
  // requirement in that case (the duplicates are inside the windows).
  check.require_full_causal = result.reinjected == 0;
  const ConvergenceReport report =
      CheckConvergence(result.history, result.ghosts, SumOp(), tree.size(),
                       result.final_probe_ids, check);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_TRUE(report.all_completed);
  EXPECT_EQ(report.divergent_probes, 0u);
  EXPECT_TRUE(report.outside_ok);
  EXPECT_EQ(result.final_probe_ids.size(),
            static_cast<std::size_t>(tree.size()));
  return result;
}

// The acceptance test: a non-root daemon is fail-stopped mid-workload and
// restarted from its durable state; requests addressed to it meanwhile are
// deferred, peer sessions resume, and every final probe returns the
// fault-free ground truth.
TEST(CrashRestartTest, KilledDaemonRecoversAndConverges) {
  FaultSchedule schedule;
  // Block placement over 15 nodes / 3 daemons puts nodes 5..9 on daemon 1;
  // crash it across injections [15, 35).
  schedule.WithSeed(7).Crash(6, 15, 35);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "block");
  EXPECT_EQ(result.kills, 1u);
  // The deferral count is deterministic: it depends only on sigma and the
  // crash window, and mixed50(seed 11) targets daemon 1 inside it.
  EXPECT_GT(result.deferred, 0u);
}

// Crashing the daemon that hosts the root exercises driver reconnect and
// re-injection on the busiest daemon.
TEST(CrashRestartTest, KilledRootDaemonRecoversAndConverges) {
  FaultSchedule schedule;
  schedule.WithSeed(3).Crash(0, 20, 30);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "block");
  EXPECT_EQ(result.kills, 1u);
}

// A severed peer link heals through the session-resume handshake alone.
TEST(CrashRestartTest, SeveredPeerLinkConverges) {
  FaultSchedule schedule;
  // rr placement puts nodes 0 and 1 on different daemons.
  schedule.WithSeed(5).Cut(0, 1, 10, 25);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/2, "rr");
  EXPECT_EQ(result.severs, 1u);
}

// Frame corruption on the wire: every corrupted frame must be detected,
// the link torn down, and the clean copy replayed from the session log.
TEST(CrashRestartTest, CorruptedFramesAreRetransmitted) {
  FaultSchedule schedule;
  schedule.WithSeed(9).Drop(0.25, 5, 45);
  RunAndCheck(schedule, /*daemons=*/2, "rr");
}

// Everything at once: crash + partition + corruption in one run.
TEST(CrashRestartTest, CombinedChaosConverges) {
  FaultSchedule schedule;
  schedule.WithSeed(13)
      .Drop(0.1, 5, 50)
      .Cut(0, 1, 10, 20)
      .Crash(6, 25, 40);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "rr");
  EXPECT_EQ(result.kills, 1u);
}

// A schedule reaching past the end of the workload still heals (the
// restart is applied after the last injection, before the waits).
TEST(CrashRestartTest, CrashWindowPastWorkloadEndStillHeals) {
  FaultSchedule schedule;
  schedule.WithSeed(2).Crash(6, 50, 10000);
  const ChaosNetResult result =
      RunAndCheck(schedule, /*daemons=*/3, "block");
  EXPECT_EQ(result.kills, 1u);
}

// The chaos harness's injection loop is fast, so its drop windows can be
// near-empty in real time. This test pins the recovery path down: the
// injectors stay armed while completions are awaited, so protocol frames
// ARE corrupted (the counters prove it), links reset, and session resume
// replays the clean copies.
TEST(CrashRestartTest, ArmedCorruptionFiresAndIsRecovered) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 80, /*seed=*/17);

  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";  // adjacent nodes on different daemons
  for (int d = 0; d < options.daemons; ++d) {
    PeerFaultInjector::Options inj;
    inj.corrupt_probability = 0.05;
    inj.seed = 100 + static_cast<std::uint64_t>(d);
    options.fault_injectors.push_back(
        std::make_shared<PeerFaultInjector>(inj));
  }
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  for (auto& inj : options.fault_injectors) inj->Arm();
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  }
  driver.WaitAllCompleted();
  for (auto& inj : options.fault_injectors) inj->Disarm();
  driver.WaitQuiescent();

  std::size_t corrupted = 0;
  for (const auto& inj : options.fault_injectors) {
    corrupted += inj->corrupted_count();
  }
  EXPECT_GT(corrupted, 0u) << "fault window was vacuous";

  const ReqId probe = driver.InjectCombine(0);
  driver.WaitCompleted(probe);
  driver.WaitQuiescent();
  const Real truth = GroundTruth(driver.history(), SumOp(), tree.size());
  EXPECT_NEAR(driver.history().record(probe).retval, truth, 1e-9);
  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

// --- second-generation chaos matrix -------------------------------------
//
// New fault vocabulary on the net backend: correlated kills, asymmetric
// severs, gray failure, and WAN/geo latency profiles — each cell converges
// with the full strict/causal checks, and the manual cells prove the fault
// actually fired (nothing is vacuously green).

// Cell: correlated kill — a parent+child pair straddling a lease edge dies
// as ONE event (rr: node 0 -> daemon 0, node 1 -> daemon 1).
TEST(ChaosMatrixV2, CorrelatedPairKillAcrossLeaseEdge) {
  FaultSchedule schedule;
  schedule.WithSeed(21).CrashGroup({0, 1}, 15, 35);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "rr");
  EXPECT_EQ(result.kills, 2u);
  // One correlated event: one merged fault window, not two.
  EXPECT_EQ(result.fault_windows.size(), 1u);
}

// Cell: asymmetric sever via the schedule — one direction paused over the
// whole workload, the reverse stays live, and the run still converges.
TEST(ChaosMatrixV2, AsymmetricSeverConverges) {
  FaultSchedule schedule;
  schedule.WithSeed(22).Sever(1, 0, 0, 10000);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/2, "rr");
  EXPECT_EQ(result.paused, 1u);
}

// Cell (manual, non-vacuous): a paused direction provably parks frames in
// the held queue — a root combine cannot finish while daemon 1's responses
// are held — and draining on resume restores the ground truth.
TEST(ChaosMatrixV2, PausedDirectionHoldsFramesUntilResume) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  cluster.SetSendPaused(1, 0, true);
  for (int i = 0; i < 6; ++i) {
    driver.InjectWrite(1, 1.0 + i);
    driver.InjectWrite(3, 2.0 + i);
  }
  const ReqId probe = driver.InjectCombine(0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.FramesHeldTotal() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(cluster.FramesHeldTotal(), 0u) << "pause window was vacuous";

  cluster.SetSendPaused(1, 0, false);
  driver.WaitCompleted(probe);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const Real truth = GroundTruth(driver.history(), SumOp(), tree.size());
  EXPECT_NEAR(driver.history().record(probe).retval, truth, 1e-9);
  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

// Cell (manual, non-vacuous): gray failure — daemon 1 stays up but every
// outbound peer frame is slow. The profile stays armed through the
// completion wait, so the delay provably fires, and the final probe still
// returns the ground truth.
TEST(ChaosMatrixV2, GrayDaemonStaysSlowButConverges) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 80, /*seed=*/19);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";
  for (int d = 0; d < options.daemons; ++d) {
    PeerFaultInjector::Options inj;
    inj.seed = 200 + static_cast<std::uint64_t>(d);
    inj.gray = DelayProfile{200, 1500};  // microseconds per frame
    options.fault_injectors.push_back(
        std::make_shared<PeerFaultInjector>(inj));
  }
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  options.fault_injectors[1]->ArmGray();
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  }
  driver.WaitAllCompleted();
  EXPECT_GT(options.fault_injectors[1]->delayed_count(), 0u)
      << "gray window was vacuous";
  options.fault_injectors[1]->DisarmAll();
  driver.WaitQuiescent();

  const ReqId probe = driver.InjectCombine(0);
  driver.WaitCompleted(probe);
  driver.WaitQuiescent();
  const Real truth = GroundTruth(driver.history(), SumOp(), tree.size());
  EXPECT_NEAR(driver.history().record(probe).retval, truth, 1e-9);
  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

// Cell: WAN/geo profile with a regional partition that heals, end to end
// through the schedule-driven harness.
TEST(ChaosMatrixV2, GeoProfileWithRegionalPartitionConverges) {
  FaultSchedule schedule;
  schedule.WithSeed(24)
      .Lat(0, 1, 15, 25, 0, 10000)
      .Lat(0, 2, 40, 60, 0, 10000)
      .Cut(0, 2, 15, 35);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "rr");
  EXPECT_EQ(result.severs, 1u);
}

// Cell: kill-during-gray — the gray daemon itself is crashed inside its
// gray window (rr: nodes 1 and 4 both live on daemon 1) and restarted; the
// injector survives the restart, so the daemon comes back still gray.
TEST(ChaosMatrixV2, KillDuringGrayWindowConverges) {
  FaultSchedule schedule;
  schedule.WithSeed(25).Gray(1, 2, 8, 0, 10000).Crash(4, 15, 35);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "rr");
  EXPECT_EQ(result.kills, 1u);
}

// Cell: snapshot queries race a gray writer — the writer daemon is
// slow-injected while off-ledger seqlock reads stream from the driver; the
// served answers must pass the per-epoch monotonicity and prefix checks.
TEST(ChaosMatrixV2, SnapshotQueriesStayCoherentUnderGrayWriter) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";
  for (int d = 0; d < options.daemons; ++d) {
    PeerFaultInjector::Options inj;
    inj.seed = 300 + static_cast<std::uint64_t>(d);
    inj.gray = DelayProfile{200, 1500};
    options.fault_injectors.push_back(
        std::make_shared<PeerFaultInjector>(inj));
  }
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  options.fault_injectors[1]->ArmGray();
  std::vector<query::ServedQuery> queries;
  std::int64_t serial = 0;
  const RequestSequence sigma =
      MakeWorkload("mixed50", tree, 120, /*seed=*/23);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      // Combines become off-ledger snapshot reads racing the gray writes.
      queries.push_back(
          query::ServedQuery{r.node, driver.QueryNode(r.node), serial++});
    }
  }
  // Off-ledger reads generate no peer frames, so force one on-ledger
  // combine while still gray: its probe/response crosses the slow daemon
  // and proves the window was not vacuous.
  const ReqId forced = driver.InjectCombine(0);
  driver.WaitCompleted(forced);
  driver.WaitAllCompleted();
  EXPECT_GT(options.fault_injectors[1]->delayed_count(), 0u)
      << "gray window was vacuous";
  options.fault_injectors[1]->DisarmAll();
  driver.WaitQuiescent();
  EXPECT_FALSE(queries.empty());

  NetDriver::HarvestResult harvest = driver.Harvest();
  const CheckResult check = query::ValidateQueryAnswers(
      driver.history(), harvest.ghosts, queries, SumOp());
  EXPECT_TRUE(check.ok) << check.message;
  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

// Cell: Rebalance() mid-gray — live node migration runs while a daemon is
// slow, the moved tree keeps serving, and the post-heal probe returns the
// ground truth on the new placement.
TEST(ChaosMatrixV2, RebalanceDuringGrayWindowConverges) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 80, /*seed=*/29);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";
  for (int d = 0; d < options.daemons; ++d) {
    PeerFaultInjector::Options inj;
    inj.seed = 400 + static_cast<std::uint64_t>(d);
    inj.gray = DelayProfile{200, 1000};
    options.fault_injectors.push_back(
        std::make_shared<PeerFaultInjector>(inj));
  }
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  options.fault_injectors[1]->ArmGray();
  const auto inject = [&](const Request& r) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  };
  const std::size_t half = sigma.size() / 2;
  for (std::size_t i = 0; i < half; ++i) inject(sigma[i]);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  // Migrate while the gray window is still open.
  const std::vector<std::uint64_t> traffic = cluster.HarvestTraffic();
  const place::PlacementPlan plan =
      place::OptimizePlacement(ParentVector(tree), traffic, options.daemons);
  cluster.Rebalance(plan.node_daemon);
  for (std::size_t i = half; i < sigma.size(); ++i) inject(sigma[i]);
  driver.WaitAllCompleted();
  EXPECT_GT(options.fault_injectors[1]->delayed_count(), 0u)
      << "gray window was vacuous";
  options.fault_injectors[1]->DisarmAll();
  driver.WaitQuiescent();

  const ReqId probe = driver.InjectCombine(0);
  driver.WaitCompleted(probe);
  driver.WaitQuiescent();
  const Real truth = GroundTruth(driver.history(), SumOp(), tree.size());
  EXPECT_NEAR(driver.history().record(probe).retval, truth, 1e-9);
  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

TEST(CrashRestartTest, RejectsFifoViolationSchedules) {
  const Tree tree = MakeShape("kary2", 7, /*seed=*/1);
  FaultSchedule schedule;
  schedule.Duplicate(0.5, 0, 10);
  EXPECT_THROW(
      RunChaosNetWorkload(ParentVector(tree), {}, schedule, ChaosNetOptions{}),
      std::invalid_argument);
}

// Down-daemon diagnostics: while a daemon is killed, injections to its
// nodes and quiescence waits fail fast with a message naming it; after
// restart the cluster completes normally.
TEST(CrashRestartTest, DownDaemonFailsFastThenRecovers) {
  const Tree tree = MakeShape("kary2", 9, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 3;
  options.placement = "block";
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  driver.InjectWrite(0, 1.0);
  driver.WaitAllCompleted();

  cluster.KillDaemon(1);
  try {
    driver.InjectWrite(4, 2.0);  // block placement: node 4 is on daemon 1
    FAIL() << "expected injection to a down daemon to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("down"), std::string::npos);
  }
  try {
    driver.WaitQuiescent();
    FAIL() << "expected quiescence wait with a down daemon to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("daemon 1"), std::string::npos);
  }

  cluster.RestartDaemon(1);
  driver.InjectWrite(4, 2.0);
  const ReqId probe = driver.InjectCombine(0);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  EXPECT_EQ(driver.history().record(probe).retval, 3.0);
  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

// --- RestartMode coverage (satellite e) ---------------------------------

// kDurable vs kAmnesia on the in-process cluster, memory-durable mode: the
// durable restart remembers a quiesced write, the amnesia restart forgets
// it (the daemon rejoins blank, modeling replaced hardware).
TEST(RestartModes, DurableRemembersAndAmnesiaForgets) {
  const Tree tree = MakeShape("path", 3, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 1;
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  driver.InjectWrite(1, 5.0);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();

  cluster.KillDaemon(0);
  cluster.RestartDaemon(0, LocalCluster::RestartMode::kDurable);
  const ReqId durable_probe = driver.InjectCombine(0);
  driver.WaitCompleted(durable_probe);
  EXPECT_EQ(driver.history().record(durable_probe).retval, 5.0);

  cluster.KillDaemon(0);
  cluster.RestartDaemon(0, LocalCluster::RestartMode::kAmnesia);
  const ReqId amnesia_probe = driver.InjectCombine(0);
  driver.WaitCompleted(amnesia_probe);
  EXPECT_EQ(driver.history().record(amnesia_probe).retval, 0.0);

  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

std::string ScratchDir(const std::string& name) {
  ::mkdir("crash_restart_scratch", 0755);
  const std::string dir = "crash_restart_scratch/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

// Same matrix in disk mode: a durable restart drops the kill-time export
// and reloads the daemon's own `daemon.snap` (the exact path a real
// process restart takes), so a remembered value proves the disk snapshot
// is complete at kill time; an amnesia restart deletes the snapshot.
TEST(RestartModes, DiskModeReloadsTheSnapshotAndAmnesiaDeletesIt) {
  const std::string root = ScratchDir("restart_modes_disk");
  RemoveSnapshot(root + "/daemon-0");

  const Tree tree = MakeShape("path", 3, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 1;
  options.durability.state_dir = root;
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  driver.InjectWrite(1, 5.0);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();

  cluster.KillDaemon(0);
  EXPECT_TRUE(std::ifstream(SnapshotPath(root + "/daemon-0")).good());
  cluster.RestartDaemon(0, LocalCluster::RestartMode::kDurable);
  const ReqId durable_probe = driver.InjectCombine(0);
  driver.WaitCompleted(durable_probe);
  EXPECT_EQ(driver.history().record(durable_probe).retval, 5.0);

  cluster.KillDaemon(0);
  cluster.RestartDaemon(0, LocalCluster::RestartMode::kAmnesia);
  EXPECT_FALSE(std::ifstream(SnapshotPath(root + "/daemon-0")).good());
  const ReqId amnesia_probe = driver.InjectCombine(0);
  driver.WaitCompleted(amnesia_probe);
  EXPECT_EQ(driver.history().record(amnesia_probe).retval, 0.0);

  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

// --- replay-log GC bound under chaos (satellite c) ----------------------

// The memory-bound claim itself, on a fault-free cluster where it is
// deterministic: with acks off a session log NEVER shrinks (hello-ack GC
// only fires on resume handshakes, and nothing reconnects fault-free), so
// its high water equals the total frames ever routed on the busiest
// directed edge and grows with the workload. With periodic acks the high
// water is capped by the unacked window — frames in flight plus
// ack_interval — independent of how much traffic the workload generates.
TEST(ReplayLogGc, AcksBoundTheLogThatOtherwiseGrowsWithTraffic) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  // pull-all + readheavy: no leases are ever granted, so every combine
  // probes across the daemon cut — per-edge traffic is linear in the
  // request count instead of being suppressed by leases, which is exactly
  // the regime where an unbounded replay log hurts.
  const RequestSequence sigma =
      MakeWorkload("readheavy", tree, 160, /*seed=*/21);

  const auto hwm_for = [&](std::uint64_t ack_interval) {
    LocalCluster::Options options;
    options.daemons = 2;
    options.placement = "rr";  // almost every edge crosses TCP
    options.policy = "pull-all";
    options.durability.ack_interval = ack_interval;
    LocalCluster cluster(ParentVector(tree), options);
    NetDriver& driver = cluster.driver();
    // Sequential injection: pipelined combines coalesce into shared probe
    // waves (pndg de-duplication), which would keep traffic — and thus
    // the ungated log — artificially small. One wave per request makes
    // per-edge traffic scale with the workload.
    for (const Request& r : sigma) {
      const ReqId id = r.op == ReqType::kWrite
                           ? driver.InjectWrite(r.node, r.arg)
                           : driver.InjectCombine(r.node);
      driver.WaitCompleted(id);
    }
    driver.WaitAllCompleted();
    driver.WaitQuiescent();
    const std::uint64_t hwm = cluster.ReplayLogHighWater();
    cluster.Stop();
    EXPECT_EQ(cluster.DaemonError(), "");
    return hwm;
  };

  const std::uint64_t no_acks = hwm_for(/*ack_interval=*/0);
  const std::uint64_t acked = hwm_for(/*ack_interval=*/4);
  ASSERT_GT(acked, 0u);
  // 160 readheavy requests on rr-placed kary2/15 under pull-all route
  // hundreds of frames per directed edge; the unacked window stays in the
  // tens. The 2x gap (instead of a strict <) absorbs protocol
  // nondeterminism under pipelined injection while a GC regression — high
  // water back at traffic scale — still fails loudly.
  EXPECT_GT(no_acks, 2 * acked)
      << "no_acks hwm " << no_acks << " vs acked hwm " << acked;
}

// The same bound under the "chaos" preset (corruption-triggered link
// resets plus a crash-restart): sessions accumulate parked frames while
// links are down, but hello acks on resume plus periodic kPeerAck frames
// keep the high water at unacked-window scale. The absolute cap is
// calibrated at ~4x the typically observed high water (tens) so a
// scheduling hiccup cannot flake it.
TEST(ReplayLogGc, HighWaterStaysBoundedUnderChaosWithAcks) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma =
      MakeWorkload("mixed50", tree, 120, /*seed=*/21);
  const FaultSchedule schedule = FaultSchedule::Named("chaos");

  ChaosNetOptions options;
  options.cluster.daemons = 2;
  options.cluster.placement = "rr";
  options.cluster.durability.ack_interval = 4;
  const ChaosNetResult result =
      RunChaosNetWorkload(ParentVector(tree), sigma, schedule, options);

  ASSERT_GT(result.replay_log_hwm, 0u);
  EXPECT_LE(result.replay_log_hwm, 192u);
}

// --- wire-v2 peer interop (satellite d, daemon side) --------------------

// A raw frame as it appeared on the wire: the decoded form plus the
// version byte the sender actually encoded.
struct RawFrame {
  std::uint8_t version = 0;
  WireFrame frame;
};

bool SendAllBytes(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    return false;
  }
  return true;
}

// Reads from `fd` until `want` complete frames have accumulated in *out
// (or `timeout_ms` passes / the peer closes). Unlike FrameConn this keeps
// the on-wire version byte of every frame, which is the point: the test
// asserts the daemon encodes v2 on a session whose peer spoke v2.
bool PumpRawFrames(int fd, std::vector<std::uint8_t>* buf,
                   std::vector<RawFrame>* out, std::size_t want,
                   int timeout_ms) {
  const std::int64_t deadline = NowMs() + timeout_ms;
  while (out->size() < want) {
    const std::int64_t left = deadline - NowMs();
    if (left <= 0) return false;
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left)) <= 0) continue;
    std::uint8_t tmp[4096];
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    buf->insert(buf->end(), tmp, tmp + static_cast<std::size_t>(n));
    while (buf->size() >= 4) {
      const std::uint32_t len = static_cast<std::uint32_t>((*buf)[0]) |
                                (static_cast<std::uint32_t>((*buf)[1]) << 8) |
                                (static_cast<std::uint32_t>((*buf)[2]) << 16) |
                                (static_cast<std::uint32_t>((*buf)[3]) << 24);
      if (buf->size() < 4u + len) break;
      RawFrame rf;
      rf.version = (*buf)[5];
      DecodeResult dr = DecodeFrame(buf->data(), 4u + len);
      if (dr.status != DecodeStatus::kOk) return false;
      rf.frame = std::move(dr.frame);
      out->push_back(std::move(rf));
      buf->erase(buf->begin(), buf->begin() + 4u + static_cast<long>(len));
    }
  }
  return true;
}

// A v3 daemon faces a fake peer that speaks treeagg-wire-v2: every frame
// the daemon sends back on that session must be v2-encoded, it must never
// send kPeerAck there (the frame would poison a v2 decoder), and with no
// acks arriving the session's replay log is fully retained (log_base
// stays 0) — GC is simply off for that peer.
TEST(WireV2Interop, V2PeerGetsV2FramesNoAcksAndFullLogRetention) {
  // A 2-node path: node 1 (a leaf) on the real daemon, node 0 on the fake
  // peer "daemon 0". 0 < 1, so the fake peer is the connection initiator
  // and the real daemon just accepts.
  ClusterConfig config;
  config.tree_parent = {0, 0};
  config.policy = "push-all";
  config.op = "sum";
  config.daemons = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  config.node_daemon = {0, 1};
  config.Validate();

  NodeDaemon::Options options;
  // Eager acks: one processed frame past the last ack is enough to send
  // kPeerAck on a v3 session, so "no ack arrived" below is a real
  // statement about the v2 downgrade, not about the interval.
  options.durability.ack_interval = 1;
  NodeDaemon daemon(1, config, options);
  daemon.Bind();
  const std::uint16_t port = daemon.BoundPort();
  daemon.SetResolvedPorts({0, port});
  std::thread runner([&daemon] { daemon.Run(); });

  const TransportOptions topts;
  std::string err;
  ScopedFd peer_fd = ConnectWithBackoff("127.0.0.1", port, topts, &err);
  ASSERT_TRUE(peer_fd.valid()) << err;

  WireFrame hello;
  hello.type = FrameType::kPeerHello;
  hello.daemon_id = 0;
  hello.resume = 0;
  ASSERT_TRUE(SendAllBytes(peer_fd.get(), EncodeFrame(hello, /*version=*/2)));

  std::vector<std::uint8_t> peer_buf;
  std::vector<RawFrame> peer_frames;
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 1, 10000));
  ASSERT_EQ(peer_frames[0].frame.type, FrameType::kPeerHello);
  EXPECT_EQ(peer_frames[0].frame.daemon_id, 1u);
  // The reply hello came back v2-encoded — no ack field on the wire.
  EXPECT_EQ(peer_frames[0].version, 2);
  EXPECT_FALSE(peer_frames[0].frame.ack_valid);

  // Driver connection: v3 as always (dialects are per-session).
  ScopedFd driver_fd = ConnectWithBackoff("127.0.0.1", port, topts, &err);
  ASSERT_TRUE(driver_fd.valid()) << err;
  FrameConn driver(std::move(driver_fd), topts);
  WireFrame driver_hello;
  driver_hello.type = FrameType::kDriverHello;
  driver.SendFrame(driver_hello);
  while (driver.WantWrite()) ASSERT_TRUE(driver.Flush());

  const auto next_driver_frame = [&](WireFrame* frame) {
    const std::int64_t deadline = NowMs() + 10000;
    while (NowMs() < deadline) {
      if (driver.NextFrame(frame) == DecodeStatus::kOk) return true;
      struct pollfd pfd = {driver.fd(), POLLIN, 0};
      ::poll(&pfd, 1, 100);
      if (!driver.ReadAvailable()) return false;
    }
    return false;
  };

  // Probe node 1 from the fake peer: the leaf responds immediately and
  // push-all grants the lease, so the driver writes below each push an
  // update back to us.
  WireFrame probe;
  probe.type = FrameType::kProtocol;
  probe.msg.type = MsgType::kProbe;
  probe.msg.from = 0;
  probe.msg.to = 1;
  ASSERT_TRUE(SendAllBytes(peer_fd.get(), EncodeFrame(probe, /*version=*/2)));
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 2, 10000));
  ASSERT_EQ(peer_frames[1].frame.type, FrameType::kProtocol);
  EXPECT_EQ(peer_frames[1].frame.msg.type, MsgType::kResponse);

  // Three driver writes at node 1 (each pushes an update to the fake
  // peer), interleaved with three v2 kUpdate frames FROM the fake peer —
  // they drive the daemon's processed count well past ack_interval, so a
  // v3 session in its place would have been acked repeatedly.
  for (int i = 0; i < 3; ++i) {
    WireFrame write;
    write.type = FrameType::kInjectWrite;
    write.req = i + 1;
    write.node = 1;
    write.arg = 1.5 * (i + 1);
    driver.SendFrame(write);
    while (driver.WantWrite()) ASSERT_TRUE(driver.Flush());
    WireFrame done;
    ASSERT_TRUE(next_driver_frame(&done));
    EXPECT_EQ(done.type, FrameType::kWriteDone);

    WireFrame update;
    update.type = FrameType::kProtocol;
    update.msg.type = MsgType::kUpdate;
    update.msg.from = 0;
    update.msg.to = 1;
    update.msg.x = static_cast<Real>(i);
    update.msg.id = i + 1;
    ASSERT_TRUE(
        SendAllBytes(peer_fd.get(), EncodeFrame(update, /*version=*/2)));
  }

  // hello + response + 3 pushed updates = 5 frames from the daemon. Any
  // kPeerAck triggered by our updates would have been flushed in the same
  // batch as the pushed update, so the grace pump below would catch it.
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 5, 10000));
  EXPECT_FALSE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 6, 300));
  for (const RawFrame& rf : peer_frames) {
    EXPECT_EQ(rf.version, 2) << "daemon sent a v3 frame to a v2 peer";
    EXPECT_NE(rf.frame.type, FrameType::kPeerAck)
        << "daemon sent kPeerAck to a v2 peer";
  }

  WireFrame shutdown;
  shutdown.type = FrameType::kShutdown;
  driver.SendFrame(shutdown);
  while (driver.WantWrite()) ASSERT_TRUE(driver.Flush());
  runner.join();
  EXPECT_EQ(daemon.error(), "");

  // No acks ever arrived, so nothing was GC'd: the session log still
  // holds every frame routed to peer 0 (1 response + 3 updates).
  const NodeDaemon::DurableState durable = daemon.ExportDurable();
  ASSERT_EQ(durable.sessions.size(), 1u);
  EXPECT_EQ(durable.sessions[0].peer, 0);
  EXPECT_EQ(durable.sessions[0].log_base, 0u);
  EXPECT_EQ(durable.sessions[0].log.size(), 4u);
  EXPECT_EQ(durable.sessions[0].processed, 4u);  // probe + 3 updates
  EXPECT_EQ(daemon.ReplayLogHighWater(), 4u);
}

// Delay profiles are a SEND-TIME hold, not a wire feature: a daemon whose
// injector has an armed gray profile faces a fake peer that spoke a v2
// hello. Every frame the peer receives arrives late (the injector's
// delayed counter proves the hold fired) yet is still strictly v2-encoded
// with only pre-existing frame types — an old-dialect peer cannot observe
// the second-generation delay vocabulary in the bytes.
TEST(WireV2Interop, DelayProfilesNeverLeakIntoTheWireFormat) {
  ClusterConfig config;
  config.tree_parent = {0, 0};
  config.policy = "push-all";
  config.op = "sum";
  config.daemons = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  config.node_daemon = {0, 1};
  config.Validate();

  NodeDaemon::Options options;
  PeerFaultInjector::Options inj;
  inj.seed = 77;
  inj.gray = DelayProfile{500, 2000};  // every outbound peer frame is slow
  options.fault_injector = std::make_shared<PeerFaultInjector>(inj);
  options.fault_injector->ArmGray();
  NodeDaemon daemon(1, config, options);
  daemon.Bind();
  const std::uint16_t port = daemon.BoundPort();
  daemon.SetResolvedPorts({0, port});
  std::thread runner([&daemon] { daemon.Run(); });

  const TransportOptions topts;
  std::string err;
  ScopedFd peer_fd = ConnectWithBackoff("127.0.0.1", port, topts, &err);
  ASSERT_TRUE(peer_fd.valid()) << err;

  WireFrame hello;
  hello.type = FrameType::kPeerHello;
  hello.daemon_id = 0;
  hello.resume = 0;
  ASSERT_TRUE(SendAllBytes(peer_fd.get(), EncodeFrame(hello, /*version=*/2)));

  std::vector<std::uint8_t> peer_buf;
  std::vector<RawFrame> peer_frames;
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 1, 10000));
  ASSERT_EQ(peer_frames[0].frame.type, FrameType::kPeerHello);

  // Three probes: each kResponse crosses the armed gray profile, so it is
  // priced with a delay and parked in the held queue before transmission.
  for (int i = 0; i < 3; ++i) {
    WireFrame probe;
    probe.type = FrameType::kProtocol;
    probe.msg.type = MsgType::kProbe;
    probe.msg.from = 0;
    probe.msg.to = 1;
    ASSERT_TRUE(SendAllBytes(peer_fd.get(), EncodeFrame(probe, /*version=*/2)));
  }
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 4, 10000));

  // The hold provably fired...
  EXPECT_GT(options.fault_injector->delayed_count(), 0u)
      << "gray profile never priced a frame";
  EXPECT_GT(daemon.FramesHeld(), 0u) << "no frame waited in the held queue";
  // ...and nothing about the wire changed: strictly v2 bytes, only frame
  // types a v2 decoder knows, and PumpRawFrames already failed the test if
  // any frame did not decode cleanly.
  for (const RawFrame& rf : peer_frames) {
    EXPECT_EQ(rf.version, 2) << "daemon sent a non-v2 frame to a v2 peer";
    EXPECT_TRUE(rf.frame.type == FrameType::kPeerHello ||
                rf.frame.type == FrameType::kProtocol)
        << "unexpected frame type for a v2 peer";
    EXPECT_FALSE(rf.frame.ack_valid);
  }

  daemon.RequestStop();
  runner.join();
  EXPECT_EQ(daemon.error(), "");
}

// Policy selection rides the existing wire with no frame changes: a
// daemon configured with an MLAP spec ("mlap(1)") builds the same RWW
// mechanism — the delay-and-batch transform happens at the injection
// side, never in the daemon — so a fake peer that spoke a v2 hello sees
// strictly v2 bytes and only pre-existing frame types. If MLAP had leaked
// into the wire (a new frame type, a version bump, a policy field), this
// peer's decoder would have caught it.
TEST(WireV2Interop, MlapPolicySelectionNeverLeaksIntoTheWireFormat) {
  ClusterConfig config;
  config.tree_parent = {0, 0};
  config.policy = "mlap(1)";
  config.op = "sum";
  config.daemons = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  config.node_daemon = {0, 1};
  config.Validate();

  NodeDaemon daemon(1, config, NodeDaemon::Options{});
  daemon.Bind();
  const std::uint16_t port = daemon.BoundPort();
  daemon.SetResolvedPorts({0, port});
  std::thread runner([&daemon] { daemon.Run(); });

  const TransportOptions topts;
  std::string err;
  ScopedFd peer_fd = ConnectWithBackoff("127.0.0.1", port, topts, &err);
  ASSERT_TRUE(peer_fd.valid()) << err;

  WireFrame hello;
  hello.type = FrameType::kPeerHello;
  hello.daemon_id = 0;
  hello.resume = 0;
  ASSERT_TRUE(SendAllBytes(peer_fd.get(), EncodeFrame(hello, /*version=*/2)));

  std::vector<std::uint8_t> peer_buf;
  std::vector<RawFrame> peer_frames;
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 1, 10000));
  ASSERT_EQ(peer_frames[0].frame.type, FrameType::kPeerHello);
  EXPECT_EQ(peer_frames[0].frame.daemon_id, 1u);

  // Three probes at the leaf: each is served by the unmodified RWW
  // mechanism and answered with a plain kResponse.
  for (int i = 0; i < 3; ++i) {
    WireFrame probe;
    probe.type = FrameType::kProtocol;
    probe.msg.type = MsgType::kProbe;
    probe.msg.from = 0;
    probe.msg.to = 1;
    ASSERT_TRUE(SendAllBytes(peer_fd.get(), EncodeFrame(probe, /*version=*/2)));
  }
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 4, 10000));

  for (const RawFrame& rf : peer_frames) {
    EXPECT_EQ(rf.version, 2) << "daemon sent a non-v2 frame to a v2 peer";
    EXPECT_TRUE(rf.frame.type == FrameType::kPeerHello ||
                rf.frame.type == FrameType::kProtocol)
        << "unexpected frame type for a v2 peer";
    EXPECT_FALSE(rf.frame.ack_valid);
  }

  daemon.RequestStop();
  runner.join();
  EXPECT_EQ(daemon.error(), "");
}

// A v4 daemon with frame batching CONFIGURED faces a fake peer that spoke
// a v3 hello: the session downgrades, so every frame the daemon sends
// there must be v3-encoded and must never be kBatch (a v3 decoder would
// reject the frame type) — the coalescer and its linger simply do not
// apply to that session. Unlike the v2 downgrade, v3 keeps kPeerAck, so
// acks still flow; the batching knobs must not change that either.
TEST(WireV3Interop, V3PeerGetsUnbatchedV3FramesButStillGetsAcks) {
  ClusterConfig config;
  config.tree_parent = {0, 0};
  config.policy = "push-all";
  config.op = "sum";
  config.daemons = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  config.node_daemon = {0, 1};
  config.Validate();

  NodeDaemon::Options options;
  options.durability.ack_interval = 1;
  // Batching on, with a linger long enough that any frame wrongly routed
  // through the coalescer would visibly stall (the pumps below use much
  // shorter grace windows than this).
  options.transport.batch_bytes = 65536;
  options.transport.batch_flush_us = 5'000'000;
  NodeDaemon daemon(1, config, options);
  daemon.Bind();
  const std::uint16_t port = daemon.BoundPort();
  daemon.SetResolvedPorts({0, port});
  std::thread runner([&daemon] { daemon.Run(); });

  const TransportOptions topts;
  std::string err;
  ScopedFd peer_fd = ConnectWithBackoff("127.0.0.1", port, topts, &err);
  ASSERT_TRUE(peer_fd.valid()) << err;

  WireFrame hello;
  hello.type = FrameType::kPeerHello;
  hello.daemon_id = 0;
  hello.resume = 0;
  ASSERT_TRUE(SendAllBytes(peer_fd.get(), EncodeFrame(hello, /*version=*/3)));

  std::vector<std::uint8_t> peer_buf;
  std::vector<RawFrame> peer_frames;
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 1, 10000));
  ASSERT_EQ(peer_frames[0].frame.type, FrameType::kPeerHello);
  EXPECT_EQ(peer_frames[0].frame.daemon_id, 1u);
  EXPECT_EQ(peer_frames[0].version, 3);

  // Driver connection: v4 as always (dialects are per-session).
  ScopedFd driver_fd = ConnectWithBackoff("127.0.0.1", port, topts, &err);
  ASSERT_TRUE(driver_fd.valid()) << err;
  FrameConn driver(std::move(driver_fd), topts);
  WireFrame driver_hello;
  driver_hello.type = FrameType::kDriverHello;
  driver.SendFrame(driver_hello);
  while (driver.WantWrite()) ASSERT_TRUE(driver.Flush());

  const auto next_driver_frame = [&](WireFrame* frame) {
    const std::int64_t deadline = NowMs() + 10000;
    while (NowMs() < deadline) {
      if (driver.NextFrame(frame) == DecodeStatus::kOk) return true;
      struct pollfd pfd = {driver.fd(), POLLIN, 0};
      ::poll(&pfd, 1, 100);
      if (!driver.ReadAvailable()) return false;
    }
    return false;
  };

  // Same traffic shape as the v2 test: one probe (leaf responds), then
  // three driver writes each pushing an update to the fake peer,
  // interleaved with three updates FROM the fake peer (each one bumps the
  // processed count, so with ack_interval=1 each earns a kPeerAck).
  WireFrame probe;
  probe.type = FrameType::kProtocol;
  probe.msg.type = MsgType::kProbe;
  probe.msg.from = 0;
  probe.msg.to = 1;
  ASSERT_TRUE(SendAllBytes(peer_fd.get(), EncodeFrame(probe, /*version=*/3)));

  for (int i = 0; i < 3; ++i) {
    WireFrame write;
    write.type = FrameType::kInjectWrite;
    write.req = i + 1;
    write.node = 1;
    write.arg = 1.5 * (i + 1);
    driver.SendFrame(write);
    while (driver.WantWrite()) ASSERT_TRUE(driver.Flush());
    WireFrame done;
    ASSERT_TRUE(next_driver_frame(&done));
    EXPECT_EQ(done.type, FrameType::kWriteDone);

    WireFrame update;
    update.type = FrameType::kProtocol;
    update.msg.type = MsgType::kUpdate;
    update.msg.from = 0;
    update.msg.to = 1;
    update.msg.x = static_cast<Real>(i);
    update.msg.id = i + 1;
    ASSERT_TRUE(
        SendAllBytes(peer_fd.get(), EncodeFrame(update, /*version=*/3)));
  }

  // hello + response + 3 pushed updates + 4 acks (probe and each update
  // processed, ack_interval=1) = 9 frames. If any protocol frame had gone
  // through the coalescer instead, it would still be lingering (5s) and
  // this pump would time out.
  ASSERT_TRUE(PumpRawFrames(peer_fd.get(), &peer_buf, &peer_frames, 9, 10000));
  std::size_t acks = 0;
  std::size_t protocol = 0;
  std::uint64_t last_ack = 0;
  for (const RawFrame& rf : peer_frames) {
    EXPECT_EQ(rf.version, 3) << "daemon sent a non-v3 frame to a v3 peer";
    EXPECT_NE(rf.frame.type, FrameType::kBatch)
        << "daemon sent kBatch to a v3 peer";
    if (rf.frame.type == FrameType::kPeerAck) {
      ++acks;
      EXPECT_TRUE(rf.frame.ack_valid);
      EXPECT_GT(rf.frame.ack, last_ack);  // cumulative, strictly advancing
      last_ack = rf.frame.ack;
    }
    if (rf.frame.type == FrameType::kProtocol) ++protocol;
  }
  EXPECT_EQ(acks, 4u);      // v3 kept acks: batching config changed nothing
  EXPECT_EQ(protocol, 4u);  // response + 3 updates, one frame each

  WireFrame shutdown;
  shutdown.type = FrameType::kShutdown;
  driver.SendFrame(shutdown);
  while (driver.WantWrite()) ASSERT_TRUE(driver.Flush());
  runner.join();
  EXPECT_EQ(daemon.error(), "");
}

// --- real-process death matrix (satellite b) ----------------------------

// Reserves `n` distinct loopback ports by binding ephemeral listeners,
// recording their ports, and closing them; the serve children re-bind the
// same ports (SO_REUSEADDR) moments later.
std::vector<std::uint16_t> ReservePorts(int n) {
  std::vector<TcpListener> listeners;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < n; ++i) {
    listeners.push_back(TcpListener::Bind("127.0.0.1", 0));
    ports.push_back(listeners.back().port());
  }
  return ports;
}

// fork+exec of `treeagg_cli serve` (only async-signal-safe calls between
// fork and exec — this test binary may have run threads before).
pid_t SpawnServe(const std::string& cluster_file, int daemon_id,
                 const std::string& state_dir,
                 const std::vector<std::string>& serve_extra = {}) {
  std::vector<std::string> args = {TREEAGG_CLI_PATH,
                                   "serve",
                                   "--cluster",
                                   cluster_file,
                                   "--daemon",
                                   std::to_string(daemon_id),
                                   "--state-dir",
                                   state_dir};
  args.insert(args.end(), serve_extra.begin(), serve_extra.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) ::dup2(null_fd, 1);  // silence "listening" chatter
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

// Waits for a child to exit after the driver's kShutdown; escalates to
// SIGKILL if it has not exited within ~5s.
void ReapChild(pid_t pid) {
  if (pid <= 0) return;
  for (int i = 0; i < 500; ++i) {
    if (::waitpid(pid, nullptr, WNOHANG) == pid) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

struct DeathTriple {
  std::string shape;
  NodeId n = 0;
  std::string workload;
  std::string policy;
  std::string op;
  int daemons = 1;
  std::string placement;
  std::uint64_t seed = 0;
  // Extra `serve` flags for every daemon in the cell (batching, reactors).
  std::vector<std::string> serve_extra;
};

// The scaled-transport configuration the batched matrix runs under —
// mirrors the BackendEquivalenceBatched suite: a size cap small enough
// that batches actually split, a real linger, two reactors per daemon.
std::vector<std::string> BatchedServeFlags() {
  return {"--batch-bytes", "512", "--batch-flush-us", "100",
          "--reactors",    "2"};
}

// One cell of the matrix: spawn a real serve process per daemon, SIGKILL
// one mid-workload, restart it from its --state-dir, and require the
// ConvergenceChecker's full verdict on the same triples the cross-backend
// equivalence suite uses. The driver edge is drained before the kill
// (re-injection on that edge is at-least-once, a documented caveat shared
// with the in-process harness), but peer-protocol traffic is in whatever
// state the workload left it — exactly-once there is what the write-ahead
// snapshot rule has to deliver.
void RunDeathMatrixCell(const DeathTriple& t) {
  SCOPED_TRACE(t.shape + "/" + std::to_string(t.n) + "/" + t.workload + "/" +
               t.policy + "/" + t.op + "/d" + std::to_string(t.daemons) + "/" +
               t.placement);
  const Tree tree = MakeShape(t.shape, t.n, t.seed);
  const RequestSequence sigma = MakeWorkload(t.workload, tree, 40, t.seed + 7);

  ClusterConfig config;
  config.tree_parent = ParentVector(tree);
  config.policy = t.policy;
  config.op = t.op;
  const std::vector<std::uint16_t> ports = ReservePorts(t.daemons);
  for (int d = 0; d < t.daemons; ++d) {
    config.daemons.push_back({"127.0.0.1", ports[static_cast<std::size_t>(d)]});
  }
  config.node_daemon = AssignNodes(config.tree_parent, t.daemons, t.placement);
  config.Validate();

  const std::string root = ScratchDir(
      "matrix_" + t.shape + "_" + t.workload + "_s" + std::to_string(t.seed) +
      (t.serve_extra.empty() ? "" : "_batched"));
  std::vector<std::string> state_dirs;
  for (int d = 0; d < t.daemons; ++d) {
    state_dirs.push_back(root + "/daemon-" + std::to_string(d));
    RemoveSnapshot(state_dirs.back());  // stale state from a previous run
  }
  const std::string cluster_file = root + "/cluster.txt";
  {
    std::ofstream out(cluster_file);
    WriteClusterConfig(out, config);
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(t.daemons), -1);
  for (int d = 0; d < t.daemons; ++d) {
    pids[static_cast<std::size_t>(d)] =
        SpawnServe(cluster_file, d, state_dirs[d], t.serve_extra);
    ASSERT_GT(pids[static_cast<std::size_t>(d)], 0);
  }

  NetDriver driver(config);
  driver.Connect();

  const int victim = t.daemons == 1 ? 0 : 1;
  const std::size_t kill_at = sigma.size() / 3;
  const std::size_t respawn_at = 2 * sigma.size() / 3;
  bool down = false;
  std::int64_t kill_clock = -1;
  std::size_t reinjected = 0;
  RequestSequence deferred;

  const auto inject = [&](const Request& r) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  };

  for (std::size_t i = 0; i < sigma.size(); ++i) {
    if (i == kill_at) {
      driver.WaitAllCompleted();  // drain the driver edge before the kill
      kill_clock = driver.clock();
      ASSERT_EQ(::kill(pids[static_cast<std::size_t>(victim)], SIGKILL), 0);
      ::waitpid(pids[static_cast<std::size_t>(victim)], nullptr, 0);
      pids[static_cast<std::size_t>(victim)] = -1;
      driver.MarkDaemonDown(victim);
      down = true;
    }
    if (i == respawn_at) {
      pids[static_cast<std::size_t>(victim)] =
          SpawnServe(cluster_file, victim, state_dirs[victim], t.serve_extra);
      ASSERT_GT(pids[static_cast<std::size_t>(victim)], 0);
      driver.ReconnectDaemon(victim);
      reinjected = driver.ReinjectIncomplete({victim});
      down = false;
      for (const Request& r : deferred) inject(r);
      deferred.clear();
    }
    const Request& r = sigma[i];
    if (down && config.node_daemon[static_cast<std::size_t>(r.node)] ==
                    victim) {
      deferred.push_back(r);
    } else {
      inject(r);
    }
  }

  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const std::int64_t heal_clock = driver.clock();

  std::vector<ReqId> probe_ids;
  for (NodeId u = 0; u < tree.size(); ++u) {
    probe_ids.push_back(driver.InjectCombine(u));
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const NetDriver::HarvestResult harvest = driver.Harvest();

  ConvergenceOptions check;
  check.fault_windows = {{kill_clock, heal_clock + 1}};
  check.require_full_causal = reinjected == 0;
  const ConvergenceReport report =
      CheckConvergence(driver.history(), harvest.ghosts, OpByName(t.op),
                       tree.size(), probe_ids, check);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_TRUE(report.all_completed);
  EXPECT_EQ(report.divergent_probes, 0u);
  EXPECT_TRUE(report.outside_ok);

  // The victim really did restart from disk: its snapshot file exists.
  EXPECT_TRUE(std::ifstream(SnapshotPath(state_dirs[victim])).good());

  driver.Shutdown();
  for (const pid_t pid : pids) ReapChild(pid);
}

// The same 7 triples as tests/integration/equivalence_test.cc.
TEST(ProcessDeathMatrix, KaryMixedRww) {
  RunDeathMatrixCell({"kary2", 15, "mixed50", "RWW", "sum", 2, "block", 1, {}});
}

TEST(ProcessDeathMatrix, PathReadHeavyPushAll) {
  RunDeathMatrixCell({"path", 9, "readheavy", "push-all", "sum", 2, "rr", 2, {}});
}

TEST(ProcessDeathMatrix, StarWriteHeavyPullAll) {
  RunDeathMatrixCell(
      {"star", 12, "writeheavy", "pull-all", "sum", 3, "block", 3, {}});
}

TEST(ProcessDeathMatrix, Kary4HotspotRwwMax) {
  RunDeathMatrixCell({"kary4", 13, "hotspot", "RWW", "max", 2, "rr", 4, {}});
}

TEST(ProcessDeathMatrix, RandomMixedLeaseMin) {
  RunDeathMatrixCell({"random", 10, "mixed25", "RWW", "min", 4, "rr", 5, {}});
}

TEST(ProcessDeathMatrix, PathRoundRobinPushAllSingleDaemon) {
  RunDeathMatrixCell(
      {"path", 7, "roundrobin", "push-all", "sum", 1, "block", 6, {}});
}

TEST(ProcessDeathMatrix, KaryMixed75PullAllFourDaemons) {
  RunDeathMatrixCell(
      {"kary2", 15, "mixed75", "pull-all", "sum", 4, "block", 7, {}});
}

// The same matrix with the scaled transport on every daemon: per-edge
// frame batching plus two reactors. A SIGKILL can now land while messages
// sit in a coalescer that will never flush — recovery works anyway
// because every message enters the replay log BEFORE the coalescer, so
// the session-resume handshake replays exactly what the dead batch held.
TEST(ProcessDeathMatrixBatched, KaryMixedRww) {
  RunDeathMatrixCell({"kary2", 15, "mixed50", "RWW", "sum", 2, "block", 1,
                      BatchedServeFlags()});
}

TEST(ProcessDeathMatrixBatched, PathReadHeavyPushAll) {
  RunDeathMatrixCell({"path", 9, "readheavy", "push-all", "sum", 2, "rr", 2,
                      BatchedServeFlags()});
}

TEST(ProcessDeathMatrixBatched, StarWriteHeavyPullAll) {
  RunDeathMatrixCell({"star", 12, "writeheavy", "pull-all", "sum", 3, "block",
                      3, BatchedServeFlags()});
}

TEST(ProcessDeathMatrixBatched, Kary4HotspotRwwMax) {
  RunDeathMatrixCell(
      {"kary4", 13, "hotspot", "RWW", "max", 2, "rr", 4, BatchedServeFlags()});
}

TEST(ProcessDeathMatrixBatched, RandomMixedLeaseMin) {
  RunDeathMatrixCell({"random", 10, "mixed25", "RWW", "min", 4, "rr", 5,
                      BatchedServeFlags()});
}

TEST(ProcessDeathMatrixBatched, PathRoundRobinPushAllSingleDaemon) {
  RunDeathMatrixCell({"path", 7, "roundrobin", "push-all", "sum", 1, "block",
                      6, BatchedServeFlags()});
}

TEST(ProcessDeathMatrixBatched, KaryMixed75PullAllFourDaemonsSubtree) {
  // Subtree placement, like the batched equivalence pass: DFS-contiguous
  // blocks are the default large-tree mode.
  RunDeathMatrixCell({"kary2", 15, "mixed75", "pull-all", "sum", 4, "subtree",
                      7, BatchedServeFlags()});
}

// SIGKILL mid-migration, in the cruelest window: the target daemon has
// installed the node (and persisted it), the source still hosts it —
// commit never ran — and the SOURCE dies. On restart from disk both
// daemons host the node; re-applying the same plan must resolve the dual
// host through the idempotent install/commit pair and converge on the
// usual full verdict. The migration steps are driven one frame at a time
// through the driver's own MigrateOut/MigrateIn so the kill lands in the
// window deterministically instead of racing a blocking ApplyPlacement.
TEST(ProcessDeathMatrix, SigkillMidMigrationConverges) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 40, /*seed=*/8);

  ClusterConfig config;
  config.tree_parent = ParentVector(tree);
  config.policy = "RWW";
  config.op = "sum";
  const int daemons = 3;
  const std::vector<std::uint16_t> ports = ReservePorts(daemons);
  for (int d = 0; d < daemons; ++d) {
    config.daemons.push_back({"127.0.0.1", ports[static_cast<std::size_t>(d)]});
  }
  // Block placement: nodes 0-4 on daemon 0, 5-9 on daemon 1, 10-14 on 2.
  config.node_daemon = AssignNodes(config.tree_parent, daemons, "block");
  config.Validate();

  const std::string root = ScratchDir("sigkill_mid_migration");
  std::vector<std::string> state_dirs;
  for (int d = 0; d < daemons; ++d) {
    state_dirs.push_back(root + "/daemon-" + std::to_string(d));
    RemoveSnapshot(state_dirs.back());
  }
  const std::string cluster_file = root + "/cluster.txt";
  {
    std::ofstream out(cluster_file);
    WriteClusterConfig(out, config);
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(daemons), -1);
  for (int d = 0; d < daemons; ++d) {
    pids[static_cast<std::size_t>(d)] =
        SpawnServe(cluster_file, d, state_dirs[d]);
    ASSERT_GT(pids[static_cast<std::size_t>(d)], 0);
  }

  NetDriver driver(config);
  driver.Connect();

  const auto inject = [&](const Request& r) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  };

  // First third of the workload, fully settled before the migration.
  const std::size_t migrate_at = sigma.size() / 3;
  for (std::size_t i = 0; i < migrate_at; ++i) inject(sigma[i]);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();

  // The plan: nodes 2 and 3 hop 0 -> 2, node 6 leaves the victim for
  // daemon 0, node 12 hops 2 -> 0.
  std::vector<int> plan = config.node_daemon;
  plan[2] = 2;
  plan[3] = 2;
  plan[6] = 0;
  plan[12] = 0;

  // Step node 6's migration by hand: export from daemon 1, install on
  // daemon 0 (which persists the adopted node)... and never commit.
  const int victim = 1;
  const NetDriver::MigrationBlob blob = driver.MigrateOut(6);
  ASSERT_TRUE(blob.hosted);
  driver.MigrateIn(6, /*target=*/0, blob);

  const std::int64_t kill_clock = driver.clock();
  ASSERT_EQ(::kill(pids[static_cast<std::size_t>(victim)], SIGKILL), 0);
  ::waitpid(pids[static_cast<std::size_t>(victim)], nullptr, 0);
  pids[static_cast<std::size_t>(victim)] = -1;
  driver.MarkDaemonDown(victim);

  pids[static_cast<std::size_t>(victim)] =
      SpawnServe(cluster_file, victim, state_dirs[victim]);
  ASSERT_GT(pids[static_cast<std::size_t>(victim)], 0);
  driver.ReconnectDaemon(victim);
  const std::size_t reinjected = driver.ReinjectIncomplete({victim});

  // Node 6 is now hosted by BOTH daemons (the restarted victim restored it
  // from disk; commit never ran, so the driver map still names the
  // victim). Applying the full plan re-exports it from the restarted
  // source, hits the idempotent install on the target, and commits — plus
  // the three untouched moves.
  EXPECT_EQ(driver.config().node_daemon[6], victim);
  EXPECT_EQ(driver.ApplyPlacement(plan), 4u);
  EXPECT_EQ(driver.config().node_daemon, plan);
  const std::int64_t heal_clock = driver.clock();

  for (std::size_t i = migrate_at; i < sigma.size(); ++i) inject(sigma[i]);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();

  std::vector<ReqId> probe_ids;
  for (NodeId u = 0; u < tree.size(); ++u) {
    probe_ids.push_back(driver.InjectCombine(u));
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const NetDriver::HarvestResult harvest = driver.Harvest();

  ConvergenceOptions check;
  check.fault_windows = {{kill_clock, heal_clock + 1}};
  check.require_full_causal = reinjected == 0;
  const ConvergenceReport report =
      CheckConvergence(driver.history(), harvest.ghosts, SumOp(), tree.size(),
                       probe_ids, check);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_TRUE(report.all_completed);
  EXPECT_EQ(report.divergent_probes, 0u);
  EXPECT_TRUE(report.outside_ok);
  EXPECT_TRUE(std::ifstream(SnapshotPath(state_dirs[victim])).good());

  driver.Shutdown();
  for (const pid_t pid : pids) ReapChild(pid);
}

// SIGKILL mid-lingering-batch: a large size cap plus a 100ms linger keeps
// partial batches parked in coalescers for most of the run (the workload
// is injected pipelined, so peer traffic is continuous), making it
// overwhelmingly likely the kill lands while frames for the victim — and
// frames inside the victim's own coalescers — exist only as queued batch
// state. The convergence verdict then proves the write-ahead rule:
// nothing a coalescer held was lost, because the replay log had it first.
TEST(ProcessDeathMatrixBatched, SigkillMidLingeringBatch) {
  RunDeathMatrixCell({"kary2", 15, "mixed50", "RWW", "sum", 3, "subtree", 11,
                      {"--batch-bytes", "1048576", "--batch-flush-us",
                       "100000", "--reactors", "2"}});
}

}  // namespace
}  // namespace treeagg
