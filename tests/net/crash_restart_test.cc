// Crash-restart and fault-recovery tests for the networked backend: real
// daemons on loopback TCP are killed, restarted from durable state,
// partitioned, and fed corrupted frames while a workload runs — and the
// ConvergenceChecker must still sign off on the result.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate_op.h"
#include "fault/convergence.h"
#include "fault/schedule.h"
#include "net/chaos.h"
#include "net/local_cluster.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

// Runs sigma under `schedule` on a LocalCluster and feeds the outcome to
// the ConvergenceChecker. Returns the chaos result for extra assertions.
ChaosNetResult RunAndCheck(const FaultSchedule& schedule, int daemons,
                           const std::string& placement,
                           std::size_t len = 60) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, len, /*seed=*/11);

  ChaosNetOptions options;
  options.cluster.daemons = daemons;
  options.cluster.placement = placement;
  const ChaosNetResult result =
      RunChaosNetWorkload(ParentVector(tree), sigma, schedule, options);

  ConvergenceOptions check;
  check.fault_windows = result.fault_windows;
  // Re-injection after a crash is at-least-once: a combine whose Done
  // frame died with the connection can execute twice, and the duplicate
  // ghost gather fails the full-history causal check even though every
  // final probe converges. The outside-window restriction is the sound
  // requirement in that case (the duplicates are inside the windows).
  check.require_full_causal = result.reinjected == 0;
  const ConvergenceReport report =
      CheckConvergence(result.history, result.ghosts, SumOp(), tree.size(),
                       result.final_probe_ids, check);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_TRUE(report.all_completed);
  EXPECT_EQ(report.divergent_probes, 0u);
  EXPECT_TRUE(report.outside_ok);
  EXPECT_EQ(result.final_probe_ids.size(),
            static_cast<std::size_t>(tree.size()));
  return result;
}

// The acceptance test: a non-root daemon is fail-stopped mid-workload and
// restarted from its durable state; requests addressed to it meanwhile are
// deferred, peer sessions resume, and every final probe returns the
// fault-free ground truth.
TEST(CrashRestartTest, KilledDaemonRecoversAndConverges) {
  FaultSchedule schedule;
  // Block placement over 15 nodes / 3 daemons puts nodes 5..9 on daemon 1;
  // crash it across injections [15, 35).
  schedule.WithSeed(7).Crash(6, 15, 35);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "block");
  EXPECT_EQ(result.kills, 1u);
  // The deferral count is deterministic: it depends only on sigma and the
  // crash window, and mixed50(seed 11) targets daemon 1 inside it.
  EXPECT_GT(result.deferred, 0u);
}

// Crashing the daemon that hosts the root exercises driver reconnect and
// re-injection on the busiest daemon.
TEST(CrashRestartTest, KilledRootDaemonRecoversAndConverges) {
  FaultSchedule schedule;
  schedule.WithSeed(3).Crash(0, 20, 30);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "block");
  EXPECT_EQ(result.kills, 1u);
}

// A severed peer link heals through the session-resume handshake alone.
TEST(CrashRestartTest, SeveredPeerLinkConverges) {
  FaultSchedule schedule;
  // rr placement puts nodes 0 and 1 on different daemons.
  schedule.WithSeed(5).Cut(0, 1, 10, 25);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/2, "rr");
  EXPECT_EQ(result.severs, 1u);
}

// Frame corruption on the wire: every corrupted frame must be detected,
// the link torn down, and the clean copy replayed from the session log.
TEST(CrashRestartTest, CorruptedFramesAreRetransmitted) {
  FaultSchedule schedule;
  schedule.WithSeed(9).Drop(0.25, 5, 45);
  RunAndCheck(schedule, /*daemons=*/2, "rr");
}

// Everything at once: crash + partition + corruption in one run.
TEST(CrashRestartTest, CombinedChaosConverges) {
  FaultSchedule schedule;
  schedule.WithSeed(13)
      .Drop(0.1, 5, 50)
      .Cut(0, 1, 10, 20)
      .Crash(6, 25, 40);
  const ChaosNetResult result = RunAndCheck(schedule, /*daemons=*/3, "rr");
  EXPECT_EQ(result.kills, 1u);
}

// A schedule reaching past the end of the workload still heals (the
// restart is applied after the last injection, before the waits).
TEST(CrashRestartTest, CrashWindowPastWorkloadEndStillHeals) {
  FaultSchedule schedule;
  schedule.WithSeed(2).Crash(6, 50, 10000);
  const ChaosNetResult result =
      RunAndCheck(schedule, /*daemons=*/3, "block");
  EXPECT_EQ(result.kills, 1u);
}

// The chaos harness's injection loop is fast, so its drop windows can be
// near-empty in real time. This test pins the recovery path down: the
// injectors stay armed while completions are awaited, so protocol frames
// ARE corrupted (the counters prove it), links reset, and session resume
// replays the clean copies.
TEST(CrashRestartTest, ArmedCorruptionFiresAndIsRecovered) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 80, /*seed=*/17);

  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";  // adjacent nodes on different daemons
  for (int d = 0; d < options.daemons; ++d) {
    PeerFaultInjector::Options inj;
    inj.corrupt_probability = 0.05;
    inj.seed = 100 + static_cast<std::uint64_t>(d);
    options.fault_injectors.push_back(
        std::make_shared<PeerFaultInjector>(inj));
  }
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  for (auto& inj : options.fault_injectors) inj->Arm();
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  }
  driver.WaitAllCompleted();
  for (auto& inj : options.fault_injectors) inj->Disarm();
  driver.WaitQuiescent();

  std::size_t corrupted = 0;
  for (const auto& inj : options.fault_injectors) {
    corrupted += inj->corrupted_count();
  }
  EXPECT_GT(corrupted, 0u) << "fault window was vacuous";

  const ReqId probe = driver.InjectCombine(0);
  driver.WaitCompleted(probe);
  driver.WaitQuiescent();
  const Real truth = GroundTruth(driver.history(), SumOp(), tree.size());
  EXPECT_NEAR(driver.history().record(probe).retval, truth, 1e-9);
  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

TEST(CrashRestartTest, RejectsFifoViolationSchedules) {
  const Tree tree = MakeShape("kary2", 7, /*seed=*/1);
  FaultSchedule schedule;
  schedule.Duplicate(0.5, 0, 10);
  EXPECT_THROW(
      RunChaosNetWorkload(ParentVector(tree), {}, schedule, ChaosNetOptions{}),
      std::invalid_argument);
}

// Down-daemon diagnostics: while a daemon is killed, injections to its
// nodes and quiescence waits fail fast with a message naming it; after
// restart the cluster completes normally.
TEST(CrashRestartTest, DownDaemonFailsFastThenRecovers) {
  const Tree tree = MakeShape("kary2", 9, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 3;
  options.placement = "block";
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  driver.InjectWrite(0, 1.0);
  driver.WaitAllCompleted();

  cluster.KillDaemon(1);
  try {
    driver.InjectWrite(4, 2.0);  // block placement: node 4 is on daemon 1
    FAIL() << "expected injection to a down daemon to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("down"), std::string::npos);
  }
  try {
    driver.WaitQuiescent();
    FAIL() << "expected quiescence wait with a down daemon to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("daemon 1"), std::string::npos);
  }

  cluster.RestartDaemon(1);
  driver.InjectWrite(4, 2.0);
  const ReqId probe = driver.InjectCombine(0);
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  EXPECT_EQ(driver.history().record(probe).retval, 3.0);
  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

}  // namespace
}  // namespace treeagg
