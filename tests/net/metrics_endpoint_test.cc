// End-to-end observability check on a live cluster: every daemon serves
// /metrics over real HTTP, and the Figure 2 protocol counters scraped from
// the daemons sum to exactly the totals the driver harvests from the nodes
// — the same numbers the sweep report's `metrics` block publishes. This is
// the acceptance test that the obs layer counts the same events the paper's
// cost accounting counts.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/local_cluster.h"
#include "sim/trace.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

// Minimal HTTP/1.1 GET over a fresh loopback connection; returns the whole
// response (headers + body). The daemon answers one request per connection
// and closes, so read-to-EOF is the framing.
std::string HttpGet(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// Sums every sample line of `family` in a scrape, optionally restricted to
// one `kind="..."` label value.
std::int64_t SumFamily(const std::string& scrape, const std::string& family,
                       const std::string& kind = "") {
  std::int64_t total = 0;
  std::size_t start = 0;
  while (start < scrape.size()) {
    std::size_t end = scrape.find('\n', start);
    if (end == std::string::npos) end = scrape.size();
    const std::string line = scrape.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind(family, 0) != 0) continue;
    // Exact family match: next char is '{' or ' ' (no _bucket suffixes).
    const char next = line.size() > family.size() ? line[family.size()] : ' ';
    if (next != '{' && next != ' ') continue;
    if (!kind.empty() &&
        line.find("kind=\"" + kind + "\"") == std::string::npos) {
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    total += std::stoll(line.substr(space + 1));
  }
  return total;
}

TEST(MetricsEndpointTest, ScrapedFigure2CountersMatchDriverHarvest) {
  const Tree tree = MakeKary(15, 2);
  Rng rng(7);
  MixedWorkloadConfig config;
  config.length = 150;
  const RequestSequence sigma = MakeMixed(tree, config, rng);

  LocalCluster::Options options;
  options.daemons = 3;
  options.placement = "rr";
  options.metrics = true;
  options.metrics_port = 0;  // OS-assigned port per daemon
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const NetDriver::HarvestResult harvest = driver.Harvest();
  const MessageCounts counts = harvest.counts;
  ASSERT_GT(counts.total(), 0);

  // Scrape every live daemon and sum each Figure 2 category.
  std::map<std::string, std::int64_t> scraped;
  std::int64_t scraped_revokes = 0;
  std::int64_t scraped_grants = 0;
  for (int d = 0; d < options.daemons; ++d) {
    const std::uint16_t port = cluster.DaemonMetricsPort(d);
    ASSERT_NE(port, 0) << "daemon " << d << " is not serving /metrics";
    const std::string scrape = HttpGet(port, "/metrics");
    ASSERT_NE(scrape.find("HTTP/1.1 200"), std::string::npos)
        << "daemon " << d << " scrape failed:\n"
        << scrape.substr(0, 200);
    ASSERT_NE(scrape.find("# TYPE treeagg_node_messages_sent_total counter"),
              std::string::npos);
    for (const char* kind : {"probe", "response", "update", "release"}) {
      scraped[kind] +=
          SumFamily(scrape, "treeagg_node_messages_sent_total", kind);
    }
    scraped_grants += SumFamily(scrape, "treeagg_node_lease_grants_total");
    scraped_revokes += SumFamily(scrape, "treeagg_node_lease_revokes_total");
    // The transport layer moved real bytes for this workload.
    EXPECT_GT(SumFamily(scrape, "treeagg_transport_bytes_sent_total"), 0);
    EXPECT_GT(SumFamily(scrape, "treeagg_transport_frames_received_total"), 0);
  }

  // The acceptance criterion: obs counters and the paper's cost accounting
  // (harvested LeaseNode counts, which the sweep report republishes) agree
  // exactly, category by category.
  EXPECT_EQ(scraped["probe"], counts.probes);
  EXPECT_EQ(scraped["response"], counts.responses);
  EXPECT_EQ(scraped["update"], counts.updates);
  EXPECT_EQ(scraped["release"], counts.releases);
  // Every revoke is a release send; grants are a subset of responses.
  EXPECT_EQ(scraped_revokes, counts.releases);
  EXPECT_LE(scraped_grants, counts.responses);
  EXPECT_GT(scraped_grants, 0);

  cluster.Stop();
  EXPECT_EQ(cluster.DaemonError(), "");
}

// Connects to `port` and returns the raw fd (-1 on failure).
int RawConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string RecvToEof(int fd) {
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(MetricsEndpointTest, PartialRequestDeliveredInTricklesIsAnswered) {
  // A scraper on a slow link: the request head arrives in four separate
  // segments across ~hundreds of milliseconds. The server must keep the
  // connection open across partial parses and answer once the head
  // completes — not drop it at the first short read.
  const Tree tree = MakeKary(7, 2);
  LocalCluster::Options options;
  options.daemons = 2;
  options.metrics = true;
  options.metrics_port = 0;
  LocalCluster cluster(ParentVector(tree), options);
  const std::uint16_t port = cluster.DaemonMetricsPort(0);
  ASSERT_NE(port, 0);

  const int fd = RawConnect(port);
  ASSERT_GE(fd, 0);
  const std::string request =
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  for (std::size_t off = 0; off < request.size(); off += 10) {
    ASSERT_TRUE(SendAll(fd, request.substr(off, 10)));
    ::usleep(50 * 1000);
  }
  const std::string response = RecvToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos)
      << response.substr(0, 200);
  EXPECT_NE(response.find("treeagg_"), std::string::npos);
}

TEST(MetricsEndpointTest, PipelinedRequestsAllAnswered) {
  // Two GETs written back-to-back before reading anything: both must be
  // answered, in order, on the one connection (the daemon closes after
  // draining the buffered pipeline).
  const Tree tree = MakeKary(7, 2);
  LocalCluster::Options options;
  options.daemons = 2;
  options.metrics = true;
  options.metrics_port = 0;
  LocalCluster cluster(ParentVector(tree), options);
  const std::uint16_t port = cluster.DaemonMetricsPort(0);
  ASSERT_NE(port, 0);

  const int fd = RawConnect(port);
  ASSERT_GE(fd, 0);
  const std::string pipelined =
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n"
      "GET /nope HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  ASSERT_TRUE(SendAll(fd, pipelined));
  const std::string response = RecvToEof(fd);
  ::close(fd);
  EXPECT_EQ(CountOccurrences(response, "HTTP/1.1 200"), 1u)
      << response.substr(0, 200);
  EXPECT_EQ(CountOccurrences(response, "HTTP/1.1 404"), 1u);
  // In pipeline order: the 200 for /metrics precedes the 404 for /nope.
  EXPECT_LT(response.find("HTTP/1.1 200"), response.find("HTTP/1.1 404"));
}

TEST(MetricsEndpointTest, HalfClosedRequestStillAnswered) {
  // A client that shuts down its write side right after the request (curl
  // does this under --no-keepalive): the EOF must not tear the connection
  // down before the buffered request is parsed and answered.
  const Tree tree = MakeKary(7, 2);
  LocalCluster::Options options;
  options.daemons = 2;
  options.metrics = true;
  options.metrics_port = 0;
  LocalCluster cluster(ParentVector(tree), options);
  const std::uint16_t port = cluster.DaemonMetricsPort(0);
  ASSERT_NE(port, 0);

  const int fd = RawConnect(port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(
      SendAll(fd, "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n"));
  ::shutdown(fd, SHUT_WR);
  const std::string response = RecvToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos)
      << response.substr(0, 200);
}

TEST(MetricsEndpointTest, EndpointSpeaksEnoughHttp) {
  const Tree tree = MakeKary(7, 2);
  LocalCluster::Options options;
  options.daemons = 2;
  options.metrics = true;
  options.metrics_port = 0;
  LocalCluster cluster(ParentVector(tree), options);
  const std::uint16_t port = cluster.DaemonMetricsPort(0);
  ASSERT_NE(port, 0);

  const std::string ok = HttpGet(port, "/metrics");
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  // A daemon without metrics serving reports port 0.
  LocalCluster::Options dark_options;
  dark_options.daemons = 2;
  LocalCluster dark(ParentVector(tree), dark_options);
  EXPECT_EQ(dark.DaemonMetricsPort(0), 0);
  EXPECT_EQ(dark.DaemonMetricsPort(99), 0);
}

}  // namespace
}  // namespace treeagg
