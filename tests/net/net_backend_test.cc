// Networked-backend tests above the transport layer: node placement,
// cluster-config parsing, and full LocalCluster runs (real loopback TCP,
// ephemeral ports) checked against the consistency checkers.
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "consistency/strict_checker.h"
#include "core/aggregate_op.h"
#include "net/cluster.h"
#include "net/faulty_transport.h"
#include "net/local_cluster.h"
#include "net/query_client.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

TEST(AssignNodes, BlockKeepsContiguousRanges) {
  const std::vector<int> a = AssignNodes(10, 3, "block");
  ASSERT_EQ(a.size(), 10u);
  // Non-decreasing, uses every daemon, sizes differ by at most one.
  std::vector<int> per_daemon(3, 0);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  for (int d : a) {
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 3);
    ++per_daemon[d];
  }
  for (int count : per_daemon) {
    EXPECT_GE(count, 3);
    EXPECT_LE(count, 4);
  }
}

TEST(AssignNodes, RoundRobinCycles) {
  const std::vector<int> a = AssignNodes(7, 3, "rr");
  ASSERT_EQ(a.size(), 7u);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(a[u], u % 3);
}

TEST(AssignNodes, MoreDaemonsThanNodesStillCoversEveryNode) {
  const std::vector<int> a = AssignNodes(2, 5, "block");
  ASSERT_EQ(a.size(), 2u);
  for (int d : a) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 5);
  }
}

TEST(AssignNodes, RejectsUnknownPlacement) {
  EXPECT_THROW(AssignNodes(4, 2, "striped"), std::invalid_argument);
}

TEST(AssignNodes, SubtreeNeedsTheParentVector) {
  EXPECT_THROW(AssignNodes(4, 2, "subtree"), std::invalid_argument);
}

TEST(DfsPreorderTest, VisitsChildrenAscendingDepthFirst) {
  //      0
  //     / \
  //    1   2
  //   / \   \
  //  3   4   5
  const std::vector<NodeId> parent = {0, 0, 0, 1, 1, 2};
  EXPECT_EQ(DfsPreorder(parent), (std::vector<NodeId>{0, 1, 3, 4, 2, 5}));
}

TEST(DfsPreorderTest, PathTreeIsIdentityOrder) {
  std::vector<NodeId> parent(1000);
  for (NodeId u = 1; u < 1000; ++u) parent[u] = u - 1;
  const std::vector<NodeId> order = DfsPreorder(parent);
  for (NodeId u = 0; u < 1000; ++u) EXPECT_EQ(order[u], u);
}

TEST(AssignNodes, SubtreeBlocksAreContiguousInPreorder) {
  // A random-ish tree: every daemon's node set must be one contiguous
  // block of the DFS preorder, so each daemon hosts O(daemons) partial
  // subtrees and cross-daemon edges stay near daemons-1.
  const Tree tree = MakeShape("random", 97, 11);
  const std::vector<NodeId> parent = ParentVector(tree);
  const int daemons = 5;
  const std::vector<int> a = AssignNodes(parent, daemons, "subtree");
  const std::vector<NodeId> order = DfsPreorder(parent);
  ASSERT_EQ(a.size(), parent.size());
  // Along the preorder, daemon ids are non-decreasing: 0..0 1..1 ... 4..4.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(a[static_cast<std::size_t>(order[i])],
              a[static_cast<std::size_t>(order[i - 1])]);
  }
  // Balanced to within one node, every daemon used.
  std::vector<int> per_daemon(daemons, 0);
  for (const int d : a) {
    ASSERT_GE(d, 0);
    ASSERT_LT(d, daemons);
    ++per_daemon[d];
  }
  for (const int count : per_daemon) {
    EXPECT_GE(count, 97 / daemons);
    EXPECT_LE(count, 97 / daemons + 1);
  }
}

TEST(AssignNodes, SubtreeOnAKaryTreeCutsFewCrossEdges) {
  // On a 4096-node kary4 tree split 8 ways, subtree placement should cut
  // far fewer tree edges than round-robin (which cuts almost all of
  // them). The bound is loose — O(daemons * depth) — but the gap to rr
  // is the point.
  const Tree tree = MakeKary(4096, 4);
  const std::vector<NodeId> parent = ParentVector(tree);
  const std::vector<int> sub = AssignNodes(parent, 8, "subtree");
  const std::vector<int> rr = AssignNodes(parent, 8, "rr");
  int sub_cut = 0;
  int rr_cut = 0;
  for (NodeId u = 1; u < tree.size(); ++u) {
    const std::size_t pu = static_cast<std::size_t>(parent[u]);
    if (sub[static_cast<std::size_t>(u)] != sub[pu]) ++sub_cut;
    if (rr[static_cast<std::size_t>(u)] != rr[pu]) ++rr_cut;
  }
  EXPECT_LE(sub_cut, 8 * 12);
  EXPECT_GT(rr_cut, 3000);
}

TEST(ClusterConfigTest, WriteParseRoundTrip) {
  ClusterConfig config;
  config.tree_parent = {0, 0, 1, 1, 2, 2};
  config.policy = "push-all";
  config.op = "max";
  config.ghost_logging = false;
  config.daemons = {{"127.0.0.1", 4701}, {"127.0.0.1", 4702}};
  config.node_daemon = AssignNodes(6, 2, "rr");
  config.Validate();

  std::stringstream text;
  WriteClusterConfig(text, config);
  const ClusterConfig parsed = ParseClusterConfig(text);
  EXPECT_EQ(parsed.tree_parent, config.tree_parent);
  EXPECT_EQ(parsed.policy, config.policy);
  EXPECT_EQ(parsed.op, config.op);
  EXPECT_EQ(parsed.ghost_logging, config.ghost_logging);
  ASSERT_EQ(parsed.daemons.size(), config.daemons.size());
  for (std::size_t i = 0; i < parsed.daemons.size(); ++i) {
    EXPECT_EQ(parsed.daemons[i].host, config.daemons[i].host);
    EXPECT_EQ(parsed.daemons[i].port, config.daemons[i].port);
  }
  EXPECT_EQ(parsed.node_daemon, config.node_daemon);
}

TEST(ClusterConfigTest, ParsesPlaceDirective) {
  std::stringstream in(
      "treeagg-cluster-v1\n"
      "# a comment line\n"
      "tree 0 0 1 1\n"
      "policy RWW\n"
      "daemon 0 127.0.0.1 0\n"
      "daemon 1 127.0.0.1 0\n"
      "place block\n");
  const ClusterConfig config = ParseClusterConfig(in);
  EXPECT_EQ(config.NumNodes(), 4);
  EXPECT_EQ(config.NumDaemons(), 2);
  EXPECT_EQ(config.node_daemon, AssignNodes(4, 2, "block"));
  EXPECT_TRUE(config.ghost_logging);  // default
}

TEST(ClusterConfigTest, RejectsMissingHeader) {
  std::stringstream in("tree 0 0\ndaemon 0 127.0.0.1 0\nplace block\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsUnknownDirective) {
  std::stringstream in(
      "treeagg-cluster-v1\ntree 0 0\nshard 0 127.0.0.1 0\nplace block\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsAssignmentOutOfRange) {
  std::stringstream in(
      "treeagg-cluster-v1\n"
      "tree 0 0\n"
      "daemon 0 127.0.0.1 0\n"
      "assign 0 0\n"
      "assign 1 3\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsDuplicateAssignment) {
  std::stringstream in(
      "treeagg-cluster-v1\n"
      "tree 0 0\n"
      "daemon 0 127.0.0.1 0\n"
      "daemon 1 127.0.0.1 0\n"
      "assign 0 0\n"
      "assign 1 1\n"
      "assign 1 0\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsNegativeDaemonAssignment) {
  std::stringstream in(
      "treeagg-cluster-v1\n"
      "tree 0 0\n"
      "daemon 0 127.0.0.1 0\n"
      "assign 0 0\n"
      "assign 1 -1\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsPartialAssignment) {
  // Node 2 is never assigned; a silently-defaulted daemon 0 would mask a
  // truncated hand-edited file.
  std::stringstream in(
      "treeagg-cluster-v1\n"
      "tree 0 0 0\n"
      "daemon 0 127.0.0.1 0\n"
      "daemon 1 127.0.0.1 0\n"
      "assign 0 0\n"
      "assign 1 1\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsMixingAssignAndPlace) {
  std::stringstream in(
      "treeagg-cluster-v1\n"
      "tree 0 0\n"
      "daemon 0 127.0.0.1 0\n"
      "place rr\n"
      "assign 0 0\n"
      "assign 1 0\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsConfigWithNoDaemons) {
  std::stringstream in("treeagg-cluster-v1\ntree 0 0 1\nplace block\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, ValidateRejectsWrongAssignmentLength) {
  ClusterConfig config;
  config.tree_parent = {0, 0, 1};
  config.daemons = {{"127.0.0.1", 0}};
  config.node_daemon = {0, 0};  // one short
  EXPECT_THROW(config.Validate(), std::invalid_argument);
}

// --- LocalCluster end-to-end -------------------------------------------

struct EndToEndCase {
  int daemons;
  std::string placement;
  std::string policy;
  bool sequential;
};

void RunEndToEnd(const EndToEndCase& c) {
  SCOPED_TRACE("daemons=" + std::to_string(c.daemons) + " placement=" +
               c.placement + " policy=" + c.policy +
               (c.sequential ? " sequential" : " pipelined"));
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 60, /*seed=*/11);

  LocalCluster::Options options;
  options.daemons = c.daemons;
  options.placement = c.placement;
  options.policy = c.policy;
  const NetRunResult result =
      RunNetWorkload(ParentVector(tree), sigma, options, c.sequential);

  // Every injected request completed and is on record.
  EXPECT_EQ(result.history.size(), sigma.size());
  EXPECT_TRUE(result.history.AllCompleted());

  const AggregateOp& op = OpByName("sum");
  const CheckResult causal =
      CheckCausalConsistency(result.history, result.ghosts, op, tree.size());
  EXPECT_TRUE(causal.ok) << causal.message;
  if (c.sequential) {
    const CheckResult strict =
        CheckStrictConsistency(result.history, op, tree.size());
    EXPECT_TRUE(strict.ok) << strict.message;
  }
  if (c.daemons > 1 && c.placement == "rr") {
    // Adversarial placement forces protocol traffic across TCP.
    EXPECT_GT(result.total_messages, 0u);
  }
}

TEST(LocalClusterTest, SingleDaemonPipelined) {
  RunEndToEnd({1, "block", "RWW", false});
}

TEST(LocalClusterTest, TwoDaemonsBlockPipelined) {
  RunEndToEnd({2, "block", "RWW", false});
}

TEST(LocalClusterTest, TwoDaemonsRoundRobinSequential) {
  RunEndToEnd({2, "rr", "RWW", true});
}

TEST(LocalClusterTest, FourDaemonsRoundRobinPipelined) {
  RunEndToEnd({4, "rr", "RWW", false});
}

TEST(LocalClusterTest, PushAllPolicyAcrossDaemons) {
  RunEndToEnd({2, "rr", "push-all", false});
}

TEST(LocalClusterTest, PullAllPolicySequential) {
  RunEndToEnd({2, "block", "pull-all", true});
}

TEST(LocalClusterTest, ReportsThroughput) {
  const Tree tree = MakeShape("star", 8, /*seed=*/3);
  const RequestSequence sigma = MakeWorkload("readheavy", tree, 40, 5);
  LocalCluster::Options options;
  options.daemons = 2;
  const NetRunResult result =
      RunNetWorkload(ParentVector(tree), sigma, options, /*sequential=*/false);
  EXPECT_GT(result.elapsed_sec, 0.0);
  EXPECT_GT(result.requests_per_sec, 0.0);
}

TEST(LocalClusterTest, StopIsIdempotent) {
  const Tree tree = MakeShape("path", 6, /*seed=*/2);
  LocalCluster::Options options;
  options.daemons = 2;
  LocalCluster cluster(ParentVector(tree), options);
  cluster.driver().InjectWrite(0, 1.0);
  cluster.driver().WaitAllCompleted();
  cluster.Stop();
  cluster.Stop();  // second call must be a no-op
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
}

// --- snapshot query tier over the wire ----------------------------------

TEST(QueryTierTest, DriverQueryNodeServesValidatedAnswers) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 3;
  options.placement = "rr";
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();

  // Fresh cluster: every hosted slot was published on attach, before any
  // request — epoch 1, identity value, empty log.
  const query::QueryAnswer fresh = driver.QueryNode(0);
  EXPECT_GE(fresh.epoch, 1u);
  EXPECT_EQ(fresh.value, 0.0);
  EXPECT_EQ(fresh.log_prefix, 0);

  const RequestSequence sigma = MakeWorkload("mixed50", tree, 80, /*seed=*/7);
  std::vector<query::ServedQuery> served;
  std::int64_t serial = 0;
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      served.push_back(
          query::ServedQuery{r.node, driver.QueryNode(r.node), serial++});
    }
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const NetDriver::HarvestResult harvest = driver.Harvest();
  ASSERT_FALSE(served.empty());
  // Reads are off-ledger: the history records only the writes.
  for (const RequestRecord& r : driver.history().records()) {
    EXPECT_EQ(r.op, ReqType::kWrite);
  }
  const CheckResult check = query::ValidateQueryAnswers(
      driver.history(), harvest.ghosts, served, SumOp());
  EXPECT_TRUE(check.ok) << check.message;
  cluster.Stop();
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
}

TEST(QueryTierTest, StandaloneQueryClientReadsEveryNode) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";
  LocalCluster cluster(ParentVector(tree), options);
  cluster.driver().InjectWrite(3, 4.5);
  cluster.driver().WaitAllCompleted();
  cluster.driver().WaitQuiescent();

  // A second, mechanism-free client: dedicated read connections classified
  // by their first kQuery frame (no hello).
  QueryClient client(cluster.config());
  for (NodeId u = 0; u < tree.size(); ++u) {
    const query::QueryAnswer a = client.Query(u);
    EXPECT_GE(a.epoch, 1u) << "node " << u;
  }
  // The writing node saw its own write.
  EXPECT_EQ(client.Query(3).value, 4.5);
  // Repeated reads on the kept-alive connection stay coherent.
  const query::QueryAnswer again = client.Query(3);
  EXPECT_EQ(again.value, 4.5);
  EXPECT_THROW(client.Query(tree.size()), std::invalid_argument);
  cluster.Stop();
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
}

// Seqlock coherence under gray failure: the writer daemon's outbound peer
// frames are slow-injected while several independent query connections
// hammer snapshot reads. Reads are served off the seqlock slots, so they
// stay fast and — the point — every connection's answer stream must still
// pass ValidateQueryAnswers (per-node epoch monotonicity along its own
// serving order, plus prefix checks against the harvested ghost logs).
TEST(QueryTierTest, SeqlockReadsStayCoherentUnderGrayWriter) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";
  for (int d = 0; d < options.daemons; ++d) {
    PeerFaultInjector::Options inj;
    inj.seed = 500 + static_cast<std::uint64_t>(d);
    inj.gray = DelayProfile{200, 1000};  // microseconds per peer frame
    options.fault_injectors.push_back(
        std::make_shared<PeerFaultInjector>(inj));
  }
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();
  options.fault_injectors[1]->ArmGray();

  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 40;
  std::vector<std::vector<query::ServedQuery>> served(kReaders);
  std::atomic<bool> go{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      QueryClient client(cluster.config());
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kReadsPerReader; ++i) {
        const NodeId node =
            static_cast<NodeId>((r + 2 * i) % tree.size());
        served[static_cast<std::size_t>(r)].push_back(
            query::ServedQuery{node, client.Query(node), i});
      }
    });
  }
  go.store(true, std::memory_order_release);
  const RequestSequence sigma =
      MakeWorkload("mixed50", tree, 200, /*seed=*/31);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  }
  driver.WaitAllCompleted();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(options.fault_injectors[1]->delayed_count(), 0u)
      << "gray window was vacuous";
  options.fault_injectors[1]->DisarmAll();
  driver.WaitQuiescent();

  NetDriver::HarvestResult harvest = driver.Harvest();
  std::uint64_t max_epoch = 0;
  for (int r = 0; r < kReaders; ++r) {
    const auto& answers = served[static_cast<std::size_t>(r)];
    ASSERT_EQ(answers.size(), static_cast<std::size_t>(kReadsPerReader));
    const CheckResult check = query::ValidateQueryAnswers(
        driver.history(), harvest.ghosts, answers, SumOp());
    EXPECT_TRUE(check.ok) << "reader " << r << ": " << check.message;
    for (const query::ServedQuery& q : answers) {
      max_epoch = std::max(max_epoch, q.answer.epoch);
    }
  }
  // The gray writer kept publishing: epochs advanced past the first slot.
  EXPECT_GT(max_epoch, 1u);
  cluster.Stop();
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
}

TEST(QueryTierTest, RunNetWorkloadSnapshotProbesValidate) {
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 60, /*seed=*/11);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";
  const NetRunResult result =
      RunNetWorkload(ParentVector(tree), sigma, options,
                     /*sequential=*/false, ProbeVia::kSnapshot);
  EXPECT_FALSE(result.queries.empty());
  EXPECT_TRUE(result.query_check.ok) << result.query_check.message;
  // Only the writes went through the mechanism.
  std::size_t writes = 0;
  for (const Request& r : sigma) writes += r.op == ReqType::kWrite ? 1 : 0;
  EXPECT_EQ(result.history.size(), writes);
  EXPECT_EQ(result.queries.size(), sigma.size() - writes);
}

TEST(QueryTierTest, ReadsAreInvisibleToTheFigure2Ledger) {
  // The off-ledger guarantee, measured: a writes-only workload harvests
  // the same per-category message counts whether or not snapshot reads
  // are interleaved with it. Sequential injection makes the mechanism's
  // message sequence deterministic, so the comparison is exact.
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  RequestSequence writes;
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 60, /*seed=*/11);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) writes.push_back(r);
  }
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "rr";

  const NetRunResult plain = RunNetWorkload(ParentVector(tree), writes,
                                            options, /*sequential=*/true);
  // Same writes, but every combine of the original workload becomes a
  // snapshot read interleaved at its original position.
  const NetRunResult with_reads =
      RunNetWorkload(ParentVector(tree), sigma, options,
                     /*sequential=*/true, ProbeVia::kSnapshot);
  EXPECT_FALSE(with_reads.queries.empty());
  EXPECT_TRUE(with_reads.query_check.ok) << with_reads.query_check.message;
  EXPECT_EQ(plain.counts.probes, with_reads.counts.probes);
  EXPECT_EQ(plain.counts.responses, with_reads.counts.responses);
  EXPECT_EQ(plain.counts.updates, with_reads.counts.updates);
  EXPECT_EQ(plain.counts.releases, with_reads.counts.releases);
  EXPECT_EQ(plain.total_messages, with_reads.total_messages);
}

TEST(QueryTierTest, MultiReactorDaemonServesQueries) {
  // Slots are written by worker reactors owning the node's shard and read
  // by the primary reactor serving the query connection — the cross-thread
  // seqlock path.
  const Tree tree = MakeShape("kary2", 31, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "subtree";
  options.reactors = 3;
  LocalCluster cluster(ParentVector(tree), options);
  NetDriver& driver = cluster.driver();
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 80, /*seed=*/5);
  std::vector<query::ServedQuery> served;
  std::int64_t serial = 0;
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      served.push_back(
          query::ServedQuery{r.node, driver.QueryNode(r.node), serial++});
    }
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const NetDriver::HarvestResult harvest = driver.Harvest();
  ASSERT_FALSE(served.empty());
  const CheckResult check = query::ValidateQueryAnswers(
      driver.history(), harvest.ghosts, served, SumOp());
  EXPECT_TRUE(check.ok) << check.message;
  cluster.Stop();
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
}

TEST(QueryTierTest, QueryForNonHostedNodeFailsTheDaemon) {
  // A kQuery for a node the daemon does not host is a protocol violation
  // surfaced through the daemon error channel, not a silent wrong answer.
  const Tree tree = MakeShape("path", 4, /*seed=*/1);
  LocalCluster::Options options;
  options.daemons = 2;
  options.placement = "block";  // daemon 0 hosts {0,1}, daemon 1 hosts {2,3}
  LocalCluster cluster(ParentVector(tree), options);
  // Hand-build a config that mis-routes node 3 to daemon 0.
  ClusterConfig wrong = cluster.config();
  wrong.node_daemon[3] = 0;
  QueryClient client(wrong);
  EXPECT_THROW(client.Query(3), std::runtime_error);
  cluster.Stop();
}

}  // namespace
}  // namespace treeagg
