// Networked-backend tests above the transport layer: node placement,
// cluster-config parsing, and full LocalCluster runs (real loopback TCP,
// ephemeral ports) checked against the consistency checkers.
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "consistency/strict_checker.h"
#include "core/aggregate_op.h"
#include "net/cluster.h"
#include "net/local_cluster.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

TEST(AssignNodes, BlockKeepsContiguousRanges) {
  const std::vector<int> a = AssignNodes(10, 3, "block");
  ASSERT_EQ(a.size(), 10u);
  // Non-decreasing, uses every daemon, sizes differ by at most one.
  std::vector<int> per_daemon(3, 0);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  for (int d : a) {
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 3);
    ++per_daemon[d];
  }
  for (int count : per_daemon) {
    EXPECT_GE(count, 3);
    EXPECT_LE(count, 4);
  }
}

TEST(AssignNodes, RoundRobinCycles) {
  const std::vector<int> a = AssignNodes(7, 3, "rr");
  ASSERT_EQ(a.size(), 7u);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(a[u], u % 3);
}

TEST(AssignNodes, MoreDaemonsThanNodesStillCoversEveryNode) {
  const std::vector<int> a = AssignNodes(2, 5, "block");
  ASSERT_EQ(a.size(), 2u);
  for (int d : a) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 5);
  }
}

TEST(AssignNodes, RejectsUnknownPlacement) {
  EXPECT_THROW(AssignNodes(4, 2, "striped"), std::invalid_argument);
}

TEST(AssignNodes, SubtreeNeedsTheParentVector) {
  EXPECT_THROW(AssignNodes(4, 2, "subtree"), std::invalid_argument);
}

TEST(DfsPreorderTest, VisitsChildrenAscendingDepthFirst) {
  //      0
  //     / \
  //    1   2
  //   / \   \
  //  3   4   5
  const std::vector<NodeId> parent = {0, 0, 0, 1, 1, 2};
  EXPECT_EQ(DfsPreorder(parent), (std::vector<NodeId>{0, 1, 3, 4, 2, 5}));
}

TEST(DfsPreorderTest, PathTreeIsIdentityOrder) {
  std::vector<NodeId> parent(1000);
  for (NodeId u = 1; u < 1000; ++u) parent[u] = u - 1;
  const std::vector<NodeId> order = DfsPreorder(parent);
  for (NodeId u = 0; u < 1000; ++u) EXPECT_EQ(order[u], u);
}

TEST(AssignNodes, SubtreeBlocksAreContiguousInPreorder) {
  // A random-ish tree: every daemon's node set must be one contiguous
  // block of the DFS preorder, so each daemon hosts O(daemons) partial
  // subtrees and cross-daemon edges stay near daemons-1.
  const Tree tree = MakeShape("random", 97, 11);
  const std::vector<NodeId> parent = ParentVector(tree);
  const int daemons = 5;
  const std::vector<int> a = AssignNodes(parent, daemons, "subtree");
  const std::vector<NodeId> order = DfsPreorder(parent);
  ASSERT_EQ(a.size(), parent.size());
  // Along the preorder, daemon ids are non-decreasing: 0..0 1..1 ... 4..4.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(a[static_cast<std::size_t>(order[i])],
              a[static_cast<std::size_t>(order[i - 1])]);
  }
  // Balanced to within one node, every daemon used.
  std::vector<int> per_daemon(daemons, 0);
  for (const int d : a) {
    ASSERT_GE(d, 0);
    ASSERT_LT(d, daemons);
    ++per_daemon[d];
  }
  for (const int count : per_daemon) {
    EXPECT_GE(count, 97 / daemons);
    EXPECT_LE(count, 97 / daemons + 1);
  }
}

TEST(AssignNodes, SubtreeOnAKaryTreeCutsFewCrossEdges) {
  // On a 4096-node kary4 tree split 8 ways, subtree placement should cut
  // far fewer tree edges than round-robin (which cuts almost all of
  // them). The bound is loose — O(daemons * depth) — but the gap to rr
  // is the point.
  const Tree tree = MakeKary(4096, 4);
  const std::vector<NodeId> parent = ParentVector(tree);
  const std::vector<int> sub = AssignNodes(parent, 8, "subtree");
  const std::vector<int> rr = AssignNodes(parent, 8, "rr");
  int sub_cut = 0;
  int rr_cut = 0;
  for (NodeId u = 1; u < tree.size(); ++u) {
    const std::size_t pu = static_cast<std::size_t>(parent[u]);
    if (sub[static_cast<std::size_t>(u)] != sub[pu]) ++sub_cut;
    if (rr[static_cast<std::size_t>(u)] != rr[pu]) ++rr_cut;
  }
  EXPECT_LE(sub_cut, 8 * 12);
  EXPECT_GT(rr_cut, 3000);
}

TEST(ClusterConfigTest, WriteParseRoundTrip) {
  ClusterConfig config;
  config.tree_parent = {0, 0, 1, 1, 2, 2};
  config.policy = "push-all";
  config.op = "max";
  config.ghost_logging = false;
  config.daemons = {{"127.0.0.1", 4701}, {"127.0.0.1", 4702}};
  config.node_daemon = AssignNodes(6, 2, "rr");
  config.Validate();

  std::stringstream text;
  WriteClusterConfig(text, config);
  const ClusterConfig parsed = ParseClusterConfig(text);
  EXPECT_EQ(parsed.tree_parent, config.tree_parent);
  EXPECT_EQ(parsed.policy, config.policy);
  EXPECT_EQ(parsed.op, config.op);
  EXPECT_EQ(parsed.ghost_logging, config.ghost_logging);
  ASSERT_EQ(parsed.daemons.size(), config.daemons.size());
  for (std::size_t i = 0; i < parsed.daemons.size(); ++i) {
    EXPECT_EQ(parsed.daemons[i].host, config.daemons[i].host);
    EXPECT_EQ(parsed.daemons[i].port, config.daemons[i].port);
  }
  EXPECT_EQ(parsed.node_daemon, config.node_daemon);
}

TEST(ClusterConfigTest, ParsesPlaceDirective) {
  std::stringstream in(
      "treeagg-cluster-v1\n"
      "# a comment line\n"
      "tree 0 0 1 1\n"
      "policy RWW\n"
      "daemon 0 127.0.0.1 0\n"
      "daemon 1 127.0.0.1 0\n"
      "place block\n");
  const ClusterConfig config = ParseClusterConfig(in);
  EXPECT_EQ(config.NumNodes(), 4);
  EXPECT_EQ(config.NumDaemons(), 2);
  EXPECT_EQ(config.node_daemon, AssignNodes(4, 2, "block"));
  EXPECT_TRUE(config.ghost_logging);  // default
}

TEST(ClusterConfigTest, RejectsMissingHeader) {
  std::stringstream in("tree 0 0\ndaemon 0 127.0.0.1 0\nplace block\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsUnknownDirective) {
  std::stringstream in(
      "treeagg-cluster-v1\ntree 0 0\nshard 0 127.0.0.1 0\nplace block\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsAssignmentOutOfRange) {
  std::stringstream in(
      "treeagg-cluster-v1\n"
      "tree 0 0\n"
      "daemon 0 127.0.0.1 0\n"
      "assign 0 0\n"
      "assign 1 3\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, RejectsConfigWithNoDaemons) {
  std::stringstream in("treeagg-cluster-v1\ntree 0 0 1\nplace block\n");
  EXPECT_THROW(ParseClusterConfig(in), std::invalid_argument);
}

TEST(ClusterConfigTest, ValidateRejectsWrongAssignmentLength) {
  ClusterConfig config;
  config.tree_parent = {0, 0, 1};
  config.daemons = {{"127.0.0.1", 0}};
  config.node_daemon = {0, 0};  // one short
  EXPECT_THROW(config.Validate(), std::invalid_argument);
}

// --- LocalCluster end-to-end -------------------------------------------

struct EndToEndCase {
  int daemons;
  std::string placement;
  std::string policy;
  bool sequential;
};

void RunEndToEnd(const EndToEndCase& c) {
  SCOPED_TRACE("daemons=" + std::to_string(c.daemons) + " placement=" +
               c.placement + " policy=" + c.policy +
               (c.sequential ? " sequential" : " pipelined"));
  const Tree tree = MakeShape("kary2", 15, /*seed=*/1);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 60, /*seed=*/11);

  LocalCluster::Options options;
  options.daemons = c.daemons;
  options.placement = c.placement;
  options.policy = c.policy;
  const NetRunResult result =
      RunNetWorkload(ParentVector(tree), sigma, options, c.sequential);

  // Every injected request completed and is on record.
  EXPECT_EQ(result.history.size(), sigma.size());
  EXPECT_TRUE(result.history.AllCompleted());

  const AggregateOp& op = OpByName("sum");
  const CheckResult causal =
      CheckCausalConsistency(result.history, result.ghosts, op, tree.size());
  EXPECT_TRUE(causal.ok) << causal.message;
  if (c.sequential) {
    const CheckResult strict =
        CheckStrictConsistency(result.history, op, tree.size());
    EXPECT_TRUE(strict.ok) << strict.message;
  }
  if (c.daemons > 1 && c.placement == "rr") {
    // Adversarial placement forces protocol traffic across TCP.
    EXPECT_GT(result.total_messages, 0u);
  }
}

TEST(LocalClusterTest, SingleDaemonPipelined) {
  RunEndToEnd({1, "block", "RWW", false});
}

TEST(LocalClusterTest, TwoDaemonsBlockPipelined) {
  RunEndToEnd({2, "block", "RWW", false});
}

TEST(LocalClusterTest, TwoDaemonsRoundRobinSequential) {
  RunEndToEnd({2, "rr", "RWW", true});
}

TEST(LocalClusterTest, FourDaemonsRoundRobinPipelined) {
  RunEndToEnd({4, "rr", "RWW", false});
}

TEST(LocalClusterTest, PushAllPolicyAcrossDaemons) {
  RunEndToEnd({2, "rr", "push-all", false});
}

TEST(LocalClusterTest, PullAllPolicySequential) {
  RunEndToEnd({2, "block", "pull-all", true});
}

TEST(LocalClusterTest, ReportsThroughput) {
  const Tree tree = MakeShape("star", 8, /*seed=*/3);
  const RequestSequence sigma = MakeWorkload("readheavy", tree, 40, 5);
  LocalCluster::Options options;
  options.daemons = 2;
  const NetRunResult result =
      RunNetWorkload(ParentVector(tree), sigma, options, /*sequential=*/false);
  EXPECT_GT(result.elapsed_sec, 0.0);
  EXPECT_GT(result.requests_per_sec, 0.0);
}

TEST(LocalClusterTest, StopIsIdempotent) {
  const Tree tree = MakeShape("path", 6, /*seed=*/2);
  LocalCluster::Options options;
  options.daemons = 2;
  LocalCluster cluster(ParentVector(tree), options);
  cluster.driver().InjectWrite(0, 1.0);
  cluster.driver().WaitAllCompleted();
  cluster.Stop();
  cluster.Stop();  // second call must be a no-op
  EXPECT_TRUE(cluster.DaemonError().empty()) << cluster.DaemonError();
}

}  // namespace
}  // namespace treeagg
