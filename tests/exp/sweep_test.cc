// The sweep engine's contract: results are a pure function of the
// SweepSpec — independent of thread count, run order, and which other
// cells share the sweep. Timing fields are the only thing allowed to vary.
#include "exp/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace treeagg {
namespace {

SweepSpec SmallSpec() {
  SweepSpec spec;
  spec.shapes = {"path", "kary2"};
  spec.sizes = {8, 15};
  spec.workloads = {"mixed50", "writeheavy"};
  spec.policies = {"RWW", "lease(1,3)"};
  spec.seeds = {1, 2};
  spec.requests = 120;
  return spec;
}

// Everything except timings, as a comparable fingerprint.
struct CellKey {
  std::string id;
  std::int64_t total;
  MessageCounts counts;
  bool ok;

  friend bool operator==(const CellKey& a, const CellKey& b) {
    return a.id == b.id && a.total == b.total &&
           a.counts.probes == b.counts.probes &&
           a.counts.responses == b.counts.responses &&
           a.counts.updates == b.counts.updates &&
           a.counts.releases == b.counts.releases && a.ok == b.ok;
  }
};

std::vector<CellKey> Keys(const SweepResult& r) {
  std::vector<CellKey> keys;
  for (const CellResult& c : r.cells) {
    CellKey k;
    k.id = c.spec.shape + "/" + std::to_string(c.spec.n) + "/" +
           c.spec.workload + "/" + c.spec.policy + "/" +
           std::to_string(c.spec.seed);
    k.total = c.total_messages;
    k.counts = c.counts;
    k.ok = c.ok;
    keys.push_back(std::move(k));
  }
  return keys;
}

TEST(SweepTest, ExpandCellsIsTheFullCrossProduct) {
  const SweepSpec spec = SmallSpec();
  const std::vector<CellSpec> cells = ExpandCells(spec);
  EXPECT_EQ(cells.size(), 2u * 2u * 2u * 2u * 2u);
  // Derived seeds are distinct across cells (identity feeds the hash).
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_NE(cells[i].tree_seed, cells[j].tree_seed) << i << "," << j;
    }
  }
}

TEST(SweepTest, CellSeedsDependOnIdentityNotPosition) {
  SweepSpec narrow = SmallSpec();
  narrow.shapes = {"kary2"};  // drop "path": kary2 cells shift position
  const std::vector<CellSpec> all = ExpandCells(SmallSpec());
  const std::vector<CellSpec> sub = ExpandCells(narrow);
  for (const CellSpec& c : sub) {
    bool found = false;
    for (const CellSpec& d : all) {
      if (d.shape == c.shape && d.n == c.n && d.workload == c.workload &&
          d.policy == c.policy && d.seed == c.seed) {
        EXPECT_EQ(d.tree_seed, c.tree_seed);
        EXPECT_EQ(d.workload_seed, c.workload_seed);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(SweepTest, ResultsAreThreadCountInvariant) {
  SweepSpec spec = SmallSpec();
  spec.threads = 1;
  const SweepResult serial = RunSweep(spec);
  ASSERT_EQ(serial.cells.size(), 32u);
  for (const CellResult& c : serial.cells) {
    EXPECT_TRUE(c.ok) << c.error;
    EXPECT_GT(c.total_messages, 0);
  }
  for (const int threads : {2, 8}) {
    spec.threads = threads;
    const SweepResult parallel = RunSweep(spec);
    EXPECT_EQ(Keys(parallel), Keys(serial)) << threads << " threads";
  }
}

TEST(SweepTest, RepeatedRunsAreIdentical) {
  SweepSpec spec = SmallSpec();
  spec.threads = 4;
  EXPECT_EQ(Keys(RunSweep(spec)), Keys(RunSweep(spec)));
}

TEST(SweepTest, BadCellIsReportedNotFatal) {
  SweepSpec spec;
  spec.shapes = {"path", "no-such-shape"};
  spec.sizes = {8};
  spec.workloads = {"mixed50"};
  spec.policies = {"RWW"};
  spec.seeds = {1};
  spec.requests = 50;
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 2u);
  EXPECT_TRUE(r.cells[0].ok);
  EXPECT_FALSE(r.cells[1].ok);
  EXPECT_FALSE(r.cells[1].error.empty());
}

TEST(SweepTest, CompetitiveModeFillsRatios) {
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"mixed50"};
  spec.policies = {"RWW"};
  spec.seeds = {1};
  spec.requests = 200;
  spec.competitive = true;
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 1u);
  const CellResult& c = r.cells[0];
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_TRUE(c.strict_ok);
  EXPECT_GT(c.ratio_vs_lease_opt, 0.0);
  // Theorem 1: RWW is 5/2-competitive on every edge.
  EXPECT_LE(c.worst_edge_ratio, 2.5 + 1e-9);
}

TEST(SweepFaultTest, FaultAxisMultipliesTheCrossProduct) {
  SweepSpec spec = SmallSpec();
  spec.faults = {"none", "drops"};
  const std::vector<CellSpec> cells = ExpandCells(spec);
  EXPECT_EQ(cells.size(), 2u * 32u);
  // The fault tag varies fastest (innermost loop).
  EXPECT_EQ(cells[0].fault, "none");
  EXPECT_EQ(cells[1].fault, "drops");
  // Fault cells get distinct derived seeds from their fault-free twin.
  EXPECT_NE(cells[0].workload_seed, cells[1].workload_seed);
}

TEST(SweepFaultTest, FaultFreeCellSeedsIgnoreTheFaultAxis) {
  // The backward-compat guarantee: adding faults to a spec must not
  // change any existing fault-free cell's derived seeds (and therefore
  // results). "none" is deliberately not folded into the hash.
  SweepSpec plain = SmallSpec();
  SweepSpec chaotic = SmallSpec();
  chaotic.faults = {"none", "drops", "chaos"};
  const std::vector<CellSpec> before = ExpandCells(plain);
  std::vector<CellSpec> after;
  for (const CellSpec& c : ExpandCells(chaotic)) {
    if (c.fault == "none") after.push_back(c);
  }
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].tree_seed, before[i].tree_seed) << i;
    EXPECT_EQ(after[i].workload_seed, before[i].workload_seed) << i;
  }
}

TEST(SweepFaultTest, FaultCellRunsOnChaosSimulatorAndConverges) {
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"mixed50"};
  spec.policies = {"RWW"};
  spec.seeds = {1};
  spec.faults = {"none", "drops"};
  spec.requests = 150;
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 2u);
  for (const CellResult& c : r.cells) {
    EXPECT_TRUE(c.ok) << c.spec.fault << ": " << c.error;
    EXPECT_TRUE(c.converged) << c.spec.fault;
    EXPECT_GT(c.total_messages, 0) << c.spec.fault;
  }
  // The chaos run is a different execution: message totals differ.
  EXPECT_NE(r.cells[0].total_messages, r.cells[1].total_messages);
}

TEST(SweepFaultTest, FaultCellsAreDeterministicAcrossThreadCounts) {
  SweepSpec spec;
  spec.shapes = {"path", "kary2"};
  spec.sizes = {8};
  spec.workloads = {"mixed50"};
  spec.policies = {"RWW"};
  spec.seeds = {1, 2};
  spec.faults = {"none", "drops", "crash"};
  spec.requests = 100;
  spec.threads = 1;
  const SweepResult serial = RunSweep(spec);
  ASSERT_EQ(serial.cells.size(), 12u);
  spec.threads = 4;
  EXPECT_EQ(Keys(RunSweep(spec)), Keys(serial));
}

TEST(SweepFaultTest, CompetitiveModeRejectsFaultCells) {
  // Competitive mode compares against offline sequential bounds, which
  // have no meaning under a fault schedule; the cell reports the error.
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"mixed50"};
  spec.policies = {"RWW"};
  spec.seeds = {1};
  spec.faults = {"drops"};
  spec.requests = 100;
  spec.competitive = true;
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_FALSE(r.cells[0].ok);
  EXPECT_NE(r.cells[0].error.find("competitive"), std::string::npos);
}

TEST(SweepFaultTest, BadFaultSpecIsReportedNotFatal) {
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"mixed50"};
  spec.policies = {"RWW"};
  spec.seeds = {1};
  spec.faults = {"no-such-preset"};
  spec.requests = 50;
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_FALSE(r.cells[0].ok);
  EXPECT_FALSE(r.cells[0].error.empty());
}

TEST(SweepTest, JsonReportIsWellFormedEnough) {
  SweepSpec spec;
  spec.shapes = {"path"};
  spec.sizes = {8};
  spec.workloads = {"mixed50"};
  spec.policies = {"lease(1,3)"};
  spec.seeds = {7};
  spec.requests = 60;
  spec.threads = 2;
  const SweepResult r = RunSweep(spec);
  std::ostringstream out;
  WriteSweepJson(out, spec, r);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"treeagg-sweep-v5\""), std::string::npos);
  EXPECT_NE(json.find("\"cells_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"lease(1,3)\""), std::string::npos);
  EXPECT_NE(json.find("\"total_messages\""), std::string::npos);
  EXPECT_NE(json.find("\"parallel_speedup\""), std::string::npos);
  // v2 added the per-cell latency percentiles.
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // v3 added the fault axis and the per-cell convergence verdict.
  EXPECT_NE(json.find("\"fault\": \"none\""), std::string::npos);
  EXPECT_NE(json.find("\"converged\": true"), std::string::npos);
  // v4 added the aggregate metrics block.
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"probes\""), std::string::npos);
  // v5 added the per-cell execution backend.
  EXPECT_NE(json.find("\"backend\": \"sim\""), std::string::npos);
  // Balanced braces/brackets — catches truncated emission.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(SweepJsonTest, V5RoundTripsThroughTheReader) {
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"mixed50", "readheavy"};
  spec.policies = {"RWW"};
  spec.seeds = {3};
  spec.faults = {"none", "drops"};  // exercise a non-"none" fault round trip
  spec.requests = 80;
  const SweepResult r = RunSweep(spec);
  std::stringstream io;
  WriteSweepJson(io, spec, r);
  const SweepJson back = ReadSweepJson(io);

  EXPECT_EQ(back.schema, "treeagg-sweep-v5");
  EXPECT_EQ(back.threads, r.threads_used);
  EXPECT_FALSE(back.competitive);
  EXPECT_EQ(back.cells_failed, 0u);
  // The v4 metrics block round-trips and equals the sum over cells.
  EXPECT_TRUE(back.has_metrics);
  MessageCounts want_kinds;
  std::int64_t want_total = 0;
  for (const CellResult& c : r.cells) {
    want_kinds.probes += c.counts.probes;
    want_kinds.responses += c.counts.responses;
    want_kinds.updates += c.counts.updates;
    want_kinds.releases += c.counts.releases;
    want_total += c.total_messages;
  }
  EXPECT_EQ(back.metrics_messages.probes, want_kinds.probes);
  EXPECT_EQ(back.metrics_messages.responses, want_kinds.responses);
  EXPECT_EQ(back.metrics_messages.updates, want_kinds.updates);
  EXPECT_EQ(back.metrics_messages.releases, want_kinds.releases);
  EXPECT_EQ(back.metrics_total_messages, want_total);
  ASSERT_EQ(back.cells.size(), r.cells.size());
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const CellResult& want = r.cells[i];
    const CellResult& got = back.cells[i];
    EXPECT_EQ(got.spec.shape, want.spec.shape);
    EXPECT_EQ(got.spec.workload, want.spec.workload);
    EXPECT_EQ(got.spec.policy, want.spec.policy);
    EXPECT_EQ(got.spec.seed, want.spec.seed);
    EXPECT_EQ(got.total_messages, want.total_messages);
    EXPECT_EQ(got.counts.probes, want.counts.probes);
    EXPECT_EQ(got.latency.count, want.latency.count);
    // Latency values pass through ostream default precision (6 significant
    // digits), so compare with a relative tolerance.
    EXPECT_NEAR(got.latency.p95, want.latency.p95,
                1e-4 * (1 + std::abs(want.latency.p95)));
    EXPECT_NEAR(got.latency.p99, want.latency.p99,
                1e-4 * (1 + std::abs(want.latency.p99)));
    EXPECT_EQ(got.spec.fault, want.spec.fault);
    EXPECT_EQ(got.converged, want.converged);
    EXPECT_TRUE(got.ok);
  }
}

TEST(SweepJsonTest, ReadsHandwrittenV1Document) {
  // A v1 file predates the latency block; the reader must accept it and
  // leave the cell's SummaryStats zeroed.
  std::stringstream in(
      "{\n"
      "  \"schema\": \"treeagg-sweep-v1\",\n"
      "  \"threads\": 2,\n"
      "  \"competitive\": false,\n"
      "  \"cells_total\": 1,\n"
      "  \"cells_failed\": 0,\n"
      "  \"cells\": [\n"
      "    {\"shape\": \"path\", \"n\": 8, \"workload\": \"mixed50\",\n"
      "     \"policy\": \"RWW\", \"requests\": 100, \"seed\": 7,\n"
      "     \"ok\": true,\n"
      "     \"messages\": {\"probes\": 10, \"responses\": 11,\n"
      "                    \"updates\": 12, \"releases\": 13, \"total\": 46},\n"
      "     \"wall_seconds\": 0.5, \"requests_per_sec\": 200}\n"
      "  ]\n"
      "}\n");
  const SweepJson report = ReadSweepJson(in);
  EXPECT_EQ(report.schema, "treeagg-sweep-v1");
  EXPECT_FALSE(report.has_metrics);  // pre-v4: no aggregate metrics block
  EXPECT_EQ(report.threads, 2);
  ASSERT_EQ(report.cells.size(), 1u);
  const CellResult& c = report.cells[0];
  EXPECT_EQ(c.spec.shape, "path");
  EXPECT_EQ(c.total_messages, 46);
  EXPECT_EQ(c.counts.releases, 13);
  EXPECT_EQ(c.latency.count, 0u);  // v1: no latency block
  EXPECT_EQ(c.latency.p95, 0.0);
  EXPECT_EQ(c.spec.fault, "none");  // pre-v3: no fault axis
  EXPECT_TRUE(c.converged);
}

TEST(SweepMlapTest, MlapCellFillsBatchingStatsAndRatio) {
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"onoff"};
  spec.policies = {"RWW", "mlap", "mlap-d(0.5)"};
  spec.seeds = {1};
  spec.requests = 200;
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 3u);
  const CellResult& rww = r.cells[0];
  const CellResult& mlap = r.cells[1];
  const CellResult& mlapd = r.cells[2];
  ASSERT_TRUE(rww.ok) << rww.error;
  ASSERT_TRUE(mlap.ok) << mlap.error;
  ASSERT_TRUE(mlapd.ok) << mlapd.error;
  EXPECT_FALSE(rww.has_mlap);
  ASSERT_TRUE(mlap.has_mlap);
  ASSERT_TRUE(mlapd.has_mlap);
  EXPECT_FALSE(mlap.mlap.deadline);
  EXPECT_TRUE(mlapd.mlap.deadline);
  EXPECT_EQ(mlapd.mlap.delay_cost, 0.5);
  // The latency-vs-messages frontier: batching trades wait for messages.
  EXPECT_LT(mlap.total_messages, rww.total_messages);
  EXPECT_GT(mlap.mlap.total_wait, 0);
  EXPECT_GT(mlap.mlap.flushes, 0);
  EXPECT_LE(mlap.mlap.flushes, mlap.mlap.served);
  EXPECT_GE(mlap.mlap.ratio, 1.0 - 1e-9);  // delay rule vs its own optimum
  EXPECT_GT(mlap.mlap.online_cost, 0.0);
  EXPECT_GT(mlap.mlap.offline_opt, 0.0);
  EXPECT_EQ(mlap.mlap.wait.count,
            static_cast<std::size_t>(mlap.mlap.served));
  // The cheaper deadline knob flushes less often than the delay rule here.
  EXPECT_LT(mlapd.mlap.flushes, mlap.mlap.flushes);
}

TEST(SweepMlapTest, MlapCellsAreThreadCountInvariant) {
  SweepSpec spec;
  spec.shapes = {"kary2", "path"};
  spec.sizes = {15};
  spec.workloads = {"onoff", "pareto"};
  spec.policies = {"mlap", "mlap-d"};
  spec.seeds = {1, 2};
  spec.requests = 150;
  spec.threads = 1;
  const SweepResult serial = RunSweep(spec);
  ASSERT_EQ(serial.cells.size(), 16u);
  spec.threads = 4;
  const SweepResult parallel = RunSweep(spec);
  EXPECT_EQ(Keys(parallel), Keys(serial));
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    ASSERT_TRUE(serial.cells[i].has_mlap) << i;
    EXPECT_EQ(parallel.cells[i].mlap.flushes, serial.cells[i].mlap.flushes);
    EXPECT_EQ(parallel.cells[i].mlap.total_wait,
              serial.cells[i].mlap.total_wait);
    EXPECT_EQ(parallel.cells[i].mlap.ratio, serial.cells[i].mlap.ratio);
  }
}

TEST(SweepMlapTest, CompetitiveModeRejectsMlapCells) {
  // Competitive mode prices lease policies against the Section 4 bounds;
  // MLAP cells carry their own offline pricing in the mlap block instead.
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"onoff"};
  spec.policies = {"mlap"};
  spec.seeds = {1};
  spec.requests = 80;
  spec.competitive = true;
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_FALSE(r.cells[0].ok);
  EXPECT_NE(r.cells[0].error.find("mlap"), std::string::npos);
}

TEST(SweepMlapTest, BadMlapSpecIsReportedNotFatal) {
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"onoff"};
  spec.policies = {"mlap(0)"};
  spec.seeds = {1};
  spec.requests = 50;
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_FALSE(r.cells[0].ok);
  EXPECT_FALSE(r.cells[0].error.empty());
}

TEST(SweepBackendTest, BackendTagsCellsWithoutChangingTheirSeeds) {
  SweepSpec sim = SmallSpec();
  SweepSpec net = SmallSpec();
  net.backend = "net-local";
  const std::vector<CellSpec> a = ExpandCells(sim);
  const std::vector<CellSpec> b = ExpandCells(net);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].backend, "sim");
    EXPECT_EQ(b[i].backend, "net-local");
    // The backend is not folded into seed derivation: sim and net-local
    // cells see identical trees and workloads by construction.
    EXPECT_EQ(a[i].tree_seed, b[i].tree_seed) << i;
    EXPECT_EQ(a[i].workload_seed, b[i].workload_seed) << i;
  }
}

TEST(SweepBackendTest, UnknownBackendIsReportedNotFatal) {
  SweepSpec spec;
  spec.shapes = {"path"};
  spec.sizes = {8};
  spec.workloads = {"mixed50"};
  spec.policies = {"RWW"};
  spec.seeds = {1};
  spec.requests = 40;
  spec.backend = "bogus";
  const SweepResult r = RunSweep(spec);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_FALSE(r.cells[0].ok);
  EXPECT_NE(r.cells[0].error.find("backend"), std::string::npos);
}

TEST(SweepJsonTest, MlapBlockAndBackendRoundTripThroughTheReader) {
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {15};
  spec.workloads = {"onoff"};
  spec.policies = {"RWW", "mlap-d(0.5)"};
  spec.seeds = {2};
  spec.requests = 120;
  const SweepResult r = RunSweep(spec);
  std::stringstream io;
  WriteSweepJson(io, spec, r);
  const SweepJson back = ReadSweepJson(io);
  ASSERT_EQ(back.cells.size(), 2u);
  EXPECT_FALSE(back.cells[0].has_mlap);
  ASSERT_TRUE(back.cells[1].has_mlap);
  const MlapCellStats& want = r.cells[1].mlap;
  const MlapCellStats& got = back.cells[1].mlap;
  EXPECT_EQ(got.delay_cost, 0.5);
  EXPECT_TRUE(got.deadline);
  EXPECT_EQ(got.flushes, want.flushes);
  EXPECT_EQ(got.served, want.served);
  EXPECT_EQ(got.total_wait, want.total_wait);
  EXPECT_EQ(got.wait.count, want.wait.count);
  EXPECT_NEAR(got.wait.p95, want.wait.p95, 1e-4 * (1 + want.wait.p95));
  EXPECT_NEAR(got.online_cost, want.online_cost,
              1e-4 * (1 + want.online_cost));
  EXPECT_NEAR(got.ratio, want.ratio, 1e-4 * (1 + want.ratio));
  for (const CellResult& c : back.cells) EXPECT_EQ(c.spec.backend, "sim");
}

TEST(SweepJsonTest, ReadsV4DocumentWithoutBackendOrMlap) {
  // A pre-v5 file has no backend field and no mlap blocks; the reader
  // defaults the backend to "sim" and leaves has_mlap false.
  std::stringstream in(
      "{\n"
      "  \"schema\": \"treeagg-sweep-v4\",\n"
      "  \"threads\": 1,\n"
      "  \"competitive\": false,\n"
      "  \"cells_total\": 1,\n"
      "  \"cells_failed\": 0,\n"
      "  \"cells\": [\n"
      "    {\"shape\": \"path\", \"n\": 8, \"workload\": \"mixed50\",\n"
      "     \"policy\": \"RWW\", \"requests\": 100, \"seed\": 7,\n"
      "     \"fault\": \"none\", \"ok\": true, \"converged\": true,\n"
      "     \"messages\": {\"probes\": 10, \"responses\": 11,\n"
      "                    \"updates\": 12, \"releases\": 13, \"total\": 46},\n"
      "     \"wall_seconds\": 0.5, \"requests_per_sec\": 200}\n"
      "  ]\n"
      "}\n");
  const SweepJson report = ReadSweepJson(in);
  EXPECT_EQ(report.schema, "treeagg-sweep-v4");
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].spec.backend, "sim");
  EXPECT_FALSE(report.cells[0].has_mlap);
}

TEST(SweepJsonTest, RejectsUnknownSchema) {
  std::stringstream in(
      "{\"schema\": \"treeagg-sweep-v99\", \"threads\": 1,"
      " \"competitive\": false, \"cells_failed\": 0, \"cells\": []}");
  EXPECT_THROW(ReadSweepJson(in), std::invalid_argument);
}

TEST(SweepJsonTest, RejectsMalformedJson) {
  std::stringstream truncated("{\"schema\": \"treeagg-sweep-v2\", \"cells\": [");
  EXPECT_THROW(ReadSweepJson(truncated), std::invalid_argument);
  std::stringstream not_object("[1, 2, 3]");
  EXPECT_THROW(ReadSweepJson(not_object), std::invalid_argument);
  std::stringstream trailing("{\"schema\": \"treeagg-sweep-v2\"} garbage");
  EXPECT_THROW(ReadSweepJson(trailing), std::invalid_argument);
}

}  // namespace
}  // namespace treeagg
