#include "sim/composites.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

class CompositesTest : public ::testing::Test {
 protected:
  CompositesTest() : tree_(MakeKary(7, 2)), hub_(tree_) {}

  Tree tree_;
  AttributeHub hub_;
};

TEST_F(CompositesTest, AverageOfNothingIsFallback) {
  AverageTracker avg(hub_, "temp", RwwFactory());
  EXPECT_EQ(avg.Read(0, -1.0), -1.0);
  EXPECT_EQ(avg.Count(0), 0.0);
}

TEST_F(CompositesTest, AverageTracksObservations) {
  AverageTracker avg(hub_, "temp", RwwFactory());
  avg.Record(1, 10.0);
  avg.Record(2, 20.0);
  avg.Record(3, 30.0);
  EXPECT_NEAR(avg.Read(0), 20.0, 1e-9);
  EXPECT_EQ(avg.Count(0), 3.0);
  // Overwriting replaces, not accumulates.
  avg.Record(1, 40.0);
  EXPECT_NEAR(avg.Read(0), 30.0, 1e-9);
  EXPECT_EQ(avg.Count(0), 3.0);
  // Clearing removes the observation and its count.
  avg.Clear(2);
  EXPECT_NEAR(avg.Read(0), 35.0, 1e-9);
  EXPECT_EQ(avg.Count(0), 2.0);
  avg.Clear(2);  // idempotent
  EXPECT_EQ(avg.Count(0), 2.0);
}

TEST_F(CompositesTest, AverageReadableFromAnyNode) {
  AverageTracker avg(hub_, "temp", RwwFactory());
  avg.Record(4, 6.0);
  avg.Record(6, 2.0);
  for (NodeId reader = 0; reader < tree_.size(); ++reader) {
    EXPECT_NEAR(avg.Read(reader), 4.0, 1e-9) << "reader " << reader;
  }
}

TEST_F(CompositesTest, VarianceBasics) {
  VarianceTracker var(hub_, "load", RwwFactory());
  EXPECT_EQ(var.Variance(0, -1.0), -1.0);
  var.Record(1, 2.0);
  var.Record(2, 4.0);
  var.Record(3, 6.0);
  EXPECT_NEAR(var.Mean(0), 4.0, 1e-9);
  // Population variance of {2, 4, 6} = 8/3.
  EXPECT_NEAR(var.Variance(0), 8.0 / 3.0, 1e-9);
  // Identical observations: zero variance (and no negative from FP).
  var.Record(1, 4.0);
  var.Record(3, 4.0);
  EXPECT_NEAR(var.Variance(0), 0.0, 1e-9);
  EXPECT_GE(var.Variance(0), 0.0);
}

TEST_F(CompositesTest, VarianceClearRemovesContribution) {
  VarianceTracker var(hub_, "load", RwwFactory());
  var.Record(1, 1.0);
  var.Record(2, 100.0);
  var.Clear(2);
  EXPECT_NEAR(var.Mean(0), 1.0, 1e-9);
  EXPECT_NEAR(var.Variance(0), 0.0, 1e-9);
}

TEST_F(CompositesTest, HistogramBucketsAndMovement) {
  HistogramTracker hist(hub_, "lat", {10.0, 100.0}, RwwFactory());
  ASSERT_EQ(hist.NumBuckets(), 3u);
  hist.Record(1, 5.0);     // bucket 0
  hist.Record(2, 50.0);    // bucket 1
  hist.Record(3, 500.0);   // bucket 2 (overflow)
  hist.Record(4, 10.0);    // boundary value goes up: bucket 1
  EXPECT_EQ(hist.Read(0), (std::vector<Real>{1.0, 2.0, 1.0}));
  // A node moving between buckets leaves its old one.
  hist.Record(2, 1.0);  // bucket 1 -> 0
  EXPECT_EQ(hist.Read(0), (std::vector<Real>{2.0, 1.0, 1.0}));
  // Same-bucket updates are free (no writes issued).
  const std::int64_t before = hub_.TotalMessages();
  hist.Record(2, 2.0);  // still bucket 0
  EXPECT_EQ(hub_.TotalMessages(), before);
  hist.Clear(3);
  EXPECT_EQ(hist.Read(0), (std::vector<Real>{2.0, 1.0, 0.0}));
}

TEST_F(CompositesTest, TrackersCoexistInOneHub) {
  AverageTracker avg(hub_, "a", RwwFactory());
  VarianceTracker var(hub_, "v", RwwFactory());
  HistogramTracker hist(hub_, "h", {1.0}, RwwFactory());
  avg.Record(1, 3.0);
  var.Record(1, 3.0);
  hist.Record(1, 3.0);
  EXPECT_EQ(avg.Read(0), 3.0);
  EXPECT_EQ(var.Mean(0), 3.0);
  EXPECT_EQ(hist.Read(0), (std::vector<Real>{0.0, 1.0}));
  // 2 (avg) + 3 (var) + 2 (hist) component attributes registered.
  EXPECT_EQ(hub_.AttributeNames().size(), 7u);
}

}  // namespace
}  // namespace treeagg
