#include "sim/trace.h"

#include <gtest/gtest.h>

namespace treeagg {
namespace {

Message Make(MsgType type, NodeId from, NodeId to) {
  Message m;
  m.type = type;
  m.from = from;
  m.to = to;
  return m;
}

TEST(TraceTest, ClassifiesPerSection32) {
  MessageTrace trace;
  // For ordered pair (u=1, v=0): probe 0->1, response 1->0, update 1->0,
  // release 0->1.
  trace.Record(Make(MsgType::kProbe, 0, 1));
  trace.Record(Make(MsgType::kResponse, 1, 0));
  trace.Record(Make(MsgType::kUpdate, 1, 0));
  trace.Record(Make(MsgType::kRelease, 0, 1));
  const MessageCounts c = trace.EdgeCost(1, 0);
  EXPECT_EQ(c.probes, 1);
  EXPECT_EQ(c.responses, 1);
  EXPECT_EQ(c.updates, 1);
  EXPECT_EQ(c.releases, 1);
  EXPECT_EQ(c.total(), 4);
  EXPECT_EQ(trace.EdgeCost(0, 1).total(), 0);  // opposite pair untouched
}

TEST(TraceTest, TotalsAccumulate) {
  MessageTrace trace;
  for (int i = 0; i < 3; ++i) trace.Record(Make(MsgType::kProbe, 0, 1));
  trace.Record(Make(MsgType::kUpdate, 2, 3));
  EXPECT_EQ(trace.totals().probes, 3);
  EXPECT_EQ(trace.totals().updates, 1);
  EXPECT_EQ(trace.TotalMessages(), 4);
}

TEST(TraceTest, EdgeCostsPartitionTotal) {
  MessageTrace trace;
  trace.Record(Make(MsgType::kProbe, 0, 1));
  trace.Record(Make(MsgType::kResponse, 1, 0));
  trace.Record(Make(MsgType::kUpdate, 3, 2));
  trace.Record(Make(MsgType::kRelease, 2, 3));
  std::int64_t sum = 0;
  for (const auto& [edge, counts] : trace.AllEdgeCosts()) {
    sum += counts.total();
  }
  EXPECT_EQ(sum, trace.TotalMessages());
}

TEST(TraceTest, KeepLogRetainsMessages) {
  MessageTrace trace(/*keep_log=*/true);
  trace.Record(Make(MsgType::kProbe, 0, 1));
  trace.Record(Make(MsgType::kResponse, 1, 0));
  ASSERT_EQ(trace.log().size(), 2u);
  EXPECT_EQ(trace.log()[0].type, MsgType::kProbe);
}

TEST(TraceTest, ResetClearsEverything) {
  MessageTrace trace(true);
  trace.Record(Make(MsgType::kProbe, 0, 1));
  trace.Reset();
  EXPECT_EQ(trace.TotalMessages(), 0);
  EXPECT_TRUE(trace.log().empty());
  EXPECT_TRUE(trace.AllEdgeCosts().empty());
}

TEST(TraceTest, CountsAddition) {
  MessageCounts a{1, 2, 3, 4};
  const MessageCounts b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.probes, 11);
  EXPECT_EQ(a.releases, 44);
  EXPECT_EQ(a.total(), 110);
}

}  // namespace
}  // namespace treeagg
