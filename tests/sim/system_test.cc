// Tests of the AggregationSystem façade itself (drivers, history
// recording, cached reads, lease-graph snapshots).
#include "sim/system.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(SystemTest, ExecuteRecordsFullHistory) {
  Tree t = MakePath(4);
  AggregationSystem sys(t, RwwFactory());
  const RequestSequence sigma = MakeWorkload("mixed50", t, 50, 1);
  sys.Execute(sigma);
  ASSERT_EQ(sys.history().size(), sigma.size());
  EXPECT_TRUE(sys.history().AllCompleted());
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    EXPECT_EQ(sys.history().records()[i].node, sigma[i].node);
    EXPECT_EQ(sys.history().records()[i].op, sigma[i].op);
  }
}

TEST(SystemTest, ReadCachedIsExactUnderFullLeases) {
  Tree t = MakeKary(7, 2);
  AggregationSystem sys(t, RwwFactory());
  sys.Write(5, 3.0);
  const Real combined = sys.Combine(2);
  EXPECT_EQ(sys.ReadCached(2), combined);
  // A single write keeps RWW's leases; the cache follows it.
  sys.Write(5, 8.0);
  EXPECT_EQ(sys.ReadCached(2), 8.0);
  const std::int64_t before = sys.trace().TotalMessages();
  sys.ReadCached(2);
  EXPECT_EQ(sys.trace().TotalMessages(), before);  // free
}

TEST(SystemTest, ReadCachedGoesStaleWithoutLeases) {
  Tree t = MakePath(3);
  AggregationSystem sys(t, PullAllFactory());
  sys.Write(2, 5.0);
  EXPECT_EQ(sys.ReadCached(0), 0.0);   // stale
  EXPECT_EQ(sys.Combine(0), 5.0);      // protocol read is exact
  EXPECT_EQ(sys.ReadCached(0), 5.0);   // the probe refreshed the cache
}

TEST(SystemTest, CurrentLeaseGraphMatchesNodeFlags) {
  Tree t = MakeKary(7, 2);
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(3);
  const LeaseGraph g = sys.CurrentLeaseGraph();
  for (const Edge& e : t.OrderedEdges()) {
    EXPECT_EQ(g.granted(e.u, e.v), sys.node(e.u).granted(e.v));
  }
  EXPECT_GT(g.GrantedCount(), 0);
}

TEST(SystemTest, KeepMessageLogCapturesEverything) {
  Tree t = MakePath(3);
  AggregationSystem::Options options;
  options.keep_message_log = true;
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Combine(0);
  EXPECT_EQ(static_cast<std::int64_t>(sys.trace().log().size()),
            sys.trace().TotalMessages());
}

TEST(SystemTest, HistoryGatherEmptyWithoutGhost) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, RwwFactory());  // ghost off by default
  sys.Write(1, 2.0);
  sys.Combine(0);
  for (const RequestRecord& r : sys.history().records()) {
    EXPECT_TRUE(r.gather.empty());
  }
}

TEST(SystemTest, HistoryGatherPopulatedWithGhost) {
  Tree t = MakePath(2);
  AggregationSystem::Options options;
  options.ghost_logging = true;
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Write(1, 2.0);
  const Real v = sys.Combine(0);
  EXPECT_EQ(v, 2.0);
  const RequestRecord& combine = sys.history().records()[1];
  ASSERT_EQ(combine.gather.size(), 1u);
  EXPECT_EQ(combine.gather[0].first, 1);
  EXPECT_EQ(combine.gather[0].second, 0);  // the write's request id
  EXPECT_EQ(combine.log_prefix, 1);
}

TEST(SystemTest, OutOfRangeNodesThrow) {
  Tree t = MakePath(3);
  AggregationSystem sys(t, RwwFactory());
  EXPECT_THROW(sys.Combine(3), std::out_of_range);
  EXPECT_THROW(sys.Combine(-1), std::out_of_range);
  EXPECT_THROW(sys.Write(99, 1.0), std::out_of_range);
  EXPECT_THROW(sys.ReadCached(3), std::out_of_range);
  // The system remains usable after a rejected request.
  sys.Write(1, 2.0);
  EXPECT_EQ(sys.Combine(0), 2.0);
}

TEST(SystemTest, MultipleSystemsShareATreeIndependently) {
  Tree t = MakePath(4);
  AggregationSystem a(t, RwwFactory());
  AggregationSystem b(t, PullAllFactory());
  a.Write(0, 1.0);
  b.Write(0, 9.0);
  EXPECT_EQ(a.Combine(3), 1.0);
  EXPECT_EQ(b.Combine(3), 9.0);
}

}  // namespace
}  // namespace treeagg
