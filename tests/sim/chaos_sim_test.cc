// ChaosSimulator: convergence-safe faults must leave the protocol's
// guarantees intact (every request completes, post-heal probes return the
// ground truth, the Section 5 causal checker passes), and a seeded
// schedule must replay bit-identically.
#include "sim/chaos.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "fault/convergence.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

ConvergenceReport RunAndCheck(const Tree& t, const FaultSchedule& faults,
                              const RequestSequence& sigma,
                              std::uint64_t seed) {
  ChaosSimulator::Options options;
  options.seed = seed;
  options.min_delay = 1;
  options.max_delay = 4;
  ChaosSimulator sim(t, RwwFactory(), faults, options);
  Rng gaps(seed + 1);
  const std::vector<ReqId> probes =
      sim.RunWithFinalProbes(ScheduleWithGaps(sigma, 3, gaps));
  ConvergenceOptions copts;
  copts.fault_windows = faults.Windows();
  return CheckConvergence(sim.history(), sim.GhostStates(), sim.op(),
                          t.size(), probes, copts);
}

TEST(ChaosSimTest, NoFaultsConverges) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 300, 5);
  const ConvergenceReport r = RunAndCheck(t, FaultSchedule(), sigma, 9);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.excluded_combines, 0u);
}

TEST(ChaosSimTest, DropsParkedUntilHealConverge) {
  Tree t = MakePath(8);
  const RequestSequence sigma = MakeWorkload("mixed75", t, 400, 6);
  FaultSchedule faults;
  faults.WithSeed(3).Drop(0.2, 20, 200);
  const ConvergenceReport r = RunAndCheck(t, faults, sigma, 10);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ChaosSimTest, TransientPartitionConverges) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 300, 7);
  FaultSchedule faults;
  faults.WithSeed(4).Cut(0, 1, 50, 250).Cut(1, 3, 80, 220);
  const ConvergenceReport r = RunAndCheck(t, faults, sigma, 11);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ChaosSimTest, CrashRestartConverges) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 400, 8);
  FaultSchedule faults;
  faults.WithSeed(5).Crash(1, 60, 300);
  const ConvergenceReport r = RunAndCheck(t, faults, sigma, 12);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_GT(r.final_probes, 0u);
}

TEST(ChaosSimTest, FullChaosPresetConverges) {
  Tree t = MakeKary(31, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 500, 9);
  const ConvergenceReport r =
      RunAndCheck(t, FaultSchedule::Named("chaos"), sigma, 13);
  EXPECT_TRUE(r.ok) << r.message;
  // The chaos preset's windows actually exclude some combines, so the
  // outside-window verdict is not vacuous.
  EXPECT_GT(r.excluded_combines, 0u);
}

// Acceptance criterion: a seeded schedule replayed twice produces
// bit-identical traces and verdicts.
TEST(ChaosSimTest, SeededScheduleReplaysBitIdentically) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 400, 21);
  const FaultSchedule faults =
      FaultSchedule::Parse("seed=17;drop(0.1)@10..150;crash(2)@40..200;"
                           "delay(1..5)@0..250");

  auto run = [&](std::uint64_t* hash, ConvergenceReport* report) {
    ChaosSimulator::Options options;
    options.seed = 33;
    options.min_delay = 1;
    options.max_delay = 4;
    options.keep_message_log = true;
    ChaosSimulator sim(t, RwwFactory(), faults, options);
    Rng gaps(34);
    const std::vector<ReqId> probes =
        sim.RunWithFinalProbes(ScheduleWithGaps(sigma, 3, gaps));
    *hash = TraceHash(sim.trace().log());
    ConvergenceOptions copts;
    copts.fault_windows = faults.Windows();
    *report = CheckConvergence(sim.history(), sim.GhostStates(), sim.op(),
                               t.size(), probes, copts);
  };

  std::uint64_t hash_a = 0, hash_b = 0;
  ConvergenceReport report_a, report_b;
  run(&hash_a, &report_a);
  run(&hash_b, &report_b);
  EXPECT_EQ(hash_a, hash_b);
  EXPECT_EQ(report_a.ok, report_b.ok);
  EXPECT_EQ(report_a.ground_truth, report_b.ground_truth);
  EXPECT_EQ(report_a.excluded_combines, report_b.excluded_combines);
  EXPECT_TRUE(report_a.ok) << report_a.message;
}

// --- second-generation vocabulary on the DES ----------------------------

TEST(ChaosSimTest, CorrelatedCrashGroupConverges) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 400, 14);
  // Parent and child straddling a lease edge die together.
  FaultSchedule faults;
  faults.WithSeed(6).CrashGroup({0, 1}, 60, 250);
  const ConvergenceReport r = RunAndCheck(t, faults, sigma, 15);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_GT(r.final_probes, 0u);
}

TEST(ChaosSimTest, AsymmetricSeverConverges) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 400, 16);
  // Upward direction severed; the reverse (grants/acks) stays live.
  FaultSchedule faults;
  faults.WithSeed(7).Sever(1, 0, 50, 280).Sever(3, 1, 90, 240);
  const ConvergenceReport r = RunAndCheck(t, faults, sigma, 17);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ChaosSimTest, GrayNodeConvergesWithinScaledDeadline) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 300, 18);
  FaultSchedule faults;
  faults.WithSeed(8).Gray(1, 5, 15, 40, 260);

  ChaosSimulator::Options options;
  options.seed = 19;
  options.min_delay = 1;
  options.max_delay = 4;
  ChaosSimulator sim(t, RwwFactory(), faults, options);
  Rng gaps(20);
  const std::vector<ReqId> probes =
      sim.RunWithFinalProbes(ScheduleWithGaps(sigma, 3, gaps));
  ConvergenceOptions copts;
  copts.fault_windows = faults.Windows();
  // Liveness under gray failure: everything still completes by a deadline
  // scaled by the worst injected per-message delay.
  copts.liveness_deadline =
      sim.now() + (faults.MaxInjectedDelay() + options.max_delay) * 4;
  const ConvergenceReport r = CheckConvergence(
      sim.history(), sim.GhostStates(), sim.op(), t.size(), probes, copts);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.deadline_violations, 0u);
}

TEST(ChaosSimTest, GeoLatencyProfilesConverge) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 400, 21);
  // Two slow WAN edges plus a regional partition that heals.
  FaultSchedule faults;
  faults.WithSeed(9)
      .Lat(0, 1, 15, 25, 0, 350)
      .Lat(0, 2, 40, 60, 0, 350)
      .Cut(0, 2, 120, 220);
  const ConvergenceReport r = RunAndCheck(t, faults, sigma, 22);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_GT(r.excluded_combines, 0u);
}

TEST(ChaosSimTest, KillDuringGrayConverges) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 400, 23);
  // A gray window with a crash landing inside it — the matrix's
  // kill-during-gray cell on the DES backend.
  FaultSchedule faults;
  faults.WithSeed(10).Gray(1, 5, 15, 40, 300).Crash(4, 100, 240);
  const ConvergenceReport r = RunAndCheck(t, faults, sigma, 24);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ChaosSimTest, NewPresetsConvergeOnTheSim) {
  Tree t = MakeKary(15, 2);
  for (const char* preset : {"pairkill", "gray", "asym", "geo2", "geo3"}) {
    const RequestSequence sigma = MakeWorkload("mixed50", t, 500, 25);
    const ConvergenceReport r =
        RunAndCheck(t, FaultSchedule::Named(preset), sigma, 26);
    EXPECT_TRUE(r.ok) << preset << ": " << r.message;
  }
}

// A deadline tighter than the injected delay must actually fire — the
// liveness check is not vacuous.
TEST(ChaosSimTest, ImpossibleLivenessDeadlineIsReported) {
  Tree t = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 300, 27);
  FaultSchedule faults;
  faults.WithSeed(11).Gray(1, 20, 40, 0, 2000);
  ChaosSimulator::Options options;
  options.seed = 28;
  ChaosSimulator sim(t, RwwFactory(), faults, options);
  Rng gaps(29);
  const std::vector<ReqId> probes =
      sim.RunWithFinalProbes(ScheduleWithGaps(sigma, 3, gaps));
  ConvergenceOptions copts;
  copts.fault_windows = faults.Windows();
  copts.liveness_deadline = 1;  // nothing real completes this fast
  const ConvergenceReport r = CheckConvergence(
      sim.history(), sim.GhostStates(), sim.op(), t.size(), probes, copts);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.deadline_violations, 0u);
}

// Checker-validation faults: duplicates/reordering violate the paper's
// channel assumptions, and the checker must be able to notice (mirrors
// tests/sim/faults_test.cc for the schedule-driven path).
TEST(ChaosSimTest, FifoViolationsAreDetectedOnSomeSeed) {
  Tree t = MakePath(5);
  int violations = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FaultSchedule faults;
    faults.WithSeed(seed).Reorder(0.6, 0, 2000).Delay(1, 40, 0, 2000);
    ChaosSimulator::Options options;
    options.seed = seed;
    ChaosSimulator sim(t, RwwFactory(), faults, options);
    Rng gaps(seed + 50);
    const RequestSequence sigma = MakeWorkload("mixed75", t, 300, seed);
    sim.Run(ScheduleWithGaps(sigma, 1, gaps));
    const CheckResult r = CheckCausalConsistency(
        sim.history(), sim.GhostStates(), SumOp(), t.size());
    if (!r.ok) ++violations;
  }
  EXPECT_GT(violations, 0);
}

}  // namespace
}  // namespace treeagg
