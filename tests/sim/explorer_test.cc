#include "sim/explorer.h"

#include <gtest/gtest.h>

#include "core/extra_policies.h"
#include "core/policies.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(ExplorerTest, SingleRequestHasOneExecution) {
  Tree t({0, 0});
  const ExplorationResult r =
      ExploreAllInterleavings(t, RwwFactory(), {Request::Write(0, 1.0)});
  EXPECT_EQ(r.executions, 1);
  EXPECT_TRUE(r.all_consistent);
  EXPECT_FALSE(r.truncated);
}

TEST(ExplorerTest, TwoIndependentRequestsInterleaveBothWays) {
  Tree t({0, 0});
  // Two writes at different nodes, no messages: exactly 2 interleavings.
  const ExplorationResult r = ExploreAllInterleavings(
      t, RwwFactory(), {Request::Write(0, 1.0), Request::Write(1, 2.0)});
  EXPECT_EQ(r.executions, 2);
  EXPECT_TRUE(r.all_consistent);
}

TEST(ExplorerTest, ProgramOrderPreservedPerNode) {
  Tree t({0, 0});
  // Two writes at the SAME node: program order pins them; one execution.
  const ExplorationResult r = ExploreAllInterleavings(
      t, RwwFactory(), {Request::Write(0, 1.0), Request::Write(0, 2.0)});
  EXPECT_EQ(r.executions, 1);
  EXPECT_TRUE(r.all_consistent);
}

TEST(ExplorerTest, WriteRacingCombineAllConsistent) {
  Tree t({0, 0});
  const ExplorationResult r = ExploreAllInterleavings(
      t, RwwFactory(),
      {Request::Write(0, 5.0), Request::Combine(1), Request::Write(0, 7.0)});
  EXPECT_GT(r.executions, 2);
  EXPECT_TRUE(r.all_consistent) << r.first_violation;
  EXPECT_GE(r.max_depth, 5);  // 3 initiations + probe/response at least
}

TEST(ExplorerTest, ThreeNodePathContention) {
  Tree t = MakePath(3);
  const ExplorationResult r = ExploreAllInterleavings(
      t, RwwFactory(),
      {Request::Combine(0), Request::Write(2, 1.0), Request::Combine(2),
       Request::Write(0, 2.0)});
  EXPECT_TRUE(r.all_consistent) << r.first_violation;
  EXPECT_GT(r.executions, 50);  // genuine combinatorial coverage
  EXPECT_FALSE(r.truncated);
}

TEST(ExplorerTest, EveryPolicySurvivesExhaustiveExploration) {
  Tree t = MakePath(3);
  const RequestSequence requests = {Request::Write(0, 1.0),
                                    Request::Combine(2),
                                    Request::Write(2, 3.0),
                                    Request::Combine(0)};
  for (const NamedPolicy& policy : AllPolicies()) {
    const ExplorationResult r =
        ExploreAllInterleavings(t, policy.factory, requests, SumOp(), 50000);
    EXPECT_TRUE(r.all_consistent)
        << policy.name << ": " << r.first_violation;
    EXPECT_GT(r.executions, 0) << policy.name;
  }
}

TEST(ExplorerTest, TruncationIsReportedNotSilent) {
  Tree t = MakeStar(4);
  RequestSequence requests;
  for (int i = 0; i < 6; ++i) {
    requests.push_back(Request::Combine(static_cast<NodeId>(i % 4)));
  }
  const ExplorationResult r =
      ExploreAllInterleavings(t, RwwFactory(), requests, SumOp(),
                              /*max_executions=*/100);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.executions, 100);
}

TEST(ExplorerTest, MinOperatorExploresConsistently) {
  Tree t({0, 0});
  const ExplorationResult r = ExploreAllInterleavings(
      t, RwwFactory(),
      {Request::Write(0, 5.0), Request::Combine(1), Request::Write(1, 2.0),
       Request::Combine(0)},
      MinOp());
  EXPECT_TRUE(r.all_consistent) << r.first_violation;
}

}  // namespace
}  // namespace treeagg
