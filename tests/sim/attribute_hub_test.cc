#include "sim/attribute_hub.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(AttributeHubTest, DefineAndList) {
  Tree t = MakePath(4);
  AttributeHub hub(t);
  hub.Define("load", SumOp(), RwwFactory());
  hub.Define("alarm", BoolOrOp(), PushAllFactory());
  EXPECT_TRUE(hub.Has("load"));
  EXPECT_FALSE(hub.Has("disk"));
  EXPECT_EQ(hub.AttributeNames(),
            (std::vector<std::string>{"alarm", "load"}));
}

TEST(AttributeHubTest, DuplicateDefinitionThrows) {
  Tree t = MakePath(3);
  AttributeHub hub(t);
  hub.Define("x", SumOp(), RwwFactory());
  EXPECT_THROW(hub.Define("x", MinOp(), RwwFactory()),
               std::invalid_argument);
}

TEST(AttributeHubTest, UnknownAttributeThrows) {
  Tree t = MakePath(3);
  AttributeHub hub(t);
  EXPECT_THROW(hub.Write("nope", 0, 1.0), std::out_of_range);
  EXPECT_THROW(hub.Combine("nope", 0), std::out_of_range);
}

TEST(AttributeHubTest, AttributesAggregateIndependently) {
  Tree t = MakeKary(7, 2);
  AttributeHub hub(t);
  hub.Define("load", SumOp(), RwwFactory());
  hub.Define("min_free", MinOp(), RwwFactory());
  hub.Define("alarm", BoolOrOp(), RwwFactory());
  hub.Write("load", 3, 10.0);
  hub.Write("load", 5, 2.5);
  hub.Write("min_free", 3, 80.0);
  hub.Write("min_free", 6, 15.0);
  hub.Write("alarm", 2, 1.0);
  EXPECT_EQ(hub.Combine("load", 0), 12.5);
  EXPECT_EQ(hub.Combine("min_free", 0), 15.0);
  EXPECT_EQ(hub.Combine("alarm", 0), 1.0);
  hub.Write("alarm", 2, 0.0);
  EXPECT_EQ(hub.Combine("alarm", 0), 0.0);
}

TEST(AttributeHubTest, CombineAllReadsEveryAttribute) {
  Tree t = MakePath(3);
  AttributeHub hub(t);
  hub.Define("a", SumOp(), RwwFactory());
  hub.Define("b", MaxOp(), RwwFactory());
  hub.Write("a", 1, 4.0);
  hub.Write("b", 2, -1.0);
  const auto values = hub.CombineAll(0);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values.at("a"), 4.0);
  EXPECT_EQ(values.at("b"), -1.0);
}

TEST(AttributeHubTest, MessageAccountingSeparatesAndSums) {
  Tree t = MakePath(2);
  AttributeHub hub(t);
  hub.Define("a", SumOp(), RwwFactory());
  hub.Define("b", SumOp(), PullAllFactory());
  hub.Combine("a", 0);  // probe + response, lease set
  hub.Combine("a", 0);  // free
  hub.Combine("b", 0);  // probe + response
  hub.Combine("b", 0);  // probe + response again (no lease)
  EXPECT_EQ(hub.MessagesFor("a"), 2);
  EXPECT_EQ(hub.MessagesFor("b"), 4);
  EXPECT_EQ(hub.TotalMessages(), 6);
}

TEST(AttributeHubTest, ReadCachedIsFreeAndEventuallyExact) {
  Tree t = MakePath(3);
  AttributeHub hub(t);
  hub.Define("load", SumOp(), RwwFactory());
  hub.Write("load", 2, 7.0);
  // Before any combine, node 0 has no leases: the cached view is stale.
  EXPECT_EQ(hub.ReadCached("load", 0), 0.0);
  const std::int64_t before = hub.TotalMessages();
  EXPECT_EQ(hub.ReadCached("load", 0), 0.0);
  EXPECT_EQ(hub.TotalMessages(), before);  // zero cost
  // After one combine the leases are in place and the cache is exact,
  // even across subsequent (single) writes.
  hub.Combine("load", 0);
  hub.Write("load", 2, 9.0);
  EXPECT_EQ(hub.ReadCached("load", 0), 9.0);
}

}  // namespace
}  // namespace treeagg
