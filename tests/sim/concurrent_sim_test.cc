#include "sim/concurrent.h"

#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "consistency/strict_checker.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(ConcurrentSimTest, WidelySpacedRequestsBehaveSequentially) {
  // With gaps far larger than any message delay, the concurrent execution
  // degenerates to a sequential one and must be strictly consistent.
  Tree t = MakeKary(7, 2);
  ConcurrentSimulator::Options options;
  options.min_delay = 1;
  options.max_delay = 1;
  ConcurrentSimulator sim(t, RwwFactory(), options);
  std::vector<ScheduledRequest> schedule;
  const RequestSequence sigma = MakeWorkload("mixed50", t, 100, 31);
  std::int64_t time = 0;
  for (const Request& r : sigma) {
    schedule.push_back({time, r});
    time += 1000;  // guaranteed quiescence between requests
  }
  sim.Run(schedule);
  ASSERT_TRUE(sim.history().AllCompleted());
  EXPECT_TRUE(CheckStrictConsistency(sim.history(), SumOp(), t.size()).ok);
}

TEST(ConcurrentSimTest, OverlappingRequestsAllComplete) {
  Tree t = MakePath(8);
  ConcurrentSimulator::Options options;
  options.min_delay = 1;
  options.max_delay = 20;
  options.seed = 7;
  ConcurrentSimulator sim(t, RwwFactory(), options);
  std::vector<ScheduledRequest> schedule;
  const RequestSequence sigma = MakeWorkload("mixed50", t, 300, 13);
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    schedule.push_back({static_cast<std::int64_t>(i / 4), sigma[i]});
  }
  sim.Run(schedule);
  EXPECT_TRUE(sim.history().AllCompleted());
  EXPECT_EQ(sim.history().size(), sigma.size());
}

TEST(ConcurrentSimTest, SimultaneousCombinesAtSameNodeShareProbes) {
  Tree t = MakeStar(6);
  ConcurrentSimulator::Options options;
  options.min_delay = 5;
  options.max_delay = 5;
  ConcurrentSimulator sim(t, RwwFactory(), options);
  // Three combines at the hub at the same instant: the probe wave is
  // shared, so the cost is that of one combine.
  sim.Run({{0, Request::Combine(0)},
           {0, Request::Combine(0)},
           {1, Request::Combine(0)}});
  EXPECT_TRUE(sim.history().AllCompleted());
  EXPECT_EQ(sim.trace().totals().probes, 5);
  EXPECT_EQ(sim.trace().totals().responses, 5);
}

TEST(ConcurrentSimTest, FifoPreservedPerChannel) {
  // Delays vary, but per-edge delivery must preserve send order; the
  // protocol relies on it, and a causally consistent run is the witness.
  Tree t = MakePath(4);
  ConcurrentSimulator::Options options;
  options.min_delay = 1;
  options.max_delay = 30;
  options.seed = 11;
  ConcurrentSimulator sim(t, RwwFactory(), options);
  Rng rng(5);
  const RequestSequence sigma = MakeWorkload("mixed75", t, 200, 19);
  sim.Run(ScheduleWithGaps(sigma, 2, rng));
  ASSERT_TRUE(sim.history().AllCompleted());
  const CheckResult r = CheckCausalConsistency(sim.history(),
                                               sim.GhostStates(), SumOp(),
                                               t.size());
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(ConcurrentSimTest, QuiescentLeaseSymmetryAfterConcurrentRuns) {
  // Lemma 3.1 (taken/granted symmetry) is proven for sequential
  // executions; empirically it also holds in the final quiescent state of
  // concurrent runs — every lease handshake and release pair has settled
  // once no messages remain.
  for (const std::uint64_t seed : {1ull, 4ull, 9ull, 16ull}) {
    Tree t = MakeShape("kary2", 9, 3);
    ConcurrentSimulator::Options options;
    options.min_delay = 1;
    options.max_delay = 17;
    options.seed = seed;
    options.ghost_logging = false;
    ConcurrentSimulator sim(t, RwwFactory(), options);
    Rng rng(seed + 50);
    sim.Run(ScheduleWithGaps(MakeWorkload("mixed50", t, 300, seed), 2, rng));
    for (const Edge& e : t.OrderedEdges()) {
      EXPECT_EQ(sim.node(e.u).taken(e.v), sim.node(e.v).granted(e.u))
          << "seed " << seed << " edge (" << e.u << "," << e.v << ")";
    }
    // Lemma 3.4 counterpart: no pending probe fan-outs remain.
    for (NodeId u = 0; u < t.size(); ++u) {
      EXPECT_EQ(sim.node(u).PndgSize(), 0u);
    }
  }
}

TEST(ConcurrentSimTest, DeterministicAcrossRuns) {
  Tree t = MakeKary(9, 2);
  const RequestSequence sigma = MakeWorkload("bursty", t, 150, 23);
  const auto run = [&] {
    ConcurrentSimulator::Options options;
    options.min_delay = 1;
    options.max_delay = 10;
    options.seed = 77;
    ConcurrentSimulator sim(t, RwwFactory(), options);
    Rng rng(42);
    sim.Run(ScheduleWithGaps(sigma, 3, rng));
    return sim.trace().TotalMessages();
  };
  EXPECT_EQ(run(), run());
}

TEST(ConcurrentSimTest, ScheduleWithGapsIsMonotone) {
  Rng rng(1);
  const RequestSequence sigma = {Request::Combine(0), Request::Write(0, 1),
                                 Request::Combine(0)};
  const auto schedule = ScheduleWithGaps(sigma, 5, rng);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_LE(schedule[0].time, schedule[1].time);
  EXPECT_LE(schedule[1].time, schedule[2].time);
}

}  // namespace
}  // namespace treeagg
