// Fault injection: the paper's model assumes reliable FIFO channels. These
// tests break that assumption on purpose and verify that the consistency
// CHECKERS detect the resulting violations — i.e. the checkers are not
// vacuously green.
#include <gtest/gtest.h>

#include "consistency/causal_checker.h"
#include "core/policies.h"
#include "sim/concurrent.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(FaultsTest, DroppedMessagesLeaveRequestsIncomplete) {
  Tree t = MakePath(6);
  ConcurrentSimulator::Options options;
  options.drop_probability = 0.5;
  options.seed = 3;
  ConcurrentSimulator sim(t, RwwFactory(), options);
  Rng rng(4);
  const RequestSequence sigma = MakeWorkload("readheavy", t, 200, 5);
  sim.Run(ScheduleWithGaps(sigma, 2, rng));
  // With half of all messages lost, some combine must have stalled.
  EXPECT_FALSE(sim.history().AllCompleted());
  // And the checker reports it rather than passing vacuously.
  const CheckResult r = CheckCausalConsistency(sim.history(),
                                               sim.GhostStates(), SumOp(),
                                               t.size());
  EXPECT_FALSE(r.ok);
}

TEST(FaultsTest, FifoViolationIsDetectedOnSomeSeed) {
  // Reordered channels break the protocol's correctness assumptions; the
  // checker must flag at least one of a batch of seeds. (Not every
  // interleaving triggers a visible inconsistency, so we assert over the
  // batch, and also assert that the checker itself keeps functioning.)
  Tree t = MakePath(5);
  int violations = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    ConcurrentSimulator::Options options;
    options.violate_fifo = true;
    options.min_delay = 1;
    options.max_delay = 40;
    options.seed = seed;
    ConcurrentSimulator sim(t, RwwFactory(), options);
    Rng rng(seed + 100);
    const RequestSequence sigma = MakeWorkload("mixed75", t, 300, seed);
    sim.Run(ScheduleWithGaps(sigma, 1, rng));
    const CheckResult r = CheckCausalConsistency(
        sim.history(), sim.GhostStates(), SumOp(), t.size());
    if (!r.ok) ++violations;
  }
  EXPECT_GT(violations, 0)
      << "FIFO violations never produced a detectable inconsistency; the "
         "checker may be vacuous";
}

TEST(FaultsTest, NoFaultsMeansNoViolations) {
  // Control group for the test above: identical setup minus the fault.
  Tree t = MakePath(5);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    ConcurrentSimulator::Options options;
    options.min_delay = 1;
    options.max_delay = 40;
    options.seed = seed;
    ConcurrentSimulator sim(t, RwwFactory(), options);
    Rng rng(seed + 100);
    const RequestSequence sigma = MakeWorkload("mixed75", t, 300, seed);
    sim.Run(ScheduleWithGaps(sigma, 1, rng));
    const CheckResult r = CheckCausalConsistency(
        sim.history(), sim.GhostStates(), SumOp(), t.size());
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.message;
  }
}

}  // namespace
}  // namespace treeagg
