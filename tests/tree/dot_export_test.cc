#include "tree/dot_export.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(DotExportTest, TreeEmitsAllEdges) {
  Tree t = MakePath(4);
  const std::string dot = TreeToDot(t);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1 [dir=none"), std::string::npos);
  EXPECT_NE(dot.find("1 -> 2 [dir=none"), std::string::npos);
  EXPECT_NE(dot.find("2 -> 3 [dir=none"), std::string::npos);
  EXPECT_EQ(dot.find("lease"), std::string::npos);
}

TEST(DotExportTest, LeaseOverlayShowsGrants) {
  Tree t = MakePath(3);
  LeaseGraph g(t);
  g.SetGranted(0, 1, true);
  const std::string dot = LeaseGraphToDot(g);
  EXPECT_NE(dot.find("0 -> 1 [color=black"), std::string::npos);
  EXPECT_EQ(dot.find("1 -> 0 [color=black"), std::string::npos);
}

TEST(DotExportTest, RendersSystemLeaseGraph) {
  Tree t = MakePath(3);
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(0);  // leases 2->1->0
  const std::string dot = LeaseGraphToDot(sys.CurrentLeaseGraph());
  EXPECT_NE(dot.find("2 -> 1 [color=black"), std::string::npos);
  EXPECT_NE(dot.find("1 -> 0 [color=black"), std::string::npos);
  EXPECT_EQ(dot.find("0 -> 1 [color=black"), std::string::npos);
}

TEST(DotExportTest, OutputIsBalanced) {
  Tree t = MakeStar(5);
  const std::string dot = TreeToDot(t);
  EXPECT_EQ(dot.front(), 'd');
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

}  // namespace
}  // namespace treeagg
