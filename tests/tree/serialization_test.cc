#include "tree/serialization.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(TreeSerializationTest, ParsesSimpleTree) {
  Tree t = TreeFromString("0 0 1 1 2");
  EXPECT_EQ(t.size(), 5);
  EXPECT_TRUE(t.HasEdge(0, 1));
  EXPECT_TRUE(t.HasEdge(1, 2));
  EXPECT_TRUE(t.HasEdge(1, 3));
  EXPECT_TRUE(t.HasEdge(2, 4));
}

TEST(TreeSerializationTest, RoundTripsGeneratedTrees) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Tree original = MakeRandomTree(static_cast<NodeId>(rng.NextInt(1, 60)),
                                   rng);
    Tree reparsed = TreeFromString(TreeToString(original));
    ASSERT_EQ(original.size(), reparsed.size());
    ASSERT_EQ(original.edges().size(), reparsed.edges().size());
    for (std::size_t i = 0; i < original.edges().size(); ++i) {
      ASSERT_EQ(original.edges()[i], reparsed.edges()[i]);
    }
  }
}

TEST(TreeSerializationTest, AcceptsArbitraryWhitespace) {
  Tree t = TreeFromString("  0\n0\t1 ");
  EXPECT_EQ(t.size(), 3);
}

TEST(TreeSerializationTest, RejectsGarbage) {
  EXPECT_THROW(TreeFromString(""), std::invalid_argument);
  EXPECT_THROW(TreeFromString("0 x"), std::invalid_argument);
  EXPECT_THROW(TreeFromString("0 1.5"), std::invalid_argument);
  EXPECT_THROW(TreeFromString("0 2 0"), std::invalid_argument);  // bad parent
}

TEST(TreeSerializationTest, SingleNode) {
  EXPECT_EQ(TreeToString(TreeFromString("0")), "0");
}

}  // namespace
}  // namespace treeagg
