#include "tree/lease_graph.h"

#include <gtest/gtest.h>

#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(LeaseGraphTest, InitiallyNoGrants) {
  Tree t = MakePath(4);
  LeaseGraph g(t);
  EXPECT_EQ(g.GrantedCount(), 0);
  EXPECT_FALSE(g.granted(0, 1));
  EXPECT_TRUE(g.ReachableFrom(0).empty());
}

TEST(LeaseGraphTest, SetAndClearDirectedEdges) {
  Tree t = MakePath(3);
  LeaseGraph g(t);
  g.SetGranted(0, 1, true);
  EXPECT_TRUE(g.granted(0, 1));
  EXPECT_FALSE(g.granted(1, 0));  // directed
  g.SetGranted(0, 1, false);
  EXPECT_FALSE(g.granted(0, 1));
}

TEST(LeaseGraphTest, ReachabilityFollowsGrantDirection) {
  Tree t = MakePath(4);  // 0-1-2-3
  LeaseGraph g(t);
  g.SetGranted(0, 1, true);
  g.SetGranted(1, 2, true);
  const auto from0 = g.ReachableFrom(0);
  EXPECT_EQ(from0, (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(g.ReachableFrom(3).empty());
}

TEST(LeaseGraphTest, ProbeSetIsWholeTreeWithoutLeases) {
  Tree t = MakeStar(5);
  LeaseGraph g(t);
  EXPECT_EQ(g.ProbeSetFor(0).size(), 4u);
  EXPECT_EQ(g.ProbeSetFor(1).size(), 4u);
}

TEST(LeaseGraphTest, ProbeSetShrinksWithLeasesTowardRequester) {
  Tree t = MakePath(4);  // 0-1-2-3, combine at 3
  LeaseGraph g(t);
  // 0 granted its value to 1: probing from 3 stops at 1.
  g.SetGranted(0, 1, true);
  const auto probe = g.ProbeSetFor(3);
  EXPECT_EQ(probe, (std::vector<NodeId>{1, 2}));
}

TEST(LeaseGraphTest, ProbeSetEmptyWhenEverythingGrantedInward) {
  Tree t = MakePath(3);
  LeaseGraph g(t);
  g.SetGranted(0, 1, true);
  g.SetGranted(1, 2, true);
  EXPECT_TRUE(g.ProbeSetFor(2).empty());
}

TEST(LeaseGraphTest, GrantedCountTracksUpdates) {
  Tree t = MakeStar(4);
  LeaseGraph g(t);
  g.SetGranted(0, 1, true);
  g.SetGranted(1, 0, true);
  g.SetGranted(0, 2, true);
  EXPECT_EQ(g.GrantedCount(), 3);
}

}  // namespace
}  // namespace treeagg
