#include "tree/topology.h"

#include <gtest/gtest.h>

#include <queue>

#include "common/rng.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(TopologyTest, SingleNode) {
  Tree t({0});
  EXPECT_EQ(t.size(), 1);
  EXPECT_TRUE(t.neighbors(0).empty());
  EXPECT_EQ(t.Diameter(), 0);
}

TEST(TopologyTest, PathStructure) {
  Tree t = MakePath(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_EQ(t.degree(4), 1);
  EXPECT_TRUE(t.HasEdge(1, 2));
  EXPECT_TRUE(t.HasEdge(2, 1));
  EXPECT_FALSE(t.HasEdge(0, 2));
  EXPECT_FALSE(t.HasEdge(0, 0));
  EXPECT_EQ(t.Diameter(), 4);
}

TEST(TopologyTest, StarStructure) {
  Tree t = MakeStar(6);
  EXPECT_EQ(t.degree(0), 5);
  for (NodeId i = 1; i < 6; ++i) {
    EXPECT_EQ(t.degree(i), 1);
    EXPECT_TRUE(t.HasEdge(0, i));
  }
  EXPECT_EQ(t.Diameter(), 2);
}

TEST(TopologyTest, EdgesEnumerationCountsNMinus1) {
  Tree t = MakeKary(10, 3);
  EXPECT_EQ(t.edges().size(), 9u);
  EXPECT_EQ(t.OrderedEdges().size(), 18u);
}

TEST(TopologyTest, OrderedEdgesContainsBothDirections) {
  Tree t = MakePath(3);
  const auto ordered = t.OrderedEdges();
  int forward = 0, backward = 0;
  for (const Edge& e : ordered) {
    if (e.u == 0 && e.v == 1) ++forward;
    if (e.u == 1 && e.v == 0) ++backward;
  }
  EXPECT_EQ(forward, 1);
  EXPECT_EQ(backward, 1);
}

TEST(TopologyTest, InvalidParentVectorThrows) {
  EXPECT_THROW(Tree({0, 2, 0}), std::invalid_argument);  // parent[1]=2 >= 1
  EXPECT_THROW(Tree({}), std::invalid_argument);
}

TEST(TopologyTest, SubtreeMembershipOnPath) {
  Tree t = MakePath(5);  // 0-1-2-3-4
  // subtree(1, 2) = {0, 1}; subtree(2, 1) = {2, 3, 4}.
  EXPECT_TRUE(t.InSubtree(0, 1, 2));
  EXPECT_TRUE(t.InSubtree(1, 1, 2));
  EXPECT_FALSE(t.InSubtree(2, 1, 2));
  EXPECT_FALSE(t.InSubtree(4, 1, 2));
  EXPECT_TRUE(t.InSubtree(2, 2, 1));
  EXPECT_TRUE(t.InSubtree(4, 2, 1));
  EXPECT_FALSE(t.InSubtree(0, 2, 1));
}

TEST(TopologyTest, SubtreeSizesPartitionTheTree) {
  Rng rng(7);
  Tree t = MakeRandomTree(40, rng);
  for (const Edge& e : t.edges()) {
    EXPECT_EQ(t.SubtreeSize(e.u, e.v) + t.SubtreeSize(e.v, e.u), t.size());
    NodeId count_u = 0;
    for (NodeId w = 0; w < t.size(); ++w) {
      const bool in_u = t.InSubtree(w, e.u, e.v);
      const bool in_v = t.InSubtree(w, e.v, e.u);
      EXPECT_NE(in_u, in_v) << "node " << w << " must be on exactly one side";
      if (in_u) ++count_u;
    }
    EXPECT_EQ(count_u, t.SubtreeSize(e.u, e.v));
  }
}

TEST(TopologyTest, UParentIsNextHopTowardsU) {
  Rng rng(3);
  Tree t = MakeRandomTree(30, rng);
  // Reference: BFS parent pointers from every root.
  for (NodeId u = 0; u < t.size(); ++u) {
    std::vector<NodeId> parent(static_cast<std::size_t>(t.size()),
                               kInvalidNode);
    std::queue<NodeId> q;
    q.push(u);
    std::vector<bool> seen(static_cast<std::size_t>(t.size()), false);
    seen[static_cast<std::size_t>(u)] = true;
    while (!q.empty()) {
      const NodeId x = q.front();
      q.pop();
      for (const NodeId w : t.neighbors(x)) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          parent[static_cast<std::size_t>(w)] = x;
          q.push(w);
        }
      }
    }
    for (NodeId w = 0; w < t.size(); ++w) {
      if (w == u) continue;
      EXPECT_EQ(t.UParent(w, u), parent[static_cast<std::size_t>(w)])
          << "u=" << u << " w=" << w;
    }
  }
}

TEST(TopologyTest, DistanceMatchesBfs) {
  Rng rng(11);
  Tree t = MakeRandomTree(25, rng);
  for (NodeId u = 0; u < t.size(); ++u) {
    std::vector<NodeId> dist(static_cast<std::size_t>(t.size()), -1);
    std::queue<NodeId> q;
    q.push(u);
    dist[static_cast<std::size_t>(u)] = 0;
    while (!q.empty()) {
      const NodeId x = q.front();
      q.pop();
      for (const NodeId w : t.neighbors(x)) {
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(x)] + 1;
          q.push(w);
        }
      }
    }
    for (NodeId v = 0; v < t.size(); ++v) {
      EXPECT_EQ(t.Distance(u, v), dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(TopologyTest, BfsOrderVisitsAllNodesOnce) {
  Tree t = MakeKary(31, 2);
  const auto order = t.BfsOrder(5);
  EXPECT_EQ(order.size(), 31u);
  std::vector<bool> seen(31, false);
  for (const NodeId v : order) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
  EXPECT_EQ(order.front(), 5);
}

TEST(TopologyTest, LcaOnKnownTree) {
  Tree t = MakeKary(15, 2);  // node i's parent is (i-1)/2
  EXPECT_EQ(t.Lca(7, 8), 3);
  EXPECT_EQ(t.Lca(7, 9), 1);
  EXPECT_EQ(t.Lca(7, 14), 0);
  EXPECT_EQ(t.Lca(3, 7), 3);   // ancestor case
  EXPECT_EQ(t.Lca(5, 5), 5);   // reflexive
  EXPECT_EQ(t.Lca(0, 12), 0);  // root
}

TEST(TopologyTest, LcaSymmetry) {
  Rng rng(21);
  Tree t = MakeRandomTree(30, rng);
  for (NodeId u = 0; u < t.size(); u += 3) {
    for (NodeId v = 0; v < t.size(); v += 5) {
      EXPECT_EQ(t.Lca(u, v), t.Lca(v, u));
    }
  }
}

TEST(TopologyTest, RootedParentChain) {
  Tree t = MakePath(5);
  EXPECT_EQ(t.RootedParent(0), kInvalidNode);
  for (NodeId i = 1; i < 5; ++i) EXPECT_EQ(t.RootedParent(i), i - 1);
}

TEST(TopologyTest, DescribeMentionsSize) {
  Tree t = MakePath(7);
  EXPECT_NE(t.Describe().find("n=7"), std::string::npos);
}

TEST(TopologyTest, DeepPathDoesNotOverflowStack) {
  Tree t = MakePath(100000);
  EXPECT_EQ(t.Diameter(), 99999);
  EXPECT_EQ(t.UParent(0, 99999), 1);
  EXPECT_TRUE(t.InSubtree(0, 0, 1));
}

}  // namespace
}  // namespace treeagg
