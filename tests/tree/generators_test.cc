#include "tree/generators.h"

#include <gtest/gtest.h>

#include <tuple>

namespace treeagg {
namespace {

TEST(GeneratorsTest, PathShape) {
  Tree t = MakePath(10);
  EXPECT_EQ(t.Diameter(), 9);
  EXPECT_EQ(t.edges().size(), 9u);
}

TEST(GeneratorsTest, StarShape) {
  Tree t = MakeStar(10);
  EXPECT_EQ(t.Diameter(), 2);
  EXPECT_EQ(t.degree(0), 9);
}

TEST(GeneratorsTest, KaryChildCounts) {
  Tree t = MakeKary(13, 3);  // root with 3 children, each with 3 children
  EXPECT_EQ(t.degree(0), 3);
  EXPECT_EQ(t.degree(1), 4);  // parent + 3 children
  EXPECT_EQ(t.degree(12), 1);
}

TEST(GeneratorsTest, KaryDegreeBound) {
  Tree t = MakeKary(100, 4);
  for (NodeId u = 0; u < t.size(); ++u) {
    EXPECT_LE(t.degree(u), 5);  // k children + 1 parent
  }
}

TEST(GeneratorsTest, CaterpillarSize) {
  Tree t = MakeCaterpillar(5, 3);
  EXPECT_EQ(t.size(), 20);
  EXPECT_EQ(t.Diameter(), 6);  // leg - spine(4 edges) - leg
}

TEST(GeneratorsTest, BroomShape) {
  Tree t = MakeBroom(4, 6);
  EXPECT_EQ(t.size(), 10);
  EXPECT_EQ(t.degree(3), 7);  // end of handle + bristles
  EXPECT_EQ(t.Diameter(), 4);
}

TEST(GeneratorsTest, RandomTreeIsDeterministicPerSeed) {
  Rng rng1(42), rng2(42), rng3(43);
  Tree a = MakeRandomTree(50, rng1);
  Tree b = MakeRandomTree(50, rng2);
  Tree c = MakeRandomTree(50, rng3);
  EXPECT_EQ(a.edges().size(), b.edges().size());
  bool identical_ab = true, identical_ac = true;
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    identical_ab &= a.edges()[i] == b.edges()[i];
    identical_ac &= a.edges()[i] == c.edges()[i];
  }
  EXPECT_TRUE(identical_ab);
  EXPECT_FALSE(identical_ac);
}

TEST(GeneratorsTest, PreferentialTreeHasHub) {
  Rng rng(1);
  Tree t = MakePreferentialTree(200, rng);
  NodeId max_deg = 0;
  for (NodeId u = 0; u < t.size(); ++u) max_deg = std::max(max_deg, t.degree(u));
  EXPECT_GE(max_deg, 5);  // preferential attachment grows hubs
}

TEST(GeneratorsTest, AllShapesProduceRequestedSize) {
  for (const std::string& shape : AllShapeNames()) {
    if (shape == "caterpillar") continue;  // size is rounded by construction
    Tree t = MakeShape(shape, 32, 9);
    EXPECT_EQ(t.size(), 32) << shape;
  }
}

TEST(GeneratorsTest, UnknownShapeThrows) {
  EXPECT_THROW(MakeShape("torus", 8, 1), std::invalid_argument);
}

TEST(GeneratorsTest, KaryRequiresPositiveK) {
  EXPECT_THROW(MakeKary(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace treeagg
