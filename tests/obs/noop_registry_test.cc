// The zero-cost claim, tested the way it is meant to be used: one generic
// driver templated over the registry type compiles and runs against BOTH
// MetricsRegistry and NoopRegistry. If the no-op mirrors ever drift from
// the real API, this file stops compiling; if they ever grow state, the
// static_asserts below (and in noop.h) fire.
#include <cstdint>
#include <string>
#include <type_traits>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/noop.h"

namespace treeagg::obs {
namespace {

// Exercises the full registration + mutation surface through whichever
// registry type it is instantiated with. Returns the counter family sum so
// callers can check each flavor's semantics.
template <typename Registry>
std::uint64_t ExerciseRegistry(Registry& reg) {
  auto* counter = reg.AddCounter("exerciser_total", "Events.",
                                 {{"kind", "unit"}});
  counter->Inc();
  counter->Add(9);

  auto* gauge = reg.AddGauge("exerciser_depth", "Depth.");
  gauge->Set(4);
  gauge->Add(-1);
  gauge->MaxTo(100);
  (void)gauge->Value();

  auto* hist = reg.AddHistogram("exerciser_ms", "Latency.", {1.0, 10.0});
  hist->Observe(0.5);
  hist->Observe(50.0);
  (void)hist->Snapshot();

  (void)reg.RenderPrometheus();
  return reg.SumCounters("exerciser_total");
}

TEST(NoopRegistryTest, SameDriverRunsAgainstBothRegistries) {
  MetricsRegistry real;
  EXPECT_EQ(ExerciseRegistry(real), 10u);

  NoopRegistry noop;
  EXPECT_EQ(ExerciseRegistry(noop), 0u);
  EXPECT_EQ(noop.RenderPrometheus(), "");
}

TEST(NoopRegistryTest, NoopTypesCarryNoState) {
  // Restated here so a regression fails a *test*, not just some dependent
  // translation unit's build.
  static_assert(std::is_empty_v<NoopCounter>);
  static_assert(std::is_empty_v<NoopGauge>);
  static_assert(std::is_empty_v<NoopHistogram>);
  static_assert(std::is_empty_v<NoopRegistry>);
  static_assert(std::is_trivially_destructible_v<NoopRegistry>);
  // Mutators are callable on a const-free shared instance and return
  // nothing observable.
  NoopCounter c;
  c.Inc();
  c.Add(1000);
  EXPECT_EQ(NoopCounter::Value(), 0u);
  NoopGauge g;
  g.Set(7);
  g.MaxTo(9);
  EXPECT_EQ(NoopGauge::Value(), 0);
  NoopHistogram h;
  h.Observe(3.0);
  EXPECT_EQ(NoopHistogram::Snapshot().count, 0u);
}

// The runtime off-switch used on the hot paths: a null bundle pointer.
// Guard-then-deref must be the only cost; this pins the convention.
TEST(NoopRegistryTest, NullBundleIsTheRuntimeOffSwitch) {
  const ProtocolMetrics* metrics = nullptr;
  std::uint64_t sends = 0;
  for (int i = 0; i < 4; ++i) {
    if (metrics != nullptr) [[unlikely]] {
      metrics->sent[i % kMsgKinds]->Inc();
    }
    ++sends;  // the real work happens regardless
  }
  EXPECT_EQ(sends, 4u);

  MetricsRegistry reg;
  const ProtocolMetrics enabled = ProtocolMetrics::Register(reg);
  metrics = &enabled;
  for (int i = 0; i < 4; ++i) {
    if (metrics != nullptr) [[unlikely]] {
      metrics->sent[i % kMsgKinds]->Inc();
    }
  }
  EXPECT_EQ(reg.SumCounters("treeagg_node_messages_sent_total"), 4u);
}

}  // namespace
}  // namespace treeagg::obs
