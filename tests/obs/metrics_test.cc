// Unit tests for the lock-free metrics primitives, the registry, and the
// Prometheus text renderer — including the multi-thread exactness checks
// the TSan job runs (relaxed ordering must still lose no increments).
#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace treeagg::obs {
namespace {

TEST(CounterTest, IncAndAddAccumulate) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc();
  c.Add(40);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddAndValue) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);  // signed: paired +1/-1 cannot wrap
}

TEST(GaugeTest, MaxToOnlyRaises) {
  Gauge g;
  g.MaxTo(5);
  EXPECT_EQ(g.Value(), 5);
  g.MaxTo(3);
  EXPECT_EQ(g.Value(), 5);
  g.MaxTo(9);
  EXPECT_EQ(g.Value(), 9);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (boundary is inclusive: le semantics)
  h.Observe(5.0);    // bucket 1
  h.Observe(50.0);   // bucket 2
  h.Observe(500.0);  // +Inf bucket
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 5.0 + 50.0 + 500.0);
}

TEST(HistogramTest, QuantileInterpolatesAndClampsAtInfinity) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Observe(5.0);   // first bucket
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // second bucket
  const HistogramSnapshot snap = h.Snapshot();
  // Median sits at the first bucket's upper bound.
  EXPECT_GT(snap.Quantile(0.5), 0.0);
  EXPECT_LE(snap.Quantile(0.5), 10.0);
  EXPECT_GT(snap.Quantile(0.9), 10.0);
  EXPECT_LE(snap.Quantile(0.9), 20.0);
  // Quantiles never decrease in q.
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.9));
  EXPECT_LE(snap.Quantile(0.9), snap.Quantile(0.99));

  // A value past the last bound lands in +Inf; the estimate clamps to the
  // bucket's lower bound instead of inventing an upper one.
  Histogram tail({1.0});
  tail.Observe(100.0);
  EXPECT_DOUBLE_EQ(tail.Snapshot().Quantile(0.99), 1.0);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBoundsMs();
  ASSERT_GE(bounds.size(), 4u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// The TSan-job exactness check: N threads hammer one histogram; relaxed
// atomics must still account for every observation, and the rendered
// bucket counts must sum to the total.
TEST(HistogramTest, ConcurrentObservationsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram h({1.0, 2.0, 4.0, 8.0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((t + i) % 10));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  // Every observed value is an integer, so the CAS-loop sum is exact.
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) expected_sum += (t + i) % 10;
  }
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Counter c;
  Gauge hwm;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &hwm, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Inc();
        hwm.MaxTo(t * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hwm.Value(), (kThreads - 1) * kPerThread + kPerThread - 1);
}

TEST(MetricsRegistryTest, SumCountersSpansLabelSets) {
  MetricsRegistry reg;
  Counter* a = reg.AddCounter("reqs_total", "Requests.", {{"kind", "read"}});
  Counter* b = reg.AddCounter("reqs_total", "Requests.", {{"kind", "write"}});
  Counter* other = reg.AddCounter("other_total", "Other.");
  a->Add(3);
  b->Add(4);
  other->Add(100);
  EXPECT_EQ(reg.SumCounters("reqs_total"), 7u);
  EXPECT_EQ(reg.SumCounters("other_total"), 100u);
  EXPECT_EQ(reg.SumCounters("missing_total"), 0u);
}

TEST(MetricsRegistryTest, PointersStayStableAcrossManyRegistrations) {
  MetricsRegistry reg;
  Counter* first = reg.AddCounter("c0", "h");
  first->Inc();
  for (int i = 1; i < 200; ++i) {
    reg.AddCounter("c" + std::to_string(i), "h");
  }
  // Deque storage: the early pointer must survive 199 more registrations.
  first->Inc();
  EXPECT_EQ(first->Value(), 2u);
  EXPECT_EQ(reg.SumCounters("c0"), 2u);
}

TEST(ProtocolMetricsTest, RegisterWiresEveryPointer) {
  MetricsRegistry reg;
  const ProtocolMetrics m =
      ProtocolMetrics::Register(reg, {{"backend", "test"}});
  for (int k = 0; k < kMsgKinds; ++k) {
    ASSERT_NE(m.sent[k], nullptr);
    ASSERT_NE(m.recv[k], nullptr);
    m.sent[k]->Inc();
  }
  ASSERT_NE(m.lease_grants, nullptr);
  ASSERT_NE(m.lease_revokes, nullptr);
  EXPECT_EQ(reg.SumCounters("treeagg_node_messages_sent_total"),
            static_cast<std::uint64_t>(kMsgKinds));
  EXPECT_EQ(reg.SumCounters("treeagg_node_messages_received_total"), 0u);
}

TEST(TransportMetricsTest, RegisterWiresEveryPointer) {
  MetricsRegistry reg;
  const TransportMetrics m = TransportMetrics::Register(reg);
  ASSERT_NE(m.bytes_sent, nullptr);
  ASSERT_NE(m.frames_sent, nullptr);
  ASSERT_NE(m.bytes_received, nullptr);
  ASSERT_NE(m.frames_received, nullptr);
  ASSERT_NE(m.reconnects, nullptr);
  ASSERT_NE(m.backpressure_stalls, nullptr);
  m.bytes_sent->Add(64);
  EXPECT_EQ(reg.SumCounters("treeagg_transport_bytes_sent_total"), 64u);
}

// --- Prometheus exposition format ---------------------------------------

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(RenderPrometheusTest, CounterAndGaugeLines) {
  MetricsRegistry reg;
  reg.AddCounter("hits_total", "Cache hits.", {{"tier", "l1"}})->Add(5);
  reg.AddGauge("depth", "Queue depth.")->Set(-2);
  const std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# HELP hits_total Cache hits.\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE hits_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("hits_total{tier=\"l1\"} 5\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("depth -2\n"), std::string::npos);
}

// Samples of one family must form a single contiguous run under one
// HELP/TYPE header, even though ProtocolMetrics::Register interleaves
// registration of sent/received entries.
TEST(RenderPrometheusTest, FamiliesAreContiguousWithOneHeaderEach) {
  MetricsRegistry reg;
  ProtocolMetrics::Register(reg, {{"daemon", "0"}});
  ProtocolMetrics::Register(reg, {{"daemon", "1"}});
  const std::string out = reg.RenderPrometheus();
  std::vector<std::string> family_of_line;  // family name per sample line
  int sent_headers = 0;
  for (const std::string& line : Lines(out)) {
    if (line.rfind("# TYPE treeagg_node_messages_sent_total", 0) == 0) {
      ++sent_headers;
    }
    if (line.empty() || line[0] == '#') continue;
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    family_of_line.push_back(
        line.substr(0, std::min(brace, space)));
  }
  EXPECT_EQ(sent_headers, 1);
  // No family may appear, stop, and appear again.
  std::vector<std::string> runs;
  for (const std::string& f : family_of_line) {
    if (runs.empty() || runs.back() != f) runs.push_back(f);
  }
  std::vector<std::string> sorted_runs = runs;
  std::sort(sorted_runs.begin(), sorted_runs.end());
  EXPECT_TRUE(std::adjacent_find(sorted_runs.begin(), sorted_runs.end()) ==
              sorted_runs.end())
      << "a metric family was rendered in two separate runs";
  // Both daemons' samples are present.
  EXPECT_NE(out.find("daemon=\"0\""), std::string::npos);
  EXPECT_NE(out.find("daemon=\"1\""), std::string::npos);
}

TEST(RenderPrometheusTest, HistogramBucketsAreCumulativeAndConsistent) {
  MetricsRegistry reg;
  Histogram* h = reg.AddHistogram("lat_ms", "Latency.", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(5.0);
  h->Observe(100.0);
  const std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# TYPE lat_ms histogram\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_count 4\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ms_sum 110.5\n"), std::string::npos);
}

TEST(RenderPrometheusTest, EscapesHelpTextAndLabelValues) {
  MetricsRegistry reg;
  reg.AddCounter("esc_total", "line one\nline \"two\" \\ backslash",
                 {{"path", "a\"b\\c\nd"}});
  const std::string out = reg.RenderPrometheus();
  // HELP: \n and backslash escaped, quotes left alone.
  EXPECT_NE(out.find("# HELP esc_total line one\\nline \"two\" \\\\ backslash"),
            std::string::npos);
  // Label values additionally escape the quote.
  EXPECT_NE(out.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(RenderPrometheusTest, ScrapeWhileRecordingIsCoherent) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("spin_total", "Spins.");
  Histogram* h = reg.AddHistogram("spin_ms", "Spin time.", {1.0, 8.0});
  std::thread writer([&] {
    for (int i = 0; i < 50000; ++i) {
      c->Inc();
      h->Observe(static_cast<double>(i % 16));
    }
  });
  for (int i = 0; i < 20; ++i) {
    const std::string out = reg.RenderPrometheus();
    EXPECT_NE(out.find("spin_total"), std::string::npos);
  }
  writer.join();
  EXPECT_EQ(reg.SumCounters("spin_total"), 50000u);
}

}  // namespace
}  // namespace treeagg::obs
