#include "fault/schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace treeagg {
namespace {

TEST(FaultScheduleTest, BuilderRecordsEvents) {
  FaultSchedule s;
  s.WithSeed(7)
      .Drop(0.1, 10, 20)
      .Delay(2, 5, 0, 100)
      .Cut(1, 3, 30, 40)
      .Crash(2, 50, 80);
  EXPECT_EQ(s.seed(), 7u);
  ASSERT_EQ(s.events().size(), 4u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kDrop);
  EXPECT_EQ(s.events()[3].kind, FaultKind::kCrash);
  EXPECT_EQ(s.HealTime(), 100);
}

TEST(FaultScheduleTest, PointQueries) {
  FaultSchedule s;
  s.Crash(2, 50, 80).Cut(1, 3, 30, 40);
  EXPECT_FALSE(s.CrashedAt(2, 49));
  EXPECT_TRUE(s.CrashedAt(2, 50));
  EXPECT_TRUE(s.CrashedAt(2, 79));
  EXPECT_FALSE(s.CrashedAt(2, 80));  // [begin, end)
  EXPECT_FALSE(s.CrashedAt(1, 60));
  EXPECT_EQ(s.CrashEnd(2, 60), 80);
  EXPECT_EQ(s.CrashEnd(2, 90), 90);  // not crashed: identity

  EXPECT_TRUE(s.EdgeCutAt(1, 3, 35));
  EXPECT_TRUE(s.EdgeCutAt(3, 1, 35));  // undirected
  EXPECT_FALSE(s.EdgeCutAt(1, 3, 40));
  EXPECT_FALSE(s.EdgeCutAt(1, 2, 35));
  EXPECT_EQ(s.CutEnd(3, 1, 35), 40);

  EXPECT_TRUE(s.HasCrashes());
  EXPECT_FALSE(s.HasFifoViolations());
  FaultSchedule r;
  r.Reorder(0.5, 0, 10);
  EXPECT_TRUE(r.HasFifoViolations());
}

TEST(FaultScheduleTest, WindowsMergeOverlaps) {
  FaultSchedule s;
  s.Drop(0.1, 10, 30).Crash(1, 20, 50).Cut(0, 1, 70, 90);
  const auto w = s.Windows();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], (std::pair<std::int64_t, std::int64_t>{10, 50}));
  EXPECT_EQ(w[1], (std::pair<std::int64_t, std::int64_t>{70, 90}));
}

TEST(FaultScheduleTest, ParseRoundTripsThroughToSpec) {
  const FaultSchedule s = FaultSchedule::Parse(
      "seed=42; drop(0.05)@50..400; delay(1..10)@0..500; dup(0.2)@5..6; "
      "reorder(0.1)@7..9; cut(0-3)@100..300; crash(2)@150..350");
  EXPECT_EQ(s.seed(), 42u);
  EXPECT_EQ(s.events().size(), 6u);
  const FaultSchedule round = FaultSchedule::Parse(s.ToSpec());
  EXPECT_EQ(round, s);
}

TEST(FaultScheduleTest, ParseRejectsMalformedClauses) {
  EXPECT_THROW(FaultSchedule::Parse("drop(1.5)@0..10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("drop(0.1)@10..5"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("frob(1)@0..10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("crash(-2)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("cut(1-1)@0..10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("crash(1)@0..10trailing"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("seed=-1"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("crash(1)"), std::invalid_argument);
}

TEST(FaultScheduleTest, EmptySpecParsesToEmptySchedule) {
  const FaultSchedule s = FaultSchedule::Parse("");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.HealTime(), 0);
  EXPECT_TRUE(s.Windows().empty());
}

TEST(FaultScheduleTest, NamedPresetsExistAndFallBackToParse) {
  for (const char* name : {"drops", "partition", "crash", "chaos"}) {
    const FaultSchedule s = FaultSchedule::Named(name);
    EXPECT_FALSE(s.empty()) << name;
  }
  // An arbitrary spec is accepted where a preset name is.
  const FaultSchedule s = FaultSchedule::Named("crash(1)@5..9");
  ASSERT_EQ(s.events().size(), 1u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kCrash);
}

}  // namespace
}  // namespace treeagg
