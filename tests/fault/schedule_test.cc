#include "fault/schedule.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"

namespace treeagg {
namespace {

TEST(FaultScheduleTest, BuilderRecordsEvents) {
  FaultSchedule s;
  s.WithSeed(7)
      .Drop(0.1, 10, 20)
      .Delay(2, 5, 0, 100)
      .Cut(1, 3, 30, 40)
      .Crash(2, 50, 80);
  EXPECT_EQ(s.seed(), 7u);
  ASSERT_EQ(s.events().size(), 4u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kDrop);
  EXPECT_EQ(s.events()[3].kind, FaultKind::kCrash);
  EXPECT_EQ(s.HealTime(), 100);
}

TEST(FaultScheduleTest, PointQueries) {
  FaultSchedule s;
  s.Crash(2, 50, 80).Cut(1, 3, 30, 40);
  EXPECT_FALSE(s.CrashedAt(2, 49));
  EXPECT_TRUE(s.CrashedAt(2, 50));
  EXPECT_TRUE(s.CrashedAt(2, 79));
  EXPECT_FALSE(s.CrashedAt(2, 80));  // [begin, end)
  EXPECT_FALSE(s.CrashedAt(1, 60));
  EXPECT_EQ(s.CrashEnd(2, 60), 80);
  EXPECT_EQ(s.CrashEnd(2, 90), 90);  // not crashed: identity

  EXPECT_TRUE(s.EdgeCutAt(1, 3, 35));
  EXPECT_TRUE(s.EdgeCutAt(3, 1, 35));  // undirected
  EXPECT_FALSE(s.EdgeCutAt(1, 3, 40));
  EXPECT_FALSE(s.EdgeCutAt(1, 2, 35));
  EXPECT_EQ(s.CutEnd(3, 1, 35), 40);

  EXPECT_TRUE(s.HasCrashes());
  EXPECT_FALSE(s.HasFifoViolations());
  FaultSchedule r;
  r.Reorder(0.5, 0, 10);
  EXPECT_TRUE(r.HasFifoViolations());
}

TEST(FaultScheduleTest, WindowsMergeOverlaps) {
  FaultSchedule s;
  s.Drop(0.1, 10, 30).Crash(1, 20, 50).Cut(0, 1, 70, 90);
  const auto w = s.Windows();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], (std::pair<std::int64_t, std::int64_t>{10, 50}));
  EXPECT_EQ(w[1], (std::pair<std::int64_t, std::int64_t>{70, 90}));
}

TEST(FaultScheduleTest, ParseRoundTripsThroughToSpec) {
  const FaultSchedule s = FaultSchedule::Parse(
      "seed=42; drop(0.05)@50..400; delay(1..10)@0..500; dup(0.2)@5..6; "
      "reorder(0.1)@7..9; cut(0-3)@100..300; crash(2)@150..350");
  EXPECT_EQ(s.seed(), 42u);
  EXPECT_EQ(s.events().size(), 6u);
  const FaultSchedule round = FaultSchedule::Parse(s.ToSpec());
  EXPECT_EQ(round, s);
}

TEST(FaultScheduleTest, ParseRejectsMalformedClauses) {
  EXPECT_THROW(FaultSchedule::Parse("drop(1.5)@0..10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("drop(0.1)@10..5"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("frob(1)@0..10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("crash(-2)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("cut(1-1)@0..10"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("crash(1)@0..10trailing"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("seed=-1"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("crash(1)"), std::invalid_argument);
}

TEST(FaultScheduleTest, EmptySpecParsesToEmptySchedule) {
  const FaultSchedule s = FaultSchedule::Parse("");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.HealTime(), 0);
  EXPECT_TRUE(s.Windows().empty());
}

TEST(FaultScheduleTest, NamedPresetsExistAndFallBackToParse) {
  for (const char* name : {"drops", "partition", "crash", "chaos"}) {
    const FaultSchedule s = FaultSchedule::Named(name);
    EXPECT_FALSE(s.empty()) << name;
  }
  // An arbitrary spec is accepted where a preset name is.
  const FaultSchedule s = FaultSchedule::Named("crash(1)@5..9");
  ASSERT_EQ(s.events().size(), 1u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kCrash);
}

// --- second-generation vocabulary ---------------------------------------

TEST(FaultScheduleV2Test, CrashGroupCrashesEveryMember) {
  FaultSchedule s;
  s.CrashGroup({1, 4, 7}, 50, 80);
  EXPECT_TRUE(s.HasCrashes());
  for (const NodeId u : {1, 4, 7}) {
    EXPECT_FALSE(s.CrashedAt(u, 49)) << u;
    EXPECT_TRUE(s.CrashedAt(u, 50)) << u;
    EXPECT_TRUE(s.CrashedAt(u, 79)) << u;
    EXPECT_FALSE(s.CrashedAt(u, 80)) << u;  // [begin, end)
    EXPECT_EQ(s.CrashEnd(u, 60), 80) << u;
  }
  EXPECT_FALSE(s.CrashedAt(2, 60));
  EXPECT_EQ(s.CrashEnd(2, 60), 60);  // non-member: identity
}

TEST(FaultScheduleV2Test, SeverIsDirectional) {
  FaultSchedule s;
  s.Sever(1, 0, 100, 300);
  EXPECT_TRUE(s.SeveredAt(1, 0, 100));
  EXPECT_TRUE(s.SeveredAt(1, 0, 299));
  EXPECT_FALSE(s.SeveredAt(1, 0, 300));
  EXPECT_FALSE(s.SeveredAt(0, 1, 150));  // reverse direction stays live
  EXPECT_EQ(s.SeverEnd(1, 0, 150), 300);
  EXPECT_EQ(s.SeverEnd(0, 1, 150), 150);  // not severed: identity
  EXPECT_FALSE(s.HasCrashes());
  EXPECT_FALSE(s.HasFifoViolations());
}

TEST(FaultScheduleV2Test, GrayAndLatPointQueries) {
  FaultSchedule s;
  s.Gray(2, 5, 15, 100, 400).Lat(0, 1, 20, 60, 50, 350);
  const FaultEvent* gray = s.GrayAt(2, 200);
  ASSERT_NE(gray, nullptr);
  EXPECT_EQ(gray->delay_min, 5);
  EXPECT_EQ(gray->delay_max, 15);
  EXPECT_EQ(s.GrayAt(2, 400), nullptr);  // [begin, end)
  EXPECT_EQ(s.GrayAt(3, 200), nullptr);

  const FaultEvent* lat = s.EdgeLatAt(0, 1, 100);
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->delay_max, 60);
  EXPECT_NE(s.EdgeLatAt(1, 0, 100), nullptr);  // undirected
  EXPECT_EQ(s.EdgeLatAt(0, 2, 100), nullptr);
  EXPECT_EQ(s.MaxInjectedDelay(), 60);
}

TEST(FaultScheduleV2Test, NewKindsParseAndRoundTrip) {
  const FaultSchedule s = FaultSchedule::Parse(
      "seed=9; crashgroup(1,4,7)@50..80; sever(1->0)@100..300; "
      "gray(2:5..15)@100..400; lat(0-1:20..60)@50..350");
  ASSERT_EQ(s.events().size(), 4u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kCrashGroup);
  EXPECT_EQ(s.events()[0].group, (std::vector<NodeId>{1, 4, 7}));
  EXPECT_EQ(s.events()[1].kind, FaultKind::kSever);
  EXPECT_EQ(s.events()[2].kind, FaultKind::kGray);
  EXPECT_EQ(s.events()[3].kind, FaultKind::kLat);
  EXPECT_EQ(FaultSchedule::Parse(s.ToSpec()), s);
}

TEST(FaultScheduleV2Test, JitterSugarExpandsToWindow) {
  // B+-J is sugar for B-J..B+J; ToSpec emits the canonical form.
  const FaultSchedule s = FaultSchedule::Parse("lat(0-1:40+-15)@0..100");
  ASSERT_EQ(s.events().size(), 1u);
  EXPECT_EQ(s.events()[0].delay_min, 25);
  EXPECT_EQ(s.events()[0].delay_max, 55);
  EXPECT_NE(s.ToSpec().find("lat(0-1:25..55)"), std::string::npos);
  // Jitter wider than the base would go negative: rejected.
  EXPECT_THROW(FaultSchedule::Parse("lat(0-1:10+-11)@0..100"),
               std::invalid_argument);
}

TEST(FaultScheduleV2Test, RejectsMalformedNewClauses) {
  // crashgroup: empty, negative, duplicate members.
  EXPECT_THROW(FaultSchedule::Parse("crashgroup()@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("crashgroup(1,-2)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("crashgroup(1,1)@0..10"),
               std::invalid_argument);
  // sever: self-loop, negative endpoint, missing arrow.
  EXPECT_THROW(FaultSchedule::Parse("sever(1->1)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("sever(-1->0)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("sever(1-0)@0..10"),
               std::invalid_argument);
  // gray/lat: inverted or negative delay windows, bad separators.
  EXPECT_THROW(FaultSchedule::Parse("gray(2:15..5)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("gray(2:-3..5)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("gray(-2:1..5)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("lat(1-1:5..9)@0..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("lat(0-1:5)@0..10"),
               std::invalid_argument);
  // negative times are rejected for the new kinds too.
  EXPECT_THROW(FaultSchedule::Parse("gray(2:1..5)@-5..10"),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule::Parse("sever(1->0)@10..5"),
               std::invalid_argument);
}

TEST(FaultScheduleV2Test, EveryPresetRoundTripsThroughToSpec) {
  const std::vector<std::string> names = FaultSchedule::PresetNames();
  ASSERT_GE(names.size(), 9u);
  for (const std::string& name : names) {
    const FaultSchedule s = FaultSchedule::Named(name);
    EXPECT_FALSE(s.empty()) << name;
    const FaultSchedule round = FaultSchedule::Parse(s.ToSpec());
    EXPECT_EQ(round, s) << name << ": " << s.ToSpec();
  }
}

// Property test: seeded random schedules built through the typed builders
// always survive ToSpec -> Parse bit-identically, so the spec grammar can
// express everything the builders can.
TEST(FaultScheduleV2Test, RandomSchedulesRoundTripThroughSpec) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 77 + 13);
    FaultSchedule s;
    s.WithSeed(seed);
    const int clauses = 1 + static_cast<int>(rng.NextBounded(6));
    for (int c = 0; c < clauses; ++c) {
      const std::int64_t b = static_cast<std::int64_t>(rng.NextBounded(200));
      const std::int64_t e = b + 1 + static_cast<std::int64_t>(
                                         rng.NextBounded(100));
      const std::int64_t dmin = static_cast<std::int64_t>(rng.NextBounded(20));
      const std::int64_t dmax =
          dmin + static_cast<std::int64_t>(rng.NextBounded(30));
      const NodeId u = static_cast<NodeId>(rng.NextBounded(12));
      const NodeId v = static_cast<NodeId>(12 + rng.NextBounded(12));
      switch (rng.NextBounded(8)) {
        case 0: s.Drop(0.01 * static_cast<double>(1 + rng.NextBounded(99)),
                       b, e);
          break;
        case 1: s.Delay(dmin, dmax, b, e); break;
        case 2: s.Cut(u, v, b, e); break;
        case 3: s.Crash(u, b, e); break;
        case 4: s.CrashGroup({u, v}, b, e); break;
        case 5: s.Sever(u, v, b, e); break;
        case 6: s.Gray(u, dmin, dmax, b, e); break;
        default: s.Lat(u, v, dmin, dmax, b, e); break;
      }
    }
    const FaultSchedule round = FaultSchedule::Parse(s.ToSpec());
    EXPECT_EQ(round, s) << "seed " << seed << ": " << s.ToSpec();
  }
}

}  // namespace
}  // namespace treeagg
