#include "fault/convergence.h"

#include <gtest/gtest.h>

#include "consistency/strict_checker.h"
#include "core/aggregate_op.h"

namespace treeagg {
namespace {

using Window = std::pair<std::int64_t, std::int64_t>;

TEST(ConvergenceTest, GroundTruthFoldsLastWritePerNode) {
  History h;
  ReqId a = h.BeginWrite(0, 5, 0);
  h.CompleteWrite(a, 1);
  ReqId b = h.BeginWrite(0, 7, 2);  // supersedes a
  h.CompleteWrite(b, 3);
  ReqId c = h.BeginWrite(2, 11, 4);
  h.CompleteWrite(c, 5);
  // Node 1 never written: contributes identity.
  EXPECT_EQ(GroundTruth(h, SumOp(), 3), 18);
  EXPECT_EQ(GroundTruth(h, MinOp(), 3), 7);
  EXPECT_EQ(GroundTruth(History{}, SumOp(), 3), 0);
}

TEST(ConvergenceTest, FilterDropsCombinesOverlappingWindows) {
  History h;
  ReqId w0 = h.BeginWrite(0, 5, 0);
  h.CompleteWrite(w0, 1);
  ReqId c_in = h.BeginCombine(1, 10);  // lifetime [10, 30] overlaps [20, 40)
  ReqId c_out = h.BeginCombine(1, 50);
  h.CompleteCombine(c_in, 5, {{0, w0}}, 1, 30);
  h.CompleteCombine(c_out, 5, {{0, w0}}, 1, 60);
  ReqId w1 = h.BeginWrite(0, 9, 25);  // write DURING the window: kept
  h.CompleteWrite(w1, 26);

  std::size_t dropped = 0;
  const History f =
      FilterHistoryOutsideWindows(h, {Window{20, 40}}, &dropped);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(f.size(), 3u);  // two writes + the outside combine
  int writes = 0, combines = 0;
  for (const RequestRecord& r : f.records()) {
    if (r.op == ReqType::kWrite) {
      ++writes;
    } else {
      ++combines;
      // The gather was remapped to the filtered history's id space and
      // still points at node 0's first write.
      ASSERT_EQ(r.gather.size(), 1u);
      EXPECT_EQ(f.record(r.gather[0].second).arg, 5);
    }
  }
  EXPECT_EQ(writes, 2);
  EXPECT_EQ(combines, 1);
  EXPECT_TRUE(f.AllCompleted());
}

TEST(ConvergenceTest, FilterDropsIncompleteCombines) {
  History h;
  h.BeginCombine(0, 5);  // never completes (e.g. run aborted mid-fault)
  std::size_t dropped = 0;
  const History f = FilterHistoryOutsideWindows(h, {}, &dropped);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(f.size(), 0u);
}

TEST(ConvergenceTest, ReportsDivergentFinalProbe) {
  History h;
  ReqId w = h.BeginWrite(0, 5, 0);
  h.CompleteWrite(w, 1);
  ReqId good = h.BeginCombine(0, 2);
  h.CompleteCombine(good, 5, {}, 0, 3);
  ReqId bad = h.BeginCombine(1, 4);
  h.CompleteCombine(bad, 17, {}, 0, 5);  // wrong aggregate

  ConvergenceOptions opts;
  opts.check_causal = false;  // no ghost logs in this synthetic history
  const ConvergenceReport r =
      CheckConvergence(h, {}, SumOp(), 2, {good, bad}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.all_completed);
  EXPECT_EQ(r.ground_truth, 5);
  EXPECT_EQ(r.final_probes, 2u);
  EXPECT_EQ(r.divergent_probes, 1u);
  EXPECT_NE(r.message.find("convergence"), std::string::npos);
}

TEST(ConvergenceTest, ReportsLivenessFailure) {
  History h;
  h.BeginCombine(0, 0);  // stuck
  ConvergenceOptions opts;
  opts.check_causal = false;
  const ConvergenceReport r = CheckConvergence(h, {}, SumOp(), 1, {}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.all_completed);
  EXPECT_NE(r.message.find("liveness"), std::string::npos);
}

TEST(ConvergenceTest, FullCausalFailureCanBeDemotedWhenWindowed) {
  // A combine re-executed across a crash (re-injection is at-least-once):
  // its recorded retval comes from one execution and its gather set from
  // the other, so the full-history causal check must fail. The combine
  // lived inside a fault window, so the outside-window restriction stays
  // clean, and require_full_causal=false turns the verdict around while
  // still reporting causal_ok=false.
  History h;
  ReqId w = h.BeginWrite(0, 5, 0);
  h.CompleteWrite(w, 1);
  ReqId dup = h.BeginCombine(1, 10);
  h.CompleteCombine(dup, 3, {{0, w}}, /*log_prefix=*/1, 20);  // implies 5
  ReqId probe = h.BeginCombine(1, 50);
  h.CompleteCombine(probe, 5, {{0, w}}, /*log_prefix=*/1, 60);

  std::vector<NodeGhostState> ghosts(2);
  ghosts[0].node = 0;
  ghosts[0].write_log = {{w, 0}};
  ghosts[1].node = 1;
  ghosts[1].write_log = {{w, 0}};  // w arrived at node 1 before the combines

  ConvergenceOptions opts;
  opts.fault_windows = {Window{5, 30}};
  const ConvergenceReport strict_r =
      CheckConvergence(h, ghosts, SumOp(), 2, {probe}, opts);
  EXPECT_FALSE(strict_r.ok);
  EXPECT_FALSE(strict_r.causal_ok);
  EXPECT_TRUE(strict_r.outside_ok) << strict_r.message;

  opts.require_full_causal = false;
  const ConvergenceReport relaxed =
      CheckConvergence(h, ghosts, SumOp(), 2, {probe}, opts);
  EXPECT_TRUE(relaxed.ok) << relaxed.message;
  EXPECT_FALSE(relaxed.causal_ok);  // still computed and reported
  EXPECT_EQ(relaxed.excluded_combines, 1u);
  EXPECT_TRUE(relaxed.message.empty());
}

TEST(ConvergenceTest, CleanSyntheticHistoryPasses) {
  History h;
  ReqId w = h.BeginWrite(0, 3, 0);
  h.CompleteWrite(w, 1);
  ReqId c = h.BeginCombine(1, 2);
  h.CompleteCombine(c, 3, {}, 0, 3);
  ConvergenceOptions opts;
  opts.check_causal = false;
  const ConvergenceReport r = CheckConvergence(h, {}, SumOp(), 2, {c}, opts);
  EXPECT_TRUE(r.ok) << r.message;
  // Sanity: the same history is also strictly consistent.
  EXPECT_TRUE(CheckStrictConsistency(h, SumOp(), 2).ok);
}

}  // namespace
}  // namespace treeagg
