// Tests of the static baseline policies from the paper's motivation:
// push-all (Astrolabe-like) and pull-all (MDS-2-like).
#include <gtest/gtest.h>

#include "consistency/strict_checker.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(PullAllTest, NeverGrantsLeases) {
  Tree t = MakeKary(7, 2);
  AggregationSystem sys(t, PullAllFactory());
  sys.Execute(MakeWorkload("mixed50", t, 200, 1));
  for (NodeId u = 0; u < t.size(); ++u) {
    for (const NodeId v : t.neighbors(u)) {
      EXPECT_FALSE(sys.node(u).granted(v));
      EXPECT_FALSE(sys.node(u).taken(v));
    }
  }
}

TEST(PullAllTest, EveryCombineFloodsTheTree) {
  Tree t = MakeStar(8);  // 7 leaves
  AggregationSystem sys(t, PullAllFactory());
  sys.Combine(0);  // hub probes 7 leaves
  EXPECT_EQ(sys.trace().TotalMessages(), 14);
  sys.Combine(0);  // no caching: same again
  EXPECT_EQ(sys.trace().TotalMessages(), 28);
}

TEST(PullAllTest, WritesAreFree) {
  Tree t = MakePath(6);
  AggregationSystem sys(t, PullAllFactory());
  for (int i = 0; i < 10; ++i) sys.Write(3, i);
  EXPECT_EQ(sys.trace().TotalMessages(), 0);
}

TEST(PullAllTest, StillStrictlyConsistent) {
  Tree t = MakeKary(10, 3);
  AggregationSystem sys(t, PullAllFactory());
  sys.Execute(MakeWorkload("mixed50", t, 300, 2));
  EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok);
}

TEST(PushAllTest, LeasesNeverBreakOnceSet) {
  Tree t = MakePath(4);
  AggregationSystem sys(t, PushAllFactory());
  // Warm up: one combine per node sets all leases in both directions.
  for (NodeId u = 0; u < t.size(); ++u) sys.Combine(u);
  for (const Edge& e : t.OrderedEdges()) {
    EXPECT_TRUE(sys.node(e.u).granted(e.v))
        << "(" << e.u << "," << e.v << ")";
  }
  // Heavy writes: every lease survives.
  for (int i = 0; i < 20; ++i) sys.Write(0, i);
  for (const Edge& e : t.OrderedEdges()) {
    EXPECT_TRUE(sys.node(e.u).granted(e.v));
  }
}

TEST(PushAllTest, AfterWarmupReadsAreFreeWritesFlood) {
  Tree t = MakeKary(15, 2);
  AggregationSystem sys(t, PushAllFactory());
  for (NodeId u = 0; u < t.size(); ++u) sys.Combine(u);
  const std::int64_t warmup = sys.trace().TotalMessages();
  // Reads are local.
  for (NodeId u = 0; u < t.size(); ++u) sys.Combine(u);
  EXPECT_EQ(sys.trace().TotalMessages(), warmup);
  // Each write floods the whole tree: n - 1 updates.
  sys.Write(7, 1.0);
  EXPECT_EQ(sys.trace().TotalMessages(), warmup + 14);
}

TEST(PushAllTest, StillStrictlyConsistent) {
  Tree t = MakePath(8);
  AggregationSystem sys(t, PushAllFactory());
  sys.Execute(MakeWorkload("mixed25", t, 300, 3));
  EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok);
}

TEST(StaticPoliciesTest, CrossoverMatchesMotivation) {
  // Section 1: push-all wins on read-heavy workloads, pull-all wins on
  // write-heavy ones; neither wins both. RWW is never the worst.
  Tree t = MakeKary(31, 2);
  const auto cost = [&](const PolicyFactory& f, const RequestSequence& s) {
    AggregationSystem sys(t, f);
    sys.Execute(s);
    return sys.trace().TotalMessages();
  };
  const RequestSequence reads = MakeWorkload("readheavy", t, 600, 4);
  const RequestSequence writes = MakeWorkload("writeheavy", t, 600, 4);
  const auto push_r = cost(PushAllFactory(), reads);
  const auto pull_r = cost(PullAllFactory(), reads);
  const auto push_w = cost(PushAllFactory(), writes);
  const auto pull_w = cost(PullAllFactory(), writes);
  EXPECT_LT(push_r, pull_r);
  EXPECT_LT(pull_w, push_w);
  const auto rww_r = cost(RwwFactory(), reads);
  const auto rww_w = cost(RwwFactory(), writes);
  EXPECT_LT(rww_r, pull_r);
  EXPECT_LT(rww_w, push_w);
}

}  // namespace
}  // namespace treeagg
