// Tests of RWW's policy behaviour: the (1,2) classification of Corollary
// 4.1, the lease-timer invariant I4 of Lemma 4.2, and Lemma 4.3's
// set-on-combine / break-after-two-writes characterization.
#include <gtest/gtest.h>

#include "core/policies.h"
#include "offline/edge_dp.h"
#include "offline/projection.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

// I4 (Lemma 4.2), restated for node u and neighbor v:
//   if !u.taken[v]: uaw[v] is empty;
//   else if u grants to nobody but v: lt[v] + |uaw[v]| == 2 and lt[v] > 0;
//   else: lt[v] == 2.
void ExpectI4(const AggregationSystem& sys) {
  const Tree& tree = sys.tree();
  for (NodeId u = 0; u < tree.size(); ++u) {
    const auto* policy = dynamic_cast<const RwwPolicy*>(&sys.node(u).policy());
    ASSERT_NE(policy, nullptr);
    for (const NodeId v : tree.neighbors(u)) {
      if (!sys.node(u).taken(v)) {
        EXPECT_TRUE(sys.node(u).uaw(v).empty())
            << "I4: node " << u << " has stale uaw[" << v << "]";
        continue;
      }
      const int lt = policy->lt(v);
      const int uaw = static_cast<int>(sys.node(u).UawSize(v));
      if (!sys.node(u).GrantedToOtherThan(v)) {
        EXPECT_EQ(lt + uaw, 2) << "I4 at node " << u << ", neighbor " << v;
        EXPECT_GT(lt, 0) << "I4 at node " << u << ", neighbor " << v;
      } else {
        EXPECT_EQ(lt, 2) << "I4 at node " << u << ", neighbor " << v;
      }
    }
  }
}

TEST(RwwPolicyTest, I4HoldsThroughScriptedScenario) {
  Tree t = MakeKary(7, 2);
  AggregationSystem sys(t, RwwFactory());
  const RequestSequence sigma = {
      Request::Combine(3), Request::Write(6, 1), Request::Write(6, 2),
      Request::Combine(0), Request::Write(0, 5), Request::Combine(6),
      Request::Write(3, 7), Request::Write(4, 2), Request::Combine(5),
      Request::Write(1, 1), Request::Write(2, 2), Request::Write(2, 3),
  };
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      sys.Combine(r.node);
    } else {
      sys.Write(r.node, r.arg);
    }
    ExpectI4(sys);
  }
}

TEST(RwwPolicyTest, I4HoldsOnRandomWorkloads) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Tree t = MakeShape("random", 12, seed);
    AggregationSystem sys(t, RwwFactory());
    const RequestSequence sigma = MakeWorkload("mixed50", t, 150, seed + 100);
    for (const Request& r : sigma) {
      if (r.op == ReqType::kCombine) {
        sys.Combine(r.node);
      } else {
        sys.Write(r.node, r.arg);
      }
      ExpectI4(sys);
    }
  }
}

TEST(RwwPolicyTest, LeaseSetAfterOneCombine) {
  // Corollary 4.1 condition (1) with a = 1.
  Tree t = MakePath(2);
  AggregationSystem sys(t, RwwFactory());
  EXPECT_FALSE(sys.node(1).granted(0));
  sys.Combine(0);
  EXPECT_TRUE(sys.node(1).granted(0));
}

TEST(RwwPolicyTest, LeaseBrokenAfterTwoConsecutiveWrites) {
  // Corollary 4.1 condition (2) with b = 2, on a longer chain.
  Tree t = MakePath(5);
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(4);
  EXPECT_TRUE(sys.node(0).granted(1));
  sys.Write(0, 1);
  EXPECT_TRUE(sys.node(0).granted(1));  // one write: lease survives
  sys.Write(0, 2);
  EXPECT_FALSE(sys.node(0).granted(1));  // two writes: broken everywhere
  for (NodeId u = 0; u + 1 < 5; ++u) {
    EXPECT_FALSE(sys.node(u).granted(u + 1));
  }
}

TEST(RwwPolicyTest, InterleavedWritesFromDifferentSidesDoNotConfuseTimers) {
  // Writes at both endpoints of a path: each direction's budget is tracked
  // independently (sigma(u, v) vs sigma(v, u)).
  Tree t = MakePath(3);
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(1);  // node 1 takes leases from both sides
  sys.Write(0, 1);
  sys.Write(2, 1);
  // One write per side: both leases survive.
  EXPECT_TRUE(sys.node(0).granted(1));
  EXPECT_TRUE(sys.node(2).granted(1));
  sys.Write(0, 2);
  EXPECT_FALSE(sys.node(0).granted(1));
  EXPECT_TRUE(sys.node(2).granted(1));
}

TEST(RwwPolicyTest, MeasuredEdgeCostMatchesAnalyticModel) {
  // Lemma 4.5 + Figure 2: the protocol's measured per-edge cost equals the
  // analytic RWW cost on the projected sequence.
  for (const std::uint64_t seed : {10ull, 20ull, 30ull}) {
    Tree t = MakeShape("kary2", 9, seed);
    const RequestSequence sigma = MakeWorkload("mixed50", t, 300, seed);
    AggregationSystem sys(t, RwwFactory());
    sys.Execute(sigma);
    for (const Edge& e : t.OrderedEdges()) {
      const EdgeSequence projected = ProjectSequence(sigma, t, e.u, e.v);
      EXPECT_EQ(sys.trace().EdgeCost(e.u, e.v).total(), RwwEdgeCost(projected))
          << "edge (" << e.u << "," << e.v << ") seed " << seed;
    }
  }
}

TEST(RwwPolicyTest, AbPolicy12BehavesLikeRww) {
  Tree t = MakePath(4);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 400, 5);
  AggregationSystem rww(t, RwwFactory());
  AggregationSystem ab(t, AbFactory(1, 2));
  rww.Execute(sigma);
  ab.Execute(sigma);
  EXPECT_EQ(rww.trace().TotalMessages(), ab.trace().TotalMessages());
}

TEST(RwwPolicyTest, Ab13BreaksAfterThreeWrites) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, AbFactory(1, 3));
  sys.Combine(0);
  sys.Write(1, 1);
  sys.Write(1, 2);
  EXPECT_TRUE(sys.node(1).granted(0));
  sys.Write(1, 3);
  EXPECT_FALSE(sys.node(1).granted(0));
}

TEST(RwwPolicyTest, Ab22NeedsTwoCombinesToSetLease) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, AbFactory(2, 2));
  sys.Combine(0);
  EXPECT_FALSE(sys.node(1).granted(0));
  sys.Combine(0);
  EXPECT_TRUE(sys.node(1).granted(0));
}

TEST(RwwPolicyTest, Ab22CombineRunInterruptedByWrite) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, AbFactory(2, 2));
  sys.Combine(0);
  sys.Write(1, 1);  // interrupts the combine run
  sys.Combine(0);
  EXPECT_FALSE(sys.node(1).granted(0));
  sys.Combine(0);
  EXPECT_TRUE(sys.node(1).granted(0));
}

}  // namespace
}  // namespace treeagg
