#include "core/aggregate_op.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace treeagg {
namespace {

TEST(AggregateOpTest, SumBasics) {
  const AggregateOp& op = SumOp();
  EXPECT_EQ(op.identity, 0.0);
  EXPECT_EQ(op(2.0, 3.0), 5.0);
  EXPECT_EQ(op(op.identity, 7.0), 7.0);
}

TEST(AggregateOpTest, MinIdentityIsAbsorbing) {
  const AggregateOp& op = MinOp();
  EXPECT_EQ(op(op.identity, -5.0), -5.0);
  EXPECT_EQ(op(3.0, 8.0), 3.0);
  EXPECT_TRUE(std::isinf(op.identity));
}

TEST(AggregateOpTest, MaxIdentityIsAbsorbing) {
  const AggregateOp& op = MaxOp();
  EXPECT_EQ(op(op.identity, -5.0), -5.0);
  EXPECT_EQ(op(3.0, 8.0), 8.0);
}

TEST(AggregateOpTest, BoolOr) {
  const AggregateOp& op = BoolOrOp();
  EXPECT_EQ(op(0.0, 0.0), 0.0);
  EXPECT_EQ(op(1.0, 0.0), 1.0);
  EXPECT_EQ(op(op.identity, 1.0), 1.0);
}

TEST(AggregateOpTest, LookupByName) {
  EXPECT_STREQ(OpByName("sum").name, "sum");
  EXPECT_STREQ(OpByName("min").name, "min");
  EXPECT_STREQ(OpByName("max").name, "max");
  EXPECT_STREQ(OpByName("or").name, "or");
  EXPECT_THROW(OpByName("median"), std::invalid_argument);
}

// Property: each built-in operator is commutative and associative with the
// declared identity, over a sample grid.
class OpLawsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OpLawsTest, CommutativeAssociativeWithIdentity) {
  const AggregateOp& op = OpByName(GetParam());
  const double samples[] = {-3.5, -1.0, 0.0, 0.5, 2.0, 9.25};
  for (const double a : samples) {
    EXPECT_EQ(op(a, op.identity), a);
    EXPECT_EQ(op(op.identity, a), a);
    for (const double b : samples) {
      EXPECT_EQ(op(a, b), op(b, a));
      for (const double c : samples) {
        EXPECT_EQ(op(op(a, b), c), op(a, op(b, c)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpLawsTest,
                         ::testing::Values("sum", "min", "max"));

// "or" is associative only over {0, 1}; test it on its own domain.
TEST(AggregateOpTest, BoolOrLawsOnBooleanDomain) {
  const AggregateOp& op = BoolOrOp();
  for (const double a : {0.0, 1.0}) {
    for (const double b : {0.0, 1.0}) {
      EXPECT_EQ(op(a, b), op(b, a));
      for (const double c : {0.0, 1.0}) {
        EXPECT_EQ(op(op(a, b), c), op(a, op(b, c)));
      }
    }
  }
}

}  // namespace
}  // namespace treeagg
