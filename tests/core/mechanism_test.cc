// Unit tests of the Figure 1 mechanism driven sequentially, checking the
// message-count lemmas (3.3, 3.5) and the value invariants on explicit
// small scenarios.
#include <gtest/gtest.h>

#include "core/policies.h"
#include "sim/system.h"
#include "test_util.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

TEST(MechanismTest, CombineOnFreshTwoNodeTreeCostsProbePlusResponse) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, RwwFactory());
  EXPECT_EQ(sys.Combine(0), 0.0);
  EXPECT_EQ(sys.trace().totals().probes, 1);
  EXPECT_EQ(sys.trace().totals().responses, 1);
  EXPECT_EQ(sys.trace().TotalMessages(), 2);
  // RWW sets the lease during the response (Lemma 4.3 part 1).
  EXPECT_TRUE(sys.node(1).granted(0));
  EXPECT_TRUE(sys.node(0).taken(1));
}

TEST(MechanismTest, SecondCombineAtSameNodeIsFree) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(0);
  const std::int64_t before = sys.trace().TotalMessages();
  sys.Combine(0);
  EXPECT_EQ(sys.trace().TotalMessages(), before);
}

TEST(MechanismTest, CombineReturnsSumOfWrites) {
  Tree t = MakePath(3);
  AggregationSystem sys(t, RwwFactory());
  sys.Write(0, 5.0);
  sys.Write(1, 7.0);
  sys.Write(2, 1.5);
  EXPECT_EQ(sys.Combine(1), 13.5);
  sys.Write(0, 2.0);  // overwrite
  EXPECT_EQ(sys.Combine(1), 10.5);
}

TEST(MechanismTest, WriteWithoutLeasesSendsNothing) {
  Tree t = MakeStar(5);
  AggregationSystem sys(t, RwwFactory());
  sys.Write(2, 9.0);
  sys.Write(0, 3.0);
  EXPECT_EQ(sys.trace().TotalMessages(), 0);
}

TEST(MechanismTest, WriteUnderLeaseSendsUpdatesAlongLeaseGraph) {
  Tree t = MakePath(3);  // 0-1-2
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(0);  // leases 2->1->0 set
  const std::int64_t before = sys.trace().TotalMessages();
  sys.Write(2, 4.0);
  // Lemma 3.5: one update per node reachable in G(Q) from the writer.
  EXPECT_EQ(sys.trace().totals().updates, 2);
  EXPECT_EQ(sys.trace().TotalMessages(), before + 2);
  EXPECT_EQ(sys.node(0).Gval(), 4.0);
}

TEST(MechanismTest, SecondConsecutiveWriteBreaksLeases) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(0);
  sys.Write(1, 1.0);  // update only
  EXPECT_TRUE(sys.node(1).granted(0));
  sys.Write(1, 2.0);  // update + release (RWW breaks after 2 writes)
  EXPECT_FALSE(sys.node(1).granted(0));
  EXPECT_FALSE(sys.node(0).taken(1));
  EXPECT_EQ(sys.trace().totals().updates, 2);
  EXPECT_EQ(sys.trace().totals().releases, 1);
  // A third write is then free.
  const std::int64_t before = sys.trace().TotalMessages();
  sys.Write(1, 3.0);
  EXPECT_EQ(sys.trace().TotalMessages(), before);
  // And the next combine still returns the correct value.
  EXPECT_EQ(sys.Combine(0), 3.0);
}

TEST(MechanismTest, CombineRefreshesWriteBudget) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(0);
  sys.Write(1, 1.0);
  sys.Combine(0);      // refresh: lease budget back to 2
  sys.Write(1, 2.0);   // 1st write after refresh: update only
  EXPECT_TRUE(sys.node(1).granted(0));
  sys.Write(1, 3.0);   // 2nd: update + release
  EXPECT_FALSE(sys.node(1).granted(0));
}

TEST(MechanismTest, ProbeCountMatchesLemma33OnStar) {
  Tree t = MakeStar(6);
  AggregationSystem sys(t, RwwFactory());
  // Combine at leaf 1: probes must reach hub and the other 4 leaves.
  sys.Combine(1);
  EXPECT_EQ(sys.trace().totals().probes, 5);
  EXPECT_EQ(sys.trace().totals().responses, 5);
}

TEST(MechanismTest, ProbeCountMatchesLemma33WithPartialLeases) {
  Tree t = MakePath(4);  // 0-1-2-3
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(3);  // sets leases 0->1->2->3
  sys.Write(0, 1.0);
  sys.Write(0, 2.0);  // breaks lease 0->1 only (release propagates from 1? no:
  // the double write breaks the whole chain 0->1, 1->2, 2->3 per Lemma 4.3)
  EXPECT_FALSE(sys.node(0).granted(1));
  // A fresh combine at 3 must re-probe the broken part of the chain.
  const std::int64_t probes_before = sys.trace().totals().probes;
  sys.Combine(3);
  EXPECT_GT(sys.trace().totals().probes, probes_before);
  EXPECT_EQ(sys.Combine(3), 2.0);
}

TEST(MechanismTest, MinOperatorAggregates) {
  Tree t = MakeKary(7, 2);
  AggregationSystem::Options options;
  options.op = &MinOp();
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Write(3, 5.0);
  sys.Write(6, -2.0);
  EXPECT_EQ(sys.Combine(0), -2.0);
  sys.Write(6, 9.0);
  EXPECT_EQ(sys.Combine(0), 5.0);
}

TEST(MechanismTest, MaxOperatorAggregates) {
  Tree t = MakePath(5);
  AggregationSystem::Options options;
  options.op = &MaxOp();
  AggregationSystem sys(t, RwwFactory(), options);
  sys.Write(0, -1.0);
  sys.Write(4, -3.0);
  EXPECT_EQ(sys.Combine(2), -1.0);
}

TEST(MechanismTest, QuiescentInvariantsHoldThroughMixedScenario) {
  Tree t = MakeKary(9, 2);
  AggregationSystem sys(t, RwwFactory());
  std::vector<Real> truth(9, SumOp().identity);
  const auto write = [&](NodeId u, Real x) {
    sys.Write(u, x);
    truth[static_cast<std::size_t>(u)] = x;
    ExpectQuiescentInvariants(sys, truth);
  };
  const auto combine = [&](NodeId u) {
    sys.Combine(u);
    ExpectQuiescentInvariants(sys, truth);
  };
  combine(4);
  write(0, 3.0);
  write(8, 2.0);
  combine(7);
  write(8, 5.0);
  write(8, 6.0);
  combine(0);
  write(1, -4.0);
  combine(8);
}

TEST(MechanismTest, GvalAndSubvalAgreeWithTruth) {
  Tree t = MakePath(4);
  AggregationSystem sys(t, RwwFactory());
  sys.Write(0, 1.0);
  sys.Write(1, 2.0);
  sys.Write(2, 3.0);
  sys.Write(3, 4.0);
  sys.Combine(1);
  EXPECT_EQ(sys.node(1).Gval(), 10.0);
  // subval(0) at node 1 aggregates everything except 0's side = 2+3+4.
  EXPECT_EQ(sys.node(1).Subval(0), 9.0);
  EXPECT_EQ(sys.node(1).Subval(2), 3.0);
}

TEST(MechanismTest, SingleNodeTreeCombineIsLocal) {
  Tree t({0});
  AggregationSystem sys(t, RwwFactory());
  sys.Write(0, 42.0);
  EXPECT_EQ(sys.Combine(0), 42.0);
  EXPECT_EQ(sys.trace().TotalMessages(), 0);
}

TEST(MechanismTest, ReleasePropagatesDownChains) {
  // Lemma 4.3 part 2: after two consecutive writes in sigma(u, v) every
  // node on the lease path sends a release toward the writer's side.
  Tree t = MakePath(4);
  AggregationSystem sys(t, RwwFactory());
  sys.Combine(3);  // grants 0->1, 1->2, 2->3
  EXPECT_TRUE(sys.node(0).granted(1));
  EXPECT_TRUE(sys.node(1).granted(2));
  EXPECT_TRUE(sys.node(2).granted(3));
  sys.Write(0, 1.0);
  sys.Write(0, 2.0);
  EXPECT_FALSE(sys.node(0).granted(1));
  EXPECT_FALSE(sys.node(1).granted(2));
  EXPECT_FALSE(sys.node(2).granted(3));
  EXPECT_EQ(sys.trace().totals().releases, 3);
}

}  // namespace
}  // namespace treeagg
