#include "core/extra_policies.h"

#include <gtest/gtest.h>

#include "consistency/strict_checker.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(TimerLeaseTest, BreaksAfterTtlEventsRegardlessOfReads) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, TimerLeaseFactory(3));
  sys.Combine(0);  // lease set; node 0's clock advanced by the response
  EXPECT_TRUE(sys.node(1).granted(0));
  // Keep reading: unlike RWW, reads do NOT extend a timer lease; but break
  // opportunities only arise on update/release processing, so we must
  // write to trigger one.
  sys.Write(1, 1.0);
  sys.Write(1, 2.0);
  sys.Write(1, 3.0);
  // After enough observed events the lease must be gone.
  EXPECT_FALSE(sys.node(1).granted(0));
}

TEST(TimerLeaseTest, StaysStrictlyConsistent) {
  Tree t = MakeKary(9, 2);
  AggregationSystem sys(t, TimerLeaseFactory(5));
  sys.Execute(MakeWorkload("mixed50", t, 400, 3));
  EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok);
}

TEST(ProbabilisticTest, StaysStrictlyConsistentAcrossSeeds) {
  Tree t = MakePath(6);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    AggregationSystem sys(t, ProbabilisticFactory(0.5, seed));
    sys.Execute(MakeWorkload("mixed50", t, 300, seed));
    EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok)
        << "seed " << seed;
  }
}

TEST(ProbabilisticTest, ZeroProbabilityNeverBreaks) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, ProbabilisticFactory(0.0, 1));
  sys.Combine(0);
  for (int i = 0; i < 20; ++i) sys.Write(1, i);
  EXPECT_TRUE(sys.node(1).granted(0));
}

TEST(ProbabilisticTest, UnitProbabilityBreaksAtFirstOpportunity) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, ProbabilisticFactory(1.0, 1));
  sys.Combine(0);
  sys.Write(1, 1.0);
  EXPECT_FALSE(sys.node(1).granted(0));
}

TEST(EwmaTest, TracksRates) {
  EwmaPolicy policy(0.5);
  // Use a dummy view via a real node is heavy; rates_ updates only need
  // Bump, driven through the public hooks with a real system instead.
  Tree t = MakePath(2);
  AggregationSystem sys(t, EwmaFactory(0.5));
  sys.Combine(0);
  const auto* p1 = dynamic_cast<const EwmaPolicy*>(&sys.node(1).policy());
  ASSERT_NE(p1, nullptr);
  EXPECT_GT(p1->ReadRate(0), 0.0);  // saw a probe from 0
  sys.Write(1, 1.0);
  EXPECT_GT(p1->WriteRate(0), 0.0);
  (void)policy;
}

TEST(EwmaTest, HoldsLeaseUnderReadsDropsUnderWrites) {
  Tree t = MakePath(2);
  AggregationSystem sys(t, EwmaFactory(0.3));
  sys.Combine(0);
  EXPECT_TRUE(sys.node(1).granted(0));
  // Write storm: rate tips, lease released at some opportunity.
  for (int i = 0; i < 30; ++i) sys.Write(1, i);
  EXPECT_FALSE(sys.node(1).granted(0));
}

TEST(EwmaTest, StaysStrictlyConsistent) {
  Tree t = MakeKary(9, 2);
  AggregationSystem sys(t, EwmaFactory());
  sys.Execute(MakeWorkload("bursty", t, 400, 9));
  EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok);
}

TEST(PolicySpecTest, ParsesAllForms) {
  EXPECT_NO_THROW(PolicyBySpec("RWW"));
  EXPECT_NO_THROW(PolicyBySpec("rww"));
  EXPECT_NO_THROW(PolicyBySpec("push-all"));
  EXPECT_NO_THROW(PolicyBySpec("pull-all"));
  EXPECT_NO_THROW(PolicyBySpec("lease(1,3)"));
  EXPECT_NO_THROW(PolicyBySpec("timer(10)"));
  EXPECT_NO_THROW(PolicyBySpec("prob(0.4)"));
  EXPECT_NO_THROW(PolicyBySpec("ewma"));
  EXPECT_NO_THROW(PolicyBySpec("ewma(0.1)"));
  EXPECT_THROW(PolicyBySpec("bogus"), std::invalid_argument);
  EXPECT_THROW(PolicyBySpec("lease(1)"), std::invalid_argument);
  EXPECT_THROW(PolicyBySpec("lease(x,y)"), std::invalid_argument);
}

TEST(PolicySpecTest, SpecsBehaveLikeTheirFactories) {
  Tree t = MakePath(4);
  const RequestSequence sigma = MakeWorkload("mixed50", t, 300, 2);
  AggregationSystem a(t, PolicyBySpec("lease(1,2)"));
  AggregationSystem b(t, RwwFactory());
  a.Execute(sigma);
  b.Execute(sigma);
  EXPECT_EQ(a.trace().TotalMessages(), b.trace().TotalMessages());
}

TEST(AllPoliciesTest, ListIsWellFormed) {
  const auto policies = AllPolicies();
  EXPECT_GE(policies.size(), 9u);
  Tree t = MakePath(3);
  for (const NamedPolicy& p : policies) {
    EXPECT_FALSE(p.name.empty());
    auto instance = p.factory(0, t.neighbors(0).ToVector());
    ASSERT_NE(instance, nullptr) << p.name;
  }
}

// Property: every extra policy preserves strict consistency (Lemma 3.12 is
// policy-independent).
class ExtraPolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(ExtraPolicySweep, StrictConsistency) {
  const auto policies = AllPolicies();
  const NamedPolicy& policy =
      policies[static_cast<std::size_t>(GetParam())];
  Tree t = MakeShape("random", 10, 77);
  AggregationSystem sys(t, policy.factory);
  sys.Execute(MakeWorkload("mixed50", t, 250, 13));
  EXPECT_TRUE(CheckStrictConsistency(sys.history(), SumOp(), t.size()).ok)
      << policy.name;
}

INSTANTIATE_TEST_SUITE_P(All, ExtraPolicySweep, ::testing::Range(0, 9));

}  // namespace
}  // namespace treeagg
