// The MLAP delay-and-batch transform: spec parsing, the service-cost
// model, the flush automaton under both variants (Bienkowski delay rule
// and BFNT deadline rule with ancestor cascade), and the end-to-end
// contract — the batched sequence runs under the unmodified RWW mechanism
// and stays strictly consistent.
#include "core/mlap.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "consistency/strict_checker.h"
#include "core/extra_policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

TEST(MlapSpecTest, RecognizesAllForms) {
  EXPECT_TRUE(IsMlapSpec("mlap"));
  EXPECT_TRUE(IsMlapSpec("mlap(2)"));
  EXPECT_TRUE(IsMlapSpec("mlap(0.5)"));
  EXPECT_TRUE(IsMlapSpec("mlap-d"));
  EXPECT_TRUE(IsMlapSpec("mlap-d(0.25)"));
  EXPECT_FALSE(IsMlapSpec("mlapx"));
  EXPECT_FALSE(IsMlapSpec("mlap()"));
  EXPECT_FALSE(IsMlapSpec("mlap(abc)"));
  EXPECT_FALSE(IsMlapSpec("mlap(1"));
  EXPECT_FALSE(IsMlapSpec("RWW"));
  EXPECT_FALSE(IsMlapSpec(""));
}

TEST(MlapSpecTest, ParsesVariantsAndDelayCost) {
  MlapParams p = ParseMlapSpec("mlap");
  EXPECT_FALSE(p.deadline_variant);
  EXPECT_EQ(p.delay_cost, 1.0);

  p = ParseMlapSpec("mlap(2.5)");
  EXPECT_FALSE(p.deadline_variant);
  EXPECT_EQ(p.delay_cost, 2.5);

  p = ParseMlapSpec("mlap-d");
  EXPECT_TRUE(p.deadline_variant);
  EXPECT_EQ(p.delay_cost, 1.0);

  p = ParseMlapSpec("mlap-d(0.5)");
  EXPECT_TRUE(p.deadline_variant);
  EXPECT_EQ(p.delay_cost, 0.5);
}

TEST(MlapSpecTest, RejectsNonPositiveDelayCostAndJunk) {
  EXPECT_THROW(ParseMlapSpec("mlap(0)"), std::invalid_argument);
  EXPECT_THROW(ParseMlapSpec("mlap(-1)"), std::invalid_argument);
  EXPECT_THROW(ParseMlapSpec("mlap-d(0)"), std::invalid_argument);
  EXPECT_THROW(ParseMlapSpec("bogus"), std::invalid_argument);
  EXPECT_THROW(ParseMlapSpec("mlap(1x)"), std::invalid_argument);
}

TEST(MlapSpecTest, SpecStringRoundTrips) {
  for (const char* spec : {"mlap", "mlap(0.5)", "mlap(2)", "mlap-d",
                           "mlap-d(0.25)"}) {
    const MlapParams p = ParseMlapSpec(spec);
    EXPECT_EQ(ParseMlapSpec(MlapSpecString(p)), p) << spec;
  }
}

TEST(MlapSpecTest, PolicyBySpecAcceptsMlapAndHelpNamesIt) {
  EXPECT_NO_THROW(PolicyBySpec("mlap"));
  EXPECT_NO_THROW(PolicyBySpec("mlap-d(0.5)"));
  // A syntactically-mlap spec with bad parameters fails at parse time, in
  // PolicyBySpec, not later in the transform.
  EXPECT_THROW(PolicyBySpec("mlap(0)"), std::invalid_argument);
  EXPECT_NE(PolicySpecHelp().find("mlap"), std::string::npos);
  EXPECT_NE(PolicySpecHelp().find("mlap-d"), std::string::npos);
}

TEST(MlapServiceCostTest, IsTwiceDepthPlusOne) {
  const Tree t = MakePath(3);  // 0 - 1 - 2
  const std::vector<double> costs = MlapServiceCosts(t);
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_EQ(costs[0], 2.0);
  EXPECT_EQ(costs[1], 4.0);
  EXPECT_EQ(costs[2], 6.0);
}

// Delay rule, one request: node 1 on a 2-path has C = 4, so a lone
// combine arriving at tick 0 accumulates delay 4 at tick 4 and flushes.
TEST(MlapDelayRuleTest, LoneRequestWaitsItsServiceCost) {
  const Tree t = MakePath(2);
  const RequestSequence sigma = {Request::Combine(1)};
  const MlapPlan plan = BuildMlapPlan(t, sigma, ParseMlapSpec("mlap"));
  ASSERT_EQ(plan.batched.size(), 1u);
  EXPECT_EQ(plan.batched[0], Request::Combine(1));
  ASSERT_EQ(plan.waits.size(), 1u);
  EXPECT_EQ(plan.waits[0], 4);
  EXPECT_EQ(plan.flushes, 1);
  EXPECT_EQ(plan.served, 1);
  EXPECT_EQ(plan.total_wait, 4);
  EXPECT_EQ(plan.modeled_service_cost, 4.0);
  EXPECT_EQ(plan.modeled_total_cost, 8.0);
}

// A higher delay cost makes waiting more expensive: the same lone request
// flushes at ceil(C / delay_cost) = 1 tick instead of 4.
TEST(MlapDelayRuleTest, HigherDelayCostFlushesSooner) {
  const Tree t = MakePath(2);
  const RequestSequence sigma = {Request::Combine(1)};
  const MlapPlan plan = BuildMlapPlan(t, sigma, ParseMlapSpec("mlap(4)"));
  ASSERT_EQ(plan.waits.size(), 1u);
  EXPECT_EQ(plan.waits[0], 1);
}

// Two requests share one flush: arrivals {0, 2} at node 1 (C = 4) reach
// accumulated delay 4 at tick 3 — smallest T with 2T - 2 >= 4.
TEST(MlapDelayRuleTest, AccumulatedDelayBatchesRequests) {
  const Tree t = MakePath(2);
  const RequestSequence sigma = {Request::Combine(1), Request::Combine(1)};
  const std::vector<std::int64_t> ticks = {0, 2};
  const MlapPlan plan =
      BuildMlapPlan(t, sigma, ParseMlapSpec("mlap"), &ticks);
  EXPECT_EQ(plan.flushes, 1);
  EXPECT_EQ(plan.served, 2);
  ASSERT_EQ(plan.waits.size(), 2u);
  EXPECT_EQ(plan.waits[0], 3);
  EXPECT_EQ(plan.waits[1], 1);
  EXPECT_EQ(plan.total_wait, 4);
  EXPECT_EQ(plan.modeled_total_cost, 4.0 + 4.0);
}

// An arrival landing exactly on the node's trigger tick joins that batch
// (arrivals at tick T are processed before flushes at T).
TEST(MlapDelayRuleTest, ArrivalAtTriggerTickJoinsTheBatch) {
  const Tree t = MakePath(2);
  const RequestSequence sigma = {Request::Combine(1), Request::Combine(1)};
  const std::vector<std::int64_t> ticks = {0, 4};  // trigger of the first is 4
  const MlapPlan plan =
      BuildMlapPlan(t, sigma, ParseMlapSpec("mlap"), &ticks);
  EXPECT_EQ(plan.flushes, 1);
  ASSERT_EQ(plan.waits.size(), 2u);
  EXPECT_EQ(plan.waits[0], 4);
  EXPECT_EQ(plan.waits[1], 0);
}

// Deadline rule: a lone combine at node u flushes exactly
// ceil(C_u / delay_cost) ticks after arrival.
TEST(MlapDeadlineRuleTest, LoneRequestFlushesAtItsDeadline) {
  const Tree t = MakePath(3);
  const RequestSequence sigma = {Request::Combine(2)};
  const MlapPlan plan = BuildMlapPlan(t, sigma, ParseMlapSpec("mlap-d(2)"));
  ASSERT_EQ(plan.waits.size(), 1u);
  EXPECT_EQ(plan.waits[0], 3);  // ceil(6 / 2)
}

// Deadline cascade: serving node 2 transmits the whole root path, so node
// 1's pending queue rides along — two flushes, one service, priced at the
// deepest node's cost only.
TEST(MlapDeadlineRuleTest, ServiceCascadesToPendingAncestors) {
  const Tree t = MakePath(3);
  const RequestSequence sigma = {Request::Combine(2), Request::Combine(1)};
  const std::vector<std::int64_t> ticks = {0, 3};
  // Deadlines: node 2 at 0 + 6 = 6, node 1 at 3 + 4 = 7; node 2 fires
  // first and drags node 1's queue with it at tick 6.
  const MlapPlan plan =
      BuildMlapPlan(t, sigma, ParseMlapSpec("mlap-d"), &ticks);
  ASSERT_EQ(plan.batched.size(), 2u);
  EXPECT_EQ(plan.batched[0], Request::Combine(2));
  EXPECT_EQ(plan.batched[1], Request::Combine(1));
  EXPECT_EQ(plan.flushes, 2);
  EXPECT_EQ(plan.served, 2);
  ASSERT_EQ(plan.waits.size(), 2u);
  EXPECT_EQ(plan.waits[0], 6);
  EXPECT_EQ(plan.waits[1], 3);
  EXPECT_EQ(plan.modeled_service_cost, 6.0);  // deepest node only
  EXPECT_EQ(plan.modeled_total_cost, 6.0 + 9.0);
}

// Without the cascade (delay variant), the same instance pays both
// services.
TEST(MlapDelayRuleTest, DelayVariantDoesNotCascade) {
  const Tree t = MakePath(3);
  const RequestSequence sigma = {Request::Combine(2), Request::Combine(1)};
  const std::vector<std::int64_t> ticks = {0, 3};
  const MlapPlan plan = BuildMlapPlan(t, sigma, ParseMlapSpec("mlap"), &ticks);
  EXPECT_EQ(plan.flushes, 2);
  EXPECT_EQ(plan.modeled_service_cost, 6.0 + 4.0);
}

TEST(MlapPlanTest, WritesPassThroughInArrivalOrder) {
  const Tree t = MakePath(3);
  const RequestSequence sigma = {Request::Write(1, 5.0), Request::Combine(1),
                                 Request::Write(2, 7.0)};
  const MlapPlan plan = BuildMlapPlan(t, sigma, ParseMlapSpec("mlap"));
  ASSERT_EQ(plan.batched.size(), 3u);
  EXPECT_EQ(plan.batched[0], Request::Write(1, 5.0));
  EXPECT_EQ(plan.batched[1], Request::Write(2, 7.0));
  EXPECT_EQ(plan.batched[2], Request::Combine(1));  // flushed after both
  EXPECT_EQ(plan.served, 1);
}

// Simultaneous triggers break ties by node id, independent of injection
// order — the determinism hook for cross-backend bit-identity.
TEST(MlapPlanTest, SimultaneousTriggersFlushInNodeIdOrder) {
  const Tree t = MakeShape("star", 4, /*seed=*/1);  // 1, 2, 3 under root
  const RequestSequence sigma = {Request::Combine(3), Request::Combine(1)};
  const std::vector<std::int64_t> ticks = {0, 0};
  const MlapPlan plan = BuildMlapPlan(t, sigma, ParseMlapSpec("mlap"), &ticks);
  ASSERT_EQ(plan.batched.size(), 2u);
  EXPECT_EQ(plan.batched[0], Request::Combine(1));
  EXPECT_EQ(plan.batched[1], Request::Combine(3));
}

TEST(MlapPlanTest, ValidatesArrivalTicks) {
  const Tree t = MakePath(2);
  const RequestSequence sigma = {Request::Combine(1), Request::Combine(1)};
  const std::vector<std::int64_t> wrong_size = {0};
  const std::vector<std::int64_t> decreasing = {3, 1};
  EXPECT_THROW(
      BuildMlapPlan(t, sigma, ParseMlapSpec("mlap"), &wrong_size),
      std::invalid_argument);
  EXPECT_THROW(
      BuildMlapPlan(t, sigma, ParseMlapSpec("mlap"), &decreasing),
      std::invalid_argument);
  MlapParams bad;
  bad.delay_cost = 0;
  EXPECT_THROW(BuildMlapPlan(t, sigma, bad), std::invalid_argument);
}

TEST(MlapPlanTest, EveryCombineIsServedExactlyOnce) {
  const Tree t = MakeKary(15, 2);
  const TimedWorkload timed = MakeTimedWorkload("onoff", t, 400, 11);
  for (const char* spec : {"mlap", "mlap(0.5)", "mlap-d", "mlap-d(2)"}) {
    const MlapPlan plan =
        BuildMlapPlan(t, timed.sigma, ParseMlapSpec(spec), &timed.ticks);
    const RequestMix in = CountMix(timed.sigma);
    const RequestMix out = CountMix(plan.batched);
    EXPECT_EQ(plan.served, static_cast<std::int64_t>(in.combines)) << spec;
    EXPECT_EQ(plan.waits.size(), in.combines) << spec;
    EXPECT_EQ(out.writes, in.writes) << spec;
    EXPECT_EQ(out.combines, static_cast<std::size_t>(plan.flushes)) << spec;
    EXPECT_LE(plan.flushes, plan.served) << spec;
    for (const std::int64_t w : plan.waits) EXPECT_GE(w, 0) << spec;
  }
}

TEST(MlapPlanTest, DeterministicAcrossRuns) {
  const Tree t = MakeKary(31, 2);
  const TimedWorkload timed = MakeTimedWorkload("pareto", t, 300, 5);
  const MlapParams params = ParseMlapSpec("mlap-d(0.5)");
  const MlapPlan a = BuildMlapPlan(t, timed.sigma, params, &timed.ticks);
  const MlapPlan b = BuildMlapPlan(t, timed.sigma, params, &timed.ticks);
  EXPECT_EQ(a.batched, b.batched);
  EXPECT_EQ(a.waits, b.waits);
  EXPECT_EQ(a.modeled_total_cost, b.modeled_total_cost);
}

// The whole point of the transform: the batched sequence is an ordinary
// request sequence for the unmodified mechanism — strictly consistent
// under RWW, and cheaper in messages than the raw sequence on a bursty
// workload (batching collapses combines between writes).
TEST(MlapEndToEndTest, BatchedSequenceIsStrictlyConsistentAndCheaper) {
  const Tree t = MakeKary(15, 2);
  const TimedWorkload timed = MakeTimedWorkload("onoff", t, 300, 3);
  const MlapPlan plan =
      BuildMlapPlan(t, timed.sigma, ParseMlapSpec("mlap"), &timed.ticks);
  EXPECT_GT(plan.total_wait, 0);

  AggregationSystem raw(t, RwwFactory());
  raw.Execute(timed.sigma);
  AggregationSystem batched(t, RwwFactory());
  batched.Execute(plan.batched);
  EXPECT_TRUE(
      CheckStrictConsistency(batched.history(), SumOp(), t.size()).ok);
  EXPECT_LT(batched.trace().TotalMessages(), raw.trace().TotalMessages());
}

}  // namespace
}  // namespace treeagg
