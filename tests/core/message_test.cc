#include "core/message.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/request.h"

namespace treeagg {
namespace {

std::string Print(const Message& m) {
  std::ostringstream os;
  os << m;
  return os.str();
}

TEST(MessagePrintTest, Probe) {
  Message m;
  m.type = MsgType::kProbe;
  m.from = 3;
  m.to = 5;
  EXPECT_EQ(Print(m), "probe(3->5)");
}

TEST(MessagePrintTest, Response) {
  Message m;
  m.type = MsgType::kResponse;
  m.from = 1;
  m.to = 2;
  m.x = 4.5;
  m.flag = true;
  EXPECT_EQ(Print(m), "response(1->2, x=4.5, flag=true)");
}

TEST(MessagePrintTest, Update) {
  Message m;
  m.type = MsgType::kUpdate;
  m.from = 0;
  m.to = 1;
  m.x = -2;
  m.id = 9;
  EXPECT_EQ(Print(m), "update(0->1, x=-2, id=9)");
}

TEST(MessagePrintTest, Release) {
  Message m;
  m.type = MsgType::kRelease;
  m.from = 2;
  m.to = 0;
  m.release_ids = {4, 5, 6};
  EXPECT_EQ(Print(m), "release(2->0, |S|=3)");
}

TEST(MessagePrintTest, TypeNames) {
  EXPECT_STREQ(ToString(MsgType::kProbe), "probe");
  EXPECT_STREQ(ToString(MsgType::kResponse), "response");
  EXPECT_STREQ(ToString(MsgType::kUpdate), "update");
  EXPECT_STREQ(ToString(MsgType::kRelease), "release");
}

TEST(RequestPrintTest, Formats) {
  std::ostringstream os;
  os << Request::Combine(4) << " " << Request::Write(2, 3.5);
  EXPECT_EQ(os.str(), "combine@4 write@2(3.5)");
  EXPECT_STREQ(ToString(ReqType::kCombine), "combine");
  EXPECT_STREQ(ToString(ReqType::kWrite), "write");
}

TEST(GhostWriteTest, Equality) {
  const GhostWrite a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace treeagg
