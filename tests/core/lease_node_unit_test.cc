// White-box unit tests of the LeaseNode automaton, driven message by
// message through a recording transport (no simulator): exact emissions
// for T1-T6, the onrelease() uaw-trimming logic, sntupdates bookkeeping
// and garbage collection, empty release sets, and probe sharing.
#include "core/lease_node.h"

#include <gtest/gtest.h>

#include <deque>

#include "core/extra_policies.h"
#include "core/policies.h"

namespace treeagg {
namespace {

class RecordingTransport final : public Transport {
 public:
  void Send(Message m) override { sent.push_back(std::move(m)); }

  Message Pop() {
    EXPECT_FALSE(sent.empty());
    Message m = sent.front();
    sent.pop_front();
    return m;
  }

  std::deque<Message> sent;
};

struct CombineResult {
  bool done = false;
  CombineToken token = -1;
  Real value = 0;
};

// A LeaseNode under test with its transport and combine-callback capture.
struct Harness {
  Harness(NodeId self, std::vector<NodeId> nbrs,
          std::unique_ptr<LeasePolicy> policy, bool ghost = false)
      : node(self, std::move(nbrs), SumOp(), std::move(policy), &transport,
             [this](NodeId, CombineToken token, Real value) {
               results.push_back({true, token, value});
             },
             ghost) {}

  RecordingTransport transport;
  std::vector<CombineResult> results;
  LeaseNode node;
};

Message MakeResponse(NodeId from, NodeId to, Real x, bool flag) {
  Message m;
  m.type = MsgType::kResponse;
  m.from = from;
  m.to = to;
  m.x = x;
  m.flag = flag;
  return m;
}

Message MakeUpdate(NodeId from, NodeId to, Real x, UpdateId id) {
  Message m;
  m.type = MsgType::kUpdate;
  m.from = from;
  m.to = to;
  m.x = x;
  m.id = id;
  return m;
}

Message MakeProbe(NodeId from, NodeId to) {
  Message m;
  m.type = MsgType::kProbe;
  m.from = from;
  m.to = to;
  return m;
}

Message MakeRelease(NodeId from, NodeId to,
                    std::initializer_list<UpdateId> ids) {
  Message m;
  m.type = MsgType::kRelease;
  m.from = from;
  m.to = to;
  m.release_ids = ids;
  return m;
}

TEST(LeaseNodeUnit, T1LeafCombineProbesAllNeighbors) {
  Harness h(0, {1, 2, 3}, std::make_unique<RwwPolicy>());
  h.node.LocalCombine(7);
  ASSERT_EQ(h.transport.sent.size(), 3u);
  for (const NodeId v : {1, 2, 3}) {
    const Message m = h.transport.Pop();
    EXPECT_EQ(m.type, MsgType::kProbe);
    EXPECT_EQ(m.from, 0);
    EXPECT_EQ(m.to, v);
  }
  EXPECT_TRUE(h.results.empty());  // waiting for responses
  EXPECT_TRUE(h.node.InPndg(0));
  EXPECT_EQ(h.node.SntSize(0), 3u);
}

TEST(LeaseNodeUnit, T4ResponsesCompleteTheCombine) {
  Harness h(0, {1, 2}, std::make_unique<RwwPolicy>());
  h.node.LocalCombine(9);
  h.transport.sent.clear();
  h.node.Deliver(MakeResponse(1, 0, 5.0, true));
  EXPECT_TRUE(h.results.empty());
  h.node.Deliver(MakeResponse(2, 0, 2.5, false));
  ASSERT_EQ(h.results.size(), 1u);
  EXPECT_EQ(h.results[0].token, 9);
  EXPECT_EQ(h.results[0].value, 7.5);
  EXPECT_TRUE(h.node.taken(1));
  EXPECT_FALSE(h.node.taken(2));  // flag=false response does not set taken
  EXPECT_EQ(h.node.PndgSize(), 0u);
}

TEST(LeaseNodeUnit, T3InteriorNodeForwardsProbeAndAggregatesResponse) {
  Harness h(1, {0, 2}, std::make_unique<RwwPolicy>());
  h.node.LocalWrite(10.0);
  h.node.Deliver(MakeProbe(0, 1));  // 0 asks for subtree(1, 0)'s value
  // Node must probe 2 before it can respond to 0.
  Message probe = h.transport.Pop();
  EXPECT_EQ(probe.type, MsgType::kProbe);
  EXPECT_EQ(probe.to, 2);
  EXPECT_TRUE(h.transport.sent.empty());
  h.node.Deliver(MakeResponse(2, 1, 4.0, true));
  Message response = h.transport.Pop();
  EXPECT_EQ(response.type, MsgType::kResponse);
  EXPECT_EQ(response.to, 0);
  EXPECT_EQ(response.x, 14.0);  // own 10 + subtree 4
  EXPECT_TRUE(response.flag);   // RWW grants (all others taken)
  EXPECT_TRUE(h.node.granted(0));
}

TEST(LeaseNodeUnit, ResponseFlagFollowsPolicyRefusal) {
  Harness h(1, {0}, std::make_unique<PullAllPolicy>());
  h.node.Deliver(MakeProbe(0, 1));
  const Message response = h.transport.Pop();
  EXPECT_EQ(response.type, MsgType::kResponse);
  EXPECT_FALSE(response.flag);
  EXPECT_FALSE(h.node.granted(0));
}

TEST(LeaseNodeUnit, T2WriteForwardsUpdatesToGrantedOnly) {
  Harness h(1, {0, 2}, std::make_unique<RwwPolicy>());
  // Take 2's lease, then grant to 0.
  h.node.Deliver(MakeProbe(0, 1));
  h.transport.sent.clear();
  h.node.Deliver(MakeResponse(2, 1, 4.0, true));
  h.transport.sent.clear();
  h.node.LocalWrite(1.0);
  ASSERT_EQ(h.transport.sent.size(), 1u);
  const Message update = h.transport.Pop();
  EXPECT_EQ(update.type, MsgType::kUpdate);
  EXPECT_EQ(update.to, 0);
  EXPECT_EQ(update.x, 5.0);  // own 1 + subtree(2) 4
  EXPECT_EQ(update.id, 1);   // first id from upcntr
}

TEST(LeaseNodeUnit, T5ForwardsUpdateWithFreshIdAndRecordsSntupdates) {
  Harness h(1, {0, 2}, std::make_unique<RwwPolicy>());
  h.node.Deliver(MakeProbe(0, 1));
  h.node.Deliver(MakeResponse(2, 1, 4.0, true));  // grants to 0
  h.transport.sent.clear();
  h.node.Deliver(MakeUpdate(2, 1, 6.0, 17));  // 2's own id namespace
  ASSERT_EQ(h.transport.sent.size(), 1u);
  const Message fwd = h.transport.Pop();
  EXPECT_EQ(fwd.type, MsgType::kUpdate);
  EXPECT_EQ(fwd.to, 0);
  EXPECT_EQ(fwd.x, 6.0);  // own 0 + subtree(2) 6
  EXPECT_EQ(fwd.id, 1);   // renumbered with the local counter
  EXPECT_EQ(h.node.SntUpdatesSize(), 1u);
  EXPECT_EQ(h.node.uaw(2).size(), 1u);
  EXPECT_TRUE(h.node.uaw(2).contains(17));
}

TEST(LeaseNodeUnit, T5AtFrontierDecrementsAndEventuallyReleases) {
  Harness h(0, {1}, std::make_unique<RwwPolicy>());
  h.node.LocalCombine(1);
  h.transport.sent.clear();
  h.node.Deliver(MakeResponse(1, 0, 4.0, true));
  h.transport.sent.clear();
  h.node.Deliver(MakeUpdate(1, 0, 5.0, 1));
  EXPECT_TRUE(h.transport.sent.empty());  // lt 2 -> 1: keep
  h.node.Deliver(MakeUpdate(1, 0, 6.0, 2));
  ASSERT_EQ(h.transport.sent.size(), 1u);  // lt -> 0: release
  const Message release = h.transport.Pop();
  EXPECT_EQ(release.type, MsgType::kRelease);
  EXPECT_EQ(release.to, 1);
  EXPECT_EQ(release.release_ids, (ReleaseIdSet{1, 2}));
  EXPECT_FALSE(h.node.taken(1));
  EXPECT_TRUE(h.node.uaw(1).empty());
}

TEST(LeaseNodeUnit, T6OnReleaseTrimsUawViaSntupdates) {
  // Center node 1 with taken lease from 2 and granted lease to 0.
  Harness h(1, {0, 2}, std::make_unique<RwwPolicy>());
  h.node.Deliver(MakeProbe(0, 1));
  h.node.Deliver(MakeResponse(2, 1, 0.0, true));
  h.transport.sent.clear();
  // Two updates from 2, forwarded to 0 as local ids 1 and 2.
  h.node.Deliver(MakeUpdate(2, 1, 1.0, 100));
  h.node.Deliver(MakeUpdate(2, 1, 2.0, 101));
  EXPECT_EQ(h.node.uaw(2).size(), 2u);
  EXPECT_EQ(h.node.SntUpdatesSize(), 2u);
  h.transport.sent.clear();
  // 0 releases citing both forwarded ids: everything in uaw(2) is still
  // unacknowledged, so nothing is trimmed away; RWW's releasepolicy then
  // drops lt[2] to 0 and node 1 cascades the release to 2.
  h.node.Deliver(MakeRelease(0, 1, {1, 2}));
  EXPECT_FALSE(h.node.granted(0));
  ASSERT_EQ(h.transport.sent.size(), 1u);
  const Message cascade = h.transport.Pop();
  EXPECT_EQ(cascade.type, MsgType::kRelease);
  EXPECT_EQ(cascade.to, 2);
  EXPECT_EQ(cascade.release_ids, (ReleaseIdSet{100, 101}));
  EXPECT_FALSE(h.node.taken(2));
  // With no grants left, the sntupdates bookkeeping is collected.
  EXPECT_EQ(h.node.SntUpdatesSize(), 0u);
}

TEST(LeaseNodeUnit, T6ReleaseCitingOnlyLatestIdTrimsOlderUawEntries) {
  Harness h(1, {0, 2}, std::make_unique<RwwPolicy>());
  h.node.Deliver(MakeProbe(0, 1));
  h.node.Deliver(MakeResponse(2, 1, 0.0, true));
  h.node.Deliver(MakeUpdate(2, 1, 1.0, 100));  // forwarded as id 1
  h.node.Deliver(MakeUpdate(2, 1, 2.0, 101));  // forwarded as id 2
  h.transport.sent.clear();
  // 0's release cites only id 2: the beta tuple is (2, rcvid=101), so the
  // trimmed uaw keeps ids >= 101 — i.e. update 100 was acknowledged.
  h.node.Deliver(MakeRelease(0, 1, {2}));
  // lt[2] = 2 - |{101}| = 1 > 0: lease from 2 survives.
  EXPECT_TRUE(h.node.taken(2));
  EXPECT_EQ(h.node.uaw(2), (ReleaseIdSet{101}));
  EXPECT_TRUE(h.transport.sent.empty());
}

TEST(LeaseNodeUnit, T6EmptyReleaseSetClearsUaw) {
  Harness h(1, {0, 2}, std::make_unique<EagerBreakPolicy>());
  h.node.Deliver(MakeProbe(0, 1));
  h.node.Deliver(MakeResponse(2, 1, 0.0, true));
  h.transport.sent.clear();
  h.node.Deliver(MakeRelease(0, 1, {}));
  EXPECT_FALSE(h.node.granted(0));
  // Eager policy then releases the taken lease with an empty uaw.
  ASSERT_EQ(h.transport.sent.size(), 1u);
  const Message cascade = h.transport.Pop();
  EXPECT_EQ(cascade.type, MsgType::kRelease);
  EXPECT_TRUE(cascade.release_ids.empty());
}

TEST(LeaseNodeUnit, ProbeWhileAlreadyPendingIsAbsorbed) {
  Harness h(1, {0, 2}, std::make_unique<RwwPolicy>());
  h.node.Deliver(MakeProbe(0, 1));  // probes 2, pending for 0
  h.transport.sent.clear();
  h.node.Deliver(MakeProbe(0, 1));  // duplicate: no new messages
  EXPECT_TRUE(h.transport.sent.empty());
  // The one response from 2 still answers 0 exactly once.
  h.node.Deliver(MakeResponse(2, 1, 1.0, false));
  ASSERT_EQ(h.transport.sent.size(), 1u);
  EXPECT_EQ(h.transport.Pop().to, 0);
}

TEST(LeaseNodeUnit, ConcurrentLocalCombinesShareOneProbeWave) {
  Harness h(0, {1}, std::make_unique<RwwPolicy>());
  h.node.LocalCombine(1);
  h.node.LocalCombine(2);
  h.node.LocalCombine(3);
  ASSERT_EQ(h.transport.sent.size(), 1u);  // a single probe
  h.node.Deliver(MakeResponse(1, 0, 8.0, true));
  ASSERT_EQ(h.results.size(), 3u);
  for (const CombineResult& r : h.results) EXPECT_EQ(r.value, 8.0);
}

TEST(LeaseNodeUnit, RemoteAndLocalRequestsShareProbes) {
  Harness h(1, {0, 2, 3}, std::make_unique<RwwPolicy>());
  h.node.Deliver(MakeProbe(0, 1));  // probes 2 and 3 on behalf of 0
  EXPECT_EQ(h.transport.sent.size(), 2u);
  h.transport.sent.clear();
  h.node.LocalCombine(5);  // needs 0, 2, 3; 2 and 3 already probed
  ASSERT_EQ(h.transport.sent.size(), 1u);
  EXPECT_EQ(h.transport.Pop().to, 0);
  // Responses from 2 and 3 complete the remote request; 0's response then
  // completes the local combine.
  h.node.Deliver(MakeResponse(2, 1, 1.0, true));
  h.node.Deliver(MakeResponse(3, 1, 2.0, true));
  ASSERT_EQ(h.transport.sent.size(), 1u);  // response to 0
  EXPECT_EQ(h.transport.Pop().to, 0);
  EXPECT_TRUE(h.results.empty());
  h.node.Deliver(MakeResponse(0, 1, 4.0, false));
  ASSERT_EQ(h.results.size(), 1u);
  EXPECT_EQ(h.results[0].value, 7.0);
}

TEST(LeaseNodeUnit, GhostLogTracksWritesInOrder) {
  Harness h(0, {1}, std::make_unique<RwwPolicy>(), /*ghost=*/true);
  h.node.LocalWrite(1.0, /*write_id=*/10);
  h.node.LocalWrite(2.0, /*write_id=*/11);
  ASSERT_EQ(h.node.GhostLogEntries().size(), 2u);
  EXPECT_EQ(h.node.GhostLogEntries()[0].id, 10);
  EXPECT_EQ(h.node.GhostLogEntries()[1].id, 11);
  EXPECT_EQ(h.node.LastWrites().at(0), 11);
}

TEST(LeaseNodeUnit, GhostMergeDeduplicates) {
  Harness h(0, {1}, std::make_unique<RwwPolicy>(), /*ghost=*/true);
  auto wlog = std::make_shared<GhostLog>(
      GhostLog{{5, 1}, {6, 1}});
  Message m = MakeResponse(1, 0, 0.0, false);
  m.wlog = wlog;
  h.node.Deliver(m);
  Message m2 = MakeUpdate(1, 0, 0.0, 1);
  m2.wlog = std::make_shared<GhostLog>(GhostLog{{5, 1}, {6, 1}, {7, 1}});
  h.node.Deliver(m2);
  ASSERT_EQ(h.node.GhostLogEntries().size(), 3u);
  EXPECT_EQ(h.node.LastWrites().at(1), 7);
}

TEST(LeaseNodeUnit, InitialValuesAreOperatorIdentity) {
  RecordingTransport transport;
  LeaseNode node(0, {1}, MinOp(), std::make_unique<RwwPolicy>(), &transport,
                 [](NodeId, CombineToken, Real) {});
  EXPECT_EQ(node.val(), MinOp().identity);
  EXPECT_EQ(node.aval(1), MinOp().identity);
  EXPECT_EQ(node.Gval(), MinOp().identity);
}

}  // namespace
}  // namespace treeagg
