// treeagg_cli: run aggregation experiments from the command line.
//
// Subcommands:
//   run    (default when the first argument is a flag)
//          single-process experiment with a cost / consistency /
//          competitiveness report; --mode seq|concurrent|threads
//   sweep  parallel cross-product of shapes x sizes x workloads x
//          policies x faults; writes a treeagg-sweep-v5 JSON report
//          (--backend net-local runs every cell on a loopback-TCP
//          cluster instead of the sequential simulator)
//   serve  one node daemon of the networked backend:
//          treeagg_cli serve --cluster FILE --daemon ID [--state-dir DIR]
//          (with --state-dir the daemon snapshots its durable state to
//          disk and recovers from it on restart, surviving SIGKILL;
//          with --metrics-port P it serves Prometheus /metrics on P,
//          printing "metrics port N" to stdout — P=0 is OS-assigned)
//   drive  workload client of the networked backend:
//          treeagg_cli drive --cluster FILE [workload flags], or
//          treeagg_cli drive --net-local --daemons N [workload flags]
//          (--probe-via snapshot serves the workload's combines from the
//          read tier instead of the lease mechanism: off-ledger seqlock
//          snapshot reads, validated against the harvested ghost logs)
//   query  one snapshot read against a running cluster:
//          treeagg_cli query --cluster FILE --node U [--count N]
//   place  score and optimize placements against harvested traffic:
//          treeagg_cli place --cluster FILE --traffic FILE
//                            [--capacity K] [--out NEWCLUSTER]
//          (prints the cross-daemon message weight of the current, rr,
//          subtree, and traffic-optimized placements; --out writes a
//          cluster file with the optimized node->daemon map. The traffic
//          file comes from `drive ... --traffic-out FILE`; a running
//          cluster can instead be re-placed online with
//          `drive --net-local --replace-after N`)
//   chaos  fault-injection run checked by the ConvergenceChecker:
//          treeagg_cli chaos --backend sim|net-local --schedule SPEC
//          (SPEC is a preset name or a fault/schedule.h spec string;
//          exits non-zero when the run fails to converge)
//
// Examples:
//   treeagg_cli --shape kary2 --n 64 --workload mixed50 --len 5000
//   treeagg_cli --policy "lease(1,3)" --workload writeheavy --edges
//   treeagg_cli serve --cluster cluster.txt --daemon 0
//   treeagg_cli drive --net-local --daemons 4 --n 32 --len 500
//   treeagg_cli chaos --backend sim --schedule "seed=7;drop(0.1)@20..200"
//   treeagg_cli chaos --backend net-local --schedule crash --daemons 3
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "analysis/competitive.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/trace_export.h"
#include "consistency/causal_checker.h"
#include "core/extra_policies.h"
#include "core/mlap.h"
#include "exp/sweep.h"
#include "offline/mlap_dp.h"
#include "fault/convergence.h"
#include "fault/schedule.h"
#include "net/chaos.h"
#include "net/cluster.h"
#include "net/daemon.h"
#include "net/driver.h"
#include "net/local_cluster.h"
#include "net/query_client.h"
#include "place/placement.h"
#include "place/traffic.h"
#include "query/validate.h"
#include "sim/chaos.h"
#include "runtime/actor_runtime.h"
#include "sim/concurrent.h"
#include "sim/system.h"
#include "tree/dot_export.h"
#include "tree/generators.h"
#include "tree/serialization.h"
#include "workload/generators.h"
#include "workload/serialization.h"

namespace treeagg {
namespace {

struct CliOptions {
  std::string shape = "kary2";
  NodeId n = 32;
  std::string workload = "mixed50";
  std::size_t len = 2000;
  std::string policy = "RWW";
  std::string op = "sum";
  std::uint64_t seed = 1;
  std::string mode = "seq";
  bool edges = false;
  std::string csv;
  std::string tree_file;
  std::string workload_file;
  std::string save_workload;
  std::string dot_file;  // lease graph after the run (seq mode only)
};

// Usage printers take the destination stream: --help routes them to
// stdout (exit 0), parse errors to stderr (exit 2).
void PrintRunUsage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [run] [--shape S] [--n N] [--workload W] [--len L]"
         " [--policy P] [--op O] [--seed X] [--mode seq|concurrent|threads]"
         " [--edges] [--csv FILE] [--tree-file F] [--workload-file F]"
         " [--save-workload F] [--dot F]\n";
}

int Usage(const char* argv0) {
  PrintRunUsage(std::cerr, argv0);
  return 2;
}

bool IsHelpFlag(const std::string& arg) {
  return arg == "--help" || arg == "-h";
}

// True when any argument of the subcommand (argv[2:]) asks for help.
bool WantsHelp(int argc, char** argv, int first = 2) {
  for (int i = first; i < argc; ++i) {
    if (IsHelpFlag(argv[i])) return true;
  }
  return false;
}

// Validates a --policy spec up front, mirroring the chaos --schedule
// behavior: an unknown spec exits 2 with the valid-spec list on stderr
// instead of surfacing as a generic runtime error.
bool CheckPolicySpec(const std::string& spec) {
  try {
    PolicyBySpec(spec);
    return true;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: bad --policy '" << spec << "': " << e.what()
              << "\nvalid policies: " << PolicySpecHelp() << "\n";
    return false;
  }
}

bool Parse(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--edges") {
      options->edges = true;
    } else if (arg == "--shape" && (value = next())) {
      options->shape = value;
    } else if (arg == "--n" && (value = next())) {
      options->n = static_cast<NodeId>(std::stol(value));
    } else if (arg == "--workload" && (value = next())) {
      options->workload = value;
    } else if (arg == "--len" && (value = next())) {
      options->len = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--policy" && (value = next())) {
      options->policy = value;
    } else if (arg == "--op" && (value = next())) {
      options->op = value;
    } else if (arg == "--seed" && (value = next())) {
      options->seed = std::stoull(value);
    } else if (arg == "--mode" && (value = next())) {
      options->mode = value;
    } else if (arg == "--csv" && (value = next())) {
      options->csv = value;
    } else if (arg == "--tree-file" && (value = next())) {
      options->tree_file = value;
    } else if (arg == "--workload-file" && (value = next())) {
      options->workload_file = value;
    } else if (arg == "--save-workload" && (value = next())) {
      options->save_workload = value;
    } else if (arg == "--dot" && (value = next())) {
      options->dot_file = value;
    } else {
      return false;
    }
  }
  return true;
}

int RunSequential(const CliOptions& options, const Tree& tree,
                  const RequestSequence& sigma) {
  if (!options.dot_file.empty()) {
    // Re-run with direct access to the system so the final lease graph can
    // be exported alongside the report.
    AggregationSystem::Options sys_options;
    const AggregateOp& op = OpByName(options.op);
    sys_options.op = &op;
    AggregationSystem sys(tree, PolicyBySpec(options.policy), sys_options);
    sys.Execute(sigma);
    std::ofstream out(options.dot_file);
    const LeaseGraph graph = sys.CurrentLeaseGraph();
    out << LeaseGraphToDot(graph);
    std::cout << "lease graph written to " << options.dot_file << "\n";
  }
  const CompetitiveReport report =
      RunCompetitive(tree, PolicyBySpec(options.policy), options.policy,
                     sigma, OpByName(options.op));
  TextTable table({"metric", "value"});
  table.AddRow({"total messages", std::to_string(report.online_total)});
  table.AddRow({"offline lease-based bound",
                std::to_string(report.lease_opt_total)});
  table.AddRow({"nice-algorithm bound",
                std::to_string(report.nice_bound_total)});
  table.AddRow({"ratio vs lease OPT", Fmt(report.RatioVsLeaseOpt(), 3)});
  table.AddRow({"worst edge ratio", Fmt(report.WorstEdgeRatio(), 3)});
  table.AddRow({"strictly consistent", report.strict_ok ? "yes" : "NO"});
  std::cout << table.ToString();
  if (!report.strict_ok) std::cout << "  " << report.strict_error << "\n";

  if (options.edges) {
    TextTable et({"edge (u,v)", "online", "opt", "epochs"});
    for (const EdgeReport& e : report.edges) {
      et.AddRow({"(" + std::to_string(e.u) + "," + std::to_string(e.v) + ")",
                 std::to_string(e.online_cost), std::to_string(e.opt_cost),
                 std::to_string(e.epochs)});
    }
    std::cout << et.ToString();
  }
  if (!options.csv.empty()) {
    std::ofstream out(options.csv);
    out << "u,v,online,opt,epochs\n";
    for (const EdgeReport& e : report.edges) {
      out << e.u << "," << e.v << "," << e.online_cost << "," << e.opt_cost
          << "," << e.epochs << "\n";
    }
    std::cout << "per-edge CSV written to " << options.csv << "\n";
  }
  return report.strict_ok ? 0 : 1;
}

int RunConcurrent(const CliOptions& options, const Tree& tree,
                  const RequestSequence& sigma) {
  ConcurrentSimulator::Options sim_options;
  const AggregateOp& op = OpByName(options.op);
  sim_options.op = &op;
  sim_options.min_delay = 1;
  sim_options.max_delay = 20;
  sim_options.seed = options.seed;
  ConcurrentSimulator sim(tree, PolicyBySpec(options.policy), sim_options);
  Rng rng(options.seed + 1);
  sim.Run(ScheduleWithGaps(sigma, 3, rng));
  const CheckResult causal = CheckCausalConsistency(
      sim.history(), sim.GhostStates(), op, tree.size());
  TextTable table({"metric", "value"});
  table.AddRow({"total messages", std::to_string(sim.trace().TotalMessages())});
  table.AddRow({"requests completed",
                sim.history().AllCompleted() ? "all" : "NOT ALL"});
  table.AddRow({"causally consistent", causal.ok ? "yes" : "NO"});
  std::cout << table.ToString();
  if (!causal.ok) std::cout << "  " << causal.message << "\n";
  return causal.ok ? 0 : 1;
}

int RunThreads(const CliOptions& options, const Tree& tree,
               const RequestSequence& sigma) {
  const AggregateOp& op = OpByName(options.op);
  ActorRuntime::Options rt_options;
  rt_options.op = &op;
  ActorRuntime rt(tree, PolicyBySpec(options.policy), rt_options);
  rt.Start();
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      rt.InjectCombine(r.node);
    } else {
      rt.InjectWrite(r.node, r.arg);
    }
  }
  rt.DrainAndStop();
  const CheckResult causal = CheckCausalConsistency(
      rt.history(), rt.GhostStates(), op, tree.size());
  const LatencyReport latency = LatencyFromHistory(rt.history());
  TextTable table({"metric", "value"});
  table.AddRow({"total messages", std::to_string(rt.MessagesSent())});
  table.AddRow({"requests completed",
                rt.history().AllCompleted() ? "all" : "NOT ALL"});
  table.AddRow({"causally consistent", causal.ok ? "yes" : "NO"});
  table.AddRow({"combines", std::to_string(latency.combines)});
  std::cout << table.ToString();
  if (!causal.ok) std::cout << "  " << causal.message << "\n";
  return causal.ok ? 0 : 1;
}

Tree LoadOrMakeTree(const CliOptions& options) {
  if (options.tree_file.empty()) {
    return MakeShape(options.shape, options.n, options.seed);
  }
  std::ifstream in(options.tree_file);
  if (!in) {
    throw std::invalid_argument("cannot open tree file " + options.tree_file);
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return TreeFromString(text);
}

RequestSequence LoadOrMakeWorkload(const CliOptions& options,
                                   const Tree& tree) {
  if (options.workload_file.empty()) {
    return MakeWorkload(options.workload, tree, options.len,
                        options.seed + 7);
  }
  std::ifstream in(options.workload_file);
  if (!in) {
    throw std::invalid_argument("cannot open workload file " +
                                options.workload_file);
  }
  RequestSequence sigma = ReadWorkload(in);
  for (const Request& r : sigma) {
    if (r.node >= tree.size()) {
      throw std::invalid_argument("workload references node " +
                                  std::to_string(r.node) +
                                  " outside the tree");
    }
  }
  return sigma;
}

// Timed counterpart for MLAP policies: generator names yield arrival
// ticks, and a --workload-file is read with the timed (v2) reader, which
// accepts plain v1 files too (requests then arrive one per tick).
TimedWorkload LoadOrMakeTimedWorkload(const CliOptions& options,
                                      const Tree& tree) {
  if (options.workload_file.empty()) {
    return MakeTimedWorkload(options.workload, tree, options.len,
                             options.seed + 7);
  }
  std::ifstream in(options.workload_file);
  if (!in) {
    throw std::invalid_argument("cannot open workload file " +
                                options.workload_file);
  }
  TimedWorkload timed = ReadTimedWorkload(in);
  for (const Request& r : timed.sigma) {
    if (r.node >= tree.size()) {
      throw std::invalid_argument("workload references node " +
                                  std::to_string(r.node) +
                                  " outside the tree");
    }
  }
  return timed;
}

// Applies the MLAP delay-and-batch transform to a timed workload and
// prints the plan's accounting, including the per-cell competitive ratio
// against the offline delay-cost optimum. Returns the batched sequence the
// mechanism should execute.
RequestSequence ApplyMlapTransform(const Tree& tree,
                                   const TimedWorkload& timed,
                                   const std::string& policy_spec) {
  const MlapParams params = ParseMlapSpec(policy_spec);
  MlapPlan plan = BuildMlapPlan(tree, timed.sigma, params, &timed.ticks);
  const MlapPricing pricing =
      PriceMlapPlan(tree, timed.sigma, params, plan, &timed.ticks);
  TextTable table({"mlap", "value"});
  table.AddRow({"variant", params.deadline_variant ? "deadline (mlap-d)"
                                                   : "delay (mlap)"});
  table.AddRow({"delay cost / tick", Fmt(params.delay_cost, 3)});
  table.AddRow({"combines served", std::to_string(plan.served)});
  table.AddRow({"mechanism flushes", std::to_string(plan.flushes)});
  table.AddRow({"total wait (ticks)", std::to_string(plan.total_wait)});
  table.AddRow({"modeled online cost", Fmt(pricing.online_cost, 1)});
  table.AddRow({"offline delay-cost OPT", Fmt(pricing.offline_opt, 1)});
  table.AddRow({"ratio vs offline OPT", Fmt(pricing.ratio, 3)});
  std::cout << table.ToString() << "\n";
  return std::move(plan.batched);
}

// --- sweep subcommand ---------------------------------------------------
//
//   treeagg_cli sweep [--shapes S1,S2] [--sizes N1,N2] [--workloads W1,W2]
//                     [--policies P1,P2] [--seeds X1,X2] [--faults F1,F2]
//                     [--len L] [--threads T] [--competitive] [--out FILE]
//
// Runs the cross product on a thread pool and writes the
// treeagg-sweep-v4 JSON report to --out (default: stdout).

// Splits a comma-separated list, but not inside parentheses, so policy
// specs like lease(1,3) survive: "RWW,lease(1,3),pull-all" is 3 items.
std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (const char c : csv) {
    if (c == '(') ++depth;
    if (c == ')' && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      if (!current.empty()) parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(std::move(current));
  return parts;
}

void PrintSweepUsage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " sweep [--shapes S1,S2,..] [--sizes N1,N2,..]"
         " [--workloads W1,..] [--policies P1,..] [--seeds X1,..]"
         " [--faults none,drops,..] [--len L] [--threads T]"
         " [--backend sim|net-local] [--competitive] [--out FILE]"
         " [--trace-out FILE]\n";
}

int SweepUsage(const char* argv0) {
  PrintSweepUsage(std::cerr, argv0);
  return 2;
}

int SweepMain(int argc, char** argv) {
  if (WantsHelp(argc, argv)) {
    PrintSweepUsage(std::cout, argv[0]);
    return 0;
  }
  SweepSpec spec;
  spec.shapes = {"kary2"};
  spec.sizes = {31};
  spec.workloads = {"mixed50"};
  spec.policies = {"RWW"};
  spec.seeds = {1};
  std::string out_file;
  std::string trace_file;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--competitive") {
      spec.competitive = true;
    } else if (arg == "--shapes" && (value = next())) {
      spec.shapes = SplitList(value);
    } else if (arg == "--sizes" && (value = next())) {
      spec.sizes.clear();
      for (const std::string& s : SplitList(value)) {
        spec.sizes.push_back(static_cast<NodeId>(std::stol(s)));
      }
    } else if (arg == "--workloads" && (value = next())) {
      spec.workloads = SplitList(value);
    } else if (arg == "--policies" && (value = next())) {
      spec.policies = SplitList(value);
    } else if (arg == "--seeds" && (value = next())) {
      spec.seeds.clear();
      for (const std::string& s : SplitList(value)) {
        spec.seeds.push_back(std::stoull(s));
      }
    } else if (arg == "--faults" && (value = next())) {
      spec.faults = SplitList(value);
    } else if (arg == "--len" && (value = next())) {
      spec.requests = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--threads" && (value = next())) {
      spec.threads = static_cast<int>(std::stol(value));
    } else if (arg == "--backend" && (value = next())) {
      spec.backend = value;
    } else if (arg == "--out" && (value = next())) {
      out_file = value;
    } else if (arg == "--trace-out" && (value = next())) {
      trace_file = value;
    } else {
      return SweepUsage(argv[0]);
    }
  }
  if (spec.shapes.empty() || spec.sizes.empty() || spec.workloads.empty() ||
      spec.policies.empty() || spec.seeds.empty() || spec.faults.empty()) {
    std::cerr << "error: sweep spec expands to zero cells (empty axis)\n";
    return 2;
  }
  if (spec.backend != "sim" && spec.backend != "net-local") {
    std::cerr << "error: bad --backend '" << spec.backend
              << "' (valid: sim, net-local)\n";
    return 2;
  }
  for (const std::string& policy : spec.policies) {
    if (!CheckPolicySpec(policy)) return 2;
  }
  const SweepResult result = RunSweep(spec);
  if (!trace_file.empty()) {
    // One span per cell, laid end to end on the serial timeline (cells run
    // in parallel; their individual start offsets are not recorded).
    obs::TraceEventSink sink;
    sink.NameProcess(1, "sweep");
    double ts = 0;
    for (const CellResult& c : result.cells) {
      const double dur = std::max(1.0, c.wall_seconds * 1e6);
      sink.CompleteEvent(
          c.spec.shape + "/" + std::to_string(c.spec.n) + "/" +
              c.spec.workload + "/" + c.spec.policy,
          "cell", 1, 0, ts, dur,
          {{"requests_per_sec", c.requests_per_sec},
           {"total_messages", static_cast<double>(c.total_messages)},
           {"ok", c.ok ? 1.0 : 0.0}});
      ts += dur;
    }
    if (!sink.WriteFile(trace_file)) {
      std::cerr << "error: cannot write trace to " << trace_file << "\n";
      return 2;
    }
    std::cerr << "trace written to " << trace_file << "\n";
  }
  if (out_file.empty()) {
    WriteSweepJson(std::cout, spec, result);
  } else {
    std::ofstream out(out_file);
    if (!out) {
      std::cerr << "error: cannot open " << out_file << "\n";
      return 2;
    }
    WriteSweepJson(out, spec, result);
    std::cerr << "sweep report written to " << out_file << "\n";
  }
  std::size_t failed = 0;
  for (const CellResult& c : result.cells) {
    if (!c.ok) {
      ++failed;
      std::cerr << "cell failed (" << c.spec.shape << "/" << c.spec.n << "/"
                << c.spec.workload << "/" << c.spec.policy << "): " << c.error
                << "\n";
    }
  }
  std::cerr << result.cells.size() << " cells, " << result.threads_used
            << " threads, " << result.wall_seconds << "s wall ("
            << (result.wall_seconds > 0
                    ? result.serial_seconds / result.wall_seconds
                    : 0.0)
            << "x vs serial)\n";
  return failed == 0 ? 0 : 1;
}

// --- serve subcommand ---------------------------------------------------

void PrintServeUsage(std::ostream& out) {
  out << "usage: treeagg_cli serve --cluster FILE --daemon ID"
         " [--state-dir DIR] [--snapshot-every N] [--ack-interval N]"
         " [--metrics-port P] [--reactors N] [--batch-bytes B]"
         " [--batch-flush-us U]"
         " (valid subcommands: run, sweep, serve, drive, chaos, query,"
         " place)\n";
}

int ServeUsage() {
  PrintServeUsage(std::cerr);
  return 2;
}

int ServeMain(int argc, char** argv) {
  if (WantsHelp(argc, argv)) {
    PrintServeUsage(std::cout);
    return 0;
  }
  std::string cluster_file;
  int daemon_id = -1;
  NodeDaemon::Options daemon_options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--cluster" && (value = next())) {
      cluster_file = value;
    } else if (arg == "--daemon" && (value = next())) {
      daemon_id = static_cast<int>(std::stol(value));
    } else if (arg == "--state-dir" && (value = next())) {
      daemon_options.durability.state_dir = value;
    } else if (arg == "--snapshot-every" && (value = next())) {
      daemon_options.durability.snapshot_interval_frames = std::stoull(value);
    } else if (arg == "--ack-interval" && (value = next())) {
      daemon_options.durability.ack_interval = std::stoull(value);
    } else if (arg == "--metrics-port" && (value = next())) {
      daemon_options.metrics_port = static_cast<int>(std::stol(value));
    } else if (arg == "--reactors" && (value = next())) {
      daemon_options.reactors = static_cast<int>(std::stol(value));
    } else if (arg == "--batch-bytes" && (value = next())) {
      daemon_options.transport.batch_bytes =
          static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--batch-flush-us" && (value = next())) {
      daemon_options.transport.batch_flush_us = std::stoll(value);
    } else {
      return ServeUsage();
    }
  }
  if (cluster_file.empty() || daemon_id < 0) return ServeUsage();
  std::ifstream in(cluster_file);
  if (!in) {
    std::cerr << "error: cannot open cluster file " << cluster_file << "\n";
    return 2;
  }
  const ClusterConfig config = ParseClusterConfig(in);
  NodeDaemon daemon(daemon_id, config, daemon_options);
  daemon.Bind();
  std::cerr << "daemon " << daemon_id << " listening on port "
            << daemon.BoundPort();
  if (!daemon_options.durability.state_dir.empty()) {
    std::cerr << " (state dir: " << daemon_options.durability.state_dir << ")";
  }
  std::cerr << "\n";
  if (daemon_options.metrics_port >= 0) {
    // Machine-readable (stdout, flushed before Run blocks): scrapers of a
    // --metrics-port 0 daemon learn the OS-assigned port from this line.
    std::cout << "metrics port " << daemon.MetricsPort() << std::endl;
  }
  daemon.Run();
  if (!daemon.error().empty()) {
    std::cerr << "error: " << daemon.error() << "\n";
    return 1;
  }
  return 0;
}

// --- drive subcommand ---------------------------------------------------

void PrintDriveUsage(std::ostream& out) {
  out << "usage: treeagg_cli drive (--cluster FILE | --net-local"
         " [--daemons N] [--placement block|rr|subtree] [--shape S] [--n N]"
         " [--policy P] [--op O] [--reactors N] [--batch-bytes B]"
         " [--batch-flush-us U] [--replace-after R]) [--workload W]"
         " [--len L] [--seed X]"
         " [--sequential] [--probe-via mechanism|snapshot]"
         " [--traffic-out FILE]"
         " [--trace-out FILE] (valid subcommands: run,"
         " sweep, serve, drive, chaos, query, place)\n";
}

int DriveUsage() {
  PrintDriveUsage(std::cerr);
  return 2;
}

int ReportNetRun(const History& history,
                 const std::vector<NodeGhostState>& ghosts,
                 const MessageCounts& counts, const AggregateOp& op,
                 NodeId num_nodes, double requests_per_sec,
                 const std::vector<query::ServedQuery>* queries = nullptr,
                 const CheckResult* query_check = nullptr) {
  const CheckResult causal =
      CheckCausalConsistency(history, ghosts, op, num_nodes);
  const LatencyReport latency = LatencyFromHistory(history);
  TextTable table({"metric", "value"});
  table.AddRow({"total messages", std::to_string(counts.total())});
  table.AddRow({"requests completed",
                history.AllCompleted() ? "all" : "NOT ALL"});
  table.AddRow({"causally consistent", causal.ok ? "yes" : "NO"});
  table.AddRow({"combines", std::to_string(latency.combines)});
  table.AddRow({"latency p50", Fmt(latency.combine_latency.p50, 1)});
  table.AddRow({"latency p95", Fmt(latency.combine_latency.p95, 1)});
  table.AddRow({"latency p99", Fmt(latency.combine_latency.p99, 1)});
  table.AddRow({"requests/sec", Fmt(requests_per_sec, 1)});
  bool queries_ok = true;
  if (queries != nullptr && query_check != nullptr) {
    queries_ok = query_check->ok;
    table.AddRow({"snapshot queries", std::to_string(queries->size())});
    table.AddRow({"query answers valid", queries_ok ? "yes" : "NO"});
  }
  std::cout << table.ToString();
  if (!causal.ok) std::cout << "  " << causal.message << "\n";
  if (!queries_ok) std::cout << "  " << query_check->message << "\n";
  return causal.ok && queries_ok ? 0 : 1;
}

int DriveMain(int argc, char** argv) {
  if (WantsHelp(argc, argv)) {
    PrintDriveUsage(std::cout);
    return 0;
  }
  std::string cluster_file;
  std::string trace_file;
  std::string traffic_file;
  bool net_local = false;
  LocalCluster::Options local;
  std::string shape = "kary2";
  NodeId n = 32;
  std::string workload = "mixed50";
  std::size_t len = 500;
  std::uint64_t seed = 1;
  bool sequential = false;
  std::string probe_via = "mechanism";
  std::size_t replace_after = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--net-local") {
      net_local = true;
    } else if (arg == "--sequential") {
      sequential = true;
    } else if (arg == "--probe-via" && (value = next())) {
      probe_via = value;
    } else if (arg == "--cluster" && (value = next())) {
      cluster_file = value;
    } else if (arg == "--daemons" && (value = next())) {
      local.daemons = static_cast<int>(std::stol(value));
    } else if (arg == "--placement" && (value = next())) {
      local.placement = value;
    } else if (arg == "--reactors" && (value = next())) {
      local.reactors = static_cast<int>(std::stol(value));
    } else if (arg == "--batch-bytes" && (value = next())) {
      local.transport.batch_bytes =
          static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--batch-flush-us" && (value = next())) {
      local.transport.batch_flush_us = std::stoll(value);
    } else if (arg == "--shape" && (value = next())) {
      shape = value;
    } else if (arg == "--n" && (value = next())) {
      n = static_cast<NodeId>(std::stol(value));
    } else if (arg == "--policy" && (value = next())) {
      local.policy = value;
    } else if (arg == "--op" && (value = next())) {
      local.op = value;
    } else if (arg == "--workload" && (value = next())) {
      workload = value;
    } else if (arg == "--len" && (value = next())) {
      len = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--seed" && (value = next())) {
      seed = std::stoull(value);
    } else if (arg == "--replace-after" && (value = next())) {
      replace_after = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--traffic-out" && (value = next())) {
      traffic_file = value;
    } else if (arg == "--trace-out" && (value = next())) {
      trace_file = value;
    } else {
      return DriveUsage();
    }
  }
  if (net_local == !cluster_file.empty()) return DriveUsage();
  // Live re-placement needs control of the daemons' lifecycle.
  if (replace_after > 0 && !net_local) return DriveUsage();
  if (probe_via != "mechanism" && probe_via != "snapshot") {
    return DriveUsage();
  }
  if (!CheckPolicySpec(local.policy)) return 2;
  const ProbeVia via =
      probe_via == "snapshot" ? ProbeVia::kSnapshot : ProbeVia::kMechanism;

  const auto maybe_write_trace = [&](const History& history,
                                     const std::string& backend) {
    if (trace_file.empty()) return;
    TraceExportOptions trace_options;
    trace_options.process_name = backend;
    if (WriteHistoryTraceFile(trace_file, history, trace_options)) {
      std::cerr << "trace written to " << trace_file << "\n";
    } else {
      std::cerr << "error: cannot write trace to " << trace_file << "\n";
    }
  };

  if (net_local) {
    const Tree tree = MakeShape(shape, n, seed);
    std::vector<NodeId> parent(static_cast<std::size_t>(tree.size()));
    for (NodeId u = 1; u < tree.size(); ++u) {
      parent[static_cast<std::size_t>(u)] = tree.RootedParent(u);
    }
    RequestSequence sigma;
    if (IsMlapSpec(local.policy)) {
      // The driver applies the delay-and-batch transform; daemons carry
      // the spec string but run the plain RWW mechanism, so nothing new
      // rides the wire.
      const TimedWorkload timed =
          MakeTimedWorkload(workload, tree, len, seed + 7);
      sigma = BuildMlapPlan(tree, timed.sigma,
                            ParseMlapSpec(local.policy), &timed.ticks)
                  .batched;
    } else {
      sigma = MakeWorkload(workload, tree, len, seed + 7);
    }
    std::cout << "tree: " << tree.Describe() << "\nworkload: " << workload
              << " x" << sigma.size() << ", policy: " << local.policy
              << ", op: " << local.op << ", daemons: " << local.daemons
              << " (" << local.placement << " placement, loopback TCP), "
              << (sequential ? "sequential" : "pipelined")
              << ", probes via " << probe_via << "\n\n";
    const NetRunResult result =
        RunNetWorkload(parent, sigma, local, sequential, via, replace_after);
    maybe_write_trace(result.history, "net-local");
    if (!traffic_file.empty()) {
      place::WriteTrafficFile(traffic_file, result.traffic);
      std::cerr << "traffic written to " << traffic_file << "\n";
    }
    if (replace_after > 0) {
      TextTable mt({"re-placement", "value"});
      mt.AddRow({"after requests", std::to_string(replace_after)});
      mt.AddRow({"nodes moved", std::to_string(result.nodes_moved)});
      mt.AddRow({"cross weight before",
                 std::to_string(result.cross_weight_before)});
      mt.AddRow({"cross weight after",
                 std::to_string(result.cross_weight_after)});
      std::cout << mt.ToString();
    }
    return ReportNetRun(result.history, result.ghosts, result.counts,
                        OpByName(local.op), tree.size(),
                        result.requests_per_sec,
                        via == ProbeVia::kSnapshot ? &result.queries : nullptr,
                        via == ProbeVia::kSnapshot ? &result.query_check
                                                   : nullptr);
  }

  std::ifstream in(cluster_file);
  if (!in) {
    std::cerr << "error: cannot open cluster file " << cluster_file << "\n";
    return 2;
  }
  const ClusterConfig config = ParseClusterConfig(in);
  const Tree tree(config.tree_parent);
  RequestSequence sigma;
  if (IsMlapSpec(config.policy)) {
    const TimedWorkload timed = MakeTimedWorkload(workload, tree, len,
                                                  seed + 7);
    sigma = BuildMlapPlan(tree, timed.sigma, ParseMlapSpec(config.policy),
                          &timed.ticks)
                .batched;
  } else {
    sigma = MakeWorkload(workload, tree, len, seed + 7);
  }
  NetDriver driver(config);
  driver.Connect();
  std::vector<query::ServedQuery> queries;
  std::int64_t query_serial = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine && via == ProbeVia::kSnapshot) {
      queries.push_back(query::ServedQuery{r.node, driver.QueryNode(r.node),
                                           query_serial++});
      continue;
    }
    const ReqId id = r.op == ReqType::kWrite
                         ? driver.InjectWrite(r.node, r.arg)
                         : driver.InjectCombine(r.node);
    if (sequential) {
      driver.WaitCompleted(id);
      driver.WaitQuiescent();
    }
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const NetDriver::HarvestResult harvest = driver.Harvest();
  if (!traffic_file.empty()) {
    place::WriteTrafficFile(traffic_file, driver.HarvestTraffic());
    std::cerr << "traffic written to " << traffic_file << "\n";
  }
  driver.Shutdown();
  maybe_write_trace(driver.history(), "net");
  CheckResult query_check = CheckResult::Ok();
  if (via == ProbeVia::kSnapshot) {
    query_check = query::ValidateQueryAnswers(
        driver.history(), harvest.ghosts, queries, OpByName(config.op));
  }
  return ReportNetRun(driver.history(), harvest.ghosts, harvest.counts,
                      OpByName(config.op), config.NumNodes(),
                      elapsed > 0 ? static_cast<double>(sigma.size()) / elapsed
                                  : 0.0,
                      via == ProbeVia::kSnapshot ? &queries : nullptr,
                      via == ProbeVia::kSnapshot ? &query_check : nullptr);
}

// --- chaos subcommand ---------------------------------------------------

std::string JoinPresetNames() {
  std::string joined;
  for (const std::string& name : FaultSchedule::PresetNames()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

void PrintChaosUsage(std::ostream& out) {
  out << "usage: treeagg_cli chaos [--backend sim|net-local]"
         " [--schedule PRESET|SPEC] [--shape S] [--n N] [--workload W]"
         " [--len L] [--seed X] [--policy P] [--op O]"
         " [--daemons N] [--placement block|rr] [--ack-interval N]"
         " [--trace-out FILE]"
         " (presets: "
      << JoinPresetNames()
      << "; spec grammar:"
         " seed=S;drop(P)@T0..T1;cut(U-V)@T0..T1;crash(U)@T0..T1;"
         "crashgroup(U1,U2,...)@T0..T1;sever(U->V)@T0..T1;"
         "gray(U:D0..D1)@T0..T1;lat(U-V:D0..D1)@T0..T1;...)"
         " (valid subcommands: run, sweep, serve, drive, chaos, query,"
         " place)\n";
}

int ChaosUsage() {
  PrintChaosUsage(std::cerr);
  return 2;
}

int ChaosMain(int argc, char** argv) {
  if (WantsHelp(argc, argv)) {
    PrintChaosUsage(std::cout);
    return 0;
  }
  std::string trace_file;
  std::string backend = "sim";
  std::string schedule_spec = "chaos";
  std::string shape = "kary2";
  NodeId n = 31;
  std::string workload = "mixed50";
  std::size_t len = 400;
  std::uint64_t seed = 1;
  std::string policy = "RWW";
  std::string op_name = "sum";
  int daemons = 3;
  std::string placement = "rr";
  std::uint64_t ack_interval = 16;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--backend" && (value = next())) {
      backend = value;
    } else if (arg == "--schedule" && (value = next())) {
      schedule_spec = value;
    } else if (arg == "--shape" && (value = next())) {
      shape = value;
    } else if (arg == "--n" && (value = next())) {
      n = static_cast<NodeId>(std::stol(value));
    } else if (arg == "--workload" && (value = next())) {
      workload = value;
    } else if (arg == "--len" && (value = next())) {
      len = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--seed" && (value = next())) {
      seed = std::stoull(value);
    } else if (arg == "--policy" && (value = next())) {
      policy = value;
    } else if (arg == "--op" && (value = next())) {
      op_name = value;
    } else if (arg == "--daemons" && (value = next())) {
      daemons = static_cast<int>(std::stol(value));
    } else if (arg == "--placement" && (value = next())) {
      placement = value;
    } else if (arg == "--ack-interval" && (value = next())) {
      ack_interval = std::stoull(value);
    } else if (arg == "--trace-out" && (value = next())) {
      trace_file = value;
    } else {
      return ChaosUsage();
    }
  }
  if (backend != "sim" && backend != "net-local") return ChaosUsage();
  if (!CheckPolicySpec(policy)) return 2;

  // An unknown preset (or malformed spec) must not fall through to the
  // generic top-level handler: name the valid presets so the fix is
  // obvious from the error alone.
  FaultSchedule schedule;
  try {
    schedule = FaultSchedule::Named(schedule_spec);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: bad --schedule '" << schedule_spec
              << "': " << e.what() << "\nvalid presets: " << JoinPresetNames()
              << "\n";
    return 2;
  }
  const Tree tree = MakeShape(shape, n, seed);
  RequestSequence sigma;
  if (IsMlapSpec(policy)) {
    const TimedWorkload timed = MakeTimedWorkload(workload, tree, len,
                                                  seed + 7);
    sigma = BuildMlapPlan(tree, timed.sigma, ParseMlapSpec(policy),
                          &timed.ticks)
                .batched;
  } else {
    sigma = MakeWorkload(workload, tree, len, seed + 7);
  }
  const AggregateOp& op = OpByName(op_name);

  std::cout << "tree: " << tree.Describe() << "\nworkload: " << workload
            << " x" << sigma.size() << ", policy: " << policy << ", op: "
            << op_name << ", backend: " << backend << "\nschedule: "
            << schedule.ToSpec() << "\n\n";

  ConvergenceReport report;
  std::uint64_t total_messages = 0;
  TextTable faults({"fault stat", "value"});
  // Combine latency in clock units (DES ticks / driver event order) — the
  // injected gray/WAN delay shows up here as a fattened tail.
  std::vector<std::int64_t> combine_lat;
  const auto harvest_latencies = [&](const History& history) {
    for (const RequestRecord& r : history.records()) {
      if (r.op == ReqType::kCombine && r.completed()) {
        combine_lat.push_back(r.completed_at - r.initiated_at);
      }
    }
    std::sort(combine_lat.begin(), combine_lat.end());
  };
  const auto percentile = [&](double p) -> std::int64_t {
    if (combine_lat.empty()) return 0;
    const std::size_t idx = std::min(
        combine_lat.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(combine_lat.size())));
    return combine_lat[idx];
  };
  const auto maybe_write_trace =
      [&](const History& history,
          std::vector<std::pair<std::int64_t, std::int64_t>> windows) {
        if (trace_file.empty()) return;
        TraceExportOptions trace_options;
        trace_options.process_name = "chaos-" + backend;
        trace_options.fault_windows = std::move(windows);
        if (WriteHistoryTraceFile(trace_file, history, trace_options)) {
          std::cerr << "trace written to " << trace_file << "\n";
        } else {
          std::cerr << "error: cannot write trace to " << trace_file << "\n";
        }
      };
  if (backend == "sim") {
    ChaosSimulator::Options sim_options;
    sim_options.op = &op;
    sim_options.seed = seed;
    sim_options.min_delay = 1;
    sim_options.max_delay = 4;
    ChaosSimulator sim(tree, PolicyBySpec(policy), schedule, sim_options);
    Rng gaps(seed + 1);
    const std::vector<ReqId> probes =
        sim.RunWithFinalProbes(ScheduleWithGaps(sigma, 3, gaps));
    ConvergenceOptions copts;
    copts.fault_windows = schedule.Windows();
    report = CheckConvergence(sim.history(), sim.GhostStates(), op,
                              tree.size(), probes, copts);
    total_messages = sim.trace().TotalMessages();
    harvest_latencies(sim.history());
    maybe_write_trace(sim.history(), schedule.Windows());
  } else {
    std::vector<NodeId> parent(static_cast<std::size_t>(tree.size()));
    for (NodeId u = 1; u < tree.size(); ++u) {
      parent[static_cast<std::size_t>(u)] = tree.RootedParent(u);
    }
    ChaosNetOptions net_options;
    net_options.cluster.daemons = daemons;
    net_options.cluster.placement = placement;
    net_options.cluster.policy = policy;
    net_options.cluster.op = op_name;
    net_options.cluster.durability.ack_interval = ack_interval;
    const ChaosNetResult result =
        RunChaosNetWorkload(parent, sigma, schedule, net_options);
    ConvergenceOptions copts;
    copts.fault_windows = result.fault_windows;
    // Crash re-injection is at-least-once; duplicated in-window combines
    // can fail the full-history causal check (see ConvergenceOptions).
    copts.require_full_causal = result.reinjected == 0;
    report = CheckConvergence(result.history, result.ghosts, op, tree.size(),
                              result.final_probe_ids, copts);
    total_messages = result.total_messages;
    faults.AddRow({"daemons killed+restarted", std::to_string(result.kills)});
    faults.AddRow({"peer links severed", std::to_string(result.severs)});
    faults.AddRow({"directions paused (sever)",
                   std::to_string(result.paused)});
    faults.AddRow({"frames corrupted", std::to_string(result.corrupted)});
    faults.AddRow({"frames delay-priced", std::to_string(result.delayed)});
    faults.AddRow({"frames held", std::to_string(result.frames_held)});
    faults.AddRow({"requests deferred", std::to_string(result.deferred)});
    faults.AddRow({"requests re-injected",
                   std::to_string(result.reinjected)});
    faults.AddRow({"replay-log high water",
                   std::to_string(result.replay_log_hwm)});
    harvest_latencies(result.history);
    maybe_write_trace(result.history, result.fault_windows);
  }

  TextTable table({"metric", "value"});
  table.AddRow({"total messages", std::to_string(total_messages)});
  table.AddRow({"requests completed", report.all_completed ? "all"
                                                           : "NOT ALL"});
  table.AddRow({"ground truth", Fmt(report.ground_truth, 6)});
  table.AddRow({"final probes", std::to_string(report.final_probes)});
  table.AddRow({"divergent probes", std::to_string(report.divergent_probes)});
  table.AddRow({"causal (full history)", report.causal_ok ? "yes" : "NO"});
  table.AddRow({"causal (outside windows)", report.outside_ok ? "yes"
                                                              : "NO"});
  table.AddRow({"combines excluded",
                std::to_string(report.excluded_combines)});
  table.AddRow({"combine latency p50 (clock)", std::to_string(percentile(.5))});
  table.AddRow({"combine latency p95 (clock)",
                std::to_string(percentile(.95))});
  table.AddRow({"combine latency p99 (clock)",
                std::to_string(percentile(.99))});
  table.AddRow({"converged", report.ok ? "yes" : "NO"});
  std::cout << table.ToString();
  if (backend == "net-local") std::cout << faults.ToString();
  if (!report.ok) std::cout << "  " << report.message << "\n";
  return report.ok ? 0 : 1;
}

// --- query subcommand ---------------------------------------------------

void PrintQueryUsage(std::ostream& out) {
  out << "usage: treeagg_cli query --cluster FILE --node U [--count N]"
         " (valid subcommands: run, sweep, serve, drive, chaos, query,"
         " place)\n";
}

int QueryUsage() {
  PrintQueryUsage(std::cerr);
  return 2;
}

int QueryMain(int argc, char** argv) {
  if (WantsHelp(argc, argv)) {
    PrintQueryUsage(std::cout);
    return 0;
  }
  std::string cluster_file;
  NodeId node = -1;
  int count = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--cluster" && (value = next())) {
      cluster_file = value;
    } else if (arg == "--node" && (value = next())) {
      node = static_cast<NodeId>(std::stol(value));
    } else if (arg == "--count" && (value = next())) {
      count = static_cast<int>(std::stol(value));
    } else {
      return QueryUsage();
    }
  }
  if (cluster_file.empty() || node < 0 || count < 1) return QueryUsage();
  std::ifstream in(cluster_file);
  if (!in) {
    std::cerr << "error: cannot open cluster file " << cluster_file << "\n";
    return 2;
  }
  const ClusterConfig config = ParseClusterConfig(in);
  QueryClient client(config);
  for (int i = 0; i < count; ++i) {
    const query::QueryAnswer answer = client.Query(node);
    std::cout << "node " << node << ": value " << Fmt(answer.value, 6)
              << " (epoch " << answer.epoch << ", log prefix "
              << answer.log_prefix << ")\n";
  }
  return 0;
}

// --- place subcommand ---------------------------------------------------

void PrintPlaceUsage(std::ostream& out) {
  out << "usage: treeagg_cli place --cluster FILE --traffic FILE"
         " [--capacity K] [--out NEWCLUSTER]"
         " (scores the current, rr, subtree, and traffic-optimized"
         " placements against the harvested per-edge traffic; --out writes"
         " a cluster file carrying the optimized map)"
         " (valid subcommands: run, sweep, serve, drive, chaos, query,"
         " place)\n";
}

int PlaceUsage() {
  PrintPlaceUsage(std::cerr);
  return 2;
}

int PlaceMain(int argc, char** argv) {
  if (WantsHelp(argc, argv)) {
    PrintPlaceUsage(std::cout);
    return 0;
  }
  std::string cluster_file;
  std::string traffic_file;
  std::string out_file;
  std::size_t capacity = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--cluster" && (value = next())) {
      cluster_file = value;
    } else if (arg == "--traffic" && (value = next())) {
      traffic_file = value;
    } else if (arg == "--capacity" && (value = next())) {
      capacity = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--out" && (value = next())) {
      out_file = value;
    } else {
      return PlaceUsage();
    }
  }
  if (cluster_file.empty() || traffic_file.empty()) return PlaceUsage();
  std::ifstream in(cluster_file);
  if (!in) {
    std::cerr << "error: cannot open cluster file " << cluster_file << "\n";
    return 2;
  }
  ClusterConfig config = ParseClusterConfig(in);
  const std::vector<std::uint64_t> traffic =
      place::ReadTrafficFile(traffic_file);
  if (traffic.size() != config.tree_parent.size()) {
    std::cerr << "error: traffic file covers " << traffic.size()
              << " nodes, cluster has " << config.tree_parent.size() << "\n";
    return 2;
  }
  const int daemons = config.NumDaemons();
  const place::PlacementPlan plan =
      place::OptimizePlacement(config.tree_parent, traffic, daemons, capacity);
  TextTable table({"placement", "cross weight", "cross edges"});
  const auto score = [&](const std::string& name,
                         const std::vector<int>& node_daemon) {
    table.AddRow({name,
                  std::to_string(place::CrossWeight(config.tree_parent,
                                                    traffic, node_daemon)),
                  std::to_string(place::CrossEdges(config.tree_parent,
                                                   node_daemon))});
  };
  score("current", config.node_daemon);
  score("rr", AssignNodes(config.tree_parent, daemons, "rr"));
  score("subtree", AssignNodes(config.tree_parent, daemons, "subtree"));
  score("optimized", plan.node_daemon);
  std::cout << table.ToString();
  if (!out_file.empty()) {
    config.node_daemon = plan.node_daemon;
    std::ofstream out(out_file);
    if (!out) {
      std::cerr << "error: cannot open " << out_file << "\n";
      return 2;
    }
    WriteClusterConfig(out, config);
    std::cout << "optimized cluster file written to " << out_file << "\n";
  }
  return 0;
}

void PrintTopUsage(std::ostream& out) {
  out << "usage: treeagg_cli [run|sweep|serve|drive|chaos|query|place]"
         " [flags]"
         " (valid subcommands: run, sweep, serve, drive, chaos, query,"
         " place; `treeagg_cli SUBCOMMAND --help` lists each one's flags)\n";
}

int TopUsage() {
  PrintTopUsage(std::cerr);
  return 2;
}

int Main(int argc, char** argv) {
  const std::string sub = argc > 1 ? argv[1] : "";
  if (IsHelpFlag(sub) || sub == "help") {
    PrintTopUsage(std::cout);
    return 0;
  }
  try {
    if (sub == "sweep") return SweepMain(argc, argv);
    if (sub == "serve") return ServeMain(argc, argv);
    if (sub == "drive") return DriveMain(argc, argv);
    if (sub == "chaos") return ChaosMain(argc, argv);
    if (sub == "query") return QueryMain(argc, argv);
    if (sub == "place") return PlaceMain(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  // Bare flags (or nothing) fall through to the single-process runner;
  // anything else that does not look like a flag is an unknown subcommand.
  int arg_offset = 0;
  if (sub == "run") {
    arg_offset = 1;
  } else if (!sub.empty() && sub[0] != '-') {
    return TopUsage();
  }
  if (WantsHelp(argc, argv, /*first=*/1 + arg_offset)) {
    PrintRunUsage(std::cout, argv[0]);
    return 0;
  }
  CliOptions options;
  if (!Parse(argc - arg_offset, argv + arg_offset, &options)) {
    return Usage(argv[0]);
  }
  if (!CheckPolicySpec(options.policy)) return 2;
  try {
    Tree tree = LoadOrMakeTree(options);
    const bool is_mlap = IsMlapSpec(options.policy);
    const TimedWorkload timed =
        is_mlap ? LoadOrMakeTimedWorkload(options, tree) : TimedWorkload{};
    const RequestSequence sigma =
        is_mlap ? timed.sigma : LoadOrMakeWorkload(options, tree);
    if (!options.save_workload.empty()) {
      std::ofstream out(options.save_workload);
      if (is_mlap) {
        WriteTimedWorkload(out, timed);  // keep the arrival ticks
      } else {
        WriteWorkload(out, sigma);
      }
      std::cout << "workload saved to " << options.save_workload << "\n";
    }
    std::cout << "tree: " << tree.Describe() << "\nworkload: "
              << options.workload << " x" << sigma.size()
              << ", policy: " << options.policy << ", op: " << options.op
              << ", mode: " << options.mode << "\n\n";
    if (is_mlap) {
      // Batch per the delay/deadline rule, then run the batched sequence
      // through the unmodified mechanism in whichever mode was asked for.
      const RequestSequence batched =
          ApplyMlapTransform(tree, timed, options.policy);
      if (options.mode == "seq") return RunSequential(options, tree, batched);
      if (options.mode == "concurrent") {
        return RunConcurrent(options, tree, batched);
      }
      if (options.mode == "threads") return RunThreads(options, tree, batched);
      std::cerr << "unknown mode " << options.mode << "\n";
      return 2;
    }
    if (options.mode == "seq") return RunSequential(options, tree, sigma);
    if (options.mode == "concurrent") {
      return RunConcurrent(options, tree, sigma);
    }
    if (options.mode == "threads") return RunThreads(options, tree, sigma);
    std::cerr << "unknown mode " << options.mode << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace
}  // namespace treeagg

int main(int argc, char** argv) { return treeagg::Main(argc, argv); }
