// Compile-time-checked no-op mirrors of the metrics API.
//
// Every type here exposes the exact call surface of its real counterpart
// in metrics.h, but every method is an empty inline body on an empty
// class. The static_asserts below make the zero-cost claim a property the
// compiler enforces rather than one a benchmark estimates: an empty class
// with empty inline methods generates no loads, no stores, and no calls
// at any optimization level, so a driver templated over the registry type
// (see tests/obs/noop_registry_test.cc, which instantiates the same
// generic exerciser against both registries) compiles the no-op flavor to
// the uninstrumented machine code.
//
// The hot paths in core/sim/runtime/net additionally keep the runtime
// off-switch — a null ProtocolMetrics*/TransportMetrics* bundle — so the
// sequential driver bench pays only a never-taken branch.
#ifndef TREEAGG_OBS_NOOP_H_
#define TREEAGG_OBS_NOOP_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace treeagg::obs {

struct NoopCounter {
  void Inc() noexcept {}
  void Add(std::uint64_t) noexcept {}
  static constexpr std::uint64_t Value() noexcept { return 0; }
};

struct NoopGauge {
  void Set(std::int64_t) noexcept {}
  void Add(std::int64_t) noexcept {}
  void MaxTo(std::int64_t) noexcept {}
  static constexpr std::int64_t Value() noexcept { return 0; }
};

struct NoopHistogram {
  void Observe(double) noexcept {}
  static HistogramSnapshot Snapshot() { return {}; }
};

// Same registration surface as MetricsRegistry; hands out pointers to
// shared empty instances (they carry no state, so sharing is harmless).
class NoopRegistry {
 public:
  static NoopCounter* AddCounter(const std::string&, const std::string&,
                                 std::vector<Label> = {}) {
    static NoopCounter c;
    return &c;
  }
  static NoopGauge* AddGauge(const std::string&, const std::string&,
                             std::vector<Label> = {}) {
    static NoopGauge g;
    return &g;
  }
  static NoopHistogram* AddHistogram(const std::string&, const std::string&,
                                     const std::vector<double>&,
                                     std::vector<Label> = {}) {
    static NoopHistogram h;
    return &h;
  }
  static std::string RenderPrometheus() { return ""; }
  static constexpr std::uint64_t SumCounters(const std::string&) { return 0; }
};

// The zero-cost claim, compiler-enforced.
static_assert(std::is_empty_v<NoopCounter>,
              "NoopCounter must carry no state");
static_assert(std::is_empty_v<NoopGauge>, "NoopGauge must carry no state");
static_assert(std::is_empty_v<NoopHistogram>,
              "NoopHistogram must carry no state");
static_assert(std::is_empty_v<NoopRegistry>,
              "NoopRegistry must carry no state");
static_assert(std::is_trivially_destructible_v<NoopRegistry>,
              "NoopRegistry must cost nothing to tear down");

}  // namespace treeagg::obs

#endif  // TREEAGG_OBS_NOOP_H_
