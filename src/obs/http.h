// Minimal HTTP/1.1 request parsing and response building for the
// /metrics endpoint.
//
// This is deliberately not a web server: the daemon's poll loop reads
// whatever bytes arrive on an accepted connection, calls ParseHttpRequest
// until a full request head is buffered, answers every request already
// buffered (scrapers on slow links deliver heads in pieces and sometimes
// pipeline several GETs into one segment), and closes. Bodies are ignored
// (GET has none), keep-alive is not offered (Connection: close on every
// response), and anything that is not a well-formed request line earns a
// 400.
#ifndef TREEAGG_OBS_HTTP_H_
#define TREEAGG_OBS_HTTP_H_

#include <string>
#include <string_view>

namespace treeagg::obs {

struct HttpRequest {
  std::string method;  // e.g. "GET"
  std::string target;  // e.g. "/metrics"
};

enum class HttpParse {
  kNeedMore,  // no terminating CRLFCRLF yet; read more bytes
  kOk,        // parsed; `out` is filled
  kBad,       // malformed request line; answer 400 and close
};

// Parses the first request head out of `data` (everything buffered so
// far). On kOk, *consumed (when non-null) is the head's length including
// its blank-line terminator — the caller erases that prefix to reach the
// next pipelined request.
HttpParse ParseHttpRequest(std::string_view data, HttpRequest* out,
                           std::size_t* consumed = nullptr);

// Builds a complete HTTP/1.1 response with Content-Length and
// Connection: close. `status` must be one of 200, 400, 404, 405.
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body);

// The standard Prometheus exposition content type.
inline constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace treeagg::obs

#endif  // TREEAGG_OBS_HTTP_H_
