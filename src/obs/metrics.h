// Lock-free metrics primitives: monotonic counters, gauges, and
// fixed-bucket latency histograms.
//
// All mutators are single atomic RMW operations with relaxed ordering —
// metrics are statistical, not synchronization: a scrape may observe a
// counter incremented by a message whose side effects are not yet visible,
// and that is fine. What must hold (and what the TSan job checks) is that
// concurrent recording from N threads loses no increments and that
// snapshots taken during recording are internally consistent enough to
// render (bucket counts may trail `count` by in-flight observations).
//
// The no-op mirrors in noop.h expose the same call surface as these types
// but are empty classes; static_asserts there make "disabled instrumentation
// costs nothing" a compile-time fact instead of a benchmark hope.
#ifndef TREEAGG_OBS_METRICS_H_
#define TREEAGG_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace treeagg::obs {

// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc() noexcept { v_.fetch_add(1, std::memory_order_relaxed); }
  void Add(std::uint64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Instantaneous level (queue depth, replay-log length). Signed so that
// paired Add(+1)/Add(-1) from different threads cannot wrap through zero.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  // Raises the gauge to `v` if below it (high-water marks).
  void MaxTo(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t Value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Point-in-time copy of a histogram, plus the quantile math shared with
// analysis::Summarize (same tail percentiles: p50/p90/p95/p99).
struct HistogramSnapshot {
  std::vector<double> bounds;          // bucket upper bounds, ascending
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (+Inf bucket)
  std::uint64_t count = 0;
  double sum = 0;

  // Quantile estimate by linear interpolation inside the owning bucket
  // (the +Inf bucket clamps to its lower bound). q in [0, 1].
  double Quantile(double q) const;
};

// Fixed-bucket histogram. Bucket bounds are set at construction and never
// change, so Observe is two relaxed RMWs plus a CAS-loop sum update — no
// locks, no allocation, safe from any thread.
class Histogram {
 public:
  // `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) noexcept;
  HistogramSnapshot Snapshot() const;

  // 1us .. ~100s in exponential steps: the default for latency-in-
  // milliseconds series across backends.
  static std::vector<double> DefaultLatencyBoundsMs();

 private:
  const std::vector<double> bounds_;
  const std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

// A metric label (Prometheus key/value pair).
using Label = std::pair<std::string, std::string>;

class MetricsRegistry;

// --- Hot-path metric groups ---------------------------------------------
// Plain pointer bundles handed to the instrumented objects. A null bundle
// pointer (the default everywhere) disables instrumentation entirely; the
// sequential driver and the benches never construct one.

// Message-kind index space. Mirrors core MsgType declaration order
// (probe, response, update, release) — the Figure 2 cost categories —
// without obs depending on core.
inline constexpr int kMsgKinds = 4;
inline constexpr const char* kMsgKindNames[kMsgKinds] = {
    "probe", "response", "update", "release"};

// LeaseNode instrumentation: sends/receives by message kind plus lease
// grant (response carrying flag=true) and revoke (release sent) counts.
struct ProtocolMetrics {
  Counter* sent[kMsgKinds] = {nullptr, nullptr, nullptr, nullptr};
  Counter* recv[kMsgKinds] = {nullptr, nullptr, nullptr, nullptr};
  Counter* lease_grants = nullptr;
  Counter* lease_revokes = nullptr;

  // Registers the full family under treeagg_node_* with `base` labels.
  static ProtocolMetrics Register(MetricsRegistry& reg,
                                  std::vector<Label> base = {});
};

// FrameConn instrumentation (both directions plus failure modes).
struct TransportMetrics {
  Counter* bytes_sent = nullptr;
  Counter* frames_sent = nullptr;
  Counter* bytes_received = nullptr;
  Counter* frames_received = nullptr;
  Counter* reconnects = nullptr;
  Counter* backpressure_stalls = nullptr;
  // Batching efficiency (wire v4): messages-per-frame is
  // messages_sent / protocol_frames_sent, frames-per-syscall is
  // frames_sent / send_syscalls. Without batching both ratios sit at ~1.
  Counter* send_syscalls = nullptr;       // ::send calls issued
  Counter* recv_syscalls = nullptr;       // ::recv calls issued
  Counter* messages_sent = nullptr;       // protocol messages enqueued
  Counter* messages_received = nullptr;   // protocol messages decoded
  Counter* protocol_frames_sent = nullptr;  // kProtocol + kBatch frames

  static TransportMetrics Register(MetricsRegistry& reg,
                                   std::vector<Label> base = {});
};

// Snapshot-query-tier instrumentation (daemon-side serving). Reads are
// off-ledger — they never touch the Figure-2 message counters above — so
// they get their own family.
struct QueryMetrics {
  Counter* queries_served = nullptr;   // kQueryResp answers produced
  Counter* read_retries = nullptr;     // seqlock read attempts that lost
  Histogram* serve_latency_ms = nullptr;  // decode -> answer enqueued

  static QueryMetrics Register(MetricsRegistry& reg,
                               std::vector<Label> base = {});
};

// --- Registry ------------------------------------------------------------
// Owns the metric objects; hands out stable pointers. Registration takes a
// mutex; the returned objects are lock-free and remain valid for the
// registry's lifetime (deque storage, no reallocation of elements).
// Rendering walks the same structures with atomic loads, so scraping
// concurrently with recording is safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* AddCounter(std::string name, std::string help,
                      std::vector<Label> labels = {});
  Gauge* AddGauge(std::string name, std::string help,
                  std::vector<Label> labels = {});
  Histogram* AddHistogram(std::string name, std::string help,
                          std::vector<double> bounds,
                          std::vector<Label> labels = {});

  // Prometheus text exposition format 0.0.4.
  std::string RenderPrometheus() const;

  // Sums the values of every counter whose name matches exactly,
  // across all label sets. Used by report writers and tests.
  std::uint64_t SumCounters(const std::string& name) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string help;  // empty after the first entry of a family
    std::vector<Label> labels;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;
};

}  // namespace treeagg::obs

#endif  // TREEAGG_OBS_METRICS_H_
