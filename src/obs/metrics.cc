#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace treeagg::obs {

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), matching the nearest-rank
  // convention of analysis::Summarize.
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double lo_count = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    if (i >= bounds.size()) return lo;  // +Inf bucket: clamp to lower bound
    const double hi = bounds[i];
    const double frac = (rank - lo_count) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) noexcept {
  const std::size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double b = 0.001; b <= 1e5; b *= 4) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::AddCounter(std::string name, std::string help,
                                     std::vector<Label> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Counter* c = &counters_.emplace_back();
  entries_.push_back(Entry{Kind::kCounter, std::move(name), std::move(help),
                           std::move(labels), c, nullptr, nullptr});
  return c;
}

Gauge* MetricsRegistry::AddGauge(std::string name, std::string help,
                                 std::vector<Label> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Gauge* g = &gauges_.emplace_back();
  entries_.push_back(Entry{Kind::kGauge, std::move(name), std::move(help),
                           std::move(labels), nullptr, g, nullptr});
  return g;
}

Histogram* MetricsRegistry::AddHistogram(std::string name, std::string help,
                                         std::vector<double> bounds,
                                         std::vector<Label> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram* h = &histograms_.emplace_back(std::move(bounds));
  entries_.push_back(Entry{Kind::kHistogram, std::move(name), std::move(help),
                           std::move(labels), nullptr, nullptr, h});
  return h;
}

std::uint64_t MetricsRegistry::SumCounters(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Entry& e : entries_) {
    if (e.kind == Kind::kCounter && e.name == name) total += e.counter->Value();
  }
  return total;
}

ProtocolMetrics ProtocolMetrics::Register(MetricsRegistry& reg,
                                          std::vector<Label> base) {
  ProtocolMetrics m;
  for (int k = 0; k < kMsgKinds; ++k) {
    std::vector<Label> labels = base;
    labels.emplace_back("kind", kMsgKindNames[k]);
    m.sent[k] = reg.AddCounter("treeagg_node_messages_sent_total",
                               "Protocol messages sent, by Message kind "
                               "(the Figure 2 cost categories).",
                               labels);
    m.recv[k] = reg.AddCounter("treeagg_node_messages_received_total",
                               "Protocol messages delivered, by Message kind.",
                               std::move(labels));
  }
  m.lease_grants =
      reg.AddCounter("treeagg_node_lease_grants_total",
                     "Leases granted (responses sent with flag=true).", base);
  m.lease_revokes =
      reg.AddCounter("treeagg_node_lease_revokes_total",
                     "Leases revoked (release messages sent).", std::move(base));
  return m;
}

TransportMetrics TransportMetrics::Register(MetricsRegistry& reg,
                                            std::vector<Label> base) {
  TransportMetrics m;
  m.bytes_sent = reg.AddCounter("treeagg_transport_bytes_sent_total",
                                "Framed bytes flushed to the socket.", base);
  m.frames_sent = reg.AddCounter("treeagg_transport_frames_sent_total",
                                 "Wire frames enqueued for send.", base);
  m.bytes_received =
      reg.AddCounter("treeagg_transport_bytes_received_total",
                     "Bytes drained from the socket.", base);
  m.frames_received =
      reg.AddCounter("treeagg_transport_frames_received_total",
                     "Complete wire frames parsed from the stream.", base);
  m.reconnects = reg.AddCounter("treeagg_transport_reconnects_total",
                                "Connection (re)establishment attempts.", base);
  m.backpressure_stalls = reg.AddCounter(
      "treeagg_transport_backpressure_stalls_total",
      "Sends rejected because the write buffer hit its cap.", base);
  m.send_syscalls = reg.AddCounter("treeagg_transport_send_syscalls_total",
                                   "send(2) calls issued while flushing.",
                                   base);
  m.recv_syscalls = reg.AddCounter("treeagg_transport_recv_syscalls_total",
                                   "recv(2) calls issued while draining.",
                                   base);
  m.messages_sent =
      reg.AddCounter("treeagg_transport_messages_sent_total",
                     "Protocol messages enqueued toward a peer (batched "
                     "messages count individually).",
                     base);
  m.messages_received =
      reg.AddCounter("treeagg_transport_messages_received_total",
                     "Protocol messages decoded from the stream (kBatch "
                     "frames expand to their element count).",
                     base);
  m.protocol_frames_sent = reg.AddCounter(
      "treeagg_transport_protocol_frames_sent_total",
      "Wire frames carrying protocol messages (kProtocol or kBatch); "
      "messages_sent / protocol_frames_sent is the batching win.",
      std::move(base));
  return m;
}

QueryMetrics QueryMetrics::Register(MetricsRegistry& reg,
                                    std::vector<Label> base) {
  QueryMetrics m;
  m.queries_served =
      reg.AddCounter("treeagg_query_served_total",
                     "Snapshot queries answered from the read tier.", base);
  m.read_retries = reg.AddCounter(
      "treeagg_query_read_retries_total",
      "Seqlock read attempts that observed a publish in flight and retried.",
      base);
  m.serve_latency_ms = reg.AddHistogram(
      "treeagg_query_serve_latency_ms",
      "Time from query-frame decode to answer enqueue, in milliseconds.",
      Histogram::DefaultLatencyBoundsMs(), std::move(base));
  return m;
}

}  // namespace treeagg::obs
