// Chrome trace-event JSON emission (the `about://tracing` / Perfetto
// "JSON Array Format" with a traceEvents wrapper object).
//
// One sink collects events from any backend — the sequential simulator,
// the DES, the actor runtime, or a daemon cluster — in a unified shape:
//   - complete events (ph "X"): one span per request, initiation ->
//     completion, on the initiating node's track;
//   - instant events (ph "i"): faults, crashes, restarts, link severs.
// pid groups tracks (backend or daemon), tid is the node id, timestamps
// are microseconds. Traces from two backends driven by the same workload
// line up event-for-event, so the backends can be diffed visually.
#ifndef TREEAGG_OBS_TRACE_EVENT_H_
#define TREEAGG_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace treeagg::obs {

class TraceEventSink {
 public:
  TraceEventSink() = default;
  TraceEventSink(const TraceEventSink&) = delete;
  TraceEventSink& operator=(const TraceEventSink&) = delete;

  using NumArgs = std::vector<std::pair<std::string, double>>;
  using StrArgs = std::vector<std::pair<std::string, std::string>>;

  // ph "X": a span [ts_us, ts_us + dur_us] on track (pid, tid).
  void CompleteEvent(std::string name, std::string category,
                     std::int64_t pid, std::int64_t tid, double ts_us,
                     double dur_us, NumArgs num_args = {},
                     StrArgs str_args = {});

  // ph "i" with global scope: a moment-in-time marker.
  void InstantEvent(std::string name, std::string category, std::int64_t pid,
                    std::int64_t tid, double ts_us, NumArgs num_args = {},
                    StrArgs str_args = {});

  // ph "M" metadata: names a pid track ("process_name") so about://tracing
  // shows "sim" / "daemon 2" instead of bare numbers.
  void NameProcess(std::int64_t pid, std::string name);

  std::size_t size() const;

  // Writes `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
  void WriteJson(std::ostream& out) const;
  // Convenience: WriteJson to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  struct Event {
    char ph;
    std::string name;
    std::string category;
    std::int64_t pid;
    std::int64_t tid;
    double ts_us;
    double dur_us;  // ph "X" only
    NumArgs num_args;
    StrArgs str_args;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// JSON string escaping (shared with the sweep report writer's needs).
std::string EscapeJson(std::string_view s);

}  // namespace treeagg::obs

#endif  // TREEAGG_OBS_TRACE_EVENT_H_
