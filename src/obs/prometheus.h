// Prometheus text exposition format 0.0.4 rendering.
//
// The renderer lives behind MetricsRegistry::RenderPrometheus(); this
// header only exposes the small formatting helpers so tests and the
// grep-based CI checker have a single definition of "well-formed" to
// agree on.
#ifndef TREEAGG_OBS_PROMETHEUS_H_
#define TREEAGG_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace treeagg::obs {

// Escapes a HELP string or label value per the exposition format
// (backslash, newline, and — for label values — double quote).
std::string EscapePrometheus(std::string_view s, bool label_value);

// Renders `{k1="v1",k2="v2"}`, or "" when `labels` is empty.
std::string RenderLabels(const std::vector<Label>& labels);

// Formats a double the way the exposition format expects: "+Inf"/"-Inf"/
// "NaN" for non-finite values, shortest-round-trip decimal otherwise.
std::string RenderValue(double v);

}  // namespace treeagg::obs

#endif  // TREEAGG_OBS_PROMETHEUS_H_
