#include "obs/prometheus.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace treeagg::obs {

std::string EscapePrometheus(std::string_view s, bool label_value) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        if (label_value) {
          out += "\\\"";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLabels(const std::vector<Label>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapePrometheus(labels[i].second, /*label_value=*/true);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string RenderValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

// Appends labels plus one extra `le` pair (histogram bucket lines).
std::string LabelsWithLe(const std::vector<Label>& labels,
                         const std::string& le) {
  std::vector<Label> all = labels;
  all.emplace_back("le", le);
  return RenderLabels(all);
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  // The exposition format requires every sample of a family to form one
  // contiguous group under a single HELP/TYPE header. Registration order
  // interleaves families (ProtocolMetrics::Register alternates sent/recv),
  // so render family by family: for each name, in first-appearance order,
  // emit the header and then every entry bearing that name.
  std::vector<std::string> seen;
  auto first_of_family = [&](const std::string& name) {
    for (const std::string& s : seen) {
      if (s == name) return false;
    }
    seen.push_back(name);
    return true;
  };
  for (const Entry& first : entries_) {
    if (!first_of_family(first.name)) continue;
    const char* type = first.kind == Kind::kCounter ? "counter"
                       : first.kind == Kind::kGauge ? "gauge"
                                                    : "histogram";
    out << "# HELP " << first.name << " "
        << EscapePrometheus(first.help, /*label_value=*/false) << "\n";
    out << "# TYPE " << first.name << " " << type << "\n";
    for (const Entry& e : entries_) {
      if (e.name != first.name) continue;
      switch (e.kind) {
        case Kind::kCounter:
          out << e.name << RenderLabels(e.labels) << " " << e.counter->Value()
              << "\n";
          break;
        case Kind::kGauge:
          out << e.name << RenderLabels(e.labels) << " " << e.gauge->Value()
              << "\n";
          break;
        case Kind::kHistogram: {
          const HistogramSnapshot snap = e.histogram->Snapshot();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cumulative += snap.counts[i];
            out << e.name << "_bucket"
                << LabelsWithLe(e.labels, RenderValue(snap.bounds[i])) << " "
                << cumulative << "\n";
          }
          // Derive the total from the buckets themselves so the rendered
          // family is internally consistent even if `count` trails an
          // in-flight Observe between the two loads.
          cumulative += snap.counts.back();
          out << e.name << "_bucket" << LabelsWithLe(e.labels, "+Inf") << " "
              << cumulative << "\n";
          out << e.name << "_sum" << RenderLabels(e.labels) << " "
              << RenderValue(snap.sum) << "\n";
          out << e.name << "_count" << RenderLabels(e.labels) << " "
              << cumulative << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

}  // namespace treeagg::obs
