#include "obs/trace_event.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace treeagg::obs {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void TraceEventSink::CompleteEvent(std::string name, std::string category,
                                   std::int64_t pid, std::int64_t tid,
                                   double ts_us, double dur_us,
                                   NumArgs num_args, StrArgs str_args) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'X', std::move(name), std::move(category), pid, tid,
                          ts_us, dur_us, std::move(num_args),
                          std::move(str_args)});
}

void TraceEventSink::InstantEvent(std::string name, std::string category,
                                  std::int64_t pid, std::int64_t tid,
                                  double ts_us, NumArgs num_args,
                                  StrArgs str_args) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'i', std::move(name), std::move(category), pid, tid,
                          ts_us, 0, std::move(num_args),
                          std::move(str_args)});
}

void TraceEventSink::NameProcess(std::int64_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'M', "process_name", "__metadata", pid, 0, 0, 0,
                          {},
                          {{"name", std::move(name)}}});
}

std::size_t TraceEventSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

namespace {

void WriteNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "0";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

void TraceEventSink::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << EscapeJson(e.name) << "\",\"cat\":\""
        << EscapeJson(e.category) << "\",\"ph\":\"" << e.ph
        << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"ts\":";
    WriteNumber(out, e.ts_us);
    if (e.ph == 'X') {
      out << ",\"dur\":";
      WriteNumber(out, e.dur_us);
    }
    if (e.ph == 'i') out << ",\"s\":\"g\"";
    if (!e.num_args.empty() || !e.str_args.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.num_args) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << EscapeJson(k) << "\":";
        WriteNumber(out, v);
      }
      for (const auto& [k, v] : e.str_args) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << EscapeJson(k) << "\":\"" << EscapeJson(v) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool TraceEventSink::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteJson(out);
  return static_cast<bool>(out);
}

}  // namespace treeagg::obs
