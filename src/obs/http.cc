#include "obs/http.h"

#include <sstream>

namespace treeagg::obs {

HttpParse ParseHttpRequest(std::string_view data, HttpRequest* out,
                           std::size_t* consumed) {
  // A request head ends at the first blank line. Accept bare-LF line
  // endings too (curl never sends them, but humans with netcat do).
  const std::size_t head_end = data.find("\r\n\r\n");
  const std::size_t lf_end = data.find("\n\n");
  if (head_end == std::string_view::npos && lf_end == std::string_view::npos) {
    // Bound the buffer we are willing to accumulate for a request head.
    return data.size() > 16 * 1024 ? HttpParse::kBad : HttpParse::kNeedMore;
  }
  if (consumed != nullptr) {
    // Whichever terminator appears first ends this head.
    *consumed = (head_end != std::string_view::npos &&
                 (lf_end == std::string_view::npos || head_end < lf_end))
                    ? head_end + 4
                    : lf_end + 2;
  }
  const std::size_t line_end = data.find_first_of("\r\n");
  std::string_view line = data.substr(0, line_end);
  // Request line: METHOD SP TARGET SP VERSION
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return HttpParse::kBad;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return HttpParse::kBad;
  std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return HttpParse::kBad;
  out->method = std::string(line.substr(0, sp1));
  out->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  return HttpParse::kOk;
}

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body) {
  const char* reason = "OK";
  switch (status) {
    case 200:
      reason = "OK";
      break;
    case 400:
      reason = "Bad Request";
      break;
    case 404:
      reason = "Not Found";
      break;
    case 405:
      reason = "Method Not Allowed";
      break;
    default:
      reason = "Internal Server Error";
      break;
  }
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n"
      << "\r\n"
      << body;
  return out.str();
}

}  // namespace treeagg::obs
