// Parallel experiment-sweep engine.
//
// A sweep is the cross product of tree shapes x sizes x workloads x
// policies x replicate seeds. Every cell is an independent sequential
// experiment (build tree, build workload, run the driver to quiescence,
// collect message counts), so cells fan out across a thread pool with no
// shared mutable state: a worker claims cell indices from one atomic
// counter and writes each finished CellResult into its preassigned slot.
//
// Determinism: a cell's RNG seeds are derived by hashing the cell's own
// identity (shape, size, workload, policy, replicate seed) — never from
// the cell's position in the run order or the thread that executes it —
// so a sweep's results are a pure function of its SweepSpec. Running with
// 1 thread or N threads produces identical cells; only the timing fields
// differ. The sweep_test pins exactly that.
#ifndef TREEAGG_EXP_SWEEP_H_
#define TREEAGG_EXP_SWEEP_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/stats.h"
#include "common/types.h"
#include "sim/trace.h"

namespace treeagg {

struct SweepSpec {
  std::vector<std::string> shapes;     // MakeShape names
  std::vector<NodeId> sizes;           // nodes per tree
  std::vector<std::string> workloads;  // MakeWorkload names
  std::vector<std::string> policies;   // PolicyBySpec strings
  std::vector<std::uint64_t> seeds;    // replicate seeds
  // Fault-schedule axis: FaultSchedule::Named presets or spec strings.
  // "none" (the default) runs the plain sequential driver; any other value
  // runs the cell on the ChaosSimulator and checks convergence.
  std::vector<std::string> faults = {"none"};
  std::size_t requests = 1000;         // workload length per cell
  bool competitive = false;  // also compute the offline Section 4 bounds
  int threads = 1;           // 0 = std::thread::hardware_concurrency()
  // Execution backend for every cell: "sim" (the sequential in-process
  // driver, the default) or "net-local" (a loopback-TCP LocalCluster per
  // cell, driven sequentially — the same wire the daemons speak). The
  // backend is NOT folded into the derived cell seeds, so a cell's tree
  // and workload are identical on both backends by construction.
  std::string backend = "sim";
};

// One point of the cross product, with its derived per-cell RNG seeds.
struct CellSpec {
  std::string shape;
  NodeId n = 0;
  std::string workload;
  std::string policy;
  std::size_t requests = 0;
  // Fault schedule ("none" = fault-free). Folded into the derived seeds
  // ONLY when not "none", so adding the fault axis leaves every existing
  // fault-free cell's seeds — and therefore its results — untouched.
  std::string fault = "none";
  std::uint64_t seed = 0;           // the replicate seed from SweepSpec
  std::uint64_t tree_seed = 0;      // derived: hash of identity
  std::uint64_t workload_seed = 0;  // derived: independent hash of identity
  // Execution backend (from SweepSpec::backend); not part of the seed
  // derivation, so sim and net-local cells see identical instances.
  std::string backend = "sim";
};

// Per-cell accounting for MLAP (delay-and-batch) policy cells: the plan's
// batching statistics and its modeled cost priced against the offline
// delay-cost optimum (offline/mlap_dp.h).
struct MlapCellStats {
  double delay_cost = 1.0;
  bool deadline = false;            // true for the mlap-d variant
  std::int64_t flushes = 0;         // mechanism combines issued
  std::int64_t served = 0;          // combine requests served
  std::int64_t total_wait = 0;      // sum of per-request waits (ticks)
  SummaryStats wait;                // per-request wait distribution
  double online_cost = 0;           // modeled service + delay cost
  double offline_opt = 0;           // per-node offline batching optimum
  double ratio = 1;                 // online / offline
};

struct CellResult {
  CellSpec spec;
  MessageCounts counts;  // zero breakdown in competitive mode (totals only)
  std::int64_t total_messages = 0;
  // Combine-latency distribution (driver clock units: events between
  // initiation and completion). Zeros in competitive mode, which reports
  // message bounds only.
  SummaryStats latency;
  double wall_seconds = 0;       // this cell alone
  double requests_per_sec = 0;
  // Filled only when SweepSpec::competitive:
  double ratio_vs_lease_opt = 0;
  double ratio_vs_nice_bound = 0;
  double worst_edge_ratio = 0;
  bool strict_ok = true;
  // Fault cells only (spec.fault != "none"): the ConvergenceChecker's
  // verdict. Fault-free cells keep the default true.
  bool converged = true;
  // MLAP cells only (policy "mlap"/"mlap-d" specs): batching stats and the
  // per-cell competitive ratio vs the offline delay-cost optimum.
  bool has_mlap = false;
  MlapCellStats mlap;
  // Per-cell failure capture: a throwing cell (bad spec, etc.) is reported
  // instead of tearing down the sweep.
  bool ok = true;
  std::string error;
};

struct SweepResult {
  std::vector<CellResult> cells;  // cross-product order, stable
  int threads_used = 1;
  double wall_seconds = 0;        // whole sweep, wall clock
  // Sum of per-cell wall times: the serial cost of the same work, used to
  // report the realized parallel speedup (serial_seconds / wall_seconds).
  double serial_seconds = 0;
};

// The cross product in deterministic order (shapes, then sizes, then
// workloads, then policies, then seeds; innermost varies fastest), with
// per-cell seeds derived. Exposed separately so callers can inspect or
// shard the cell list.
std::vector<CellSpec> ExpandCells(const SweepSpec& spec);

// Runs one cell. Pure function of the CellSpec; never throws (failures
// are captured in the result).
CellResult RunCell(const CellSpec& cell, bool competitive);

// Runs the whole sweep across spec.threads workers.
SweepResult RunSweep(const SweepSpec& spec);

// Machine-readable report, schema "treeagg-sweep-v5" (v2 added the
// per-cell combine-latency percentiles; v3 the fault axis with the
// per-cell converged verdict; v4 the aggregate `metrics` block with the
// Figure-2 message-kind totals summed across cells; v5 the per-cell
// "backend" field and the per-cell "mlap" block for MLAP policy cells).
// See docs/EXPERIMENTS.md for the field-by-field description.
void WriteSweepJson(std::ostream& out, const SweepSpec& spec,
                    const SweepResult& result);

// A sweep report read back from JSON. Accepts schema v1 through v5:
// v1 files have no latency block, so those cells keep zeroed SummaryStats;
// pre-v3 files have no fault axis, so cells read back as fault "none";
// pre-v4 files have no metrics block (has_metrics stays false); pre-v5
// files have no backend field (cells read back as "sim") and no mlap
// blocks (has_mlap stays false).
struct SweepJson {
  std::string schema;
  int threads = 0;
  bool competitive = false;
  std::size_t cells_failed = 0;
  // v4 aggregate metrics block: per-kind message totals across all cells.
  bool has_metrics = false;
  MessageCounts metrics_messages;
  std::int64_t metrics_total_messages = 0;
  std::vector<CellResult> cells;
};

// Minimal reader for the JSON WriteSweepJson emits (and any
// formatting-insensitive JSON with the same fields). Throws
// std::invalid_argument on malformed input or an unknown schema.
SweepJson ReadSweepJson(std::istream& in);

}  // namespace treeagg

#endif  // TREEAGG_EXP_SWEEP_H_
