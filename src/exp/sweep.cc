#include "exp/sweep.h"

#include <atomic>
#include <chrono>
#include <ostream>
#include <thread>

#include "analysis/competitive.h"
#include "core/extra_policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

// FNV-1a over a string, used to fold cell identity into seeds.
std::uint64_t HashString(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t Mix(std::uint64_t x) {  // SplitMix64 finalizer
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// Deterministic seed for one cell: a function of the cell's identity only,
// never of its index in the run order, so adding a shape to the sweep does
// not perturb the other cells' results.
std::uint64_t CellSeed(const CellSpec& c, std::uint64_t salt) {
  std::uint64_t h = 1469598103934665603ull ^ salt;
  h = HashString(h, c.shape);
  h = Mix(h ^ static_cast<std::uint64_t>(c.n));
  h = HashString(h, c.workload);
  h = HashString(h, c.policy);
  h = Mix(h ^ static_cast<std::uint64_t>(c.requests));
  return Mix(h ^ c.seed);
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void JsonEscape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

std::vector<CellSpec> ExpandCells(const SweepSpec& spec) {
  std::vector<CellSpec> cells;
  cells.reserve(spec.shapes.size() * spec.sizes.size() *
                spec.workloads.size() * spec.policies.size() *
                spec.seeds.size());
  for (const std::string& shape : spec.shapes) {
    for (const NodeId n : spec.sizes) {
      for (const std::string& workload : spec.workloads) {
        for (const std::string& policy : spec.policies) {
          for (const std::uint64_t seed : spec.seeds) {
            CellSpec c;
            c.shape = shape;
            c.n = n;
            c.workload = workload;
            c.policy = policy;
            c.requests = spec.requests;
            c.seed = seed;
            c.tree_seed = CellSeed(c, /*salt=*/0x7472656583ull);
            c.workload_seed = CellSeed(c, /*salt=*/0x776f726bull);
            cells.push_back(std::move(c));
          }
        }
      }
    }
  }
  return cells;
}

CellResult RunCell(const CellSpec& cell, bool competitive) {
  CellResult result;
  result.spec = cell;
  const auto start = std::chrono::steady_clock::now();
  try {
    const Tree tree = MakeShape(cell.shape, cell.n, cell.tree_seed);
    const RequestSequence sigma =
        MakeWorkload(cell.workload, tree, cell.requests, cell.workload_seed);
    if (competitive) {
      const CompetitiveReport report = RunCompetitive(
          tree, PolicyBySpec(cell.policy), cell.policy, sigma);
      result.total_messages = report.online_total;
      result.ratio_vs_lease_opt = report.RatioVsLeaseOpt();
      result.ratio_vs_nice_bound = report.RatioVsNiceBound();
      result.worst_edge_ratio = report.WorstEdgeRatio();
      result.strict_ok = report.strict_ok;
      if (!report.strict_ok) {
        result.ok = false;
        result.error = report.strict_error;
      }
    } else {
      // Throughput configuration: totals only, no per-edge accounting, no
      // message log — the cheapest instrumentation the driver offers.
      AggregationSystem::Options options;
      options.edge_accounting = false;
      AggregationSystem sys(tree, PolicyBySpec(cell.policy), options);
      sys.Execute(sigma);
      result.counts = sys.trace().totals();
      result.total_messages = sys.trace().TotalMessages();
    }
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = Seconds(start, stop);
  if (result.wall_seconds > 0) {
    result.requests_per_sec =
        static_cast<double>(cell.requests) / result.wall_seconds;
  }
  return result;
}

SweepResult RunSweep(const SweepSpec& spec) {
  const std::vector<CellSpec> cells = ExpandCells(spec);
  SweepResult result;
  result.cells.resize(cells.size());
  unsigned threads = spec.threads > 0
                         ? static_cast<unsigned>(spec.threads)
                         : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > cells.size() && !cells.empty()) {
    threads = static_cast<unsigned>(cells.size());
  }
  result.threads_used = static_cast<int>(threads);

  const auto start = std::chrono::steady_clock::now();
  // Work-stealing by atomic index: each worker claims the next unclaimed
  // cell and writes into its own slot. No locks, no merging pass.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      result.cells[i] = RunCell(cells[i], spec.competitive);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = Seconds(start, stop);
  for (const CellResult& c : result.cells) {
    result.serial_seconds += c.wall_seconds;
  }
  return result;
}

void WriteSweepJson(std::ostream& out, const SweepSpec& spec,
                    const SweepResult& result) {
  std::int64_t total_requests = 0;
  std::int64_t total_messages = 0;
  std::size_t failed = 0;
  for (const CellResult& c : result.cells) {
    total_requests += static_cast<std::int64_t>(c.spec.requests);
    total_messages += c.total_messages;
    if (!c.ok) ++failed;
  }
  const double speedup = result.wall_seconds > 0
                             ? result.serial_seconds / result.wall_seconds
                             : 0.0;
  out << "{\n";
  out << "  \"schema\": \"treeagg-sweep-v1\",\n";
  out << "  \"threads\": " << result.threads_used << ",\n";
  out << "  \"competitive\": " << (spec.competitive ? "true" : "false")
      << ",\n";
  out << "  \"cells_total\": " << result.cells.size() << ",\n";
  out << "  \"cells_failed\": " << failed << ",\n";
  out << "  \"wall_seconds\": " << result.wall_seconds << ",\n";
  out << "  \"serial_cell_seconds\": " << result.serial_seconds << ",\n";
  out << "  \"parallel_speedup\": " << speedup << ",\n";
  out << "  \"total_requests\": " << total_requests << ",\n";
  out << "  \"total_messages\": " << total_messages << ",\n";
  out << "  \"requests_per_second\": "
      << (result.wall_seconds > 0
              ? static_cast<double>(total_requests) / result.wall_seconds
              : 0.0)
      << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& c = result.cells[i];
    out << "    {\"shape\": \"";
    JsonEscape(out, c.spec.shape);
    out << "\", \"n\": " << c.spec.n << ", \"workload\": \"";
    JsonEscape(out, c.spec.workload);
    out << "\", \"policy\": \"";
    JsonEscape(out, c.spec.policy);
    out << "\", \"requests\": " << c.spec.requests
        << ", \"seed\": " << c.spec.seed
        << ", \"tree_seed\": " << c.spec.tree_seed
        << ", \"workload_seed\": " << c.spec.workload_seed << ",\n";
    out << "     \"ok\": " << (c.ok ? "true" : "false");
    if (!c.ok) {
      out << ", \"error\": \"";
      JsonEscape(out, c.error);
      out << "\"";
    }
    out << ", \"messages\": {\"probes\": " << c.counts.probes
        << ", \"responses\": " << c.counts.responses
        << ", \"updates\": " << c.counts.updates
        << ", \"releases\": " << c.counts.releases
        << ", \"total\": " << c.total_messages << "},\n";
    out << "     \"wall_seconds\": " << c.wall_seconds
        << ", \"requests_per_sec\": " << c.requests_per_sec;
    if (spec.competitive) {
      out << ",\n     \"competitive\": {\"ratio_vs_lease_opt\": "
          << c.ratio_vs_lease_opt
          << ", \"ratio_vs_nice_bound\": " << c.ratio_vs_nice_bound
          << ", \"worst_edge_ratio\": " << c.worst_edge_ratio
          << ", \"strict_ok\": " << (c.strict_ok ? "true" : "false") << "}";
    }
    out << "}" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace treeagg
