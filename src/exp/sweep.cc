#include "exp/sweep.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/competitive.h"
#include "core/extra_policies.h"
#include "core/mlap.h"
#include "fault/convergence.h"
#include "fault/schedule.h"
#include "net/local_cluster.h"
#include "offline/mlap_dp.h"
#include "sim/chaos.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

// FNV-1a over a string, used to fold cell identity into seeds.
std::uint64_t HashString(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t Mix(std::uint64_t x) {  // SplitMix64 finalizer
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// Deterministic seed for one cell: a function of the cell's identity only,
// never of its index in the run order, so adding a shape to the sweep does
// not perturb the other cells' results.
std::uint64_t CellSeed(const CellSpec& c, std::uint64_t salt) {
  std::uint64_t h = 1469598103934665603ull ^ salt;
  h = HashString(h, c.shape);
  h = Mix(h ^ static_cast<std::uint64_t>(c.n));
  h = HashString(h, c.workload);
  h = HashString(h, c.policy);
  h = Mix(h ^ static_cast<std::uint64_t>(c.requests));
  // Folded in only for fault cells: the fault-free cells of a v3 sweep
  // must reproduce the exact cells a pre-v3 sweep produced.
  if (c.fault != "none") h = HashString(h, c.fault);
  return Mix(h ^ c.seed);
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void JsonEscape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

std::vector<CellSpec> ExpandCells(const SweepSpec& spec) {
  std::vector<CellSpec> cells;
  const std::vector<std::string>& faults =
      spec.faults.empty() ? std::vector<std::string>{"none"} : spec.faults;
  cells.reserve(spec.shapes.size() * spec.sizes.size() *
                spec.workloads.size() * spec.policies.size() *
                spec.seeds.size() * faults.size());
  for (const std::string& shape : spec.shapes) {
    for (const NodeId n : spec.sizes) {
      for (const std::string& workload : spec.workloads) {
        for (const std::string& policy : spec.policies) {
          for (const std::uint64_t seed : spec.seeds) {
            for (const std::string& fault : faults) {
              CellSpec c;
              c.shape = shape;
              c.n = n;
              c.workload = workload;
              c.policy = policy;
              c.requests = spec.requests;
              c.fault = fault;
              c.seed = seed;
              c.tree_seed = CellSeed(c, /*salt=*/0x7472656583ull);
              c.workload_seed = CellSeed(c, /*salt=*/0x776f726bull);
              // After seed derivation on purpose: the backend changes how a
              // cell executes, never which instance it executes.
              c.backend = spec.backend.empty() ? "sim" : spec.backend;
              cells.push_back(std::move(c));
            }
          }
        }
      }
    }
  }
  return cells;
}

CellResult RunCell(const CellSpec& cell, bool competitive) {
  CellResult result;
  result.spec = cell;
  const auto start = std::chrono::steady_clock::now();
  try {
    const Tree tree = MakeShape(cell.shape, cell.n, cell.tree_seed);
    // Timed generation so MLAP cells see arrival ticks; for untimed
    // workload names the sigma is bit-identical to MakeWorkload's.
    const TimedWorkload timed =
        MakeTimedWorkload(cell.workload, tree, cell.requests,
                          cell.workload_seed);
    RequestSequence sigma = timed.sigma;
    if (IsMlapSpec(cell.policy)) {
      if (competitive) {
        throw std::invalid_argument(
            "competitive mode prices lease policies against the Section 4 "
            "bounds; MLAP cells carry their own offline ratio in the mlap "
            "block instead");
      }
      // The MLAP transform: batch combines per the delay/deadline rule,
      // price the plan against the offline optimum, then execute the
      // batched sequence through the unmodified RWW mechanism below.
      const MlapParams params = ParseMlapSpec(cell.policy);
      MlapPlan plan = BuildMlapPlan(tree, timed.sigma, params, &timed.ticks);
      const MlapPricing pricing =
          PriceMlapPlan(tree, timed.sigma, params, plan, &timed.ticks);
      result.has_mlap = true;
      result.mlap.delay_cost = params.delay_cost;
      result.mlap.deadline = params.deadline_variant;
      result.mlap.flushes = plan.flushes;
      result.mlap.served = plan.served;
      result.mlap.total_wait = plan.total_wait;
      result.mlap.wait = Summarize(
          std::vector<double>(plan.waits.begin(), plan.waits.end()));
      result.mlap.online_cost = pricing.online_cost;
      result.mlap.offline_opt = pricing.offline_opt;
      result.mlap.ratio = pricing.ratio;
      sigma = std::move(plan.batched);
    }
    if (cell.backend == "net-local") {
      if (competitive) {
        throw std::invalid_argument(
            "competitive mode computes offline sequential bounds; run it on "
            "the sim backend");
      }
      if (cell.fault != "none") {
        throw std::invalid_argument(
            "net-local sweep cells do not take a fault schedule; use "
            "`treeagg_cli chaos --net-local` for networked fault runs");
      }
      std::vector<NodeId> parent(static_cast<std::size_t>(tree.size()), 0);
      for (NodeId u = 1; u < tree.size(); ++u) {
        parent[static_cast<std::size_t>(u)] = tree.RootedParent(u);
      }
      LocalCluster::Options options;
      options.policy = cell.policy;
      options.ghost_logging = false;  // throughput cells: counts only
      const NetRunResult net =
          RunNetWorkload(parent, sigma, options, /*sequential=*/true);
      result.counts = net.counts;
      result.total_messages = static_cast<std::int64_t>(net.total_messages);
      result.latency = LatencyFromHistory(net.history).combine_latency;
    } else if (cell.backend != "sim") {
      throw std::invalid_argument("unknown sweep backend '" + cell.backend +
                                  "' (valid: sim, net-local)");
    } else if (cell.fault != "none") {
      if (competitive) {
        throw std::invalid_argument(
            "competitive mode computes offline sequential bounds; it has no "
            "meaning under a fault schedule");
      }
      // Fault cell: run on the ChaosSimulator and demand convergence.
      ChaosSimulator::Options options;
      options.seed = Mix(cell.workload_seed ^ 0x6368616F73ull);  // "chaos"
      options.min_delay = 1;
      options.max_delay = 4;
      const FaultSchedule schedule = FaultSchedule::Named(cell.fault);
      ChaosSimulator sim(tree, PolicyBySpec(cell.policy), schedule, options);
      Rng gaps(cell.workload_seed + 1);
      const std::vector<ReqId> probes =
          sim.RunWithFinalProbes(ScheduleWithGaps(sigma, 3, gaps));
      ConvergenceOptions copts;
      copts.fault_windows = schedule.Windows();
      const ConvergenceReport report =
          CheckConvergence(sim.history(), sim.GhostStates(), sim.op(),
                           tree.size(), probes, copts);
      result.counts = sim.trace().totals();
      result.total_messages = sim.trace().TotalMessages();
      result.latency = LatencyFromHistory(sim.history()).combine_latency;
      result.converged = report.ok;
      if (!report.ok) {
        result.ok = false;
        result.error = report.message;
      }
    } else if (competitive) {
      const CompetitiveReport report = RunCompetitive(
          tree, PolicyBySpec(cell.policy), cell.policy, sigma);
      result.total_messages = report.online_total;
      result.ratio_vs_lease_opt = report.RatioVsLeaseOpt();
      result.ratio_vs_nice_bound = report.RatioVsNiceBound();
      result.worst_edge_ratio = report.WorstEdgeRatio();
      result.strict_ok = report.strict_ok;
      if (!report.strict_ok) {
        result.ok = false;
        result.error = report.strict_error;
      }
    } else {
      // Throughput configuration: totals only, no per-edge accounting, no
      // message log — the cheapest instrumentation the driver offers.
      AggregationSystem::Options options;
      options.edge_accounting = false;
      AggregationSystem sys(tree, PolicyBySpec(cell.policy), options);
      sys.Execute(sigma);
      result.counts = sys.trace().totals();
      result.total_messages = sys.trace().TotalMessages();
      result.latency = LatencyFromHistory(sys.history()).combine_latency;
    }
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = Seconds(start, stop);
  if (result.wall_seconds > 0) {
    result.requests_per_sec =
        static_cast<double>(cell.requests) / result.wall_seconds;
  }
  return result;
}

SweepResult RunSweep(const SweepSpec& spec) {
  const std::vector<CellSpec> cells = ExpandCells(spec);
  SweepResult result;
  result.cells.resize(cells.size());
  unsigned threads = spec.threads > 0
                         ? static_cast<unsigned>(spec.threads)
                         : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > cells.size() && !cells.empty()) {
    threads = static_cast<unsigned>(cells.size());
  }
  result.threads_used = static_cast<int>(threads);

  const auto start = std::chrono::steady_clock::now();
  // Work-stealing by atomic index: each worker claims the next unclaimed
  // cell and writes into its own slot. No locks, no merging pass.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      result.cells[i] = RunCell(cells[i], spec.competitive);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = Seconds(start, stop);
  for (const CellResult& c : result.cells) {
    result.serial_seconds += c.wall_seconds;
  }
  return result;
}

void WriteSweepJson(std::ostream& out, const SweepSpec& spec,
                    const SweepResult& result) {
  std::int64_t total_requests = 0;
  std::int64_t total_messages = 0;
  std::size_t failed = 0;
  MessageCounts kinds;  // Figure-2 categories summed across cells
  for (const CellResult& c : result.cells) {
    total_requests += static_cast<std::int64_t>(c.spec.requests);
    total_messages += c.total_messages;
    kinds.probes += c.counts.probes;
    kinds.responses += c.counts.responses;
    kinds.updates += c.counts.updates;
    kinds.releases += c.counts.releases;
    if (!c.ok) ++failed;
  }
  const double speedup = result.wall_seconds > 0
                             ? result.serial_seconds / result.wall_seconds
                             : 0.0;
  out << "{\n";
  out << "  \"schema\": \"treeagg-sweep-v5\",\n";
  out << "  \"backend\": \"";
  JsonEscape(out, spec.backend.empty() ? "sim" : spec.backend);
  out << "\",\n";
  out << "  \"threads\": " << result.threads_used << ",\n";
  out << "  \"competitive\": " << (spec.competitive ? "true" : "false")
      << ",\n";
  out << "  \"cells_total\": " << result.cells.size() << ",\n";
  out << "  \"cells_failed\": " << failed << ",\n";
  out << "  \"wall_seconds\": " << result.wall_seconds << ",\n";
  out << "  \"serial_cell_seconds\": " << result.serial_seconds << ",\n";
  out << "  \"parallel_speedup\": " << speedup << ",\n";
  out << "  \"total_requests\": " << total_requests << ",\n";
  out << "  \"total_messages\": " << total_messages << ",\n";
  out << "  \"metrics\": {\"messages\": {\"probes\": " << kinds.probes
      << ", \"responses\": " << kinds.responses
      << ", \"updates\": " << kinds.updates
      << ", \"releases\": " << kinds.releases
      << ", \"total\": " << total_messages << "}},\n";
  out << "  \"requests_per_second\": "
      << (result.wall_seconds > 0
              ? static_cast<double>(total_requests) / result.wall_seconds
              : 0.0)
      << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& c = result.cells[i];
    out << "    {\"shape\": \"";
    JsonEscape(out, c.spec.shape);
    out << "\", \"n\": " << c.spec.n << ", \"workload\": \"";
    JsonEscape(out, c.spec.workload);
    out << "\", \"policy\": \"";
    JsonEscape(out, c.spec.policy);
    out << "\", \"requests\": " << c.spec.requests << ", \"fault\": \"";
    JsonEscape(out, c.spec.fault);
    out << "\", \"backend\": \"";
    JsonEscape(out, c.spec.backend);
    out << "\", \"seed\": " << c.spec.seed
        << ", \"tree_seed\": " << c.spec.tree_seed
        << ", \"workload_seed\": " << c.spec.workload_seed << ",\n";
    out << "     \"ok\": " << (c.ok ? "true" : "false")
        << ", \"converged\": " << (c.converged ? "true" : "false");
    if (!c.ok) {
      out << ", \"error\": \"";
      JsonEscape(out, c.error);
      out << "\"";
    }
    out << ", \"messages\": {\"probes\": " << c.counts.probes
        << ", \"responses\": " << c.counts.responses
        << ", \"updates\": " << c.counts.updates
        << ", \"releases\": " << c.counts.releases
        << ", \"total\": " << c.total_messages << "},\n";
    out << "     \"latency\": {\"count\": " << c.latency.count
        << ", \"mean\": " << c.latency.mean << ", \"p50\": " << c.latency.p50
        << ", \"p90\": " << c.latency.p90 << ", \"p95\": " << c.latency.p95
        << ", \"p99\": " << c.latency.p99 << ", \"min\": " << c.latency.min
        << ", \"max\": " << c.latency.max << "},\n";
    out << "     \"wall_seconds\": " << c.wall_seconds
        << ", \"requests_per_sec\": " << c.requests_per_sec;
    if (c.has_mlap) {
      out << ",\n     \"mlap\": {\"delay_cost\": " << c.mlap.delay_cost
          << ", \"deadline\": " << (c.mlap.deadline ? "true" : "false")
          << ", \"flushes\": " << c.mlap.flushes
          << ", \"served\": " << c.mlap.served
          << ", \"total_wait\": " << c.mlap.total_wait
          << ", \"wait\": {\"count\": " << c.mlap.wait.count
          << ", \"mean\": " << c.mlap.wait.mean
          << ", \"p50\": " << c.mlap.wait.p50
          << ", \"p90\": " << c.mlap.wait.p90
          << ", \"p95\": " << c.mlap.wait.p95
          << ", \"p99\": " << c.mlap.wait.p99
          << ", \"min\": " << c.mlap.wait.min
          << ", \"max\": " << c.mlap.wait.max << "}"
          << ", \"online_cost\": " << c.mlap.online_cost
          << ", \"offline_opt\": " << c.mlap.offline_opt
          << ", \"ratio\": " << c.mlap.ratio << "}";
    }
    if (spec.competitive) {
      out << ",\n     \"competitive\": {\"ratio_vs_lease_opt\": "
          << c.ratio_vs_lease_opt
          << ", \"ratio_vs_nice_bound\": " << c.ratio_vs_nice_bound
          << ", \"worst_edge_ratio\": " << c.worst_edge_ratio
          << ", \"strict_ok\": " << (c.strict_ok ? "true" : "false") << "}";
    }
    out << "}" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

// --- JSON reader --------------------------------------------------------
//
// A deliberately small recursive-descent JSON parser: just enough to read
// back what WriteSweepJson emits (objects, arrays, strings with the two
// escapes JsonEscape produces, numbers, booleans). No external dependency.
namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double Num(const std::string& key, double fallback = 0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string Str(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : "";
  }
  bool Bool(const std::string& key, bool fallback = false) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kBool ? v->boolean : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::invalid_argument("sweep json: " + what + " at byte " +
                                std::to_string(pos_));
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end");
    return text_[pos_];
  }
  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool Consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipSpace();
    JsonValue v;
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = ParseString();
      return v;
    }
    if (Consume("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (Consume("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (Consume("null")) return v;
    return ParseNumber();
  }

  std::string ParseString() {
    Expect('"');
    std::string s;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return s;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        s.push_back(text_[pos_++]);
      } else {
        s.push_back(c);
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      Fail("bad number");
    }
    return v;
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(ParseValue());
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      SkipSpace();
      std::string key = ParseString();
      SkipSpace();
      Expect(':');
      v.object.emplace_back(std::move(key), ParseValue());
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

SweepJson ReadSweepJson(std::istream& in) {
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const JsonValue root = JsonParser(text).Parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::invalid_argument("sweep json: top level is not an object");
  }
  SweepJson report;
  report.schema = root.Str("schema");
  if (report.schema != "treeagg-sweep-v1" &&
      report.schema != "treeagg-sweep-v2" &&
      report.schema != "treeagg-sweep-v3" &&
      report.schema != "treeagg-sweep-v4" &&
      report.schema != "treeagg-sweep-v5") {
    throw std::invalid_argument("sweep json: unknown schema '" +
                                report.schema + "'");
  }
  report.threads = static_cast<int>(root.Num("threads"));
  report.competitive = root.Bool("competitive");
  report.cells_failed = static_cast<std::size_t>(root.Num("cells_failed"));
  // v4 aggregate metrics block; pre-v4 files simply lack it.
  if (const JsonValue* metrics = root.Find("metrics")) {
    if (const JsonValue* m = metrics->Find("messages")) {
      report.has_metrics = true;
      report.metrics_messages.probes =
          static_cast<std::int64_t>(m->Num("probes"));
      report.metrics_messages.responses =
          static_cast<std::int64_t>(m->Num("responses"));
      report.metrics_messages.updates =
          static_cast<std::int64_t>(m->Num("updates"));
      report.metrics_messages.releases =
          static_cast<std::int64_t>(m->Num("releases"));
      report.metrics_total_messages =
          static_cast<std::int64_t>(m->Num("total"));
    }
  }
  const JsonValue* cells = root.Find("cells");
  if (cells == nullptr || cells->kind != JsonValue::Kind::kArray) {
    throw std::invalid_argument("sweep json: missing cells array");
  }
  for (const JsonValue& cell : cells->array) {
    if (cell.kind != JsonValue::Kind::kObject) {
      throw std::invalid_argument("sweep json: cell is not an object");
    }
    CellResult c;
    c.spec.shape = cell.Str("shape");
    c.spec.n = static_cast<NodeId>(cell.Num("n"));
    c.spec.workload = cell.Str("workload");
    c.spec.policy = cell.Str("policy");
    c.spec.requests = static_cast<std::size_t>(cell.Num("requests"));
    // Pre-v3 files have no fault axis: every cell was fault-free.
    const std::string fault = cell.Str("fault");
    c.spec.fault = fault.empty() ? "none" : fault;
    // Pre-v5 files have no backend field: every cell ran on the simulator.
    const std::string backend = cell.Str("backend");
    c.spec.backend = backend.empty() ? "sim" : backend;
    c.spec.seed = static_cast<std::uint64_t>(cell.Num("seed"));
    c.ok = cell.Bool("ok", true);
    c.converged = cell.Bool("converged", true);
    c.error = cell.Str("error");
    c.wall_seconds = cell.Num("wall_seconds");
    c.requests_per_sec = cell.Num("requests_per_sec");
    if (const JsonValue* m = cell.Find("messages")) {
      c.counts.probes = static_cast<std::int64_t>(m->Num("probes"));
      c.counts.responses = static_cast<std::int64_t>(m->Num("responses"));
      c.counts.updates = static_cast<std::int64_t>(m->Num("updates"));
      c.counts.releases = static_cast<std::int64_t>(m->Num("releases"));
      c.total_messages = static_cast<std::int64_t>(m->Num("total"));
    }
    // v1 has no latency block: the zeroed SummaryStats stands.
    if (const JsonValue* l = cell.Find("latency")) {
      c.latency.count = static_cast<std::size_t>(l->Num("count"));
      c.latency.mean = l->Num("mean");
      c.latency.p50 = l->Num("p50");
      c.latency.p90 = l->Num("p90");
      c.latency.p95 = l->Num("p95");
      c.latency.p99 = l->Num("p99");
      c.latency.min = l->Num("min");
      c.latency.max = l->Num("max");
    }
    if (const JsonValue* m = cell.Find("mlap")) {
      c.has_mlap = true;
      c.mlap.delay_cost = m->Num("delay_cost", 1.0);
      c.mlap.deadline = m->Bool("deadline");
      c.mlap.flushes = static_cast<std::int64_t>(m->Num("flushes"));
      c.mlap.served = static_cast<std::int64_t>(m->Num("served"));
      c.mlap.total_wait = static_cast<std::int64_t>(m->Num("total_wait"));
      if (const JsonValue* w = m->Find("wait")) {
        c.mlap.wait.count = static_cast<std::size_t>(w->Num("count"));
        c.mlap.wait.mean = w->Num("mean");
        c.mlap.wait.p50 = w->Num("p50");
        c.mlap.wait.p90 = w->Num("p90");
        c.mlap.wait.p95 = w->Num("p95");
        c.mlap.wait.p99 = w->Num("p99");
        c.mlap.wait.min = w->Num("min");
        c.mlap.wait.max = w->Num("max");
      }
      c.mlap.online_cost = m->Num("online_cost");
      c.mlap.offline_opt = m->Num("offline_opt");
      c.mlap.ratio = m->Num("ratio", 1.0);
    }
    if (const JsonValue* comp = cell.Find("competitive")) {
      c.ratio_vs_lease_opt = comp->Num("ratio_vs_lease_opt");
      c.ratio_vs_nice_bound = comp->Num("ratio_vs_nice_bound");
      c.worst_edge_ratio = comp->Num("worst_edge_ratio");
      c.strict_ok = comp->Bool("strict_ok", true);
    }
    report.cells.push_back(std::move(c));
  }
  return report;
}

}  // namespace treeagg
