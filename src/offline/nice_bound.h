// Lower bound on the cost of any *nice* (strictly consistent) algorithm,
// per Theorem 2's epoch argument.
//
// For each ordered pair (u, v), an epoch of sigma(u, v) ends at a
// write -> combine transition. Strict consistency forces at least one
// message across edge (u, v), attributable to the (u, v) direction, in
// every epoch in which a combine must observe a preceding write: the new
// value on u's side cannot reach the combine on v's side without crossing
// the edge. Summing over ordered pairs lower-bounds the total message
// count of any nice algorithm, including the offline-optimal one.
#ifndef TREEAGG_OFFLINE_NICE_BOUND_H_
#define TREEAGG_OFFLINE_NICE_BOUND_H_

#include <cstdint>

#include "offline/projection.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

// Number of write -> combine transitions in the projected sequence (a
// combine preceded by at least one write since the last counted combine).
std::int64_t EpochCount(const EdgeSequence& seq);

// Sum of EpochCount over all ordered neighbor pairs: a lower bound on the
// messages of any nice algorithm executing sigma on tree.
std::int64_t NiceAlgorithmLowerBound(const RequestSequence& sigma,
                                     const Tree& tree);

// RWW's worst-case cost per epoch is 5 (probe + response + update + update
// + release, Lemma 4.3); exposed as a constant for benches.
inline constexpr std::int64_t kRwwMessagesPerEpoch = 5;

}  // namespace treeagg

#endif  // TREEAGG_OFFLINE_NICE_BOUND_H_
