// The per-edge projection sigma(u, v) of Section 3.2: the subsequence of
// sigma containing writes initiated in subtree(u, v) and combines initiated
// in subtree(v, u). The paper's whole competitive analysis happens on these
// projections.
#ifndef TREEAGG_OFFLINE_PROJECTION_H_
#define TREEAGG_OFFLINE_PROJECTION_H_

#include <vector>

#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

// One projected request: R = combine on v's side, W = write on u's side.
enum class EdgeReq : char { kR = 'R', kW = 'W' };

using EdgeSequence = std::vector<EdgeReq>;

// sigma(u, v) for the ordered neighbor pair (u, v).
EdgeSequence ProjectSequence(const RequestSequence& sigma, const Tree& tree,
                             NodeId u, NodeId v);

// Parses a compact "RWWR..." string (test convenience).
EdgeSequence ParseEdgeSequence(const std::string& pattern);

}  // namespace treeagg

#endif  // TREEAGG_OFFLINE_PROJECTION_H_
