#include "offline/nice_bound.h"

namespace treeagg {

std::int64_t EpochCount(const EdgeSequence& seq) {
  std::int64_t epochs = 0;
  bool dirty = false;  // a write since the last counted combine
  for (const EdgeReq req : seq) {
    if (req == EdgeReq::kW) {
      dirty = true;
    } else if (dirty) {
      ++epochs;
      dirty = false;
    }
  }
  return epochs;
}

std::int64_t NiceAlgorithmLowerBound(const RequestSequence& sigma,
                                     const Tree& tree) {
  std::int64_t total = 0;
  for (const Edge& e : tree.OrderedEdges()) {
    total += EpochCount(ProjectSequence(sigma, tree, e.u, e.v));
  }
  return total;
}

}  // namespace treeagg
