#include "offline/projection.h"

#include <stdexcept>

namespace treeagg {

EdgeSequence ProjectSequence(const RequestSequence& sigma, const Tree& tree,
                             NodeId u, NodeId v) {
  EdgeSequence result;
  for (const Request& q : sigma) {
    if (q.op == ReqType::kWrite) {
      if (tree.InSubtree(q.node, u, v)) result.push_back(EdgeReq::kW);
    } else {
      if (tree.InSubtree(q.node, v, u)) result.push_back(EdgeReq::kR);
    }
  }
  return result;
}

EdgeSequence ParseEdgeSequence(const std::string& pattern) {
  EdgeSequence result;
  result.reserve(pattern.size());
  for (const char c : pattern) {
    if (c == 'R' || c == 'r') {
      result.push_back(EdgeReq::kR);
    } else if (c == 'W' || c == 'w') {
      result.push_back(EdgeReq::kW);
    } else {
      throw std::invalid_argument("ParseEdgeSequence: expected R or W");
    }
  }
  return result;
}

}  // namespace treeagg
