#include "offline/edge_dp.h"

#include <algorithm>
#include <array>
#include <functional>
#include <limits>
#include <utility>

namespace treeagg {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

std::int64_t OptimalEdgeCost(const EdgeSequence& seq) {
  // dp[s]: min cost with lease state s after processing a prefix.
  std::int64_t dp0 = 0;
  std::int64_t dp1 = kInf;  // initially unleased
  for (const EdgeReq req : seq) {
    std::int64_t n0, n1;
    if (req == EdgeReq::kR) {
      // From 0: pay probe+response (2), may or may not take the lease.
      // From 1: free, lease persists.
      n0 = dp0 + 2;
      n1 = std::min(dp0 + 2, dp1);
    } else {
      // From 0: free. From 1: update (1) keeping, or update+release (2).
      n0 = std::min(dp0, dp1 + 2);
      n1 = dp1 + 1;
    }
    // Voluntary release between requests (a noop step of sigma'(u, v)).
    n0 = std::min(n0, n1 + 1);
    dp0 = n0;
    dp1 = n1;
  }
  return std::min(dp0, dp1);
}

OptimalPlan OptimalEdgePlan(const EdgeSequence& seq) {
  const std::size_t n = seq.size();
  // dp[i][s]: min cost after i requests (and their optional noops) ending
  // in state s. Parent pointers record the chosen pre-noop state.
  struct Cell {
    std::int64_t cost = kInf;
    int prev_state = 0;     // state before request i
    int mid_state = 0;      // state right after request i, before the noop
  };
  std::vector<std::array<Cell, 2>> dp(n + 1);
  dp[0][0].cost = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (int s = 0; s <= 1; ++s) {
      if (dp[i][s].cost >= kInf) continue;
      const std::int64_t base = dp[i][s].cost;
      // Enumerate legal (mid_state, step_cost) moves per Figure 2.
      std::vector<std::pair<int, std::int64_t>> moves;
      if (seq[i] == EdgeReq::kR) {
        if (s == 0) {
          moves = {{0, 2}, {1, 2}};
        } else {
          moves = {{1, 0}};
        }
      } else {
        if (s == 0) {
          moves = {{0, 0}};
        } else {
          moves = {{1, 1}, {0, 2}};
        }
      }
      for (const auto& [mid, step_cost] : moves) {
        // Without noop.
        if (base + step_cost < dp[i + 1][mid].cost) {
          dp[i + 1][mid] = {base + step_cost, s, mid};
        }
        // With a voluntary release after the request.
        if (mid == 1 && base + step_cost + 1 < dp[i + 1][0].cost) {
          dp[i + 1][0] = {base + step_cost + 1, s, mid};
        }
      }
    }
  }
  OptimalPlan plan;
  plan.state_after.assign(n, 0);
  plan.noop_release.assign(n, false);
  int s = (dp[n][0].cost <= dp[n][1].cost) ? 0 : 1;
  plan.cost = dp[n][s].cost;
  for (std::size_t i = n; i-- > 0;) {
    const Cell& cell = dp[i + 1][s];
    plan.state_after[i] = cell.mid_state;
    plan.noop_release[i] = (cell.mid_state == 1 && s == 0);
    s = cell.prev_state;
  }
  return plan;
}

std::int64_t OptimalEdgeCostBruteForce(const EdgeSequence& seq) {
  // Explicit decision-tree enumeration, kept structurally independent of
  // the DP: at each R in state 0 choose to take the lease or not; at each
  // W in state 1 choose to keep or release; after each request, in state 1,
  // optionally release for 1.
  std::int64_t best = kInf;
  const std::function<void(std::size_t, bool, std::int64_t)> go =
      [&](std::size_t i, bool leased, std::int64_t cost) {
        if (cost >= best) return;
        if (i == seq.size()) {
          best = std::min(best, cost);
          return;
        }
        const auto after = [&](bool leased_after, std::int64_t c) {
          go(i + 1, leased_after, c);
          if (leased_after) go(i + 1, false, c + 1);  // voluntary release
        };
        if (seq[i] == EdgeReq::kR) {
          if (leased) {
            after(true, cost);
          } else {
            after(false, cost + 2);
            after(true, cost + 2);
          }
        } else {
          if (leased) {
            after(true, cost + 1);
            after(false, cost + 2);
          } else {
            after(false, cost);
          }
        }
      };
  go(0, false, 0);
  return best;
}

std::int64_t RwwEdgeCost(const EdgeSequence& seq) {
  std::int64_t cost = 0;
  int config = 0;  // F_RWW(u, v): 0 unleased, 2 fresh lease, 1 one write in
  for (const EdgeReq req : seq) {
    if (req == EdgeReq::kR) {
      if (config == 0) cost += 2;  // probe + response
      config = 2;
    } else {
      if (config == 2) {
        cost += 1;  // update
        config = 1;
      } else if (config == 1) {
        cost += 2;  // update + release
        config = 0;
      }
      // config == 0: unleased write is free.
    }
  }
  return cost;
}

std::int64_t AbEdgeCost(const EdgeSequence& seq, int a, int b) {
  std::int64_t cost = 0;
  bool leased = false;
  int reads = 0;   // consecutive R's while unleased
  int writes = 0;  // consecutive W's while leased
  for (const EdgeReq req : seq) {
    if (req == EdgeReq::kR) {
      writes = 0;
      if (leased) continue;
      cost += 2;  // probe + response
      if (++reads >= a) {
        leased = true;
        reads = 0;
      }
    } else {
      reads = 0;
      if (!leased) continue;
      ++writes;
      if (writes >= b) {
        cost += 2;  // update + release
        leased = false;
        writes = 0;
      } else {
        cost += 1;  // update
      }
    }
  }
  return cost;
}

std::int64_t OptimalLeaseBasedLowerBound(const RequestSequence& sigma,
                                         const Tree& tree) {
  std::int64_t total = 0;
  for (const Edge& e : tree.OrderedEdges()) {
    total += OptimalEdgeCost(ProjectSequence(sigma, tree, e.u, e.v));
  }
  return total;
}

}  // namespace treeagg
