// Per-edge offline optimum and analytic online costs over the Figure 2
// cost model.
//
// Figure 2 gives, for an ordered pair (u, v), the messages any lease-based
// algorithm exchanges per projected request as a function of the lease
// state u.granted[v]:
//
//     state   request   next state   cost
//     false     R        false/true   2     (probe + response)
//     false     W        false        0
//     false     N        false        0
//     true      R        true         0
//     true      W        false        2     (update + release)
//     true      W        true         1     (update)
//     true      N        false        1     (release; noop = a release
//     true      N        true         0      triggered from sigma(v, u))
//
// OptimalEdgeCost computes the cheapest achievable cost over all lease
// decision sequences (the paper's per-edge OPT); RwwEdgeCost evaluates
// RWW's deterministic decisions analytically (Lemma 4.5 lets tests compare
// this against the cost measured from the real protocol); AbEdgeCost does
// the same for any (a, b)-algorithm (Theorem 3's class).
#ifndef TREEAGG_OFFLINE_EDGE_DP_H_
#define TREEAGG_OFFLINE_EDGE_DP_H_

#include <cstdint>

#include "offline/projection.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

// Minimum cost of any offline lease-based algorithm on the projected
// sequence, starting unleased, including voluntary (noop) releases.
std::int64_t OptimalEdgeCost(const EdgeSequence& seq);

// The optimum together with one witnessing decision sequence, for replay
// (e.g. by the Lemma 4.6 potential-function verifier).
struct OptimalPlan {
  std::int64_t cost = 0;
  // Lease state chosen immediately after processing request i (before any
  // voluntary release).
  std::vector<int> state_after;
  // Whether a voluntary release (noop step of sigma'(u, v)) follows
  // request i.
  std::vector<bool> noop_release;
};
OptimalPlan OptimalEdgePlan(const EdgeSequence& seq);

// Exhaustive-search reference for OptimalEdgeCost (exponential; tests only).
std::int64_t OptimalEdgeCostBruteForce(const EdgeSequence& seq);

// RWW's cost on the projected sequence. RWW's per-edge configuration is
// F_RWW in {0, 1, 2}: 2 after a combine, decremented per write, releasing
// on the 2 -> 0 ... i.e. paying 2 (update + release) on the write that
// empties the budget (Figure 2 row true/W/false).
std::int64_t RwwEdgeCost(const EdgeSequence& seq);

// Cost of the (a, b)-algorithm of Section 4.2 on the projected sequence:
// lease set after `a` consecutive R's, broken after `b` consecutive W's.
std::int64_t AbEdgeCost(const EdgeSequence& seq, int a, int b);

// Sum of OptimalEdgeCost over all ordered neighbor pairs: a lower bound on
// the cost of ANY offline lease-based algorithm on sigma (the comparison
// baseline of Theorem 1).
std::int64_t OptimalLeaseBasedLowerBound(const RequestSequence& sigma,
                                         const Tree& tree);

}  // namespace treeagg

#endif  // TREEAGG_OFFLINE_EDGE_DP_H_
