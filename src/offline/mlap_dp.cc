#include "offline/mlap_dp.h"

#include <limits>
#include <stdexcept>

namespace treeagg {

double OfflineBatchOpt(const std::vector<std::int64_t>& arrivals,
                       double service_cost, double delay_cost,
                       std::int64_t* services) {
  const std::size_t k = arrivals.size();
  if (services != nullptr) *services = 0;
  if (k == 0) return 0;
  for (std::size_t i = 1; i < k; ++i) {
    if (arrivals[i] < arrivals[i - 1]) {
      throw std::invalid_argument(
          "OfflineBatchOpt: arrivals must be nondecreasing");
    }
  }
  // prefix[i] = sum of the first i arrivals. A batch of arrivals (i..j]
  // (0-based half-open over prefix indices) served at arrivals[j-1] incurs
  // delay (j - i) * a_{j-1} - (prefix[j] - prefix[i]).
  std::vector<double> prefix(k + 1, 0);
  for (std::size_t i = 0; i < k; ++i) {
    prefix[i + 1] = prefix[i] + static_cast<double>(arrivals[i]);
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> opt(k + 1, inf);
  std::vector<std::int64_t> batches(k + 1, 0);
  opt[0] = 0;
  for (std::size_t j = 1; j <= k; ++j) {
    const double last = static_cast<double>(arrivals[j - 1]);
    for (std::size_t i = 0; i < j; ++i) {
      const double wait =
          static_cast<double>(j - i) * last - (prefix[j] - prefix[i]);
      const double cost = opt[i] + service_cost + delay_cost * wait;
      if (cost < opt[j]) {
        opt[j] = cost;
        batches[j] = batches[i] + 1;
      }
    }
  }
  if (services != nullptr) *services = batches[k];
  return opt[k];
}

double OfflineBatchOptBruteForce(const std::vector<std::int64_t>& arrivals,
                                 double service_cost, double delay_cost) {
  const std::size_t k = arrivals.size();
  if (k == 0) return 0;
  if (k > 20) {
    throw std::invalid_argument("OfflineBatchOptBruteForce: too many arrivals");
  }
  double best = std::numeric_limits<double>::infinity();
  // Bit i of `mask` set = a batch boundary after arrival i.
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << (k - 1)); ++mask) {
    double cost = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const bool boundary = i + 1 == k || ((mask >> i) & 1) != 0;
      if (!boundary) continue;
      cost += service_cost;
      for (std::size_t l = start; l <= i; ++l) {
        cost += delay_cost * static_cast<double>(arrivals[i] - arrivals[l]);
      }
      start = i + 1;
    }
    if (cost < best) best = cost;
  }
  return best;
}

MlapOfflineResult OfflineMlapOptimum(
    const Tree& tree, const RequestSequence& sigma, const MlapParams& params,
    const std::vector<std::int64_t>* arrival_ticks) {
  if (arrival_ticks != nullptr && arrival_ticks->size() != sigma.size()) {
    throw std::invalid_argument(
        "OfflineMlapOptimum: arrival_ticks size does not match sigma");
  }
  const std::vector<double> costs = MlapServiceCosts(tree);
  std::vector<std::vector<std::int64_t>> per_node(tree.size());
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    if (sigma[i].op != ReqType::kCombine) continue;
    per_node[sigma[i].node].push_back(
        arrival_ticks != nullptr ? (*arrival_ticks)[i]
                                 : static_cast<std::int64_t>(i));
  }
  MlapOfflineResult result;
  for (NodeId u = 0; u < tree.size(); ++u) {
    if (per_node[u].empty()) continue;
    std::int64_t services = 0;
    result.cost +=
        OfflineBatchOpt(per_node[u], costs[u], params.delay_cost, &services);
    result.services += services;
  }
  return result;
}

MlapPricing PriceMlapPlan(const Tree& tree, const RequestSequence& sigma,
                          const MlapParams& params, const MlapPlan& plan,
                          const std::vector<std::int64_t>* arrival_ticks) {
  const MlapOfflineResult offline =
      OfflineMlapOptimum(tree, sigma, params, arrival_ticks);
  MlapPricing pricing;
  pricing.online_cost = plan.modeled_total_cost;
  pricing.offline_opt = offline.cost;
  pricing.offline_services = offline.services;
  pricing.ratio =
      offline.cost > 0 ? plan.modeled_total_cost / offline.cost : 1.0;
  return pricing;
}

}  // namespace treeagg
