// Offline optimum for MLAP delay-cost instances, and pricing of online
// MLAP plans against it.
//
// The comparison baseline is the *per-node decoupled* offline optimum: each
// node batches its own combine arrivals optimally, paying its service cost
// C_u per batch plus delay_cost per request per tick of waiting, and a
// batch is served at its last arrival (serving later only adds delay).
// This is exactly the offline counterpart of the per-node delay rule the
// online "mlap" variant plays against, and the classic single-node
// TCP-acknowledgement DP solved independently per node. For the
// path-sharing deadline variant ("mlap-d") the true coupled optimum can
// only be cheaper than this sum, so reported ratios for mlap-d are
// conservative (an upper bound on the online cost would look even better
// against the coupled optimum's lower cost... i.e. ratios here understate
// nothing). An LP relaxation lower bound lives in lp/mlap_lp.h; tests pin
// LP <= DP <= brute force.
#ifndef TREEAGG_OFFLINE_MLAP_DP_H_
#define TREEAGG_OFFLINE_MLAP_DP_H_

#include <cstdint>
#include <vector>

#include "core/mlap.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

// Optimal batching of one node's combine arrivals (nondecreasing ticks):
// partition into consecutive batches, each served at its last arrival,
// paying service_cost per batch + delay_cost * wait per request. O(k^2).
// When `services` is non-null it receives the optimal batch count.
double OfflineBatchOpt(const std::vector<std::int64_t>& arrivals,
                       double service_cost, double delay_cost,
                       std::int64_t* services = nullptr);

// Exhaustive partition search (2^(k-1) partitions; tests only, k <= ~14).
double OfflineBatchOptBruteForce(const std::vector<std::int64_t>& arrivals,
                                 double service_cost, double delay_cost);

struct MlapOfflineResult {
  double cost = 0;              // sum of per-node batching optima
  std::int64_t services = 0;    // total batches in the offline plan
};

// The per-node decoupled offline optimum for sigma on this tree. Writes
// carry no delay cost and are ignored; arrival_ticks defaults to request
// index (matching BuildMlapPlan).
MlapOfflineResult OfflineMlapOptimum(
    const Tree& tree, const RequestSequence& sigma, const MlapParams& params,
    const std::vector<std::int64_t>* arrival_ticks = nullptr);

struct MlapPricing {
  double online_cost = 0;       // plan.modeled_total_cost
  double offline_opt = 0;       // OfflineMlapOptimum cost
  double ratio = 1;             // online / offline (1 when offline is 0)
  std::int64_t offline_services = 0;
};

// Prices an online plan (BuildMlapPlan output) against the offline optimum
// on the same instance.
MlapPricing PriceMlapPlan(const Tree& tree, const RequestSequence& sigma,
                          const MlapParams& params, const MlapPlan& plan,
                          const std::vector<std::int64_t>* arrival_ticks =
                              nullptr);

}  // namespace treeagg

#endif  // TREEAGG_OFFLINE_MLAP_DP_H_
