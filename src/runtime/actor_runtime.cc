#include "runtime/actor_runtime.h"

#include <cassert>
#include <stdexcept>
#include <string>

namespace treeagg {

void ActorRuntime::MailboxTransport::Send(Message m) {
  rt_->messages_sent_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(rt_->trace_mu_);
    rt_->trace_.Record(m);
  }
  const NodeId to = m.to;
  rt_->Enqueue(to, Item(std::move(m)));
}

MessageCounts ActorRuntime::MessageTotals() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_.totals();
}

MessageCounts ActorRuntime::EdgeCost(NodeId u, NodeId v) const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_.EdgeCost(u, v);
}

query::QueryAnswer ActorRuntime::QueryNode(NodeId node) const {
  if (node < 0 || node >= tree_->size()) {
    throw std::out_of_range("QueryNode: node " + std::to_string(node) +
                            " outside tree of size " +
                            std::to_string(tree_->size()));
  }
  if (snapshots_ == nullptr) {
    throw std::logic_error(
        "QueryNode: query tier disabled (set Options::query_tier)");
  }
  return snapshots_->Read(node);
}

ActorRuntime::ActorRuntime(const Tree& tree, const PolicyFactory& factory)
    : ActorRuntime(tree, factory, Options{}) {}

ActorRuntime::ActorRuntime(const Tree& tree, const PolicyFactory& factory,
                           Options options)
    : tree_(&tree),
      op_(*options.op),
      options_(options),
      transport_(this),
      trace_(MessageTrace::Options{.tree_nodes = tree.size()}) {
  const std::size_t n = static_cast<std::size_t>(tree.size());
  mailboxes_.reserve(n);
  nodes_.reserve(n);
  for (NodeId u = 0; u < tree.size(); ++u) {
    const std::vector<NodeId> nbrs = tree.neighbors(u).ToVector();
    mailboxes_.push_back(std::make_unique<Mailbox>());
    nodes_.push_back(std::make_unique<LeaseNode>(
        u, nbrs, op_, factory(u, nbrs), &transport_,
        [this](NodeId node, CombineToken token, Real value) {
          OnCombineDone(node, token, value);
        },
        options_.ghost_logging));
  }
  if (options_.query_tier) {
    snapshots_ = std::make_unique<query::SnapshotTable>(n);
    for (NodeId u = 0; u < tree.size(); ++u) {
      nodes_[static_cast<std::size_t>(u)]->set_query_slot(snapshots_->slot(u));
    }
  }
  if (options_.metrics != nullptr) {
    proto_metrics_ = obs::ProtocolMetrics::Register(*options_.metrics,
                                                    {{"backend", "runtime"}});
    g_inflight_hwm_ = options_.metrics->AddGauge(
        "treeagg_runtime_inflight_hwm",
        "High-water mark of queued + in-processing work items",
        {{"backend", "runtime"}});
    for (auto& node : nodes_) node->set_metrics(&proto_metrics_);
  }
}

ActorRuntime::~ActorRuntime() {
  if (started_ && !stopped_) DrainAndStop();
}

void ActorRuntime::Start() {
  assert(!started_);
  started_ = true;
  threads_.reserve(nodes_.size());
  for (NodeId u = 0; u < tree_->size(); ++u) {
    threads_.emplace_back([this, u] { NodeLoop(u); });
  }
}

void ActorRuntime::Enqueue(NodeId node, Item item, ReqId req_id) {
  const std::int64_t depth = in_flight_.fetch_add(1) + 1;
  if (g_inflight_hwm_) g_inflight_hwm_->MaxTo(depth);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(node)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.items.emplace_back(std::move(item), req_id);
  }
  box.cv.notify_one();
}

ReqId ActorRuntime::InjectWrite(NodeId node, Real arg) {
  assert(started_ && !stopped_);
  ReqId id;
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    id = history_.BeginWrite(node, arg, Now());
  }
  Enqueue(node, Item(Request::Write(node, arg)), id);
  return id;
}

ReqId ActorRuntime::InjectCombine(NodeId node) {
  assert(started_ && !stopped_);
  ReqId id;
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    id = history_.BeginCombine(node, Now());
  }
  // One unit for the mailbox item, one for the pending completion.
  in_flight_.fetch_add(1);
  Enqueue(node, Item(Request::Combine(node)), id);
  return id;
}

void ActorRuntime::OnCombineDone(NodeId node, CombineToken token, Real value) {
  const LeaseNode& n = *nodes_[static_cast<std::size_t>(node)];
  std::vector<std::pair<NodeId, ReqId>> gather(n.LastWrites().begin(),
                                               n.LastWrites().end());
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    history_.CompleteCombine(
        static_cast<ReqId>(token), value, std::move(gather),
        static_cast<std::int64_t>(n.GhostLogEntries().size()), Now());
  }
  if (in_flight_.fetch_sub(1) == 1) {
    // Take the mutex before notifying so a waiter that just evaluated the
    // predicate cannot miss this wakeup.
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void ActorRuntime::NodeLoop(NodeId node) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(node)];
  LeaseNode& n = *nodes_[static_cast<std::size_t>(node)];
  for (;;) {
    std::pair<Item, ReqId> entry{Stop{}, kNoRequest};
    {
      std::unique_lock<std::mutex> lock(box.mu);
      box.cv.wait(lock, [&] { return !box.items.empty(); });
      entry = std::move(box.items.front());
      box.items.pop_front();
    }
    if (std::holds_alternative<Stop>(entry.first)) {
      // Stop sentinels are not counted as in-flight work.
      return;
    }
    if (const Message* m = std::get_if<Message>(&entry.first)) {
      n.Deliver(*m);
    } else {
      const Request& r = std::get<Request>(entry.first);
      if (r.op == ReqType::kWrite) {
        n.LocalWrite(r.arg, entry.second);
        std::lock_guard<std::mutex> lock(history_mu_);
        history_.CompleteWrite(entry.second, Now());
      } else {
        n.LocalCombine(entry.second);
      }
    }
    if (in_flight_.fetch_sub(1) == 1) {
    // Take the mutex before notifying so a waiter that just evaluated the
    // predicate cannot miss this wakeup.
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
  }
}

void ActorRuntime::WaitQuiescent() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [&] { return in_flight_.load() == 0; });
}

void ActorRuntime::DrainAndStop() {
  assert(started_ && !stopped_);
  WaitQuiescent();
  stopped_ = true;
  for (NodeId u = 0; u < tree_->size(); ++u) {
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(u)];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.items.emplace_back(Stop{}, kNoRequest);
    }
    box.cv.notify_one();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

std::vector<NodeGhostState> ActorRuntime::GhostStates() const {
  std::vector<NodeGhostState> ghosts(static_cast<std::size_t>(tree_->size()));
  for (NodeId u = 0; u < tree_->size(); ++u) {
    ghosts[static_cast<std::size_t>(u)].node = u;
    ghosts[static_cast<std::size_t>(u)].write_log =
        nodes_[static_cast<std::size_t>(u)]->GhostLogEntries();
  }
  return ghosts;
}

}  // namespace treeagg
