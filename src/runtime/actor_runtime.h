// ActorRuntime: the lease-based mechanism under REAL concurrency.
//
// The discrete-event ConcurrentSimulator explores interleavings
// deterministically; this runtime executes the same LeaseNode automatons on
// one OS thread per node with mailbox channels, so the Section 5 claims
// (causal consistency of any lease-based algorithm under concurrent
// executions) are exercised against genuine thread interleavings rather
// than simulated ones.
//
// Channel semantics match the paper's model: reliable, FIFO per directed
// edge (each mailbox is a FIFO; senders enqueue in program order).
//
// Quiescence detection uses an in-flight work counter: it counts queued
// mailbox items, items being processed, and incomplete combines, so a zero
// reading is a consistent global quiescence snapshot.
#ifndef TREEAGG_RUNTIME_ACTOR_RUNTIME_H_
#define TREEAGG_RUNTIME_ACTOR_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "common/types.h"
#include "consistency/causal_checker.h"  // NodeGhostState
#include "consistency/history.h"
#include "core/aggregate_op.h"
#include "core/lease_node.h"
#include "core/policies.h"
#include "obs/metrics.h"
#include "sim/trace.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

class ActorRuntime {
 public:
  struct Options {
    const AggregateOp* op = &SumOp();
    bool ghost_logging = true;
    // Optional metrics sink (must outlive the runtime). When set, nodes
    // report per-kind message counters under backend="runtime" (counters
    // are lock-free, so node threads record concurrently) and Enqueue
    // maintains an in-flight-work high-water gauge.
    obs::MetricsRegistry* metrics = nullptr;
    // Snapshot query tier: each node thread publishes its gval() into a
    // seqlock slot at every transition tail, and QueryNode() reads the
    // slot from any thread without touching mechanism state.
    bool query_tier = false;
  };

  ActorRuntime(const Tree& tree, const PolicyFactory& factory);
  ActorRuntime(const Tree& tree, const PolicyFactory& factory,
               Options options);
  ~ActorRuntime();

  ActorRuntime(const ActorRuntime&) = delete;
  ActorRuntime& operator=(const ActorRuntime&) = delete;

  // Starts the node threads. Must be called before injecting requests.
  void Start();

  // Thread-safe request injection; returns the request's history id.
  ReqId InjectWrite(NodeId node, Real arg);
  ReqId InjectCombine(NodeId node);

  // Blocks until the network is quiescent (all injected requests completed,
  // no message in flight) WITHOUT stopping the node threads — the
  // cross-backend equivalence harness uses this to inject requests one at
  // a time, making the concurrent runtime behave sequentially.
  void WaitQuiescent();

  // Snapshot read (requires Options::query_tier): the versioned answer
  // node's seqlock slot currently publishes. Thread-safe — callable while
  // node threads run; the seqlock retries across concurrent publishes.
  // Throws std::logic_error when the query tier is disabled.
  query::QueryAnswer QueryNode(NodeId node) const;

  // Blocks until the network is quiescent (all requests completed, no
  // message in flight), then stops and joins all node threads.
  void DrainAndStop();

  // Valid after DrainAndStop().
  const History& history() const { return history_; }
  std::vector<NodeGhostState> GhostStates() const;
  std::int64_t MessagesSent() const { return messages_sent_.load(); }
  // Per-type and per-edge message accounting (thread-safe snapshot).
  MessageCounts MessageTotals() const;
  MessageCounts EdgeCost(NodeId u, NodeId v) const;

 private:
  struct Stop {};
  using Item = std::variant<Message, Request, Stop>;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<Item, ReqId>> items;  // ReqId for requests
  };

  class MailboxTransport final : public Transport {
   public:
    explicit MailboxTransport(ActorRuntime* rt) : rt_(rt) {}
    void Send(Message m) override;

   private:
    ActorRuntime* rt_;
  };

  void NodeLoop(NodeId node);
  void Enqueue(NodeId node, Item item, ReqId req_id = kNoRequest);
  void OnCombineDone(NodeId node, CombineToken token, Real value);
  std::int64_t Now() { return clock_.fetch_add(1); }

  const Tree* tree_;
  AggregateOp op_;
  Options options_;
  MailboxTransport transport_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<LeaseNode>> nodes_;
  std::unique_ptr<query::SnapshotTable> snapshots_;  // null unless query_tier
  std::vector<std::thread> threads_;
  obs::ProtocolMetrics proto_metrics_;
  obs::Gauge* g_inflight_hwm_ = nullptr;

  std::mutex history_mu_;
  History history_;
  mutable std::mutex trace_mu_;
  MessageTrace trace_;
  std::atomic<std::int64_t> clock_{0};
  // Queued + in-processing mailbox items plus incomplete combines.
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::int64_t> messages_sent_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace treeagg

#endif  // TREEAGG_RUNTIME_ACTOR_RUNTIME_H_
