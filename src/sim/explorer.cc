#include "sim/explorer.h"

#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "core/lease_node.h"

namespace treeagg {
namespace {

// One step of an execution: either initiate the next request of a node,
// or deliver the head message of a directed channel.
struct Event {
  bool is_delivery = false;
  NodeId node = kInvalidNode;  // initiation: the requesting node
  NodeId from = kInvalidNode;  // delivery: channel endpoints
  NodeId to = kInvalidNode;
};

// A full protocol world rebuilt from scratch for each replay. LeaseNode is
// deliberately non-copyable (it owns policy state), so the explorer
// re-executes choice prefixes instead of snapshotting; at model-checking
// scale this is cheap and keeps the production code free of
// checkpoint/restore surface.
class World {
 public:
  World(const Tree& tree, const PolicyFactory& factory,
        const RequestSequence& requests, const AggregateOp& op)
      : tree_(tree), transport_(this) {
    per_node_requests_.resize(static_cast<std::size_t>(tree.size()));
    for (std::size_t i = 0; i < requests.size(); ++i) {
      per_node_requests_[static_cast<std::size_t>(requests[i].node)]
          .push_back(requests[i]);
    }
    next_request_.assign(static_cast<std::size_t>(tree.size()), 0);
    for (NodeId u = 0; u < tree.size(); ++u) {
      const std::vector<NodeId> nbrs = tree.neighbors(u).ToVector();
      nodes_.push_back(std::make_unique<LeaseNode>(
          u, nbrs, op, factory(u, nbrs),
          &transport_,
          [this](NodeId node, CombineToken token, Real value) {
            const LeaseNode& n = *nodes_[static_cast<std::size_t>(node)];
            std::vector<std::pair<NodeId, ReqId>> gather(
                n.LastWrites().begin(), n.LastWrites().end());
            history_.CompleteCombine(
                static_cast<ReqId>(token), value, std::move(gather),
                static_cast<std::int64_t>(n.GhostLogEntries().size()),
                clock_++);
          },
          /*ghost_logging=*/true));
    }
  }

  void Apply(const Event& e) {
    if (e.is_delivery) {
      auto& channel = channels_[{e.from, e.to}];
      Message m = std::move(channel.front());
      channel.pop_front();
      nodes_[static_cast<std::size_t>(e.to)]->Deliver(m);
      return;
    }
    const std::size_t u = static_cast<std::size_t>(e.node);
    const Request& r = per_node_requests_[u][next_request_[u]++];
    if (r.op == ReqType::kCombine) {
      const ReqId id = history_.BeginCombine(r.node, clock_++);
      nodes_[u]->LocalCombine(id);
    } else {
      const ReqId id = history_.BeginWrite(r.node, r.arg, clock_++);
      nodes_[u]->LocalWrite(r.arg, id);
      history_.CompleteWrite(id, clock_++);
    }
  }

  std::vector<Event> EnabledEvents() const {
    std::vector<Event> events;
    for (NodeId u = 0; u < tree_.size(); ++u) {
      if (next_request_[static_cast<std::size_t>(u)] <
          per_node_requests_[static_cast<std::size_t>(u)].size()) {
        Event e;
        e.is_delivery = false;
        e.node = u;
        events.push_back(e);
      }
    }
    for (const auto& [edge, channel] : channels_) {
      if (!channel.empty()) {
        Event e;
        e.is_delivery = true;
        e.from = edge.first;
        e.to = edge.second;
        events.push_back(e);
      }
    }
    return events;
  }

  const History& history() const { return history_; }

  std::vector<NodeGhostState> GhostStates() const {
    std::vector<NodeGhostState> ghosts(
        static_cast<std::size_t>(tree_.size()));
    for (NodeId u = 0; u < tree_.size(); ++u) {
      ghosts[static_cast<std::size_t>(u)].node = u;
      ghosts[static_cast<std::size_t>(u)].write_log =
          nodes_[static_cast<std::size_t>(u)]->GhostLogEntries();
    }
    return ghosts;
  }

 private:
  class ChannelTransport final : public Transport {
   public:
    explicit ChannelTransport(World* world) : world_(world) {}
    void Send(Message m) override {
      world_->channels_[{m.from, m.to}].push_back(std::move(m));
    }

   private:
    World* world_;
  };

  const Tree& tree_;
  ChannelTransport transport_;
  std::vector<std::unique_ptr<LeaseNode>> nodes_;
  std::map<std::pair<NodeId, NodeId>, std::deque<Message>> channels_;
  std::vector<RequestSequence> per_node_requests_;
  std::vector<std::size_t> next_request_;
  History history_;
  std::int64_t clock_ = 0;
};

class Explorer {
 public:
  Explorer(const Tree& tree, const PolicyFactory& factory,
           const RequestSequence& requests, const AggregateOp& op,
           std::int64_t max_executions)
      : tree_(tree),
        factory_(factory),
        requests_(requests),
        op_(op),
        max_executions_(max_executions) {}

  ExplorationResult Run() {
    std::vector<Event> prefix;
    Dfs(prefix);
    return result_;
  }

 private:
  World Replay(const std::vector<Event>& prefix) {
    World world(tree_, factory_, requests_, op_);
    for (const Event& e : prefix) world.Apply(e);
    return world;
  }

  void Dfs(std::vector<Event>& prefix) {
    if (result_.truncated ||
        (!result_.all_consistent && !exhaustive_after_failure_)) {
      return;
    }
    if (result_.executions >= max_executions_) {
      result_.truncated = true;
      return;
    }
    World world = Replay(prefix);
    const std::vector<Event> events = world.EnabledEvents();
    if (events.empty()) {
      ++result_.executions;
      result_.max_depth =
          std::max(result_.max_depth, static_cast<int>(prefix.size()));
      CheckExecution(world, prefix);
      return;
    }
    for (const Event& e : events) {
      prefix.push_back(e);
      Dfs(prefix);
      prefix.pop_back();
    }
  }

  void CheckExecution(const World& world, const std::vector<Event>& prefix) {
    CheckResult check;
    if (!world.history().AllCompleted()) {
      check = CheckResult::Fail("execution ended with incomplete requests");
    } else {
      check = CheckCausalConsistency(world.history(), world.GhostStates(),
                                     op_, tree_.size());
    }
    if (!check.ok && result_.all_consistent) {
      result_.all_consistent = false;
      std::ostringstream os;
      os << check.message << " [schedule:";
      for (const Event& e : prefix) {
        if (e.is_delivery) {
          os << " d(" << e.from << ">" << e.to << ")";
        } else {
          os << " i(" << e.node << ")";
        }
      }
      os << "]";
      result_.first_violation = os.str();
    }
  }

  const Tree& tree_;
  const PolicyFactory& factory_;
  const RequestSequence& requests_;
  const AggregateOp& op_;
  const std::int64_t max_executions_;
  const bool exhaustive_after_failure_ = false;
  ExplorationResult result_;
};

}  // namespace

ExplorationResult ExploreAllInterleavings(const Tree& tree,
                                          const PolicyFactory& factory,
                                          const RequestSequence& requests,
                                          const AggregateOp& op,
                                          std::int64_t max_executions) {
  Explorer explorer(tree, factory, requests, op, max_executions);
  return explorer.Run();
}

}  // namespace treeagg
