// Exhaustive interleaving exploration: a small model checker for the
// protocol.
//
// For a tiny tree and a short request list, enumerates EVERY execution
// allowed by the paper's model — all interleavings of request initiations
// and message deliveries, subject only to per-directed-edge FIFO — and
// runs the causal-consistency checker on each complete execution. Where
// the randomized concurrent simulator samples interleavings, the explorer
// covers them: a Theorem 4 violation reachable in the configuration WILL
// be found.
//
// Request ordering semantics: requests at the same node are initiated in
// list order (program order); requests at different nodes may interleave
// freely, and deliveries may interleave arbitrarily with initiations.
//
// Complexity is exponential in the number of events; configurations up to
// roughly 4 nodes x 6 requests explore in well under a second. Larger
// inputs are truncated at `max_executions` (reported, never silent).
#ifndef TREEAGG_SIM_EXPLORER_H_
#define TREEAGG_SIM_EXPLORER_H_

#include <cstdint>
#include <string>

#include "core/aggregate_op.h"
#include "core/policy.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

struct ExplorationResult {
  // Number of complete executions checked.
  std::int64_t executions = 0;
  // True if the executions cap stopped the search before exhausting it.
  bool truncated = false;
  // Maximum events in any explored execution.
  int max_depth = 0;
  bool all_consistent = true;
  std::string first_violation;  // empty when all_consistent
};

ExplorationResult ExploreAllInterleavings(
    const Tree& tree, const PolicyFactory& factory,
    const RequestSequence& requests, const AggregateOp& op = SumOp(),
    std::int64_t max_executions = 200000);

}  // namespace treeagg

#endif  // TREEAGG_SIM_EXPLORER_H_
