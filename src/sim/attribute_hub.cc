#include "sim/attribute_hub.h"

#include <stdexcept>

namespace treeagg {

void AttributeHub::Define(const std::string& name, const AggregateOp& op,
                          const PolicyFactory& factory) {
  if (systems_.count(name) != 0) {
    throw std::invalid_argument("AttributeHub: duplicate attribute " + name);
  }
  AggregationSystem::Options options;
  options.op = &op;
  systems_.emplace(name,
                   std::make_unique<AggregationSystem>(*tree_, factory,
                                                       options));
}

bool AttributeHub::Has(const std::string& name) const {
  return systems_.count(name) != 0;
}

std::vector<std::string> AttributeHub::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(systems_.size());
  for (const auto& [name, system] : systems_) names.push_back(name);
  return names;
}

const AggregationSystem& AttributeHub::system(const std::string& name) const {
  return *systems_.at(name);
}

AggregationSystem& AttributeHub::mutable_system(const std::string& name) {
  return *systems_.at(name);
}

void AttributeHub::Write(const std::string& name, NodeId node, Real value) {
  systems_.at(name)->Write(node, value);
}

Real AttributeHub::Combine(const std::string& name, NodeId node) {
  return systems_.at(name)->Combine(node);
}

Real AttributeHub::ReadCached(const std::string& name, NodeId node) const {
  return systems_.at(name)->ReadCached(node);
}

std::map<std::string, Real> AttributeHub::CombineAll(NodeId node) {
  std::map<std::string, Real> values;
  for (auto& [name, system] : systems_) {
    values[name] = system->Combine(node);
  }
  return values;
}

std::int64_t AttributeHub::TotalMessages() const {
  std::int64_t total = 0;
  for (const auto& [name, system] : systems_) {
    total += system->trace().TotalMessages();
  }
  return total;
}

std::int64_t AttributeHub::MessagesFor(const std::string& name) const {
  return systems_.at(name)->trace().TotalMessages();
}

}  // namespace treeagg
