// Composite aggregates built from scalar attributes.
//
// The protocol's operator must be commutative/associative with an identity
// (Section 2), which rules out average, variance, and histograms as single
// attributes — but all of them are compositions of such operators, which
// is exactly how the aggregation frameworks the paper cites expose them.
// These trackers own the per-component attributes inside an AttributeHub
// and derive the composite on read:
//
//   AverageTracker    = sum / count
//   VarianceTracker   = sumsq/count - mean^2  (population variance)
//   HistogramTracker  = one counting attribute per bucket
//
// Semantics: each tracker tracks one observation per node (the node's
// current value), matching the protocol's write-overwrite model; a node's
// observation is replaced by its latest Record() and removed by Clear().
#ifndef TREEAGG_SIM_COMPOSITES_H_
#define TREEAGG_SIM_COMPOSITES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/attribute_hub.h"

namespace treeagg {

class AverageTracker {
 public:
  // Registers attributes "<prefix>.sum" and "<prefix>.count" in the hub.
  AverageTracker(AttributeHub& hub, std::string prefix,
                 const PolicyFactory& factory);

  // Sets node's observation (first call also raises the node's count).
  void Record(NodeId node, Real value);
  // Removes node's observation.
  void Clear(NodeId node);

  // Average over the nodes currently holding an observation, read at
  // `reader` with full protocol consistency. Returns fallback when no
  // observations exist.
  Real Read(NodeId reader, Real fallback = 0.0);
  // Number of nodes holding an observation, as seen from `reader`.
  Real Count(NodeId reader);

 private:
  AttributeHub& hub_;
  const std::string sum_name_;
  const std::string count_name_;
  std::unordered_map<NodeId, Real> current_;
};

class VarianceTracker {
 public:
  VarianceTracker(AttributeHub& hub, std::string prefix,
                  const PolicyFactory& factory);

  void Record(NodeId node, Real value);
  void Clear(NodeId node);

  Real Mean(NodeId reader, Real fallback = 0.0);
  // Population variance over current observations.
  Real Variance(NodeId reader, Real fallback = 0.0);

 private:
  AttributeHub& hub_;
  const std::string sum_name_;
  const std::string sumsq_name_;
  const std::string count_name_;
  std::unordered_map<NodeId, Real> current_;
};

class HistogramTracker {
 public:
  // Buckets are [bounds[0], bounds[1]), ..., plus a final overflow bucket;
  // values below bounds[0] land in bucket 0.
  HistogramTracker(AttributeHub& hub, std::string prefix,
                   std::vector<Real> bounds, const PolicyFactory& factory);

  void Record(NodeId node, Real value);
  void Clear(NodeId node);

  // Per-bucket node counts as seen from `reader`.
  std::vector<Real> Read(NodeId reader);
  std::size_t NumBuckets() const { return bounds_.size() + 1; }

 private:
  std::size_t BucketOf(Real value) const;
  std::string BucketName(std::size_t b) const;

  AttributeHub& hub_;
  const std::string prefix_;
  const std::vector<Real> bounds_;
  std::unordered_map<NodeId, std::size_t> current_bucket_;
};

}  // namespace treeagg

#endif  // TREEAGG_SIM_COMPOSITES_H_
