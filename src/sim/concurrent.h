// Concurrent discrete-event simulator.
//
// Section 5 of the paper analyzes *concurrent* executions: a new request
// may be initiated while others are still executing. This driver schedules
// request initiations at arbitrary times and delivers messages with
// (optionally randomized) per-message delays while preserving the paper's
// reliable-FIFO channel assumption per directed edge.
//
// With ghost logging enabled the resulting History + GhostStates feed the
// causal-consistency checker (Theorem 4).
#ifndef TREEAGG_SIM_CONCURRENT_H_
#define TREEAGG_SIM_CONCURRENT_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "consistency/causal_checker.h"  // NodeGhostState
#include "consistency/history.h"
#include "core/aggregate_op.h"
#include "core/lease_node.h"
#include "core/policies.h"
#include "obs/metrics.h"
#include "sim/trace.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

// A request scheduled for initiation at a simulated time.
struct ScheduledRequest {
  std::int64_t time = 0;
  Request request;
};

class ConcurrentSimulator {
 public:
  struct Options {
    const AggregateOp* op = &SumOp();
    bool ghost_logging = true;
    // Message delay drawn uniformly from [min_delay, max_delay].
    std::int64_t min_delay = 1;
    std::int64_t max_delay = 1;
    std::uint64_t seed = 1;

    // --- Fault injection (checker validation ONLY; the paper's model
    // assumes reliable FIFO channels, and the protocol is not expected to
    // tolerate these faults — the point is that the consistency checkers
    // must detect the resulting violations).
    double drop_probability = 0.0;  // silently lose a message
    bool violate_fifo = false;      // allow per-edge reordering

    // Optional metrics sink (must outlive the simulator). When set, nodes
    // report per-kind message counters under backend="sim" and the run
    // loop maintains event-queue depth/high-water gauges.
    obs::MetricsRegistry* metrics = nullptr;
  };

  ConcurrentSimulator(const Tree& tree, const PolicyFactory& factory);
  ConcurrentSimulator(const Tree& tree, const PolicyFactory& factory,
                      Options options);

  // Runs the schedule to completion (network quiescent, all requests done).
  void Run(const std::vector<ScheduledRequest>& schedule);

  const History& history() const { return history_; }
  const MessageTrace& trace() const { return trace_; }
  const Tree& tree() const { return *tree_; }
  const AggregateOp& op() const { return op_; }
  std::vector<NodeGhostState> GhostStates() const;
  std::int64_t now() const { return now_; }
  const LeaseNode& node(NodeId u) const {
    return *nodes_[static_cast<std::size_t>(u)];
  }

 private:
  struct Event {
    std::int64_t time;
    std::int64_t seq;  // tiebreaker: FIFO among same-time events
    bool is_delivery;
    Message message;   // when is_delivery
    Request request;   // otherwise
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return std::pair(a.time, a.seq) > std::pair(b.time, b.seq);
    }
  };

  class DelayTransport final : public Transport {
   public:
    explicit DelayTransport(ConcurrentSimulator* sim) : sim_(sim) {}
    void Send(Message m) override;

   private:
    ConcurrentSimulator* sim_;
  };

  void OnCombineDone(NodeId node, CombineToken token, Real value);
  void Dispatch(const Event& e);

  const Tree* tree_;
  AggregateOp op_;
  Options options_;
  Rng rng_;
  MessageTrace trace_;
  History history_;
  DelayTransport transport_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  // Per directed edge: last scheduled delivery time, to preserve FIFO.
  std::unordered_map<std::uint64_t, std::int64_t> channel_front_;
  std::vector<std::unique_ptr<LeaseNode>> nodes_;
  obs::ProtocolMetrics proto_metrics_;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_queue_hwm_ = nullptr;
  std::int64_t now_ = 0;
  std::int64_t seq_ = 0;
};

// Convenience: turn a request sequence into a schedule with exponential-ish
// random inter-arrival gaps in [0, max_gap], producing heavy overlap.
std::vector<ScheduledRequest> ScheduleWithGaps(const RequestSequence& sigma,
                                               std::int64_t max_gap, Rng& rng);

}  // namespace treeagg

#endif  // TREEAGG_SIM_CONCURRENT_H_
