// AttributeHub: multi-attribute aggregation over one tree.
//
// The aggregation frameworks that motivate the paper (SDIMS, Astrolabe,
// Ganglia) manage MANY named attributes over one hierarchy — e.g. "load"
// (sum), "any-alarm" (or), "min-free-disk" (min) — each with its own
// aggregation function and, in SDIMS, its own propagation aggressiveness.
// AttributeHub provides that shape: one instance per attribute of the
// lease-based protocol, each with an independently chosen operator and
// policy, over a shared topology, with combined cost accounting.
#ifndef TREEAGG_SIM_ATTRIBUTE_HUB_H_
#define TREEAGG_SIM_ATTRIBUTE_HUB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/system.h"

namespace treeagg {

class AttributeHub {
 public:
  explicit AttributeHub(const Tree& tree) : tree_(&tree) {}

  // Declares a new attribute. Throws std::invalid_argument on duplicates.
  void Define(const std::string& name, const AggregateOp& op,
              const PolicyFactory& factory);

  bool Has(const std::string& name) const;
  std::vector<std::string> AttributeNames() const;

  // Per-attribute operations (throw std::out_of_range on unknown names).
  void Write(const std::string& name, NodeId node, Real value);
  Real Combine(const std::string& name, NodeId node);
  Real ReadCached(const std::string& name, NodeId node) const;

  // Reads every attribute at one node with a single call, executing the
  // combines sequentially (the dashboard-refresh pattern).
  std::map<std::string, Real> CombineAll(NodeId node);

  // Total protocol messages across all attributes.
  std::int64_t TotalMessages() const;
  // Messages attributable to one attribute.
  std::int64_t MessagesFor(const std::string& name) const;

  const AggregationSystem& system(const std::string& name) const;
  AggregationSystem& mutable_system(const std::string& name);
  const Tree& tree() const { return *tree_; }

 private:
  const Tree* tree_;
  std::map<std::string, std::unique_ptr<AggregationSystem>> systems_;
};

}  // namespace treeagg

#endif  // TREEAGG_SIM_ATTRIBUTE_HUB_H_
