#include "sim/composites.h"

#include <cmath>

namespace treeagg {

// ------------------------------------------------------------ average ----

AverageTracker::AverageTracker(AttributeHub& hub, std::string prefix,
                               const PolicyFactory& factory)
    : hub_(hub),
      sum_name_(prefix + ".sum"),
      count_name_(prefix + ".count") {
  hub_.Define(sum_name_, SumOp(), factory);
  hub_.Define(count_name_, SumOp(), factory);
}

void AverageTracker::Record(NodeId node, Real value) {
  if (current_.emplace(node, value).second) {
    hub_.Write(count_name_, node, 1.0);
  } else {
    current_[node] = value;
  }
  hub_.Write(sum_name_, node, value);
}

void AverageTracker::Clear(NodeId node) {
  if (current_.erase(node) > 0) {
    hub_.Write(count_name_, node, 0.0);
    hub_.Write(sum_name_, node, 0.0);
  }
}

Real AverageTracker::Read(NodeId reader, Real fallback) {
  const Real count = hub_.Combine(count_name_, reader);
  if (count <= 0) return fallback;
  return hub_.Combine(sum_name_, reader) / count;
}

Real AverageTracker::Count(NodeId reader) {
  return hub_.Combine(count_name_, reader);
}

// ----------------------------------------------------------- variance ----

VarianceTracker::VarianceTracker(AttributeHub& hub, std::string prefix,
                                 const PolicyFactory& factory)
    : hub_(hub),
      sum_name_(prefix + ".sum"),
      sumsq_name_(prefix + ".sumsq"),
      count_name_(prefix + ".count") {
  hub_.Define(sum_name_, SumOp(), factory);
  hub_.Define(sumsq_name_, SumOp(), factory);
  hub_.Define(count_name_, SumOp(), factory);
}

void VarianceTracker::Record(NodeId node, Real value) {
  if (current_.emplace(node, value).second) {
    hub_.Write(count_name_, node, 1.0);
  } else {
    current_[node] = value;
  }
  hub_.Write(sum_name_, node, value);
  hub_.Write(sumsq_name_, node, value * value);
}

void VarianceTracker::Clear(NodeId node) {
  if (current_.erase(node) > 0) {
    hub_.Write(count_name_, node, 0.0);
    hub_.Write(sum_name_, node, 0.0);
    hub_.Write(sumsq_name_, node, 0.0);
  }
}

Real VarianceTracker::Mean(NodeId reader, Real fallback) {
  const Real count = hub_.Combine(count_name_, reader);
  if (count <= 0) return fallback;
  return hub_.Combine(sum_name_, reader) / count;
}

Real VarianceTracker::Variance(NodeId reader, Real fallback) {
  const Real count = hub_.Combine(count_name_, reader);
  if (count <= 0) return fallback;
  const Real mean = hub_.Combine(sum_name_, reader) / count;
  const Real meansq = hub_.Combine(sumsq_name_, reader) / count;
  // Guard tiny negative results from floating-point cancellation.
  return std::max<Real>(0.0, meansq - mean * mean);
}

// ---------------------------------------------------------- histogram ----

HistogramTracker::HistogramTracker(AttributeHub& hub, std::string prefix,
                                   std::vector<Real> bounds,
                                   const PolicyFactory& factory)
    : hub_(hub), prefix_(std::move(prefix)), bounds_(std::move(bounds)) {
  for (std::size_t b = 0; b < NumBuckets(); ++b) {
    hub_.Define(BucketName(b), SumOp(), factory);
  }
}

std::string HistogramTracker::BucketName(std::size_t b) const {
  return prefix_ + ".bucket" + std::to_string(b);
}

std::size_t HistogramTracker::BucketOf(Real value) const {
  std::size_t b = 0;
  while (b < bounds_.size() && value >= bounds_[b]) ++b;
  return b;
}

void HistogramTracker::Record(NodeId node, Real value) {
  const std::size_t bucket = BucketOf(value);
  const auto it = current_bucket_.find(node);
  if (it != current_bucket_.end()) {
    if (it->second == bucket) return;  // no movement
    hub_.Write(BucketName(it->second), node, 0.0);
    it->second = bucket;
  } else {
    current_bucket_[node] = bucket;
  }
  hub_.Write(BucketName(bucket), node, 1.0);
}

void HistogramTracker::Clear(NodeId node) {
  const auto it = current_bucket_.find(node);
  if (it == current_bucket_.end()) return;
  hub_.Write(BucketName(it->second), node, 0.0);
  current_bucket_.erase(it);
}

std::vector<Real> HistogramTracker::Read(NodeId reader) {
  std::vector<Real> counts(NumBuckets(), 0.0);
  for (std::size_t b = 0; b < NumBuckets(); ++b) {
    counts[b] = hub_.Combine(BucketName(b), reader);
  }
  return counts;
}

}  // namespace treeagg
