#include "sim/trace.h"

namespace treeagg {

MessageCounts& MessageCounts::operator+=(const MessageCounts& other) {
  probes += other.probes;
  responses += other.responses;
  updates += other.updates;
  releases += other.releases;
  return *this;
}

void MessageTrace::Record(const Message& m) {
  // Classify into the ordered pair (u, v) per Section 3.2: probes and
  // releases travel v -> u, responses and updates travel u -> v.
  NodeId u, v;
  if (m.type == MsgType::kProbe || m.type == MsgType::kRelease) {
    u = m.to;
    v = m.from;
  } else {
    u = m.from;
    v = m.to;
  }
  MessageCounts& c = per_edge_[Key(u, v)];
  switch (m.type) {
    case MsgType::kProbe:
      ++c.probes;
      ++totals_.probes;
      break;
    case MsgType::kResponse:
      ++c.responses;
      ++totals_.responses;
      break;
    case MsgType::kUpdate:
      ++c.updates;
      ++totals_.updates;
      break;
    case MsgType::kRelease:
      ++c.releases;
      ++totals_.releases;
      break;
  }
  if (keep_log_) log_.push_back(m);
}

MessageCounts MessageTrace::EdgeCost(NodeId u, NodeId v) const {
  const auto it = per_edge_.find(Key(u, v));
  return it == per_edge_.end() ? MessageCounts{} : it->second;
}

std::vector<std::pair<std::pair<NodeId, NodeId>, MessageCounts>>
MessageTrace::AllEdgeCosts() const {
  std::vector<std::pair<std::pair<NodeId, NodeId>, MessageCounts>> result;
  result.reserve(per_edge_.size());
  for (const auto& [key, counts] : per_edge_) {
    const NodeId u = static_cast<NodeId>(key >> 32);
    const NodeId v = static_cast<NodeId>(key & 0xffffffffu);
    result.push_back({{u, v}, counts});
  }
  return result;
}

void MessageTrace::Reset() {
  totals_ = {};
  per_edge_.clear();
  log_.clear();
}

}  // namespace treeagg
