#include "sim/trace.h"

#include <cstring>

namespace treeagg {

MessageCounts& MessageCounts::operator+=(const MessageCounts& other) {
  probes += other.probes;
  responses += other.responses;
  updates += other.updates;
  releases += other.releases;
  return *this;
}

MessageTrace::MessageTrace(Options options)
    : keep_log_(options.keep_log),
      per_edge_(options.per_edge),
      dense_(options.tree_nodes > 0) {
  if (per_edge_) {
    slots_.resize(dense_ ? 2 * static_cast<std::size_t>(options.tree_nodes)
                         : 64);
  }
}

MessageCounts& MessageTrace::SlotFor(std::uint64_t key) {
  // Grow at 1/2 load to keep probe chains short.
  if ((used_slots_ + 1) * 2 > slots_.size()) GrowSlots();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = Hash(key) & mask;
  while (slots_[i].key != key) {
    if (slots_[i].key == kEmptyKey) {
      slots_[i].key = key;
      ++used_slots_;
      break;
    }
    i = (i + 1) & mask;
  }
  return slots_[i].counts;
}

void MessageTrace::GrowSlots() {
  std::vector<EdgeSlot> old = std::move(slots_);
  slots_.assign(old.size() * 2, EdgeSlot{});
  const std::size_t mask = slots_.size() - 1;
  for (const EdgeSlot& s : old) {
    if (s.key == kEmptyKey) continue;
    std::size_t i = Hash(s.key) & mask;
    while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

MessageCounts MessageTrace::EdgeCost(NodeId u, NodeId v) const {
  if (slots_.empty()) return {};
  const std::uint64_t key = Key(u, v);
  if (dense_) {
    const std::size_t i = DenseIndex(u, v);
    if (i < slots_.size() && slots_[i].key == key) return slots_[i].counts;
    return {};
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = Hash(key) & mask;
  while (slots_[i].key != kEmptyKey) {
    if (slots_[i].key == key) return slots_[i].counts;
    i = (i + 1) & mask;
  }
  return {};
}

std::vector<std::pair<std::pair<NodeId, NodeId>, MessageCounts>>
MessageTrace::AllEdgeCosts() const {
  std::vector<std::pair<std::pair<NodeId, NodeId>, MessageCounts>> result;
  result.reserve(used_slots_);
  for (const EdgeSlot& s : slots_) {
    if (s.key == kEmptyKey) continue;
    const NodeId u = static_cast<NodeId>(s.key >> 32);
    const NodeId v = static_cast<NodeId>(s.key & 0xffffffffu);
    result.push_back({{u, v}, s.counts});
  }
  return result;
}

void MessageTrace::Reset() {
  totals_ = {};
  if (per_edge_) slots_.assign(dense_ ? slots_.size() : 64, EdgeSlot{});
  used_slots_ = 0;
  log_.clear();
}

std::uint64_t TraceHash(const std::vector<Message>& log) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;  // FNV-1a prime
  };
  for (const Message& m : log) {
    mix(static_cast<std::uint64_t>(m.type));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.from)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.to)));
    std::uint64_t bits;
    std::memcpy(&bits, &m.x, sizeof(bits));
    mix(bits);
    mix(m.flag ? 1u : 0u);
    mix(static_cast<std::uint64_t>(m.id));
    mix(static_cast<std::uint64_t>(m.release_ids.size()));
    for (const UpdateId id : m.release_ids) {
      mix(static_cast<std::uint64_t>(id));
    }
  }
  return h;
}

}  // namespace treeagg
