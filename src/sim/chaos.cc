#include "sim/chaos.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace treeagg {

namespace {
std::uint64_t EdgeKey(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}
}  // namespace

ChaosSimulator::ChaosSimulator(const Tree& tree, const PolicyFactory& factory,
                               FaultSchedule schedule)
    : ChaosSimulator(tree, factory, std::move(schedule), Options{}) {}

ChaosSimulator::ChaosSimulator(const Tree& tree, const PolicyFactory& factory,
                               FaultSchedule schedule, Options options)
    : tree_(&tree),
      op_(*options.op),
      options_(options),
      faults_(std::move(schedule)),
      rng_(options.seed),
      fault_rng_(faults_.seed()),
      trace_(MessageTrace::Options{.keep_log = options.keep_message_log,
                                   .per_edge = true,
                                   .tree_nodes = tree.size()}),
      transport_(this) {
  nodes_.reserve(static_cast<std::size_t>(tree.size()));
  for (NodeId u = 0; u < tree.size(); ++u) {
    const std::vector<NodeId> nbrs = tree.neighbors(u).ToVector();
    nodes_.push_back(std::make_unique<LeaseNode>(
        u, nbrs, op_, factory(u, nbrs), &transport_,
        [this](NodeId node, CombineToken token, Real value) {
          OnCombineDone(node, token, value);
        },
        options_.ghost_logging));
  }
}

void ChaosSimulator::PushDelivery(Message m, std::int64_t at) {
  Event e;
  e.time = at;
  e.seq = seq_++;
  e.is_delivery = true;
  e.message = std::move(m);
  events_.push(std::move(e));
}

void ChaosSimulator::ChaosTransport::Send(Message m) {
  ChaosSimulator& sim = *sim_;
  sim.trace_.Record(m);
  const std::int64_t now = sim.now_;
  const FaultSchedule& faults = sim.faults_;

  std::int64_t delay =
      sim.rng_.NextInt(sim.options_.min_delay, sim.options_.max_delay);
  if (const FaultEvent* d = faults.ActiveAt(FaultKind::kDelay, now)) {
    delay += sim.fault_rng_.NextInt(d->delay_min, d->delay_max);
  }
  // Gray failure: a slow sender stays up but everything it emits carries
  // extra seeded delay. WAN/geo edge profiles add per-edge latency+jitter
  // in both directions. Both compose with the baseline delay window.
  if (const FaultEvent* g = faults.GrayAt(m.from, now)) {
    delay += sim.fault_rng_.NextInt(g->delay_min, g->delay_max);
  }
  if (const FaultEvent* lat = faults.EdgeLatAt(m.from, m.to, now)) {
    delay += sim.fault_rng_.NextInt(lat->delay_min, lat->delay_max);
  }

  // Earliest admissible slot for this message, before FIFO clamping. Every
  // fault decision happens here at send time, so per-edge slots stay
  // monotone in send order and FIFO is preserved by construction.
  std::int64_t earliest = now + delay;

  if (const FaultEvent* drop = faults.ActiveAt(FaultKind::kDrop, now)) {
    if (sim.fault_rng_.NextBool(drop->p)) {
      // Parked until the loss window closes: loss + retransmit-after-heal.
      earliest = std::max(earliest, drop->end);
    }
  }
  if (faults.EdgeCutAt(m.from, m.to, now)) {
    earliest = std::max(earliest, faults.CutEnd(m.from, m.to, now));
  }
  // Asymmetric partition: only the from->to direction holds its traffic
  // until heal; the reverse direction is untouched.
  if (faults.SeveredAt(m.from, m.to, now)) {
    earliest = std::max(earliest, faults.SeverEnd(m.from, m.to, now));
  }
  // A delivery that would land while the destination is down waits for its
  // restart (the durable-state recovery replays it, in order).
  if (faults.CrashedAt(m.to, earliest)) {
    earliest = std::max(earliest, faults.CrashEnd(m.to, earliest));
  }

  const std::uint64_t key = EdgeKey(m.from, m.to);
  std::int64_t& front = sim.channel_front_[key];
  bool fifo = true;
  if (const FaultEvent* ro = faults.ActiveAt(FaultKind::kReorder, now)) {
    if (sim.fault_rng_.NextBool(ro->p)) fifo = false;
  }
  const std::int64_t at = fifo ? std::max(earliest, front + 1) : earliest;
  front = std::max(front, at);

  bool duplicate = false;
  if (const FaultEvent* dup = faults.ActiveAt(FaultKind::kDuplicate, now)) {
    duplicate = sim.fault_rng_.NextBool(dup->p);
  }
  if (duplicate) {
    std::int64_t& dup_front = sim.channel_front_[key];
    const std::int64_t dup_at = std::max(at + 1, dup_front + 1);
    dup_front = std::max(dup_front, dup_at);
    sim.PushDelivery(m, dup_at);
  }
  sim.PushDelivery(std::move(m), at);
}

void ChaosSimulator::OnCombineDone(NodeId node, CombineToken token,
                                   Real value) {
  const LeaseNode& n = *nodes_[static_cast<std::size_t>(node)];
  std::vector<std::pair<NodeId, ReqId>> gather(n.LastWrites().begin(),
                                               n.LastWrites().end());
  history_.CompleteCombine(
      static_cast<ReqId>(token), value, std::move(gather),
      static_cast<std::int64_t>(n.GhostLogEntries().size()), now_);
}

void ChaosSimulator::Dispatch(const Event& e) {
  if (e.is_delivery) {
    nodes_[static_cast<std::size_t>(e.message.to)]->Deliver(e.message);
    return;
  }
  const Request& r = e.request;
  // A request at a down node waits for the restart (fail-stop nodes accept
  // no requests; the driver retries after recovery).
  if (faults_.CrashedAt(r.node, now_)) {
    Event deferred;
    deferred.time = faults_.CrashEnd(r.node, now_);
    deferred.seq = seq_++;
    deferred.is_delivery = false;
    deferred.request = r;
    events_.push(std::move(deferred));
    return;
  }
  if (r.op == ReqType::kCombine) {
    const ReqId id = history_.BeginCombine(r.node, now_);
    nodes_[static_cast<std::size_t>(r.node)]->LocalCombine(id);
  } else {
    const ReqId id = history_.BeginWrite(r.node, r.arg, now_);
    nodes_[static_cast<std::size_t>(r.node)]->LocalWrite(r.arg, id);
    history_.CompleteWrite(id, now_);
  }
}

void ChaosSimulator::DrainEvents() {
  while (!events_.empty()) {
    Event e = events_.top();
    events_.pop();
    assert(e.time >= now_);
    now_ = e.time;
    Dispatch(e);
  }
}

void ChaosSimulator::Run(const std::vector<ScheduledRequest>& schedule) {
  for (const ScheduledRequest& s : schedule) {
    Event e;
    e.time = s.time;
    e.seq = seq_++;
    e.is_delivery = false;
    e.request = s.request;
    events_.push(std::move(e));
  }
  DrainEvents();
}

std::vector<ReqId> ChaosSimulator::RunWithFinalProbes(
    const std::vector<ScheduledRequest>& schedule) {
  Run(schedule);
  // The network has healed (nothing in flight, HealTime() passed) — probe
  // every node once for the convergence verdict.
  const std::int64_t probe_at = std::max(now_, faults_.HealTime()) + 1;
  const ReqId first = static_cast<ReqId>(history_.size());
  for (NodeId u = 0; u < tree_->size(); ++u) {
    Event e;
    e.time = probe_at;
    e.seq = seq_++;
    e.is_delivery = false;
    e.request = Request::Combine(u);
    events_.push(std::move(e));
  }
  DrainEvents();
  std::vector<ReqId> probes;
  probes.reserve(static_cast<std::size_t>(tree_->size()));
  for (ReqId id = first; id < static_cast<ReqId>(history_.size()); ++id) {
    if (history_.record(id).op == ReqType::kCombine) probes.push_back(id);
  }
  return probes;
}

std::vector<NodeGhostState> ChaosSimulator::GhostStates() const {
  std::vector<NodeGhostState> ghosts(static_cast<std::size_t>(tree_->size()));
  for (NodeId u = 0; u < tree_->size(); ++u) {
    ghosts[static_cast<std::size_t>(u)].node = u;
    ghosts[static_cast<std::size_t>(u)].write_log =
        nodes_[static_cast<std::size_t>(u)]->GhostLogEntries();
  }
  return ghosts;
}

}  // namespace treeagg
