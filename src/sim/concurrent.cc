#include "sim/concurrent.h"

#include <cassert>
#include <utility>

namespace treeagg {

namespace {
std::uint64_t EdgeKey(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}
}  // namespace

void ConcurrentSimulator::DelayTransport::Send(Message m) {
  ConcurrentSimulator& sim = *sim_;
  sim.trace_.Record(m);
  if (sim.options_.drop_probability > 0 &&
      sim.rng_.NextBool(sim.options_.drop_probability)) {
    return;  // injected loss
  }
  const std::int64_t delay =
      sim.rng_.NextInt(sim.options_.min_delay, sim.options_.max_delay);
  const std::uint64_t key = EdgeKey(m.from, m.to);
  std::int64_t& front = sim.channel_front_[key];
  // FIFO per directed edge: never deliver before an earlier send — unless
  // fault injection deliberately breaks the channel ordering.
  const std::int64_t at = sim.options_.violate_fifo
                              ? sim.now_ + delay
                              : std::max(sim.now_ + delay, front + 1);
  front = at;
  Event e;
  e.time = at;
  e.seq = sim.seq_++;
  e.is_delivery = true;
  e.message = std::move(m);
  sim.events_.push(std::move(e));
}

ConcurrentSimulator::ConcurrentSimulator(const Tree& tree,
                                         const PolicyFactory& factory)
    : ConcurrentSimulator(tree, factory, Options{}) {}

ConcurrentSimulator::ConcurrentSimulator(const Tree& tree,
                                         const PolicyFactory& factory,
                                         Options options)
    : tree_(&tree),
      op_(*options.op),
      options_(options),
      rng_(options.seed),
      trace_(MessageTrace::Options{.tree_nodes = tree.size()}),
      transport_(this) {
  nodes_.reserve(static_cast<std::size_t>(tree.size()));
  for (NodeId u = 0; u < tree.size(); ++u) {
    const std::vector<NodeId> nbrs = tree.neighbors(u).ToVector();
    nodes_.push_back(std::make_unique<LeaseNode>(
        u, nbrs, op_, factory(u, nbrs), &transport_,
        [this](NodeId node, CombineToken token, Real value) {
          OnCombineDone(node, token, value);
        },
        options_.ghost_logging));
  }
  if (options_.metrics != nullptr) {
    proto_metrics_ =
        obs::ProtocolMetrics::Register(*options_.metrics, {{"backend", "sim"}});
    g_queue_depth_ = options_.metrics->AddGauge(
        "treeagg_sim_event_queue_depth",
        "Pending events in the DES priority queue", {{"backend", "sim"}});
    g_queue_hwm_ = options_.metrics->AddGauge(
        "treeagg_sim_event_queue_hwm",
        "High-water mark of the DES event queue", {{"backend", "sim"}});
    for (auto& n : nodes_) n->set_metrics(&proto_metrics_);
  }
}

void ConcurrentSimulator::OnCombineDone(NodeId node, CombineToken token,
                                        Real value) {
  const LeaseNode& n = *nodes_[static_cast<std::size_t>(node)];
  std::vector<std::pair<NodeId, ReqId>> gather(n.LastWrites().begin(),
                                               n.LastWrites().end());
  history_.CompleteCombine(
      static_cast<ReqId>(token), value, std::move(gather),
      static_cast<std::int64_t>(n.GhostLogEntries().size()), now_);
}

void ConcurrentSimulator::Dispatch(const Event& e) {
  if (e.is_delivery) {
    nodes_[static_cast<std::size_t>(e.message.to)]->Deliver(e.message);
    return;
  }
  const Request& r = e.request;
  if (r.op == ReqType::kCombine) {
    const ReqId id = history_.BeginCombine(r.node, now_);
    nodes_[static_cast<std::size_t>(r.node)]->LocalCombine(id);
  } else {
    const ReqId id = history_.BeginWrite(r.node, r.arg, now_);
    nodes_[static_cast<std::size_t>(r.node)]->LocalWrite(r.arg, id);
    history_.CompleteWrite(id, now_);
  }
}

void ConcurrentSimulator::Run(const std::vector<ScheduledRequest>& schedule) {
  for (const ScheduledRequest& s : schedule) {
    Event e;
    e.time = s.time;
    e.seq = seq_++;
    e.is_delivery = false;
    e.request = s.request;
    events_.push(std::move(e));
  }
  while (!events_.empty()) {
    if (g_queue_depth_ != nullptr) {
      const auto depth = static_cast<std::int64_t>(events_.size());
      g_queue_depth_->Set(depth);
      g_queue_hwm_->MaxTo(depth);
    }
    Event e = events_.top();
    events_.pop();
    assert(e.time >= now_);
    now_ = e.time;
    Dispatch(e);
  }
  if (g_queue_depth_ != nullptr) g_queue_depth_->Set(0);
}

std::vector<NodeGhostState> ConcurrentSimulator::GhostStates() const {
  std::vector<NodeGhostState> ghosts(static_cast<std::size_t>(tree_->size()));
  for (NodeId u = 0; u < tree_->size(); ++u) {
    ghosts[static_cast<std::size_t>(u)].node = u;
    ghosts[static_cast<std::size_t>(u)].write_log =
        nodes_[static_cast<std::size_t>(u)]->GhostLogEntries();
  }
  return ghosts;
}

std::vector<ScheduledRequest> ScheduleWithGaps(const RequestSequence& sigma,
                                               std::int64_t max_gap, Rng& rng) {
  std::vector<ScheduledRequest> schedule;
  schedule.reserve(sigma.size());
  std::int64_t t = 0;
  for (const Request& r : sigma) {
    schedule.push_back({t, r});
    t += rng.NextInt(0, max_gap);
  }
  return schedule;
}

}  // namespace treeagg
