// ChaosSimulator: the concurrent DES of sim/concurrent.h driven through a
// FaultSchedule (fault/schedule.h).
//
// Fault semantics are chosen so that the convergence-safe subset (drop,
// delay, cut, crash) PRESERVES the paper's reliable-FIFO channel
// assumption in the limit: every message is eventually delivered exactly
// once, per-edge order intact. Concretely, all fault decisions are made at
// send time, and a faulted message is parked — its delivery slot pushed to
// the end of the fault window, clamped behind the edge's FIFO front:
//   drop(P)   — the message is parked until the drop window closes
//               (models loss + retransmit-after-heal);
//   delay     — extra delivery delay in [D0, D1];
//   cut(u-v)  — messages sent across the edge while it is down are parked
//               until the window closes (messages already in flight when
//               the cut begins still arrive, like packets on the wire);
//   crash(u)  — u is fail-stop with durable state: deliveries that would
//               arrive during u's down window are parked past it, and
//               requests scheduled at u are deferred to its restart. The
//               node object persists across the window, which models a
//               crashed daemon restarting from its durable snapshot
//               (LeaseNode::ExportState) — exactly the networked
//               backend's recovery path.
// The checker-validation faults dup(P) / reorder(P) deliberately break
// exactly-once / FIFO; runs using them are expected to fail consistency
// checks (see tests/sim/faults_test.cc for the unstructured originals).
//
// Determinism: one seeded Rng drives delays (Options::seed) and a second
// drives fault decisions (FaultSchedule::seed()); both are consumed in
// DES dispatch order, so a (schedule, options) pair replays bit-identical
// — pinned by TraceHash over the message log in tests.
#ifndef TREEAGG_SIM_CHAOS_H_
#define TREEAGG_SIM_CHAOS_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "consistency/causal_checker.h"  // NodeGhostState
#include "consistency/history.h"
#include "core/aggregate_op.h"
#include "core/lease_node.h"
#include "core/policies.h"
#include "fault/schedule.h"
#include "sim/concurrent.h"  // ScheduledRequest
#include "sim/trace.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

class ChaosSimulator {
 public:
  struct Options {
    const AggregateOp* op = &SumOp();
    bool ghost_logging = true;
    std::int64_t min_delay = 1;
    std::int64_t max_delay = 1;
    std::uint64_t seed = 1;
    // Keep the full message log so TraceHash can pin determinism.
    bool keep_message_log = false;
  };

  ChaosSimulator(const Tree& tree, const PolicyFactory& factory,
                 FaultSchedule schedule);
  ChaosSimulator(const Tree& tree, const PolicyFactory& factory,
                 FaultSchedule schedule, Options options);

  // Runs the workload to completion (all events drained).
  void Run(const std::vector<ScheduledRequest>& schedule);

  // Run() + one combine probed at every node after the schedule heals;
  // returns the probes' request ids for ConvergenceChecker.
  std::vector<ReqId> RunWithFinalProbes(
      const std::vector<ScheduledRequest>& schedule);

  const History& history() const { return history_; }
  const MessageTrace& trace() const { return trace_; }
  const FaultSchedule& faults() const { return faults_; }
  const Tree& tree() const { return *tree_; }
  const AggregateOp& op() const { return op_; }
  std::vector<NodeGhostState> GhostStates() const;
  std::int64_t now() const { return now_; }
  const LeaseNode& node(NodeId u) const {
    return *nodes_[static_cast<std::size_t>(u)];
  }

 private:
  struct Event {
    std::int64_t time;
    std::int64_t seq;
    bool is_delivery;
    Message message;
    Request request;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return std::pair(a.time, a.seq) > std::pair(b.time, b.seq);
    }
  };

  class ChaosTransport final : public Transport {
   public:
    explicit ChaosTransport(ChaosSimulator* sim) : sim_(sim) {}
    void Send(Message m) override;

   private:
    ChaosSimulator* sim_;
  };

  void OnCombineDone(NodeId node, CombineToken token, Real value);
  void Dispatch(const Event& e);
  void PushDelivery(Message m, std::int64_t at);
  void DrainEvents();

  const Tree* tree_;
  AggregateOp op_;
  Options options_;
  FaultSchedule faults_;
  Rng rng_;        // delays
  Rng fault_rng_;  // drop/dup/reorder coin flips, fault-delay draws
  MessageTrace trace_;
  History history_;
  ChaosTransport transport_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::unordered_map<std::uint64_t, std::int64_t> channel_front_;
  std::vector<std::unique_ptr<LeaseNode>> nodes_;
  std::int64_t now_ = 0;
  std::int64_t seq_ = 0;
};

}  // namespace treeagg

#endif  // TREEAGG_SIM_CHAOS_H_
