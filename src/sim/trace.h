// Message accounting.
//
// The paper's cost metric is the total number of protocol messages. For
// the per-edge analysis, Section 3.2 defines C(sigma, u, v) for an ordered
// pair of neighbors (u, v) as the count of: probes v->u, responses u->v,
// updates u->v, and releases v->u. Every message contributes to exactly one
// ordered pair, so the C values partition the total (Lemma 3.9) — a fact
// the tests verify directly.
//
// Record() sits on the driver's hot path (once per protocol message), so
// it is structured as: unconditional totals increments, plus two opt-out /
// opt-in features — per-edge accounting (flat open-addressed table instead
// of std::unordered_map; disable it via Options when only totals matter,
// e.g. in throughput benches and parallel sweeps) and the full message log
// (off by default; tests and diagram demos only).
#ifndef TREEAGG_SIM_TRACE_H_
#define TREEAGG_SIM_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/message.h"

namespace treeagg {

struct MessageCounts {
  std::int64_t probes = 0;
  std::int64_t responses = 0;
  std::int64_t updates = 0;
  std::int64_t releases = 0;

  std::int64_t total() const { return probes + responses + updates + releases; }
  MessageCounts& operator+=(const MessageCounts& other);
  friend bool operator==(const MessageCounts&, const MessageCounts&) = default;
};

class MessageTrace {
 public:
  struct Options {
    // Retain the full message sequence (tests and small demos only).
    bool keep_log = false;
    // Maintain C(sigma, u, v) per ordered neighbor pair. On by default;
    // turn off when only totals are consumed — Record() then degenerates
    // to a pair of increments.
    bool per_edge = true;
    // If nonzero, every recorded message travels an edge of a
    // parent-encoded tree over nodes [0, tree_nodes): each edge connects
    // its max endpoint (the child) to that child's unique parent, so the
    // ordered pair (u, v) is perfectly indexed by 2*max(u,v) + direction.
    // Per-edge accounting then uses a direct-indexed dense table — no
    // hashing, no probing. Leave zero for arbitrary topologies (SDIMS),
    // where two pairs can share a max endpoint and would collide.
    NodeId tree_nodes = 0;
  };

  MessageTrace() : MessageTrace(Options{}) {}
  // Back-compat shorthand: MessageTrace(true) == keep the message log.
  explicit MessageTrace(bool keep_log)
      : MessageTrace(Options{.keep_log = keep_log, .per_edge = true}) {}
  explicit MessageTrace(Options options);

  void Record(const Message& m) {
    switch (m.type) {
      case MsgType::kProbe:
        ++totals_.probes;
        break;
      case MsgType::kResponse:
        ++totals_.responses;
        break;
      case MsgType::kUpdate:
        ++totals_.updates;
        break;
      case MsgType::kRelease:
        ++totals_.releases;
        break;
    }
    if (per_edge_) RecordEdge(m);
    if (keep_log_) log_.push_back(m);
  }

  // Totals across all edges.
  const MessageCounts& totals() const { return totals_; }
  std::int64_t TotalMessages() const { return totals_.total(); }

  // C(sigma, u, v) for the ordered neighbor pair (u, v): probes v->u,
  // responses u->v, updates u->v, releases v->u. Zero for every pair when
  // per-edge accounting was disabled.
  MessageCounts EdgeCost(NodeId u, NodeId v) const;

  // All ordered pairs with nonzero cost (unspecified order).
  std::vector<std::pair<std::pair<NodeId, NodeId>, MessageCounts>>
  AllEdgeCosts() const;

  const std::vector<Message>& log() const { return log_; }

  // Snapshot/delta support: total messages since a marker.
  std::int64_t Mark() const { return totals_.total(); }

  void Reset();

 private:
  // Open-addressed (linear probing) table from the ordered-pair key to its
  // counts. kEmptyKey marks free slots; the ordered pair (0, 0) cannot
  // occur because messages never travel node -> itself.
  struct EdgeSlot {
    std::uint64_t key = kEmptyKey;
    MessageCounts counts;
  };
  static constexpr std::uint64_t kEmptyKey = 0;

  static std::uint64_t Key(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }
  static std::size_t Hash(std::uint64_t key) {
    // SplitMix64 finalizer: cheap and well-distributed.
    key ^= key >> 30;
    key *= 0xBF58476D1CE4E5B9ULL;
    key ^= key >> 27;
    key *= 0x94D049BB133111EBULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  // Dense index of the ordered pair (u, v) under the tree_nodes scheme.
  static std::size_t DenseIndex(NodeId u, NodeId v) {
    const NodeId child = u > v ? u : v;
    return 2 * static_cast<std::size_t>(child) + (u > v ? 1 : 0);
  }

  void RecordEdge(const Message& m) {
    // Classify into the ordered pair (u, v) per Section 3.2: probes and
    // releases travel v -> u, responses and updates travel u -> v.
    NodeId u, v;
    if (m.type == MsgType::kProbe || m.type == MsgType::kRelease) {
      u = m.to;
      v = m.from;
    } else {
      u = m.from;
      v = m.to;
    }
    MessageCounts& c = dense_ ? DenseSlotFor(u, v) : SlotFor(Key(u, v));
    switch (m.type) {
      case MsgType::kProbe:
        ++c.probes;
        break;
      case MsgType::kResponse:
        ++c.responses;
        break;
      case MsgType::kUpdate:
        ++c.updates;
        break;
      case MsgType::kRelease:
        ++c.releases;
        break;
    }
  }

  MessageCounts& DenseSlotFor(NodeId u, NodeId v) {
    EdgeSlot& s = slots_[DenseIndex(u, v)];
    s.key = Key(u, v);
    return s.counts;
  }

  MessageCounts& SlotFor(std::uint64_t key);
  void GrowSlots();

  bool keep_log_;
  bool per_edge_;
  bool dense_;
  MessageCounts totals_;
  std::vector<EdgeSlot> slots_;  // power-of-two size
  std::size_t used_slots_ = 0;
  std::vector<Message> log_;
};

// Order-sensitive FNV-1a fingerprint of a full message log: every field of
// every message (including release-id sets) feeds the hash, so two drivers
// produce the same value iff they emitted bit-identical message sequences.
// Used by the determinism regression tests to pin optimized drivers to the
// seed implementation's exact behaviour.
std::uint64_t TraceHash(const std::vector<Message>& log);

}  // namespace treeagg

#endif  // TREEAGG_SIM_TRACE_H_
