// Message accounting.
//
// The paper's cost metric is the total number of protocol messages. For
// the per-edge analysis, Section 3.2 defines C(sigma, u, v) for an ordered
// pair of neighbors (u, v) as the count of: probes v->u, responses u->v,
// updates u->v, and releases v->u. Every message contributes to exactly one
// ordered pair, so the C values partition the total (Lemma 3.9) — a fact
// the tests verify directly.
#ifndef TREEAGG_SIM_TRACE_H_
#define TREEAGG_SIM_TRACE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/message.h"

namespace treeagg {

struct MessageCounts {
  std::int64_t probes = 0;
  std::int64_t responses = 0;
  std::int64_t updates = 0;
  std::int64_t releases = 0;

  std::int64_t total() const { return probes + responses + updates + releases; }
  MessageCounts& operator+=(const MessageCounts& other);
};

class MessageTrace {
 public:
  // When keep_log is true the full message sequence is retained (tests and
  // small demos only; benches keep it off).
  explicit MessageTrace(bool keep_log = false) : keep_log_(keep_log) {}

  void Record(const Message& m);

  // Totals across all edges.
  const MessageCounts& totals() const { return totals_; }
  std::int64_t TotalMessages() const { return totals_.total(); }

  // C(sigma, u, v) for the ordered neighbor pair (u, v): probes v->u,
  // responses u->v, updates u->v, releases v->u.
  MessageCounts EdgeCost(NodeId u, NodeId v) const;

  // All ordered pairs with nonzero cost.
  std::vector<std::pair<std::pair<NodeId, NodeId>, MessageCounts>>
  AllEdgeCosts() const;

  const std::vector<Message>& log() const { return log_; }

  // Snapshot/delta support: total messages since a marker.
  std::int64_t Mark() const { return totals_.total(); }

  void Reset();

 private:
  static std::uint64_t Key(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  bool keep_log_;
  MessageCounts totals_;
  std::unordered_map<std::uint64_t, MessageCounts> per_edge_;
  std::vector<Message> log_;
};

}  // namespace treeagg

#endif  // TREEAGG_SIM_TRACE_H_
