// AggregationSystem: the library's main façade and the sequential
// execution driver.
//
// It instantiates one LeaseNode per tree node (mechanism + a policy from
// the supplied factory) over an in-process FIFO transport, and executes
// requests *sequentially* in the paper's sense: each request is initiated
// in a quiescent state and runs until the network is quiescent again.
//
// Typical use (see examples/quickstart.cc):
//
//   Tree tree = MakeKary(64, 4);
//   AggregationSystem sys(tree, RwwFactory());
//   sys.Write(3, 10.0);
//   Real total = sys.Combine(7);           // strictly consistent
//   std::cout << sys.trace().TotalMessages();
#ifndef TREEAGG_SIM_SYSTEM_H_
#define TREEAGG_SIM_SYSTEM_H_

#include <memory>
#include <vector>

#include "common/ring_queue.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "consistency/causal_checker.h"  // NodeGhostState
#include "consistency/history.h"
#include "core/aggregate_op.h"
#include "core/lease_node.h"
#include "core/policies.h"
#include "core/policy.h"
#include "sim/trace.h"
#include "tree/lease_graph.h"
#include "tree/topology.h"

namespace treeagg {

class AggregationSystem {
 public:
  struct Options {
    const AggregateOp* op = &SumOp();
    bool ghost_logging = false;  // Section 5 instrumentation
    bool keep_message_log = false;
    // Per-edge C(sigma, u, v) accounting. Disable when only message totals
    // are consumed (throughput benches, parallel sweeps): Record() then
    // costs two increments per message.
    bool edge_accounting = true;
    // Optional metrics sink (must outlive the system). When set, every
    // node reports per-kind send/receive and lease grant/revoke counters
    // under backend="seq", and Drain() maintains a queue-depth high-water
    // gauge. Null (the default) leaves the hot paths on their untaken
    // null-hook branch — the throughput benches never set this.
    obs::MetricsRegistry* metrics = nullptr;
    // Snapshot query tier: every node publishes its gval() into a seqlock
    // slot at each transition tail, and QueryNode() answers from the slot.
    // Off by default — publishing folds gval() per transition, and most
    // sequential workloads never read.
    bool query_tier = false;
  };

  AggregationSystem(const Tree& tree, const PolicyFactory& factory);
  AggregationSystem(const Tree& tree, const PolicyFactory& factory,
                    Options options);

  // Executes a combine at u to quiescence; returns the global aggregate.
  Real Combine(NodeId u);

  // Imprecise read: returns u's current local view of the global aggregate
  // (gval over cached neighbor values) WITHOUT exchanging any messages.
  // This is the zero-cost end of the paper's consistency/performance
  // spectrum — exact whenever all of u's leases are taken (then equal to
  // Combine(u)), stale otherwise. Not recorded in the history.
  Real ReadCached(NodeId u) const;

  // Snapshot read (requires Options::query_tier): the versioned answer u's
  // seqlock slot currently publishes — the same value ReadCached returns,
  // plus the epoch and ghost-log prefix that make it checkable offline.
  // Throws std::logic_error when the query tier is disabled.
  query::QueryAnswer QueryNode(NodeId u) const;

  // Executes a write at u to quiescence.
  void Write(NodeId u, Real arg);

  // Executes a whole request sequence sequentially.
  void Execute(const RequestSequence& sigma);

  // Delivers queued messages until the network is quiescent.
  void Drain();
  bool IsQuiescent() const { return queue_.empty(); }

  const Tree& tree() const { return *tree_; }
  const AggregateOp& op() const { return op_; }
  const MessageTrace& trace() const { return trace_; }
  MessageTrace& mutable_trace() { return trace_; }
  const History& history() const { return history_; }
  LeaseNode& node(NodeId u) { return *nodes_[static_cast<std::size_t>(u)]; }
  const LeaseNode& node(NodeId u) const {
    return *nodes_[static_cast<std::size_t>(u)];
  }

  // The lease graph G(Q) of the current quiescent state (Section 3.2).
  LeaseGraph CurrentLeaseGraph() const;

  // Ghost write-logs of every node (for the causal checker).
  std::vector<NodeGhostState> GhostStates() const;

 private:
  class QueueTransport final : public Transport {
   public:
    explicit QueueTransport(AggregationSystem* sys) : sys_(sys) {}
    void Send(Message m) override;

   private:
    AggregationSystem* sys_;
  };

  void OnCombineDone(NodeId node, CombineToken token, Real value);

  const Tree* tree_;
  AggregateOp op_;
  MessageTrace trace_;
  History history_;
  QueueTransport transport_;
  // In-flight messages; slots (and their SmallVec buffers) are recycled,
  // so steady-state Send/Deliver traffic never allocates.
  RingQueue<Message> queue_;
  // Scratch message reused by Drain() so each delivery is a cheap move.
  Message scratch_;
  std::vector<std::unique_ptr<LeaseNode>> nodes_;
  std::unique_ptr<query::SnapshotTable> snapshots_;  // null unless query_tier
  obs::ProtocolMetrics proto_metrics_;
  obs::Gauge* g_queue_hwm_ = nullptr;
  std::int64_t clock_ = 0;
  bool ghost_;
};

}  // namespace treeagg

#endif  // TREEAGG_SIM_SYSTEM_H_
