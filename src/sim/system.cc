#include "sim/system.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace treeagg {

namespace {
void CheckNode(const Tree& tree, NodeId u, const char* what) {
  if (u < 0 || u >= tree.size()) {
    throw std::out_of_range(std::string(what) + ": node " +
                            std::to_string(u) + " outside tree of size " +
                            std::to_string(tree.size()));
  }
}
}  // namespace

void AggregationSystem::QueueTransport::Send(Message m) {
  sys_->trace_.Record(m);
  sys_->queue_.Push(std::move(m));
}

AggregationSystem::AggregationSystem(const Tree& tree,
                                     const PolicyFactory& factory)
    : AggregationSystem(tree, factory, Options{}) {}

AggregationSystem::AggregationSystem(const Tree& tree,
                                     const PolicyFactory& factory,
                                     Options options)
    : tree_(&tree),
      op_(*options.op),
      trace_(MessageTrace::Options{.keep_log = options.keep_message_log,
                                   .per_edge = options.edge_accounting,
                                   .tree_nodes = tree.size()}),
      transport_(this),
      ghost_(options.ghost_logging) {
  nodes_.reserve(static_cast<std::size_t>(tree.size()));
  for (NodeId u = 0; u < tree.size(); ++u) {
    const std::vector<NodeId> nbrs = tree.neighbors(u).ToVector();
    nodes_.push_back(std::make_unique<LeaseNode>(
        u, nbrs, op_, factory(u, nbrs), &transport_,
        [this](NodeId node, CombineToken token, Real value) {
          OnCombineDone(node, token, value);
        },
        ghost_));
  }
  if (options.query_tier) {
    snapshots_ =
        std::make_unique<query::SnapshotTable>(static_cast<std::size_t>(tree.size()));
    for (NodeId u = 0; u < tree.size(); ++u) {
      nodes_[static_cast<std::size_t>(u)]->set_query_slot(snapshots_->slot(u));
    }
  }
  if (options.metrics != nullptr) {
    proto_metrics_ =
        obs::ProtocolMetrics::Register(*options.metrics, {{"backend", "seq"}});
    g_queue_hwm_ = options.metrics->AddGauge(
        "treeagg_driver_queue_depth_hwm",
        "High-water mark of the in-process message queue",
        {{"backend", "seq"}});
    for (auto& n : nodes_) n->set_metrics(&proto_metrics_);
  }
}

void AggregationSystem::OnCombineDone(NodeId node, CombineToken token,
                                      Real value) {
  const LeaseNode& n = *nodes_[static_cast<std::size_t>(node)];
  std::vector<std::pair<NodeId, ReqId>> gather(n.LastWrites().begin(),
                                               n.LastWrites().end());
  history_.CompleteCombine(
      static_cast<ReqId>(token), value, std::move(gather),
      static_cast<std::int64_t>(n.GhostLogEntries().size()), clock_++);
}

Real AggregationSystem::ReadCached(NodeId u) const {
  CheckNode(*tree_, u, "ReadCached");
  return nodes_[static_cast<std::size_t>(u)]->Gval();
}

query::QueryAnswer AggregationSystem::QueryNode(NodeId u) const {
  CheckNode(*tree_, u, "QueryNode");
  if (snapshots_ == nullptr) {
    throw std::logic_error(
        "QueryNode: query tier disabled (set Options::query_tier)");
  }
  return snapshots_->Read(u);
}

Real AggregationSystem::Combine(NodeId u) {
  CheckNode(*tree_, u, "Combine");
  const ReqId id = history_.BeginCombine(u, clock_++);
  nodes_[static_cast<std::size_t>(u)]->LocalCombine(id);
  Drain();
  const RequestRecord& r = history_.record(id);
  assert(r.completed() && "sequential combine must complete at quiescence");
  return r.retval;
}

void AggregationSystem::Write(NodeId u, Real arg) {
  CheckNode(*tree_, u, "Write");
  const ReqId id = history_.BeginWrite(u, arg, clock_++);
  nodes_[static_cast<std::size_t>(u)]->LocalWrite(arg, id);
  history_.CompleteWrite(id, clock_++);
  Drain();
}

void AggregationSystem::Execute(const RequestSequence& sigma) {
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      Combine(r.node);
    } else {
      Write(r.node, r.arg);
    }
  }
}

void AggregationSystem::Drain() {
  // Pop by move into a reusable scratch slot: delivery may enqueue further
  // messages (growing the ring), so we must not hold a reference into it.
  while (!queue_.empty()) {
    if (g_queue_hwm_) {
      g_queue_hwm_->MaxTo(static_cast<std::int64_t>(queue_.size()));
    }
    queue_.PopInto(scratch_);
    nodes_[static_cast<std::size_t>(scratch_.to)]->Deliver(scratch_);
  }
}

LeaseGraph AggregationSystem::CurrentLeaseGraph() const {
  LeaseGraph g(*tree_);
  for (NodeId u = 0; u < tree_->size(); ++u) {
    for (const NodeId v : tree_->neighbors(u)) {
      g.SetGranted(u, v, nodes_[static_cast<std::size_t>(u)]->granted(v));
    }
  }
  return g;
}

std::vector<NodeGhostState> AggregationSystem::GhostStates() const {
  std::vector<NodeGhostState> ghosts(static_cast<std::size_t>(tree_->size()));
  for (NodeId u = 0; u < tree_->size(); ++u) {
    ghosts[static_cast<std::size_t>(u)].node = u;
    ghosts[static_cast<std::size_t>(u)].write_log =
        nodes_[static_cast<std::size_t>(u)]->GhostLogEntries();
  }
  return ghosts;
}

}  // namespace treeagg
