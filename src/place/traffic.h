// Harvested per-tree-edge traffic counts, and their offline text format.
//
// The networked backend counts every protocol message routed over each
// tree edge (see NodeDaemon's per-edge traffic counters; harvested across
// daemons by NetDriver::HarvestTraffic). An edge is keyed by its CHILD
// node id — parent[u] < u makes that a unique dense key — so a traffic
// vector has one entry per node, entry 0 (the root, no parent edge)
// always zero.
//
// Text format (treeagg-traffic-v1), one directive per line, '#' comments:
//
//   treeagg-traffic-v1
//   nodes 4096
//   edge 1 1057        # child-node-id message-count, nonzero edges only
//   edge 2 12
//
// `treeagg_cli drive --traffic-out FILE` writes one of these from a live
// run; `treeagg_cli place --traffic FILE` scores and optimizes placements
// against it offline.
#ifndef TREEAGG_PLACE_TRAFFIC_H_
#define TREEAGG_PLACE_TRAFFIC_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace treeagg::place {

// Parses the text format above. Throws std::invalid_argument with a
// message naming the offending line.
std::vector<std::uint64_t> ReadTraffic(std::istream& in);

void WriteTraffic(std::ostream& out, const std::vector<std::uint64_t>& edges);

// File wrappers. ReadTrafficFile throws std::runtime_error when the file
// cannot be opened.
std::vector<std::uint64_t> ReadTrafficFile(const std::string& path);
void WriteTrafficFile(const std::string& path,
                      const std::vector<std::uint64_t>& edges);

}  // namespace treeagg::place

#endif  // TREEAGG_PLACE_TRAFFIC_H_
