// Traffic-informed tree partitioning: assign tree nodes to daemons so the
// total observed message weight crossing daemon boundaries is minimized
// under a per-daemon capacity constraint.
//
// The Figure 2 cost model makes per-edge traffic workload-dependent: under
// RWW a hot writer's edge carries updates and releases all run long, while
// a cold subtree's edges go quiet once its leases settle. Static placements
// ("rr", "subtree" in net/cluster.h) ignore this. The optimizer here takes
// the per-tree-edge message counts harvested from the running cluster (see
// net/driver.h HarvestTraffic and place/traffic.h for the offline file
// format) and computes a placement in three deterministic phases:
//
//   1. Bottom-up cutting: walk nodes in decreasing id order (parent[u] < u,
//      so every child is seen before its parent) accumulating subtree
//      components; while a component exceeds the capacity, cut the kept
//      direct-child edge of minimum weight (ties to the lower child id).
//      By induction every attached child component already fits, so the
//      loop terminates, and cuts always fall on the cheapest local edges.
//   2. Packing: place the resulting subtree-contiguous components onto
//      daemons first-fit in root-id order (so preorder-adjacent components
//      — which share the cut edges — tend to land together and re-fuse
//      their edge). Falls back to size-descending first-fit and finally to
//      a plain balanced preorder split, which always fits.
//   3. Boundary refinement: Kernighan–Lin-style single-node sweeps. For
//      each node, compare the traffic it exchanges with its current daemon
//      against each daemon hosting a tree neighbor, and move the node when
//      the gain is positive and the target has room. Repeats until a sweep
//      makes no move (at most kRefineSweeps).
//
// Everything is deterministic given (tree, weights, daemons, capacity):
// identical inputs produce identical plans, which the tests pin.
#ifndef TREEAGG_PLACE_PLACEMENT_H_
#define TREEAGG_PLACE_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace treeagg::place {

struct PlacementPlan {
  std::vector<int> node_daemon;    // node -> daemon, same shape as
                                   // ClusterConfig::node_daemon
  std::uint64_t cross_weight = 0;  // total weight on cross-daemon edges
  int cross_edges = 0;             // number of cross-daemon tree edges
};

// Total observed weight of tree edges whose endpoints live on different
// daemons. `edge_weight` is indexed by the CHILD node id of the edge
// (parent[u] < u makes the child id a unique edge key); entry 0 is unused.
std::uint64_t CrossWeight(const std::vector<NodeId>& tree_parent,
                          const std::vector<std::uint64_t>& edge_weight,
                          const std::vector<int>& node_daemon);

// Number of tree edges whose endpoints live on different daemons.
int CrossEdges(const std::vector<NodeId>& tree_parent,
               const std::vector<int>& node_daemon);

// Computes a placement of `tree_parent.size()` nodes onto `daemons`
// daemons minimizing CrossWeight subject to every daemon hosting at most
// `capacity` nodes. capacity == 0 selects the default bound
// ceil(n/d) + ceil(ceil(n/d)/4) (~25% headroom over perfectly balanced).
// Throws std::invalid_argument when the inputs are malformed or the
// capacity makes the request infeasible (capacity * daemons < n).
// Deterministic: identical inputs yield identical plans. Daemons may end
// up empty when n < daemons.
PlacementPlan OptimizePlacement(const std::vector<NodeId>& tree_parent,
                                const std::vector<std::uint64_t>& edge_weight,
                                int daemons, std::size_t capacity = 0);

}  // namespace treeagg::place

#endif  // TREEAGG_PLACE_PLACEMENT_H_
