#include "place/traffic.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace treeagg::place {
namespace {

[[noreturn]] void BadLine(int lineno, const std::string& line,
                          const std::string& why) {
  throw std::invalid_argument("traffic file line " + std::to_string(lineno) +
                              " (" + line + "): " + why);
}

}  // namespace

std::vector<std::uint64_t> ReadTraffic(std::istream& in) {
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  std::vector<std::uint64_t> edges;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    std::string body =
        hash == std::string::npos ? line : line.substr(0, hash);
    std::istringstream ls(body);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only
    if (!saw_header) {
      if (word != "treeagg-traffic-v1") {
        BadLine(lineno, line, "expected treeagg-traffic-v1 header");
      }
      saw_header = true;
      continue;
    }
    if (word == "nodes") {
      long long n = 0;
      if (!(ls >> n) || n < 1) BadLine(lineno, line, "bad node count");
      if (!edges.empty()) BadLine(lineno, line, "duplicate nodes line");
      edges.assign(static_cast<std::size_t>(n), 0);
    } else if (word == "edge") {
      if (edges.empty()) BadLine(lineno, line, "edge before nodes line");
      long long child = 0;
      unsigned long long count = 0;
      if (!(ls >> child >> count)) BadLine(lineno, line, "expected: edge CHILD COUNT");
      if (child < 1 || static_cast<std::size_t>(child) >= edges.size()) {
        BadLine(lineno, line, "edge child id out of range");
      }
      edges[static_cast<std::size_t>(child)] = count;
    } else {
      BadLine(lineno, line, "unknown directive '" + word + "'");
    }
  }
  if (!saw_header) {
    throw std::invalid_argument("traffic file: missing treeagg-traffic-v1 header");
  }
  if (edges.empty()) {
    throw std::invalid_argument("traffic file: missing nodes line");
  }
  return edges;
}

void WriteTraffic(std::ostream& out, const std::vector<std::uint64_t>& edges) {
  out << "treeagg-traffic-v1\n";
  out << "nodes " << edges.size() << "\n";
  for (std::size_t u = 1; u < edges.size(); ++u) {
    if (edges[u] != 0) out << "edge " << u << " " << edges[u] << "\n";
  }
}

std::vector<std::uint64_t> ReadTrafficFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open traffic file: " + path);
  return ReadTraffic(in);
}

void WriteTrafficFile(const std::string& path,
                      const std::vector<std::uint64_t>& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write traffic file: " + path);
  WriteTraffic(out, edges);
  if (!out.flush()) {
    throw std::runtime_error("failed writing traffic file: " + path);
  }
}

}  // namespace treeagg::place
