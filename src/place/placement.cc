#include "place/placement.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace treeagg::place {
namespace {

void ValidateInputs(const std::vector<NodeId>& parent,
                    const std::vector<std::uint64_t>& weight, int daemons) {
  if (parent.empty()) {
    throw std::invalid_argument("OptimizePlacement: empty tree");
  }
  if (daemons < 1) {
    throw std::invalid_argument("OptimizePlacement: need at least one daemon");
  }
  if (weight.size() != parent.size()) {
    throw std::invalid_argument(
        "OptimizePlacement: edge_weight size " +
        std::to_string(weight.size()) + " != node count " +
        std::to_string(parent.size()));
  }
  // Node 0 is the root by construction; its parent entry is ignored, so
  // both conventions (kInvalidNode and the net stack's 0) are accepted.
  if (parent[0] != kInvalidNode && parent[0] != 0) {
    throw std::invalid_argument("OptimizePlacement: node 0 must be the root");
  }
  for (std::size_t u = 1; u < parent.size(); ++u) {
    if (parent[u] < 0 || parent[u] >= static_cast<NodeId>(u)) {
      throw std::invalid_argument(
          "OptimizePlacement: parent[" + std::to_string(u) +
          "] must be < the node id");
    }
  }
}

// CSR children lists via counting sort (same technique as net/cluster.cc's
// DfsPreorder, kept local so place does not depend on net).
struct Children {
  std::vector<std::int32_t> start;  // n + 1 offsets
  std::vector<NodeId> child;        // children in ascending id order

  explicit Children(const std::vector<NodeId>& parent) {
    const std::size_t n = parent.size();
    start.assign(n + 1, 0);
    for (std::size_t u = 1; u < n; ++u) {
      ++start[static_cast<std::size_t>(parent[u]) + 1];
    }
    for (std::size_t i = 1; i <= n; ++i) start[i] += start[i - 1];
    child.resize(n - 1);
    std::vector<std::int32_t> fill(start.begin(), start.end() - 1);
    for (std::size_t u = 1; u < n; ++u) {
      child[static_cast<std::size_t>(
          fill[static_cast<std::size_t>(parent[u])]++)] =
          static_cast<NodeId>(u);
    }
  }
};

// Balanced contiguous-preorder split (the static "subtree" baseline):
// always feasible because ceil(n/d) <= capacity by construction. Used as
// the packing fallback of last resort.
std::vector<int> PreorderSplit(const std::vector<NodeId>& parent,
                               const Children& kids, int daemons) {
  const std::size_t n = parent.size();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> stack = {0};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    order.push_back(u);
    const std::size_t b = static_cast<std::size_t>(kids.start[u]);
    const std::size_t e = static_cast<std::size_t>(kids.start[u + 1]);
    for (std::size_t i = e; i > b; --i) {  // reversed: pop ascending
      stack.push_back(kids.child[i - 1]);
    }
  }
  std::vector<int> plan(n, 0);
  const std::size_t base = n / static_cast<std::size_t>(daemons);
  const std::size_t extra = n % static_cast<std::size_t>(daemons);
  std::size_t pos = 0;
  for (int d = 0; d < daemons; ++d) {
    const std::size_t take = base + (static_cast<std::size_t>(d) < extra);
    for (std::size_t i = 0; i < take; ++i) {
      plan[static_cast<std::size_t>(order[pos++])] = d;
    }
  }
  return plan;
}

// First-fit packing of components (given in `roots` order) into bins of
// size `cap`. Returns an empty vector when some component does not fit.
std::vector<int> FirstFit(const std::vector<NodeId>& roots,
                          const std::vector<std::size_t>& comp_size,
                          int daemons, std::size_t cap) {
  std::vector<std::size_t> load(static_cast<std::size_t>(daemons), 0);
  std::vector<int> bin_of(comp_size.size(), -1);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const std::size_t sz =
        comp_size[static_cast<std::size_t>(roots[i])];
    int placed = -1;
    for (int d = 0; d < daemons; ++d) {
      if (load[static_cast<std::size_t>(d)] + sz <= cap) {
        placed = d;
        break;
      }
    }
    if (placed < 0) return {};
    load[static_cast<std::size_t>(placed)] += sz;
    bin_of[static_cast<std::size_t>(roots[i])] = placed;
  }
  return bin_of;
}

}  // namespace

std::uint64_t CrossWeight(const std::vector<NodeId>& tree_parent,
                          const std::vector<std::uint64_t>& edge_weight,
                          const std::vector<int>& node_daemon) {
  std::uint64_t total = 0;
  for (std::size_t u = 1; u < tree_parent.size(); ++u) {
    if (node_daemon[u] !=
        node_daemon[static_cast<std::size_t>(tree_parent[u])]) {
      total += u < edge_weight.size() ? edge_weight[u] : 0;
    }
  }
  return total;
}

int CrossEdges(const std::vector<NodeId>& tree_parent,
               const std::vector<int>& node_daemon) {
  int count = 0;
  for (std::size_t u = 1; u < tree_parent.size(); ++u) {
    count += node_daemon[u] !=
             node_daemon[static_cast<std::size_t>(tree_parent[u])];
  }
  return count;
}

PlacementPlan OptimizePlacement(const std::vector<NodeId>& tree_parent,
                                const std::vector<std::uint64_t>& edge_weight,
                                int daemons, std::size_t capacity) {
  ValidateInputs(tree_parent, edge_weight, daemons);
  const std::size_t n = tree_parent.size();
  const std::size_t d = static_cast<std::size_t>(daemons);
  const std::size_t balanced = (n + d - 1) / d;  // ceil(n/d)
  std::size_t cap = capacity;
  if (cap == 0) cap = balanced + (balanced + 3) / 4;
  if (cap * d < n) {
    throw std::invalid_argument(
        "OptimizePlacement: capacity " + std::to_string(cap) + " x " +
        std::to_string(daemons) + " daemons < " + std::to_string(n) +
        " nodes (infeasible)");
  }
  const Children kids(tree_parent);

  // Phase 1: bottom-up cutting. cut[u] == true means the edge
  // (u, parent[u]) is severed and u roots its own component. Children have
  // larger ids than parents, so a simple descending scan is bottom-up.
  std::vector<bool> cut(n, false);
  std::vector<std::size_t> comp_size(n, 1);
  for (std::size_t ui = n; ui-- > 0;) {
    const NodeId u = static_cast<NodeId>(ui);
    std::size_t size = 1;
    // Kept direct children, each already <= cap by induction.
    std::vector<NodeId> kept;
    for (std::int32_t i = kids.start[u]; i < kids.start[u + 1]; ++i) {
      const NodeId c = kids.child[static_cast<std::size_t>(i)];
      if (!cut[static_cast<std::size_t>(c)]) {
        kept.push_back(c);
        size += comp_size[static_cast<std::size_t>(c)];
      }
    }
    while (size > cap) {
      // Cut the cheapest kept child edge; ties go to the lower child id
      // (kept is in ascending id order, so strict < keeps the first).
      std::size_t best = 0;
      for (std::size_t i = 1; i < kept.size(); ++i) {
        if (edge_weight[static_cast<std::size_t>(kept[i])] <
            edge_weight[static_cast<std::size_t>(kept[best])]) {
          best = i;
        }
      }
      const NodeId c = kept[best];
      cut[static_cast<std::size_t>(c)] = true;
      size -= comp_size[static_cast<std::size_t>(c)];
      kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(best));
    }
    comp_size[ui] = size;
  }
  cut[0] = true;  // the root always starts a component

  // Phase 2: pack components onto daemons. Component roots in ascending id
  // order keep preorder-adjacent components (which share cut edges) in
  // nearby bins.
  std::vector<NodeId> roots;
  for (std::size_t u = 0; u < n; ++u) {
    if (cut[u]) roots.push_back(static_cast<NodeId>(u));
  }
  std::vector<int> bin_of = FirstFit(roots, comp_size, daemons, cap);
  if (bin_of.empty()) {
    // Retry size-descending (classic FFD feasibility boost), stable on id.
    std::vector<NodeId> by_size = roots;
    std::stable_sort(by_size.begin(), by_size.end(),
                     [&](NodeId a, NodeId b) {
                       return comp_size[static_cast<std::size_t>(a)] >
                              comp_size[static_cast<std::size_t>(b)];
                     });
    bin_of = FirstFit(by_size, comp_size, daemons, cap);
  }

  PlacementPlan plan;
  if (bin_of.empty()) {
    plan.node_daemon = PreorderSplit(tree_parent, kids, daemons);
  } else {
    // Propagate each component root's bin down its uncut subtree. Parents
    // precede children, so one ascending pass suffices.
    plan.node_daemon.assign(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
      plan.node_daemon[u] =
          cut[u] ? bin_of[u]
                 : plan.node_daemon[static_cast<std::size_t>(tree_parent[u])];
    }
  }

  // Phase 3: boundary refinement. Move single nodes toward the daemon
  // that carries most of their edge traffic, while capacity allows.
  std::vector<std::size_t> load(d, 0);
  for (std::size_t u = 0; u < n; ++u) {
    ++load[static_cast<std::size_t>(plan.node_daemon[u])];
  }
  constexpr int kRefineSweeps = 8;
  for (int sweep = 0; sweep < kRefineSweeps; ++sweep) {
    bool moved = false;
    for (std::size_t u = 0; u < n; ++u) {
      const int cur = plan.node_daemon[u];
      // Weight of u's tree edges grouped by the neighbor's daemon.
      // Neighbors: the parent edge (keyed by u) and child edges (keyed by
      // the child). Collect (daemon, weight) pairs.
      std::int64_t to_cur = 0;
      // gain[b] accumulated sparsely over at most degree(u) daemons.
      std::vector<std::pair<int, std::int64_t>> to_other;
      auto add = [&](int b, std::uint64_t w) {
        const std::int64_t sw = static_cast<std::int64_t>(w);
        if (b == cur) {
          to_cur += sw;
          return;
        }
        for (auto& [bd, bw] : to_other) {
          if (bd == b) {
            bw += sw;
            return;
          }
        }
        to_other.emplace_back(b, sw);
      };
      if (u > 0) {
        add(plan.node_daemon[static_cast<std::size_t>(tree_parent[u])],
            edge_weight[u]);
      }
      for (std::int32_t i = kids.start[u]; i < kids.start[u + 1]; ++i) {
        const NodeId c = kids.child[static_cast<std::size_t>(i)];
        add(plan.node_daemon[static_cast<std::size_t>(c)],
            edge_weight[static_cast<std::size_t>(c)]);
      }
      int best = -1;
      std::int64_t best_gain = 0;
      for (const auto& [bd, bw] : to_other) {
        const std::int64_t gain = bw - to_cur;
        if (gain > best_gain || (gain == best_gain && gain > 0 &&
                                 best >= 0 && bd < best)) {
          best = bd;
          best_gain = gain;
        }
      }
      if (best >= 0 && best_gain > 0 &&
          load[static_cast<std::size_t>(best)] < cap) {
        --load[static_cast<std::size_t>(cur)];
        ++load[static_cast<std::size_t>(best)];
        plan.node_daemon[u] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }

  plan.cross_weight = CrossWeight(tree_parent, edge_weight, plan.node_daemon);
  plan.cross_edges = CrossEdges(tree_parent, plan.node_daemon);
  return plan;
}

}  // namespace treeagg::place
