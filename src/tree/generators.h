// Tree topology generators used by tests, examples, and the benchmark
// harness. All generators return the canonical parent-vector encoding.
//
// The shapes cover the structural extremes relevant to the paper's message
// model: paths (max diameter), stars (max degree at the hub — the SDIMS /
// Astrolabe "root heavy" shape), balanced k-ary trees (the DHT aggregation
// hierarchy shape), caterpillars, brooms, and uniformly random recursive
// trees.
#ifndef TREEAGG_TREE_GENERATORS_H_
#define TREEAGG_TREE_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tree/topology.h"

namespace treeagg {

// Path 0 - 1 - ... - n-1.
Tree MakePath(NodeId n);

// Star with hub 0 and n-1 leaves.
Tree MakeStar(NodeId n);

// Balanced k-ary tree with n nodes (node i's parent is (i-1)/k).
Tree MakeKary(NodeId n, NodeId k);

// Caterpillar: a spine path of `spine` nodes, each spine node with `legs`
// leaf children. Total n = spine * (1 + legs).
Tree MakeCaterpillar(NodeId spine, NodeId legs);

// Broom: a path of `handle` nodes ending in a star of `bristles` leaves.
Tree MakeBroom(NodeId handle, NodeId bristles);

// Uniformly random recursive tree: node i attaches to a uniform node < i.
Tree MakeRandomTree(NodeId n, Rng& rng);

// Random tree with power-law-ish attachment (preferential attachment),
// producing high-degree hubs like DHT aggregation trees.
Tree MakePreferentialTree(NodeId n, Rng& rng);

// Named shape dispatch for parameter sweeps: "path", "star", "kary2",
// "kary4", "caterpillar", "broom", "random", "pref".
Tree MakeShape(const std::string& shape, NodeId n, std::uint64_t seed);

// The list of shape names MakeShape accepts.
const std::vector<std::string>& AllShapeNames();

}  // namespace treeagg

#endif  // TREEAGG_TREE_GENERATORS_H_
