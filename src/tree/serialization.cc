#include "tree/serialization.h"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace treeagg {

Tree TreeFromString(const std::string& text) {
  std::istringstream in(text);
  std::vector<NodeId> parent;
  std::string token;
  while (in >> token) {
    try {
      std::size_t consumed = 0;
      const long value = std::stol(token, &consumed);
      if (consumed != token.size()) throw std::invalid_argument(token);
      parent.push_back(static_cast<NodeId>(value));
    } catch (...) {
      throw std::invalid_argument("TreeFromString: bad token '" + token +
                                  "'");
    }
  }
  if (parent.empty()) {
    throw std::invalid_argument("TreeFromString: empty input");
  }
  return Tree(std::move(parent));  // Tree validates parent[i] in [0, i)
}

std::string TreeToString(const Tree& tree) {
  std::ostringstream out;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (i > 0) out << ' ';
    out << (i == 0 ? 0 : tree.RootedParent(i));
  }
  return out.str();
}

}  // namespace treeagg
