// Immutable tree topology with the structural queries the paper's analysis
// is phrased in:
//
//   * subtree(u, v)  — removing edge (u, v) splits T in two; subtree(u, v) is
//                      the component containing u (Section 2).
//   * u-parent of w  — the parent of w when T is rooted at u, i.e. the first
//                      hop on the path w -> u (Section 3.2).
//
// Both are answered in O(1) / O(log n) after O(n log n) preprocessing
// (Euler tour + binary lifting), so checkers and offline optima can be run
// on large trees.
#ifndef TREEAGG_TREE_TOPOLOGY_H_
#define TREEAGG_TREE_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace treeagg {

// An undirected edge of the tree, stored with endpoints in both orders when
// enumerating ordered pairs.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class Tree {
 public:
  // Builds a tree from a parent vector: parent[0] is ignored (node 0 is the
  // root used internally); parent[i] for i > 0 must be in [0, i).
  // This canonical encoding makes random tree generation trivial.
  explicit Tree(std::vector<NodeId> parent);

  // Number of nodes.
  NodeId size() const { return static_cast<NodeId>(parent_.size()); }

  // Neighbors of u, sorted ascending.
  const std::vector<NodeId>& neighbors(NodeId u) const { return adj_[u]; }

  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(adj_[u].size());
  }

  // True iff (u, v) is a tree edge.
  bool HasEdge(NodeId u, NodeId v) const;

  // All n-1 undirected edges, each once with u < v.
  const std::vector<Edge>& edges() const { return edges_; }

  // All 2(n-1) ordered pairs of neighboring nodes.
  std::vector<Edge> OrderedEdges() const;

  // True iff w lies in subtree(u, v), the component of T - (u, v) that
  // contains u. Requires (u, v) to be a tree edge.
  bool InSubtree(NodeId w, NodeId u, NodeId v) const;

  // Number of nodes in subtree(u, v).
  NodeId SubtreeSize(NodeId u, NodeId v) const;

  // The u-parent of w: the neighbor of w on the path from w to u.
  // Requires w != u.
  NodeId UParent(NodeId w, NodeId u) const;

  // First hop on the path from `from` to `to`; alias of UParent(from, to).
  NodeId NextHop(NodeId from, NodeId to) const { return UParent(from, to); }

  // Distance (edge count) between u and v.
  NodeId Distance(NodeId u, NodeId v) const;

  // Lowest common ancestor with respect to the internal root (node 0).
  NodeId Lca(NodeId u, NodeId v) const;

  // Nodes in BFS order from `root`.
  std::vector<NodeId> BfsOrder(NodeId root) const;

  // Maximum distance between any two nodes.
  NodeId Diameter() const;

  // Human-readable description, e.g. for experiment logs.
  std::string Describe() const;

  // Parent of u in the internal rooting at node 0 (kInvalidNode for 0).
  NodeId RootedParent(NodeId u) const {
    return u == 0 ? kInvalidNode : parent_[u];
  }

 private:
  bool IsAncestor(NodeId a, NodeId b) const {  // a ancestor-of-or-equal b
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }
  // Ancestor of u at depth d (d <= depth(u)).
  NodeId AncestorAtDepth(NodeId u, NodeId d) const;

  std::vector<NodeId> parent_;             // rooted at 0
  std::vector<std::vector<NodeId>> adj_;   // sorted adjacency
  std::vector<Edge> edges_;                // u < v
  std::vector<NodeId> depth_;
  std::vector<NodeId> tin_, tout_;         // Euler intervals
  std::vector<NodeId> rooted_size_;        // size of rooted subtree
  std::vector<std::vector<NodeId>> up_;    // binary lifting table
};

}  // namespace treeagg

#endif  // TREEAGG_TREE_TOPOLOGY_H_
