// Immutable tree topology with the structural queries the paper's analysis
// is phrased in:
//
//   * subtree(u, v)  — removing edge (u, v) splits T in two; subtree(u, v) is
//                      the component containing u (Section 2).
//   * u-parent of w  — the parent of w when T is rooted at u, i.e. the first
//                      hop on the path w -> u (Section 3.2).
//
// Both are answered in O(1) / O(log n) after O(n log n) preprocessing
// (Euler tour + binary lifting), so checkers and offline optima can be run
// on large trees.
#ifndef TREEAGG_TREE_TOPOLOGY_H_
#define TREEAGG_TREE_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace treeagg {

// An undirected edge of the tree, stored with endpoints in both orders when
// enumerating ordered pairs.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  friend bool operator==(const Edge&, const Edge&) = default;
};

// Non-owning view of a node's neighbor list inside the tree's flat CSR
// adjacency array. Iterates ascending, like the sorted std::vector it
// replaced; ToVector() materializes a copy where an owning container is
// genuinely needed (node construction, policy factories).
class NeighborSpan {
 public:
  using value_type = NodeId;
  using const_iterator = const NodeId*;

  NeighborSpan(const NodeId* data, std::size_t size)
      : data_(data), size_(size) {}

  const NodeId* begin() const { return data_; }
  const NodeId* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  NodeId operator[](std::size_t i) const { return data_[i]; }
  NodeId front() const { return data_[0]; }
  NodeId back() const { return data_[size_ - 1]; }

  std::vector<NodeId> ToVector() const {
    return std::vector<NodeId>(begin(), end());
  }

 private:
  const NodeId* data_;
  std::size_t size_;
};

class Tree {
 public:
  // Builds a tree from a parent vector: parent[0] is ignored (node 0 is the
  // root used internally); parent[i] for i > 0 must be in [0, i).
  // This canonical encoding makes random tree generation trivial.
  explicit Tree(std::vector<NodeId> parent);

  // Number of nodes.
  NodeId size() const { return static_cast<NodeId>(parent_.size()); }

  // Neighbors of u, sorted ascending. A view into the flat CSR adjacency
  // array — valid as long as the Tree is alive.
  NeighborSpan neighbors(NodeId u) const {
    const std::size_t begin = static_cast<std::size_t>(adj_offset_[u]);
    const std::size_t end = static_cast<std::size_t>(adj_offset_[u + 1]);
    return NeighborSpan(adj_flat_.data() + begin, end - begin);
  }

  NodeId degree(NodeId u) const {
    return adj_offset_[u + 1] - adj_offset_[u];
  }

  // True iff (u, v) is a tree edge.
  bool HasEdge(NodeId u, NodeId v) const;

  // All n-1 undirected edges, each once with u < v.
  const std::vector<Edge>& edges() const { return edges_; }

  // All 2(n-1) ordered pairs of neighboring nodes.
  std::vector<Edge> OrderedEdges() const;

  // True iff w lies in subtree(u, v), the component of T - (u, v) that
  // contains u. Requires (u, v) to be a tree edge.
  bool InSubtree(NodeId w, NodeId u, NodeId v) const;

  // Number of nodes in subtree(u, v).
  NodeId SubtreeSize(NodeId u, NodeId v) const;

  // The u-parent of w: the neighbor of w on the path from w to u.
  // Requires w != u.
  NodeId UParent(NodeId w, NodeId u) const;

  // First hop on the path from `from` to `to`; alias of UParent(from, to).
  NodeId NextHop(NodeId from, NodeId to) const { return UParent(from, to); }

  // Distance (edge count) between u and v.
  NodeId Distance(NodeId u, NodeId v) const;

  // Lowest common ancestor with respect to the internal root (node 0).
  NodeId Lca(NodeId u, NodeId v) const;

  // Nodes in BFS order from `root`.
  std::vector<NodeId> BfsOrder(NodeId root) const;

  // Maximum distance between any two nodes.
  NodeId Diameter() const;

  // Human-readable description, e.g. for experiment logs.
  std::string Describe() const;

  // Parent of u in the internal rooting at node 0 (kInvalidNode for 0).
  NodeId RootedParent(NodeId u) const {
    return u == 0 ? kInvalidNode : parent_[u];
  }

 private:
  bool IsAncestor(NodeId a, NodeId b) const {  // a ancestor-of-or-equal b
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }
  // Ancestor of u at depth d (d <= depth(u)).
  NodeId AncestorAtDepth(NodeId u, NodeId d) const;

  std::vector<NodeId> parent_;             // rooted at 0
  // Flat CSR adjacency: node u's neighbors (sorted ascending) live in
  // adj_flat_[adj_offset_[u] .. adj_offset_[u + 1]). One cache-friendly
  // array of 2(n-1) ids instead of n separately allocated vectors.
  std::vector<NodeId> adj_flat_;
  std::vector<NodeId> adj_offset_;         // size n + 1
  std::vector<Edge> edges_;                // u < v
  std::vector<NodeId> depth_;
  std::vector<NodeId> tin_, tout_;         // Euler intervals
  std::vector<NodeId> rooted_size_;        // size of rooted subtree
  std::vector<std::vector<NodeId>> up_;    // binary lifting table
};

}  // namespace treeagg

#endif  // TREEAGG_TREE_TOPOLOGY_H_
