// The lease graph G(Q) of Section 3.2: a directed graph on the tree's nodes
// with an edge (u, v) whenever u.granted[v] holds in quiescent state Q.
//
// Used by tests and checkers to state the paper's lemmas directly:
//  * Lemma 3.5: a write at u sends exactly one update to every node
//    reachable from u in G(Q).
//  * Lemma 3.3: a combine at u probes exactly the nodes v whose u-parent w
//    has no lease v.granted[w] (equivalently, the in-edge towards u is
//    missing).
#ifndef TREEAGG_TREE_LEASE_GRAPH_H_
#define TREEAGG_TREE_LEASE_GRAPH_H_

#include <vector>

#include "tree/topology.h"

namespace treeagg {

class LeaseGraph {
 public:
  explicit LeaseGraph(const Tree& tree);

  // Set / clear the directed lease edge u -> v (u.granted[v]).
  void SetGranted(NodeId u, NodeId v, bool granted);
  bool granted(NodeId u, NodeId v) const;

  // Nodes reachable from u by following granted edges, excluding u itself
  // (the set A of Lemma 3.5).
  std::vector<NodeId> ReachableFrom(NodeId u) const;

  // Nodes v != u such that v.granted[w] does NOT hold, where w is the
  // u-parent of v (the set A of Lemma 3.3: nodes that must be probed when a
  // combine is issued at u).
  std::vector<NodeId> ProbeSetFor(NodeId u) const;

  // Number of granted directed edges.
  int GrantedCount() const;

  const Tree& tree() const { return *tree_; }

 private:
  int EdgeIndex(NodeId u, NodeId v) const;

  const Tree* tree_;
  // granted_[2*e + d] where e is the undirected edge index and d orients it.
  std::vector<bool> granted_;
  std::vector<std::vector<int>> edge_index_;  // per node: index into edges()
};

}  // namespace treeagg

#endif  // TREEAGG_TREE_LEASE_GRAPH_H_
