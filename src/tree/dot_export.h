// Graphviz DOT export of topologies and lease graphs, for inspecting the
// system's state visually (e.g. `treeagg_cli --dot out.dot && dot -Tpng`).
//
// Tree edges render as undirected gray lines; granted leases overlay as
// directed bold edges (u -> v when u.granted[v]).
#ifndef TREEAGG_TREE_DOT_EXPORT_H_
#define TREEAGG_TREE_DOT_EXPORT_H_

#include <string>

#include "tree/lease_graph.h"
#include "tree/topology.h"

namespace treeagg {

// The bare topology.
std::string TreeToDot(const Tree& tree);

// Topology plus lease overlay.
std::string LeaseGraphToDot(const LeaseGraph& graph);

}  // namespace treeagg

#endif  // TREEAGG_TREE_DOT_EXPORT_H_
