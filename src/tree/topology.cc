#include "tree/topology.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace treeagg {

Tree::Tree(std::vector<NodeId> parent) : parent_(std::move(parent)) {
  const NodeId n = size();
  if (n <= 0) throw std::invalid_argument("Tree: empty parent vector");
  for (NodeId i = 1; i < n; ++i) {
    const NodeId p = parent_[i];
    if (p < 0 || p >= i) {
      throw std::invalid_argument("Tree: parent[i] must be in [0, i)");
    }
    edges_.push_back({p, i});  // p < i, so already (min, max)
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return std::pair(a.u, a.v) < std::pair(b.u, b.v);
  });

  // Flat CSR adjacency: count degrees, prefix-sum into offsets, then fill
  // each node's slice with its parent first and children in ascending
  // order — parent_[u] < u < child, so every slice comes out sorted.
  adj_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId i = 1; i < n; ++i) {
    ++adj_offset_[i + 1];
    ++adj_offset_[parent_[i] + 1];
  }
  for (NodeId u = 0; u < n; ++u) adj_offset_[u + 1] += adj_offset_[u];
  adj_flat_.resize(static_cast<std::size_t>(adj_offset_[n]));
  std::vector<NodeId> cursor(adj_offset_.begin(), adj_offset_.end() - 1);
  for (NodeId i = 1; i < n; ++i) adj_flat_[cursor[i]++] = parent_[i];
  for (NodeId i = 1; i < n; ++i) adj_flat_[cursor[parent_[i]]++] = i;

  // Iterative DFS from node 0 computing Euler intervals, depth, sizes.
  depth_.assign(n, 0);
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  rooted_size_.assign(n, 1);
  // Children in parent-vector encoding always have a larger index than the
  // parent, so a reverse index sweep computes rooted subtree sizes.
  for (NodeId i = n - 1; i >= 1; --i) rooted_size_[parent_[i]] += rooted_size_[i];
  for (NodeId i = 1; i < n; ++i) depth_[i] = depth_[parent_[i]] + 1;
  // Euler intervals via an explicit stack (avoid recursion on deep paths).
  NodeId timer = 0;
  std::vector<std::pair<NodeId, std::size_t>> stack;  // (node, next child idx)
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId i = 1; i < n; ++i) children[parent_[i]].push_back(i);
  stack.emplace_back(0, 0);
  tin_[0] = timer++;
  while (!stack.empty()) {
    auto& [u, ci] = stack.back();
    if (ci < children[u].size()) {
      const NodeId c = children[u][ci++];
      tin_[c] = timer++;
      stack.emplace_back(c, 0);
    } else {
      tout_[u] = timer;
      stack.pop_back();
    }
  }

  // Binary lifting table.
  int levels = 1;
  while ((NodeId{1} << levels) < n) ++levels;
  up_.assign(levels, std::vector<NodeId>(n, 0));
  for (NodeId i = 0; i < n; ++i) up_[0][i] = (i == 0) ? 0 : parent_[i];
  for (int k = 1; k < levels; ++k) {
    for (NodeId i = 0; i < n; ++i) up_[k][i] = up_[k - 1][up_[k - 1][i]];
  }
}

bool Tree::HasEdge(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= size() || v >= size() || u == v) return false;
  const NeighborSpan nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Tree::OrderedEdges() const {
  std::vector<Edge> result;
  result.reserve(2 * edges_.size());
  for (const Edge& e : edges_) {
    result.push_back({e.u, e.v});
    result.push_back({e.v, e.u});
  }
  return result;
}

NodeId Tree::AncestorAtDepth(NodeId u, NodeId d) const {
  assert(d <= depth_[u]);
  NodeId delta = depth_[u] - d;
  for (std::size_t k = 0; delta != 0; ++k, delta >>= 1) {
    if (delta & 1) u = up_[k][u];
  }
  return u;
}

bool Tree::InSubtree(NodeId w, NodeId u, NodeId v) const {
  assert(HasEdge(u, v));
  // Let c be the deeper endpoint (the child in the internal rooting). The
  // component containing c is exactly c's rooted subtree.
  const NodeId c = (depth_[u] > depth_[v]) ? u : v;
  const bool in_child_side = IsAncestor(c, w);
  return (c == u) ? in_child_side : !in_child_side;
}

NodeId Tree::SubtreeSize(NodeId u, NodeId v) const {
  assert(HasEdge(u, v));
  const NodeId c = (depth_[u] > depth_[v]) ? u : v;
  const NodeId child_side = rooted_size_[c];
  return (c == u) ? child_side : size() - child_side;
}

NodeId Tree::UParent(NodeId w, NodeId u) const {
  assert(w != u);
  if (IsAncestor(w, u)) {
    // u lies in w's rooted subtree: step from u up to depth(w) + 1.
    return AncestorAtDepth(u, depth_[w] + 1);
  }
  return parent_[w];
}

NodeId Tree::Lca(NodeId u, NodeId v) const {
  if (IsAncestor(u, v)) return u;
  if (IsAncestor(v, u)) return v;
  for (std::size_t k = up_.size(); k-- > 0;) {
    if (!IsAncestor(up_[k][u], v)) u = up_[k][u];
  }
  return parent_[u];
}

NodeId Tree::Distance(NodeId u, NodeId v) const {
  const NodeId l = Lca(u, v);
  return depth_[u] + depth_[v] - 2 * depth_[l];
}

std::vector<NodeId> Tree::BfsOrder(NodeId root) const {
  std::vector<NodeId> order;
  order.reserve(size());
  std::vector<bool> seen(size(), false);
  order.push_back(root);
  seen[root] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const NodeId w : neighbors(order[head])) {
      if (!seen[w]) {
        seen[w] = true;
        order.push_back(w);
      }
    }
  }
  return order;
}

NodeId Tree::Diameter() const {
  // Two BFS sweeps.
  auto farthest = [this](NodeId s) {
    std::vector<NodeId> dist(size(), -1);
    std::vector<NodeId> q{s};
    dist[s] = 0;
    NodeId best = s;
    for (std::size_t head = 0; head < q.size(); ++head) {
      const NodeId x = q[head];
      if (dist[x] > dist[best]) best = x;
      for (const NodeId w : neighbors(x)) {
        if (dist[w] < 0) {
          dist[w] = dist[x] + 1;
          q.push_back(w);
        }
      }
    }
    return std::pair(best, dist[best]);
  };
  const auto [a, unused] = farthest(0);
  (void)unused;
  return farthest(a).second;
}

std::string Tree::Describe() const {
  std::ostringstream os;
  NodeId max_deg = 0;
  for (NodeId i = 0; i < size(); ++i) max_deg = std::max(max_deg, degree(i));
  os << "tree(n=" << size() << ", diameter=" << Diameter()
     << ", max_degree=" << max_deg << ")";
  return os.str();
}

}  // namespace treeagg
