#include "tree/dot_export.h"

#include <sstream>

namespace treeagg {

namespace {

void EmitHeader(std::ostringstream& os) {
  os << "digraph treeagg {\n"
     << "  node [shape=circle, fontsize=10];\n"
     << "  edge [fontsize=9];\n";
}

void EmitTreeEdges(std::ostringstream& os, const Tree& tree) {
  for (const Edge& e : tree.edges()) {
    os << "  " << e.u << " -> " << e.v
       << " [dir=none, color=gray60];\n";
  }
}

}  // namespace

std::string TreeToDot(const Tree& tree) {
  std::ostringstream os;
  EmitHeader(os);
  EmitTreeEdges(os, tree);
  os << "}\n";
  return os.str();
}

std::string LeaseGraphToDot(const LeaseGraph& graph) {
  const Tree& tree = graph.tree();
  std::ostringstream os;
  EmitHeader(os);
  EmitTreeEdges(os, tree);
  for (const Edge& e : tree.OrderedEdges()) {
    if (graph.granted(e.u, e.v)) {
      os << "  " << e.u << " -> " << e.v
         << " [color=black, penwidth=1.8, label=\"lease\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace treeagg
