#include "tree/generators.h"

#include <stdexcept>

namespace treeagg {

Tree MakePath(NodeId n) {
  std::vector<NodeId> parent(n, 0);
  for (NodeId i = 1; i < n; ++i) parent[i] = i - 1;
  return Tree(std::move(parent));
}

Tree MakeStar(NodeId n) {
  std::vector<NodeId> parent(n, 0);
  return Tree(std::move(parent));
}

Tree MakeKary(NodeId n, NodeId k) {
  if (k < 1) throw std::invalid_argument("MakeKary: k must be >= 1");
  std::vector<NodeId> parent(n, 0);
  for (NodeId i = 1; i < n; ++i) parent[i] = (i - 1) / k;
  return Tree(std::move(parent));
}

Tree MakeCaterpillar(NodeId spine, NodeId legs) {
  const NodeId n = spine * (1 + legs);
  std::vector<NodeId> parent(n, 0);
  // Spine nodes are 0..spine-1; node s's legs follow as a block.
  for (NodeId s = 1; s < spine; ++s) parent[s] = s - 1;
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) parent[spine + s * legs + l] = s;
  }
  return Tree(std::move(parent));
}

Tree MakeBroom(NodeId handle, NodeId bristles) {
  const NodeId n = handle + bristles;
  std::vector<NodeId> parent(n, 0);
  for (NodeId i = 1; i < handle; ++i) parent[i] = i - 1;
  for (NodeId i = 0; i < bristles; ++i) parent[handle + i] = handle - 1;
  return Tree(std::move(parent));
}

Tree MakeRandomTree(NodeId n, Rng& rng) {
  std::vector<NodeId> parent(n, 0);
  for (NodeId i = 1; i < n; ++i) {
    parent[i] = static_cast<NodeId>(rng.NextBounded(static_cast<std::uint64_t>(i)));
  }
  return Tree(std::move(parent));
}

Tree MakePreferentialTree(NodeId n, Rng& rng) {
  std::vector<NodeId> parent(n, 0);
  // Endpoint list: each node appears once per incident edge, plus once for
  // existing. Sampling from it realizes degree-proportional attachment.
  std::vector<NodeId> endpoints{0};
  for (NodeId i = 1; i < n; ++i) {
    const NodeId p = endpoints[rng.NextBounded(endpoints.size())];
    parent[i] = p;
    endpoints.push_back(p);
    endpoints.push_back(i);
  }
  return Tree(std::move(parent));
}

Tree MakeShape(const std::string& shape, NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  if (shape == "path") return MakePath(n);
  if (shape == "star") return MakeStar(n);
  if (shape == "kary2") return MakeKary(n, 2);
  if (shape == "kary4") return MakeKary(n, 4);
  if (shape == "caterpillar") {
    const NodeId spine = std::max<NodeId>(1, n / 4);
    const NodeId legs = std::max<NodeId>(1, n / spine - 1);
    return MakeCaterpillar(spine, legs);
  }
  if (shape == "broom") {
    const NodeId handle = std::max<NodeId>(1, n / 2);
    return MakeBroom(handle, std::max<NodeId>(1, n - handle));
  }
  if (shape == "random") return MakeRandomTree(n, rng);
  if (shape == "pref") return MakePreferentialTree(n, rng);
  throw std::invalid_argument("MakeShape: unknown shape " + shape);
}

const std::vector<std::string>& AllShapeNames() {
  static const std::vector<std::string> kNames = {
      "path", "star", "kary2", "kary4", "caterpillar", "broom", "random",
      "pref"};
  return kNames;
}

}  // namespace treeagg
