#include "tree/lease_graph.h"

#include <algorithm>
#include <cassert>

namespace treeagg {

LeaseGraph::LeaseGraph(const Tree& tree) : tree_(&tree) {
  const auto& edges = tree.edges();
  granted_.assign(2 * edges.size(), false);
  edge_index_.assign(tree.size(), {});
  for (std::size_t e = 0; e < edges.size(); ++e) {
    edge_index_[edges[e].u].push_back(static_cast<int>(e));
    edge_index_[edges[e].v].push_back(static_cast<int>(e));
  }
}

int LeaseGraph::EdgeIndex(NodeId u, NodeId v) const {
  assert(tree_->HasEdge(u, v));
  for (const int e : edge_index_[u]) {
    const Edge& edge = tree_->edges()[e];
    if ((edge.u == u && edge.v == v) || (edge.u == v && edge.v == u)) {
      // Direction bit 0 encodes "from edge.u to edge.v".
      return 2 * e + (edge.u == u ? 0 : 1);
    }
  }
  assert(false && "not a tree edge");
  return -1;
}

void LeaseGraph::SetGranted(NodeId u, NodeId v, bool granted) {
  granted_[EdgeIndex(u, v)] = granted;
}

bool LeaseGraph::granted(NodeId u, NodeId v) const {
  return granted_[EdgeIndex(u, v)];
}

std::vector<NodeId> LeaseGraph::ReachableFrom(NodeId u) const {
  std::vector<NodeId> result;
  std::vector<NodeId> frontier{u};
  std::vector<bool> seen(tree_->size(), false);
  seen[u] = true;
  while (!frontier.empty()) {
    const NodeId x = frontier.back();
    frontier.pop_back();
    for (const NodeId w : tree_->neighbors(x)) {
      if (!seen[w] && granted(x, w)) {
        seen[w] = true;
        result.push_back(w);
        frontier.push_back(w);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> LeaseGraph::ProbeSetFor(NodeId u) const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < tree_->size(); ++v) {
    if (v == u) continue;
    const NodeId w = tree_->UParent(v, u);
    if (!granted(v, w)) result.push_back(v);
  }
  // Lemma 3.3's set A is further restricted to nodes whose whole path to u
  // is probe-reachable; prune nodes with a granted ancestorward edge.
  // A node v is probed iff every node x on the path from u to v (excluding
  // u) has x.granted[u-parent of x] false.
  std::vector<NodeId> pruned;
  for (const NodeId v : result) {
    bool reachable = true;
    NodeId x = v;
    while (x != u) {
      const NodeId w = tree_->UParent(x, u);
      if (granted(x, w)) {
        reachable = false;
        break;
      }
      x = w;
    }
    if (reachable) pruned.push_back(v);
  }
  return pruned;
}

int LeaseGraph::GrantedCount() const {
  return static_cast<int>(std::count(granted_.begin(), granted_.end(), true));
}

}  // namespace treeagg
