// Text serialization of tree topologies.
//
// The canonical encoding is the parent vector: "0 0 1 1 2" describes a
// 5-node tree where parent[i] is the i-th token (token 0 is ignored and
// conventionally written as 0). Round-trips exactly; errors throw
// std::invalid_argument with a message naming the offending token.
#ifndef TREEAGG_TREE_SERIALIZATION_H_
#define TREEAGG_TREE_SERIALIZATION_H_

#include <string>

#include "tree/topology.h"

namespace treeagg {

// "0 0 1 1 2" -> Tree. Accepts any whitespace separation.
Tree TreeFromString(const std::string& text);

// Tree -> "0 0 1 1 2" (parent vector of the internal rooting at node 0).
std::string TreeToString(const Tree& tree);

}  // namespace treeagg

#endif  // TREEAGG_TREE_SERIALIZATION_H_
