#include "query/validate.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

namespace treeagg::query {

std::vector<std::pair<NodeId, ReqId>> GatherAtPrefix(const GhostLog& log,
                                                     std::int64_t prefix) {
  std::unordered_map<NodeId, ReqId> last;
  const std::size_t n =
      std::min(log.size(), static_cast<std::size_t>(std::max<std::int64_t>(
                               prefix, 0)));
  for (std::size_t i = 0; i < n; ++i) last[log[i].node] = log[i].id;
  std::vector<std::pair<NodeId, ReqId>> gather(last.begin(), last.end());
  std::sort(gather.begin(), gather.end());
  return gather;
}

CheckResult ValidateQueryAnswers(const History& history,
                                 const std::vector<NodeGhostState>& ghosts,
                                 const std::vector<ServedQuery>& answers,
                                 const AggregateOp& op, Real tolerance) {
  // --- Per-node serving order: linearizable per published epoch.
  std::map<NodeId, std::vector<const ServedQuery*>> by_node;
  for (const ServedQuery& q : answers) by_node[q.node].push_back(&q);
  for (auto& [node, qs] : by_node) {
    std::sort(qs.begin(), qs.end(),
              [](const ServedQuery* a, const ServedQuery* b) {
                return a->serial < b->serial;
              });
    for (std::size_t i = 0; i + 1 < qs.size(); ++i) {
      const QueryAnswer& a = qs[i]->answer;
      const QueryAnswer& b = qs[i + 1]->answer;
      if (b.epoch < a.epoch) {
        std::ostringstream os;
        os << "node " << node << ": query served at serial "
           << qs[i + 1]->serial << " observed epoch " << b.epoch
           << " after epoch " << a.epoch << " was served (reads went back "
           << "in time)";
        return CheckResult::Fail(os.str());
      }
      if (b.epoch == a.epoch && !(b == a)) {
        std::ostringstream os;
        os << "node " << node << ": two answers for epoch " << a.epoch
           << " differ (torn read)";
        return CheckResult::Fail(os.str());
      }
      if (b.epoch > a.epoch && a.log_prefix >= 0 && b.log_prefix >= 0 &&
          b.log_prefix < a.log_prefix) {
        std::ostringstream os;
        os << "node " << node << ": epoch " << b.epoch
           << " published a shorter log prefix (" << b.log_prefix
           << ") than epoch " << a.epoch << " (" << a.log_prefix
           << ") — the append-only log ran backwards";
        return CheckResult::Fail(os.str());
      }
    }
  }

  // --- Compatibility + serialization against the reconstructed gather.
  for (const ServedQuery& q : answers) {
    if (q.answer.log_prefix < 0) continue;  // ghost logging was off
    const std::size_t u = static_cast<std::size_t>(q.node);
    if (u >= ghosts.size()) {
      std::ostringstream os;
      os << "query at node " << q.node << ": no harvested ghost state";
      return CheckResult::Fail(os.str());
    }
    const GhostLog& log = ghosts[u].write_log;
    if (q.answer.log_prefix > static_cast<std::int64_t>(log.size())) {
      std::ostringstream os;
      os << "query at node " << q.node << ": published log prefix "
         << q.answer.log_prefix << " exceeds the node's final log length "
         << log.size();
      return CheckResult::Fail(os.str());
    }
    Real expected = op.identity;
    for (const auto& [node, wid] : GatherAtPrefix(log, q.answer.log_prefix)) {
      if (wid < 0 || static_cast<std::size_t>(wid) >= history.size()) {
        std::ostringstream os;
        os << "query at node " << q.node << ": logged write " << wid
           << " is not in the history";
        return CheckResult::Fail(os.str());
      }
      expected = op(expected, history.record(wid).arg);
    }
    if (q.answer.value != expected) {
      const Real scale = std::max<Real>(1.0, std::abs(expected));
      if (!std::isfinite(expected) || !std::isfinite(q.answer.value) ||
          std::abs(q.answer.value - expected) > tolerance * scale) {
        std::ostringstream os;
        os << "query at node " << q.node << " (epoch " << q.answer.epoch
           << ") is incompatible with its log prefix " << q.answer.log_prefix
           << ": served " << q.answer.value << ", log implies " << expected;
        return CheckResult::Fail(os.str());
      }
    }
  }
  return CheckResult::Ok();
}

void LiftQueriesIntoHistory(History* history,
                            const std::vector<ServedQuery>& answers,
                            const std::vector<NodeGhostState>& ghosts) {
  std::int64_t at = 0;
  for (const RequestRecord& r : history->records()) {
    at = std::max({at, r.initiated_at + 1, r.completed_at + 1});
  }
  // Append the lifted combines, remembering per node how many of the
  // node's OWN writes each answer's prefix covers: that count — not the
  // harvest time — is where the read sits in the node's program order.
  std::map<NodeId, std::vector<std::pair<std::int64_t, ReqId>>> lifted;
  std::vector<char> is_lifted(history->size() + answers.size(), 0);
  for (const ServedQuery& q : answers) {
    const GhostLog& log = ghosts[static_cast<std::size_t>(q.node)].write_log;
    const ReqId id = history->BeginCombine(q.node, at++);
    history->CompleteCombine(id, q.answer.value,
                             GatherAtPrefix(log, q.answer.log_prefix),
                             q.answer.log_prefix, at++);
    const std::size_t n =
        std::min(log.size(), static_cast<std::size_t>(std::max<std::int64_t>(
                                 q.answer.log_prefix, 0)));
    std::int64_t own_writes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (log[i].node == q.node) ++own_writes;
    }
    lifted[q.node].push_back({own_writes, id});
    is_lifted[static_cast<std::size_t>(id)] = 1;
  }
  // Renumber each touched node's program order: pre-existing requests keep
  // their relative order, and a lifted read slots in right after the
  // own-write count its prefix covers (stable on ties = serve order).
  for (auto& [node, combines] : lifted) {
    std::stable_sort(combines.begin(), combines.end(),
                     [](const std::pair<std::int64_t, ReqId>& a,
                        const std::pair<std::int64_t, ReqId>& b) {
                       return a.first < b.first;
                     });
    std::vector<ReqId> existing;
    for (const RequestRecord& r : history->records()) {
      if (r.node == node && !is_lifted[static_cast<std::size_t>(r.id)]) {
        existing.push_back(r.id);
      }
    }
    std::sort(existing.begin(), existing.end(), [&](ReqId a, ReqId b) {
      return history->record(a).node_index < history->record(b).node_index;
    });
    std::int64_t next_index = 0;
    std::int64_t writes_seen = 0;
    std::size_t ci = 0;
    for (const ReqId id : existing) {
      if (history->record(id).op == ReqType::kWrite) {
        while (ci < combines.size() && combines[ci].first <= writes_seen) {
          history->SetNodeIndex(combines[ci++].second, next_index++);
        }
        ++writes_seen;
      }
      history->SetNodeIndex(id, next_index++);
    }
    while (ci < combines.size()) {
      history->SetNodeIndex(combines[ci++].second, next_index++);
    }
  }
}

}  // namespace treeagg::query
