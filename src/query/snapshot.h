// Versioned-snapshot read tier: seqlock-published aggregate slots.
//
// The lease mechanism (Figure 1) answers a read by running a combine, which
// costs probe/response messages on every untaken edge — the very messages
// the paper's Figure 2 cost model charges for. This tier gives each node a
// SnapshotSlot it publishes its current global-aggregate estimate into on
// every mechanism-visible change; queries are answered from the latest
// published snapshot without touching LeaseNode state and without emitting
// a single protocol message, so the Figure-2 ledger of a workload is
// bit-identical with or without readers attached.
//
// Concurrency contract (the reason this is a seqlock, not a mutex):
//   * Each slot has exactly ONE writer — the thread that owns the node's
//     LeaseNode (the sequential driver, a DES step, an actor-runtime
//     worker, or the daemon reactor whose shard hosts the node). Writers
//     never contend, so Publish is two relaxed-ish atomic bumps around
//     plain stores: wait-free, no CAS loop.
//   * Readers may be ANY thread (the daemon primary reactor serving
//     kQuery frames, a bench thread, a test). A reader retries while the
//     sequence word is odd (write in flight) or moved underneath it, so
//     it can never observe a torn {epoch, value, log_prefix} triple.
#ifndef TREEAGG_QUERY_SNAPSHOT_H_
#define TREEAGG_QUERY_SNAPSHOT_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace treeagg::query {

// One served (or published) snapshot of a node's aggregate estimate.
struct QueryAnswer {
  // Publish count of the slot, monotone per node, starting at 1 for the
  // first publish. Two answers from the same node with the same epoch are
  // the same snapshot — this is what "linearizable per published epoch"
  // means: reads of one epoch all observe one publish.
  std::uint64_t epoch = 0;
  // The node's gval() at publish time: its latest local estimate of the
  // global aggregate (exactly what a combine completing at that instant
  // would have returned).
  Real value = 0;
  // Length of the node's ghost log at publish time, or -1 when ghost
  // logging was off. The consistency checker reconstructs the gather of
  // this answer as recentwrites() over the first log_prefix entries of the
  // node's final harvested log (logs are append-only, so the publish-time
  // log is always a prefix of the final one).
  std::int64_t log_prefix = -1;

  friend bool operator==(const QueryAnswer&, const QueryAnswer&) = default;
};

// Seqlock slot. 64-byte aligned so concurrently-written slots of adjacent
// nodes never share a cache line (the TSan suite hammers exactly this).
class alignas(64) SnapshotSlot {
 public:
  SnapshotSlot() = default;
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  // Single-writer publish: seq goes odd, fields land, seq goes even.
  // The release store of the closing seq pairs with the acquire load that
  // opens a read attempt; the acquire fence after the opening store keeps
  // the field stores from sinking above it on weakly-ordered hardware.
  void Publish(Real value, std::int64_t log_prefix) noexcept {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    value_bits_.store(std::bit_cast<std::uint64_t>(value),
                      std::memory_order_relaxed);
    log_prefix_.store(log_prefix, std::memory_order_relaxed);
    seq_.store(s + 2, std::memory_order_release);
  }

  // One read attempt. Returns false (out untouched) when a publish was in
  // flight or completed mid-read; the caller retries.
  bool TryRead(QueryAnswer* out) const noexcept {
    const std::uint64_t s0 = seq_.load(std::memory_order_acquire);
    if (s0 & 1) return false;
    QueryAnswer a;
    a.epoch = epoch_.load(std::memory_order_relaxed);
    a.value = std::bit_cast<Real>(value_bits_.load(std::memory_order_relaxed));
    a.log_prefix = log_prefix_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) != s0) return false;
    *out = a;
    return true;
  }

  // Retrying read: loops TryRead until a consistent snapshot lands. The
  // writer is wait-free, so a reader starves only while publishes are
  // arriving faster than two loads — i.e. never for long.
  QueryAnswer Read() const noexcept {
    QueryAnswer a;
    while (!TryRead(&a)) {
    }
    return a;
  }

  // True once Publish has run at least once (epoch >= 1).
  bool Published() const noexcept {
    return seq_.load(std::memory_order_acquire) != 0;
  }

  // Pre-attach epoch seeding for node migration: a node moving between
  // snapshot tables gets a brand-new slot, but its published epochs must
  // stay monotone per node (ValidateQueryAnswers pins this per query
  // connection). Seeding the fresh slot with the old slot's last epoch
  // makes the attach-time publish continue the sequence at epoch + 1.
  // Must run before any reader or writer can see the slot — the daemon
  // swaps tables under its stop-the-world worker pause.
  void Seed(std::uint64_t epoch) noexcept {
    epoch_.store(epoch, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> value_bits_{0};
  std::atomic<std::int64_t> log_prefix_{-1};
};

static_assert(sizeof(SnapshotSlot) == 64, "one cache line per slot");

// One slot per node of a tree. The table is sized once at construction and
// never resized, so slot pointers handed to LeaseNodes stay stable for the
// table's lifetime.
class SnapshotTable {
 public:
  explicit SnapshotTable(std::size_t nodes)
      : slots_(std::make_unique<SnapshotSlot[]>(nodes)), size_(nodes) {}

  std::size_t size() const noexcept { return size_; }

  SnapshotSlot* slot(NodeId u) noexcept {
    return &slots_[static_cast<std::size_t>(u)];
  }
  const SnapshotSlot* slot(NodeId u) const noexcept {
    return &slots_[static_cast<std::size_t>(u)];
  }

  // Convenience retrying read of node u's latest snapshot.
  QueryAnswer Read(NodeId u) const noexcept {
    return slots_[static_cast<std::size_t>(u)].Read();
  }

 private:
  std::unique_ptr<SnapshotSlot[]> slots_;
  std::size_t size_;
};

}  // namespace treeagg::query

#endif  // TREEAGG_QUERY_SNAPSHOT_H_
