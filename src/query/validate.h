// Consistency validation for served snapshot-query answers.
//
// A query answer {epoch, value, log_prefix} served at node u claims: "at
// publish time, u's ghost log had length log_prefix and gval(u) was
// value". Logs are append-only, so the publish-time log is recoverable
// from the run's harvested final logs: it is the first log_prefix entries
// of u's final write-log. That recovery lets the answers be replayed
// against the same Section-5 machinery that vets combines:
//
//   * ValidateQueryAnswers checks, under arbitrary concurrency, that each
//     answer is compatible with its reconstructed gather (value == f over
//     recentwrites of the prefix) and that answers served in order from
//     one node are linearizable per published epoch (epochs monotone,
//     equal epochs identical, log prefixes monotone in epoch).
//   * LiftQueriesIntoHistory inserts the answers into a run's History as
//     combine records, positioned in each node's program order where the
//     published prefix says the read ran; the unmodified
//     CheckCausalConsistency then vets them exactly as it vets mechanism
//     combines. Valid when queries were issued serially between quiesced
//     requests (per-node serve order is a real program order).
#ifndef TREEAGG_QUERY_VALIDATE_H_
#define TREEAGG_QUERY_VALIDATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "consistency/strict_checker.h"
#include "core/aggregate_op.h"
#include "core/message.h"
#include "query/snapshot.h"

namespace treeagg::query {

// One answer as served to a client, with enough context to replay it.
struct ServedQuery {
  NodeId node = kInvalidNode;
  QueryAnswer answer;
  // Global serving order (the order answers left the serving thread).
  // Per-epoch linearizability is checked along this order per node.
  std::int64_t serial = -1;
};

// recentwrites over the first `prefix` entries of `log`: (node, id of the
// most recent write at node), omitting nodes with no write — the same
// shape RequestRecord::gather uses.
std::vector<std::pair<NodeId, ReqId>> GatherAtPrefix(const GhostLog& log,
                                                     std::int64_t prefix);

// Concurrency-safe validation of served answers against the run's write
// history and harvested ghost logs (see file comment). Answers with
// log_prefix < 0 (ghost logging off at publish time) only get the
// per-epoch checks.
CheckResult ValidateQueryAnswers(const History& history,
                                 const std::vector<NodeGhostState>& ghosts,
                                 const std::vector<ServedQuery>& answers,
                                 const AggregateOp& op, Real tolerance = 1e-9);

// Inserts each answer into `history` as a completed combine at its node
// (retval = answer.value, gather reconstructed via GatherAtPrefix),
// renumbering the node's program order so the read sits where its prefix
// places it, so CheckCausalConsistency can replay the answers. Requires
// every answer to carry a valid log_prefix.
void LiftQueriesIntoHistory(History* history,
                            const std::vector<ServedQuery>& answers,
                            const std::vector<NodeGhostState>& ghosts);

}  // namespace treeagg::query

#endif  // TREEAGG_QUERY_VALIDATE_H_
