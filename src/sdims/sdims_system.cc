#include "sdims/sdims_system.h"

#include <algorithm>
#include <cassert>

namespace treeagg {

const char* ToString(SdimsStrategy strategy) {
  switch (strategy) {
    case SdimsStrategy::kUpdateNone:
      return "update-none";
    case SdimsStrategy::kUpdateUp:
      return "update-up";
    case SdimsStrategy::kUpdateAll:
      return "update-all";
  }
  return "?";
}

SdimsSystem::SdimsSystem(const Tree& tree, SdimsStrategy strategy)
    : SdimsSystem(tree, strategy, Options{}) {}

SdimsSystem::SdimsSystem(const Tree& tree, SdimsStrategy strategy,
                         Options options)
    : tree_(&tree), strategy_(strategy), op_(*options.op),
      root_(options.root) {
  assert(root_ >= 0 && root_ < tree.size());
  nodes_.resize(static_cast<std::size_t>(tree.size()));
  parent_.assign(static_cast<std::size_t>(tree.size()), kInvalidNode);
  for (NodeId u = 0; u < tree.size(); ++u) {
    NodeState& state = nodes_[static_cast<std::size_t>(u)];
    state.val = op_.identity;
    state.global = op_.identity;
    if (u != root_) parent_[static_cast<std::size_t>(u)] = tree.UParent(u, root_);
    for (const NodeId v : tree.neighbors(u)) {
      if (u == root_ || v != parent_[static_cast<std::size_t>(u)]) {
        state.children.push_back(v);
        state.child_agg.push_back(op_.identity);
      }
    }
  }
}

void SdimsSystem::Count(MsgType type, NodeId from, NodeId to) {
  Message m;
  m.type = type;
  m.from = from;
  m.to = to;
  trace_.Record(m);
}

Real SdimsSystem::RecomputeSubtree(NodeId u) const {
  const NodeState& state = nodes_[static_cast<std::size_t>(u)];
  Real x = state.val;
  for (const Real agg : state.child_agg) x = op_(x, agg);
  return x;
}

Real SdimsSystem::SubtreeAggregate(NodeId u) const {
  return RecomputeSubtree(u);
}

Real SdimsSystem::CollectSubtree(NodeId u) {
  NodeState& state = nodes_[static_cast<std::size_t>(u)];
  Real x = state.val;
  for (std::size_t i = 0; i < state.children.size(); ++i) {
    const NodeId c = state.children[i];
    Count(MsgType::kProbe, u, c);        // collect request down
    const Real agg = CollectSubtree(c);
    Count(MsgType::kResponse, c, u);     // aggregate back up
    state.child_agg[i] = agg;
    x = op_(x, agg);
  }
  return x;
}

void SdimsSystem::PropagateUp(NodeId u) {
  NodeId x = u;
  while (x != root_) {
    const NodeId p = parent_[static_cast<std::size_t>(x)];
    const Real agg = RecomputeSubtree(x);
    Count(MsgType::kUpdate, x, p);
    NodeState& pstate = nodes_[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i < pstate.children.size(); ++i) {
      if (pstate.children[i] == x) {
        pstate.child_agg[i] = agg;
        break;
      }
    }
    x = p;
  }
}

void SdimsSystem::BroadcastGlobal(Real global) {
  // One message per edge, rooted BFS order.
  for (const NodeId u : tree_->BfsOrder(root_)) {
    nodes_[static_cast<std::size_t>(u)].global = global;
    for (const NodeId c : nodes_[static_cast<std::size_t>(u)].children) {
      Count(MsgType::kUpdate, u, c);
    }
  }
}

void SdimsSystem::Write(NodeId u, Real arg) {
  const ReqId id = history_.BeginWrite(u, arg, clock_++);
  nodes_[static_cast<std::size_t>(u)].val = arg;
  switch (strategy_) {
    case SdimsStrategy::kUpdateNone:
      break;  // nothing propagates
    case SdimsStrategy::kUpdateUp:
      PropagateUp(u);
      break;
    case SdimsStrategy::kUpdateAll:
      PropagateUp(u);
      BroadcastGlobal(RecomputeSubtree(root_));
      break;
  }
  history_.CompleteWrite(id, clock_++);
}

Real SdimsSystem::Combine(NodeId u) {
  const ReqId id = history_.BeginCombine(u, clock_++);
  Real result = op_.identity;
  switch (strategy_) {
    case SdimsStrategy::kUpdateNone: {
      // Route the request to the root, gather the whole tree, answer back.
      NodeId x = u;
      while (x != root_) {
        Count(MsgType::kProbe, x, parent_[static_cast<std::size_t>(x)]);
        x = parent_[static_cast<std::size_t>(x)];
      }
      result = CollectSubtree(root_);
      x = u;
      std::vector<NodeId> path;
      while (x != root_) {
        path.push_back(x);
        x = parent_[static_cast<std::size_t>(x)];
      }
      for (std::size_t i = path.size(); i-- > 0;) {
        Count(MsgType::kResponse,
              i + 1 < path.size() ? path[i + 1] : root_, path[i]);
      }
      break;
    }
    case SdimsStrategy::kUpdateUp: {
      // Ask the root; its caches are always current.
      NodeId x = u;
      std::vector<NodeId> path;
      while (x != root_) {
        Count(MsgType::kProbe, x, parent_[static_cast<std::size_t>(x)]);
        path.push_back(x);
        x = parent_[static_cast<std::size_t>(x)];
      }
      result = RecomputeSubtree(root_);
      for (std::size_t i = path.size(); i-- > 0;) {
        Count(MsgType::kResponse,
              i + 1 < path.size() ? path[i + 1] : root_, path[i]);
      }
      break;
    }
    case SdimsStrategy::kUpdateAll:
      result = nodes_[static_cast<std::size_t>(u)].global;
      break;
  }
  history_.CompleteCombine(id, result, {}, -1, clock_++);
  return result;
}

void SdimsSystem::Execute(const RequestSequence& sigma) {
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      Combine(r.node);
    } else {
      Write(r.node, r.arg);
    }
  }
}

}  // namespace treeagg
