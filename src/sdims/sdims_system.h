// A rooted aggregation hierarchy with SDIMS-style static update
// strategies — the baseline family the paper's introduction positions the
// lease mechanism against.
//
// SDIMS [Yalagandula & Dahlin, SIGCOMM'04] exposes per-attribute knobs
// controlling how far writes propagate ("update-local", "update-up",
// "update-all"); the application must pick a strategy A PRIORI. This
// module implements the three canonical points over a tree rooted at a
// designated node, message-for-message:
//
//   kUpdateNone  (MDS-2-like)    writes stay local; a read gathers the
//                                whole tree on demand (request up to the
//                                root, recursive collect down, responses
//                                back up, answer down to the reader).
//   kUpdateUp    (SDIMS default) writes propagate new subtree aggregates
//                                up to the root (depth(w) messages); the
//                                root is always current; a read asks the
//                                root (2 * depth(r) messages).
//   kUpdateAll   (Astrolabe-like) writes propagate up and the root then
//                                broadcasts the new global value down
//                                (depth(w) + n - 1 messages); reads are
//                                local and free.
//
// All three are strictly consistent in sequential executions; their costs
// are workload-brittle in exactly the way Section 1 describes, which
// bench_sdims_comparison quantifies against the adaptive lease-based RWW.
#ifndef TREEAGG_SDIMS_SDIMS_SYSTEM_H_
#define TREEAGG_SDIMS_SDIMS_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "consistency/history.h"
#include "core/aggregate_op.h"
#include "sim/trace.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

enum class SdimsStrategy { kUpdateNone, kUpdateUp, kUpdateAll };

const char* ToString(SdimsStrategy strategy);

class SdimsSystem {
 public:
  struct Options {
    const AggregateOp* op = &SumOp();
    NodeId root = 0;
  };

  SdimsSystem(const Tree& tree, SdimsStrategy strategy);
  SdimsSystem(const Tree& tree, SdimsStrategy strategy, Options options);

  // Sequential request API (mirrors AggregationSystem).
  Real Combine(NodeId u);
  void Write(NodeId u, Real arg);
  void Execute(const RequestSequence& sigma);

  const MessageTrace& trace() const { return trace_; }
  const History& history() const { return history_; }
  const Tree& tree() const { return *tree_; }
  SdimsStrategy strategy() const { return strategy_; }
  NodeId root() const { return root_; }

  // The aggregate over node u's rooted subtree, as currently cached at u
  // (exact under kUpdateUp / kUpdateAll; stale under kUpdateNone).
  Real SubtreeAggregate(NodeId u) const;

 private:
  struct NodeState {
    Real val;
    std::vector<NodeId> children;
    std::vector<Real> child_agg;   // cached subtree aggregates
    Real global = 0;               // kUpdateAll: cached global value
  };

  Real RecomputeSubtree(NodeId u) const;
  // Recursively collects u's subtree aggregate with explicit request /
  // response messages (kUpdateNone's read path).
  Real CollectSubtree(NodeId u);
  // Propagates u's new subtree aggregate towards the root, updating parent
  // caches; one update message per hop.
  void PropagateUp(NodeId u);
  // Broadcasts the global value from the root; one message per edge.
  void BroadcastGlobal(Real global);
  void Count(MsgType type, NodeId from, NodeId to);

  const Tree* tree_;
  const SdimsStrategy strategy_;
  AggregateOp op_;
  NodeId root_;
  std::vector<NodeState> nodes_;
  std::vector<NodeId> parent_;  // towards root_; kInvalidNode at root
  MessageTrace trace_;
  History history_;
  std::int64_t clock_ = 0;
};

}  // namespace treeagg

#endif  // TREEAGG_SDIMS_SDIMS_SYSTEM_H_
