#include "fault/schedule.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace treeagg {
namespace {

// Formats a double with enough precision to round-trip through Parse while
// keeping "0.05" readable (no trailing zero noise).
std::string FormatProb(double p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

[[noreturn]] void BadSpec(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("bad fault spec clause '" + clause + "': " +
                              why);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "dup";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCut:
      return "cut";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

FaultSchedule& FaultSchedule::WithSeed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

FaultSchedule& FaultSchedule::Drop(double p, std::int64_t begin,
                                   std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kDrop;
  e.p = p;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Delay(std::int64_t delay_min,
                                    std::int64_t delay_max, std::int64_t begin,
                                    std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kDelay;
  e.delay_min = delay_min;
  e.delay_max = delay_max;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Duplicate(double p, std::int64_t begin,
                                        std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kDuplicate;
  e.p = p;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Reorder(double p, std::int64_t begin,
                                      std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kReorder;
  e.p = p;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Cut(NodeId u, NodeId v, std::int64_t begin,
                                  std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kCut;
  e.u = u;
  e.v = v;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Crash(NodeId u, std::int64_t begin,
                                    std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.u = u;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

std::int64_t FaultSchedule::HealTime() const {
  std::int64_t heal = 0;
  for (const FaultEvent& e : events_) heal = std::max(heal, e.end);
  return heal;
}

bool FaultSchedule::CrashedAt(NodeId u, std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kCrash && e.u == u && e.begin <= t && t < e.end) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::EdgeCutAt(NodeId u, NodeId v, std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kCut || e.begin > t || t >= e.end) continue;
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return true;
  }
  return false;
}

std::int64_t FaultSchedule::CrashEnd(NodeId u, std::int64_t t) const {
  std::int64_t end = t;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kCrash && e.u == u && e.begin <= t && t < e.end) {
      end = std::max(end, e.end);
    }
  }
  return end;
}

std::int64_t FaultSchedule::CutEnd(NodeId u, NodeId v, std::int64_t t) const {
  std::int64_t end = t;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kCut || e.begin > t || t >= e.end) continue;
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
      end = std::max(end, e.end);
    }
  }
  return end;
}

const FaultEvent* FaultSchedule::ActiveAt(FaultKind kind,
                                          std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == kind && e.begin <= t && t < e.end) return &e;
  }
  return nullptr;
}

bool FaultSchedule::HasFifoViolations() const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kDuplicate || e.kind == FaultKind::kReorder) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::HasCrashes() const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kCrash) return true;
  }
  return false;
}

std::vector<std::pair<std::int64_t, std::int64_t>> FaultSchedule::Windows()
    const {
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  spans.reserve(events_.size());
  for (const FaultEvent& e : events_) {
    if (e.begin < e.end) spans.emplace_back(e.begin, e.end);
  }
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> merged;
  for (const auto& s : spans) {
    if (!merged.empty() && s.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, s.second);
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

namespace {

// Minimal recursive-free clause parser. A clause is either "seed=N" or
// "<kind>(<args>)@T0..T1".
struct ClauseParser {
  const std::string& clause;
  std::size_t pos = 0;

  explicit ClauseParser(const std::string& c) : clause(c) {}

  bool Done() const { return pos >= clause.size(); }
  char Peek() const { return Done() ? '\0' : clause[pos]; }

  void Expect(char c) {
    if (Peek() != c) {
      BadSpec(clause, std::string("expected '") + c + "' at offset " +
                          std::to_string(pos));
    }
    ++pos;
  }

  std::string Ident() {
    std::size_t start = pos;
    while (!Done() && (std::isalpha(static_cast<unsigned char>(Peek())) != 0)) {
      ++pos;
    }
    if (pos == start) BadSpec(clause, "expected a keyword");
    return clause.substr(start, pos - start);
  }

  std::int64_t Int() {
    std::size_t start = pos;
    if (Peek() == '-') ++pos;
    while (!Done() && (std::isdigit(static_cast<unsigned char>(Peek())) != 0)) {
      ++pos;
    }
    if (pos == start || (pos == start + 1 && clause[start] == '-')) {
      BadSpec(clause, "expected an integer at offset " + std::to_string(start));
    }
    return std::stoll(clause.substr(start, pos - start));
  }

  double Double() {
    std::size_t start = pos;
    while (!Done() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) != 0 ||
            Peek() == '.' || Peek() == '-' || Peek() == 'e' || Peek() == 'E' ||
            Peek() == '+')) {
      ++pos;
    }
    if (pos == start) {
      BadSpec(clause, "expected a number at offset " + std::to_string(start));
    }
    try {
      return std::stod(clause.substr(start, pos - start));
    } catch (const std::exception&) {
      BadSpec(clause, "unparseable number");
    }
  }

  // "@T0..T1" suffix.
  void Window(FaultEvent* e) {
    Expect('@');
    e->begin = Int();
    Expect('.');
    Expect('.');
    e->end = Int();
    if (e->end < e->begin) BadSpec(clause, "window ends before it begins");
    if (!Done()) BadSpec(clause, "trailing characters after window");
  }
};

std::string StripSpaces(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

}  // namespace

FaultSchedule FaultSchedule::Parse(const std::string& spec) {
  FaultSchedule schedule;
  const std::string cleaned = StripSpaces(spec);
  std::size_t start = 0;
  while (start <= cleaned.size()) {
    std::size_t sep = cleaned.find(';', start);
    if (sep == std::string::npos) sep = cleaned.size();
    const std::string clause = cleaned.substr(start, sep - start);
    start = sep + 1;
    if (clause.empty()) continue;

    ClauseParser p(clause);
    const std::string kind = p.Ident();
    if (kind == "seed") {
      p.Expect('=');
      const std::int64_t s = p.Int();
      if (s < 0) BadSpec(clause, "seed must be non-negative");
      if (!p.Done()) BadSpec(clause, "trailing characters after seed");
      schedule.WithSeed(static_cast<std::uint64_t>(s));
      continue;
    }

    FaultEvent e;
    p.Expect('(');
    if (kind == "drop" || kind == "dup" || kind == "reorder") {
      e.kind = kind == "drop"    ? FaultKind::kDrop
               : kind == "dup"   ? FaultKind::kDuplicate
                                 : FaultKind::kReorder;
      e.p = p.Double();
      if (e.p < 0.0 || e.p > 1.0) BadSpec(clause, "probability outside [0,1]");
    } else if (kind == "delay") {
      e.kind = FaultKind::kDelay;
      e.delay_min = p.Int();
      p.Expect('.');
      p.Expect('.');
      e.delay_max = p.Int();
      if (e.delay_min < 0 || e.delay_max < e.delay_min) {
        BadSpec(clause, "bad delay range");
      }
    } else if (kind == "cut") {
      e.kind = FaultKind::kCut;
      e.u = static_cast<NodeId>(p.Int());
      p.Expect('-');
      e.v = static_cast<NodeId>(p.Int());
      if (e.u < 0 || e.v < 0 || e.u == e.v) BadSpec(clause, "bad edge");
    } else if (kind == "crash") {
      e.kind = FaultKind::kCrash;
      e.u = static_cast<NodeId>(p.Int());
      if (e.u < 0) BadSpec(clause, "bad node id");
    } else {
      BadSpec(clause, "unknown fault kind '" + kind + "'");
    }
    p.Expect(')');
    p.Window(&e);
    schedule.events_.push_back(e);
  }
  return schedule;
}

std::string FaultSchedule::ToSpec() const {
  std::ostringstream os;
  os << "seed=" << seed_;
  for (const FaultEvent& e : events_) {
    os << ';' << FaultKindName(e.kind) << '(';
    switch (e.kind) {
      case FaultKind::kDrop:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
        os << FormatProb(e.p);
        break;
      case FaultKind::kDelay:
        os << e.delay_min << ".." << e.delay_max;
        break;
      case FaultKind::kCut:
        os << e.u << '-' << e.v;
        break;
      case FaultKind::kCrash:
        os << e.u;
        break;
    }
    os << ")@" << e.begin << ".." << e.end;
  }
  return os.str();
}

FaultSchedule FaultSchedule::Named(const std::string& name) {
  if (name == "drops") {
    return FaultSchedule().WithSeed(11).Drop(0.05, 50, 400);
  }
  if (name == "partition") {
    // Severs the edge {0,1} — present in every MakeShape topology — for a
    // transient window, partitioning node 1's subtree from the root.
    return FaultSchedule().WithSeed(12).Cut(0, 1, 100, 300);
  }
  if (name == "crash") {
    return FaultSchedule().WithSeed(13).Crash(1, 100, 300);
  }
  if (name == "chaos") {
    return FaultSchedule()
        .WithSeed(14)
        .Delay(1, 10, 0, 500)
        .Drop(0.05, 50, 400)
        .Crash(2, 150, 350);
  }
  return Parse(name);
}

}  // namespace treeagg
