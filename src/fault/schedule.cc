#include "fault/schedule.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace treeagg {
namespace {

// Formats a double with enough precision to round-trip through Parse while
// keeping "0.05" readable (no trailing zero noise): the short form is used
// whenever it parses back to the same double, else full precision.
std::string FormatProb(double p) {
  std::ostringstream os;
  os << p;
  if (std::stod(os.str()) == p) return os.str();
  std::ostringstream full;
  full << std::setprecision(17) << p;
  return full.str();
}

[[noreturn]] void BadSpec(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("bad fault spec clause '" + clause + "': " +
                              why);
}

// True when event e crashes node u: a plain crash of u or a crashgroup
// containing u.
bool CrashesNode(const FaultEvent& e, NodeId u) {
  if (e.kind == FaultKind::kCrash) return e.u == u;
  if (e.kind != FaultKind::kCrashGroup) return false;
  return std::find(e.group.begin(), e.group.end(), u) != e.group.end();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "dup";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCut:
      return "cut";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kCrashGroup:
      return "crashgroup";
    case FaultKind::kSever:
      return "sever";
    case FaultKind::kGray:
      return "gray";
    case FaultKind::kLat:
      return "lat";
  }
  return "?";
}

FaultSchedule& FaultSchedule::WithSeed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

FaultSchedule& FaultSchedule::Drop(double p, std::int64_t begin,
                                   std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kDrop;
  e.p = p;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Delay(std::int64_t delay_min,
                                    std::int64_t delay_max, std::int64_t begin,
                                    std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kDelay;
  e.delay_min = delay_min;
  e.delay_max = delay_max;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Duplicate(double p, std::int64_t begin,
                                        std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kDuplicate;
  e.p = p;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Reorder(double p, std::int64_t begin,
                                      std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kReorder;
  e.p = p;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Cut(NodeId u, NodeId v, std::int64_t begin,
                                  std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kCut;
  e.u = u;
  e.v = v;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Crash(NodeId u, std::int64_t begin,
                                    std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.u = u;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::CrashGroup(std::vector<NodeId> nodes,
                                         std::int64_t begin, std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kCrashGroup;
  e.group = std::move(nodes);
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Sever(NodeId from, NodeId to, std::int64_t begin,
                                    std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kSever;
  e.u = from;
  e.v = to;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Gray(NodeId u, std::int64_t delay_min,
                                   std::int64_t delay_max, std::int64_t begin,
                                   std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kGray;
  e.u = u;
  e.delay_min = delay_min;
  e.delay_max = delay_max;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

FaultSchedule& FaultSchedule::Lat(NodeId u, NodeId v, std::int64_t delay_min,
                                  std::int64_t delay_max, std::int64_t begin,
                                  std::int64_t end) {
  FaultEvent e;
  e.kind = FaultKind::kLat;
  e.u = u;
  e.v = v;
  e.delay_min = delay_min;
  e.delay_max = delay_max;
  e.begin = begin;
  e.end = end;
  events_.push_back(e);
  return *this;
}

std::int64_t FaultSchedule::HealTime() const {
  std::int64_t heal = 0;
  for (const FaultEvent& e : events_) heal = std::max(heal, e.end);
  return heal;
}

bool FaultSchedule::CrashedAt(NodeId u, std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (CrashesNode(e, u) && e.begin <= t && t < e.end) return true;
  }
  return false;
}

bool FaultSchedule::EdgeCutAt(NodeId u, NodeId v, std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kCut || e.begin > t || t >= e.end) continue;
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return true;
  }
  return false;
}

std::int64_t FaultSchedule::CrashEnd(NodeId u, std::int64_t t) const {
  std::int64_t end = t;
  for (const FaultEvent& e : events_) {
    if (CrashesNode(e, u) && e.begin <= t && t < e.end) {
      end = std::max(end, e.end);
    }
  }
  return end;
}

bool FaultSchedule::SeveredAt(NodeId from, NodeId to, std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kSever && e.u == from && e.v == to &&
        e.begin <= t && t < e.end) {
      return true;
    }
  }
  return false;
}

std::int64_t FaultSchedule::SeverEnd(NodeId from, NodeId to,
                                     std::int64_t t) const {
  std::int64_t end = t;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kSever && e.u == from && e.v == to &&
        e.begin <= t && t < e.end) {
      end = std::max(end, e.end);
    }
  }
  return end;
}

const FaultEvent* FaultSchedule::GrayAt(NodeId u, std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kGray && e.u == u && e.begin <= t && t < e.end) {
      return &e;
    }
  }
  return nullptr;
}

const FaultEvent* FaultSchedule::EdgeLatAt(NodeId u, NodeId v,
                                           std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kLat || e.begin > t || t >= e.end) continue;
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return &e;
  }
  return nullptr;
}

std::int64_t FaultSchedule::CutEnd(NodeId u, NodeId v, std::int64_t t) const {
  std::int64_t end = t;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kCut || e.begin > t || t >= e.end) continue;
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
      end = std::max(end, e.end);
    }
  }
  return end;
}

const FaultEvent* FaultSchedule::ActiveAt(FaultKind kind,
                                          std::int64_t t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == kind && e.begin <= t && t < e.end) return &e;
  }
  return nullptr;
}

bool FaultSchedule::HasFifoViolations() const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kDuplicate || e.kind == FaultKind::kReorder) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::HasCrashes() const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kCrash || e.kind == FaultKind::kCrashGroup) {
      return true;
    }
  }
  return false;
}

std::int64_t FaultSchedule::MaxInjectedDelay() const {
  std::int64_t max_delay = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kDelay || e.kind == FaultKind::kGray ||
        e.kind == FaultKind::kLat) {
      max_delay = std::max(max_delay, e.delay_max);
    }
  }
  return max_delay;
}

std::vector<std::pair<std::int64_t, std::int64_t>> FaultSchedule::Windows()
    const {
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  spans.reserve(events_.size());
  for (const FaultEvent& e : events_) {
    if (e.begin < e.end) spans.emplace_back(e.begin, e.end);
  }
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> merged;
  for (const auto& s : spans) {
    if (!merged.empty() && s.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, s.second);
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

namespace {

// Minimal recursive-free clause parser. A clause is either "seed=N" or
// "<kind>(<args>)@T0..T1".
struct ClauseParser {
  const std::string& clause;
  std::size_t pos = 0;

  explicit ClauseParser(const std::string& c) : clause(c) {}

  bool Done() const { return pos >= clause.size(); }
  char Peek() const { return Done() ? '\0' : clause[pos]; }

  void Expect(char c) {
    if (Peek() != c) {
      BadSpec(clause, std::string("expected '") + c + "' at offset " +
                          std::to_string(pos));
    }
    ++pos;
  }

  std::string Ident() {
    std::size_t start = pos;
    while (!Done() && (std::isalpha(static_cast<unsigned char>(Peek())) != 0)) {
      ++pos;
    }
    if (pos == start) BadSpec(clause, "expected a keyword");
    return clause.substr(start, pos - start);
  }

  std::int64_t Int() {
    std::size_t start = pos;
    if (Peek() == '-') ++pos;
    while (!Done() && (std::isdigit(static_cast<unsigned char>(Peek())) != 0)) {
      ++pos;
    }
    if (pos == start || (pos == start + 1 && clause[start] == '-')) {
      BadSpec(clause, "expected an integer at offset " + std::to_string(start));
    }
    return std::stoll(clause.substr(start, pos - start));
  }

  double Double() {
    std::size_t start = pos;
    while (!Done() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) != 0 ||
            Peek() == '.' || Peek() == '-' || Peek() == 'e' || Peek() == 'E' ||
            Peek() == '+')) {
      ++pos;
    }
    if (pos == start) {
      BadSpec(clause, "expected a number at offset " + std::to_string(start));
    }
    try {
      return std::stod(clause.substr(start, pos - start));
    } catch (const std::exception&) {
      BadSpec(clause, "unparseable number");
    }
  }

  // ":D0..D1" or jitter sugar ":B+-J" (meaning [B-J, B+J]). The leading
  // ':' is consumed by the caller.
  void DelayRange(FaultEvent* e) {
    const std::int64_t first = Int();
    if (Peek() == '+') {
      Expect('+');
      Expect('-');
      const std::int64_t jitter = Int();
      if (jitter < 0) BadSpec(clause, "negative jitter");
      e->delay_min = first - jitter;
      e->delay_max = first + jitter;
    } else {
      Expect('.');
      Expect('.');
      e->delay_min = first;
      e->delay_max = Int();
    }
    if (e->delay_min < 0 || e->delay_max < e->delay_min) {
      BadSpec(clause, "bad delay range");
    }
  }

  // "@T0..T1" suffix.
  void Window(FaultEvent* e) {
    Expect('@');
    e->begin = Int();
    Expect('.');
    Expect('.');
    e->end = Int();
    if (e->begin < 0) BadSpec(clause, "negative window begin");
    if (e->end < e->begin) BadSpec(clause, "window ends before it begins");
    if (!Done()) BadSpec(clause, "trailing characters after window");
  }
};

std::string StripSpaces(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

}  // namespace

FaultSchedule FaultSchedule::Parse(const std::string& spec) {
  FaultSchedule schedule;
  const std::string cleaned = StripSpaces(spec);
  std::size_t start = 0;
  while (start <= cleaned.size()) {
    std::size_t sep = cleaned.find(';', start);
    if (sep == std::string::npos) sep = cleaned.size();
    const std::string clause = cleaned.substr(start, sep - start);
    start = sep + 1;
    if (clause.empty()) continue;

    ClauseParser p(clause);
    const std::string kind = p.Ident();
    if (kind == "seed") {
      p.Expect('=');
      const std::int64_t s = p.Int();
      if (s < 0) BadSpec(clause, "seed must be non-negative");
      if (!p.Done()) BadSpec(clause, "trailing characters after seed");
      schedule.WithSeed(static_cast<std::uint64_t>(s));
      continue;
    }

    FaultEvent e;
    p.Expect('(');
    if (kind == "drop" || kind == "dup" || kind == "reorder") {
      e.kind = kind == "drop"    ? FaultKind::kDrop
               : kind == "dup"   ? FaultKind::kDuplicate
                                 : FaultKind::kReorder;
      e.p = p.Double();
      if (e.p < 0.0 || e.p > 1.0) BadSpec(clause, "probability outside [0,1]");
    } else if (kind == "delay") {
      e.kind = FaultKind::kDelay;
      e.delay_min = p.Int();
      p.Expect('.');
      p.Expect('.');
      e.delay_max = p.Int();
      if (e.delay_min < 0 || e.delay_max < e.delay_min) {
        BadSpec(clause, "bad delay range");
      }
    } else if (kind == "cut") {
      e.kind = FaultKind::kCut;
      e.u = static_cast<NodeId>(p.Int());
      p.Expect('-');
      e.v = static_cast<NodeId>(p.Int());
      if (e.u < 0 || e.v < 0 || e.u == e.v) BadSpec(clause, "bad edge");
    } else if (kind == "crash") {
      e.kind = FaultKind::kCrash;
      e.u = static_cast<NodeId>(p.Int());
      if (e.u < 0) BadSpec(clause, "bad node id");
    } else if (kind == "crashgroup") {
      e.kind = FaultKind::kCrashGroup;
      for (;;) {
        const NodeId node = static_cast<NodeId>(p.Int());
        if (node < 0) BadSpec(clause, "bad node id");
        if (std::find(e.group.begin(), e.group.end(), node) != e.group.end()) {
          BadSpec(clause, "duplicate node in crashgroup");
        }
        e.group.push_back(node);
        if (p.Peek() != ',') break;
        p.Expect(',');
      }
    } else if (kind == "sever") {
      e.kind = FaultKind::kSever;
      e.u = static_cast<NodeId>(p.Int());
      p.Expect('-');
      p.Expect('>');
      e.v = static_cast<NodeId>(p.Int());
      if (e.u < 0 || e.v < 0 || e.u == e.v) BadSpec(clause, "bad edge");
    } else if (kind == "gray") {
      e.kind = FaultKind::kGray;
      e.u = static_cast<NodeId>(p.Int());
      if (e.u < 0) BadSpec(clause, "bad node id");
      p.Expect(':');
      p.DelayRange(&e);
    } else if (kind == "lat") {
      e.kind = FaultKind::kLat;
      e.u = static_cast<NodeId>(p.Int());
      p.Expect('-');
      e.v = static_cast<NodeId>(p.Int());
      if (e.u < 0 || e.v < 0 || e.u == e.v) BadSpec(clause, "bad edge");
      p.Expect(':');
      p.DelayRange(&e);
    } else {
      BadSpec(clause, "unknown fault kind '" + kind + "'");
    }
    p.Expect(')');
    p.Window(&e);
    schedule.events_.push_back(e);
  }
  return schedule;
}

std::string FaultSchedule::ToSpec() const {
  std::ostringstream os;
  os << "seed=" << seed_;
  for (const FaultEvent& e : events_) {
    os << ';' << FaultKindName(e.kind) << '(';
    switch (e.kind) {
      case FaultKind::kDrop:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
        os << FormatProb(e.p);
        break;
      case FaultKind::kDelay:
        os << e.delay_min << ".." << e.delay_max;
        break;
      case FaultKind::kCut:
        os << e.u << '-' << e.v;
        break;
      case FaultKind::kCrash:
        os << e.u;
        break;
      case FaultKind::kCrashGroup:
        for (std::size_t i = 0; i < e.group.size(); ++i) {
          if (i > 0) os << ',';
          os << e.group[i];
        }
        break;
      case FaultKind::kSever:
        os << e.u << "->" << e.v;
        break;
      case FaultKind::kGray:
        os << e.u << ':' << e.delay_min << ".." << e.delay_max;
        break;
      case FaultKind::kLat:
        os << e.u << '-' << e.v << ':' << e.delay_min << ".." << e.delay_max;
        break;
    }
    os << ")@" << e.begin << ".." << e.end;
  }
  return os.str();
}

FaultSchedule FaultSchedule::Named(const std::string& name) {
  if (name == "drops") {
    return FaultSchedule().WithSeed(11).Drop(0.05, 50, 400);
  }
  if (name == "partition") {
    // Severs the edge {0,1} — present in every MakeShape topology — for a
    // transient window, partitioning node 1's subtree from the root.
    return FaultSchedule().WithSeed(12).Cut(0, 1, 100, 300);
  }
  if (name == "crash") {
    return FaultSchedule().WithSeed(13).Crash(1, 100, 300);
  }
  if (name == "chaos") {
    return FaultSchedule()
        .WithSeed(14)
        .Delay(1, 10, 0, 500)
        .Drop(0.05, 50, 400)
        .Crash(2, 150, 350);
  }
  if (name == "pairkill") {
    // Correlated crash of the parent+child pair straddling the {0,1}
    // lease edge: both sides of the lease fail in the same window.
    return FaultSchedule().WithSeed(15).CrashGroup({0, 1}, 150, 300);
  }
  if (name == "gray") {
    // Node 1 stays up but serves slow: every message it sends carries
    // 5..15 extra ticks for most of the run.
    return FaultSchedule().WithSeed(16).Gray(1, 5, 15, 100, 400);
  }
  if (name == "asym") {
    // Asymmetric partition on the {0,1} lease edge: node 1's releases
    // toward the root are held, while grants/acks from 0 still arrive.
    return FaultSchedule().WithSeed(17).Sever(1, 0, 100, 300);
  }
  if (name == "geo2") {
    // Two-region WAN profile: the {0,1} inter-region edge carries
    // 20ms-class latency (15..25 ticks) and suffers a regional partition
    // that heals mid-run.
    return FaultSchedule().WithSeed(18).Lat(0, 1, 15, 25, 0, 600).Cut(
        0, 1, 200, 300);
  }
  if (name == "geo3") {
    // Three-region WAN profile: a near region (edge {0,1}, ~20 ticks) and
    // a far region (edge {0,2}, ~50 ticks), with the far region
    // partitioned and healed mid-run. Edge {0,2} only carries traffic on
    // shapes where node 2 attaches to the root (kary2/kary4/star).
    return FaultSchedule()
        .WithSeed(19)
        .Lat(0, 1, 15, 25, 0, 600)
        .Lat(0, 2, 40, 60, 0, 600)
        .Cut(0, 2, 200, 300);
  }
  return Parse(name);
}

std::vector<std::string> FaultSchedule::PresetNames() {
  return {"drops", "partition", "crash",   "chaos", "pairkill",
          "gray",  "asym",      "geo2",    "geo3"};
}

}  // namespace treeagg
