#include "fault/convergence.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "workload/request.h"

namespace treeagg {
namespace {

bool ValuesMatch(Real a, Real b, Real tolerance) {
  // Exact equality first: min/max ground truths can be +-inf, where the
  // difference is NaN.
  return a == b || std::abs(a - b) <= tolerance;
}

bool Overlaps(std::int64_t lo, std::int64_t hi,
              const std::vector<std::pair<std::int64_t, std::int64_t>>& w) {
  for (const auto& [begin, end] : w) {
    if (lo < end && begin <= hi) return true;
  }
  return false;
}

}  // namespace

Real GroundTruth(const History& history, const AggregateOp& op,
                 NodeId num_nodes) {
  // Last completed write per node, by initiation order. Write requests at a
  // node are applied in initiation order on every backend (the driver
  // connection and the DES queue are both FIFO), so the final local value
  // is the argument of the latest-initiated completed write.
  std::vector<ReqId> last(static_cast<std::size_t>(num_nodes), kNoRequest);
  for (const RequestRecord& r : history.records()) {
    if (r.op != ReqType::kWrite || !r.completed()) continue;
    auto& slot = last[static_cast<std::size_t>(r.node)];
    if (slot == kNoRequest || r.id > slot) slot = r.id;
  }
  Real acc = op.identity;
  for (NodeId u = 0; u < num_nodes; ++u) {
    const ReqId id = last[static_cast<std::size_t>(u)];
    acc = op(acc, id == kNoRequest ? op.identity
                                   : history.record(id).arg);
  }
  return acc;
}

History FilterHistoryOutsideWindows(
    const History& history,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& windows,
    std::size_t* dropped, std::vector<NodeGhostState>* ghosts) {
  const auto& records = history.records();
  std::vector<bool> keep(records.size(), false);
  std::size_t n_dropped = 0;
  for (const RequestRecord& r : records) {
    if (r.op == ReqType::kWrite) {
      keep[static_cast<std::size_t>(r.id)] = true;
      continue;
    }
    const bool in_window =
        !r.completed() || Overlaps(r.initiated_at, r.completed_at, windows);
    keep[static_cast<std::size_t>(r.id)] = !in_window;
    if (in_window) ++n_dropped;
  }
  if (dropped != nullptr) *dropped = n_dropped;

  // Begins replay in id order (ids are assigned in initiation order), which
  // yields the dense remapping; completions replay sorted by their recorded
  // completion time so per-node completion indices rebuild consistently.
  History out;
  std::vector<ReqId> remap(records.size(), kNoRequest);
  for (const RequestRecord& r : records) {
    if (!keep[static_cast<std::size_t>(r.id)]) continue;
    remap[static_cast<std::size_t>(r.id)] =
        r.op == ReqType::kWrite
            ? out.BeginWrite(r.node, r.arg, r.initiated_at)
            : out.BeginCombine(r.node, r.initiated_at);
  }
  std::vector<ReqId> completed;
  completed.reserve(records.size());
  for (const RequestRecord& r : records) {
    if (keep[static_cast<std::size_t>(r.id)] && r.completed()) {
      completed.push_back(r.id);
    }
  }
  // Same-timestamp ties break by (node, original node_index): per-node
  // completion order must replay exactly, or the rebuilt node_index values
  // would flip program-order edges in the causal graph.
  std::sort(completed.begin(), completed.end(), [&](ReqId a, ReqId b) {
    const auto& ra = records[static_cast<std::size_t>(a)];
    const auto& rb = records[static_cast<std::size_t>(b)];
    return std::tuple(ra.completed_at, ra.node, ra.node_index) <
           std::tuple(rb.completed_at, rb.node, rb.node_index);
  });
  for (ReqId old_id : completed) {
    const RequestRecord& r = records[static_cast<std::size_t>(old_id)];
    const ReqId new_id = remap[static_cast<std::size_t>(old_id)];
    if (r.op == ReqType::kWrite) {
      out.CompleteWrite(new_id, r.completed_at);
    } else {
      std::vector<std::pair<NodeId, ReqId>> gather = r.gather;
      for (auto& [node, write_id] : gather) {
        if (write_id >= 0) {
          write_id = remap[static_cast<std::size_t>(write_id)];
        }
      }
      out.CompleteCombine(new_id, r.retval, std::move(gather), r.log_prefix,
                          r.completed_at);
    }
  }
  if (ghosts != nullptr) {
    for (NodeGhostState& g : *ghosts) {
      for (GhostWrite& gw : g.write_log) {
        if (gw.id >= 0 &&
            static_cast<std::size_t>(gw.id) < remap.size()) {
          gw.id = remap[static_cast<std::size_t>(gw.id)];
        }
      }
    }
  }
  return out;
}

ConvergenceReport CheckConvergence(const History& history,
                                   const std::vector<NodeGhostState>& ghosts,
                                   const AggregateOp& op, NodeId num_nodes,
                                   const std::vector<ReqId>& final_probe_ids,
                                   const ConvergenceOptions& options) {
  ConvergenceReport report;
  std::ostringstream fail;

  report.all_completed = history.AllCompleted();
  if (!report.all_completed) {
    std::size_t incomplete = 0;
    ReqId first = kNoRequest;
    for (const RequestRecord& r : history.records()) {
      if (!r.completed()) {
        if (first == kNoRequest) first = r.id;
        ++incomplete;
      }
    }
    fail << "liveness: " << incomplete
         << " request(s) never completed (first: id " << first << "); ";
  }

  if (options.liveness_deadline > 0) {
    ReqId first_late = kNoRequest;
    for (const RequestRecord& r : history.records()) {
      if (r.completed() && r.completed_at > options.liveness_deadline) {
        if (first_late == kNoRequest) first_late = r.id;
        ++report.deadline_violations;
      }
    }
    if (report.deadline_violations > 0) {
      fail << "liveness: " << report.deadline_violations
           << " request(s) completed after deadline "
           << options.liveness_deadline << " (first: id " << first_late
           << "); ";
    }
  }

  report.ground_truth = GroundTruth(history, op, num_nodes);
  report.final_probes = final_probe_ids.size();
  for (ReqId id : final_probe_ids) {
    const RequestRecord& r = history.record(id);
    const bool good = r.op == ReqType::kCombine && r.completed() &&
                      ValuesMatch(r.retval, report.ground_truth,
                                  options.tolerance);
    if (!good) {
      if (report.divergent_probes == 0) {
        fail << "convergence: final combine at node " << r.node
             << " returned " << r.retval << ", ground truth "
             << report.ground_truth << "; ";
      }
      ++report.divergent_probes;
    }
  }

  if (options.check_causal) {
    const CheckResult full =
        CheckCausalConsistency(history, ghosts, op, num_nodes,
                               options.tolerance);
    report.causal_ok = full.ok;
    if (!full.ok && options.require_full_causal) {
      fail << "causal(full): " << full.message << "; ";
    }

    if (!options.fault_windows.empty()) {
      std::vector<NodeGhostState> remapped_ghosts = ghosts;
      const History outside = FilterHistoryOutsideWindows(
          history, options.fault_windows, &report.excluded_combines,
          &remapped_ghosts);
      const CheckResult restricted = CheckCausalConsistency(
          outside, remapped_ghosts, op, num_nodes, options.tolerance);
      report.outside_ok = restricted.ok;
      if (!restricted.ok) {
        fail << "causal(outside-windows): " << restricted.message << "; ";
      }
    }
  }

  report.ok = report.all_completed && report.divergent_probes == 0 &&
              report.deadline_violations == 0 &&
              (report.causal_ok || !options.require_full_causal) &&
              report.outside_ok;
  report.message = fail.str();
  return report;
}

}  // namespace treeagg
