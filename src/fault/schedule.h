// FaultSchedule: a deterministic, seed-driven timeline of fault events.
//
// The schedule is the single source of truth for "what goes wrong and
// when" across every backend. Times are abstract ticks: the DES backend
// (sim/chaos.h) reads them as simulated delivery ticks; the networked
// backend (net/local_cluster.h) maps them onto request-injection indices,
// which is the only deterministic clock a real TCP cluster has. Either
// way, the same spec string + seed names the same experiment, and the
// ConvergenceChecker (fault/convergence.h) closes the loop by asserting
// the run still reaches the fault-free ground truth after the network
// heals.
//
// Event kinds fall into two classes:
//  * Convergence-safe faults — delay, cut (link down/up), crash
//    (fail-stop + restart from durable state), and drop interpreted as
//    park-until-heal (sim) / sever-and-resume (net). Runs under these
//    faults must still converge; tests assert it.
//  * Checker-validation faults — duplicate and reorder violate the
//    paper's reliable-FIFO channel assumption outright. They exist so
//    the consistency checkers can be shown to catch real violations
//    (see tests/sim/faults_test.cc); no convergence claim is made.
//
// Spec string grammar (';'-separated, whitespace ignored):
//   seed=S
//   drop(P)@T0..T1        probability P in [0,1]
//   delay(D0..D1)@T0..T1  extra per-message delay ticks in [D0,D1]
//   dup(P)@T0..T1         duplicate a message with probability P
//   reorder(P)@T0..T1     per-message FIFO violation with probability P
//   cut(U-V)@T0..T1       tree edge {U,V} carries no traffic in [T0,T1)
//   crash(U)@T0..T1       node U (its daemon, on net) is down in [T0,T1)
// Example: "seed=7;drop(0.05)@50..400;crash(2)@100..300"
//
// Named presets (FaultSchedule::Named) give the CLI and CI stable
// shorthand schedules; they assume n >= 4 and that nodes 1..2 exist with
// node 1 adjacent to node 0 (true for every MakeShape shape).
#ifndef TREEAGG_FAULT_SCHEDULE_H_
#define TREEAGG_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace treeagg {

enum class FaultKind : std::uint8_t {
  kDrop,
  kDelay,
  kDuplicate,
  kReorder,
  kCut,
  kCrash,
};

// Human-readable keyword, matching the spec grammar ("drop", "cut", ...).
const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  std::int64_t begin = 0;  // active in [begin, end)
  std::int64_t end = 0;
  NodeId u = kInvalidNode;  // crash: the node; cut: one endpoint
  NodeId v = kInvalidNode;  // cut: the other endpoint
  double p = 0.0;           // drop/dup/reorder probability
  std::int64_t delay_min = 0;  // delay: extra ticks, uniform in range
  std::int64_t delay_max = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Builder API. All return *this for chaining; windows are [begin, end).
  FaultSchedule& WithSeed(std::uint64_t seed);
  FaultSchedule& Drop(double p, std::int64_t begin, std::int64_t end);
  FaultSchedule& Delay(std::int64_t delay_min, std::int64_t delay_max,
                       std::int64_t begin, std::int64_t end);
  FaultSchedule& Duplicate(double p, std::int64_t begin, std::int64_t end);
  FaultSchedule& Reorder(double p, std::int64_t begin, std::int64_t end);
  FaultSchedule& Cut(NodeId u, NodeId v, std::int64_t begin, std::int64_t end);
  FaultSchedule& Crash(NodeId u, std::int64_t begin, std::int64_t end);

  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // The earliest tick from which no fault is active any more (0 when the
  // schedule is empty). After HealTime() the network is fault-free.
  std::int64_t HealTime() const;

  // Point queries, all O(#events).
  bool CrashedAt(NodeId u, std::int64_t t) const;
  bool EdgeCutAt(NodeId u, NodeId v, std::int64_t t) const;  // undirected
  // End of the latest crash/cut window covering t (t when none does).
  std::int64_t CrashEnd(NodeId u, std::int64_t t) const;
  std::int64_t CutEnd(NodeId u, NodeId v, std::int64_t t) const;
  // First event of `kind` active at t, or nullptr.
  const FaultEvent* ActiveAt(FaultKind kind, std::int64_t t) const;
  // True if any event carries a checker-validation fault (dup/reorder).
  bool HasFifoViolations() const;
  // True if any crash event exists.
  bool HasCrashes() const;

  // Merged [begin, end) windows over every event: the periods during which
  // at least one fault is active. Used to classify which operations ran
  // "outside fault windows" for the consistency verdicts.
  std::vector<std::pair<std::int64_t, std::int64_t>> Windows() const;

  // Spec round-trip. Parse throws std::invalid_argument with a message
  // naming the offending clause; ToSpec() output re-parses to an equal
  // schedule.
  static FaultSchedule Parse(const std::string& spec);
  std::string ToSpec() const;

  // Named presets ("drops", "partition", "crash", "chaos"); falls back to
  // Parse(name) so any spec string is accepted where a preset name is.
  static FaultSchedule Named(const std::string& name);

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;

 private:
  std::uint64_t seed_ = 1;
  std::vector<FaultEvent> events_;
};

}  // namespace treeagg

#endif  // TREEAGG_FAULT_SCHEDULE_H_
