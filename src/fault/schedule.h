// FaultSchedule: a deterministic, seed-driven timeline of fault events.
//
// The schedule is the single source of truth for "what goes wrong and
// when" across every backend. Times are abstract ticks: the DES backend
// (sim/chaos.h) reads them as simulated delivery ticks; the networked
// backend (net/local_cluster.h) maps them onto request-injection indices,
// which is the only deterministic clock a real TCP cluster has. Either
// way, the same spec string + seed names the same experiment, and the
// ConvergenceChecker (fault/convergence.h) closes the loop by asserting
// the run still reaches the fault-free ground truth after the network
// heals.
//
// Event kinds fall into two classes:
//  * Convergence-safe faults — delay, cut (link down/up), crash
//    (fail-stop + restart from durable state), and drop interpreted as
//    park-until-heal (sim) / sever-and-resume (net). Runs under these
//    faults must still converge; tests assert it.
//  * Checker-validation faults — duplicate and reorder violate the
//    paper's reliable-FIFO channel assumption outright. They exist so
//    the consistency checkers can be shown to catch real violations
//    (see tests/sim/faults_test.cc); no convergence claim is made.
//
// Spec string grammar (';'-separated, whitespace ignored):
//   seed=S
//   drop(P)@T0..T1        probability P in [0,1]
//   delay(D0..D1)@T0..T1  extra per-message delay ticks in [D0,D1]
//   dup(P)@T0..T1         duplicate a message with probability P
//   reorder(P)@T0..T1     per-message FIFO violation with probability P
//   cut(U-V)@T0..T1       tree edge {U,V} carries no traffic in [T0,T1)
//   crash(U)@T0..T1       node U (its daemon, on net) is down in [T0,T1)
// Example: "seed=7;drop(0.05)@50..400;crash(2)@100..300"
//
// Second-generation vocabulary (all convergence-safe):
//   crashgroup(U1,U2,...)@T0..T1  correlated crash: every listed node (its
//                                 daemon, on net) fails in the same window
//   sever(U->V)@T0..T1    asymmetric partition: messages from U to V are
//                         held until heal; the V->U direction stays live
//   gray(U:D0..D1)@T0..T1 gray failure: node U stays up but every message
//                         it sends carries extra seeded delay in [D0,D1]
//   lat(U-V:D0..D1)@T0..T1  WAN/geo profile: edge {U,V} carries extra
//                         per-message latency in [D0,D1], both directions.
//                         Jitter sugar: lat(U-V:B+-J) means [B-J, B+J].
//
// Named presets (FaultSchedule::Named) give the CLI and CI stable
// shorthand schedules; they assume n >= 4 and that nodes 1..2 exist with
// node 1 adjacent to node 0 (true for every MakeShape shape). The geo3
// preset additionally profiles edge {0,2}, which only carries traffic on
// shapes where node 2 attaches to the root (kary2/kary4/star, not path).
#ifndef TREEAGG_FAULT_SCHEDULE_H_
#define TREEAGG_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace treeagg {

enum class FaultKind : std::uint8_t {
  kDrop,
  kDelay,
  kDuplicate,
  kReorder,
  kCut,
  kCrash,
  kCrashGroup,  // correlated crash of several nodes in one window
  kSever,       // one-directional edge partition (u -> v only)
  kGray,        // slow node: extra per-message delay on everything u sends
  kLat,         // WAN/geo edge profile: extra latency on edge {u,v}
};

// Human-readable keyword, matching the spec grammar ("drop", "cut", ...).
const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  std::int64_t begin = 0;  // active in [begin, end)
  std::int64_t end = 0;
  NodeId u = kInvalidNode;  // crash/gray: the node; cut/lat/sever: endpoint
  NodeId v = kInvalidNode;  // cut/lat: other endpoint; sever: destination
  double p = 0.0;           // drop/dup/reorder probability
  std::int64_t delay_min = 0;  // delay/gray/lat: extra ticks, uniform
  std::int64_t delay_max = 0;
  std::vector<NodeId> group;  // crashgroup: every node that fails

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Builder API. All return *this for chaining; windows are [begin, end).
  FaultSchedule& WithSeed(std::uint64_t seed);
  FaultSchedule& Drop(double p, std::int64_t begin, std::int64_t end);
  FaultSchedule& Delay(std::int64_t delay_min, std::int64_t delay_max,
                       std::int64_t begin, std::int64_t end);
  FaultSchedule& Duplicate(double p, std::int64_t begin, std::int64_t end);
  FaultSchedule& Reorder(double p, std::int64_t begin, std::int64_t end);
  FaultSchedule& Cut(NodeId u, NodeId v, std::int64_t begin, std::int64_t end);
  FaultSchedule& Crash(NodeId u, std::int64_t begin, std::int64_t end);
  FaultSchedule& CrashGroup(std::vector<NodeId> nodes, std::int64_t begin,
                            std::int64_t end);
  FaultSchedule& Sever(NodeId from, NodeId to, std::int64_t begin,
                       std::int64_t end);
  FaultSchedule& Gray(NodeId u, std::int64_t delay_min, std::int64_t delay_max,
                      std::int64_t begin, std::int64_t end);
  FaultSchedule& Lat(NodeId u, NodeId v, std::int64_t delay_min,
                     std::int64_t delay_max, std::int64_t begin,
                     std::int64_t end);

  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // The earliest tick from which no fault is active any more (0 when the
  // schedule is empty). After HealTime() the network is fault-free.
  std::int64_t HealTime() const;

  // Point queries, all O(#events). Crash queries cover both crash and
  // crashgroup events (a node in a group is crashed for the window).
  bool CrashedAt(NodeId u, std::int64_t t) const;
  bool EdgeCutAt(NodeId u, NodeId v, std::int64_t t) const;  // undirected
  // Directional: is the from->to direction of the edge severed at t?
  bool SeveredAt(NodeId from, NodeId to, std::int64_t t) const;
  // End of the latest crash/cut/sever window covering t (t when none does).
  std::int64_t CrashEnd(NodeId u, std::int64_t t) const;
  std::int64_t CutEnd(NodeId u, NodeId v, std::int64_t t) const;
  std::int64_t SeverEnd(NodeId from, NodeId to, std::int64_t t) const;
  // Gray-failure event covering node u at t, or nullptr.
  const FaultEvent* GrayAt(NodeId u, std::int64_t t) const;
  // Latency-profile event covering edge {u,v} (undirected) at t, or nullptr.
  const FaultEvent* EdgeLatAt(NodeId u, NodeId v, std::int64_t t) const;
  // First event of `kind` active at t, or nullptr.
  const FaultEvent* ActiveAt(FaultKind kind, std::int64_t t) const;
  // True if any event carries a checker-validation fault (dup/reorder).
  bool HasFifoViolations() const;
  // True if any crash or crashgroup event exists.
  bool HasCrashes() const;
  // Largest delay_max over all delay/gray/lat events (0 when none). Tests
  // use this to scale liveness deadlines to the injected latency.
  std::int64_t MaxInjectedDelay() const;

  // Merged [begin, end) windows over every event: the periods during which
  // at least one fault is active. Used to classify which operations ran
  // "outside fault windows" for the consistency verdicts.
  std::vector<std::pair<std::int64_t, std::int64_t>> Windows() const;

  // Spec round-trip. Parse throws std::invalid_argument with a message
  // naming the offending clause; ToSpec() output re-parses to an equal
  // schedule.
  static FaultSchedule Parse(const std::string& spec);
  std::string ToSpec() const;

  // Named presets (see PresetNames()); falls back to Parse(name) so any
  // spec string is accepted where a preset name is.
  static FaultSchedule Named(const std::string& name);

  // Every name Named() resolves without falling back to Parse(), in a
  // stable order suitable for usage/error messages.
  static std::vector<std::string> PresetNames();

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;

 private:
  std::uint64_t seed_ = 1;
  std::vector<FaultEvent> events_;
};

}  // namespace treeagg

#endif  // TREEAGG_FAULT_SCHEDULE_H_
