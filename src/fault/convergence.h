// ConvergenceChecker: the correctness contract for runs under fault
// injection.
//
// The paper's guarantees (strict consistency sequentially, causal
// consistency concurrently) are stated for reliable FIFO channels. Under
// the convergence-safe fault model (fault/schedule.h) the contract we can
// still demand is:
//   (1) liveness  — once the schedule ends and the network heals, every
//       injected request completes;
//   (2) convergence — combines probed at every node after the heal return
//       the fault-free ground truth: f folded over the final write at
//       each node (identity where a node was never written);
//   (3) outside-window consistency — restricting the history to combines
//       whose lifetimes avoid every fault window (all writes kept), the
//       Section 5 causal checker still passes, i.e. faults may delay
//       operations but must not corrupt operations that ran clear of
//       them.
// Checker-validation faults (dup/reorder) intentionally break (3) and
// sometimes (2); runs using them should not be fed to this checker.
#ifndef TREEAGG_FAULT_CONVERGENCE_H_
#define TREEAGG_FAULT_CONVERGENCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "core/aggregate_op.h"

namespace treeagg {

struct ConvergenceOptions {
  Real tolerance = 1e-9;
  // Run the Section 5 causal checker on the full history and on the
  // outside-window restriction. Requires ghost logging to have been on.
  bool check_causal = true;
  // Whether a full-history causal failure vetoes `ok`. Crash recovery on
  // the networked backend re-injects requests that may have died with the
  // killed daemon's connection — at-least-once, not exactly-once — so a
  // combine whose completion frame was lost can execute twice and leave a
  // duplicate ghost gather that the full-history checker rejects. Those
  // duplicates live inside the fault windows by construction, so the
  // outside-window restriction is the sound check there: callers set this
  // false when re-injection occurred. causal_ok is still computed and
  // reported either way.
  bool require_full_causal = true;
  // Merged [begin, end) fault windows in the history's clock units
  // (FaultSchedule::Windows() for sim runs; driver-clock spans recorded by
  // the net harness). Empty means the whole run counts as fault-free.
  std::vector<std::pair<std::int64_t, std::int64_t>> fault_windows;
  // When > 0: every request must complete by this clock value (same units
  // as the history timestamps). Callers scale it by the schedule's
  // MaxInjectedDelay() so gray/WAN profiles get a proportionally looser —
  // but still finite — liveness bound. 0 disables the check.
  std::int64_t liveness_deadline = 0;
};

struct ConvergenceReport {
  bool ok = false;            // conjunction of everything below
  bool all_completed = false;
  Real ground_truth = 0;      // f over final writes, identity baseline
  std::size_t final_probes = 0;
  std::size_t divergent_probes = 0;  // final probes off ground truth
  bool causal_ok = true;      // full history (when check_causal)
  bool outside_ok = true;     // outside-window restriction
  std::size_t excluded_combines = 0;  // combines overlapping fault windows
  std::size_t deadline_violations = 0;  // completions past liveness_deadline
  std::string message;        // first failure, empty when ok
};

// `final_probe_ids`: ids of the post-heal combines (one per probed node)
// whose return values are compared against the ground truth. They are part
// of `history` like any other request.
ConvergenceReport CheckConvergence(const History& history,
                                   const std::vector<NodeGhostState>& ghosts,
                                   const AggregateOp& op, NodeId num_nodes,
                                   const std::vector<ReqId>& final_probe_ids,
                                   const ConvergenceOptions& options = {});

// The fault-free ground truth by itself: f folded over the argument of the
// last completed write at each node (op.identity for unwritten nodes).
Real GroundTruth(const History& history, const AggregateOp& op,
                 NodeId num_nodes);

// Rebuilds `history` keeping every write but dropping combines whose
// [initiated_at, completed_at] lifetime overlaps any of the merged
// [begin, end) `windows` (and combines that never completed). Request ids
// are remapped densely; combine gathers are remapped with them, and if
// `ghosts` is non-null the write ids inside the ghost logs are remapped in
// place to match (ghost logs reference writes by id, and dropping combines
// shifts every later id). The result is a self-consistent
// (History, ghosts) pair suitable for the consistency checkers.
History FilterHistoryOutsideWindows(
    const History& history,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& windows,
    std::size_t* dropped = nullptr,
    std::vector<NodeGhostState>* ghosts = nullptr);

}  // namespace treeagg

#endif  // TREEAGG_FAULT_CONVERGENCE_H_
