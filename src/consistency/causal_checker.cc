#include "consistency/causal_checker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

namespace treeagg {
namespace {

struct Entry {
  ReqId id;
  bool is_gather;
};

// Builds u.gwlog' for one node: u's write-log interleaved with u's lifted
// gathers, extended with every other node's write-log.
std::vector<Entry> BuildGwlogPrime(const History& history,
                                   const std::vector<NodeGhostState>& ghosts,
                                   NodeId u, NodeId num_nodes) {
  // u's gathers, sorted by (log_prefix, completion order).
  std::vector<const RequestRecord*> gathers;
  for (const RequestRecord& r : history.records()) {
    if (r.op == ReqType::kCombine && r.node == u) gathers.push_back(&r);
  }
  // node_index is per-node completion order: the true program order.
  // (completed_at timestamps can tie under concurrency.)
  std::sort(gathers.begin(), gathers.end(),
            [](const RequestRecord* a, const RequestRecord* b) {
              return std::pair(a->log_prefix, a->node_index) <
                     std::pair(b->log_prefix, b->node_index);
            });

  const GhostLog& wlog = ghosts[static_cast<std::size_t>(u)].write_log;
  std::vector<Entry> seq;
  seq.reserve(wlog.size() + gathers.size());
  std::size_t gi = 0;
  for (std::size_t pos = 0; pos <= wlog.size(); ++pos) {
    while (gi < gathers.size() &&
           gathers[gi]->log_prefix == static_cast<std::int64_t>(pos)) {
      seq.push_back({gathers[gi]->id, true});
      ++gi;
    }
    if (pos < wlog.size()) seq.push_back({wlog[pos].id, false});
  }
  // Defensive: any gather with an out-of-range prefix goes last.
  for (; gi < gathers.size(); ++gi) seq.push_back({gathers[gi]->id, true});

  // Extend with the other nodes' write-logs (the paper's
  // u.gwlog' = u.gwlog . (v.wlog - u.gwlog') loop).
  std::vector<bool> present(history.size(), false);
  for (const Entry& e : seq) {
    if (!e.is_gather) present[static_cast<std::size_t>(e.id)] = true;
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (v == u) continue;
    for (const GhostWrite& gw : ghosts[static_cast<std::size_t>(v)].write_log) {
      if (!present[static_cast<std::size_t>(gw.id)]) {
        present[static_cast<std::size_t>(gw.id)] = true;
        seq.push_back({gw.id, false});
      }
    }
  }
  return seq;
}

}  // namespace

CheckResult CheckCausalConsistency(const History& history,
                                   const std::vector<NodeGhostState>& ghosts,
                                   const AggregateOp& op, NodeId num_nodes,
                                   Real tolerance) {
  if (!history.AllCompleted()) {
    return CheckResult::Fail("history contains incomplete requests");
  }

  // --- Compatibility (Theorem 4 pairing): each combine's value must equal
  // f applied to its gather set.
  for (const RequestRecord& r : history.records()) {
    if (r.op != ReqType::kCombine) continue;
    std::vector<Real> vals(static_cast<std::size_t>(num_nodes), op.identity);
    for (const auto& [node, wid] : r.gather) {
      if (wid >= 0) {
        vals[static_cast<std::size_t>(node)] =
            history.record(wid).arg;
      }
    }
    Real expected = op.identity;
    for (const Real v : vals) expected = op(expected, v);
    if (r.retval != expected) {
      const Real scale = std::max<Real>(1.0, std::abs(expected));
      if (!std::isfinite(expected) || !std::isfinite(r.retval) ||
          std::abs(r.retval - expected) > tolerance * scale) {
        std::ostringstream os;
        os << "combine " << r.id << " at node " << r.node
           << " is incompatible with its gather set: returned " << r.retval
           << ", gather implies " << expected;
        return CheckResult::Fail(os.str());
      }
    }
  }

  // --- Causal-order edges (~>1) over the full gather-write history:
  //   (a) program order: consecutive requests at the same node;
  //   (b) read-from: write -> gather returning it.
  const std::size_t total = history.size();
  std::vector<std::vector<ReqId>> succ(total);
  {
    std::map<NodeId, std::vector<ReqId>> by_node;
    for (const RequestRecord& r : history.records()) {
      by_node[r.node].push_back(r.id);
    }
    for (auto& [node, ids] : by_node) {
      std::sort(ids.begin(), ids.end(), [&](ReqId a, ReqId b) {
        return history.record(a).node_index < history.record(b).node_index;
      });
      for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
        succ[static_cast<std::size_t>(ids[i])].push_back(ids[i + 1]);
      }
    }
    for (const RequestRecord& r : history.records()) {
      if (r.op != ReqType::kCombine) continue;
      for (const auto& [node, wid] : r.gather) {
        if (wid >= 0) succ[static_cast<std::size_t>(wid)].push_back(r.id);
      }
    }
  }

  // --- Per node u: check u.gwlog' respects ~> restricted to pruned(A, u)
  // (all writes + u's gathers), with paths allowed through other nodes'
  // gathers. We propagate, in topological order of ~>1, the maximum
  // position of any pruned causal predecessor; a pruned request must sit
  // after all of them.
  for (NodeId u = 0; u < num_nodes; ++u) {
    const std::vector<Entry> seq = BuildGwlogPrime(history, ghosts, u, num_nodes);

    std::vector<std::int64_t> pos(total, -1);  // -1: not in pruned(A, u)
    for (std::size_t i = 0; i < seq.size(); ++i) {
      pos[static_cast<std::size_t>(seq[i].id)] = static_cast<std::int64_t>(i);
    }
    // Every write must appear.
    for (const RequestRecord& r : history.records()) {
      if (r.op == ReqType::kWrite && pos[static_cast<std::size_t>(r.id)] < 0) {
        std::ostringstream os;
        os << "write " << r.id << " missing from node " << u << "'s gwlog'";
        return CheckResult::Fail(os.str());
      }
    }

    // --- Serialization: scan and recompute recentwrites at each gather.
    {
      std::vector<ReqId> last(static_cast<std::size_t>(num_nodes), kNoRequest);
      for (const Entry& e : seq) {
        const RequestRecord& r = history.record(e.id);
        if (!e.is_gather) {
          last[static_cast<std::size_t>(r.node)] = r.id;
          continue;
        }
        std::vector<ReqId> expect(static_cast<std::size_t>(num_nodes),
                                  kNoRequest);
        for (const auto& [node, wid] : r.gather) {
          expect[static_cast<std::size_t>(node)] = wid;
        }
        for (NodeId v = 0; v < num_nodes; ++v) {
          if (expect[static_cast<std::size_t>(v)] !=
              last[static_cast<std::size_t>(v)]) {
            std::ostringstream os;
            os << "gather " << r.id << " at node " << r.node
               << " is not serialized by node " << u
               << "'s gwlog': recentwrites mismatch at node " << v;
            return CheckResult::Fail(os.str());
          }
        }
      }
    }

    // --- Causal order: Kahn topological sweep over ~>1 propagating the
    // latest pruned-predecessor position.
    std::vector<int> indeg(total, 0);
    for (std::size_t i = 0; i < total; ++i) {
      for (const ReqId s : succ[i]) ++indeg[static_cast<std::size_t>(s)];
    }
    std::vector<std::int64_t> maxpred(total, -1);
    std::vector<ReqId> queue;
    for (std::size_t i = 0; i < total; ++i) {
      if (indeg[i] == 0) queue.push_back(static_cast<ReqId>(i));
    }
    std::size_t processed = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const ReqId q = queue[head];
      ++processed;
      const std::int64_t p = pos[static_cast<std::size_t>(q)];
      if (p >= 0 && maxpred[static_cast<std::size_t>(q)] >= p) {
        std::ostringstream os;
        os << "node " << u << "'s gwlog' violates causal order: request " << q
           << " at position " << p
           << " has a causal predecessor at position "
           << maxpred[static_cast<std::size_t>(q)];
        return CheckResult::Fail(os.str());
      }
      // The value this request forces on its successors.
      const std::int64_t carry =
          std::max(maxpred[static_cast<std::size_t>(q)], p);
      for (const ReqId s : succ[static_cast<std::size_t>(q)]) {
        maxpred[static_cast<std::size_t>(s)] =
            std::max(maxpred[static_cast<std::size_t>(s)], carry);
        if (--indeg[static_cast<std::size_t>(s)] == 0) queue.push_back(s);
      }
    }
    if (processed != total) {
      return CheckResult::Fail("causal order ~> contains a cycle");
    }
  }
  return CheckResult::Ok();
}

}  // namespace treeagg
