// Execution history: the sequence of requests executed by an aggregation
// algorithm, with the fields Section 5 of the paper needs:
// (node, op, arg, retval, index), initiation/completion order, and — for
// combines — the ghost gather snapshot recentwrites(u.log, q).
#ifndef TREEAGG_CONSISTENCY_HISTORY_H_
#define TREEAGG_CONSISTENCY_HISTORY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "workload/request.h"

namespace treeagg {

struct RequestRecord {
  ReqId id = kNoRequest;
  NodeId node = kInvalidNode;
  ReqType op = ReqType::kCombine;
  Real arg = 0;            // writes
  Real retval = 0;         // combines
  // The paper's `index`: number of requests generated at `node` and
  // completed before this one completed.
  std::int64_t node_index = -1;
  // For combines with ghost logging: the gather return value, as pairs
  // (node, id of most recent write at node in u.log). Nodes with no write
  // observed are omitted (implicitly (node, -1)).
  std::vector<std::pair<NodeId, ReqId>> gather;
  // For combines with ghost logging: length of the prefix of u's ghost
  // write-log visible when the combine completed (positions the lifted
  // gather inside u.log for the Section 5.3 constructions).
  std::int64_t log_prefix = -1;
  // Global initiation / completion sequence numbers (driver event order).
  std::int64_t initiated_at = -1;
  std::int64_t completed_at = -1;

  bool completed() const { return completed_at >= 0; }
};

// Append-only log of requests. Drivers call Begin*/Complete*; checkers read
// `records()`. Request ids index directly into the record vector.
class History {
 public:
  ReqId BeginWrite(NodeId node, Real arg, std::int64_t at);
  void CompleteWrite(ReqId id, std::int64_t at);

  ReqId BeginCombine(NodeId node, std::int64_t at);
  void CompleteCombine(ReqId id, Real retval,
                       std::vector<std::pair<NodeId, ReqId>> gather,
                       std::int64_t log_prefix, std::int64_t at);

  // Reassigns a completed request's per-node completion order. Lifting a
  // snapshot read into the history (query/validate.h) places the read, in
  // its node's program order, where its published log prefix says it ran —
  // not where the driver harvested it — which requires renumbering the
  // node's requests after the fact.
  void SetNodeIndex(ReqId id, std::int64_t node_index) {
    records_[static_cast<std::size_t>(id)].node_index = node_index;
  }

  const std::vector<RequestRecord>& records() const { return records_; }
  const RequestRecord& record(ReqId id) const {
    return records_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const { return records_.size(); }
  bool AllCompleted() const;

  void Clear();

 private:
  std::int64_t NextNodeIndex(NodeId node);

  std::vector<RequestRecord> records_;
  std::vector<std::int64_t> completed_per_node_;
};

}  // namespace treeagg

#endif  // TREEAGG_CONSISTENCY_HISTORY_H_
