#include "consistency/history.h"

#include <cassert>

namespace treeagg {

std::int64_t History::NextNodeIndex(NodeId node) {
  if (static_cast<std::size_t>(node) >= completed_per_node_.size()) {
    completed_per_node_.resize(static_cast<std::size_t>(node) + 1, 0);
  }
  return completed_per_node_[static_cast<std::size_t>(node)]++;
}

ReqId History::BeginWrite(NodeId node, Real arg, std::int64_t at) {
  RequestRecord r;
  r.id = static_cast<ReqId>(records_.size());
  r.node = node;
  r.op = ReqType::kWrite;
  r.arg = arg;
  r.initiated_at = at;
  records_.push_back(std::move(r));
  return records_.back().id;
}

void History::CompleteWrite(ReqId id, std::int64_t at) {
  RequestRecord& r = records_[static_cast<std::size_t>(id)];
  assert(r.op == ReqType::kWrite && !r.completed());
  r.completed_at = at;
  r.node_index = NextNodeIndex(r.node);
}

ReqId History::BeginCombine(NodeId node, std::int64_t at) {
  RequestRecord r;
  r.id = static_cast<ReqId>(records_.size());
  r.node = node;
  r.op = ReqType::kCombine;
  r.initiated_at = at;
  records_.push_back(std::move(r));
  return records_.back().id;
}

void History::CompleteCombine(ReqId id, Real retval,
                              std::vector<std::pair<NodeId, ReqId>> gather,
                              std::int64_t log_prefix, std::int64_t at) {
  RequestRecord& r = records_[static_cast<std::size_t>(id)];
  assert(r.op == ReqType::kCombine && !r.completed());
  r.retval = retval;
  r.gather = std::move(gather);
  r.log_prefix = log_prefix;
  r.completed_at = at;
  r.node_index = NextNodeIndex(r.node);
}

bool History::AllCompleted() const {
  for (const RequestRecord& r : records_) {
    if (!r.completed()) return false;
  }
  return true;
}

void History::Clear() {
  records_.clear();
  completed_per_node_.clear();
}

}  // namespace treeagg
