#include "consistency/strict_checker.h"

#include <cmath>
#include <sstream>
#include <vector>

namespace treeagg {

CheckResult CheckStrictConsistency(const History& history,
                                   const AggregateOp& op, NodeId num_nodes,
                                   Real tolerance) {
  std::vector<Real> current(static_cast<std::size_t>(num_nodes), op.identity);
  for (const RequestRecord& r : history.records()) {
    if (!r.completed()) {
      return CheckResult::Fail("request " + std::to_string(r.id) +
                               " did not complete");
    }
    if (r.op == ReqType::kWrite) {
      current[static_cast<std::size_t>(r.node)] = r.arg;
      continue;
    }
    Real expected = op.identity;
    for (const Real v : current) expected = op(expected, v);
    if (r.retval == expected) continue;  // exact match (covers +-inf identities)
    const Real scale = std::max<Real>(1.0, std::abs(expected));
    if (!std::isfinite(expected) || !std::isfinite(r.retval) ||
        std::abs(r.retval - expected) > tolerance * scale) {
      std::ostringstream os;
      os << "combine " << r.id << " at node " << r.node << " returned "
         << r.retval << " but strict consistency requires " << expected;
      return CheckResult::Fail(os.str());
    }
  }
  return CheckResult::Ok();
}

}  // namespace treeagg
