// Causal-consistency checker for concurrent executions (Section 5).
//
// Inputs: the execution history (all writes; combines at every node with
// their ghost gather snapshots and log prefixes) and each node's final
// ghost write-log (arrival order of writes at that node).
//
// Following Section 5.3, for each node u the checker constructs
//   u.gwlog  — u's write-log interleaved with u's combines lifted to
//              gathers (positioned by their recorded log prefix), and
//   u.gwlog' — u.gwlog extended with every other node's writes,
// then verifies:
//   (1) serialization: every gather's return value equals
//       recentwrites(u.gwlog', q) — the most recent write per node actually
//       preceding it in the constructed sequence;
//   (2) causal order: every ~>1 edge (program order at a node; write ->
//       gather that returns it) is respected by u.gwlog';
//   (3) compatibility: every combine's numeric return value equals f
//       applied to its gather set (the Theorem 4 pairing of the
//       combine-write and gather-write histories).
#ifndef TREEAGG_CONSISTENCY_CAUSAL_CHECKER_H_
#define TREEAGG_CONSISTENCY_CAUSAL_CHECKER_H_

#include <vector>

#include "consistency/history.h"
#include "consistency/strict_checker.h"  // CheckResult
#include "core/aggregate_op.h"
#include "core/message.h"

namespace treeagg {

// Per-node ghost state harvested at the end of a run.
struct NodeGhostState {
  NodeId node = kInvalidNode;
  // Arrival order of writes at this node (LeaseNode::GhostLogEntries()).
  GhostLog write_log;
};

CheckResult CheckCausalConsistency(const History& history,
                                   const std::vector<NodeGhostState>& ghosts,
                                   const AggregateOp& op, NodeId num_nodes,
                                   Real tolerance = 1e-9);

}  // namespace treeagg

#endif  // TREEAGG_CONSISTENCY_CAUSAL_CHECKER_H_
