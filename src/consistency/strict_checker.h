// Strict-consistency checker for sequential executions (Section 2).
//
// An algorithm is strictly consistent on sigma if every combine q returns
// f(A(sigma, q)), where A(sigma, q) is the set of most recent writes
// preceding q at each node. Lemma 3.12: every lease-based algorithm is
// "nice", i.e. strictly consistent on sequential executions — this checker
// verifies that claim on recorded histories.
#ifndef TREEAGG_CONSISTENCY_STRICT_CHECKER_H_
#define TREEAGG_CONSISTENCY_STRICT_CHECKER_H_

#include <string>

#include "consistency/history.h"
#include "core/aggregate_op.h"

namespace treeagg {

struct CheckResult {
  bool ok = true;
  std::string message;  // first violation, empty when ok

  static CheckResult Ok() { return {}; }
  static CheckResult Fail(std::string msg) { return {false, std::move(msg)}; }
};

// Verifies every completed combine in a sequential history. `num_nodes` is
// the tree size; nodes never written contribute op.identity.
// `tolerance` absorbs floating-point non-associativity between the
// protocol's tree-shaped folds and the checker's linear fold.
CheckResult CheckStrictConsistency(const History& history,
                                   const AggregateOp& op, NodeId num_nodes,
                                   Real tolerance = 1e-9);

}  // namespace treeagg

#endif  // TREEAGG_CONSISTENCY_STRICT_CHECKER_H_
