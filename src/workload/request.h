// Requests as defined in Section 2 of the paper: a request is a tuple
// (node, op, arg, retval) where op is `combine` (return the global aggregate
// at node) or `write` (set node's local value to arg).
#ifndef TREEAGG_WORKLOAD_REQUEST_H_
#define TREEAGG_WORKLOAD_REQUEST_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace treeagg {

enum class ReqType { kCombine, kWrite };

const char* ToString(ReqType t);

struct Request {
  NodeId node = kInvalidNode;
  ReqType op = ReqType::kCombine;
  Real arg = 0;  // write argument; ignored for combines

  static Request Combine(NodeId node) { return {node, ReqType::kCombine, 0}; }
  static Request Write(NodeId node, Real arg) {
    return {node, ReqType::kWrite, arg};
  }

  friend bool operator==(const Request&, const Request&) = default;
};

std::ostream& operator<<(std::ostream& os, const Request& r);

// A request sequence sigma, plus bookkeeping helpers.
using RequestSequence = std::vector<Request>;

// Counts of each op type in a sequence.
struct RequestMix {
  std::size_t combines = 0;
  std::size_t writes = 0;
};
RequestMix CountMix(const RequestSequence& sigma);

}  // namespace treeagg

#endif  // TREEAGG_WORKLOAD_REQUEST_H_
