// Request-sequence (workload) generators.
//
// The paper's motivation (Section 1) contrasts read-dominated and
// write-dominated workloads and workloads whose active nodes shift over
// time; Theorem 3's lower bound uses the adversarial ADV(a, b) pattern.
// These generators realize all of those, deterministically from a seed.
#ifndef TREEAGG_WORKLOAD_GENERATORS_H_
#define TREEAGG_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

// Configuration for the mixed random workload.
struct MixedWorkloadConfig {
  std::size_t length = 1000;
  double write_fraction = 0.5;  // probability a request is a write
  double zipf_s = 0.0;          // 0 => uniform node choice; >0 => Zipf(s)
  Real value_lo = 0.0;          // write arguments drawn uniformly
  Real value_hi = 100.0;
};

// Random mixed workload over all nodes of the tree.
RequestSequence MakeMixed(const Tree& tree, const MixedWorkloadConfig& config,
                          Rng& rng);

// Bursty workload: alternates read-dominated and write-dominated phases of
// `phase_len` requests each. Models the "different nodes exhibit activity at
// different times" motivation: each phase also picks a fresh hotspot node
// set.
RequestSequence MakeBursty(const Tree& tree, std::size_t length,
                           std::size_t phase_len, Rng& rng);

// Hotspot workload: `hot_fraction` of requests target a fixed set of
// `num_hot` nodes; ops mixed by write_fraction.
RequestSequence MakeHotspot(const Tree& tree, std::size_t length,
                            std::size_t num_hot, double hot_fraction,
                            double write_fraction, Rng& rng);

// Theorem 3's adversary on a two-node tree {u, v}: repeats `periods` times
// [a combines at reader, then b writes at writer].
RequestSequence MakeAdversarial(NodeId reader, NodeId writer, int a, int b,
                                std::size_t periods);

// Ping-pong between one writer and one reader: repeats `rounds` times
// [writes_per_round writes at writer, then one combine at reader]. The
// cost of a round scales with the tree distance between the two — the
// workload behind the distance-scaling bench.
RequestSequence MakePingPong(NodeId reader, NodeId writer,
                             std::size_t rounds, int writes_per_round = 1);

// Round-robin: every node writes, then every node combines, repeated.
// The Astrolabe-friendly workload (all readers everywhere).
RequestSequence MakeRoundRobin(const Tree& tree, std::size_t rounds);

// Write-once-read-many at distinct nodes (the MDS-2-unfriendly workload).
RequestSequence MakeReadHeavy(const Tree& tree, std::size_t length, Rng& rng);

// Many writes, occasional reads (the Astrolabe-unfriendly workload).
RequestSequence MakeWriteHeavy(const Tree& tree, std::size_t length, Rng& rng);

// A request sequence together with arrival ticks (nondecreasing). Plain
// sequences are implicitly one-request-per-tick; bursty generators produce
// genuinely clustered ticks, which is what makes delay-cost policies (MLAP,
// core/mlap.h) interesting: delay only buys batching when requests cluster.
struct TimedWorkload {
  RequestSequence sigma;
  std::vector<std::int64_t> ticks;
};

// On/off burst source: alternates ON bursts of `burst_len` back-to-back
// requests (one per tick, concentrated on a fresh random hot subset per
// burst) with OFF gaps of `off_gap` silent ticks.
TimedWorkload MakeOnOff(const Tree& tree, std::size_t length,
                        std::size_t burst_len, std::int64_t off_gap,
                        double write_fraction, Rng& rng);

// Heavy-tailed inter-arrival gaps: gap ~ floor(Pareto(alpha)), so most
// requests arrive back-to-back but occasional long silences split the
// stream into natural batches.
TimedWorkload MakePareto(const Tree& tree, std::size_t length, double alpha,
                         double write_fraction, Rng& rng);

// Named dispatch for sweeps: "mixed25", "mixed50", "mixed75", "bursty",
// "hotspot", "readheavy", "writeheavy", "roundrobin", "onoff", "pareto".
RequestSequence MakeWorkload(const std::string& name, const Tree& tree,
                             std::size_t length, std::uint64_t seed);

// Like MakeWorkload but with arrival ticks. The untimed names arrive one
// per tick (ticks = 0..length-1); "onoff" and "pareto" cluster. For any
// name, MakeWorkload(name, ...) == MakeTimedWorkload(name, ...).sigma.
TimedWorkload MakeTimedWorkload(const std::string& name, const Tree& tree,
                                std::size_t length, std::uint64_t seed);

const std::vector<std::string>& AllWorkloadNames();

}  // namespace treeagg

#endif  // TREEAGG_WORKLOAD_GENERATORS_H_
