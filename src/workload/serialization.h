// Text serialization of request sequences: one request per line,
//   "C <node>"            — combine at node
//   "W <node> <value>"    — write value at node
// Lines beginning with '#' and blank lines are ignored. Round-trips
// exactly (values are printed with max_digits10 precision).
#ifndef TREEAGG_WORKLOAD_SERIALIZATION_H_
#define TREEAGG_WORKLOAD_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "workload/request.h"

namespace treeagg {

RequestSequence WorkloadFromString(const std::string& text);
std::string WorkloadToString(const RequestSequence& sigma);

// Stream variants (for file I/O without loading into a string).
RequestSequence ReadWorkload(std::istream& in);
void WriteWorkload(std::ostream& out, const RequestSequence& sigma);

}  // namespace treeagg

#endif  // TREEAGG_WORKLOAD_SERIALIZATION_H_
