// Text serialization of request sequences: one request per line,
//   "C <node>"            — combine at node
//   "W <node> <value>"    — write value at node
// Lines beginning with '#' and blank lines are ignored. Round-trips
// exactly (values are printed with max_digits10 precision).
//
// v2 (timed): each line may carry an optional arrival tick suffix,
//   "C <node> @ <tick>"
//   "W <node> <value> @ <tick>"
// The timed reader accepts both forms — an untimed line arrives one tick
// after the previous request — so every v1 file is a valid v2 file. The
// untimed reader stays strict and rejects the suffix.
#ifndef TREEAGG_WORKLOAD_SERIALIZATION_H_
#define TREEAGG_WORKLOAD_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "workload/generators.h"  // TimedWorkload
#include "workload/request.h"

namespace treeagg {

RequestSequence WorkloadFromString(const std::string& text);
std::string WorkloadToString(const RequestSequence& sigma);

// Stream variants (for file I/O without loading into a string).
RequestSequence ReadWorkload(std::istream& in);
void WriteWorkload(std::ostream& out, const RequestSequence& sigma);

// Timed (v2) variants. Writing emits the "@ <tick>" suffix on every line;
// reading accepts v1 and v2 lines mixed. Ticks must be nondecreasing.
TimedWorkload TimedWorkloadFromString(const std::string& text);
std::string TimedWorkloadToString(const TimedWorkload& workload);
TimedWorkload ReadTimedWorkload(std::istream& in);
void WriteTimedWorkload(std::ostream& out, const TimedWorkload& workload);

}  // namespace treeagg

#endif  // TREEAGG_WORKLOAD_SERIALIZATION_H_
