#include "workload/serialization.h"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace treeagg {

RequestSequence ReadWorkload(std::istream& in) {
  RequestSequence sigma;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op) || op[0] == '#') continue;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("workload line " +
                                  std::to_string(line_number) + ": " + why);
    };
    if (op == "C" || op == "c") {
      long node = 0;
      if (!(ls >> node) || node < 0) fail("expected 'C <node>'");
      sigma.push_back(Request::Combine(static_cast<NodeId>(node)));
    } else if (op == "W" || op == "w") {
      long node = 0;
      Real value = 0;
      if (!(ls >> node >> value) || node < 0) {
        fail("expected 'W <node> <value>'");
      }
      sigma.push_back(Request::Write(static_cast<NodeId>(node), value));
    } else {
      fail("unknown op '" + op + "'");
    }
    std::string extra;
    if (ls >> extra) fail("trailing tokens");
  }
  return sigma;
}

void WriteWorkload(std::ostream& out, const RequestSequence& sigma) {
  out << std::setprecision(std::numeric_limits<Real>::max_digits10);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      out << "C " << r.node << "\n";
    } else {
      out << "W " << r.node << " " << r.arg << "\n";
    }
  }
}

RequestSequence WorkloadFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadWorkload(in);
}

std::string WorkloadToString(const RequestSequence& sigma) {
  std::ostringstream out;
  WriteWorkload(out, sigma);
  return out.str();
}

TimedWorkload ReadTimedWorkload(std::istream& in) {
  TimedWorkload w;
  std::string line;
  std::size_t line_number = 0;
  std::int64_t last_tick = -1;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op) || op[0] == '#') continue;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("workload line " +
                                  std::to_string(line_number) + ": " + why);
    };
    if (op == "C" || op == "c") {
      long node = 0;
      if (!(ls >> node) || node < 0) fail("expected 'C <node>'");
      w.sigma.push_back(Request::Combine(static_cast<NodeId>(node)));
    } else if (op == "W" || op == "w") {
      long node = 0;
      Real value = 0;
      if (!(ls >> node >> value) || node < 0) {
        fail("expected 'W <node> <value>'");
      }
      w.sigma.push_back(Request::Write(static_cast<NodeId>(node), value));
    } else {
      fail("unknown op '" + op + "'");
    }
    std::string suffix;
    std::int64_t tick = last_tick + 1;  // untimed lines advance one tick
    if (ls >> suffix) {
      long long parsed = 0;
      if (suffix != "@" || !(ls >> parsed)) fail("expected '@ <tick>'");
      tick = static_cast<std::int64_t>(parsed);
      if (ls >> suffix) fail("trailing tokens");
    }
    if (tick < last_tick) fail("ticks must be nondecreasing");
    w.ticks.push_back(tick);
    last_tick = tick;
  }
  return w;
}

void WriteTimedWorkload(std::ostream& out, const TimedWorkload& workload) {
  if (workload.ticks.size() != workload.sigma.size()) {
    throw std::invalid_argument(
        "WriteTimedWorkload: ticks size does not match sigma");
  }
  out << std::setprecision(std::numeric_limits<Real>::max_digits10);
  for (std::size_t i = 0; i < workload.sigma.size(); ++i) {
    const Request& r = workload.sigma[i];
    if (r.op == ReqType::kCombine) {
      out << "C " << r.node;
    } else {
      out << "W " << r.node << " " << r.arg;
    }
    out << " @ " << workload.ticks[i] << "\n";
  }
}

TimedWorkload TimedWorkloadFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadTimedWorkload(in);
}

std::string TimedWorkloadToString(const TimedWorkload& workload) {
  std::ostringstream out;
  WriteTimedWorkload(out, workload);
  return out.str();
}

}  // namespace treeagg
