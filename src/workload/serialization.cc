#include "workload/serialization.h"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace treeagg {

RequestSequence ReadWorkload(std::istream& in) {
  RequestSequence sigma;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op) || op[0] == '#') continue;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("workload line " +
                                  std::to_string(line_number) + ": " + why);
    };
    if (op == "C" || op == "c") {
      long node = 0;
      if (!(ls >> node) || node < 0) fail("expected 'C <node>'");
      sigma.push_back(Request::Combine(static_cast<NodeId>(node)));
    } else if (op == "W" || op == "w") {
      long node = 0;
      Real value = 0;
      if (!(ls >> node >> value) || node < 0) {
        fail("expected 'W <node> <value>'");
      }
      sigma.push_back(Request::Write(static_cast<NodeId>(node), value));
    } else {
      fail("unknown op '" + op + "'");
    }
    std::string extra;
    if (ls >> extra) fail("trailing tokens");
  }
  return sigma;
}

void WriteWorkload(std::ostream& out, const RequestSequence& sigma) {
  out << std::setprecision(std::numeric_limits<Real>::max_digits10);
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      out << "C " << r.node << "\n";
    } else {
      out << "W " << r.node << " " << r.arg << "\n";
    }
  }
}

RequestSequence WorkloadFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadWorkload(in);
}

std::string WorkloadToString(const RequestSequence& sigma) {
  std::ostringstream out;
  WriteWorkload(out, sigma);
  return out.str();
}

}  // namespace treeagg
