#include "workload/request.h"

#include <ostream>

namespace treeagg {

const char* ToString(ReqType t) {
  switch (t) {
    case ReqType::kCombine:
      return "combine";
    case ReqType::kWrite:
      return "write";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Request& r) {
  os << ToString(r.op) << "@" << r.node;
  if (r.op == ReqType::kWrite) os << "(" << r.arg << ")";
  return os;
}

RequestMix CountMix(const RequestSequence& sigma) {
  RequestMix mix;
  for (const Request& r : sigma) {
    if (r.op == ReqType::kCombine) {
      ++mix.combines;
    } else {
      ++mix.writes;
    }
  }
  return mix;
}

}  // namespace treeagg
