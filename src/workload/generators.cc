#include "workload/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace treeagg {
namespace {

// Samples a node from a Zipf(s) distribution over [0, n) via inverse CDF on
// a precomputed table. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(NodeId n, double s) : cdf_(static_cast<std::size_t>(n)) {
    double total = 0;
    for (NodeId i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<std::size_t>(i)] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  NodeId Sample(Rng& rng) const {
    const double r = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
    return static_cast<NodeId>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

Real RandomValue(Rng& rng, Real lo, Real hi) {
  return lo + (hi - lo) * rng.NextDouble();
}

}  // namespace

RequestSequence MakeMixed(const Tree& tree, const MixedWorkloadConfig& config,
                          Rng& rng) {
  ZipfSampler sampler(tree.size(), config.zipf_s);
  RequestSequence sigma;
  sigma.reserve(config.length);
  for (std::size_t i = 0; i < config.length; ++i) {
    const NodeId node = sampler.Sample(rng);
    if (rng.NextBool(config.write_fraction)) {
      sigma.push_back(
          Request::Write(node, RandomValue(rng, config.value_lo, config.value_hi)));
    } else {
      sigma.push_back(Request::Combine(node));
    }
  }
  return sigma;
}

RequestSequence MakeBursty(const Tree& tree, std::size_t length,
                           std::size_t phase_len, Rng& rng) {
  if (phase_len == 0) throw std::invalid_argument("MakeBursty: phase_len == 0");
  RequestSequence sigma;
  sigma.reserve(length);
  bool write_phase = false;
  while (sigma.size() < length) {
    // Each phase concentrates activity on a random half of the nodes.
    std::vector<NodeId> hot;
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (rng.NextBool(0.5)) hot.push_back(v);
    }
    if (hot.empty()) hot.push_back(static_cast<NodeId>(
        rng.NextBounded(static_cast<std::uint64_t>(tree.size()))));
    const double wf = write_phase ? 0.9 : 0.1;
    for (std::size_t i = 0; i < phase_len && sigma.size() < length; ++i) {
      const NodeId node = hot[rng.NextBounded(hot.size())];
      if (rng.NextBool(wf)) {
        sigma.push_back(Request::Write(node, RandomValue(rng, 0, 100)));
      } else {
        sigma.push_back(Request::Combine(node));
      }
    }
    write_phase = !write_phase;
  }
  return sigma;
}

RequestSequence MakeHotspot(const Tree& tree, std::size_t length,
                            std::size_t num_hot, double hot_fraction,
                            double write_fraction, Rng& rng) {
  num_hot = std::min<std::size_t>(num_hot, static_cast<std::size_t>(tree.size()));
  if (num_hot == 0) num_hot = 1;
  // Pick distinct hot nodes by partial Fisher-Yates.
  std::vector<NodeId> nodes(static_cast<std::size_t>(tree.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) nodes[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < num_hot; ++i) {
    const std::size_t j = i + rng.NextBounded(nodes.size() - i);
    std::swap(nodes[i], nodes[j]);
  }
  RequestSequence sigma;
  sigma.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    NodeId node;
    if (rng.NextBool(hot_fraction)) {
      node = nodes[rng.NextBounded(num_hot)];
    } else {
      node = static_cast<NodeId>(
          rng.NextBounded(static_cast<std::uint64_t>(tree.size())));
    }
    if (rng.NextBool(write_fraction)) {
      sigma.push_back(Request::Write(node, RandomValue(rng, 0, 100)));
    } else {
      sigma.push_back(Request::Combine(node));
    }
  }
  return sigma;
}

RequestSequence MakeAdversarial(NodeId reader, NodeId writer, int a, int b,
                                std::size_t periods) {
  assert(a >= 1 && b >= 1);
  RequestSequence sigma;
  sigma.reserve(periods * static_cast<std::size_t>(a + b));
  for (std::size_t p = 0; p < periods; ++p) {
    for (int i = 0; i < a; ++i) sigma.push_back(Request::Combine(reader));
    for (int i = 0; i < b; ++i) {
      sigma.push_back(Request::Write(writer, static_cast<Real>(p * b + i)));
    }
  }
  return sigma;
}

RequestSequence MakePingPong(NodeId reader, NodeId writer,
                             std::size_t rounds, int writes_per_round) {
  assert(writes_per_round >= 1);
  RequestSequence sigma;
  sigma.reserve(rounds * static_cast<std::size_t>(writes_per_round + 1));
  for (std::size_t r = 0; r < rounds; ++r) {
    for (int w = 0; w < writes_per_round; ++w) {
      sigma.push_back(Request::Write(
          writer, static_cast<Real>(r * static_cast<std::size_t>(
                                            writes_per_round) +
                                    static_cast<std::size_t>(w))));
    }
    sigma.push_back(Request::Combine(reader));
  }
  return sigma;
}

RequestSequence MakeRoundRobin(const Tree& tree, std::size_t rounds) {
  RequestSequence sigma;
  sigma.reserve(rounds * 2 * static_cast<std::size_t>(tree.size()));
  for (std::size_t r = 0; r < rounds; ++r) {
    for (NodeId v = 0; v < tree.size(); ++v) {
      sigma.push_back(Request::Write(v, static_cast<Real>(r + v)));
    }
    for (NodeId v = 0; v < tree.size(); ++v) {
      sigma.push_back(Request::Combine(v));
    }
  }
  return sigma;
}

RequestSequence MakeReadHeavy(const Tree& tree, std::size_t length, Rng& rng) {
  MixedWorkloadConfig config;
  config.length = length;
  config.write_fraction = 0.05;
  return MakeMixed(tree, config, rng);
}

RequestSequence MakeWriteHeavy(const Tree& tree, std::size_t length, Rng& rng) {
  MixedWorkloadConfig config;
  config.length = length;
  config.write_fraction = 0.95;
  return MakeMixed(tree, config, rng);
}

TimedWorkload MakeOnOff(const Tree& tree, std::size_t length,
                        std::size_t burst_len, std::int64_t off_gap,
                        double write_fraction, Rng& rng) {
  if (burst_len == 0) throw std::invalid_argument("MakeOnOff: burst_len == 0");
  if (off_gap < 0) throw std::invalid_argument("MakeOnOff: off_gap < 0");
  TimedWorkload w;
  w.sigma.reserve(length);
  w.ticks.reserve(length);
  std::int64_t now = 0;
  while (w.sigma.size() < length) {
    // Each burst hammers a fresh hot subset (about an eighth of the tree).
    std::vector<NodeId> hot;
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (rng.NextBool(0.125)) hot.push_back(v);
    }
    if (hot.empty()) {
      hot.push_back(static_cast<NodeId>(
          rng.NextBounded(static_cast<std::uint64_t>(tree.size()))));
    }
    for (std::size_t i = 0; i < burst_len && w.sigma.size() < length; ++i) {
      const NodeId node = hot[rng.NextBounded(hot.size())];
      if (rng.NextBool(write_fraction)) {
        w.sigma.push_back(Request::Write(node, RandomValue(rng, 0, 100)));
      } else {
        w.sigma.push_back(Request::Combine(node));
      }
      w.ticks.push_back(now++);
    }
    now += off_gap;
  }
  return w;
}

TimedWorkload MakePareto(const Tree& tree, std::size_t length, double alpha,
                         double write_fraction, Rng& rng) {
  if (!(alpha > 0)) throw std::invalid_argument("MakePareto: alpha <= 0");
  TimedWorkload w;
  w.sigma.reserve(length);
  w.ticks.reserve(length);
  std::int64_t now = 0;
  for (std::size_t i = 0; i < length; ++i) {
    const NodeId node = static_cast<NodeId>(
        rng.NextBounded(static_cast<std::uint64_t>(tree.size())));
    if (rng.NextBool(write_fraction)) {
      w.sigma.push_back(Request::Write(node, RandomValue(rng, 0, 100)));
    } else {
      w.sigma.push_back(Request::Combine(node));
    }
    w.ticks.push_back(now);
    // Pareto(alpha) minus its minimum 1, floored: mostly 0 (back-to-back)
    // with heavy-tailed silences. Clamp so one freak draw cannot dominate.
    const double u = std::max(rng.NextDouble(), 1e-12);
    const double gap = std::pow(1.0 / u, 1.0 / alpha) - 1.0;
    now += static_cast<std::int64_t>(std::min(gap, 10000.0));
  }
  return w;
}

RequestSequence MakeWorkload(const std::string& name, const Tree& tree,
                             std::size_t length, std::uint64_t seed) {
  if (name == "onoff" || name == "pareto") {
    return MakeTimedWorkload(name, tree, length, seed).sigma;
  }
  Rng rng(seed);
  if (name == "mixed25" || name == "mixed50" || name == "mixed75") {
    MixedWorkloadConfig config;
    config.length = length;
    config.write_fraction = (name == "mixed25") ? 0.25
                            : (name == "mixed50") ? 0.50
                                                  : 0.75;
    return MakeMixed(tree, config, rng);
  }
  if (name == "bursty") return MakeBursty(tree, length, std::max<std::size_t>(10, length / 10), rng);
  if (name == "hotspot") {
    return MakeHotspot(tree, length, std::max<std::size_t>(1, static_cast<std::size_t>(tree.size()) / 8),
                       0.8, 0.5, rng);
  }
  if (name == "readheavy") return MakeReadHeavy(tree, length, rng);
  if (name == "writeheavy") return MakeWriteHeavy(tree, length, rng);
  if (name == "roundrobin") {
    const std::size_t per_round = 2 * static_cast<std::size_t>(tree.size());
    return MakeRoundRobin(tree, std::max<std::size_t>(1, length / per_round));
  }
  throw std::invalid_argument("MakeWorkload: unknown workload " + name);
}

TimedWorkload MakeTimedWorkload(const std::string& name, const Tree& tree,
                                std::size_t length, std::uint64_t seed) {
  if (name == "onoff") {
    Rng rng(seed);
    return MakeOnOff(tree, length, std::max<std::size_t>(8, length / 20), 64,
                     0.2, rng);
  }
  if (name == "pareto") {
    Rng rng(seed);
    return MakePareto(tree, length, 1.5, 0.25, rng);
  }
  TimedWorkload w;
  w.sigma = MakeWorkload(name, tree, length, seed);
  w.ticks.resize(w.sigma.size());
  for (std::size_t i = 0; i < w.ticks.size(); ++i) {
    w.ticks[i] = static_cast<std::int64_t>(i);
  }
  return w;
}

const std::vector<std::string>& AllWorkloadNames() {
  static const std::vector<std::string> kNames = {
      "mixed25", "mixed50",   "mixed75",    "bursty", "hotspot",
      "readheavy", "writeheavy", "roundrobin", "onoff", "pareto"};
  return kNames;
}

}  // namespace treeagg
