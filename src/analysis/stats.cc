#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace treeagg {

SummaryStats Summarize(std::vector<double> samples) {
  SummaryStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.count = samples.size();
  stats.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
               static_cast<double>(samples.size());
  const auto percentile = [&](double p) {
    const double idx = p * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
    const double frac = idx - static_cast<double>(lo);
    return samples[lo] * (1 - frac) + samples[hi] * frac;
  };
  stats.p50 = percentile(0.50);
  stats.p90 = percentile(0.90);
  stats.p95 = percentile(0.95);
  stats.p99 = percentile(0.99);
  stats.min = samples.front();
  stats.max = samples.back();
  return stats;
}

LatencyReport LatencyFromHistory(const History& history) {
  LatencyReport report;
  std::vector<double> latencies;
  for (const RequestRecord& r : history.records()) {
    if (r.op == ReqType::kWrite) {
      ++report.writes;
      continue;
    }
    ++report.combines;
    if (r.completed()) {
      latencies.push_back(
          static_cast<double>(r.completed_at - r.initiated_at));
    }
  }
  report.combine_latency = Summarize(std::move(latencies));
  return report;
}

}  // namespace treeagg
