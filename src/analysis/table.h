// Fixed-width ASCII table formatting for the benchmark harness output.
#ifndef TREEAGG_ANALYSIS_TABLE_H_
#define TREEAGG_ANALYSIS_TABLE_H_

#include <string>
#include <vector>

namespace treeagg {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("2.50").
std::string Fmt(double value, int precision = 2);

}  // namespace treeagg

#endif  // TREEAGG_ANALYSIS_TABLE_H_
