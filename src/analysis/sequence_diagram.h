// ASCII message sequence diagrams from a recorded MessageTrace log.
//
// Renders one column per node and one row per message, e.g.
//
//     node:    0    1    2
//     probe    |<---o    |
//     probe    |    o--->|
//     response |    |<---o
//     response o--->|    |
//
// (o = sender, arrow toward receiver). Intended for small demonstrations
// and documentation; requires the trace to have been constructed with
// keep_log = true.
#ifndef TREEAGG_ANALYSIS_SEQUENCE_DIAGRAM_H_
#define TREEAGG_ANALYSIS_SEQUENCE_DIAGRAM_H_

#include <string>
#include <vector>

#include "core/message.h"

namespace treeagg {

// Renders messages [begin, end) of the log; num_nodes columns.
std::string RenderSequenceDiagram(const std::vector<Message>& log,
                                  NodeId num_nodes, std::size_t begin = 0,
                                  std::size_t end = SIZE_MAX);

}  // namespace treeagg

#endif  // TREEAGG_ANALYSIS_SEQUENCE_DIAGRAM_H_
