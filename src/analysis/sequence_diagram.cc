#include "analysis/sequence_diagram.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace treeagg {

namespace {
constexpr int kColumnWidth = 5;  // characters per node lane
constexpr int kLabelWidth = 9;   // "response " is the longest label
}  // namespace

std::string RenderSequenceDiagram(const std::vector<Message>& log,
                                  NodeId num_nodes, std::size_t begin,
                                  std::size_t end) {
  end = std::min(end, log.size());
  std::ostringstream os;
  os << std::left << std::setw(kLabelWidth) << "node:";
  for (NodeId u = 0; u < num_nodes; ++u) {
    os << std::setw(kColumnWidth) << u;
  }
  os << "\n";
  for (std::size_t i = begin; i < end; ++i) {
    const Message& m = log[i];
    os << std::setw(kLabelWidth) << ToString(m.type);
    // One lane per node: sender 'o', arrow body between, '|' elsewhere.
    const NodeId lo = std::min(m.from, m.to);
    const NodeId hi = std::max(m.from, m.to);
    const bool rightward = m.to > m.from;
    std::string row;
    for (NodeId u = 0; u < num_nodes; ++u) {
      std::string lane(static_cast<std::size_t>(kColumnWidth), ' ');
      char center = '|';
      if (u == m.from) {
        center = 'o';
      } else if (u == m.to) {
        center = rightward ? '>' : '<';
      } else if (u > lo && u < hi) {
        center = '-';
      }
      lane[0] = center;
      // Fill the arrow shaft between lanes.
      if (u >= lo && u < hi) {
        for (std::size_t k = 1; k < lane.size(); ++k) lane[k] = '-';
      }
      row += lane;
    }
    // Trim trailing spaces for tidy output.
    while (!row.empty() && row.back() == ' ') row.pop_back();
    os << row << "\n";
  }
  return os.str();
}

}  // namespace treeagg
