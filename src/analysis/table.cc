#include "analysis/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace treeagg {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " ";
    }
    os << "|\n";
  };
  const auto emit_sep = [&] {
    for (const std::size_t w : widths) {
      os << "+" << std::string(w + 2, '-');
    }
    os << "+\n";
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

std::string Fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace treeagg
