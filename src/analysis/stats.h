// Summary statistics and request-latency analysis.
//
// The paper's Section 1 argues static strategies suffer "unnecessary
// latency or imprecision on read-dominated workloads" (MDS-2 pulls the
// whole tree on every read) while Astrolabe trades bandwidth for zero read
// latency. In the concurrent simulator, a combine's latency is its
// completion time minus initiation time in simulated ticks; this module
// extracts and summarizes those distributions so the claim can be
// quantified per policy.
#ifndef TREEAGG_ANALYSIS_STATS_H_
#define TREEAGG_ANALYSIS_STATS_H_

#include <cstdint>
#include <vector>

#include "consistency/history.h"

namespace treeagg {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  double min = 0;
  double max = 0;
};

// Summary of a sample vector (sorted internally; empty input yields zeros).
SummaryStats Summarize(std::vector<double> samples);

struct LatencyReport {
  SummaryStats combine_latency;  // completion - initiation, simulated ticks
  std::size_t combines = 0;
  std::size_t writes = 0;
};

// Extracts combine latencies from a completed history.
LatencyReport LatencyFromHistory(const History& history);

}  // namespace treeagg

#endif  // TREEAGG_ANALYSIS_STATS_H_
