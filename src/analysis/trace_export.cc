#include "analysis/trace_export.h"

#include <algorithm>

namespace treeagg {

namespace {

// Dedicated track for fault-window spans, below every real node id.
constexpr std::int64_t kFaultTid = -1;

}  // namespace

void ExportHistoryTrace(const History& history,
                        const TraceExportOptions& options,
                        obs::TraceEventSink* sink) {
  sink->NameProcess(options.pid, options.process_name);
  for (const RequestRecord& r : history.records()) {
    const bool is_combine = r.op == ReqType::kCombine;
    const double ts = static_cast<double>(r.initiated_at);
    // Chrome drops spans of zero duration from some views; a same-tick
    // completion still deserves a visible sliver.
    const double dur =
        r.completed() ? std::max<double>(
                            1.0, static_cast<double>(r.completed_at -
                                                     r.initiated_at))
                      : 1.0;
    obs::TraceEventSink::NumArgs args = {
        {"id", static_cast<double>(r.id)},
        {"node", static_cast<double>(r.node)},
        {"completed", r.completed() ? 1.0 : 0.0},
    };
    if (is_combine) {
      args.emplace_back("retval", static_cast<double>(r.retval));
    } else {
      args.emplace_back("arg", static_cast<double>(r.arg));
    }
    sink->CompleteEvent(is_combine ? "combine" : "write", "request",
                        options.pid, r.node, ts, dur, std::move(args));
  }
  for (const auto& [begin, end] : options.fault_windows) {
    const double ts = static_cast<double>(begin);
    const double dur = std::max<double>(1.0, static_cast<double>(end - begin));
    sink->CompleteEvent("fault window", "fault", options.pid, kFaultTid, ts,
                        dur);
    sink->InstantEvent("fault begin", "fault", options.pid, kFaultTid, ts);
    sink->InstantEvent("fault end", "fault", options.pid, kFaultTid,
                       static_cast<double>(end));
  }
}

bool WriteHistoryTraceFile(const std::string& path, const History& history,
                           const TraceExportOptions& options) {
  obs::TraceEventSink sink;
  ExportHistoryTrace(history, options, &sink);
  return sink.WriteFile(path);
}

}  // namespace treeagg
