// Competitive-analysis harness: runs an online lease-based policy on a
// request sequence, measures its per-edge and total message costs, and
// compares them against the offline bounds of Section 4:
//
//   * the per-edge offline lease-based optimum (Theorem 1's baseline;
//     RWW must stay within a factor 5/2 on EVERY ordered edge), and
//   * the epoch lower bound for nice algorithms (Theorem 2's baseline;
//     factor 5, modulo a bounded additive term per edge for the initial
//     lease set-up, which competitive analysis conventionally allows).
//
// The harness also cross-checks the execution itself: strict consistency
// (Lemma 3.12), the per-edge cost partition (Lemma 3.9), and agreement of
// the measured per-edge RWW cost with the analytic Figure 2 cost model
// (Lemma 4.5) when the policy is RWW.
#ifndef TREEAGG_ANALYSIS_COMPETITIVE_H_
#define TREEAGG_ANALYSIS_COMPETITIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregate_op.h"
#include "core/policy.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

struct EdgeReport {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  std::int64_t online_cost = 0;  // measured C(sigma, u, v)
  std::int64_t opt_cost = 0;     // per-edge offline lease-based optimum
  std::int64_t epochs = 0;       // nice lower bound contribution
};

struct CompetitiveReport {
  std::string policy_name;
  std::int64_t online_total = 0;
  std::int64_t lease_opt_total = 0;
  std::int64_t nice_bound_total = 0;
  std::vector<EdgeReport> edges;  // all ordered neighbor pairs

  bool strict_ok = false;
  std::string strict_error;
  bool partition_ok = false;  // Lemma 3.9: edge costs partition the total

  // online / lease-opt; 0 when both are 0 (vacuous), +inf never occurs for
  // RWW (its cost is 0 whenever opt is 0).
  double RatioVsLeaseOpt() const;
  // online / nice bound; meaningful on workloads with write->read churn.
  double RatioVsNiceBound() const;
  // max over edges with opt > 0 of online/opt.
  double WorstEdgeRatio() const;
};

CompetitiveReport RunCompetitive(const Tree& tree, const PolicyFactory& factory,
                                 const std::string& policy_name,
                                 const RequestSequence& sigma,
                                 const AggregateOp& op = SumOp());

}  // namespace treeagg

#endif  // TREEAGG_ANALYSIS_COMPETITIVE_H_
