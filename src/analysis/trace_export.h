// History -> Chrome trace-event export, unified across backends.
//
// Every backend already produces a History whose initiated_at/completed_at
// use that backend's driver clock (DES ticks, actor-runtime logical clock,
// or the net driver's event counter). This module renders any of them into
// one obs::TraceEventSink shape — a span per request on the initiating
// node's track, instants for fault-window boundaries — so a sim trace and
// a net trace of the same workload can be loaded side by side in
// about://tracing or Perfetto and diffed visually.
//
// Clock units: one driver-clock tick is mapped to one microsecond. The
// absolute scale is meaningless across backends (ticks are not seconds);
// what lines up is the ORDER and nesting of spans, which is exactly what
// the clocks preserve.
#ifndef TREEAGG_ANALYSIS_TRACE_EXPORT_H_
#define TREEAGG_ANALYSIS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "consistency/history.h"
#include "obs/trace_event.h"

namespace treeagg {

struct TraceExportOptions {
  // Names the pid track ("sim", "net-local", "seq", ...).
  std::string process_name = "treeagg";
  // The pid all request spans land on (several backends can share a sink
  // by using distinct pids).
  std::int64_t pid = 1;
  // Fault windows in the same driver clock as the history (sim:
  // FaultSchedule::Windows(); net: ChaosNetResult::fault_windows). Each
  // becomes a span on a dedicated "faults" track plus begin/end instants.
  std::vector<std::pair<std::int64_t, std::int64_t>> fault_windows;
};

// Appends one complete event per request record (incomplete requests get a
// zero-length span at initiation, flagged completed=0) and the fault
// windows to `sink`.
void ExportHistoryTrace(const History& history,
                        const TraceExportOptions& options,
                        obs::TraceEventSink* sink);

// Convenience: export + write `{"traceEvents": ...}` to `path`.
// Returns false on I/O failure.
bool WriteHistoryTraceFile(const std::string& path, const History& history,
                           const TraceExportOptions& options = {});

}  // namespace treeagg

#endif  // TREEAGG_ANALYSIS_TRACE_EXPORT_H_
