#include "analysis/competitive.h"

#include <algorithm>
#include <limits>

#include "consistency/strict_checker.h"
#include "offline/edge_dp.h"
#include "offline/nice_bound.h"
#include "offline/projection.h"
#include "sim/system.h"

namespace treeagg {

double CompetitiveReport::RatioVsLeaseOpt() const {
  if (lease_opt_total == 0) {
    return online_total == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(online_total) /
         static_cast<double>(lease_opt_total);
}

double CompetitiveReport::RatioVsNiceBound() const {
  if (nice_bound_total == 0) {
    return online_total == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(online_total) /
         static_cast<double>(nice_bound_total);
}

double CompetitiveReport::WorstEdgeRatio() const {
  double worst = 0.0;
  for (const EdgeReport& e : edges) {
    if (e.opt_cost > 0) {
      worst = std::max(worst, static_cast<double>(e.online_cost) /
                                  static_cast<double>(e.opt_cost));
    }
  }
  return worst;
}

CompetitiveReport RunCompetitive(const Tree& tree, const PolicyFactory& factory,
                                 const std::string& policy_name,
                                 const RequestSequence& sigma,
                                 const AggregateOp& op) {
  AggregationSystem::Options options;
  options.op = &op;
  AggregationSystem sys(tree, factory, options);
  sys.Execute(sigma);

  CompetitiveReport report;
  report.policy_name = policy_name;
  report.online_total = sys.trace().TotalMessages();

  std::int64_t edge_sum = 0;
  for (const Edge& e : tree.OrderedEdges()) {
    EdgeReport er;
    er.u = e.u;
    er.v = e.v;
    er.online_cost = sys.trace().EdgeCost(e.u, e.v).total();
    const EdgeSequence projected = ProjectSequence(sigma, tree, e.u, e.v);
    er.opt_cost = OptimalEdgeCost(projected);
    er.epochs = EpochCount(projected);
    edge_sum += er.online_cost;
    report.lease_opt_total += er.opt_cost;
    report.nice_bound_total += er.epochs;
    report.edges.push_back(er);
  }
  report.partition_ok = (edge_sum == report.online_total);

  const CheckResult strict =
      CheckStrictConsistency(sys.history(), op, tree.size());
  report.strict_ok = strict.ok;
  report.strict_error = strict.message;
  return report;
}

}  // namespace treeagg
