// Executable form of the Lemma 4.6 potential-function argument.
//
// A certificate is a vector (Phi(0,0..2), Phi(1,0..2), c). It certifies
// RWW's c-competitiveness if, for every transition of the joint
// (F_OPT, F_RWW) system,
//
//     Phi(to) - Phi(from) + cost_RWW <= c * cost_OPT,
//
// with Phi >= 0 and Phi(0,0) = 0 (initial state). VerifyCertificate checks
// the inequalities symbolically over the transition system;
// ReplayAmortized re-derives them *dynamically*: it replays an actual
// projected request sequence through RWW's configuration and an offline
// plan, checking the amortized inequality at every step and the telescoped
// total bound at the end.
#ifndef TREEAGG_LP_POTENTIAL_H_
#define TREEAGG_LP_POTENTIAL_H_

#include <string>
#include <vector>

#include "lp/transition_system.h"
#include "offline/edge_dp.h"
#include "offline/projection.h"

namespace treeagg {

// Checks the certificate against every transition in the joint system.
// On failure, *error names the violated transition.
bool VerifyCertificate(const std::vector<double>& phi_and_c,
                       std::string* error);

// Replays `seq` through RWW and the given offline plan, checking the
// per-step amortized inequality under the certificate and that the
// telescoped sum yields cost_RWW <= c * cost_plan. Returns the measured
// costs through the out-params (useful for reporting).
bool ReplayAmortized(const EdgeSequence& seq, const OptimalPlan& plan,
                     const std::vector<double>& phi_and_c,
                     std::int64_t* rww_cost, std::int64_t* plan_cost,
                     std::string* error);

}  // namespace treeagg

#endif  // TREEAGG_LP_POTENTIAL_H_
