// A small dense linear-programming solver (two-phase primal simplex with
// Bland's rule), sufficient for the paper's Figure 5 program: 7 variables,
// ~21 constraints. Written from scratch; no external dependencies.
//
//   minimize    objective . x
//   subject to  rows[i] . x <= rhs[i]   for all i
//               x >= 0
#ifndef TREEAGG_LP_SIMPLEX_H_
#define TREEAGG_LP_SIMPLEX_H_

#include <string>
#include <vector>

namespace treeagg {

struct LpProblem {
  std::vector<double> objective;           // size n
  std::vector<std::vector<double>> rows;   // m x n
  std::vector<double> rhs;                 // size m

  std::size_t num_vars() const { return objective.size(); }
  std::size_t num_rows() const { return rows.size(); }

  // Adds a constraint row . x <= rhs.
  void AddRow(std::vector<double> row, double rhs_value);
};

struct LpSolution {
  enum class Status { kOptimal, kInfeasible, kUnbounded };
  Status status = Status::kInfeasible;
  double value = 0;        // objective at optimum
  std::vector<double> x;   // optimal point

  bool optimal() const { return status == Status::kOptimal; }
};

LpSolution SolveLp(const LpProblem& problem);

// True iff x satisfies every constraint of the problem within tol.
bool IsFeasible(const LpProblem& problem, const std::vector<double>& x,
                double tol = 1e-9);

}  // namespace treeagg

#endif  // TREEAGG_LP_SIMPLEX_H_
