#include "lp/potential.h"

#include <cassert>
#include <sstream>

namespace treeagg {

namespace {
constexpr double kTol = 1e-9;

double Phi(const std::vector<double>& cert, int x, int y) {
  return cert[static_cast<std::size_t>(PhiIndex(x, y))];
}
double Comp(const std::vector<double>& cert) {
  return cert[static_cast<std::size_t>(kNumLpVars - 1)];
}
}  // namespace

bool VerifyCertificate(const std::vector<double>& phi_and_c,
                       std::string* error) {
  if (phi_and_c.size() != static_cast<std::size_t>(kNumLpVars)) {
    if (error) *error = "certificate has wrong arity";
    return false;
  }
  for (const double v : phi_and_c) {
    if (v < -kTol) {
      if (error) *error = "certificate has a negative component";
      return false;
    }
  }
  if (Phi(phi_and_c, 0, 0) > kTol) {
    if (error) *error = "Phi(0,0) must be 0 (initial state)";
    return false;
  }
  const double c = Comp(phi_and_c);
  for (const Transition& t : BuildJointTransitions()) {
    const double lhs = Phi(phi_and_c, t.to_x, t.to_y) -
                       Phi(phi_and_c, t.from_x, t.from_y) + t.rww_cost;
    if (lhs > c * t.opt_cost + kTol) {
      if (error) *error = "violated: " + t.ToInequality();
      return false;
    }
  }
  return true;
}

bool ReplayAmortized(const EdgeSequence& seq, const OptimalPlan& plan,
                     const std::vector<double>& phi_and_c,
                     std::int64_t* rww_cost, std::int64_t* plan_cost,
                     std::string* error) {
  assert(plan.state_after.size() == seq.size());
  const double c = Comp(phi_and_c);
  int x = 0;  // offline lease state
  int y = 0;  // RWW configuration
  std::int64_t rww_total = 0, opt_total = 0;
  double amortized_total = 0;

  const auto check_step = [&](char request, int nx, int ny,
                              std::int64_t rww_step,
                              std::int64_t opt_step) -> bool {
    const double amortized = Phi(phi_and_c, nx, ny) - Phi(phi_and_c, x, y) +
                             static_cast<double>(rww_step);
    if (amortized > c * static_cast<double>(opt_step) + kTol) {
      if (error) {
        std::ostringstream os;
        os << "amortized inequality violated at " << request << " from S("
           << x << "," << y << ") to S(" << nx << "," << ny << ")";
        *error = os.str();
      }
      return false;
    }
    amortized_total += amortized;
    rww_total += rww_step;
    opt_total += opt_step;
    x = nx;
    y = ny;
    return true;
  };

  for (std::size_t i = 0; i < seq.size(); ++i) {
    const char request = (seq[i] == EdgeReq::kR) ? 'R' : 'W';
    const auto [ny, rww_step] = RwwMove(y, request);
    // Offline step cost per Figure 2 given the plan's choice.
    const int mid = plan.state_after[i];
    std::int64_t opt_step = 0;
    if (request == 'R') {
      opt_step = (x == 0) ? 2 : 0;
    } else {
      opt_step = (x == 0) ? 0 : (mid == 1 ? 1 : 2);
    }
    if (!check_step(request, mid, ny, rww_step, opt_step)) return false;
    if (plan.noop_release[i]) {
      // A noop step: OPT voluntarily releases (cost 1), RWW is inert.
      const auto [nny, rww_noop] = RwwMove(y, 'N');
      if (!check_step('N', 0, nny, rww_noop, 1)) return false;
    }
  }

  if (rww_cost) *rww_cost = rww_total;
  if (plan_cost) *plan_cost = opt_total;
  // Telescoping: sum of amortized = RWW total + Phi(final) - Phi(0,0),
  // so RWW <= c * OPT + Phi(0,0) - Phi(final) <= c * OPT.
  if (static_cast<double>(rww_total) >
      c * static_cast<double>(opt_total) + kTol) {
    if (error) *error = "telescoped bound violated";
    return false;
  }
  if (opt_total != plan.cost) {
    if (error) {
      *error = "replayed plan cost disagrees with the DP (replay " +
               std::to_string(opt_total) + ", dp " +
               std::to_string(plan.cost) + ")";
    }
    return false;
  }
  return true;
}

}  // namespace treeagg
